// Hot-path memory model parity suite (`ctest -L hotpath`, DESIGN.md §13).
//
// The pooled hot paths — arena outboxes with sender-side combining in
// Pregel, recycled partition buffers and the radix shuffle in dataflow, the
// lock-striped clock page cache in graphdb — are performance refactors with
// an exact-equivalence contract: results must be *bit-identical* to the
// legacy heap paths they replaced, across thread counts, under injected
// faults, and through mid-superstep cancellation. This suite pins that
// contract: every test runs the same workload with the pooled knob on and
// off (EngineConfig::outbox_pool, ContextConfig::pooled_buffers,
// StoreConfig::page_cache_shards) and compares outputs verbatim — the same
// comparison the Output Validator would apply to a journal's
// output_checksum. ci.sh runs the suite under both ASan and TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/fault_injection.h"
#include "common/random.h"
#include "common/temp_dir.h"
#include "dataflow/algorithms.h"
#include "graphdb/algorithms.h"
#include "graphdb/page_cache.h"
#include "graphdb/store.h"
#include "pregel/algorithms.h"

namespace gly {
namespace {

// Power-law-ish random graph, big enough for several BFS supersteps and
// real eviction/shuffle pressure, small enough for a TSan run.
Graph TestGraph() {
  static const Graph g = [] {
    const VertexId n = 600;
    EdgeList edges(n);
    Rng rng(7);
    for (int i = 0; i < 5000; ++i) {
      // Square one endpoint toward low ids to create hubs (skew is what
      // stresses the steal scheduler and the combining accumulator).
      VertexId a = static_cast<VertexId>(
          rng.NextBounded(n) * rng.NextBounded(n) / n);
      VertexId b = static_cast<VertexId>(rng.NextBounded(n));
      if (a != b) edges.Add(a, b);
    }
    edges.DeduplicateAndDropLoops();
    return GraphBuilder::Undirected(edges).ValueOrDie();
  }();
  return g;
}

AlgorithmParams TestParams() {
  AlgorithmParams params;
  params.bfs.source = 1;  // a hub under the skewed generator
  params.pr = PrParams{/*iterations=*/8, /*damping=*/0.85};
  params.cd.max_iterations = 6;
  return params;
}

const AlgorithmKind kKinds[] = {AlgorithmKind::kBfs, AlgorithmKind::kConn,
                                AlgorithmKind::kPr, AlgorithmKind::kCd};
const uint32_t kThreadCounts[] = {1, 2, 8};

// Bit-exact output comparison: the validator journals a checksum over
// vertex_values / vertex_scores, so "equal journals" means these vectors
// match verbatim (doubles compared by ==, not a tolerance).
void ExpectSameOutput(const AlgorithmOutput& pooled,
                      const AlgorithmOutput& legacy, const std::string& what) {
  EXPECT_EQ(pooled.vertex_values, legacy.vertex_values) << what;
  ASSERT_EQ(pooled.vertex_scores.size(), legacy.vertex_scores.size()) << what;
  for (size_t i = 0; i < pooled.vertex_scores.size(); ++i) {
    EXPECT_EQ(pooled.vertex_scores[i], legacy.vertex_scores[i])
        << what << " score of vertex " << i;
  }
  EXPECT_EQ(pooled.traversed_edges, legacy.traversed_edges) << what;
}

// ------------------------------------------------------------------ Pregel

pregel::EngineConfig PregelConfig(bool pooled, uint32_t threads) {
  pregel::EngineConfig config;
  config.num_workers = 8;
  config.num_threads = threads;
  config.outbox_pool = pooled;
  return config;
}

TEST(PregelHotpathParity, PooledMatchesLegacyAcrossThreadCounts) {
  const Graph g = TestGraph();
  const AlgorithmParams params = TestParams();
  for (AlgorithmKind kind : kKinds) {
    for (uint32_t threads : kThreadCounts) {
      pregel::RunStats pooled_stats, legacy_stats;
      pregel::Engine pooled_engine(PregelConfig(true, threads));
      auto pooled =
          pregel::RunAlgorithm(pooled_engine, g, kind, params, &pooled_stats);
      pregel::Engine legacy_engine(PregelConfig(false, threads));
      auto legacy =
          pregel::RunAlgorithm(legacy_engine, g, kind, params, &legacy_stats);
      const std::string what = std::string(AlgorithmKindName(kind)) + " @" +
                               std::to_string(threads) + " threads";
      ASSERT_TRUE(pooled.ok()) << what << ": " << pooled.status().ToString();
      ASSERT_TRUE(legacy.ok()) << what << ": " << legacy.status().ToString();
      ExpectSameOutput(*pooled, *legacy, what);
      // Same computation shape, not just the same answer: equal superstep
      // and message counts mean the pooled combiner really emitted the
      // same message stream.
      EXPECT_EQ(pooled_stats.supersteps, legacy_stats.supersteps) << what;
      EXPECT_EQ(pooled_stats.total_messages, legacy_stats.total_messages)
          << what;
    }
  }
}

TEST(PregelHotpathParity, FixedPartitionScheduleAlsoMatches) {
  // steal_chunk_vertices = 0 selects the fixed one-task-per-worker
  // schedule; the pooled arenas are shared by both dispatch modes.
  const Graph g = TestGraph();
  const AlgorithmParams params = TestParams();
  for (bool pooled : {true, false}) {
    pregel::EngineConfig config = PregelConfig(pooled, 2);
    config.steal_chunk_vertices = 0;
    pregel::Engine engine(config);
    auto fixed = pregel::RunAlgorithm(engine, g, AlgorithmKind::kBfs, params);
    pregel::Engine steal_engine(PregelConfig(pooled, 2));
    auto steal =
        pregel::RunAlgorithm(steal_engine, g, AlgorithmKind::kBfs, params);
    ASSERT_TRUE(fixed.ok());
    ASSERT_TRUE(steal.ok());
    ExpectSameOutput(*fixed, *steal,
                     pooled ? "pooled fixed-vs-steal" : "legacy fixed-vs-steal");
  }
}

TEST(PregelHotpathParity, IdenticalUnderDeterministicMessageDrops) {
  // With one thread the i-th hit of pregel.message.deliver is the i-th
  // delivered message, so a seeded drop plan selects the *same* messages in
  // both modes — if and only if pooled and legacy produce identical
  // delivery streams. Equal outputs and equal trigger counts pin that.
  const Graph g = TestGraph();
  const AlgorithmParams params = TestParams();
  for (AlgorithmKind kind : {AlgorithmKind::kBfs, AlgorithmKind::kConn}) {
    auto run = [&](bool pooled, uint64_t* dropped) {
      fault::FaultPlan plan(/*seed=*/1234);
      plan.Add({.site = "pregel.message.deliver",
                .kind = fault::FaultKind::kDrop,
                .probability = 0.25});
      fault::ScopedFaultPlan active(&plan);
      pregel::Engine engine(PregelConfig(pooled, 1));
      auto out = pregel::RunAlgorithm(engine, g, kind, params);
      *dropped = plan.TriggeredCount("pregel.message.deliver");
      return out;
    };
    uint64_t pooled_dropped = 0, legacy_dropped = 0;
    auto pooled = run(true, &pooled_dropped);
    auto legacy = run(false, &legacy_dropped);
    const std::string what =
        std::string(AlgorithmKindName(kind)) + " under message drops";
    ASSERT_TRUE(pooled.ok()) << what;
    ASSERT_TRUE(legacy.ok()) << what;
    EXPECT_GT(pooled_dropped, 0u) << what;
    EXPECT_EQ(pooled_dropped, legacy_dropped) << what;
    ExpectSameOutput(*pooled, *legacy, what);
  }
}

TEST(PregelHotpathParity, SameFailureStatusUnderWorkerCrash) {
  // A journal records a failed cell's status; pooled and legacy must
  // journal the same failure for the same injected crash.
  const Graph g = TestGraph();
  const AlgorithmParams params = TestParams();
  for (uint32_t threads : kThreadCounts) {
    auto run = [&](bool pooled) {
      fault::FaultPlan plan(/*seed=*/99);
      plan.Add({.site = "pregel.worker.compute",
                .kind = fault::FaultKind::kCrash,
                .skip_hits = 2,
                .max_triggers = 1});
      fault::ScopedFaultPlan active(&plan);
      pregel::Engine engine(PregelConfig(pooled, threads));
      return pregel::RunAlgorithm(engine, g, AlgorithmKind::kBfs, params);
    };
    auto pooled = run(true);
    auto legacy = run(false);
    EXPECT_FALSE(pooled.ok()) << threads << " threads";
    EXPECT_FALSE(legacy.ok()) << threads << " threads";
    EXPECT_EQ(pooled.status().code(), legacy.status().code())
        << threads << " threads: " << pooled.status().ToString() << " vs "
        << legacy.status().ToString();
    EXPECT_TRUE(pooled.status().IsInternal()) << pooled.status().ToString();
  }
}

TEST(PregelHotpathParity, MidSuperstepCancellationStopsBothModes) {
  // A stall injected inside a compute chunk holds the run mid-superstep
  // while another thread arms the deadline token; both memory models must
  // notice at the next poll and unwind with Timeout — the pooled arenas
  // must not skip the cancellation checks the legacy path honored.
  const Graph g = TestGraph();
  const AlgorithmParams base = TestParams();
  for (bool pooled : {true, false}) {
    fault::FaultPlan plan(/*seed=*/5);
    plan.Add({.site = "pregel.worker.compute",
              .kind = fault::FaultKind::kStall,
              .skip_hits = 1,
              .max_triggers = 2,
              .delay_seconds = 0.4});
    fault::ScopedFaultPlan active(&plan);
    CancelToken token;
    std::thread canceller([&token] {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      token.Cancel(CancelReason::kDeadline, "mid-superstep deadline");
    });
    pregel::EngineConfig config = PregelConfig(pooled, 2);
    config.cancel = &token;
    AlgorithmParams params = base;
    params.cancel = &token;
    pregel::Engine engine(config);
    auto out = pregel::RunAlgorithm(engine, g, AlgorithmKind::kPr, params);
    canceller.join();
    EXPECT_FALSE(out.ok()) << (pooled ? "pooled" : "legacy");
    EXPECT_TRUE(out.status().IsTimeout())
        << (pooled ? "pooled: " : "legacy: ") << out.status().ToString();
  }
}

// ---------------------------------------------------------------- Dataflow

TEST(DataflowHotpathParity, PooledMatchesLegacyAcrossPartitionCounts) {
  const Graph g = TestGraph();
  const AlgorithmParams params = TestParams();
  for (AlgorithmKind kind : kKinds) {
    for (uint32_t parts : kThreadCounts) {
      dataflow::ContextConfig pooled_config;
      pooled_config.num_partitions = parts;
      pooled_config.num_threads = parts;
      pooled_config.pooled_buffers = true;
      dataflow::ContextConfig legacy_config = pooled_config;
      legacy_config.pooled_buffers = false;
      auto pooled = dataflow::RunAlgorithm(pooled_config, g, kind, params);
      auto legacy = dataflow::RunAlgorithm(legacy_config, g, kind, params);
      const std::string what = std::string(AlgorithmKindName(kind)) + " @" +
                               std::to_string(parts) + " partitions";
      ASSERT_TRUE(pooled.ok()) << what << ": " << pooled.status().ToString();
      ASSERT_TRUE(legacy.ok()) << what << ": " << legacy.status().ToString();
      ExpectSameOutput(*pooled, *legacy, what);
    }
  }
}

TEST(DataflowHotpathParity, SameFailureStatusUnderShuffleFault) {
  const Graph g = TestGraph();
  const AlgorithmParams params = TestParams();
  auto run = [&](bool pooled) {
    fault::FaultPlan plan(/*seed=*/17);
    plan.Add({.site = "dataflow.shuffle",
              .kind = fault::FaultKind::kIOError,
              .skip_hits = 1,
              .max_triggers = 1});
    fault::ScopedFaultPlan active(&plan);
    dataflow::ContextConfig config;
    config.num_partitions = 4;
    config.pooled_buffers = pooled;
    return dataflow::RunAlgorithm(config, g, AlgorithmKind::kConn, params);
  };
  auto pooled = run(true);
  auto legacy = run(false);
  EXPECT_FALSE(pooled.ok());
  EXPECT_FALSE(legacy.ok());
  EXPECT_EQ(pooled.status().code(), legacy.status().code())
      << pooled.status().ToString() << " vs " << legacy.status().ToString();
  EXPECT_TRUE(pooled.status().IsIOError()) << pooled.status().ToString();
}

TEST(DataflowHotpathParity, CancellationStopsPooledRuns) {
  const Graph g = TestGraph();
  AlgorithmParams params = TestParams();
  fault::FaultPlan plan(/*seed=*/5);
  plan.Add({.site = "dataflow.materialize",
            .kind = fault::FaultKind::kStall,
            .skip_hits = 2,
            .max_triggers = 2,
            .delay_seconds = 0.4});
  fault::ScopedFaultPlan active(&plan);
  CancelToken token;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    token.Cancel(CancelReason::kDeadline, "dataflow deadline");
  });
  dataflow::ContextConfig config;
  config.num_partitions = 4;
  config.pooled_buffers = true;
  config.cancel = &token;
  params.cancel = &token;
  auto out = dataflow::RunAlgorithm(config, g, AlgorithmKind::kPr, params);
  canceller.join();
  EXPECT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsTimeout()) << out.status().ToString();
}

// ----------------------------------------------------------------- Graphdb

TEST(GraphdbHotpathParity, ShardCountDoesNotChangeResults) {
  // The shard count is a pure concurrency knob: 1 shard is the legacy
  // single-mutex cache, 8 shards the striped one. Same store, same
  // algorithm output, eviction pressure included (64 KiB cache = 8 pages).
  const Graph g = TestGraph();
  const AlgorithmParams params = TestParams();
  AlgorithmOutput baseline;
  for (uint32_t shards : {1u, 8u}) {
    auto dir = TempDir::Create("gly-hotpath-db");
    ASSERT_TRUE(dir.ok());
    graphdb::StoreConfig config;
    config.directory = dir->path() + "/store";
    config.page_cache_bytes = 64 << 10;
    config.page_cache_shards = shards;
    auto store = graphdb::GraphStore::Open(config);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE((*store)->BulkImport(g.ToEdgeList()).ok());
    auto out = graphdb::RunAlgorithmOnStore(store->get(), g.undirected(),
                                            /*memory_budget_bytes=*/0,
                                            AlgorithmKind::kBfs, params);
    ASSERT_TRUE(out.ok()) << shards << " shards: " << out.status().ToString();
    if (shards == 1) {
      baseline = std::move(*out);
    } else {
      ExpectSameOutput(*out, baseline, "sharded vs single-mutex cache");
    }
  }
}

TEST(PageCacheHotpath, ConcurrentReadersSeeConsistentPages) {
  // 8 reader threads hammer a cache whose capacity (16 pages) is far below
  // the 64-page working set, so the clock sweep runs concurrently with the
  // lookups. Every page carries a seeded pattern; any torn read, lost
  // writeback, or cross-shard aliasing surfaces as a payload mismatch (and
  // under TSan, as a race).
  auto dir = TempDir::Create("gly-hotpath-cache");
  ASSERT_TRUE(dir.ok());
  constexpr uint32_t kPages = 64;
  auto fill = [](uint32_t page, char* buf) {
    Rng rng(1000 + page);
    for (size_t i = 0; i < graphdb::kPageSize; ++i) {
      buf[i] = static_cast<char>(rng.NextBounded(256));
    }
  };
  graphdb::PageCache cache(16 * graphdb::kPageSize, /*shards=*/8);
  EXPECT_EQ(cache.shard_count(), 8u);
  auto file = cache.OpenFile(dir->File("hammer.db"));
  ASSERT_TRUE(file.ok());
  std::vector<char> page(graphdb::kPageSize);
  for (uint32_t p = 0; p < kPages; ++p) {
    fill(p, page.data());
    ASSERT_TRUE(cache
                    .Write(*file, uint64_t{p} * graphdb::kPageSize,
                           page.data(), page.size())
                    .ok());
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (uint32_t t = 0; t < 8; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(t);
      std::vector<char> got(graphdb::kPageSize);
      std::vector<char> want(graphdb::kPageSize);
      for (int i = 0; i < 400; ++i) {
        const uint32_t p = static_cast<uint32_t>(rng.NextBounded(kPages));
        if (!cache.Read(*file, uint64_t{p} * graphdb::kPageSize, got.data(),
                        got.size())
                 .ok() ||
            (fill(p, want.data()), got != want)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& r : readers) r.join();
  EXPECT_EQ(mismatches.load(), 0);
  const graphdb::PageCacheStats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);  // working set really exceeded capacity
  EXPECT_GT(stats.hits, 0u);
  EXPECT_LE(cache.resident_pages(), cache.capacity_pages());
  // After the dust settles the file must hold every pattern byte-for-byte.
  ASSERT_TRUE(cache.Flush().ok());
  std::vector<char> want(graphdb::kPageSize);
  for (uint32_t p = 0; p < kPages; ++p) {
    fill(p, want.data());
    ASSERT_TRUE(cache
                    .Read(*file, uint64_t{p} * graphdb::kPageSize, page.data(),
                          page.size())
                    .ok());
    EXPECT_EQ(page, want) << "page " << p;
  }
}

TEST(PageCacheHotpath, ShardCountClampsToCapacity) {
  // An explicit shard count never exceeds the page budget (every shard
  // owns at least one frame) and 0 selects the auto policy.
  graphdb::PageCache tiny(4 * graphdb::kPageSize, /*shards=*/16);
  EXPECT_LE(tiny.shard_count(), 4u);
  EXPECT_GE(tiny.shard_count(), 1u);
  graphdb::PageCache auto_cache(64 * graphdb::kPageSize);
  EXPECT_EQ(auto_cache.shard_count(), 8u);
  graphdb::PageCache one_page(1);  // rounds up to one page, one shard
  EXPECT_EQ(one_page.shard_count(), 1u);
  EXPECT_EQ(one_page.capacity_pages(), 1u);
}

}  // namespace
}  // namespace gly
