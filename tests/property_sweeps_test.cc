// Parameterized property sweeps: invariants checked across configuration
// grids (TEST_P/INSTANTIATE_TEST_SUITE_P), complementing the per-module
// unit tests.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "columnstore/column.h"
#include "common/random.h"
#include "common/temp_dir.h"
#include "dataflow/algorithms.h"
#include "datagen/degree_plugin.h"
#include "datagen/social_datagen.h"
#include "graph/graph.h"
#include "mapreduce/job.h"
#include "mapreduce/record.h"
#include "pregel/algorithms.h"
#include "ref/algorithms.h"

namespace gly {
namespace {

// ------------------------------------------------- degree plugin invariants
//
// For every plugin spec: samples are >= 1, the sample mean tracks the
// declared mean, and sampling is a pure function of the RNG state.

class DegreePluginSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(DegreePluginSweep, SamplesPositiveMeanTracksDeterministic) {
  auto plugin = datagen::MakeDegreePlugin(GetParam());
  ASSERT_TRUE(plugin.ok()) << GetParam();
  Rng rng_a(12345);
  Rng rng_b(12345);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    uint64_t a = (*plugin)->Sample(rng_a);
    uint64_t b = (*plugin)->Sample(rng_b);
    EXPECT_EQ(a, b);  // pure function of RNG state
    ASSERT_GE(a, 1u);
    sum += static_cast<double>(a);
  }
  double mean = sum / n;
  double declared = (*plugin)->MeanDegree();
  EXPECT_NEAR(mean, declared, declared * 0.15) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllPlugins, DegreePluginSweep,
    ::testing::Values("zeta:alpha=1.7,max=5000", "zeta:alpha=2.5",
                      "geometric:p=0.05", "geometric:p=0.5",
                      "weibull:shape=0.7,scale=12",
                      "weibull:shape=1.5,scale=6", "poisson:lambda=3",
                      "poisson:lambda=40", "facebook:mean=10",
                      "facebook:mean=50"));

// --------------------------------------------------- column codec invariants
//
// For every (shape, size): encoding round-trips exactly and never inflates
// beyond the plain-encoding footprint by more than the block directory.

enum class Shape { kSorted, kClustered, kRandom, kConstant, kSmallRange };

std::vector<uint32_t> MakeData(Shape shape, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint32_t> values(n);
  switch (shape) {
    case Shape::kSorted: {
      uint32_t acc = 0;
      for (auto& v : values) {
        acc += static_cast<uint32_t>(rng.NextBounded(7));
        v = acc;
      }
      break;
    }
    case Shape::kClustered:
      for (size_t i = 0; i < n; ++i) {
        values[i] = static_cast<uint32_t>((i / 512) * 100000 +
                                          rng.NextBounded(1024));
      }
      break;
    case Shape::kRandom:
      for (auto& v : values) v = static_cast<uint32_t>(rng.Next());
      break;
    case Shape::kConstant:
      std::fill(values.begin(), values.end(), 123456u);
      break;
    case Shape::kSmallRange:
      for (auto& v : values) {
        v = 7777777u + static_cast<uint32_t>(rng.NextBounded(3));
      }
      break;
  }
  return values;
}

class ColumnCodecSweep
    : public ::testing::TestWithParam<std::tuple<Shape, size_t>> {};

TEST_P(ColumnCodecSweep, RoundTripsAndBoundsFootprint) {
  auto [shape, n] = GetParam();
  std::vector<uint32_t> values = MakeData(shape, n, 99);
  columnstore::Column col = columnstore::Column::Encode(values);
  ASSERT_EQ(col.size(), values.size());
  std::vector<uint32_t> decoded;
  col.ReadRange(0, col.size(), &decoded);
  EXPECT_EQ(decoded, values);
  // Spot random access.
  Rng rng(7);
  for (int i = 0; i < 50 && n > 0; ++i) {
    uint64_t row = rng.NextBounded(n);
    EXPECT_EQ(col.Get(row), values[row]);
  }
  // Footprint bound: never worse than plain + directory slack.
  EXPECT_LE(col.compressed_bytes(), col.raw_bytes() + 64 * (n / 2048 + 1));
}

std::string ShapeName(Shape shape) {
  switch (shape) {
    case Shape::kSorted: return "sorted";
    case Shape::kClustered: return "clustered";
    case Shape::kRandom: return "random";
    case Shape::kConstant: return "constant";
    case Shape::kSmallRange: return "smallrange";
  }
  return "?";
}

std::string ColumnSweepName(
    const ::testing::TestParamInfo<std::tuple<Shape, size_t>>& info) {
  return ShapeName(std::get<0>(info.param)) + "_" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndSizes, ColumnCodecSweep,
    ::testing::Combine(::testing::Values(Shape::kSorted, Shape::kClustered,
                                         Shape::kRandom, Shape::kConstant,
                                         Shape::kSmallRange),
                       ::testing::Values(size_t{1}, size_t{2047},
                                         size_t{2048}, size_t{2049},
                                         size_t{50000})),
    ColumnSweepName);

// ----------------------------------------------------- MapReduce invariance
//
// The reduce output must be identical (as a multiset) for any mapper/
// reducer/sort-buffer configuration.

class IdentityMapper : public mapreduce::Mapper {
 public:
  void Map(const mapreduce::Record& input, mapreduce::Emitter* out,
           mapreduce::Counters*) override {
    out->Emit(input.key % 37, input.value);
  }
};

class ConcatLengthReducer : public mapreduce::Reducer {
 public:
  void Reduce(uint64_t key, const std::vector<std::string>& values,
              mapreduce::Emitter* out, mapreduce::Counters*) override {
    size_t total = 0;
    for (const auto& v : values) total += v.size();
    out->Emit(key, std::to_string(total));
  }
};

class MapReduceConfigSweep
    : public ::testing::TestWithParam<
          std::tuple<uint32_t, uint32_t, uint64_t>> {};

TEST_P(MapReduceConfigSweep, OutputInvariantUnderConfiguration) {
  auto [mappers, reducers, buffer] = GetParam();
  auto dir = TempDir::Create("gly-sweep");
  ASSERT_TRUE(dir.ok());
  std::vector<mapreduce::Record> input;
  Rng rng(5);
  for (uint64_t i = 0; i < 500; ++i) {
    input.push_back({i, std::string(rng.NextBounded(20), 'x')});
  }
  ASSERT_TRUE(mapreduce::WriteAllRecords(input, dir->File("in.bin")).ok());

  mapreduce::JobConfig config;
  config.num_mappers = mappers;
  config.num_reducers = reducers;
  config.sort_buffer_bytes = buffer;
  config.scratch_dir = dir->File("scratch");
  mapreduce::Job job(
      config, [] { return std::make_unique<IdentityMapper>(); },
      [] { return std::make_unique<ConcatLengthReducer>(); });
  ThreadPool pool(4);
  mapreduce::Counters counters;
  auto outputs =
      job.Run({dir->File("in.bin")}, dir->File("out"), &pool, &counters);
  ASSERT_TRUE(outputs.ok());

  std::vector<mapreduce::Record> all;
  for (const auto& path : *outputs) {
    auto records = mapreduce::ReadAllRecords(path);
    ASSERT_TRUE(records.ok());
    all.insert(all.end(), records->begin(), records->end());
  }
  std::sort(all.begin(), all.end(),
            [](const mapreduce::Record& a, const mapreduce::Record& b) {
              return a.key < b.key;
            });
  ASSERT_EQ(all.size(), 37u);  // keys 0..36 regardless of configuration
  // Total concatenated length is configuration-invariant.
  size_t expected_total = 0;
  for (const auto& r : input) expected_total += r.value.size();
  size_t total = 0;
  for (const auto& r : all) {
    total += static_cast<size_t>(std::stoull(r.value));
  }
  EXPECT_EQ(total, expected_total);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, MapReduceConfigSweep,
    ::testing::Combine(::testing::Values(1u, 3u, 8u),
                       ::testing::Values(1u, 4u),
                       ::testing::Values(uint64_t{512},
                                         uint64_t{8} << 20)),
    [](const ::testing::TestParamInfo<std::tuple<uint32_t, uint32_t,
                                                 uint64_t>>& info) {
      return "m" + std::to_string(std::get<0>(info.param)) + "_r" +
             std::to_string(std::get<1>(info.param)) + "_b" +
             std::to_string(std::get<2>(info.param));
    });

// --------------------------------------------- pregel engine configuration
//
// Algorithm outputs must be bit-identical across (workers, threads) grids.

class PregelConfigSweep
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(PregelConfigSweep, OutputsInvariantAcrossParallelism) {
  auto [workers, threads] = GetParam();
  EdgeList edges(300);
  Rng rng(31);
  for (int i = 0; i < 900; ++i) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(300));
    VertexId b = static_cast<VertexId>(rng.NextBounded(300));
    if (a != b) edges.Add(a, b);
  }
  Graph g = GraphBuilder::Undirected(edges).ValueOrDie();

  pregel::EngineConfig reference_config;
  reference_config.num_workers = 1;
  reference_config.num_threads = 1;
  pregel::EngineConfig sweep_config;
  sweep_config.num_workers = workers;
  sweep_config.num_threads = threads;

  AlgorithmParams params;
  params.cd = CdParams{4, 0.05};
  params.pr = PrParams{8, 0.85};
  for (AlgorithmKind kind : {AlgorithmKind::kBfs, AlgorithmKind::kConn,
                             AlgorithmKind::kCd}) {
    auto a = pregel::RunAlgorithm(pregel::Engine(reference_config), g, kind,
                                  params);
    auto b =
        pregel::RunAlgorithm(pregel::Engine(sweep_config), g, kind, params);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->vertex_values, b->vertex_values) << AlgorithmKindName(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Parallelism, PregelConfigSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 7u, 16u),
                       ::testing::Values(1u, 4u)),
    [](const ::testing::TestParamInfo<std::tuple<uint32_t, uint32_t>>& info) {
      return "w" + std::to_string(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------ datagen window invariants
//
// For any window size: determinism, no self loops, no duplicate edges,
// vertex bound respected.

class DatagenWindowSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DatagenWindowSweep, StructuralInvariants) {
  datagen::SocialDatagenConfig config;
  config.num_persons = 2000;
  config.degree_spec = "geometric:p=0.25";
  config.window_size = GetParam();
  config.seed = 77;
  auto a = datagen::SocialDatagen(config).Generate(nullptr);
  auto b = datagen::SocialDatagen(config).Generate(nullptr);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->edges.edges(), b->edges.edges());
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const Edge& e : a->edges.edges()) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_LT(e.src, 2000u);
    EXPECT_LT(e.dst, 2000u);
    EXPECT_LT(e.src, e.dst) << "canonical orientation";
    EXPECT_TRUE(seen.emplace(e.src, e.dst).second) << "duplicate edge";
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, DatagenWindowSweep,
                         ::testing::Values(2u, 16u, 64u, 333u, 4096u),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "w" + std::to_string(info.param);
                         });

// -------------------------------------------- BFS strategy/alpha/beta sweep
//
// The direction-optimizing kernel must produce the naive queue BFS's exact
// levels for EVERY point of the (strategy, alpha, beta) grid — including
// the degenerate corners (alpha/beta near zero or huge, which pin the
// kernel to always-top-down or always-bottom-up) — on graphs engineered to
// stress the switch: isolated vertices, self-loops (dropped by the
// builder), and a giant hub whose first expansion floods the frontier.

enum class BfsAdversary { kGiantHub, kIsolated, kSelfLoops, kTwoComponents };

std::string AdversaryName(BfsAdversary which) {
  switch (which) {
    case BfsAdversary::kGiantHub: return "gianthub";
    case BfsAdversary::kIsolated: return "isolated";
    case BfsAdversary::kSelfLoops: return "selfloops";
    case BfsAdversary::kTwoComponents: return "twocomponents";
  }
  return "?";
}

const Graph& AdversaryGraph(BfsAdversary which) {
  static const Graph giant_hub = [] {
    // Hub 0 touches 2000 leaves; a 50-vertex chain hangs off leaf 1 so the
    // sweep exercises both the flood level and a long sparse tail.
    EdgeList edges;
    for (VertexId v = 1; v <= 2000; ++v) edges.Add(0, v);
    for (VertexId v = 2000; v < 2050; ++v) edges.Add(v, v + 1);
    return GraphBuilder::Undirected(edges).ValueOrDie();
  }();
  static const Graph isolated = [] {
    // A small random core inside a vertex space 8x larger: most ids are
    // isolated, including the maximum vertex id.
    EdgeList edges(1600);
    Rng rng(41);
    for (int i = 0; i < 600; ++i) {
      VertexId a = static_cast<VertexId>(rng.NextBounded(200));
      VertexId b = static_cast<VertexId>(rng.NextBounded(200));
      if (a != b) edges.Add(a, b);
    }
    return GraphBuilder::Undirected(edges).ValueOrDie();
  }();
  static const Graph self_loops = [] {
    EdgeList edges;
    Rng rng(43);
    for (VertexId v = 0; v < 120; ++v) edges.Add(v, v);  // loop on every id
    for (int i = 0; i < 400; ++i) {
      VertexId a = static_cast<VertexId>(rng.NextBounded(120));
      VertexId b = static_cast<VertexId>(rng.NextBounded(120));
      edges.Add(a, b);  // loops allowed here too
    }
    return GraphBuilder::Undirected(edges).ValueOrDie();
  }();
  static const Graph two_components = [] {
    // Two dense blobs with no bridge: bottom-up probing must never leak
    // distances into the unreached component.
    EdgeList edges;
    Rng rng(47);
    for (int c = 0; c < 2; ++c) {
      for (int i = 0; i < 700; ++i) {
        VertexId a = static_cast<VertexId>(c * 150 + rng.NextBounded(150));
        VertexId b = static_cast<VertexId>(c * 150 + rng.NextBounded(150));
        if (a != b) edges.Add(a, b);
      }
    }
    return GraphBuilder::Undirected(edges).ValueOrDie();
  }();
  switch (which) {
    case BfsAdversary::kGiantHub: return giant_hub;
    case BfsAdversary::kIsolated: return isolated;
    case BfsAdversary::kSelfLoops: return self_loops;
    case BfsAdversary::kTwoComponents: return two_components;
  }
  return giant_hub;
}

struct BfsGridPoint {
  BfsStrategy strategy;
  double alpha;
  double beta;
  const char* name;
};

class BfsStrategySweep
    : public ::testing::TestWithParam<std::tuple<BfsAdversary, BfsGridPoint>> {
};

TEST_P(BfsStrategySweep, DirOptMatchesNaiveBfsEverywhere) {
  const auto& [adversary, point] = GetParam();
  const Graph& graph = AdversaryGraph(adversary);

  // Sweep sources: the (likely hub) vertex 0, a mid-id vertex, and the
  // maximum id — isolated sources must yield an all-unreachable output.
  const std::vector<VertexId> sources = {
      0, graph.num_vertices() / 2, graph.num_vertices() - 1};
  for (VertexId source : sources) {
    BfsParams params;
    params.source = source;
    params.strategy = point.strategy;
    params.alpha = point.alpha;
    params.beta = point.beta;
    AlgorithmOutput expected = ref::Bfs(graph, BfsParams{source});
    AlgorithmOutput got = ref::BfsDirOpt(graph, params);
    ASSERT_EQ(got.vertex_values, expected.vertex_values)
        << AdversaryName(adversary) << " " << point.name << " src " << source;

    // The dataflow engine routes through the same frontier kernel; its
    // grid behaviour must be identical.
    dataflow::ContextConfig ctx;
    ctx.num_partitions = 4;
    AlgorithmParams engine_params;
    engine_params.bfs = params;
    auto engine_out =
        dataflow::RunAlgorithm(ctx, graph, AlgorithmKind::kBfs, engine_params);
    ASSERT_TRUE(engine_out.ok());
    ASSERT_EQ(engine_out->vertex_values, expected.vertex_values)
        << "dataflow " << AdversaryName(adversary) << " " << point.name
        << " src " << source;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BfsStrategySweep,
    ::testing::Combine(
        ::testing::Values(BfsAdversary::kGiantHub, BfsAdversary::kIsolated,
                          BfsAdversary::kSelfLoops,
                          BfsAdversary::kTwoComponents),
        ::testing::Values(
            BfsGridPoint{BfsStrategy::kTopDown, 15.0, 18.0, "topdown"},
            BfsGridPoint{BfsStrategy::kBottomUp, 15.0, 18.0, "bottomup"},
            BfsGridPoint{BfsStrategy::kDirectionOptimizing, 15.0, 18.0,
                         "diropt_default"},
            // alpha tiny: the frontier never looks big enough -> top-down.
            BfsGridPoint{BfsStrategy::kDirectionOptimizing, 1e-6, 18.0,
                         "diropt_alpha_tiny"},
            // alpha huge: switches bottom-up on the first level.
            BfsGridPoint{BfsStrategy::kDirectionOptimizing, 1e9, 18.0,
                         "diropt_alpha_huge"},
            // beta tiny: snaps back top-down immediately after switching.
            BfsGridPoint{BfsStrategy::kDirectionOptimizing, 1e9, 1e-6,
                         "diropt_beta_tiny"},
            // beta huge: once bottom-up, stays bottom-up to the end.
            BfsGridPoint{BfsStrategy::kDirectionOptimizing, 1e9, 1e9,
                         "diropt_beta_huge"},
            BfsGridPoint{BfsStrategy::kDirectionOptimizing, 1.0, 1.0,
                         "diropt_ones"})),
    [](const ::testing::TestParamInfo<std::tuple<BfsAdversary, BfsGridPoint>>&
           info) {
      return AdversaryName(std::get<0>(info.param)) + "_" +
             std::get<1>(info.param).name;
    });

}  // namespace
}  // namespace gly
