// Frontier + AtomicBitset unit tests: sparse↔dense round-tripping, the
// auto-densify threshold, concurrent fills, and the Graph::Validate
// regression cases the traversal kernels rely on (empty graphs,
// max-vertex-id gaps, star graphs that force the dense representation).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <thread>
#include <vector>

#include "common/bitset.h"
#include "graph/frontier.h"
#include "graph/graph.h"
#include "ref/algorithms.h"

namespace gly {
namespace {

// ------------------------------------------------------------ AtomicBitset

TEST(AtomicBitsetTest, SetTestAndCount) {
  AtomicBitset bits(130);  // spans three words, last one partial
  EXPECT_EQ(bits.size(), 130u);
  EXPECT_EQ(bits.Count(), 0u);
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Set(129);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(63));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(129));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_FALSE(bits.Test(128));
  EXPECT_EQ(bits.Count(), 4u);
  bits.Reset();
  EXPECT_EQ(bits.Count(), 0u);
  EXPECT_FALSE(bits.Test(63));
}

TEST(AtomicBitsetTest, TestAndSetReportsTheWinner) {
  AtomicBitset bits(64);
  EXPECT_TRUE(bits.TestAndSet(17));
  EXPECT_FALSE(bits.TestAndSet(17));
  EXPECT_TRUE(bits.Test(17));
  EXPECT_EQ(bits.Count(), 1u);
}

TEST(AtomicBitsetTest, ForEachSetVisitsAscending) {
  AtomicBitset bits(200);
  const std::vector<size_t> expected = {3, 64, 65, 127, 128, 199};
  for (size_t i : expected) bits.Set(i);
  std::vector<size_t> seen;
  bits.ForEachSet([&seen](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(AtomicBitsetTest, ConcurrentTestAndSetElectsOneWinnerPerBit) {
  constexpr size_t kBits = 4096;
  constexpr int kThreads = 8;
  AtomicBitset bits(kBits);
  std::vector<uint64_t> wins(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bits, &wins, t] {
      for (size_t i = 0; i < kBits; ++i) {
        if (bits.TestAndSet(i)) ++wins[t];
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bits.Count(), kBits);
  EXPECT_EQ(std::accumulate(wins.begin(), wins.end(), uint64_t{0}), kBits);
}

TEST(AtomicBitsetTest, MoveTransfersOwnership) {
  AtomicBitset a(100);
  a.Set(42);
  AtomicBitset b(std::move(a));
  EXPECT_EQ(b.size(), 100u);
  EXPECT_TRUE(b.Test(42));
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): spec'd state
}

// ---------------------------------------------------------------- Frontier

TEST(FrontierTest, StartsEmptyAndSparse) {
  Frontier f(100);
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.size(), 0u);
  EXPECT_EQ(f.rep(), Frontier::Rep::kSparse);
  EXPECT_FALSE(f.Contains(0));
}

TEST(FrontierTest, ZeroVertexFrontierIsUsable) {
  Frontier f(0);
  EXPECT_TRUE(f.empty());
  f.Densify();
  EXPECT_EQ(f.rep(), Frontier::Rep::kDense);
  EXPECT_TRUE(f.ToSortedVertices().empty());
  f.Sparsify();
  EXPECT_TRUE(f.empty());
}

TEST(FrontierTest, SparseKeepsInsertionOrderDenseSortsAscending) {
  Frontier f(64, /*dense_threshold=*/32);
  const std::vector<VertexId> inserted = {9, 3, 27, 1};
  for (VertexId v : inserted) f.Add(v);
  EXPECT_EQ(f.sparse_vertices(), inserted);
  f.Densify();
  EXPECT_EQ(f.rep(), Frontier::Rep::kDense);
  EXPECT_EQ(f.size(), 4u);
  const std::vector<VertexId> sorted = {1, 3, 9, 27};
  EXPECT_EQ(f.ToSortedVertices(), sorted);
  f.Sparsify();
  EXPECT_EQ(f.sparse_vertices(), sorted);  // Sparsify emits ascending order
}

TEST(FrontierTest, RoundTripPreservesSetExactly) {
  constexpr VertexId kN = 1000;
  Frontier f(kN, /*dense_threshold=*/kN);  // stays sparse until told
  std::vector<VertexId> members;
  for (VertexId v = 0; v < kN; v += 7) members.push_back(v);
  for (VertexId v : members) f.Add(v);
  for (int round = 0; round < 3; ++round) {
    f.Densify();
    f.Sparsify();
  }
  EXPECT_EQ(f.ToSortedVertices(), members);
  EXPECT_EQ(f.size(), members.size());
  for (VertexId v = 0; v < kN; ++v) {
    EXPECT_EQ(f.Contains(v), v % 7 == 0) << v;
  }
}

TEST(FrontierTest, AddDensifiesPastThreshold) {
  Frontier f(256, /*dense_threshold=*/8);
  for (VertexId v = 0; v < 8; ++v) f.Add(v);
  EXPECT_EQ(f.rep(), Frontier::Rep::kSparse);
  f.Add(8);  // ninth member crosses the threshold
  EXPECT_EQ(f.rep(), Frontier::Rep::kDense);
  EXPECT_EQ(f.size(), 9u);
  for (VertexId v = 0; v <= 8; ++v) EXPECT_TRUE(f.Contains(v));
  EXPECT_FALSE(f.Contains(9));
}

TEST(FrontierTest, DefaultThresholdIsDenseFractionOfVertices) {
  Frontier f(1600);
  EXPECT_EQ(f.dense_threshold(),
            static_cast<uint64_t>(1600 * Frontier::kDefaultDenseFraction));
}

TEST(FrontierTest, MaxVertexIdGapsSurviveRoundTrip) {
  // Only the extreme ids are members — the dense bitmap's first and last
  // bits, with a gap covering every word in between.
  constexpr VertexId kN = 10000;
  Frontier f(kN, /*dense_threshold=*/1);
  f.Add(0);
  f.Add(kN - 1);  // Add densifies here
  EXPECT_EQ(f.rep(), Frontier::Rep::kDense);
  f.Sparsify();
  const std::vector<VertexId> expected = {0, kN - 1};
  EXPECT_EQ(f.sparse_vertices(), expected);
  EXPECT_TRUE(f.Contains(0));
  EXPECT_TRUE(f.Contains(kN - 1));
  EXPECT_FALSE(f.Contains(kN / 2));
}

TEST(FrontierTest, AddConcurrentDeduplicatesAcrossThreads) {
  constexpr VertexId kN = 2048;
  Frontier f(kN);
  f.Densify();
  constexpr int kThreads = 8;
  std::vector<uint64_t> added(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&f, &added, t] {
      for (VertexId v = 0; v < kN; ++v) {
        if (f.AddConcurrent(v)) ++added[t];
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(f.size(), kN);
  EXPECT_EQ(std::accumulate(added.begin(), added.end(), uint64_t{0}), kN);
  std::vector<VertexId> all(kN);
  std::iota(all.begin(), all.end(), 0);
  EXPECT_EQ(f.ToSortedVertices(), all);
}

TEST(FrontierTest, RecountDenseAfterDirectBitmapWrites) {
  Frontier f(128);
  f.Densify();
  // Simulate a parallel fill that wrote the bitmap directly.
  const_cast<AtomicBitset&>(f.bits()).Set(5);
  const_cast<AtomicBitset&>(f.bits()).Set(77);
  f.RecountDense();
  EXPECT_EQ(f.size(), 2u);
}

TEST(FrontierTest, ClearRevertsToEmptySparse) {
  Frontier f(64, /*dense_threshold=*/2);
  f.Add(1);
  f.Add(2);
  f.Add(3);
  EXPECT_EQ(f.rep(), Frontier::Rep::kDense);
  f.Clear();
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.rep(), Frontier::Rep::kSparse);
  f.Add(9);
  EXPECT_EQ(f.size(), 1u);
  EXPECT_TRUE(f.Contains(9));
}

TEST(FrontierTest, SwapExchangesContents) {
  Frontier a(64, 100);
  Frontier b(64, 100);
  a.Add(1);
  b.Add(2);
  b.Add(3);
  a.swap(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_TRUE(a.Contains(2));
  EXPECT_TRUE(b.Contains(1));
}

// ----------------------------------------- star graphs and Graph::Validate

// A star's first BFS level is (n-1)/n of the graph — one level guaranteed
// to cross any sensible dense threshold. The dir-opt kernel must agree
// with the naive queue BFS on it in every strategy.
TEST(FrontierTest, StarGraphForcesDenseAndKernelsAgree) {
  constexpr VertexId kLeaves = 4096;
  EdgeList edges;
  for (VertexId v = 1; v <= kLeaves; ++v) edges.Add(0, v);
  Graph star = GraphBuilder::Undirected(edges).ValueOrDie();
  ASSERT_TRUE(star.Validate().ok());

  // The frontier the hub's expansion produces densifies automatically.
  Frontier f(star.num_vertices());
  for (VertexId v = 1; v <= kLeaves; ++v) f.Add(v);
  EXPECT_EQ(f.rep(), Frontier::Rep::kDense);
  EXPECT_EQ(f.size(), kLeaves);

  BfsParams params;
  params.source = 0;
  AlgorithmOutput naive = ref::Bfs(star, params);
  for (BfsStrategy strategy :
       {BfsStrategy::kTopDown, BfsStrategy::kBottomUp,
        BfsStrategy::kDirectionOptimizing}) {
    params.strategy = strategy;
    AlgorithmOutput out = ref::BfsDirOpt(star, params);
    EXPECT_EQ(out.vertex_values, naive.vertex_values)
        << BfsStrategyName(strategy);
  }
}

TEST(GraphValidateTest, EmptyGraphValidates) {
  Graph g = GraphBuilder::Undirected(EdgeList()).ValueOrDie();
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_TRUE(g.Validate().ok());
  // Traversals over the empty graph are total no-ops, not crashes.
  Frontier f(g.num_vertices());
  EXPECT_TRUE(f.empty());
  AlgorithmOutput out = ref::BfsDirOpt(g, BfsParams{});
  EXPECT_TRUE(out.vertex_values.empty());
}

TEST(GraphValidateTest, TrailingIsolatedVerticesValidate) {
  // num_vertices far beyond the max endpoint id: the adjacency arrays have
  // a long all-empty tail that Validate and the kernels must both accept.
  EdgeList edges(5000);
  edges.Add(0, 1);
  edges.Add(1, 2);
  Graph g = GraphBuilder::Undirected(edges).ValueOrDie();
  ASSERT_EQ(g.num_vertices(), 5000u);
  EXPECT_TRUE(g.Validate().ok());
  AlgorithmOutput out = ref::BfsDirOpt(g, BfsParams{0});
  EXPECT_EQ(out.vertex_values[2], 2);
  for (VertexId v = 3; v < 5000; ++v) {
    ASSERT_EQ(out.vertex_values[v], kUnreachable) << v;
  }
}

TEST(GraphValidateTest, SelfLoopGraphValidatesAndTraverses) {
  EdgeList edges;
  edges.Add(0, 0);
  edges.Add(0, 1);
  edges.Add(2, 2);  // the builder drops loops, leaving vertex 2 isolated
  Graph g = GraphBuilder::Undirected(edges).ValueOrDie();
  EXPECT_TRUE(g.Validate().ok());
  AlgorithmOutput naive = ref::Bfs(g, BfsParams{0});
  AlgorithmOutput diropt = ref::BfsDirOpt(g, BfsParams{0});
  EXPECT_EQ(diropt.vertex_values, naive.vertex_values);
  EXPECT_EQ(diropt.vertex_values[1], 1);
  EXPECT_EQ(diropt.vertex_values[2], kUnreachable);
}

}  // namespace
}  // namespace gly
