// Integration suite for the observability layer (`ctest -L
// observability`): BFS and PR on an rmat-8 graph through all four
// platform engines with a trace directory set. Asserts the exported
// artifacts are a valid Chrome-trace document with well-formed span
// nesting, that per-cell traces and schema-versioned metrics come out,
// that Pregel's per-superstep spans agree with the engine's reported
// superstep count — and that all of it holds under an injected fault with
// a retry.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/temp_dir.h"
#include "common/threadpool.h"
#include "common/trace.h"
#include "datagen/rmat.h"
#include "harness/core.h"
#include "harness/run_config.h"

namespace gly::harness {
namespace {

Graph Rmat8() {
  datagen::RmatConfig config;
  config.scale = 8;
  config.edge_factor = 8;
  config.seed = 1;
  ThreadPool pool(2);
  EdgeList edges = datagen::RmatGenerator(config).Generate(&pool).ValueOrDie();
  return GraphBuilder::Undirected(edges).ValueOrDie();
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

const std::vector<std::string> kAllPlatforms = {"giraph", "graphx",
                                                "mapreduce", "neo4j"};

RunSpec MatrixSpec(const Graph* graph) {
  RunSpec spec;
  spec.platforms = kAllPlatforms;
  DatasetSpec dataset;
  dataset.name = "rmat8";
  dataset.graph = graph;
  dataset.params.pr.iterations = 5;
  spec.datasets.push_back(dataset);
  spec.algorithms = {AlgorithmKind::kBfs, AlgorithmKind::kPr};
  spec.monitor = false;
  return spec;
}

// Events of one name/phase in a window (e.g. every pregel.superstep 'E').
size_t CountEvents(const std::vector<trace::TraceEvent>& events,
                   std::string_view name, char phase) {
  return static_cast<size_t>(
      std::count_if(events.begin(), events.end(),
                    [&](const trace::TraceEvent& e) {
                      return e.name == name && e.phase == phase;
                    }));
}

// ------------------------------------------------- the full 4x2 matrix

TEST(ObservabilityTest, MatrixEmitsValidArtifactsOnEveryEngine) {
  auto dir = TempDir::Create("gly-obs");
  ASSERT_TRUE(dir.ok());
  Graph g = Rmat8();
  RunSpec spec = MatrixSpec(&g);
  spec.trace_dir = dir->File("trace");

  auto results = RunBenchmark(spec);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), kAllPlatforms.size() * 2);
  for (const BenchmarkResult& r : *results) {
    EXPECT_TRUE(r.status.ok()) << r.platform;
    EXPECT_TRUE(r.validation.ok()) << r.platform;
    // Every cell carries its span count and top phases.
    EXPECT_GT(r.trace_spans, 0u) << r.platform;
    EXPECT_FALSE(r.top_phases.empty()) << r.platform;

    // ... and its own per-cell trace, independently valid.
    std::string cell_file = spec.trace_dir + "/trace-" + r.platform + "-" +
                            r.graph + "-" + AlgorithmKindName(r.algorithm) +
                            ".json";
    ASSERT_TRUE(std::filesystem::exists(cell_file)) << cell_file;
    auto cell_check = trace::ValidateChromeTraceJson(ReadFileOrDie(cell_file));
    ASSERT_TRUE(cell_check.ok()) << cell_file << ": "
                                 << cell_check.status().ToString();
    EXPECT_GT(cell_check->completed_spans, 0u) << cell_file;
  }

  // The run-wide trace is valid and fully closed: every B has its E.
  std::string run_trace = ReadFileOrDie(spec.trace_dir + "/trace.json");
  auto check = trace::ValidateChromeTraceJson(run_trace);
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_EQ(check->unmatched_begins, 0u);
  EXPECT_GT(check->completed_spans, 0u);
  // Each engine family contributed its own spans to the timeline.
  EXPECT_NE(run_trace.find("\"pregel.superstep\""), std::string::npos);
  EXPECT_NE(run_trace.find("\"mapreduce.job\""), std::string::npos);
  EXPECT_NE(run_trace.find("\"dataflow.materialize\""), std::string::npos);
  EXPECT_NE(run_trace.find("\"graphdb.bulk_import\""), std::string::npos);

  // The metrics export parses against its schema and reflects the run:
  // one harness.cells tick per cell, and every engine family reported.
  auto parsed = metrics::Registry::FromJsonl(
      ReadFileOrDie(spec.trace_dir + "/metrics.jsonl"));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->count("harness.cells"));
  EXPECT_EQ(parsed->at("harness.cells").counter, results->size());
  ASSERT_TRUE(parsed->count("pregel.supersteps"));
  EXPECT_GT(parsed->at("pregel.supersteps").counter, 0u);
  ASSERT_TRUE(parsed->count("pregel.messages_sent"));
  EXPECT_GT(parsed->at("pregel.messages_sent").counter, 0u);
  ASSERT_TRUE(parsed->count("mapreduce.jobs"));
  EXPECT_GT(parsed->at("mapreduce.jobs").counter, 0u);
  ASSERT_TRUE(parsed->count("dataflow.datasets_materialized"));
  EXPECT_GT(parsed->at("dataflow.datasets_materialized").counter, 0u);
}

// ----------------------------------- superstep spans == superstep count

TEST(ObservabilityTest, SuperstepSpanCountMatchesReportedSupersteps) {
  Graph g = Rmat8();
  trace::FakeClock clock(0, 7);  // deterministic, distinct timestamps
  trace::Tracer tracer(&clock);
  metrics::Registry registry;

  RunSpec spec = MatrixSpec(&g);
  spec.platforms = {"giraph"};
  spec.algorithms = {AlgorithmKind::kBfs};
  spec.tracer = &tracer;
  spec.metrics = &registry;

  auto results = RunBenchmark(spec);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  const BenchmarkResult& r = (*results)[0];
  ASSERT_TRUE(r.status.ok());
  ASSERT_TRUE(r.platform_metrics.count("supersteps"));
  size_t reported = std::stoul(r.platform_metrics.at("supersteps"));

  std::vector<trace::TraceEvent> events = tracer.Snapshot();
  EXPECT_EQ(CountEvents(events, "pregel.superstep", 'E'), reported);
  // The registry agrees with the platform's own report.
  EXPECT_EQ(registry.Snapshot().at("pregel.supersteps").counter, reported);
  // Deterministic schedule + fake clock => well-formed, closed trace.
  auto check = trace::CheckWellFormed(events);
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_EQ(check->unmatched_begins, 0u);
}

// ------------------------------------------- fault + retry stays valid

#ifndef GLY_DISABLE_FAULT_POINTS

TEST(ObservabilityTest, InjectedFaultAndRetryKeepTraceValid) {
  auto dir = TempDir::Create("gly-obs");
  ASSERT_TRUE(dir.ok());
  Graph g = Rmat8();
  trace::Tracer tracer;
  metrics::Registry registry;

  fault::FaultPlan plan(0xFEED);
  plan.Add({.site = "pregel.run.start", .kind = fault::FaultKind::kCrash,
            .probability = 1.0, .max_triggers = 1});

  RunSpec spec = MatrixSpec(&g);
  spec.platforms = {"giraph"};
  spec.algorithms = {AlgorithmKind::kBfs};
  spec.trace_dir = dir->File("trace");
  spec.tracer = &tracer;
  spec.metrics = &registry;
  spec.fault_plan = &plan;
  spec.max_attempts = 2;

  auto results = RunBenchmark(spec);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  const BenchmarkResult& r = (*results)[0];
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();  // retry succeeded
  EXPECT_EQ(r.attempts, 2u);
  EXPECT_EQ(r.injected_faults, 1u);

  std::vector<trace::TraceEvent> events = tracer.Snapshot();
  // The fault and the retry both left their marks on the timeline.
  EXPECT_EQ(CountEvents(events, "fault.injected", 'i'), 1u);
  EXPECT_EQ(CountEvents(events, "harness.retry", 'i'), 1u);
  // Two run attempts, each a closed span.
  EXPECT_EQ(CountEvents(events, "harness.run", 'B'), 2u);
  EXPECT_EQ(CountEvents(events, "harness.run", 'E'), 2u);

  // Superstep spans are per *attempt*; the successful (last) attempt's
  // count must equal the engine's reported superstep total.
  ASSERT_TRUE(r.platform_metrics.count("supersteps"));
  size_t reported = std::stoul(r.platform_metrics.at("supersteps"));
  size_t last_run_begin = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].name == "harness.run" && events[i].phase == 'B') {
      last_run_begin = i;
    }
  }
  std::vector<trace::TraceEvent> last_attempt(
      events.begin() + static_cast<ptrdiff_t>(last_run_begin), events.end());
  EXPECT_EQ(CountEvents(last_attempt, "pregel.superstep", 'E'), reported);

  // The exported artifacts survive the fault path intact.
  auto check = trace::ValidateChromeTraceJson(
      ReadFileOrDie(spec.trace_dir + "/trace.json"));
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_EQ(check->unmatched_begins, 0u);
  auto parsed = metrics::Registry::FromJsonl(
      ReadFileOrDie(spec.trace_dir + "/metrics.jsonl"));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->at("harness.retries").counter, 1u);
}

#endif  // GLY_DISABLE_FAULT_POINTS

// ------------------------------------------------ config-level plumbing

TEST(ObservabilityTest, TraceDirConfigKeyCapturesEtlSpans) {
  // Through RunFromConfig (what `graphalytics_run --trace-dir` hits): the
  // tracer is installed before the graphs are built, so the run-wide trace
  // includes the ETL phase, not just the benchmark cells.
  auto dir = TempDir::Create("gly-obs");
  ASSERT_TRUE(dir.ok());
  Config config = *Config::Parse(
      "graphs = r\n"
      "graph.r.source = rmat\n"
      "graph.r.scale = 8\n"
      "graph.r.edge_factor = 8\n"
      "platforms = giraph\n"
      "algorithms = bfs\n"
      "monitor = false\n"
      "etl.threads = 2\n");
  config.Set("trace.dir", dir->File("trace"));

  auto out = RunFromConfig(config);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->results.size(), 1u);
  EXPECT_TRUE(out->results[0].status.ok());
  EXPECT_GT(out->results[0].trace_spans, 0u);

  std::string json = ReadFileOrDie(dir->File("trace") + "/trace.json");
  auto check = trace::ValidateChromeTraceJson(json);
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_EQ(check->unmatched_begins, 0u);
  EXPECT_NE(json.find("\"harness.etl\""), std::string::npos);
  EXPECT_NE(json.find("\"etl.csr_build\""), std::string::npos);
  EXPECT_NE(json.find("\"harness.cell\""), std::string::npos);
}

TEST(ObservabilityTest, TracingOffRecordsNothing) {
  Graph g = Rmat8();
  RunSpec spec = MatrixSpec(&g);
  spec.platforms = {"giraph"};
  spec.algorithms = {AlgorithmKind::kBfs};
  auto results = RunBenchmark(spec);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ((*results)[0].trace_spans, 0u);
  EXPECT_TRUE((*results)[0].top_phases.empty());
}

}  // namespace
}  // namespace gly::harness
