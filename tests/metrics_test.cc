// Tests for the metrics registry (common/metrics.h): counter/gauge/
// histogram semantics, the schema-versioned metrics.jsonl round-trip
// (serialize -> parse -> compare, mirroring the report's ResultFromJson
// round-trip), histogram merge correctness, and a concurrent-increment
// stress case for the TSan stage.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/temp_dir.h"

namespace gly::metrics {
namespace {

// ---------------------------------------------------------- basic metrics

TEST(MetricsTest, CounterGaugeHistogramBasics) {
  Registry registry;
  Counter* c = registry.GetCounter("pregel.messages_sent");
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->Value(), 42u);
  // Create-on-first-use returns stable pointers.
  EXPECT_EQ(registry.GetCounter("pregel.messages_sent"), c);

  Gauge* g = registry.GetGauge("harness.rss_bytes");
  g->Set(1.5);
  g->Set(2.5);  // last write wins
  EXPECT_EQ(g->Value(), 2.5);

  HistogramMetric* h = registry.GetHistogram("etl.chunk_edges");
  h->Observe(1);
  h->Observe(1);
  h->Observe(4);
  Histogram snap = h->Snapshot();
  EXPECT_EQ(snap.total_count(), 3u);
  EXPECT_EQ(snap.Min(), 1u);
  EXPECT_EQ(snap.Max(), 4u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 2.0);
}

TEST(MetricsTest, HistogramMergeFoldsObservations) {
  Histogram a;
  a.Add(1, 2);
  a.Add(10);
  Histogram b;
  b.Add(1);
  b.Add(5, 3);

  HistogramMetric metric;
  metric.MergeFrom(a);
  metric.MergeFrom(b);
  Histogram merged = metric.Snapshot();
  EXPECT_EQ(merged.total_count(), 7u);
  EXPECT_EQ(merged.CountOf(1), 3u);
  EXPECT_EQ(merged.CountOf(5), 3u);
  EXPECT_EQ(merged.CountOf(10), 1u);
  // Merge is equivalent to replaying the Add calls: summary stats match.
  Histogram replay;
  replay.Add(1, 3);
  replay.Add(5, 3);
  replay.Add(10);
  EXPECT_DOUBLE_EQ(merged.Mean(), replay.Mean());
  EXPECT_DOUBLE_EQ(merged.Variance(), replay.Variance());
}

TEST(MetricsTest, SnapshotNameCollisionCounterWins) {
  // Reusing one name across types is a caller bug, but the snapshot must
  // stay deterministic: counter wins over gauge wins over histogram.
  Registry registry;
  registry.GetHistogram("x")->Observe(1);
  registry.GetGauge("x")->Set(7.0);
  registry.GetCounter("x")->Add(3);
  auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot.at("x").type, MetricValue::Type::kCounter);
  EXPECT_EQ(snapshot.at("x").counter, 3u);
}

// ------------------------------------------------------ scoped activation

TEST(MetricsTest, InlineHelpersAreNoOpsWithoutRegistry) {
  ASSERT_EQ(ActiveRegistry(), nullptr);
  AddCounter("nobody.listening");
  SetGauge("nobody.listening", 1.0);
  Observe("nobody.listening", 1);  // must not crash
}

TEST(MetricsTest, ScopedRegistryRoutesInlineHelpers) {
  Registry registry;
  {
    ScopedRegistry active(&registry);
    AddCounter("harness.cells");
    AddCounter("harness.cells", 2);
    SetGauge("harness.load_s", 0.25);
    Observe("etl.chunk_edges", 9);
  }
  EXPECT_EQ(ActiveRegistry(), nullptr);
  AddCounter("harness.cells", 100);  // after scope: dropped
  auto snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.at("harness.cells").counter, 3u);
  EXPECT_EQ(snapshot.at("harness.load_s").gauge, 0.25);
  EXPECT_EQ(snapshot.at("etl.chunk_edges").histogram.total_count(), 1u);
}

// -------------------------------------------------------- jsonl round-trip

TEST(MetricsTest, GoldenJsonl) {
  Registry registry;
  registry.GetCounter("a.count")->Add(3);
  registry.GetGauge("b.gauge")->Set(2.5);
  HistogramMetric* h = registry.GetHistogram("c.hist");
  h->Observe(1);
  h->Observe(1);
  h->Observe(4);
  EXPECT_EQ(registry.ToJsonl(),
            "{\"schema_version\":1,\"kind\":\"gly.metrics\"}\n"
            "{\"name\":\"a.count\",\"type\":\"counter\",\"value\":3}\n"
            "{\"name\":\"b.gauge\",\"type\":\"gauge\",\"value\":2.5}\n"
            "{\"name\":\"c.hist\",\"type\":\"histogram\",\"count\":3,"
            "\"min\":1,\"max\":4,\"mean\":2,\"p50\":1,\"p95\":1,\"p99\":1,"
            "\"items\":[[1,2],[4,1]]}\n");
}

TEST(MetricsTest, JsonlRoundTrip) {
  Registry registry;
  registry.GetCounter("pregel.messages_sent")->Add(12345);
  registry.GetCounter("graphdb.wal.appends")->Add(7);
  registry.GetGauge("harness.cpu_utilization")->Set(1.75);
  HistogramMetric* h = registry.GetHistogram("mapreduce.spill_bytes");
  h->Observe(0);
  h->Observe(4096);
  h->Observe(4096);
  h->Observe(65536);

  auto parsed = Registry::FromJsonl(registry.ToJsonl());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto original = registry.Snapshot();
  ASSERT_EQ(parsed->size(), original.size());
  for (const auto& [name, want] : original) {
    ASSERT_TRUE(parsed->count(name)) << name;
    const MetricValue& got = parsed->at(name);
    EXPECT_EQ(got.type, want.type) << name;
    EXPECT_EQ(got.counter, want.counter) << name;
    EXPECT_EQ(got.gauge, want.gauge) << name;
    EXPECT_EQ(got.histogram.Items(), want.histogram.Items()) << name;
    EXPECT_EQ(got.histogram.total_count(), want.histogram.total_count())
        << name;
  }
}

TEST(MetricsTest, FromJsonlRejectsBadDocuments) {
  // Empty / headerless.
  EXPECT_FALSE(Registry::FromJsonl("").ok());
  EXPECT_FALSE(
      Registry::FromJsonl("{\"name\":\"a\",\"type\":\"counter\",\"value\":1}")
          .ok());
  // Version zero / non-numeric versions are rejected.
  EXPECT_FALSE(
      Registry::FromJsonl("{\"schema_version\":0,\"kind\":\"gly.metrics\"}\n")
          .ok());
  EXPECT_FALSE(
      Registry::FromJsonl(
          "{\"schema_version\":\"x\",\"kind\":\"gly.metrics\"}\n")
          .ok());
  // Wrong kind.
  EXPECT_FALSE(
      Registry::FromJsonl("{\"schema_version\":1,\"kind\":\"gly.trace\"}\n")
          .ok());
  // Unknown metric type.
  EXPECT_FALSE(
      Registry::FromJsonl("{\"schema_version\":1,\"kind\":\"gly.metrics\"}\n"
                          "{\"name\":\"a\",\"type\":\"meter\",\"value\":1}\n")
          .ok());
  // Histogram without items.
  EXPECT_FALSE(
      Registry::FromJsonl("{\"schema_version\":1,\"kind\":\"gly.metrics\"}\n"
                          "{\"name\":\"a\",\"type\":\"histogram\"}\n")
          .ok());
  // Header alone is a valid, empty document.
  auto empty =
      Registry::FromJsonl("{\"schema_version\":1,\"kind\":\"gly.metrics\"}\n");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

// Forward compatibility: files written by a newer tool version — a higher
// schema_version, extra keys per line, even whole metric types this reader
// has never heard of — must still load the metrics it does understand.
TEST(MetricsTest, FromJsonlToleratesFutureSchemas) {
  // Future schema version with known content parses fully.
  auto v2 = Registry::FromJsonl(
      "{\"schema_version\":2,\"kind\":\"gly.metrics\"}\n"
      "{\"name\":\"a\",\"type\":\"counter\",\"value\":7}\n");
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_EQ(v2->at("a").counter, 7u);

  // Unknown keys ride along silently, on the header and on metric lines.
  auto extra = Registry::FromJsonl(
      "{\"schema_version\":1,\"kind\":\"gly.metrics\",\"writer\":\"v9\"}\n"
      "{\"name\":\"a\",\"type\":\"counter\",\"value\":3,\"unit\":\"ops\"}\n"
      "{\"name\":\"g\",\"shard\":4,\"type\":\"gauge\",\"value\":1.5}\n");
  ASSERT_TRUE(extra.ok()) << extra.status().ToString();
  EXPECT_EQ(extra->at("a").counter, 3u);
  EXPECT_EQ(extra->at("g").gauge, 1.5);

  // A metric type from the future is skipped under version >= 2 (it would
  // be rejected as corruption under version 1) and the rest still loads.
  auto skipped = Registry::FromJsonl(
      "{\"schema_version\":2,\"kind\":\"gly.metrics\"}\n"
      "{\"name\":\"m\",\"type\":\"meter\",\"value\":9}\n"
      "{\"name\":\"a\",\"type\":\"counter\",\"value\":2}\n");
  ASSERT_TRUE(skipped.ok()) << skipped.status().ToString();
  EXPECT_EQ(skipped->count("m"), 0u);
  EXPECT_EQ(skipped->at("a").counter, 2u);
}

TEST(MetricsTest, WriteToRoundTripsThroughDisk) {
  auto dir = TempDir::Create("gly-metrics");
  ASSERT_TRUE(dir.ok());
  Registry registry;
  registry.GetCounter("harness.cells")->Add(4);
  std::string path = dir->File("metrics.jsonl");
  ASSERT_TRUE(registry.WriteTo(path).ok());
  std::string contents;
  {
    FILE* f = fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    size_t n = fread(buf, 1, sizeof(buf), f);
    fclose(f);
    contents.assign(buf, n);
  }
  auto parsed = Registry::FromJsonl(contents);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->at("harness.cells").counter, 4u);
  EXPECT_TRUE(registry.WriteTo(dir->File("no/such/dir/m.jsonl")).IsIOError());
}

// ------------------------------------------------------ concurrent stress

// Counters are incremented from many threads through the inline helper;
// the final value must be exact. Runs under the TSan CI stage via the
// `observability` label.
TEST(MetricsTest, ConcurrentIncrementsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 10000;
  Registry registry;
  {
    ScopedRegistry active(&registry);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([] {
        for (int i = 0; i < kIncrementsPerThread; ++i) {
          AddCounter("stress.count");
          Observe("stress.hist", static_cast<uint64_t>(i % 4));
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  auto snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.at("stress.count").counter,
            static_cast<uint64_t>(kThreads * kIncrementsPerThread));
  EXPECT_EQ(snapshot.at("stress.hist").histogram.total_count(),
            static_cast<uint64_t>(kThreads * kIncrementsPerThread));
}

}  // namespace
}  // namespace gly::metrics
