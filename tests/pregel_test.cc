// Tests for the Pregel/BSP engine and its algorithm implementations.

#include <gtest/gtest.h>

#include <cmath>
#include <span>

#include "datagen/rmat.h"
#include "graph/graph.h"
#include "harness/validator.h"
#include "pregel/algorithms.h"
#include "pregel/engine.h"
#include "ref/algorithms.h"

namespace gly::pregel {
namespace {

Graph RandomUndirected(VertexId n, size_t m, uint64_t seed) {
  EdgeList edges(n);
  Rng rng(seed);
  while (edges.num_edges() < m) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(n));
    VertexId b = static_cast<VertexId>(rng.NextBounded(n));
    if (a != b) edges.Add(a, b);
  }
  return GraphBuilder::Undirected(edges).ValueOrDie();
}

Engine DefaultEngine() {
  EngineConfig config;
  config.num_workers = 4;
  config.num_threads = 4;
  return Engine(config);
}

// ----------------------------------------------------------------- engine

// A trivial program: every vertex floods its value once, then halts.
struct FloodProgram : VertexProgram<int64_t, int64_t> {
  int64_t Init(const Graph&, VertexId v) override { return v; }
  void Compute(Context& ctx, std::span<const int64_t> messages) override {
    if (ctx.superstep() == 0) ctx.SendToNeighbors(ctx.value());
    for (int64_t m : messages) ctx.value() += m;
    ctx.VoteToHalt();
  }
};

TEST(PregelEngineTest, TerminatesWhenAllHalt) {
  Graph g = RandomUndirected(50, 100, 3);
  FloodProgram program;
  auto run = DefaultEngine().Run(g, &program);
  ASSERT_TRUE(run.ok());
  EXPECT_LE(run->stats.supersteps, 3u);
  EXPECT_GT(run->stats.total_messages, 0u);
}

TEST(PregelEngineTest, StatsArePerSuperstep) {
  Graph g = RandomUndirected(50, 100, 4);
  FloodProgram program;
  auto run = DefaultEngine().Run(g, &program);
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run->stats.per_superstep.size(), run->stats.supersteps);
  EXPECT_EQ(run->stats.per_superstep[0].active_vertices, 50u);
}

TEST(PregelEngineTest, MemoryBudgetFailsRun) {
  Graph g = RandomUndirected(1000, 5000, 5);
  EngineConfig config;
  config.num_workers = 4;
  config.memory_budget_bytes = 1024;  // absurdly small
  Engine engine(config);
  auto result = RunBfs(engine, g, BfsParams{0});
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted());
}

TEST(PregelEngineTest, BalancedPartitioningMatchesHashOutputs) {
  Graph g = RandomUndirected(250, 800, 18);
  AlgorithmParams params;
  params.cd = CdParams{4, 0.05};
  EngineConfig hash_config;
  hash_config.num_workers = 6;
  EngineConfig balanced_config = hash_config;
  balanced_config.partitioning = PartitioningPolicy::kBalanced;
  for (AlgorithmKind kind : {AlgorithmKind::kBfs, AlgorithmKind::kConn,
                             AlgorithmKind::kCd}) {
    auto a = RunAlgorithm(Engine(hash_config), g, kind, params);
    auto b = RunAlgorithm(Engine(balanced_config), g, kind, params);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->vertex_values, b->vertex_values) << AlgorithmKindName(kind);
  }
}

TEST(PregelEngineTest, MaxSuperstepsBoundsRun) {
  // A long path needs ~500 supersteps for CONN; the cap must stop it early.
  EdgeList edges;
  for (VertexId v = 0; v + 1 < 500; ++v) edges.Add(v, v + 1);
  Graph g = GraphBuilder::Undirected(edges).ValueOrDie();
  EngineConfig config;
  config.num_workers = 2;
  config.max_supersteps = 3;
  RunStats stats;
  auto out = RunConn(Engine(config), g, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(stats.supersteps, 3u);
}

// A program exercising all three aggregator kinds: every vertex
// contributes its id once in superstep 0.
struct AggregatingProgram : VertexProgram<int64_t, int64_t> {
  int64_t Init(const Graph&, VertexId v) override { return v; }
  void Compute(Context& ctx, std::span<const int64_t>) override {
    if (ctx.superstep() == 0) {
      double v = static_cast<double>(ctx.vertex());
      ctx.AggregateValue("sum", v);
      ctx.AggregateValue("min", v);
      ctx.AggregateValue("max", v);
      return;  // stay active one more superstep to read the results
    }
    // Superstep 1: aggregates from superstep 0 are visible.
    ctx.value() = static_cast<int64_t>(ctx.GetAggregate("sum"));
    ctx.VoteToHalt();
  }
  void RegisterAggregators(Aggregators* aggregators) const override {
    aggregators->Register("sum", Aggregators::Kind::kSum);
    aggregators->Register("min", Aggregators::Kind::kMin);
    aggregators->Register("max", Aggregators::Kind::kMax);
  }
};

TEST(PregelEngineTest, AggregatorsCombineAcrossWorkers) {
  Graph g = RandomUndirected(100, 200, 15);
  AggregatingProgram program;
  auto run = DefaultEngine().Run(g, &program);
  ASSERT_TRUE(run.ok());
  // Sum of ids 0..99 = 4950, visible to every vertex in superstep 1
  // regardless of which worker aggregated it (the per-worker partials must
  // merge across all 4 workers).
  for (int64_t v : run->values) EXPECT_EQ(v, 4950);
  // Epoch semantics: the caller-facing values are those of the epoch after
  // the final superstep; nothing contributed in superstep 1, so they roll
  // to the identities.
  EXPECT_DOUBLE_EQ(run->aggregators.Get("sum"), 0.0);
  EXPECT_TRUE(std::isinf(run->aggregators.Get("min")));
}

TEST(PregelEngineTest, UnregisteredAggregatorIsDropped) {
  Graph g = RandomUndirected(20, 40, 16);
  struct Rogue : VertexProgram<int64_t, int64_t> {
    int64_t Init(const Graph&, VertexId v) override { return v; }
    void Compute(Context& ctx, std::span<const int64_t>) override {
      ctx.AggregateValue("nope", 1.0);
      ctx.VoteToHalt();
    }
  } program;
  auto run = DefaultEngine().Run(g, &program);
  ASSERT_TRUE(run.ok());
  EXPECT_DOUBLE_EQ(run->aggregators.Get("nope"), 0.0);
}

TEST(PregelEngineTest, BfsFrontierAggregatorSumsToReached) {
  Graph g = RandomUndirected(200, 600, 17);
  // The BFS program aggregates newly discovered vertices per superstep;
  // run stats expose per-superstep values only via the final epoch, so
  // check the invariant against the output instead: final frontier is 0
  // (converged) and distances mark every reached vertex.
  BfsParams params{0};
  auto out = RunBfs(DefaultEngine(), g, params);
  ASSERT_TRUE(out.ok());
  size_t reached = 0;
  for (int64_t d : out->vertex_values) {
    if (d != kUnreachable) ++reached;
  }
  EXPECT_GT(reached, 1u);
}

// ------------------------------------------------------------- algorithms

TEST(PregelAlgorithmsTest, BfsMatchesReference) {
  Graph g = RandomUndirected(300, 900, 7);
  BfsParams params{0};
  auto out = RunBfs(DefaultEngine(), g, params);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(
      harness::ValidateOutput(g, AlgorithmKind::kBfs, {params, {}, {}, {}}, *out)
          .ok());
}

TEST(PregelAlgorithmsTest, BfsOnDirectedGraph) {
  EdgeList edges;
  Rng rng(8);
  for (int i = 0; i < 500; ++i) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(100));
    VertexId b = static_cast<VertexId>(rng.NextBounded(100));
    if (a != b) edges.Add(a, b);
  }
  Graph g = GraphBuilder::Directed(edges).ValueOrDie();
  AlgorithmParams params;
  params.bfs.source = 3;
  auto out = RunBfs(DefaultEngine(), g, params.bfs);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(
      harness::ValidateOutput(g, AlgorithmKind::kBfs, params, *out).ok());
}

TEST(PregelAlgorithmsTest, ConnMatchesReferenceIncludingDirected) {
  Graph g = RandomUndirected(300, 500, 9);  // several components
  auto out = RunConn(DefaultEngine(), g);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(
      harness::ValidateOutput(g, AlgorithmKind::kConn, {}, *out).ok());

  EdgeList directed_edges;
  Rng rng(10);
  for (int i = 0; i < 200; ++i) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(150));
    VertexId b = static_cast<VertexId>(rng.NextBounded(150));
    if (a != b) directed_edges.Add(a, b);
  }
  Graph dg = GraphBuilder::Directed(directed_edges).ValueOrDie();
  auto dout = RunConn(DefaultEngine(), dg);
  ASSERT_TRUE(dout.ok());
  EXPECT_TRUE(
      harness::ValidateOutput(dg, AlgorithmKind::kConn, {}, *dout).ok());
}

TEST(PregelAlgorithmsTest, CdMatchesReference) {
  Graph g = RandomUndirected(200, 600, 11);
  AlgorithmParams params;
  params.cd = CdParams{6, 0.05};
  auto out = RunCd(DefaultEngine(), g, params.cd);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(
      harness::ValidateOutput(g, AlgorithmKind::kCd, params, *out).ok());
}

TEST(PregelAlgorithmsTest, StatsMatchesReference) {
  Graph g = RandomUndirected(200, 600, 12);
  auto out = RunStatsAlgorithm(DefaultEngine(), g);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(
      harness::ValidateOutput(g, AlgorithmKind::kStats, {}, *out).ok());
}

TEST(PregelAlgorithmsTest, EvoMatchesReference) {
  Graph g = RandomUndirected(200, 600, 13);
  AlgorithmParams params;
  params.evo.num_new_vertices = 10;
  auto out = RunEvo(DefaultEngine(), g, params.evo);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(
      harness::ValidateOutput(g, AlgorithmKind::kEvo, params, *out).ok());
}

TEST(PregelAlgorithmsTest, DeterministicAcrossWorkerCounts) {
  Graph g = RandomUndirected(300, 900, 14);
  AlgorithmParams params;
  params.cd = CdParams{5, 0.05};
  EngineConfig c1;
  c1.num_workers = 1;
  c1.num_threads = 1;
  EngineConfig c2;
  c2.num_workers = 8;
  c2.num_threads = 8;
  for (AlgorithmKind kind : {AlgorithmKind::kBfs, AlgorithmKind::kConn,
                             AlgorithmKind::kCd}) {
    auto a = RunAlgorithm(Engine(c1), g, kind, params);
    auto b = RunAlgorithm(Engine(c2), g, kind, params);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->vertex_values, b->vertex_values) << AlgorithmKindName(kind);
  }
}

TEST(PregelAlgorithmsTest, CombinerReducesMessages) {
  // The ablation_network experiment's mechanism: the min combiner must
  // reduce delivered messages on a graph with many parallel paths.
  datagen::RmatConfig rmat;
  rmat.scale = 10;
  rmat.edge_factor = 8;
  auto edges = datagen::RmatGenerator(rmat).Generate(nullptr);
  ASSERT_TRUE(edges.ok());
  Graph g = GraphBuilder::Undirected(*edges).ValueOrDie();
  RunStats with;
  RunStats without;
  auto a = RunBfs(DefaultEngine(), g, BfsParams{0}, &with);
  auto b = RunBfsNoCombiner(DefaultEngine(), g, BfsParams{0}, &without);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->vertex_values, b->vertex_values);
  EXPECT_LT(with.total_messages, without.total_messages);
  EXPECT_LT(with.total_cross_worker_bytes, without.total_cross_worker_bytes);
}

TEST(PregelEngineTest, DenseDeliveryMatchesSparseBitIdentically) {
  // The dense-frontier fast path folds combined messages engine-side; its
  // outputs must be indistinguishable from classic sparse delivery — for
  // BFS/CONN (integers) and PR (floats, where fold order matters).
  datagen::RmatConfig rmat;
  rmat.scale = 10;
  rmat.edge_factor = 8;
  auto edges = datagen::RmatGenerator(rmat).Generate(nullptr);
  ASSERT_TRUE(edges.ok());
  Graph g = GraphBuilder::Undirected(*edges).ValueOrDie();

  EngineConfig classic;
  classic.num_workers = 4;
  classic.num_threads = 4;
  classic.dense_frontier_threshold = 0.0;  // force sparse delivery
  classic.steal_chunk_vertices = 0;
  EngineConfig dense = classic;
  dense.dense_frontier_threshold = 0.01;  // densify almost immediately

  AlgorithmParams params;
  params.pr = PrParams{8, 0.85};
  for (AlgorithmKind kind :
       {AlgorithmKind::kBfs, AlgorithmKind::kConn, AlgorithmKind::kPr}) {
    RunStats classic_stats;
    RunStats dense_stats;
    auto a = RunAlgorithm(Engine(classic), g, kind, params, &classic_stats);
    auto b = RunAlgorithm(Engine(dense), g, kind, params, &dense_stats);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->vertex_values, b->vertex_values) << AlgorithmKindName(kind);
    // Bit-identical, not approximately equal: the engine folds combined
    // messages in exactly the sparse push order.
    EXPECT_EQ(a->vertex_scores, b->vertex_scores) << AlgorithmKindName(kind);
    EXPECT_EQ(classic_stats.dense_supersteps, 0u);
    EXPECT_GT(dense_stats.dense_supersteps, 0u) << AlgorithmKindName(kind);
  }
}

TEST(PregelEngineTest, DenseDeliveryRequiresACombiner) {
  // CD registers no combiner (the adoption rule needs the full message
  // multiset), so even an aggressive threshold must keep it sparse.
  Graph g = RandomUndirected(300, 900, 21);
  EngineConfig config;
  config.num_workers = 4;
  config.num_threads = 4;
  config.dense_frontier_threshold = 0.01;
  RunStats stats;
  AlgorithmParams params;
  params.cd = CdParams{5, 0.05};
  auto out = RunAlgorithm(Engine(config), g, AlgorithmKind::kCd, params,
                          &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(stats.dense_supersteps, 0u);
}

TEST(PregelEngineTest, WorkStealingMatchesFixedPartitions) {
  // Chunked work-stealing must reproduce the fixed-partition outputs and
  // aggregator values exactly, for any chunk size.
  Graph g = RandomUndirected(500, 2000, 22);
  EngineConfig fixed;
  fixed.num_workers = 8;
  fixed.num_threads = 4;
  fixed.steal_chunk_vertices = 0;
  AlgorithmParams params;
  params.pr = PrParams{8, 0.85};
  for (uint32_t chunk : {1u, 16u, 4096u}) {
    EngineConfig stealing = fixed;
    stealing.steal_chunk_vertices = chunk;
    for (AlgorithmKind kind :
         {AlgorithmKind::kBfs, AlgorithmKind::kConn, AlgorithmKind::kPr}) {
      auto a = RunAlgorithm(Engine(fixed), g, kind, params);
      auto b = RunAlgorithm(Engine(stealing), g, kind, params);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(a->vertex_values, b->vertex_values)
          << AlgorithmKindName(kind) << " chunk " << chunk;
      EXPECT_EQ(a->vertex_scores, b->vertex_scores)
          << AlgorithmKindName(kind) << " chunk " << chunk;
    }
  }
}

TEST(PregelAlgorithmsTest, SkewTraceShowsConvergingTail) {
  // CONN on a long path: later supersteps touch fewer active vertices —
  // the "skewed execution intensity" choke point signature.
  EdgeList edges;
  for (VertexId v = 0; v + 1 < 500; ++v) edges.Add(v, v + 1);
  Graph g = GraphBuilder::Undirected(edges).ValueOrDie();
  RunStats stats;
  auto out = RunConn(DefaultEngine(), g, &stats);
  ASSERT_TRUE(out.ok());
  ASSERT_GT(stats.per_superstep.size(), 3u);
  EXPECT_LT(stats.per_superstep.back().active_vertices,
            stats.per_superstep[1].active_vertices);
}

}  // namespace
}  // namespace gly::pregel
