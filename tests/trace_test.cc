// Golden tests for the tracing layer (common/trace.h): with a FakeClock a
// whole trace is a deterministic string, so the Chrome-trace export is a
// tested contract — byte-for-byte — not best-effort logging. Also covers
// cross-thread spans, attribute escaping, well-formedness checking, span
// aggregation, and a concurrent stress case for the TSan stage.

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/temp_dir.h"
#include "common/trace.h"

namespace gly::trace {
namespace {

// ------------------------------------------------------------ inert paths

TEST(TraceTest, SpanWithoutActiveTracerIsInert) {
  ASSERT_EQ(ActiveTracer(), nullptr);
  TraceSpan span("pregel.superstep", "pregel");
  EXPECT_FALSE(span.enabled());
  span.SetAttribute("active", uint64_t{42});  // must not crash
  Instant("fault.injected", "fault");         // no-op
}

TEST(TraceTest, ScopedTracerInstallsAndRestores) {
  Tracer tracer;
  ASSERT_EQ(ActiveTracer(), nullptr);
  {
    ScopedTracer active(&tracer);
    EXPECT_EQ(ActiveTracer(), &tracer);
    {
      Tracer inner;
      ScopedTracer nested(&inner);
      EXPECT_EQ(ActiveTracer(), &inner);
    }
    EXPECT_EQ(ActiveTracer(), &tracer);
  }
  EXPECT_EQ(ActiveTracer(), nullptr);
}

// A tracer swapped out mid-span still receives the span's E event: B/E
// stay matched per tracer even across scope changes.
TEST(TraceTest, SpanEndsOnTheTracerItBeganOn) {
  Tracer a;
  Tracer b;
  {
    ScopedTracer scope_a(&a);
    TraceSpan span("harness.run", "harness");
    {
      ScopedTracer scope_b(&b);
      // span destructs while b is active; its E must still go to a.
    }
  }
  std::vector<TraceEvent> events = a.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[1].phase, 'E');
  EXPECT_EQ(b.Snapshot().size(), 0u);
}

// ---------------------------------------------------------- golden traces

TEST(TraceTest, GoldenNestedSpansUnderFakeClock) {
  FakeClock clock(100, 10);  // reads: 100, 110, 120, ...
  Tracer tracer(&clock);
  {
    ScopedTracer active(&tracer);
    TraceSpan outer("harness.run", "harness");
    outer.SetAttribute("attempt", uint64_t{1});
    {
      TraceSpan inner("pregel.superstep", "pregel");
      inner.SetAttribute("active", uint64_t{8});
    }
    Instant("fault.injected", "fault", {{"site", "pregel.worker.compute"}});
  }
  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"metadata\":{\"schema_version\":1,"
      "\"kind\":\"gly.trace\"},\"traceEvents\":[\n"
      "{\"name\":\"harness.run\",\"cat\":\"harness\",\"ph\":\"B\",\"ts\":100,"
      "\"pid\":1,\"tid\":1},\n"
      "{\"name\":\"pregel.superstep\",\"cat\":\"pregel\",\"ph\":\"B\","
      "\"ts\":110,\"pid\":1,\"tid\":1},\n"
      "{\"name\":\"pregel.superstep\",\"cat\":\"pregel\",\"ph\":\"E\","
      "\"ts\":120,\"pid\":1,\"tid\":1,\"args\":{\"active\":\"8\"}},\n"
      "{\"name\":\"fault.injected\",\"cat\":\"fault\",\"ph\":\"i\",\"ts\":130,"
      "\"pid\":1,\"tid\":1,\"s\":\"t\",\"args\":{\"site\":"
      "\"pregel.worker.compute\"}},\n"
      "{\"name\":\"harness.run\",\"cat\":\"harness\",\"ph\":\"E\",\"ts\":140,"
      "\"pid\":1,\"tid\":1,\"args\":{\"attempt\":\"1\"}}\n"
      "]}\n";
  EXPECT_EQ(tracer.ToChromeJson(), expected);

  // The golden document round-trips through the validator.
  auto check = ValidateChromeTraceJson(tracer.ToChromeJson());
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_EQ(check->events, 5u);
  EXPECT_EQ(check->completed_spans, 2u);
  EXPECT_EQ(check->unmatched_begins, 0u);
  EXPECT_EQ(check->max_depth, 2u);
}

TEST(TraceTest, GoldenEmptyTrace) {
  Tracer tracer;
  EXPECT_EQ(tracer.ToChromeJson(),
            "{\"displayTimeUnit\":\"ms\",\"metadata\":{\"schema_version\":1,"
            "\"kind\":\"gly.trace\"},\"traceEvents\":[\n]}\n");
  auto check = ValidateChromeTraceJson(tracer.ToChromeJson());
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_EQ(check->events, 0u);
}

TEST(TraceTest, FakeClockAdvanceMovesTimestamps) {
  FakeClock clock(0, 1);
  Tracer tracer(&clock);
  tracer.Instant("a", "t");  // ts 0
  clock.Advance(500);
  tracer.Instant("b", "t");  // ts 501 (one tick consumed by the first read)
  std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ts_micros, 0u);
  EXPECT_EQ(events[1].ts_micros, 501u);
}

// ------------------------------------------------------ cross-thread spans

TEST(TraceTest, CrossThreadSpansGetStableVirtualTids) {
  FakeClock clock(0, 1);
  Tracer tracer(&clock);
  ScopedTracer active(&tracer);
  {
    TraceSpan main_span("harness.run", "harness");
    // Both workers are alive concurrently (so their std::thread::ids are
    // distinct — a joined thread's id can be reused) and worker B waits
    // for A's span, making the first-use tid order deterministic:
    // main = 1, worker A = 2, worker B = 3.
    std::promise<void> a_done;
    std::shared_future<void> a_finished = a_done.get_future().share();
    std::thread a([&a_done] {
      { TraceSpan s("etl.parse.chunk", "etl"); }
      a_done.set_value();
    });
    std::thread b([a_finished] {
      a_finished.wait();
      TraceSpan s("etl.parse.chunk", "etl");
    });
    a.join();
    b.join();
  }
  std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(events[0].tid, 1u);  // harness.run B
  EXPECT_EQ(events[1].tid, 2u);  // worker A B
  EXPECT_EQ(events[2].tid, 2u);  // worker A E
  EXPECT_EQ(events[3].tid, 3u);  // worker B B
  EXPECT_EQ(events[4].tid, 3u);  // worker B E
  EXPECT_EQ(events[5].tid, 1u);  // harness.run E

  auto check = CheckWellFormed(events);
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->completed_spans, 3u);
  EXPECT_EQ(check->unmatched_begins, 0u);
  // Nesting is per-thread: each worker span is depth 1 on its own thread.
  EXPECT_EQ(check->max_depth, 1u);
}

// ------------------------------------------------------ attribute escaping

TEST(TraceTest, AttributeAndNameEscaping) {
  FakeClock clock(0, 1);
  Tracer tracer(&clock);
  {
    ScopedTracer active(&tracer);
    TraceSpan span("load \"quoted\"", "cat\\egory");
    span.SetAttribute("path", std::string("/tmp/a\nb\tc"));
  }
  std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("load \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("cat\\\\egory"), std::string::npos);
  EXPECT_NE(json.find("/tmp/a\\nb\\tc"), std::string::npos);
  // Still a valid, well-formed document after escaping.
  auto check = ValidateChromeTraceJson(json);
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_EQ(check->completed_spans, 1u);
}

// -------------------------------------------------------- well-formedness

TEST(TraceTest, CheckWellFormedCountsUnmatchedBegins) {
  FakeClock clock(0, 1);
  Tracer tracer(&clock);
  tracer.Begin("outer", "t");
  tracer.Begin("inner", "t");
  tracer.End("inner", "t");
  // `outer` never closes — a window sliced out of a live trace can end
  // mid-span; that is counted, not an error.
  auto check = CheckWellFormed(tracer.Snapshot());
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->completed_spans, 1u);
  EXPECT_EQ(check->unmatched_begins, 1u);
  EXPECT_EQ(check->max_depth, 2u);
}

TEST(TraceTest, CheckWellFormedRejectsMismatchedEnd) {
  FakeClock clock(0, 1);
  Tracer tracer(&clock);
  tracer.Begin("outer", "t");
  tracer.End("not-outer", "t");
  auto check = CheckWellFormed(tracer.Snapshot());
  EXPECT_TRUE(check.status().IsInvalidArgument());

  Tracer orphan(&clock);
  orphan.End("nothing-open", "t");
  EXPECT_TRUE(CheckWellFormed(orphan.Snapshot()).status().IsInvalidArgument());
}

TEST(TraceTest, ValidateRejectsStructurallyBrokenDocuments) {
  // Not JSON at all.
  EXPECT_FALSE(ValidateChromeTraceJson("not json").ok());
  // No traceEvents array.
  EXPECT_FALSE(ValidateChromeTraceJson("{\"foo\":1}").ok());
  // Event missing required keys (no ts).
  EXPECT_FALSE(ValidateChromeTraceJson(
                   "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"B\","
                   "\"pid\":1,\"tid\":1}]}")
                   .ok());
  // Structurally valid JSON but ill-formed nesting (E closes wrong span).
  EXPECT_FALSE(
      ValidateChromeTraceJson(
          "{\"traceEvents\":["
          "{\"name\":\"a\",\"ph\":\"B\",\"ts\":1,\"pid\":1,\"tid\":1},"
          "{\"name\":\"b\",\"ph\":\"E\",\"ts\":2,\"pid\":1,\"tid\":1}]}")
          .ok());
  // Trailing garbage after the document.
  EXPECT_FALSE(ValidateChromeTraceJson("{\"traceEvents\":[]} extra").ok());
  // Events that are not objects.
  EXPECT_FALSE(ValidateChromeTraceJson("{\"traceEvents\":[1,2]}").ok());
}

TEST(TraceTest, ValidateAcceptsForeignButEquivalentDocuments) {
  // Whitespace, reordered keys, and unknown keys are all fine — the
  // validator checks structure, not byte layout.
  auto check = ValidateChromeTraceJson(
      "{ \"otherTool\": {\"x\": [1, 2, null, true]},\n"
      "  \"traceEvents\": [\n"
      "    {\"ph\": \"B\", \"ts\": 5, \"tid\": 7, \"pid\": 2, "
      "\"name\": \"z\", \"extra\": -1.5e3},\n"
      "    {\"ph\": \"E\", \"ts\": 9, \"tid\": 7, \"pid\": 2, "
      "\"name\": \"z\"}\n"
      "  ]\n"
      "}");
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_EQ(check->completed_spans, 1u);
}

// ------------------------------------------------------------ aggregation

TEST(TraceTest, AggregateSpansSortsByTotalDuration) {
  FakeClock clock(0, 0);  // manual time control
  Tracer tracer(&clock);
  // load: one span of 100us. run: two spans of 30us each (total 60us).
  tracer.Begin("load", "t");
  clock.Advance(100);
  tracer.End("load", "t");
  for (int i = 0; i < 2; ++i) {
    tracer.Begin("run", "t");
    clock.Advance(30);
    tracer.End("run", "t");
  }
  std::vector<PhaseTotal> phases = AggregateSpans(tracer.Snapshot());
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].name, "load");
  EXPECT_NEAR(phases[0].seconds, 100e-6, 1e-12);
  EXPECT_EQ(phases[0].count, 1u);
  EXPECT_EQ(phases[1].name, "run");
  EXPECT_NEAR(phases[1].seconds, 60e-6, 1e-12);
  EXPECT_EQ(phases[1].count, 2u);
}

TEST(TraceTest, AggregateSpansToleratesIllFormedInput) {
  FakeClock clock(0, 1);
  Tracer tracer(&clock);
  tracer.End("stray", "t");  // E with no B: skipped, not fatal
  tracer.Begin("ok", "t");
  tracer.End("ok", "t");
  std::vector<PhaseTotal> phases = AggregateSpans(tracer.Snapshot());
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].name, "ok");
}

// --------------------------------------------------------------- snapshot

TEST(TraceTest, SnapshotSinceSlicesWindows) {
  FakeClock clock(0, 1);
  Tracer tracer(&clock);
  tracer.Instant("before", "t");
  size_t mark = tracer.event_count();
  tracer.Instant("after", "t");
  std::vector<TraceEvent> window = tracer.SnapshotSince(mark);
  ASSERT_EQ(window.size(), 1u);
  EXPECT_EQ(window[0].name, "after");
  EXPECT_TRUE(tracer.SnapshotSince(999).empty());
}

TEST(TraceTest, WriteToProducesLoadableFile) {
  auto dir = TempDir::Create("gly-trace");
  ASSERT_TRUE(dir.ok());
  FakeClock clock(0, 1);
  Tracer tracer(&clock);
  {
    ScopedTracer active(&tracer);
    TraceSpan span("harness.run", "harness");
  }
  std::string path = dir->File("trace.json");
  ASSERT_TRUE(tracer.WriteTo(path).ok());
  std::string contents;
  {
    FILE* f = fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    size_t n = fread(buf, 1, sizeof(buf), f);
    fclose(f);
    contents.assign(buf, n);
  }
  EXPECT_EQ(contents, tracer.ToChromeJson());
  EXPECT_TRUE(ValidateChromeTraceJson(contents).ok());
  EXPECT_TRUE(
      tracer.WriteTo(dir->File("no/such/subdir/trace.json")).IsIOError());
}

// ------------------------------------------------------ concurrent stress

// Many threads emitting nested spans concurrently; the result must be a
// well-formed trace with every span accounted for. Runs under the TSan CI
// stage via the `observability` label.
TEST(TraceTest, ConcurrentSpansStayWellFormed) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  Tracer tracer;
  {
    ScopedTracer active(&tracer);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([] {
        for (int i = 0; i < kSpansPerThread; ++i) {
          TraceSpan outer("stress.outer", "stress");
          outer.SetAttribute("i", uint64_t{static_cast<uint64_t>(i)});
          TraceSpan inner("stress.inner", "stress");
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  auto check = CheckWellFormed(tracer.Snapshot());
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_EQ(check->completed_spans,
            static_cast<size_t>(2 * kThreads * kSpansPerThread));
  EXPECT_EQ(check->unmatched_begins, 0u);
  EXPECT_TRUE(ValidateChromeTraceJson(tracer.ToChromeJson()).ok());
}

}  // namespace
}  // namespace gly::trace
