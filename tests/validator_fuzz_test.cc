// Property-based validator tests: over seeded random graphs (R-MAT and
// Erdős–Rényi-ish) plus pathological shapes (star, two components,
// self-loops), the OutputValidator must accept the reference output
// verbatim and reject *any* single-vertex perturbation of it. That is the
// validator's whole contract — "checks the outcome of the benchmark to
// ensure correctness" — stated as properties instead of hand-picked
// examples, so tolerance bugs (a perturbation inside an accidentally-wide
// epsilon) or missing-field bugs (a perturbed vertex the comparison never
// reads) fail across many graphs, not just one.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "datagen/rmat.h"
#include "graph/graph.h"
#include "harness/validator.h"
#include "ref/algorithms.h"

namespace gly::harness {
namespace {

Graph RandomUndirected(VertexId n, size_t m, uint64_t seed) {
  EdgeList edges(n);
  Rng rng(seed);
  while (edges.num_edges() < m) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(n));
    VertexId b = static_cast<VertexId>(rng.NextBounded(n));
    if (a != b) edges.Add(a, b);
  }
  return GraphBuilder::Undirected(edges).ValueOrDie();
}

Graph RmatGraph(uint32_t scale, uint64_t seed) {
  datagen::RmatConfig config;
  config.scale = scale;
  config.edge_factor = 8;
  config.seed = seed;
  EdgeList edges = datagen::RmatGenerator(config).Generate().ValueOrDie();
  return GraphBuilder::Undirected(edges).ValueOrDie();
}

/// Hub 0 with n-1 leaves: maximal degree skew, diameter 2.
Graph StarGraph(VertexId n) {
  EdgeList edges(n);
  for (VertexId v = 1; v < n; ++v) edges.Add(0, v);
  return GraphBuilder::Undirected(edges).ValueOrDie();
}

/// Two rings with no edge between them: vertices in the second component
/// are unreachable from the BFS source, exercising the "infinity"
/// distance and the multi-component CONN labels.
Graph TwoComponentGraph(VertexId half) {
  EdgeList edges(2 * half);
  for (VertexId v = 0; v < half; ++v) {
    edges.Add(v, (v + 1) % half);
    edges.Add(half + v, half + (v + 1) % half);
  }
  return GraphBuilder::Undirected(edges).ValueOrDie();
}

/// A ring where every vertex also has a self-loop.
Graph SelfLoopGraph(VertexId n) {
  EdgeList edges(n);
  for (VertexId v = 0; v < n; ++v) {
    edges.Add(v, (v + 1) % n);
    edges.Add(v, v);
  }
  return GraphBuilder::Undirected(edges).ValueOrDie();
}

struct NamedGraph {
  std::string name;
  Graph graph;
};

/// The fuzz corpus: seeded random graphs plus the pathological shapes.
std::vector<NamedGraph> Corpus() {
  std::vector<NamedGraph> corpus;
  for (uint64_t seed : {11u, 22u, 33u}) {
    corpus.push_back({"rmat-" + std::to_string(seed), RmatGraph(7, seed)});
  }
  for (uint64_t seed : {44u, 55u, 66u}) {
    corpus.push_back(
        {"random-" + std::to_string(seed), RandomUndirected(200, 600, seed)});
  }
  corpus.push_back({"star", StarGraph(64)});
  corpus.push_back({"two-component", TwoComponentGraph(40)});
  corpus.push_back({"self-loop", SelfLoopGraph(32)});
  return corpus;
}

const std::vector<AlgorithmKind> kKinds = {
    AlgorithmKind::kBfs, AlgorithmKind::kConn, AlgorithmKind::kPr};

/// Perturbs one vertex of `output`: +1 on the integer value for BFS/CONN,
/// a 1e-3 relative bump on the PR score (far outside the validator's 1e-9
/// tolerance, far inside what a "roughly right" buggy engine produces).
void PerturbVertex(AlgorithmKind kind, size_t vertex, AlgorithmOutput* out) {
  if (kind == AlgorithmKind::kPr) {
    out->vertex_scores[vertex] *= 1.001;
  } else {
    out->vertex_values[vertex] += 1;
  }
}

TEST(ValidatorFuzzTest, AcceptsReferenceOutputOnEveryGraph) {
  for (const NamedGraph& g : Corpus()) {
    for (AlgorithmKind kind : kKinds) {
      AlgorithmParams params;
      AlgorithmOutput reference = ref::Run(g.graph, kind, params);
      Status status = ValidateOutput(g.graph, kind, params, reference);
      EXPECT_TRUE(status.ok())
          << g.name << "/" << AlgorithmKindName(kind) << ": "
          << status.ToString();
    }
  }
}

TEST(ValidatorFuzzTest, RejectsEverySingleVertexPerturbation) {
  Rng rng(0xF00D);
  for (const NamedGraph& g : Corpus()) {
    for (AlgorithmKind kind : kKinds) {
      AlgorithmParams params;
      const AlgorithmOutput reference = ref::Run(g.graph, kind, params);
      const size_t n = kind == AlgorithmKind::kPr
                           ? reference.vertex_scores.size()
                           : reference.vertex_values.size();
      ASSERT_GT(n, 0u) << g.name << "/" << AlgorithmKindName(kind);
      // A handful of random victims per (graph, kind), plus the endpoints
      // (first/last vertex are where off-by-one comparisons slip).
      std::vector<size_t> victims = {0, n - 1};
      for (int i = 0; i < 6; ++i) victims.push_back(rng.NextBounded(n));
      for (size_t vertex : victims) {
        AlgorithmOutput mutated = reference;
        PerturbVertex(kind, vertex, &mutated);
        Status status = ValidateOutput(g.graph, kind, params, mutated);
        EXPECT_TRUE(status.IsValidationFailed())
            << g.name << "/" << AlgorithmKindName(kind) << " vertex "
            << vertex << ": perturbed output was accepted ("
            << status.ToString() << ")";
      }
    }
  }
}

}  // namespace
}  // namespace gly::harness
