// Tests for the config-driven benchmark workflow (§2.3's user steps).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/temp_dir.h"
#include "graph/io.h"
#include "harness/run_config.h"

namespace gly::harness {
namespace {

Config BaseConfig() {
  Config config = *Config::Parse(
      "graphs = tiny\n"
      "graph.tiny.source = datagen\n"
      "graph.tiny.persons = 500\n"
      "graph.tiny.degree_spec = geometric:p=0.3\n"
      "graph.tiny.seed = 7\n"
      "platforms = reference\n"
      "algorithms = bfs, conn\n"
      "monitor = false\n");
  return config;
}

TEST(RunConfigTest, RunsDatagenWorkflow) {
  auto out = RunFromConfig(BaseConfig());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->results.size(), 2u);
  for (const auto& r : out->results) {
    EXPECT_TRUE(r.status.ok());
    EXPECT_TRUE(r.validation.ok());
  }
  EXPECT_NE(out->report_text.find("BFS"), std::string::npos);
}

TEST(RunConfigTest, RmatSourceAndAllAlgorithms) {
  Config config = *Config::Parse(
      "graphs = r\n"
      "graph.r.source = rmat\n"
      "graph.r.scale = 8\n"
      "graph.r.edge_factor = 4\n"
      "platforms = reference\n"
      "algorithms = all\n"
      "monitor = false\n");
  auto out = RunFromConfig(config);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->results.size(), 5u);  // all five algorithms
}

TEST(RunConfigTest, FileSourceRoundTrip) {
  auto dir = TempDir::Create("gly-runcfg");
  ASSERT_TRUE(dir.ok());
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(1, 2);
  edges.Add(2, 3);
  ASSERT_TRUE(WriteEdgeListText(edges, dir->File("g.e")).ok());
  Config config = *Config::Parse(
      "graphs = mine\n"
      "graph.mine.source = file\n"
      "platforms = reference\n"
      "algorithms = bfs\n"
      "monitor = false\n");
  config.Set("graph.mine.path", dir->File("g.e"));
  auto out = RunFromConfig(config);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->results[0].status.ok());
}

TEST(RunConfigTest, WritesReportFiles) {
  auto dir = TempDir::Create("gly-runcfg");
  ASSERT_TRUE(dir.ok());
  Config config = BaseConfig();
  config.Set("report.dir", dir->File("report"));
  auto out = RunFromConfig(config);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(std::filesystem::exists(dir->File("report") + "/report.txt"));
  EXPECT_TRUE(std::filesystem::exists(dir->File("report") + "/results.csv"));
  EXPECT_TRUE(std::filesystem::exists(dir->File("report") + "/results.jsonl"));
}

TEST(RunConfigTest, RejectsBadConfigs) {
  EXPECT_FALSE(RunFromConfig(Config()).ok());  // no graphs

  Config bad_source = BaseConfig();
  bad_source.Set("graph.tiny.source", "hdfs");
  EXPECT_TRUE(RunFromConfig(bad_source).status().IsInvalidArgument());

  Config bad_algo = BaseConfig();
  bad_algo.Set("algorithms", "pagerank");
  EXPECT_TRUE(RunFromConfig(bad_algo).status().IsInvalidArgument());

  Config bad_platform = BaseConfig();
  bad_platform.Set("platforms", "flink");
  EXPECT_TRUE(RunFromConfig(bad_platform).status().IsNotFound());

  Config missing_file = BaseConfig();
  missing_file.Set("graph.tiny.source", "file");
  missing_file.Set("graph.tiny.path", "/no/such/file.e");
  EXPECT_FALSE(RunFromConfig(missing_file).ok());
}

TEST(RunConfigTest, EtlThreadsKnobKeepsResultsIdentical) {
  // Same workflow, serial vs parallel ETL: every cell must still validate,
  // and the file-sourced dataset must parse to the same graph.
  auto dir = TempDir::Create("gly-runcfg");
  ASSERT_TRUE(dir.ok());
  EdgeList edges;
  for (VertexId v = 0; v + 1 < 200; ++v) edges.Add(v, v + 1);
  for (VertexId v = 0; v < 200; v += 7) edges.Add(v, (v * 3) % 200);
  ASSERT_TRUE(WriteEdgeListText(edges, dir->File("g.e")).ok());
  Config config = *Config::Parse(
      "graphs = mine\n"
      "graph.mine.source = file\n"
      "platforms = reference\n"
      "algorithms = bfs, conn\n"
      "monitor = false\n");
  config.Set("graph.mine.path", dir->File("g.e"));

  for (const char* threads : {"1", "4", "0"}) {  // 0 = hardware threads
    config.Set("etl.threads", threads);
    auto out = RunFromConfig(config);
    ASSERT_TRUE(out.ok()) << "etl.threads=" << threads << ": "
                          << out.status().ToString();
    for (const auto& r : out->results) {
      EXPECT_TRUE(r.status.ok()) << "etl.threads=" << threads;
      EXPECT_TRUE(r.validation.ok()) << "etl.threads=" << threads;
    }
  }
}

TEST(RunConfigTest, ReorderKnobValidatesInOriginalIds) {
  Config config = BaseConfig();
  config.Set("graph.reorder", "degree");
  config.Set("algorithms", "bfs, conn, pr");
  config.SetInt("graph.tiny.bfs_source", 42);
  auto out = RunFromConfig(config);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->results.size(), 3u);
  for (const auto& r : out->results) {
    EXPECT_TRUE(r.status.ok()) << AlgorithmKindName(r.algorithm);
    // Validation recomputes against the ORIGINAL graph with original-id
    // params; passing means the reordered run was mapped back correctly.
    EXPECT_TRUE(r.validation.ok())
        << AlgorithmKindName(r.algorithm) << ": " << r.validation.ToString();
  }
}

TEST(RunConfigTest, ReorderRefusesIdSeededAlgorithms) {
  Config config = BaseConfig();
  config.Set("graph.reorder", "degree");
  config.Set("algorithms", "cd, bfs");
  auto out = RunFromConfig(config);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->results.size(), 2u);
  EXPECT_TRUE(out->results[0].status.IsInvalidArgument());
  EXPECT_TRUE(out->results[1].status.ok());
}

TEST(RunConfigTest, PerGraphReorderOverride) {
  // Global degree reorder, overridden back to none for the one dataset:
  // CD must then run (and validate) normally.
  Config config = BaseConfig();
  config.Set("graph.reorder", "degree");
  config.Set("graph.tiny.reorder", "none");
  config.Set("algorithms", "cd");
  auto out = RunFromConfig(config);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->results[0].status.ok());
  EXPECT_TRUE(out->results[0].validation.ok());
}

TEST(RunConfigTest, RejectsUnknownReorderValue) {
  Config config = BaseConfig();
  config.Set("graph.reorder", "random");
  EXPECT_TRUE(RunFromConfig(config).status().IsInvalidArgument());
}

TEST(RunConfigTest, BfsSourcePerGraph) {
  Config config = BaseConfig();
  config.SetInt("graph.tiny.bfs_source", 42);
  config.Set("algorithms", "bfs");
  auto out = RunFromConfig(config);
  ASSERT_TRUE(out.ok());
  // Validation passing implies the harness really used source 42 (the
  // validator recomputes with the same params).
  EXPECT_TRUE(out->results[0].validation.ok());
}

}  // namespace
}  // namespace gly::harness
