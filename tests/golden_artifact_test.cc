// Golden end-to-end artifact test: one fixed-seed single-cell benchmark
// run through RunFromConfig, compared byte-for-byte against committed
// golden copies of the three report artifacts (journal.jsonl, results.csv,
// results.jsonl) with the timing/host-dependent fields masked out.
//
// This pins the *whole* artifact pipeline — config parsing, dataset
// generation, the scheduler-backed harness, validation, journaling, CSV
// and JSONL rendering — so an accidental schema change, field reorder, or
// nondeterminism in any layer shows up as a readable diff.
//
// Regenerate after an intentional schema change:
//
//   GLY_REGEN_GOLDEN=1 ./golden_artifact_test
//
// which rewrites tests/data/golden/ in the source tree (commit the diff).

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/csv.h"
#include "common/temp_dir.h"
#include "harness/run_config.h"

namespace gly::harness {
namespace {

// The run is deterministic modulo wall-clock and machine-load effects;
// exactly these fields carry them. Everything else — statuses, validation,
// traversed edges, output checksums, attempts, metrics — must match the
// goldens bit-for-bit.
const char* const kVolatileJsonKeys =
    "runtime_s|load_s|teps|cancel_join_s|peak_rss_bytes|critical_path_s";
const std::vector<std::string> kVolatileCsvColumns = {
    "runtime_s",       "load_s",         "teps",            "cancel_join_s",
    "peak_rss_bytes",  "cpu_utilization", "critical_path_s"};

std::string ReadFile(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << "cannot read " << path;
  std::ostringstream out;
  out << file.rdbuf();
  return out.str();
}

/// Replaces the value of every volatile numeric field with `0`.
std::string MaskJsonl(const std::string& text) {
  static const std::regex volatile_field(
      std::string("\"(") + kVolatileJsonKeys + ")\":[-+0-9.eE]+");
  return std::regex_replace(text, volatile_field, "\"$1\":0");
}

/// Masks volatile columns by *name*: the header row is parsed, the
/// positions of the timing columns located, and those fields replaced —
/// so the golden survives column additions elsewhere and fails loudly
/// (header mismatch) on schema changes, never silently.
std::string MaskCsv(const std::string& text) {
  std::istringstream in(text);
  std::ostringstream out;
  CsvWriter csv(&out);
  std::string line;
  std::vector<size_t> volatile_cols;
  bool header = true;
  while (std::getline(in, line)) {
    std::vector<std::string> fields = ParseCsvLine(line);
    if (header) {
      header = false;
      for (size_t i = 0; i < fields.size(); ++i) {
        for (const std::string& name : kVolatileCsvColumns) {
          if (fields[i] == name) volatile_cols.push_back(i);
        }
      }
      EXPECT_EQ(volatile_cols.size(), kVolatileCsvColumns.size())
          << "results.csv header no longer names every timing column";
    } else {
      for (size_t col : volatile_cols) {
        if (col < fields.size()) fields[col] = "0";
      }
    }
    csv.WriteRow(fields);
  }
  return out.str();
}

TEST(GoldenArtifactTest, SingleCellRunMatchesCommittedArtifacts) {
  auto tmp = TempDir::Create("golden-artifact");
  ASSERT_TRUE(tmp.ok());
  const std::string report_dir = tmp->File("report");

  // Fixed-seed R-MAT, reference platform, BFS: the cheapest cell that
  // still exercises dataset generation, the scheduler path, validation,
  // checksumming, and all three artifact writers.
  auto config = Config::Parse(
      "graphs = golden\n"
      "graph.golden.source = rmat\n"
      "graph.golden.scale = 8\n"
      "graph.golden.edge_factor = 16\n"
      "graph.golden.seed = 7\n"
      "graph.golden.bfs_source = 0\n"
      "platforms = reference\n"
      "algorithms = bfs\n"
      "validate = true\n"
      "monitor = false\n"
      "report.dir = " +
      report_dir + "\n");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  auto run = RunFromConfig(*config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->results.size(), 1u);
  ASSERT_TRUE(run->results[0].status.ok());
  ASSERT_TRUE(run->results[0].validation.ok());

  struct Artifact {
    const char* name;
    std::string (*mask)(const std::string&);
  };
  const Artifact artifacts[] = {{"journal.jsonl", MaskJsonl},
                                {"results.csv", MaskCsv},
                                {"results.jsonl", MaskJsonl}};
  const std::string golden_dir = std::string(GLY_TESTS_DIR) + "/data/golden";

  if (std::getenv("GLY_REGEN_GOLDEN") != nullptr) {
    for (const Artifact& a : artifacts) {
      std::ofstream out(golden_dir + "/" + a.name);
      ASSERT_TRUE(out.good()) << golden_dir;
      out << a.mask(ReadFile(report_dir + "/" + a.name));
    }
    GTEST_SKIP() << "goldens regenerated into " << golden_dir
                 << " — review and commit the diff";
  }

  for (const Artifact& a : artifacts) {
    SCOPED_TRACE(a.name);
    EXPECT_EQ(a.mask(ReadFile(report_dir + "/" + a.name)),
              ReadFile(golden_dir + "/" + a.name));
  }
}

}  // namespace
}  // namespace gly::harness
