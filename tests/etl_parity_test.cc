// Parallel-ETL parity: the chunked parallel edge-list parser and the
// parallel two-pass CSR builder must be *byte-identical* to their serial
// reference paths — same edges in the same order, same vertex bound, same
// CSR arrays, and (for malformed input) the same `file:line:`-prefixed
// error message — at any thread count. This suite sweeps R-MAT graphs at
// scales 8/12/14, a social-datagen graph, and every parse policy, each at
// 1, 2, and 8 threads. Labeled `ingest`: ci.sh also runs it under TSan.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <string>
#include <tuple>
#include <vector>

#include "common/temp_dir.h"
#include "common/threadpool.h"
#include "datagen/rmat.h"
#include "datagen/social_datagen.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "harness/validator.h"
#include "ref/algorithms.h"

namespace gly {
namespace {

enum class ParityGraph { kRmat8, kRmat12, kRmat14, kSocial };

std::string ParityGraphName(ParityGraph which) {
  switch (which) {
    case ParityGraph::kRmat8: return "rmat8";
    case ParityGraph::kRmat12: return "rmat12";
    case ParityGraph::kRmat14: return "rmat14";
    case ParityGraph::kSocial: return "social";
  }
  return "?";
}

// The raw (pre-policy) edge lists: duplicates and self-loops left in, so
// the drop_* policies actually have work to do.
const EdgeList& ParityEdges(ParityGraph which) {
  static const EdgeList rmat8 = [] {
    datagen::RmatConfig config;
    config.scale = 8;
    config.edge_factor = 6;
    config.seed = 5;
    return datagen::RmatGenerator(config).Generate(nullptr).ValueOrDie();
  }();
  static const EdgeList rmat12 = [] {
    datagen::RmatConfig config;
    config.scale = 12;
    config.edge_factor = 8;
    config.seed = 5;
    return datagen::RmatGenerator(config).Generate(nullptr).ValueOrDie();
  }();
  static const EdgeList rmat14 = [] {
    datagen::RmatConfig config;
    config.scale = 14;
    config.edge_factor = 8;
    config.seed = 5;
    return datagen::RmatGenerator(config).Generate(nullptr).ValueOrDie();
  }();
  static const EdgeList social = [] {
    datagen::SocialDatagenConfig config;
    config.num_persons = 2000;
    config.degree_spec = "geometric:p=0.25";
    config.window_size = 128;
    config.seed = 21;
    return datagen::SocialDatagen(config)
        .Generate(nullptr)
        .ValueOrDie()
        .edges;
  }();
  switch (which) {
    case ParityGraph::kRmat8: return rmat8;
    case ParityGraph::kRmat12: return rmat12;
    case ParityGraph::kRmat14: return rmat14;
    case ParityGraph::kSocial: return social;
  }
  return rmat8;
}

enum class ParsePolicy { kDefault, kDropLoops, kDropDuplicates, kDropBoth };

std::string PolicyName(ParsePolicy policy) {
  switch (policy) {
    case ParsePolicy::kDefault: return "default";
    case ParsePolicy::kDropLoops: return "droploops";
    case ParsePolicy::kDropDuplicates: return "dropdups";
    case ParsePolicy::kDropBoth: return "dropboth";
  }
  return "?";
}

EdgeListParseOptions MakePolicy(ParsePolicy policy) {
  EdgeListParseOptions options;
  options.drop_self_loops = policy == ParsePolicy::kDropLoops ||
                            policy == ParsePolicy::kDropBoth;
  options.drop_duplicates = policy == ParsePolicy::kDropDuplicates ||
                            policy == ParsePolicy::kDropBoth;
  return options;
}

void ExpectSameEdgeList(const EdgeList& a, const EdgeList& b) {
  EXPECT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_TRUE(a.edges() == b.edges()) << "edge sequences differ";
}

void ExpectSameGraph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.num_adjacency_entries(), b.num_adjacency_entries());
  EXPECT_EQ(a.undirected(), b.undirected());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    auto oa = a.OutNeighbors(v), ob = b.OutNeighbors(v);
    ASSERT_EQ(oa.size(), ob.size()) << "out row " << v;
    ASSERT_TRUE(std::equal(oa.begin(), oa.end(), ob.begin()))
        << "out row " << v;
    auto ia = a.InNeighbors(v), ib = b.InNeighbors(v);
    ASSERT_EQ(ia.size(), ib.size()) << "in row " << v;
    ASSERT_TRUE(std::equal(ia.begin(), ia.end(), ib.begin()))
        << "in row " << v;
  }
}

// ------------------------------------------------------------ parse parity

using ParseParityParam = std::tuple<ParityGraph, ParsePolicy, size_t>;

class ParseParityTest : public ::testing::TestWithParam<ParseParityParam> {};

TEST_P(ParseParityTest, ParallelParseIsByteIdenticalToSerial) {
  const auto& [which, policy, threads] = GetParam();
  auto dir = TempDir::Create("etl_parity");
  ASSERT_TRUE(dir.ok());
  std::string path = dir->File(ParityGraphName(which) + ".e");
  ASSERT_TRUE(WriteEdgeListText(ParityEdges(which), path).ok());

  EdgeListParseOptions options = MakePolicy(policy);
  auto serial = ReadEdgeListText(path, options);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  EtlOptions etl;
  etl.threads = threads;
  auto parallel = ReadEdgeListText(path, options, etl);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ExpectSameEdgeList(*serial, *parallel);

  // A shared pool must behave exactly like a private one.
  ThreadPool pool(threads);
  EtlOptions pooled;
  pooled.pool = &pool;
  auto shared = ReadEdgeListText(path, options, pooled);
  ASSERT_TRUE(shared.ok()) << shared.status().ToString();
  ExpectSameEdgeList(*serial, *shared);
}

INSTANTIATE_TEST_SUITE_P(
    AllGraphs, ParseParityTest,
    ::testing::Combine(
        ::testing::Values(ParityGraph::kRmat8, ParityGraph::kRmat12,
                          ParityGraph::kRmat14, ParityGraph::kSocial),
        ::testing::Values(ParsePolicy::kDefault, ParsePolicy::kDropLoops,
                          ParsePolicy::kDropDuplicates,
                          ParsePolicy::kDropBoth),
        ::testing::Values(size_t{1}, size_t{2}, size_t{8})),
    [](const ::testing::TestParamInfo<ParseParityParam>& info) {
      return ParityGraphName(std::get<0>(info.param)) + "_" +
             PolicyName(std::get<1>(info.param)) + "_t" +
             std::to_string(std::get<2>(info.param));
    });

TEST(ParseParityTest, VertexFileParityAndIsolatedVertices) {
  auto dir = TempDir::Create("etl_parity");
  ASSERT_TRUE(dir.ok());
  const EdgeList& edges = ParityEdges(ParityGraph::kRmat8);
  std::string prefix = dir->File("withv");
  ASSERT_TRUE(WriteEdgeListText(edges, prefix + ".e").ok());
  {
    std::ofstream v(prefix + ".v");
    for (VertexId id = 0; id < edges.num_vertices() + 5; ++id) {
      v << id << "\n";
    }
  }
  auto serial = ReadGraphalyticsDataset(prefix);
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(serial->num_vertices(), edges.num_vertices() + 5);
  EtlOptions etl;
  etl.threads = 8;
  auto parallel = ReadGraphalyticsDataset(prefix, EdgeListParseOptions{}, etl);
  ASSERT_TRUE(parallel.ok());
  ExpectSameEdgeList(*serial, *parallel);
}

// ----------------------------------------------------- error-message parity

// Writes `lines` joined by '\n' and returns the parse status at the given
// thread count (0 = serial two-arg overload).
Status ParseStatus(const TempDir& dir, const std::string& name,
                   const std::vector<std::string>& lines,
                   const EdgeListParseOptions& options, size_t threads) {
  std::string path = dir.File(name);
  std::ofstream out(path);
  for (const std::string& line : lines) out << line << "\n";
  out.close();
  if (threads == 0) return ReadEdgeListText(path, options).status();
  EtlOptions etl;
  etl.threads = threads;
  return ReadEdgeListText(path, options, etl).status();
}

TEST(ParseErrorParityTest, MalformedLineMessagesMatchSerial) {
  auto dir = TempDir::Create("etl_parity");
  ASSERT_TRUE(dir.ok());
  const std::vector<std::vector<std::string>> cases = {
      {"0 1", "1 2", "2 x"},             // non-numeric token
      {"0 1", "5", "1 2"},               // truncated line
      {"0 1", "", "1 2", "3"},           // blank line then truncated
      {"junk"},                          // first line bad
      {"0 1", "1 2x"},                   // trailing garbage inside a token
  };
  for (size_t i = 0; i < cases.size(); ++i) {
    SCOPED_TRACE("case " + std::to_string(i));
    Status serial = ParseStatus(*dir, "err" + std::to_string(i) + ".e",
                                cases[i], EdgeListParseOptions{}, 0);
    ASSERT_FALSE(serial.ok());
    for (size_t threads : {size_t{2}, size_t{8}}) {
      Status parallel = ParseStatus(*dir, "err" + std::to_string(i) + ".e",
                                    cases[i], EdgeListParseOptions{}, threads);
      EXPECT_EQ(serial.code(), parallel.code());
      EXPECT_EQ(serial.message(), parallel.message())
          << "threads=" << threads;
    }
  }
}

TEST(ParseErrorParityTest, VertexIdLimitMessagesMatchSerial) {
  auto dir = TempDir::Create("etl_parity");
  ASSERT_TRUE(dir.ok());
  EdgeListParseOptions options;
  options.max_vertex_id = 10;
  std::vector<std::string> lines = {"0 1", "3 9", "2 11", "0 2"};
  Status serial = ParseStatus(*dir, "limit.e", lines, options, 0);
  ASSERT_FALSE(serial.ok());
  for (size_t threads : {size_t{2}, size_t{8}}) {
    Status parallel = ParseStatus(*dir, "limit.e", lines, options, threads);
    EXPECT_EQ(serial.code(), parallel.code());
    EXPECT_EQ(serial.message(), parallel.message());
  }
}

TEST(ParseErrorParityTest, EarliestErrorLineWinsAcrossChunks) {
  // A file long enough that 8 threads split it into many chunks, with two
  // errors in different chunks: the parallel path must report the earlier
  // one, exactly as the serial first-error scan does.
  auto dir = TempDir::Create("etl_parity");
  ASSERT_TRUE(dir.ok());
  std::vector<std::string> lines;
  lines.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    lines.push_back(std::to_string(i % 64) + " " + std::to_string(i % 97));
  }
  lines[15000] = "late bad line";
  lines[4321] = "early bad line";
  Status serial =
      ParseStatus(*dir, "multi.e", lines, EdgeListParseOptions{}, 0);
  ASSERT_FALSE(serial.ok());
  EXPECT_NE(serial.message().find(":4322:"), std::string::npos)
      << serial.message();
  for (size_t threads : {size_t{2}, size_t{8}}) {
    Status parallel =
        ParseStatus(*dir, "multi.e", lines, EdgeListParseOptions{}, threads);
    EXPECT_EQ(serial.code(), parallel.code());
    EXPECT_EQ(serial.message(), parallel.message()) << "threads=" << threads;
  }
}

// ------------------------------------------------------------ build parity

using BuildParityParam = std::tuple<ParityGraph, size_t>;

class BuildParityTest : public ::testing::TestWithParam<BuildParityParam> {};

TEST_P(BuildParityTest, ParallelCsrBuildIsByteIdenticalToSerial) {
  const auto& [which, threads] = GetParam();
  const EdgeList& edges = ParityEdges(which);

  CsrBuildOptions par;
  par.threads = threads;

  {
    SCOPED_TRACE("undirected");
    auto serial = GraphBuilder::Undirected(edges);
    ASSERT_TRUE(serial.ok());
    auto parallel = GraphBuilder::Undirected(edges, par);
    ASSERT_TRUE(parallel.ok());
    ASSERT_TRUE(parallel->Validate().ok());
    ExpectSameGraph(*serial, *parallel);
  }
  {
    SCOPED_TRACE("directed dedup");
    auto serial = GraphBuilder::Directed(edges, /*dedup=*/true);
    ASSERT_TRUE(serial.ok());
    CsrBuildOptions opts = par;
    opts.dedup = true;
    auto parallel = GraphBuilder::Directed(edges, opts);
    ASSERT_TRUE(parallel.ok());
    ASSERT_TRUE(parallel->Validate().ok());
    ExpectSameGraph(*serial, *parallel);
  }
  {
    SCOPED_TRACE("directed raw");
    auto serial = GraphBuilder::Directed(edges, /*dedup=*/false);
    ASSERT_TRUE(serial.ok());
    CsrBuildOptions opts = par;
    opts.dedup = false;
    auto parallel = GraphBuilder::Directed(edges, opts);
    ASSERT_TRUE(parallel.ok());
    ExpectSameGraph(*serial, *parallel);
  }

  // Shared pool variant must match the private-pool build.
  ThreadPool pool(threads);
  CsrBuildOptions pooled;
  pooled.pool = &pool;
  auto serial = GraphBuilder::Undirected(edges);
  ASSERT_TRUE(serial.ok());
  auto shared = GraphBuilder::Undirected(edges, pooled);
  ASSERT_TRUE(shared.ok());
  ExpectSameGraph(*serial, *shared);
}

INSTANTIATE_TEST_SUITE_P(
    AllGraphs, BuildParityTest,
    ::testing::Combine(
        ::testing::Values(ParityGraph::kRmat8, ParityGraph::kRmat12,
                          ParityGraph::kRmat14, ParityGraph::kSocial),
        ::testing::Values(size_t{1}, size_t{2}, size_t{8})),
    [](const ::testing::TestParamInfo<BuildParityParam>& info) {
      return ParityGraphName(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

// --------------------------------------------- end-to-end pipeline parity

TEST(EtlPipelineParityTest, FileToGraphMatchesSerialAtEveryStage) {
  auto dir = TempDir::Create("etl_parity");
  ASSERT_TRUE(dir.ok());
  const EdgeList& edges = ParityEdges(ParityGraph::kRmat12);
  std::string path = dir->File("pipeline.e");
  ASSERT_TRUE(WriteEdgeListText(edges, path).ok());

  auto serial_edges = ReadEdgeListText(path);
  ASSERT_TRUE(serial_edges.ok());
  auto serial_graph = GraphBuilder::Undirected(*serial_edges);
  ASSERT_TRUE(serial_graph.ok());

  ThreadPool pool(8);
  EtlOptions etl;
  etl.pool = &pool;
  auto parallel_edges = ReadEdgeListText(path, EdgeListParseOptions{}, etl);
  ASSERT_TRUE(parallel_edges.ok());
  CsrBuildOptions build;
  build.pool = &pool;
  auto parallel_graph = GraphBuilder::Undirected(*parallel_edges, build);
  ASSERT_TRUE(parallel_graph.ok());

  ExpectSameEdgeList(*serial_edges, *parallel_edges);
  ExpectSameGraph(*serial_graph, *parallel_graph);
}

// ------------------------------------------------------- reorder + map-back

TEST(ReorderOutputTest, BfsConnPrMapBackToOriginalIds) {
  const EdgeList& edges = ParityEdges(ParityGraph::kRmat8);
  Graph graph = GraphBuilder::Undirected(edges).ValueOrDie();
  ReorderedGraph reordered = graph.ReorderByDegree();
  ASSERT_TRUE(reordered.graph.Validate().ok());

  AlgorithmParams params;
  params.bfs.source = 3;
  params.pr = PrParams{10, 0.85};
  AlgorithmParams mapped_params = params;
  mapped_params.bfs.source = reordered.perm.old_to_new[params.bfs.source];

  for (AlgorithmKind kind : {AlgorithmKind::kBfs, AlgorithmKind::kConn,
                             AlgorithmKind::kPr, AlgorithmKind::kStats}) {
    SCOPED_TRACE(AlgorithmKindName(kind));
    ASSERT_TRUE(harness::RelabelingInvariant(kind));
    AlgorithmOutput on_reordered =
        ref::Run(reordered.graph, kind, mapped_params);
    AlgorithmOutput mapped = harness::MapOutputToOriginalIds(
        kind, reordered.perm.new_to_old, std::move(on_reordered));
    Status validation =
        harness::ValidateOutput(graph, kind, params, mapped);
    EXPECT_TRUE(validation.ok()) << validation.ToString();
  }
  EXPECT_FALSE(harness::RelabelingInvariant(AlgorithmKind::kCd));
  EXPECT_FALSE(harness::RelabelingInvariant(AlgorithmKind::kEvo));
}

TEST(ReorderOutputTest, ConnLabelsAreSmallestOriginalIdPerComponent) {
  // Two components: {0,1,2} and {3,4}. Degree reordering relabels them;
  // after map-back, every vertex's label must be its component's smallest
  // ORIGINAL id — exactly the reference convention.
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(1, 2);
  edges.Add(0, 2);
  edges.Add(3, 4);
  Graph graph = GraphBuilder::Undirected(edges).ValueOrDie();
  ReorderedGraph reordered = graph.ReorderByDegree();
  AlgorithmOutput out = ref::Run(reordered.graph, AlgorithmKind::kConn, {});
  AlgorithmOutput mapped = harness::MapOutputToOriginalIds(
      AlgorithmKind::kConn, reordered.perm.new_to_old, std::move(out));
  std::vector<int64_t> expected = {0, 0, 0, 3, 3};
  EXPECT_EQ(mapped.vertex_values, expected);
}

}  // namespace
}  // namespace gly
