// Cancellation subsystem unit tests: the CancelToken / Deadline contracts
// (first-cancel-wins, reason → Status mapping, heartbeats), cancelled
// ThreadPool chunk skipping, pre-cancelled runs returning promptly on
// every platform engine, and the MemoryBudget unwinding guarantees the
// cancelled-attempt path relies on (charges released by RAII unwinding,
// Reset clearing the abandoned attempt's peak).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/memory_budget.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/threadpool.h"
#include "harness/platform.h"
#include "ref/algorithms.h"

namespace gly {
namespace {

// ------------------------------------------------------------- CancelToken

TEST(CancelTokenTest, StartsUncancelled) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kNone);
  EXPECT_TRUE(token.detail().empty());
  EXPECT_EQ(token.heartbeats(), 0u);
}

TEST(CancelTokenTest, CancelSetsReasonAndDetail) {
  CancelToken token;
  EXPECT_TRUE(token.Cancel(CancelReason::kDeadline, "budget blown"));
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kDeadline);
  EXPECT_EQ(token.detail(), "budget blown");
}

TEST(CancelTokenTest, FirstCancelWins) {
  CancelToken token;
  EXPECT_TRUE(token.Cancel(CancelReason::kStall, "first"));
  EXPECT_FALSE(token.Cancel(CancelReason::kHarnessStop, "second"));
  EXPECT_EQ(token.reason(), CancelReason::kStall);
  EXPECT_EQ(token.detail(), "first");
}

TEST(CancelTokenTest, ConcurrentCancelHasExactlyOneWinner) {
  for (int round = 0; round < 20; ++round) {
    CancelToken token;
    std::atomic<int> winners{0};
    ThreadPool pool(4);
    pool.ParallelFor(8, [&](size_t i) {
      CancelReason reason =
          (i % 2 == 0) ? CancelReason::kDeadline : CancelReason::kStall;
      if (token.Cancel(reason, "racer")) winners.fetch_add(1);
    });
    EXPECT_EQ(winners.load(), 1);
    EXPECT_TRUE(token.cancelled());
  }
}

TEST(CancelTokenTest, ToStatusMapsReasonsOntoRetryability) {
  {
    CancelToken token;
    token.Cancel(CancelReason::kDeadline);
    EXPECT_TRUE(token.ToStatus().IsTimeout()) << token.ToStatus().ToString();
  }
  {
    CancelToken token;
    token.Cancel(CancelReason::kStall);
    EXPECT_TRUE(token.ToStatus().IsTimeout()) << token.ToStatus().ToString();
  }
  {
    // A harness stop (SIGINT) is final: Cancelled, which is not retryable,
    // so the retry loop does not burn attempts after the user gave up.
    CancelToken token;
    token.Cancel(CancelReason::kHarnessStop);
    EXPECT_TRUE(token.ToStatus().IsCancelled())
        << token.ToStatus().ToString();
  }
}

TEST(CancelTokenTest, ReasonNames) {
  EXPECT_STREQ(CancelReasonName(CancelReason::kNone), "none");
  EXPECT_STREQ(CancelReasonName(CancelReason::kDeadline), "deadline");
  EXPECT_STREQ(CancelReasonName(CancelReason::kHarnessStop), "harness_stop");
  EXPECT_STREQ(CancelReasonName(CancelReason::kStall), "stall");
}

TEST(CancelTokenTest, HeartbeatsAccumulate) {
  CancelToken token;
  const CancelToken* view = &token;  // poll sites hold const pointers
  view->Heartbeat();
  view->Heartbeat();
  EXPECT_EQ(token.heartbeats(), 2u);
}

TEST(CancelTokenTest, FreeHelpersTreatNullAsUncancellable) {
  EXPECT_FALSE(Cancelled(nullptr));
  EXPECT_TRUE(CheckCancel(nullptr).ok());
  CancelToken token;
  EXPECT_TRUE(CheckCancel(&token).ok());
  token.Cancel(CancelReason::kDeadline);
  EXPECT_TRUE(Cancelled(&token));
  EXPECT_TRUE(CheckCancel(&token).IsTimeout());
}

// ---------------------------------------------------------------- Deadline

TEST(DeadlineTest, NeverDoesNotExpire) {
  Deadline never = Deadline::Never();
  EXPECT_FALSE(never.expired());
  EXPECT_GT(never.remaining_seconds(), 1e6);
}

TEST(DeadlineTest, ExpiresAfterItsBudget) {
  Deadline deadline = Deadline::After(0.02);
  EXPECT_FALSE(deadline.expired());
  EXPECT_GT(deadline.remaining_seconds(), 0.0);
  Stopwatch watch;
  while (!deadline.expired() && watch.ElapsedSeconds() < 5.0) {
  }
  EXPECT_TRUE(deadline.expired());
  EXPECT_LE(deadline.remaining_seconds(), 0.0);
}

TEST(DeadlineTest, AlreadyExpiredWhenBudgetIsZero) {
  EXPECT_TRUE(Deadline::After(0.0).expired());
  EXPECT_TRUE(Deadline::After(-1.0).expired());
}

// -------------------------------------------------------------- ThreadPool

TEST(ThreadPoolCancelTest, CancelledRangedParallelForSkipsChunks) {
  ThreadPool pool(4);
  CancelToken token;
  token.Cancel(CancelReason::kDeadline);
  std::atomic<size_t> ran{0};
  pool.ParallelFor(
      0, 100000, /*grain=*/64, [&](size_t) { ran.fetch_add(1); }, &token);
  EXPECT_EQ(ran.load(), 0u);
  std::atomic<size_t> chunks{0};
  pool.ParallelForChunked(
      0, 100000, /*grain=*/64,
      [&](size_t, size_t) { chunks.fetch_add(1); }, &token);
  EXPECT_EQ(chunks.load(), 0u);
}

TEST(ThreadPoolCancelTest, NullTokenRunsEverything) {
  ThreadPool pool(4);
  std::atomic<size_t> ran{0};
  pool.ParallelFor(0, 1000, /*grain=*/16, [&](size_t) { ran.fetch_add(1); },
                   nullptr);
  EXPECT_EQ(ran.load(), 1000u);
}

// ------------------------------------------- pre-cancelled platform runs

Graph SmallGraph() {
  EdgeList edges;
  Rng rng(99);
  for (int i = 0; i < 400; ++i) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(128));
    VertexId b = static_cast<VertexId>(rng.NextBounded(128));
    if (a != b) edges.Add(a, b);
  }
  return GraphBuilder::Undirected(edges).ValueOrDie();
}

TEST(PlatformCancelTest, PreCancelledRunFailsFastOnEveryPlatform) {
  Graph g = SmallGraph();
  CancelToken token;
  token.Cancel(CancelReason::kDeadline, "pre-cancelled");
  for (const char* name : {"giraph", "graphx", "mapreduce", "neo4j"}) {
    auto platform = harness::MakePlatform(name, Config());
    ASSERT_TRUE(platform.ok()) << name;
    ASSERT_TRUE((*platform)->LoadGraph(g, "toy").ok()) << name;
    AlgorithmParams params;
    params.cancel = &token;
    Stopwatch watch;
    auto run = (*platform)->Run(AlgorithmKind::kBfs, params);
    EXPECT_FALSE(run.ok()) << name;
    EXPECT_TRUE(run.status().IsTimeout()) << name << ": "
                                          << run.status().ToString();
    // "Fails fast" here means bounded poll granularity, not wall-clock
    // luck: well under a second for a toy graph on any engine.
    EXPECT_LT(watch.ElapsedSeconds(), 1.0) << name;
    (*platform)->UnloadGraph();
  }
}

TEST(PlatformCancelTest, NullTokenRunsToCompletion) {
  Graph g = SmallGraph();
  for (const char* name : {"giraph", "graphx", "mapreduce", "neo4j"}) {
    auto platform = harness::MakePlatform(name, Config());
    ASSERT_TRUE(platform.ok()) << name;
    ASSERT_TRUE((*platform)->LoadGraph(g, "toy").ok()) << name;
    auto run = (*platform)->Run(AlgorithmKind::kBfs, AlgorithmParams());
    EXPECT_TRUE(run.ok()) << name << ": " << run.status().ToString();
    (*platform)->UnloadGraph();
  }
}

// ------------------------------------------------------------ MemoryBudget

TEST(MemoryBudgetCancelTest, ResetClearsUsageAndPeak) {
  MemoryBudget budget(1024);
  ASSERT_TRUE(budget.Charge(512, "attempt one").ok());
  EXPECT_EQ(budget.used(), 512u);
  EXPECT_EQ(budget.peak(), 512u);
  budget.Reset();
  // A budget reused after a cancelled attempt must not report the
  // abandoned attempt's high-water mark as the next attempt's peak.
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.peak(), 0u);
  ASSERT_TRUE(budget.Charge(128, "attempt two").ok());
  EXPECT_EQ(budget.peak(), 128u);
}

TEST(MemoryBudgetCancelTest, ScopedChargeReleasesOnUnwind) {
  // Cancelled engines surface the token's Status and unwind; every charge
  // must travel in a ScopedCharge so unwinding releases it.
  MemoryBudget budget(1024);
  {
    ASSERT_TRUE(budget.Charge(256, "superstep state").ok());
    ScopedCharge charge(&budget, 256);
    EXPECT_EQ(budget.used(), 256u);
  }
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.peak(), 256u);  // peak survives release, until Reset
}

}  // namespace
}  // namespace gly
