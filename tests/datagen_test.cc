// Unit and property tests for the datagen module: degree plugins, the
// social generator (determinism, distribution fidelity, correlation),
// rewiring (degree preservation, target convergence), R-MAT, the
// single/cluster runner.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>

#include "common/stopwatch.h"

#include "analysis/degree_distribution.h"
#include "analysis/metrics.h"
#include "common/temp_dir.h"
#include "datagen/degree_plugin.h"
#include "datagen/rewire.h"
#include "datagen/rmat.h"
#include "datagen/runner.h"
#include "datagen/social_datagen.h"
#include "graph/graph.h"

namespace gly::datagen {
namespace {

// ---------------------------------------------------------------- plugins

TEST(DegreePluginTest, FactoryParsesSpecs) {
  EXPECT_TRUE(MakeDegreePlugin("zeta:alpha=1.7").ok());
  EXPECT_TRUE(MakeDegreePlugin("geometric:p=0.12").ok());
  EXPECT_TRUE(MakeDegreePlugin("weibull:shape=0.8,scale=20").ok());
  EXPECT_TRUE(MakeDegreePlugin("poisson:lambda=10").ok());
  EXPECT_TRUE(MakeDegreePlugin("facebook").ok());
  EXPECT_TRUE(MakeDegreePlugin("facebook:mean=25").ok());
}

TEST(DegreePluginTest, FactoryRejectsBadSpecs) {
  EXPECT_FALSE(MakeDegreePlugin("unknown:x=1").ok());
  EXPECT_FALSE(MakeDegreePlugin("zeta:alpha=0.9").ok());   // needs alpha > 1
  EXPECT_FALSE(MakeDegreePlugin("geometric:p=1.5").ok());
  EXPECT_FALSE(MakeDegreePlugin("poisson:lambda=-2").ok());
  EXPECT_FALSE(MakeDegreePlugin("zeta").ok());             // missing param
}

TEST(DegreePluginTest, SampledMeansMatchDeclaredMeans) {
  Rng rng(71);
  for (const char* spec :
       {"geometric:p=0.2", "poisson:lambda=7", "facebook:mean=20",
        "zeta:alpha=2.5"}) {
    auto plugin = MakeDegreePlugin(spec);
    ASSERT_TRUE(plugin.ok()) << spec;
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>((*plugin)->Sample(rng));
    }
    double mean = sum / n;
    EXPECT_NEAR(mean, (*plugin)->MeanDegree(),
                (*plugin)->MeanDegree() * 0.1)
        << spec;
  }
}

TEST(DegreePluginTest, EmpiricalReproducesHistogram) {
  Histogram observed;
  observed.Add(1, 700);
  observed.Add(5, 200);
  observed.Add(50, 100);
  auto plugin = EmpiricalDegreePlugin::FromHistogram(observed);
  ASSERT_TRUE(plugin.ok());
  Rng rng(73);
  Histogram sampled;
  for (int i = 0; i < 100000; ++i) sampled.Add(plugin->Sample(rng));
  EXPECT_NEAR(static_cast<double>(sampled.CountOf(1)) / 100000, 0.7, 0.01);
  EXPECT_NEAR(static_cast<double>(sampled.CountOf(5)) / 100000, 0.2, 0.01);
  EXPECT_NEAR(static_cast<double>(sampled.CountOf(50)) / 100000, 0.1, 0.01);
}

TEST(DegreePluginTest, EmpiricalRejectsEmpty) {
  Histogram empty;
  EXPECT_FALSE(EmpiricalDegreePlugin::FromHistogram(empty).ok());
  Histogram only_zero;
  only_zero.Add(0, 10);
  EXPECT_FALSE(EmpiricalDegreePlugin::FromHistogram(only_zero).ok());
}

// ---------------------------------------------------------- SocialDatagen

SocialDatagenConfig SmallConfig(const std::string& spec = "geometric:p=0.2") {
  SocialDatagenConfig config;
  config.num_persons = 5000;
  config.degree_spec = spec;
  config.window_size = 256;
  config.seed = 42;
  return config;
}

TEST(SocialDatagenTest, ValidatesConfig) {
  SocialDatagenConfig bad = SmallConfig();
  bad.num_persons = 1;
  EXPECT_FALSE(SocialDatagen(bad).Validate().ok());
  bad = SmallConfig();
  bad.university_fraction = 0.9;
  bad.interest_fraction = 0.9;
  EXPECT_FALSE(SocialDatagen(bad).Validate().ok());
  bad = SmallConfig();
  bad.degree_spec = "nope";
  EXPECT_FALSE(SocialDatagen(bad).Validate().ok());
  EXPECT_TRUE(SocialDatagen(SmallConfig()).Validate().ok());
}

TEST(SocialDatagenTest, DeterministicAcrossThreadCounts) {
  // The paper requires Datagen to be deterministic; our implementation must
  // produce the identical edge set no matter how many threads execute it.
  SocialDatagen gen(SmallConfig());
  auto serial = gen.Generate(nullptr);
  ASSERT_TRUE(serial.ok());
  ThreadPool pool2(2);
  auto parallel2 = gen.Generate(&pool2);
  ASSERT_TRUE(parallel2.ok());
  ThreadPool pool8(8);
  auto parallel8 = gen.Generate(&pool8);
  ASSERT_TRUE(parallel8.ok());
  EXPECT_EQ(serial->edges.edges(), parallel2->edges.edges());
  EXPECT_EQ(serial->edges.edges(), parallel8->edges.edges());
}

TEST(SocialDatagenTest, SeedChangesOutput) {
  SocialDatagenConfig config = SmallConfig();
  auto a = SocialDatagen(config).Generate(nullptr);
  config.seed = 777;
  auto b = SocialDatagen(config).Generate(nullptr);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->edges.edges(), b->edges.edges());
}

TEST(SocialDatagenTest, MeanDegreeTracksPlugin) {
  auto result = SocialDatagen(SmallConfig("geometric:p=0.2")).Generate(nullptr);
  ASSERT_TRUE(result.ok());
  // Mean degree ~= plugin mean (5.0); dedup/self-pair losses allowed.
  double mean_degree = 2.0 * static_cast<double>(result->edges.num_edges()) /
                       static_cast<double>(result->edges.num_vertices());
  EXPECT_NEAR(mean_degree, 5.0, 0.8);
}

// Figure 1's property: Datagen "can reliably reproduce these two
// distributions". We assert it quantitatively: fitting the generated
// graph's degrees recovers the plugin's parameter, and the plugin's family
// outranks every other single-parameter family. (The 2-parameter Weibull
// may shade the winner by flexibility; the paper itself observes that the
// best-fitting model can differ from the generating shape.)
size_t RankOfFamily(const std::vector<ModelFit>& fits,
                    const std::string& family) {
  for (size_t i = 0; i < fits.size(); ++i) {
    if (fits[i].model_description.find(family) != std::string::npos) return i;
  }
  return fits.size();
}

TEST(SocialDatagenTest, ZetaPluginReproducesZeta) {
  SocialDatagenConfig config = SmallConfig("zeta:alpha=1.7,max=1000");
  config.num_persons = 20000;
  auto result = SocialDatagen(config).Generate(nullptr);
  ASSERT_TRUE(result.ok());
  Graph g = GraphBuilder::Undirected(result->edges).ValueOrDie();
  Histogram degrees = DegreeHistogram(g);
  auto fits = FitAllModels(degrees);
  EXPECT_LT(RankOfFamily(fits, "zeta"), RankOfFamily(fits, "geometric"));
  EXPECT_LT(RankOfFamily(fits, "zeta"), RankOfFamily(fits, "poisson"));
  ZetaModel fitted = ZetaModel::Fit(degrees);
  EXPECT_NEAR(fitted.alpha(), 1.7, 0.1);
}

TEST(SocialDatagenTest, GeometricPluginReproducesGeometric) {
  SocialDatagenConfig config = SmallConfig("geometric:p=0.12");
  config.num_persons = 20000;
  config.window_size = 256;
  auto result = SocialDatagen(config).Generate(nullptr);
  ASSERT_TRUE(result.ok());
  Graph g = GraphBuilder::Undirected(result->edges).ValueOrDie();
  Histogram degrees = DegreeHistogram(g);
  auto fits = FitAllModels(degrees);
  EXPECT_LT(RankOfFamily(fits, "geometric"), RankOfFamily(fits, "zeta"));
  EXPECT_LT(RankOfFamily(fits, "geometric"), RankOfFamily(fits, "poisson"));
  GeometricModel fitted = GeometricModel::Fit(degrees);
  EXPECT_NEAR(fitted.p(), 0.12, 0.015);
}

TEST(SocialDatagenTest, AttributesAreCorrelated) {
  SocialDatagen gen(SmallConfig());
  auto persons = gen.GeneratePersons(nullptr);
  // University is location-correlated: for ~90% of persons,
  // university / universities_per_location == location.
  const auto& config = gen.config();
  size_t matching = 0;
  for (const Person& p : persons) {
    if (p.university / config.universities_per_location == p.location) {
      ++matching;
    }
  }
  double fraction = static_cast<double>(matching) / persons.size();
  EXPECT_GT(fraction, 0.8);
  EXPECT_LT(fraction, 0.99);
}

TEST(SocialDatagenTest, CorrelatedEdgesShareAttributes) {
  // Edges from the university pass connect similar persons; overall, linked
  // pairs must share universities far more often than random pairs would.
  SocialDatagenConfig config = SmallConfig();
  config.num_persons = 4000;
  config.window_size = 64;  // tight window -> strong attribute correlation
  auto result = SocialDatagen(config).Generate(nullptr);
  ASSERT_TRUE(result.ok());
  size_t same_univ = 0;
  for (const Edge& e : result->edges.edges()) {
    if (result->persons[e.src].university == result->persons[e.dst].university) {
      ++same_univ;
    }
  }
  double fraction =
      static_cast<double>(same_univ) / result->edges.num_edges();
  // Baseline: the same-university probability of uniformly random pairs
  // (includes the popularity skew). The correlated pass must beat it by a
  // wide margin.
  Rng rng(103);
  size_t random_same = 0;
  const size_t trials = 200000;
  for (size_t i = 0; i < trials; ++i) {
    const Person& a =
        result->persons[rng.NextBounded(result->persons.size())];
    const Person& b =
        result->persons[rng.NextBounded(result->persons.size())];
    if (a.university == b.university) ++random_same;
  }
  double baseline = static_cast<double>(random_same) / trials;
  EXPECT_GT(fraction, 3.0 * baseline)
      << "correlated fraction " << fraction << " vs baseline " << baseline;
}

TEST(SocialDatagenTest, ClusteringInDatagenRange) {
  // Paper: "The current output of Datagen has an average clustering
  // coefficient of about 0.1".  Ours is window-based too; assert the same
  // order of magnitude (well above an Erdos-Renyi graph of equal density).
  SocialDatagenConfig config = SmallConfig("geometric:p=0.1");
  config.num_persons = 3000;
  auto result = SocialDatagen(config).Generate(nullptr);
  ASSERT_TRUE(result.ok());
  Graph g = GraphBuilder::Undirected(result->edges).ValueOrDie();
  double cc = AverageClusteringCoefficient(g);
  double er_cc = 2.0 * static_cast<double>(g.num_edges()) /
                 (static_cast<double>(g.num_vertices()) *
                  static_cast<double>(g.num_vertices() - 1));
  EXPECT_GT(cc, 5 * er_cc);
}

// ------------------------------------------------------------------ rewire

EdgeList RandomEdges(VertexId n, size_t m, uint64_t seed) {
  EdgeList edges(n);
  Rng rng(seed);
  while (edges.num_edges() < m) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(n));
    VertexId b = static_cast<VertexId>(rng.NextBounded(n));
    if (a != b) edges.Add(a, b);
  }
  edges.DeduplicateAndDropLoops();
  return edges;
}

std::vector<uint64_t> SortedDegrees(const EdgeList& edges) {
  Graph g = GraphBuilder::Undirected(edges).ValueOrDie();
  std::vector<uint64_t> degrees;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    degrees.push_back(g.Degree(v));
  }
  std::sort(degrees.begin(), degrees.end());
  return degrees;
}

TEST(RewireTest, PreservesDegreeSequence) {
  EdgeList input = RandomEdges(200, 600, 79);
  RewireConfig config;
  config.target_clustering = 0.3;
  config.clustering_weight = 1.0;
  config.max_iterations = 20000;
  RewireStats stats;
  auto result = GraphRewirer(config).Rewire(input, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(SortedDegrees(input), SortedDegrees(*result));
  EXPECT_GT(stats.accepted_swaps, 0u);
}

TEST(RewireTest, RaisesClusteringTowardTarget) {
  EdgeList input = RandomEdges(300, 1200, 83);
  Graph before = GraphBuilder::Undirected(input).ValueOrDie();
  double cc_before = GlobalClusteringCoefficient(before);
  RewireConfig config;
  config.target_clustering = 0.25;
  config.clustering_weight = 1.0;
  config.max_iterations = 60000;
  RewireStats stats;
  auto result = GraphRewirer(config).Rewire(input, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(stats.final_clustering, cc_before + 0.05);
  EXPECT_LE(std::abs(stats.final_clustering - 0.25),
            std::abs(cc_before - 0.25));
}

TEST(RewireTest, DrivesAssortativitySign) {
  EdgeList input = RandomEdges(300, 1200, 89);
  for (double target : {0.3, -0.3}) {
    RewireConfig config;
    config.target_assortativity = target;
    config.assortativity_weight = 1.0;
    config.max_iterations = 60000;
    RewireStats stats;
    auto result = GraphRewirer(config).Rewire(input, &stats);
    ASSERT_TRUE(result.ok());
    if (target > 0) {
      EXPECT_GT(stats.final_assortativity, 0.1);
    } else {
      EXPECT_LT(stats.final_assortativity, -0.1);
    }
  }
}

TEST(RewireTest, StatsMatchIndependentMetrics) {
  EdgeList input = RandomEdges(150, 500, 97);
  RewireConfig config;
  config.target_clustering = 0.2;
  config.clustering_weight = 1.0;
  config.max_iterations = 10000;
  RewireStats stats;
  auto result = GraphRewirer(config).Rewire(input, &stats);
  ASSERT_TRUE(result.ok());
  Graph g = GraphBuilder::Undirected(*result).ValueOrDie();
  EXPECT_NEAR(GlobalClusteringCoefficient(g), stats.final_clustering, 1e-9);
  EXPECT_NEAR(DegreeAssortativity(g), stats.final_assortativity, 1e-9);
}

TEST(RewireTest, DeterministicForSeed) {
  EdgeList input = RandomEdges(100, 300, 101);
  RewireConfig config;
  config.target_clustering = 0.3;
  config.clustering_weight = 1.0;
  config.max_iterations = 5000;
  auto a = GraphRewirer(config).Rewire(input);
  auto b = GraphRewirer(config).Rewire(input);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->edges(), b->edges());
}

TEST(RewireTest, TinyInputsAreSafe) {
  EdgeList one;
  one.Add(0, 1);
  RewireConfig config;
  config.target_clustering = 0.5;
  config.clustering_weight = 1.0;
  auto result = GraphRewirer(config).Rewire(one);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_edges(), 1u);
}

// -------------------------------------------------------------------- rmat

TEST(RmatTest, GeneratesRequestedCounts) {
  RmatConfig config;
  config.scale = 10;
  config.edge_factor = 8;
  auto edges = RmatGenerator(config).Generate(nullptr);
  ASSERT_TRUE(edges.ok());
  EXPECT_EQ(edges->num_edges(), (1u << 10) * 8u);
  EXPECT_LE(edges->num_vertices(), 1u << 10);
}

TEST(RmatTest, DeterministicAcrossThreadCounts) {
  RmatConfig config;
  config.scale = 12;
  config.edge_factor = 8;
  auto serial = RmatGenerator(config).Generate(nullptr);
  ThreadPool pool(6);
  auto parallel = RmatGenerator(config).Generate(&pool);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->edges(), parallel->edges());
}

TEST(RmatTest, SkewedDegreeDistribution) {
  RmatConfig config;
  config.scale = 12;
  config.edge_factor = 16;
  config.permute_vertices = false;
  auto edges = RmatGenerator(config).Generate(nullptr);
  ASSERT_TRUE(edges.ok());
  Graph g = GraphBuilder::Directed(*edges, /*dedup=*/false).ValueOrDie();
  // R-MAT with a=0.57 concentrates edges: the top-degree vertex should far
  // exceed the mean degree.
  uint64_t max_deg = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_deg = std::max(max_deg, g.OutDegree(v));
  }
  EXPECT_GT(max_deg, 10 * config.edge_factor);
}

TEST(RmatTest, ValidatesParameters) {
  RmatConfig config;
  config.a = 0.9;
  config.b = 0.2;  // sums > 1
  EXPECT_FALSE(RmatGenerator(config).Generate(nullptr).ok());
  config = RmatConfig{};
  config.scale = 0;
  EXPECT_FALSE(RmatGenerator(config).Generate(nullptr).ok());
}

// ------------------------------------------------------------------ runner

TEST(DatagenRunnerTest, WritesPartFiles) {
  auto dir = TempDir::Create("gly-datagen");
  ASSERT_TRUE(dir.ok());
  DatagenRunConfig config;
  config.datagen = SmallConfig();
  config.datagen.num_persons = 2000;
  config.mode = RunMode::kCluster;
  config.num_nodes = 3;
  config.threads_per_node = 2;
  config.disk_mib_per_s = 0;  // unthrottled for the unit test
  config.cluster_phase_overhead_s = 0.0;
  config.output_dir = dir->File("out");
  auto result = RunDatagenJob(config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->num_edges, 0u);
  EXPECT_GT(result->bytes_written, 0u);
  int parts = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(config.output_dir)) {
    (void)entry;
    ++parts;
  }
  EXPECT_EQ(parts, 3);
}

TEST(DatagenRunnerTest, ClusterOverheadCharged) {
  auto dir = TempDir::Create("gly-datagen");
  ASSERT_TRUE(dir.ok());
  DatagenRunConfig config;
  config.datagen = SmallConfig();
  config.datagen.num_persons = 500;
  config.mode = RunMode::kCluster;
  config.num_nodes = 2;
  config.cluster_phase_overhead_s = 0.05;
  config.num_phases = 2;
  config.disk_mib_per_s = 0;
  config.output_dir = dir->File("out");
  auto result = RunDatagenJob(config);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->overhead_seconds, 0.1, 1e-9);
  EXPECT_GE(result->wall_seconds, 0.1);
}

TEST(DiskThrottleTest, LimitsThroughput) {
  DiskThrottle throttle(10.0);  // 10 MiB/s
  Stopwatch watch;
  // 2 MiB should take ~0.2 s.
  for (int i = 0; i < 32; ++i) throttle.Consume(64 * 1024);
  double elapsed = watch.ElapsedSeconds();
  EXPECT_GT(elapsed, 0.15);
  EXPECT_LT(elapsed, 1.0);
}

}  // namespace
}  // namespace gly::datagen
