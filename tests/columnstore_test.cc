// Tests for the column store: bit packing, block encodings, the edge
// table, the partitioned hash set, and the transitive-closure operator.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "columnstore/column.h"
#include "columnstore/edge_table.h"
#include "columnstore/transitive.h"
#include "common/random.h"
#include "graph/graph.h"
#include "ref/algorithms.h"

namespace gly::columnstore {
namespace {

// ------------------------------------------------------------- bit packing

TEST(BitPackTest, RoundTripsAllWidths) {
  Rng rng(3);
  for (uint32_t width = 0; width <= 32; ++width) {
    std::vector<uint32_t> values(999);
    uint64_t mask = width >= 32 ? ~0u : ((1ULL << width) - 1);
    for (auto& v : values) {
      v = static_cast<uint32_t>(rng.Next() & mask);
    }
    std::vector<uint64_t> packed;
    BitPack(values.data(), values.size(), width, &packed);
    std::vector<uint32_t> out(values.size());
    BitUnpack(packed.data(), out.size(), width, out.data());
    EXPECT_EQ(out, values) << "width " << width;
  }
}

TEST(BitPackTest, BitsFor) {
  EXPECT_EQ(BitsFor(0), 0u);
  EXPECT_EQ(BitsFor(1), 1u);
  EXPECT_EQ(BitsFor(255), 8u);
  EXPECT_EQ(BitsFor(256), 9u);
  EXPECT_EQ(BitsFor(~0u), 32u);
}

// ----------------------------------------------------------------- columns

TEST(ColumnTest, RoundTripsRandomData) {
  Rng rng(5);
  std::vector<uint32_t> values(10000);
  for (auto& v : values) v = static_cast<uint32_t>(rng.Next());
  Column col = Column::Encode(values);
  EXPECT_EQ(col.size(), values.size());
  for (size_t i = 0; i < values.size(); i += 173) {
    EXPECT_EQ(col.Get(i), values[i]);
  }
  std::vector<uint32_t> range;
  col.ReadRange(100, 5000, &range);
  EXPECT_TRUE(std::equal(range.begin(), range.end(), values.begin() + 100));
}

TEST(ColumnTest, ConstantBlocksUseRle) {
  std::vector<uint32_t> values(5000, 42);
  Column col = Column::Encode(values);
  EXPECT_GT(col.encoding_histogram()[static_cast<size_t>(Encoding::kRle)], 0u);
  EXPECT_LT(col.compressed_bytes(), col.raw_bytes() / 10);
  EXPECT_EQ(col.Get(4321), 42u);
}

TEST(ColumnTest, SortedDataUsesDeltaAndCompresses) {
  std::vector<uint32_t> values;
  Rng rng(7);
  uint32_t acc = 0;
  for (int i = 0; i < 20000; ++i) {
    acc += static_cast<uint32_t>(rng.NextBounded(4));
    values.push_back(acc);
  }
  Column col = Column::Encode(values);
  EXPECT_GT(
      col.encoding_histogram()[static_cast<size_t>(Encoding::kDeltaFor)], 0u);
  EXPECT_LT(col.compressed_bytes(), col.raw_bytes() / 4);
  std::vector<uint32_t> all;
  col.ReadRange(0, values.size(), &all);
  EXPECT_EQ(all, values);
}

TEST(ColumnTest, SmallRangeDataUsesFor) {
  std::vector<uint32_t> values;
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    values.push_back(1000000 + static_cast<uint32_t>(rng.NextBounded(100)));
  }
  Column col = Column::Encode(values);
  EXPECT_GT(col.encoding_histogram()[static_cast<size_t>(Encoding::kFor)],
            0u);
  EXPECT_LT(col.compressed_bytes(), col.raw_bytes() / 3);
}

TEST(ColumnTest, CountsBlockDecodes) {
  std::vector<uint32_t> values(3 * kBlockSize, 1);
  Column col = Column::Encode(values);
  std::vector<uint32_t> out;
  col.DecodeBlockContaining(0, &out);
  col.DecodeBlockContaining(kBlockSize, &out);
  EXPECT_EQ(col.block_decodes(), 2u);
}

TEST(ColumnTest, EmptyColumn) {
  Column col = Column::Encode({});
  EXPECT_EQ(col.size(), 0u);
  std::vector<uint32_t> out;
  col.ReadRange(0, 0, &out);
  EXPECT_TRUE(out.empty());
}

// --------------------------------------------------------------- EdgeTable

TEST(EdgeTableTest, OutEdgesMatchCsr) {
  EdgeList edges;
  Rng rng(11);
  for (int i = 0; i < 3000; ++i) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(300));
    VertexId b = static_cast<VertexId>(rng.NextBounded(300));
    if (a != b) edges.Add(a, b);
  }
  edges.DeduplicateAndDropLoops();
  Graph g = GraphBuilder::Directed(edges).ValueOrDie();
  auto table = EdgeTable::Build(edges);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), edges.num_edges());
  LookupStats stats;
  std::vector<uint32_t> out;
  for (VertexId v = 0; v < 300; v += 17) {
    table->OutEdges(v, &out, &stats);
    auto expected_span = g.OutNeighbors(v);
    std::vector<uint32_t> expected(expected_span.begin(), expected_span.end());
    EXPECT_EQ(out, expected) << "vertex " << v;
  }
  EXPECT_GT(stats.random_lookups, 0u);
}

TEST(EdgeTableTest, CompressesRealisticEdges) {
  EdgeList edges;
  Rng rng(13);
  for (int i = 0; i < 100000; ++i) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(5000));
    VertexId b = static_cast<VertexId>(rng.NextBounded(5000));
    if (a != b) edges.Add(a, b);
  }
  auto table = EdgeTable::Build(edges);
  ASSERT_TRUE(table.ok());
  // The sorted from column delta-compresses well; overall ratio < 60%.
  EXPECT_LT(table->compressed_bytes(), table->raw_bytes() * 6 / 10);
}

// ----------------------------------------------------------- VertexHashSet

TEST(VertexHashSetTest, InsertAndContains) {
  VertexHashSet set(4);
  EXPECT_TRUE(set.Insert(10));
  EXPECT_FALSE(set.Insert(10));
  EXPECT_TRUE(set.Insert(20));
  EXPECT_TRUE(set.Contains(10));
  EXPECT_FALSE(set.Contains(30));
  EXPECT_EQ(set.size(), 2u);
}

TEST(VertexHashSetTest, GrowsUnderLoad) {
  VertexHashSet set(4);
  Rng rng(17);
  std::set<uint32_t> reference;
  for (int i = 0; i < 10000; ++i) {
    uint32_t v = static_cast<uint32_t>(rng.NextBounded(20000));
    EXPECT_EQ(set.Insert(v), reference.insert(v).second);
  }
  EXPECT_EQ(set.size(), reference.size());
  for (uint32_t v : reference) EXPECT_TRUE(set.Contains(v));
}

// -------------------------------------------------------------- transitive

TEST(TransitiveTest, CountsReachableVertices) {
  // Compare against reference BFS reachability.
  EdgeList edges;
  Rng rng(19);
  for (int i = 0; i < 5000; ++i) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(1000));
    VertexId b = static_cast<VertexId>(rng.NextBounded(1000));
    if (a != b) edges.Add(a, b);
  }
  edges.DeduplicateAndDropLoops();
  auto table = EdgeTable::Build(edges);
  ASSERT_TRUE(table.ok());
  Graph g = GraphBuilder::Directed(edges).ValueOrDie();
  auto ref_out = ref::Bfs(g, BfsParams{420});
  uint64_t expected = 0;
  for (int64_t d : ref_out.vertex_values) {
    if (d != kUnreachable && d > 0) ++expected;
  }
  TransitiveConfig config;
  config.num_partitions = 4;
  auto profile = TransitiveCount(*table, 420, config);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->distinct_reached, expected);
  EXPECT_GT(profile->random_lookups, 0u);
  EXPECT_GT(profile->edge_endpoints_visited, 0u);
  EXPECT_GT(profile->mteps, 0.0);
}

TEST(TransitiveTest, ProfileFractionsSumToOne) {
  EdgeList edges;
  Rng rng(23);
  for (int i = 0; i < 20000; ++i) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(2000));
    VertexId b = static_cast<VertexId>(rng.NextBounded(2000));
    if (a != b) edges.Add(a, b);
  }
  auto table = EdgeTable::Build(edges);
  ASSERT_TRUE(table.ok());
  auto profile = TransitiveCount(*table, 0, TransitiveConfig{});
  ASSERT_TRUE(profile.ok());
  double total = profile->hash_fraction + profile->exchange_fraction +
                 profile->column_fraction;
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(TransitiveTest, DeterministicAcrossPartitionCounts) {
  EdgeList edges;
  Rng rng(29);
  for (int i = 0; i < 3000; ++i) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(500));
    VertexId b = static_cast<VertexId>(rng.NextBounded(500));
    if (a != b) edges.Add(a, b);
  }
  auto table = EdgeTable::Build(edges);
  ASSERT_TRUE(table.ok());
  TransitiveConfig one;
  one.num_partitions = 1;
  TransitiveConfig eight;
  eight.num_partitions = 8;
  auto a = TransitiveCount(*table, 7, one);
  auto b = TransitiveCount(*table, 7, eight);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->distinct_reached, b->distinct_reached);
  EXPECT_EQ(a->edge_endpoints_visited, b->edge_endpoints_visited);
}

TEST(TransitiveTest, RejectsBadSource) {
  EdgeList edges;
  edges.Add(0, 1);
  auto table = EdgeTable::Build(edges);
  ASSERT_TRUE(table.ok());
  EXPECT_FALSE(TransitiveCount(*table, 100, TransitiveConfig{}).ok());
}

TEST(TransitiveTest, IsolatedSourceReachesNothing) {
  EdgeList edges(10);
  edges.Add(0, 1);
  auto table = EdgeTable::Build(edges);
  ASSERT_TRUE(table.ok());
  auto profile = TransitiveCount(*table, 5, TransitiveConfig{});
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->distinct_reached, 0u);
}

}  // namespace
}  // namespace gly::columnstore
