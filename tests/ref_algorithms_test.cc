// Unit tests for the reference algorithm implementations — the gold
// standard every platform is validated against.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/random.h"
#include "graph/graph.h"
#include "ref/algorithms.h"

namespace gly {
namespace {

Graph MakeUndirected(std::initializer_list<std::pair<VertexId, VertexId>> es,
                     VertexId n = 0) {
  EdgeList edges(n);
  for (auto [a, b] : es) edges.Add(a, b);
  return GraphBuilder::Undirected(edges).ValueOrDie();
}

TEST(AlgorithmKindTest, ParseAndName) {
  EXPECT_EQ(*ParseAlgorithmKind("bfs"), AlgorithmKind::kBfs);
  EXPECT_EQ(*ParseAlgorithmKind("STATS"), AlgorithmKind::kStats);
  EXPECT_EQ(*ParseAlgorithmKind("Conn"), AlgorithmKind::kConn);
  EXPECT_FALSE(ParseAlgorithmKind("pagerank").ok());
  EXPECT_EQ(AlgorithmKindName(AlgorithmKind::kEvo), "EVO");
}

// -------------------------------------------------------------------- BFS

TEST(RefBfsTest, PathGraphDistances) {
  Graph g = MakeUndirected({{0, 1}, {1, 2}, {2, 3}});
  auto out = ref::Bfs(g, BfsParams{0});
  EXPECT_EQ(out.vertex_values, (std::vector<int64_t>{0, 1, 2, 3}));
  EXPECT_GT(out.traversed_edges, 0u);
}

TEST(RefBfsTest, DisconnectedIsUnreachable) {
  Graph g = MakeUndirected({{0, 1}, {2, 3}});
  auto out = ref::Bfs(g, BfsParams{0});
  EXPECT_EQ(out.vertex_values[2], kUnreachable);
  EXPECT_EQ(out.vertex_values[3], kUnreachable);
}

TEST(RefBfsTest, DirectedRespectsOrientation) {
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(1, 2);
  edges.Add(2, 0);
  Graph g = GraphBuilder::Directed(edges).ValueOrDie();
  auto out = ref::Bfs(g, BfsParams{1});
  EXPECT_EQ(out.vertex_values[1], 0);
  EXPECT_EQ(out.vertex_values[2], 1);
  EXPECT_EQ(out.vertex_values[0], 2);
}

TEST(RefBfsTest, SourceOutOfRangeYieldsAllUnreachable) {
  Graph g = MakeUndirected({{0, 1}});
  auto out = ref::Bfs(g, BfsParams{99});
  for (int64_t v : out.vertex_values) EXPECT_EQ(v, kUnreachable);
}

// ------------------------------------------------------- BFS (dir-opt)

TEST(BfsStrategyTest, ParseAndNameRoundTrip) {
  EXPECT_EQ(*ParseBfsStrategy("top_down"), BfsStrategy::kTopDown);
  EXPECT_EQ(*ParseBfsStrategy("bottom_up"), BfsStrategy::kBottomUp);
  EXPECT_EQ(*ParseBfsStrategy("diropt"), BfsStrategy::kDirectionOptimizing);
  EXPECT_FALSE(ParseBfsStrategy("beamer").ok());
  for (BfsStrategy s : {BfsStrategy::kTopDown, BfsStrategy::kBottomUp,
                        BfsStrategy::kDirectionOptimizing}) {
    EXPECT_EQ(*ParseBfsStrategy(BfsStrategyName(s)), s);
  }
}

TEST(BfsDirectionPolicyTest, HysteresisSwitchesAndSnapsBack) {
  BfsParams params;
  params.strategy = BfsStrategy::kDirectionOptimizing;
  params.alpha = 10.0;
  params.beta = 10.0;
  BfsDirectionPolicy policy(params, /*num_vertices=*/1000);
  // Small frontier relative to unexplored edges: stay top-down.
  EXPECT_FALSE(policy.UseBottomUp(10, 50, 10000));
  // Frontier degree crosses unexplored/alpha: switch bottom-up.
  EXPECT_TRUE(policy.UseBottomUp(200, 2000, 10000));
  // Hysteresis: stays bottom-up while the frontier is still wide.
  EXPECT_TRUE(policy.UseBottomUp(500, 100, 8000));
  // Frontier shrinks below n/beta vertices: snap back top-down.
  EXPECT_FALSE(policy.UseBottomUp(50, 100, 8000));
}

TEST(BfsDirectionPolicyTest, FixedStrategiesNeverSwitch) {
  BfsParams top;
  top.strategy = BfsStrategy::kTopDown;
  BfsDirectionPolicy top_policy(top, 1000);
  EXPECT_FALSE(top_policy.UseBottomUp(999, 100000, 1));
  BfsParams bottom;
  bottom.strategy = BfsStrategy::kBottomUp;
  BfsDirectionPolicy bottom_policy(bottom, 1000);
  EXPECT_TRUE(bottom_policy.UseBottomUp(1, 1, 100000));
}

TEST(RefBfsDirOptTest, MatchesNaiveOnVariedShapes) {
  const std::vector<Graph> graphs = [] {
    std::vector<Graph> out;
    out.push_back(MakeUndirected({{0, 1}, {1, 2}, {2, 3}}));       // path
    out.push_back(MakeUndirected({{0, 1}, {2, 3}}, /*n=*/6));      // islands
    EdgeList star;
    for (VertexId v = 1; v <= 500; ++v) star.Add(0, v);
    out.push_back(GraphBuilder::Undirected(star).ValueOrDie());
    EdgeList random(400);
    Rng rng(17);
    for (int i = 0; i < 1500; ++i) {
      VertexId a = static_cast<VertexId>(rng.NextBounded(400));
      VertexId b = static_cast<VertexId>(rng.NextBounded(400));
      if (a != b) random.Add(a, b);
    }
    out.push_back(GraphBuilder::Undirected(random).ValueOrDie());
    return out;
  }();
  for (size_t i = 0; i < graphs.size(); ++i) {
    const Graph& g = graphs[i];
    auto expected = ref::Bfs(g, BfsParams{0});
    for (BfsStrategy strategy : {BfsStrategy::kTopDown, BfsStrategy::kBottomUp,
                                 BfsStrategy::kDirectionOptimizing}) {
      BfsParams params;
      params.strategy = strategy;
      auto got = ref::BfsDirOpt(g, params);
      EXPECT_EQ(got.vertex_values, expected.vertex_values)
          << "graph " << i << " " << BfsStrategyName(strategy);
      EXPECT_GT(got.traversed_edges, 0u);
    }
  }
}

TEST(RefBfsDirOptTest, DirectedBottomUpProbesInNeighbors) {
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(1, 2);
  edges.Add(2, 3);
  edges.Add(3, 0);  // directed cycle
  Graph g = GraphBuilder::Directed(edges).ValueOrDie();
  auto expected = ref::Bfs(g, BfsParams{1});
  for (BfsStrategy strategy : {BfsStrategy::kTopDown, BfsStrategy::kBottomUp,
                               BfsStrategy::kDirectionOptimizing}) {
    BfsParams params;
    params.source = 1;
    params.strategy = strategy;
    auto got = ref::BfsDirOpt(g, params);
    EXPECT_EQ(got.vertex_values, expected.vertex_values)
        << BfsStrategyName(strategy);
  }
}

TEST(RefBfsDirOptTest, SourceOutOfRangeYieldsAllUnreachable) {
  Graph g = MakeUndirected({{0, 1}});
  BfsParams params;
  params.source = 99;
  auto out = ref::BfsDirOpt(g, params);
  for (int64_t v : out.vertex_values) EXPECT_EQ(v, kUnreachable);
}

TEST(RefBfsDirOptTest, BottomUpExaminesFewerEdgesOnHubFlood) {
  // The kernel's payoff: on a hub flood the bottom-up phase stops at the
  // first discovered parent instead of expanding every frontier edge.
  EdgeList edges;
  for (VertexId v = 1; v <= 2000; ++v) edges.Add(0, v);
  for (VertexId v = 1; v < 2000; ++v) edges.Add(v, v + 1);  // leaf ring
  Graph g = GraphBuilder::Undirected(edges).ValueOrDie();
  BfsParams top_down;
  top_down.strategy = BfsStrategy::kTopDown;
  BfsParams diropt;
  diropt.strategy = BfsStrategy::kDirectionOptimizing;
  diropt.alpha = 100.0;  // eager switch: the hub flood qualifies
  auto naive = ref::BfsDirOpt(g, top_down);
  auto hybrid = ref::BfsDirOpt(g, diropt);
  EXPECT_EQ(hybrid.vertex_values, naive.vertex_values);
  EXPECT_LT(hybrid.traversed_edges, naive.traversed_edges);
}

// ------------------------------------------------------------------- CONN

TEST(RefConnTest, TwoComponents) {
  Graph g = MakeUndirected({{0, 1}, {1, 2}, {3, 4}});
  auto out = ref::Conn(g);
  EXPECT_EQ(out.vertex_values, (std::vector<int64_t>{0, 0, 0, 3, 3}));
}

TEST(RefConnTest, IsolatedVerticesAreOwnComponents) {
  Graph g = MakeUndirected({{0, 1}}, /*n=*/4);
  auto out = ref::Conn(g);
  EXPECT_EQ(out.vertex_values[2], 2);
  EXPECT_EQ(out.vertex_values[3], 3);
}

TEST(RefConnTest, DirectedUsesWeakConnectivity) {
  EdgeList edges;
  edges.Add(1, 0);  // only in-edge into 0
  edges.Add(1, 2);
  Graph g = GraphBuilder::Directed(edges).ValueOrDie();
  auto out = ref::Conn(g);
  EXPECT_EQ(out.vertex_values, (std::vector<int64_t>{0, 0, 0}));
}

// --------------------------------------------------------------------- CD

TEST(RefCdTest, TwoCliquesSeparate) {
  // Two 4-cliques joined by one bridge edge: LPA should give each clique
  // one dominant label, and the labels should differ.
  EdgeList edges;
  for (VertexId a = 0; a < 4; ++a) {
    for (VertexId b = a + 1; b < 4; ++b) edges.Add(a, b);
  }
  for (VertexId a = 4; a < 8; ++a) {
    for (VertexId b = a + 1; b < 8; ++b) edges.Add(a, b);
  }
  edges.Add(3, 4);
  Graph g = GraphBuilder::Undirected(edges).ValueOrDie();
  auto out = ref::Cd(g, CdParams{10, 0.05});
  std::set<int64_t> left(out.vertex_values.begin(),
                         out.vertex_values.begin() + 4);
  std::set<int64_t> right(out.vertex_values.begin() + 4,
                          out.vertex_values.end());
  EXPECT_EQ(left.size(), 1u) << "left clique not converged";
  EXPECT_EQ(right.size(), 1u) << "right clique not converged";
  EXPECT_NE(*left.begin(), *right.begin());
}

TEST(RefCdTest, ZeroIterationsKeepsInitialLabels) {
  Graph g = MakeUndirected({{0, 1}, {1, 2}});
  auto out = ref::Cd(g, CdParams{0, 0.05});
  EXPECT_EQ(out.vertex_values, (std::vector<int64_t>{0, 1, 2}));
}

TEST(RefCdTest, DeterministicAcrossRuns) {
  EdgeList edges;
  Rng rng(61);
  for (int i = 0; i < 300; ++i) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(60));
    VertexId b = static_cast<VertexId>(rng.NextBounded(60));
    if (a != b) edges.Add(a, b);
  }
  Graph g = GraphBuilder::Undirected(edges).ValueOrDie();
  auto a = ref::Cd(g, CdParams{8, 0.05});
  auto b = ref::Cd(g, CdParams{8, 0.05});
  EXPECT_EQ(a.vertex_values, b.vertex_values);
}

TEST(CdAdoptLabelTest, PicksHighestScoreSum) {
  std::vector<LabelScore> incoming = {
      {1, 0.5}, {1, 0.4}, {2, 0.8}};
  LabelScore adopted = CdAdoptLabel(incoming, 0.05);
  EXPECT_EQ(adopted.label, 1);                 // 0.9 > 0.8
  EXPECT_NEAR(adopted.score, 0.45, 1e-12);     // max(0.5) - 0.05
}

TEST(CdAdoptLabelTest, TieBreaksToSmallerLabel) {
  std::vector<LabelScore> incoming = {{5, 1.0}, {3, 1.0}};
  LabelScore adopted = CdAdoptLabel(incoming, 0.0);
  EXPECT_EQ(adopted.label, 3);
}

// -------------------------------------------------------------------- EVO

TEST(RefEvoTest, NewVerticesConnectToBurnedSets) {
  EdgeList edges;
  for (VertexId a = 0; a < 20; ++a) edges.Add(a, (a + 1) % 20);
  Graph g = GraphBuilder::Undirected(edges).ValueOrDie();
  EvoParams params;
  params.num_new_vertices = 5;
  auto out = ref::Evo(g, params);
  EXPECT_EQ(out.new_edges.num_vertices(), 25u);
  // Every new edge starts at a new vertex and lands on an original one.
  for (const Edge& e : out.new_edges.edges()) {
    EXPECT_GE(e.src, 20u);
    EXPECT_LT(e.dst, 20u);
  }
  // Every new vertex has at least its ambassador edge.
  std::set<VertexId> sources;
  for (const Edge& e : out.new_edges.edges()) sources.insert(e.src);
  EXPECT_EQ(sources.size(), 5u);
}

TEST(RefEvoTest, DeterministicForSeed) {
  EdgeList edges;
  Rng rng(67);
  for (int i = 0; i < 200; ++i) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(50));
    VertexId b = static_cast<VertexId>(rng.NextBounded(50));
    if (a != b) edges.Add(a, b);
  }
  Graph g = GraphBuilder::Undirected(edges).ValueOrDie();
  EvoParams params;
  params.num_new_vertices = 8;
  auto a = ref::Evo(g, params);
  auto b = ref::Evo(g, params);
  EXPECT_EQ(a.new_edges.edges(), b.new_edges.edges());
  params.seed = 123456;
  auto c = ref::Evo(g, params);
  EXPECT_NE(a.new_edges.edges(), c.new_edges.edges());
}

TEST(RefEvoTest, RespectsBurnCaps) {
  // Complete graph: without caps a fire could burn everything.
  EdgeList edges;
  for (VertexId a = 0; a < 30; ++a) {
    for (VertexId b = a + 1; b < 30; ++b) edges.Add(a, b);
  }
  Graph g = GraphBuilder::Undirected(edges).ValueOrDie();
  EvoParams params;
  params.num_new_vertices = 3;
  params.p_forward = 0.95;
  params.max_burned = 10;
  auto out = ref::Evo(g, params);
  std::map<VertexId, int> per_fire;
  for (const Edge& e : out.new_edges.edges()) ++per_fire[e.src];
  for (const auto& [src, count] : per_fire) EXPECT_LE(count, 10);
}

// --------------------------------------------------------------------- PR

TEST(RefPrTest, SymmetricPairSplitsEvenly) {
  // Two vertices joined by one undirected edge: by symmetry both ranks are
  // 0.5 at every iteration.
  Graph g = MakeUndirected({{0, 1}});
  auto out = ref::Pr(g, PrParams{10, 0.85});
  ASSERT_EQ(out.vertex_scores.size(), 2u);
  EXPECT_NEAR(out.vertex_scores[0], 0.5, 1e-12);
  EXPECT_NEAR(out.vertex_scores[1], 0.5, 1e-12);
}

TEST(RefPrTest, HubOutranksLeaves) {
  Graph g = MakeUndirected({{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  auto out = ref::Pr(g, PrParams{20, 0.85});
  for (VertexId v = 1; v < 5; ++v) {
    EXPECT_GT(out.vertex_scores[0], out.vertex_scores[v]);
  }
}

TEST(RefPrTest, IsolatedVertexGetsBaseRank) {
  Graph g = MakeUndirected({{0, 1}}, /*n=*/3);
  auto out = ref::Pr(g, PrParams{5, 0.85});
  EXPECT_NEAR(out.vertex_scores[2], (1.0 - 0.85) / 3.0, 1e-12);
}

TEST(RefPrTest, DirectedChainAccumulatesAtSink) {
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(1, 2);
  Graph g = GraphBuilder::Directed(edges).ValueOrDie();
  auto out = ref::Pr(g, PrParams{30, 0.85});
  EXPECT_GT(out.vertex_scores[2], out.vertex_scores[1]);
  EXPECT_GT(out.vertex_scores[1], out.vertex_scores[0]);
}

TEST(RefPrTest, RanksSumToAtMostOne) {
  // With leak-at-dangling semantics the total rank never exceeds 1.
  EdgeList edges;
  Rng rng(71);
  for (int i = 0; i < 300; ++i) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(80));
    VertexId b = static_cast<VertexId>(rng.NextBounded(80));
    if (a != b) edges.Add(a, b);
  }
  Graph g = GraphBuilder::Directed(edges).ValueOrDie();
  auto out = ref::Pr(g, PrParams{15, 0.85});
  double sum = 0.0;
  for (double r : out.vertex_scores) sum += r;
  EXPECT_LE(sum, 1.0 + 1e-9);
  EXPECT_GT(sum, 0.1);
}

TEST(RefPrTest, ZeroIterationsIsUniform) {
  Graph g = MakeUndirected({{0, 1}, {1, 2}});
  auto out = ref::Pr(g, PrParams{0, 0.85});
  for (double r : out.vertex_scores) EXPECT_NEAR(r, 1.0 / 3.0, 1e-12);
}

// ------------------------------------------------------------------ STATS

TEST(RefStatsTest, CountsAndClustering) {
  Graph g = MakeUndirected({{0, 1}, {1, 2}, {2, 0}, {2, 3}});
  auto out = ref::Stats(g);
  EXPECT_EQ(out.stats.num_vertices, 4u);
  EXPECT_EQ(out.stats.num_edges, 4u);
  EXPECT_NEAR(out.stats.mean_local_clustering, (1 + 1 + 1.0 / 3 + 0) / 4,
              1e-12);
}

TEST(RefRunTest, DispatchesAllKinds) {
  Graph g = MakeUndirected({{0, 1}, {1, 2}, {2, 0}});
  AlgorithmParams params;
  for (AlgorithmKind kind :
       {AlgorithmKind::kStats, AlgorithmKind::kBfs, AlgorithmKind::kConn,
        AlgorithmKind::kCd, AlgorithmKind::kEvo, AlgorithmKind::kPr}) {
    auto out = ref::Run(g, kind, params);
    // Any run must account some traversal work.
    EXPECT_GT(out.traversed_edges, 0u) << AlgorithmKindName(kind);
  }
}

}  // namespace
}  // namespace gly
