// Cross-platform conformance: every (platform × algorithm × graph family)
// cell must produce output identical to the reference implementation —
// the property the paper's Output Validator enforces, swept here with
// parameterized tests.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "columnstore/edge_table.h"
#include "columnstore/transitive.h"
#include "datagen/rmat.h"
#include "datagen/social_datagen.h"
#include "harness/platform.h"
#include "harness/validator.h"
#include "ref/algorithms.h"

namespace gly {
namespace {

enum class GraphFamily { kSocial, kRmat, kPath, kDisconnected };

std::string FamilyName(GraphFamily family) {
  switch (family) {
    case GraphFamily::kSocial: return "social";
    case GraphFamily::kRmat: return "rmat";
    case GraphFamily::kPath: return "path";
    case GraphFamily::kDisconnected: return "disconnected";
  }
  return "?";
}

// Builds one representative graph per family (cached across tests).
const Graph& GraphFor(GraphFamily family) {
  static const Graph social = [] {
    datagen::SocialDatagenConfig config;
    config.num_persons = 400;
    config.degree_spec = "geometric:p=0.25";
    config.window_size = 64;
    config.seed = 7;
    auto result = datagen::SocialDatagen(config).Generate(nullptr);
    return GraphBuilder::Undirected(result->edges).ValueOrDie();
  }();
  static const Graph rmat = [] {
    datagen::RmatConfig config;
    config.scale = 8;
    config.edge_factor = 6;
    auto edges = datagen::RmatGenerator(config).Generate(nullptr);
    return GraphBuilder::Undirected(*edges).ValueOrDie();
  }();
  static const Graph path = [] {
    EdgeList edges;
    for (VertexId v = 0; v + 1 < 60; ++v) edges.Add(v, v + 1);
    return GraphBuilder::Undirected(edges).ValueOrDie();
  }();
  static const Graph disconnected = [] {
    EdgeList edges(100);  // trailing isolated vertices
    Rng rng(9);
    for (int c = 0; c < 4; ++c) {
      for (int i = 0; i < 40; ++i) {
        VertexId a = static_cast<VertexId>(c * 20 + rng.NextBounded(20));
        VertexId b = static_cast<VertexId>(c * 20 + rng.NextBounded(20));
        if (a != b) edges.Add(a, b);
      }
    }
    return GraphBuilder::Undirected(edges).ValueOrDie();
  }();
  switch (family) {
    case GraphFamily::kSocial: return social;
    case GraphFamily::kRmat: return rmat;
    case GraphFamily::kPath: return path;
    case GraphFamily::kDisconnected: return disconnected;
  }
  return path;
}

using ConformanceParam =
    std::tuple<std::string /*platform*/, AlgorithmKind, GraphFamily>;

class ConformanceTest : public ::testing::TestWithParam<ConformanceParam> {};

TEST_P(ConformanceTest, MatchesReference) {
  const auto& [platform_name, algorithm, family] = GetParam();
  const Graph& graph = GraphFor(family);
  AlgorithmParams params;
  params.bfs.source = 0;
  params.cd = CdParams{4, 0.05};
  params.evo.num_new_vertices = 5;

  auto platform = harness::MakePlatform(platform_name, Config());
  ASSERT_TRUE(platform.ok());
  ASSERT_TRUE((*platform)->LoadGraph(graph, FamilyName(family)).ok());
  auto out = (*platform)->Run(algorithm, params);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  Status validation =
      harness::ValidateOutput(graph, algorithm, params, *out);
  EXPECT_TRUE(validation.ok()) << validation.ToString();
}

std::string ParamName(
    const ::testing::TestParamInfo<ConformanceParam>& info) {
  const auto& [platform, algorithm, family] = info.param;
  return platform + "_" + AlgorithmKindName(algorithm) + "_" +
         FamilyName(family);
}

INSTANTIATE_TEST_SUITE_P(
    AllPlatforms, ConformanceTest,
    ::testing::Combine(
        ::testing::Values("giraph", "graphx", "mapreduce", "neo4j"),
        ::testing::Values(AlgorithmKind::kStats, AlgorithmKind::kBfs,
                          AlgorithmKind::kConn, AlgorithmKind::kCd,
                          AlgorithmKind::kEvo, AlgorithmKind::kPr),
        ::testing::Values(GraphFamily::kSocial, GraphFamily::kRmat,
                          GraphFamily::kPath, GraphFamily::kDisconnected)),
    ParamName);

// BFS from several sources: platforms must agree with the reference for
// any source, including sources inside small components.
class BfsSourceSweepTest
    : public ::testing::TestWithParam<std::tuple<std::string, VertexId>> {};

TEST_P(BfsSourceSweepTest, MatchesReference) {
  const auto& [platform_name, source] = GetParam();
  const Graph& graph = GraphFor(GraphFamily::kDisconnected);
  AlgorithmParams params;
  params.bfs.source = source;
  auto platform = harness::MakePlatform(platform_name, Config());
  ASSERT_TRUE(platform.ok());
  ASSERT_TRUE((*platform)->LoadGraph(graph, "sweep").ok());
  auto out = (*platform)->Run(AlgorithmKind::kBfs, params);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(
      harness::ValidateOutput(graph, AlgorithmKind::kBfs, params, *out).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Sources, BfsSourceSweepTest,
    ::testing::Combine(::testing::Values("giraph", "graphx", "mapreduce",
                                         "neo4j"),
                       ::testing::Values(VertexId{0}, VertexId{33},
                                         VertexId{77})),
    [](const ::testing::TestParamInfo<std::tuple<std::string, VertexId>>&
           info) {
      return std::get<0>(info.param) + "_src" +
             std::to_string(std::get<1>(info.param));
    });

// Seeded cross-platform differential sweep: platforms are compared against
// EACH OTHER, not just against the reference. For each generator seed,
// every pair of platforms must produce bit-identical vertex values (BFS,
// CONN) and matching STATS — any divergence localizes a platform bug even
// if the reference validator happened to miss it.
class DifferentialSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialSweepTest, PlatformsAgreePairwiseOnSeededRmat) {
  datagen::RmatConfig config;
  config.scale = 7;
  config.edge_factor = 4;
  config.seed = GetParam();
  auto edges = datagen::RmatGenerator(config).Generate(nullptr);
  ASSERT_TRUE(edges.ok());
  Graph graph = GraphBuilder::Undirected(*edges).ValueOrDie();

  const std::vector<std::string> platforms = {"giraph", "graphx",
                                              "mapreduce", "neo4j"};
  AlgorithmParams params;
  params.bfs.source = 0;
  for (AlgorithmKind algorithm :
       {AlgorithmKind::kBfs, AlgorithmKind::kConn, AlgorithmKind::kStats}) {
    std::vector<AlgorithmOutput> outputs;
    for (const std::string& name : platforms) {
      auto platform = harness::MakePlatform(name, Config());
      ASSERT_TRUE(platform.ok()) << name;
      ASSERT_TRUE((*platform)->LoadGraph(graph, "diff").ok()) << name;
      auto out = (*platform)->Run(algorithm, params);
      ASSERT_TRUE(out.ok()) << name << "/" << AlgorithmKindName(algorithm)
                            << ": " << out.status().ToString();
      outputs.push_back(std::move(*out));
    }
    for (size_t i = 1; i < outputs.size(); ++i) {
      SCOPED_TRACE(platforms[0] + " vs " + platforms[i] + " on " +
                   AlgorithmKindName(algorithm) + ", rmat seed " +
                   std::to_string(config.seed));
      EXPECT_EQ(outputs[0].vertex_values, outputs[i].vertex_values);
      EXPECT_EQ(outputs[0].stats.num_vertices, outputs[i].stats.num_vertices);
      EXPECT_EQ(outputs[0].stats.num_edges, outputs[i].stats.num_edges);
      // Clustering coefficient: summation order may differ per platform.
      EXPECT_NEAR(outputs[0].stats.mean_local_clustering,
                  outputs[i].stats.mean_local_clustering, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RmatSeeds, DifferentialSweepTest,
                         ::testing::Values(11u, 23u, 47u),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ------------------------------------------------------------------------
// Kernel conformance: the direction-optimizing / dense-frontier /
// work-stealing fast paths must be invisible in every output. Each engine
// runs BFS, CONN, and PR on R-MAT graphs at scales 8/12/14 plus a
// social-datagen graph, once with the optimized kernels enabled (the
// defaults) and once with every optimization forced off, and is compared
// per-vertex against the reference implementation — exactly for the
// integer-valued kernels, within a tight tolerance for PageRank, whose
// summation order legitimately differs across engines.

enum class KernelGraph { kRmat8, kRmat12, kRmat14, kSocial };

std::string KernelGraphName(KernelGraph which) {
  switch (which) {
    case KernelGraph::kRmat8: return "rmat8";
    case KernelGraph::kRmat12: return "rmat12";
    case KernelGraph::kRmat14: return "rmat14";
    case KernelGraph::kSocial: return "social2k";
  }
  return "?";
}

Graph MakeRmatGraph(uint32_t scale, uint32_t edge_factor) {
  datagen::RmatConfig config;
  config.scale = scale;
  config.edge_factor = edge_factor;
  config.seed = 1;
  auto edges = datagen::RmatGenerator(config).Generate(nullptr);
  edges.status().Check();
  return GraphBuilder::Undirected(*edges).ValueOrDie();
}

const Graph& KernelGraphFor(KernelGraph which) {
  static const Graph rmat8 = MakeRmatGraph(8, 6);
  static const Graph rmat12 = MakeRmatGraph(12, 8);
  static const Graph rmat14 = MakeRmatGraph(14, 8);
  static const Graph social = [] {
    datagen::SocialDatagenConfig config;
    config.num_persons = 2000;
    config.degree_spec = "geometric:p=0.25";
    config.window_size = 128;
    config.seed = 21;
    auto result = datagen::SocialDatagen(config).Generate(nullptr);
    return GraphBuilder::Undirected(result->edges).ValueOrDie();
  }();
  switch (which) {
    case KernelGraph::kRmat8: return rmat8;
    case KernelGraph::kRmat12: return rmat12;
    case KernelGraph::kRmat14: return rmat14;
    case KernelGraph::kSocial: return social;
  }
  return rmat8;
}

// R-MAT leaves some vertex ids edge-less; BFS from the max-degree vertex
// traverses the giant component, which is what makes the dense-frontier
// path actually fire in the optimized configuration.
VertexId MaxDegreeVertex(const Graph& graph) {
  VertexId best = 0;
  for (VertexId v = 1; v < graph.num_vertices(); ++v) {
    if (graph.Degree(v) > graph.Degree(best)) best = v;
  }
  return best;
}

using KernelParam = std::tuple<std::string /*platform*/, AlgorithmKind,
                               KernelGraph, bool /*optimized*/>;

class KernelConformanceTest : public ::testing::TestWithParam<KernelParam> {};

TEST_P(KernelConformanceTest, MatchesReferencePerVertex) {
  const auto& [platform_name, algorithm, which, optimized] = GetParam();
  const Graph& graph = KernelGraphFor(which);

  AlgorithmParams params;
  params.bfs.source = MaxDegreeVertex(graph);
  params.bfs.strategy =
      optimized ? BfsStrategy::kDirectionOptimizing : BfsStrategy::kTopDown;
  params.pr = PrParams{10, 0.85};

  Config config;
  if (!optimized) {
    // Force the classic paths: sparse message delivery and fixed
    // per-worker partitions (no work stealing).
    config.SetDouble("dense_frontier_threshold", 0.0);
    config.SetInt("steal_chunk_vertices", 0);
  }

  auto platform = harness::MakePlatform(platform_name, config);
  ASSERT_TRUE(platform.ok());
  ASSERT_TRUE((*platform)->LoadGraph(graph, KernelGraphName(which)).ok());
  auto out = (*platform)->Run(algorithm, params);
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  // ref::Run's BFS is always the naive queue implementation — the gold
  // standard stays independent of the kernels under test.
  AlgorithmOutput expected = ref::Run(graph, algorithm, params);
  if (algorithm == AlgorithmKind::kPr) {
    ASSERT_EQ(out->vertex_scores.size(), expected.vertex_scores.size());
    for (size_t v = 0; v < expected.vertex_scores.size(); ++v) {
      ASSERT_NEAR(out->vertex_scores[v], expected.vertex_scores[v], 1e-9)
          << "vertex " << v;
    }
  } else {
    EXPECT_EQ(out->vertex_values, expected.vertex_values);
  }
  Status validation = harness::ValidateOutput(graph, algorithm, params, *out);
  EXPECT_TRUE(validation.ok()) << validation.ToString();
}

std::string KernelParamName(
    const ::testing::TestParamInfo<KernelParam>& info) {
  const auto& [platform, algorithm, which, optimized] = info.param;
  return platform + "_" + AlgorithmKindName(algorithm) + "_" +
         KernelGraphName(which) + (optimized ? "_opt" : "_classic");
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, KernelConformanceTest,
    ::testing::Combine(
        ::testing::Values("giraph", "graphx", "mapreduce", "neo4j"),
        ::testing::Values(AlgorithmKind::kBfs, AlgorithmKind::kConn,
                          AlgorithmKind::kPr),
        ::testing::Values(KernelGraph::kRmat8, KernelGraph::kRmat12,
                          KernelGraph::kRmat14, KernelGraph::kSocial),
        ::testing::Bool()),
    KernelParamName);

// ------------------------------------------------------------------------
// Reorder conformance: every engine, run on the degree-reordered graph with
// id-valued parameters translated into the new space, must — after mapping
// its output back through the permutation — match the reference run on the
// ORIGINAL graph per vertex. This is the graph.reorder = degree contract:
// relabeling is an engine-side locality optimization, invisible in results.

using ReorderParam =
    std::tuple<std::string /*platform*/, AlgorithmKind, KernelGraph>;

class ReorderConformanceTest : public ::testing::TestWithParam<ReorderParam> {
};

const ReorderedGraph& ReorderedKernelGraphFor(KernelGraph which) {
  static const ReorderedGraph rmat8 =
      KernelGraphFor(KernelGraph::kRmat8).ReorderByDegree();
  static const ReorderedGraph rmat12 =
      KernelGraphFor(KernelGraph::kRmat12).ReorderByDegree();
  static const ReorderedGraph rmat14 =
      KernelGraphFor(KernelGraph::kRmat14).ReorderByDegree();
  static const ReorderedGraph social =
      KernelGraphFor(KernelGraph::kSocial).ReorderByDegree();
  switch (which) {
    case KernelGraph::kRmat8: return rmat8;
    case KernelGraph::kRmat12: return rmat12;
    case KernelGraph::kRmat14: return rmat14;
    case KernelGraph::kSocial: return social;
  }
  return rmat8;
}

TEST_P(ReorderConformanceTest, MappedBackOutputMatchesReference) {
  const auto& [platform_name, algorithm, which] = GetParam();
  const Graph& original = KernelGraphFor(which);
  const ReorderedGraph& reordered = ReorderedKernelGraphFor(which);
  ASSERT_TRUE(harness::RelabelingInvariant(algorithm));

  AlgorithmParams params;  // original-id space
  params.bfs.source = MaxDegreeVertex(original);
  params.pr = PrParams{10, 0.85};
  AlgorithmParams run_params = params;  // reordered-id space
  run_params.bfs.source = reordered.perm.old_to_new[params.bfs.source];

  auto platform = harness::MakePlatform(platform_name, Config());
  ASSERT_TRUE(platform.ok());
  ASSERT_TRUE((*platform)
                  ->LoadGraph(reordered.graph,
                              KernelGraphName(which) + "_reordered")
                  .ok());
  auto out = (*platform)->Run(algorithm, run_params);
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  AlgorithmOutput mapped = harness::MapOutputToOriginalIds(
      algorithm, reordered.perm.new_to_old, std::move(*out));
  AlgorithmOutput expected = ref::Run(original, algorithm, params);
  if (algorithm == AlgorithmKind::kPr) {
    ASSERT_EQ(mapped.vertex_scores.size(), expected.vertex_scores.size());
    for (size_t v = 0; v < expected.vertex_scores.size(); ++v) {
      ASSERT_NEAR(mapped.vertex_scores[v], expected.vertex_scores[v], 1e-9)
          << "vertex " << v;
    }
  } else {
    EXPECT_EQ(mapped.vertex_values, expected.vertex_values);
  }
  Status validation =
      harness::ValidateOutput(original, algorithm, params, mapped);
  EXPECT_TRUE(validation.ok()) << validation.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Reordered, ReorderConformanceTest,
    ::testing::Combine(
        ::testing::Values("giraph", "graphx", "mapreduce", "neo4j"),
        ::testing::Values(AlgorithmKind::kBfs, AlgorithmKind::kConn,
                          AlgorithmKind::kPr),
        ::testing::Values(KernelGraph::kRmat8, KernelGraph::kRmat12,
                          KernelGraph::kRmat14, KernelGraph::kSocial)),
    [](const ::testing::TestParamInfo<ReorderParam>& info) {
      return std::get<0>(info.param) + "_" +
             AlgorithmKindName(std::get<1>(info.param)) + "_" +
             KernelGraphName(std::get<2>(info.param));
    });

// The column-store engine exposes reachability (not per-vertex levels), so
// its conformance check compares the transitive count against the set of
// vertices the direction-optimizing BFS reaches — tying the §3.4 operator
// and the new traversal kernel to the same ground truth.
class ColumnstoreReachabilityTest
    : public ::testing::TestWithParam<KernelGraph> {};

TEST_P(ColumnstoreReachabilityTest, TransitiveCountMatchesDirOptBfs) {
  const Graph& graph = KernelGraphFor(GetParam());
  const VertexId source = MaxDegreeVertex(graph);

  // Re-materialize the undirected adjacency as a directed edge table (both
  // directions present), so the columnstore walks the same topology.
  EdgeList edges(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (VertexId w : graph.OutNeighbors(v)) edges.Add(v, w);
  }
  auto table = columnstore::EdgeTable::Build(edges);
  ASSERT_TRUE(table.ok());

  BfsParams params;
  params.source = source;
  AlgorithmOutput levels = ref::BfsDirOpt(graph, params);
  uint64_t reachable = 0;
  for (int64_t d : levels.vertex_values) {
    if (d != kUnreachable && d > 0) ++reachable;
  }

  columnstore::TransitiveConfig config;
  config.num_partitions = 4;
  auto profile = columnstore::TransitiveCount(*table, source, config);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->distinct_reached, reachable);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, ColumnstoreReachabilityTest,
    ::testing::Values(KernelGraph::kRmat8, KernelGraph::kRmat12,
                      KernelGraph::kRmat14, KernelGraph::kSocial),
    [](const ::testing::TestParamInfo<KernelGraph>& info) {
      return KernelGraphName(info.param);
    });

}  // namespace
}  // namespace gly
