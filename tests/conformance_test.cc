// Cross-platform conformance: every (platform × algorithm × graph family)
// cell must produce output identical to the reference implementation —
// the property the paper's Output Validator enforces, swept here with
// parameterized tests.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "datagen/rmat.h"
#include "datagen/social_datagen.h"
#include "harness/platform.h"
#include "harness/validator.h"

namespace gly {
namespace {

enum class GraphFamily { kSocial, kRmat, kPath, kDisconnected };

std::string FamilyName(GraphFamily family) {
  switch (family) {
    case GraphFamily::kSocial: return "social";
    case GraphFamily::kRmat: return "rmat";
    case GraphFamily::kPath: return "path";
    case GraphFamily::kDisconnected: return "disconnected";
  }
  return "?";
}

// Builds one representative graph per family (cached across tests).
const Graph& GraphFor(GraphFamily family) {
  static const Graph social = [] {
    datagen::SocialDatagenConfig config;
    config.num_persons = 400;
    config.degree_spec = "geometric:p=0.25";
    config.window_size = 64;
    config.seed = 7;
    auto result = datagen::SocialDatagen(config).Generate(nullptr);
    return GraphBuilder::Undirected(result->edges).ValueOrDie();
  }();
  static const Graph rmat = [] {
    datagen::RmatConfig config;
    config.scale = 8;
    config.edge_factor = 6;
    auto edges = datagen::RmatGenerator(config).Generate(nullptr);
    return GraphBuilder::Undirected(*edges).ValueOrDie();
  }();
  static const Graph path = [] {
    EdgeList edges;
    for (VertexId v = 0; v + 1 < 60; ++v) edges.Add(v, v + 1);
    return GraphBuilder::Undirected(edges).ValueOrDie();
  }();
  static const Graph disconnected = [] {
    EdgeList edges(100);  // trailing isolated vertices
    Rng rng(9);
    for (int c = 0; c < 4; ++c) {
      for (int i = 0; i < 40; ++i) {
        VertexId a = static_cast<VertexId>(c * 20 + rng.NextBounded(20));
        VertexId b = static_cast<VertexId>(c * 20 + rng.NextBounded(20));
        if (a != b) edges.Add(a, b);
      }
    }
    return GraphBuilder::Undirected(edges).ValueOrDie();
  }();
  switch (family) {
    case GraphFamily::kSocial: return social;
    case GraphFamily::kRmat: return rmat;
    case GraphFamily::kPath: return path;
    case GraphFamily::kDisconnected: return disconnected;
  }
  return path;
}

using ConformanceParam =
    std::tuple<std::string /*platform*/, AlgorithmKind, GraphFamily>;

class ConformanceTest : public ::testing::TestWithParam<ConformanceParam> {};

TEST_P(ConformanceTest, MatchesReference) {
  const auto& [platform_name, algorithm, family] = GetParam();
  const Graph& graph = GraphFor(family);
  AlgorithmParams params;
  params.bfs.source = 0;
  params.cd = CdParams{4, 0.05};
  params.evo.num_new_vertices = 5;

  auto platform = harness::MakePlatform(platform_name, Config());
  ASSERT_TRUE(platform.ok());
  ASSERT_TRUE((*platform)->LoadGraph(graph, FamilyName(family)).ok());
  auto out = (*platform)->Run(algorithm, params);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  Status validation =
      harness::ValidateOutput(graph, algorithm, params, *out);
  EXPECT_TRUE(validation.ok()) << validation.ToString();
}

std::string ParamName(
    const ::testing::TestParamInfo<ConformanceParam>& info) {
  const auto& [platform, algorithm, family] = info.param;
  return platform + "_" + AlgorithmKindName(algorithm) + "_" +
         FamilyName(family);
}

INSTANTIATE_TEST_SUITE_P(
    AllPlatforms, ConformanceTest,
    ::testing::Combine(
        ::testing::Values("giraph", "graphx", "mapreduce", "neo4j"),
        ::testing::Values(AlgorithmKind::kStats, AlgorithmKind::kBfs,
                          AlgorithmKind::kConn, AlgorithmKind::kCd,
                          AlgorithmKind::kEvo, AlgorithmKind::kPr),
        ::testing::Values(GraphFamily::kSocial, GraphFamily::kRmat,
                          GraphFamily::kPath, GraphFamily::kDisconnected)),
    ParamName);

// BFS from several sources: platforms must agree with the reference for
// any source, including sources inside small components.
class BfsSourceSweepTest
    : public ::testing::TestWithParam<std::tuple<std::string, VertexId>> {};

TEST_P(BfsSourceSweepTest, MatchesReference) {
  const auto& [platform_name, source] = GetParam();
  const Graph& graph = GraphFor(GraphFamily::kDisconnected);
  AlgorithmParams params;
  params.bfs.source = source;
  auto platform = harness::MakePlatform(platform_name, Config());
  ASSERT_TRUE(platform.ok());
  ASSERT_TRUE((*platform)->LoadGraph(graph, "sweep").ok());
  auto out = (*platform)->Run(AlgorithmKind::kBfs, params);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(
      harness::ValidateOutput(graph, AlgorithmKind::kBfs, params, *out).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Sources, BfsSourceSweepTest,
    ::testing::Combine(::testing::Values("giraph", "graphx", "mapreduce",
                                         "neo4j"),
                       ::testing::Values(VertexId{0}, VertexId{33},
                                         VertexId{77})),
    [](const ::testing::TestParamInfo<std::tuple<std::string, VertexId>>&
           info) {
      return std::get<0>(info.param) + "_src" +
             std::to_string(std::get<1>(info.param));
    });

// Seeded cross-platform differential sweep: platforms are compared against
// EACH OTHER, not just against the reference. For each generator seed,
// every pair of platforms must produce bit-identical vertex values (BFS,
// CONN) and matching STATS — any divergence localizes a platform bug even
// if the reference validator happened to miss it.
class DifferentialSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialSweepTest, PlatformsAgreePairwiseOnSeededRmat) {
  datagen::RmatConfig config;
  config.scale = 7;
  config.edge_factor = 4;
  config.seed = GetParam();
  auto edges = datagen::RmatGenerator(config).Generate(nullptr);
  ASSERT_TRUE(edges.ok());
  Graph graph = GraphBuilder::Undirected(*edges).ValueOrDie();

  const std::vector<std::string> platforms = {"giraph", "graphx",
                                              "mapreduce", "neo4j"};
  AlgorithmParams params;
  params.bfs.source = 0;
  for (AlgorithmKind algorithm :
       {AlgorithmKind::kBfs, AlgorithmKind::kConn, AlgorithmKind::kStats}) {
    std::vector<AlgorithmOutput> outputs;
    for (const std::string& name : platforms) {
      auto platform = harness::MakePlatform(name, Config());
      ASSERT_TRUE(platform.ok()) << name;
      ASSERT_TRUE((*platform)->LoadGraph(graph, "diff").ok()) << name;
      auto out = (*platform)->Run(algorithm, params);
      ASSERT_TRUE(out.ok()) << name << "/" << AlgorithmKindName(algorithm)
                            << ": " << out.status().ToString();
      outputs.push_back(std::move(*out));
    }
    for (size_t i = 1; i < outputs.size(); ++i) {
      SCOPED_TRACE(platforms[0] + " vs " + platforms[i] + " on " +
                   AlgorithmKindName(algorithm) + ", rmat seed " +
                   std::to_string(config.seed));
      EXPECT_EQ(outputs[0].vertex_values, outputs[i].vertex_values);
      EXPECT_EQ(outputs[0].stats.num_vertices, outputs[i].stats.num_vertices);
      EXPECT_EQ(outputs[0].stats.num_edges, outputs[i].stats.num_edges);
      // Clustering coefficient: summation order may differ per platform.
      EXPECT_NEAR(outputs[0].stats.mean_local_clustering,
                  outputs[i].stats.mean_local_clustering, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RmatSeeds, DifferentialSweepTest,
                         ::testing::Values(11u, 23u, 47u),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace gly
