// Profiling & resource-attribution suite (`ctest -L observability`,
// DESIGN.md §14): the sampling profiler's fold invariant, the SIGPROF
// sampler under real multi-threaded load (TSan-covered via the
// observability label), hardware-counter span attribution with its
// getrusage fallback, critical-path analytics under a FakeClock, the
// profile.json round trip — and the full harness pipeline: a `--profile
// full` BFS+PR matrix across all four engines with an injected
// FakeSampler, whose per-cell profile.json artifacts must obey
// critical-path ≤ cell wall time and folded-count == emitted-sample
// invariants. Also pins the un-gated per-cell trace export under
// `--jobs 4`.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/perf_counters.h"
#include "common/profiler.h"
#include "common/temp_dir.h"
#include "common/threadpool.h"
#include "common/trace.h"
#include "common/trace_analysis.h"
#include "datagen/rmat.h"
#include "harness/core.h"

namespace gly {
namespace {

using harness::BenchmarkResult;
using harness::DatasetSpec;
using harness::ProfileMode;
using harness::RunSpec;
using harness::RunBenchmark;

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

uint64_t SumFoldedCounts(const prof::FoldedProfile& folded) {
  uint64_t total = 0;
  for (const auto& [stack, count] : folded.stacks) total += count;
  return total;
}

// ----------------------------------------------------------- fold layer

TEST(ProfilerTest, FoldedCountsMatchEmittedSamples) {
  prof::FakeSampler sampler;
  sampler.AddSample({"main", "RunBenchmark", "Bfs"}, "harness.run", 3);
  sampler.AddSample({"main", "RunBenchmark", "PageRank"}, "harness.run", 2);
  sampler.AddSample({"main", "LoadGraph"}, "harness.load");

  prof::CpuProfiler::Options options;
  options.sampler = &sampler;
  prof::CpuProfiler profiler(options);
  ASSERT_TRUE(profiler.Start().ok());
  prof::FoldedProfile folded = profiler.Collect();
  profiler.Stop();

  // The invariant the acceptance criteria names: everything the sampler
  // emitted is accounted for in the folded counts, nothing lost or forged.
  EXPECT_EQ(folded.samples, sampler.emitted_samples());
  EXPECT_EQ(SumFoldedCounts(folded), sampler.emitted_samples());
  EXPECT_EQ(folded.samples, 6u);
  // Phase label is the outermost frame; frames join root-first.
  EXPECT_EQ(folded.stacks.at("harness.run;main;RunBenchmark;Bfs"), 3u);
  EXPECT_EQ(folded.stacks.at("harness.load;main;LoadGraph"), 1u);
}

TEST(ProfilerTest, FoldSanitizesFoldedSyntaxBreakers) {
  prof::FakeSampler sampler;
  sampler.AddSample({"operator; new", "a b"}, "");
  prof::CpuProfiler::Options options;
  options.sampler = &sampler;
  prof::CpuProfiler profiler(options);
  ASSERT_TRUE(profiler.Start().ok());
  prof::FoldedProfile folded = profiler.Collect();
  profiler.Stop();
  // ';' would split the stack, ' ' would end it before the count.
  ASSERT_EQ(folded.stacks.size(), 1u);
  const std::string& stack = folded.stacks.begin()->first;
  EXPECT_EQ(stack, "operator:_new;a_b");
  std::string folded_text = folded.ToFolded();
  EXPECT_EQ(folded_text, "operator:_new;a_b 1\n");
}

TEST(ProfilerTest, FoldedProfileMergeAccumulates) {
  prof::FoldedProfile a;
  a.stacks["x;y"] = 2;
  a.samples = 2;
  prof::FoldedProfile b;
  b.stacks["x;y"] = 3;
  b.stacks["x;z"] = 1;
  b.samples = 4;
  b.dropped = 5;
  a.Merge(b);
  EXPECT_EQ(a.stacks.at("x;y"), 5u);
  EXPECT_EQ(a.stacks.at("x;z"), 1u);
  EXPECT_EQ(a.samples, 6u);
  EXPECT_EQ(a.dropped, 5u);
  EXPECT_EQ(SumFoldedCounts(a), a.samples);
}

TEST(ProfilerTest, CollectWindowsPartitionTheSampleStream) {
  // Per-cell attribution drains between cells: two Collect() windows see
  // disjoint samples whose counts still sum to the emitted total.
  prof::FakeSampler sampler;
  prof::CpuProfiler::Options options;
  options.sampler = &sampler;
  prof::CpuProfiler profiler(options);
  ASSERT_TRUE(profiler.Start().ok());
  sampler.AddSample({"cell_one"}, "harness.run", 4);
  prof::FoldedProfile first = profiler.Collect();
  sampler.AddSample({"cell_two"}, "harness.run", 2);
  prof::FoldedProfile second = profiler.Collect();
  profiler.Stop();
  EXPECT_EQ(first.samples, 4u);
  EXPECT_EQ(second.samples, 2u);
  EXPECT_EQ(first.samples + second.samples, sampler.emitted_samples());
  EXPECT_EQ(second.stacks.count("harness.run;cell_one"), 0u);
}

// ------------------------------------------------- real SIGPROF sampler

// Burns CPU across threads while the signal sampler runs; TSan covers this
// via the observability label in the CI sanitizer stage. The assertions
// are structural (counts reconcile, frames non-empty) rather than about
// sample volume, which is load- and kernel-dependent.
TEST(ProfilerTest, SignalSamplerStressReconcilesCounts) {
  prof::SignalSampler sampler(/*ring_slots=*/1024);
  Status started = sampler.Start(/*interval_us=*/500);
  ASSERT_TRUE(started.ok()) << started.ToString();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> sink{0};
  std::vector<std::thread> workers;
  for (int i = 0; i < 4; ++i) {
    workers.emplace_back([&] {
      uint64_t local = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        local = local * 2862933555777941757ULL + 3037000493ULL;
        if ((local & 0xfffff) == 0) sink += local;
      }
      sink += local;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  stop.store(true);
  for (std::thread& t : workers) t.join();
  sampler.Stop();

  std::vector<prof::StackSample> samples = sampler.Drain();
  uint64_t drained = 0;
  for (const prof::StackSample& s : samples) {
    drained += s.count;
    EXPECT_FALSE(s.frames.empty());
  }
  EXPECT_EQ(drained, sampler.emitted_samples());
  // After Stop, a second drain finds nothing: the stream was consumed.
  EXPECT_TRUE(sampler.Drain().empty());
  prof::FoldedProfile folded = prof::FoldSamples(samples);
  EXPECT_EQ(folded.samples, sampler.emitted_samples());
  EXPECT_EQ(SumFoldedCounts(folded), folded.samples);
}

TEST(ProfilerTest, SignalSamplerIsProcessWideSingleton) {
  prof::SignalSampler first;
  ASSERT_TRUE(first.Start(2000).ok());
  prof::SignalSampler second;
  EXPECT_FALSE(second.Start(2000).ok());
  first.Stop();
  // The slot frees on Stop: a later sampler may claim it.
  prof::SignalSampler third;
  EXPECT_TRUE(third.Start(2000).ok());
  third.Stop();
}

TEST(ProfilerTest, ProfilePhaseNestsAndRestores) {
  EXPECT_EQ(prof::CurrentProfilePhase(), nullptr);
  {
    prof::ScopedProfilePhase outer("harness.load");
    EXPECT_STREQ(prof::CurrentProfilePhase(), "harness.load");
    {
      prof::ScopedProfilePhase inner("harness.run");
      EXPECT_STREQ(prof::CurrentProfilePhase(), "harness.run");
    }
    EXPECT_STREQ(prof::CurrentProfilePhase(), "harness.load");
  }
  EXPECT_EQ(prof::CurrentProfilePhase(), nullptr);
}

// ------------------------------------------------------ span counters

TEST(PerfCountersTest, OpenNeverFailsAndReadsAdvance) {
  auto counters = perf::PerfCounters::Open();
  ASSERT_NE(counters, nullptr);
  perf::Reading begin = counters->Read();
  // Burn some CPU so task clock (perf) or utime (fallback) advances.
  volatile double x = 1.0;
  for (int i = 0; i < 2000000; ++i) x = x * 1.0000001 + 0.5;
  perf::Reading end = counters->Read();
  perf::CounterDelta delta = counters->Delta(begin, end);
  EXPECT_EQ(delta.fallback, counters->fallback());
  if (!counters->fallback()) {
    EXPECT_GT(delta.cycles + delta.instructions, 0u);
  }
}

TEST(PerfCountersTest, SpanCountersAttachAttributesToSpanEnd) {
  trace::FakeClock clock(0, 5);
  trace::Tracer tracer(&clock);
  auto counters = perf::PerfCounters::Open();
  {
    trace::ScopedTracer active(&tracer);
    perf::ScopedPerfCounters installed(counters.get());
    trace::TraceSpan span("pregel.superstep", "pregel");
    perf::SpanCounters span_counters(&span);
    volatile uint64_t x = 0;
    for (int i = 0; i < 100000; ++i) x = x + i;
  }
  std::vector<trace::TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  const trace::TraceEvent& end = events[1];
  ASSERT_EQ(end.phase, 'E');
  bool saw_mode = false;
  bool saw_task_clock = false;
  for (const auto& [key, value] : end.args) {
    if (key == "counters") {
      saw_mode = true;
      EXPECT_TRUE(value == "perf" || value == "fallback") << value;
    }
    if (key == "task_clock_ms") saw_task_clock = true;
  }
  EXPECT_TRUE(saw_mode);
  EXPECT_TRUE(saw_task_clock);
}

TEST(PerfCountersTest, SpanCountersAreFreeWhenNothingInstalled) {
  // No active counters: the span ends with no counter attributes.
  trace::Tracer tracer;
  trace::ScopedTracer active(&tracer);
  {
    trace::TraceSpan span("x", "test");
    perf::SpanCounters span_counters(&span);
  }
  std::vector<trace::TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(events[1].args.empty());
}

// -------------------------------------------------- critical-path math

// Builds a deterministic forest on a FakeClock:
//   root [0, 100ms] with children a [10, 40ms] and b [50, 90ms];
//   b has child c [60, 80ms].
std::vector<trace::TraceEvent> ForestEvents() {
  trace::FakeClock clock(0, 0);
  trace::Tracer tracer(&clock);
  trace::ScopedTracer active(&tracer);
  uint64_t now = 0;
  auto at = [&](uint64_t micros, auto&& fn) {
    clock.Advance(micros - now);
    now = micros;
    fn();
  };
  at(0, [&] { tracer.Begin("root", "t"); });
  at(10000, [&] { tracer.Begin("a", "t"); });
  at(40000, [&] { tracer.End("a", "t"); });
  at(50000, [&] { tracer.Begin("b", "t"); });
  at(60000, [&] { tracer.Begin("c", "t"); });
  at(80000, [&] { tracer.End("c", "t"); });
  at(90000, [&] { tracer.End("b", "t"); });
  at(100000, [&] { tracer.End("root", "t"); });
  return tracer.Snapshot();
}

TEST(TraceAnalysisTest, CriticalPathDescendsLongestChildren) {
  trace::TraceAnalysis analysis = trace::AnalyzeTrace(ForestEvents());
  EXPECT_EQ(analysis.root, "root");
  EXPECT_EQ(analysis.completed_spans, 4u);
  EXPECT_NEAR(analysis.wall_seconds, 0.1, 1e-9);
  // Path: root(self .03) -> b(self .02) -> c(self .02); a is off-path.
  ASSERT_EQ(analysis.critical_path.size(), 3u);
  EXPECT_EQ(analysis.critical_path[0].name, "root");
  EXPECT_EQ(analysis.critical_path[1].name, "b");
  EXPECT_EQ(analysis.critical_path[2].name, "c");
  EXPECT_NEAR(analysis.critical_path[0].self_seconds, 0.03, 1e-9);
  EXPECT_NEAR(analysis.critical_path_seconds, 0.07, 1e-9);
  // The structural guarantee: never exceeds the root span's duration.
  EXPECT_LE(analysis.critical_path_seconds,
            analysis.critical_path[0].span_seconds + 1e-12);
}

TEST(TraceAnalysisTest, NamedRootAndSelfTimeTable) {
  trace::AnalyzeOptions options;
  options.root = "b";
  options.top_k = 2;
  trace::TraceAnalysis analysis = trace::AnalyzeTrace(ForestEvents(), options);
  EXPECT_EQ(analysis.root, "b");
  ASSERT_EQ(analysis.critical_path.size(), 2u);
  EXPECT_NEAR(analysis.critical_path_seconds, 0.04, 1e-9);
  // Self-time table truncates to top_k, descending.
  ASSERT_EQ(analysis.self_time.size(), 2u);
  EXPECT_GE(analysis.self_time[0].self_seconds,
            analysis.self_time[1].self_seconds);
}

TEST(TraceAnalysisTest, TolaratesUnmatchedFragmentsAndEmptyWindows) {
  trace::TraceAnalysis empty = trace::AnalyzeTrace({});
  EXPECT_EQ(empty.completed_spans, 0u);
  EXPECT_EQ(empty.critical_path_seconds, 0.0);

  // A dangling Begin contributes nothing but breaks nothing.
  trace::FakeClock clock(0, 0);
  trace::Tracer tracer(&clock);
  trace::ScopedTracer active(&tracer);
  tracer.Begin("done", "t");
  clock.Advance(4000);
  tracer.End("done", "t");
  clock.Advance(1000);
  tracer.Begin("dangling", "t");  // never closed
  trace::TraceAnalysis analysis = trace::AnalyzeTrace(tracer.Snapshot());
  EXPECT_EQ(analysis.completed_spans, 1u);
  EXPECT_EQ(analysis.root, "done");
}

TEST(TraceAnalysisTest, ProfileJsonRoundTrips) {
  trace::TraceAnalysis analysis = trace::AnalyzeTrace(ForestEvents());
  trace::SamplerSummary sampler;
  sampler.mode = "fake";
  sampler.interval_us = 2000;
  sampler.samples = 6;
  sampler.dropped = 1;
  std::vector<std::string> folded = {"harness.run;main;Bfs 4",
                                     "harness.run;main;Pr 2"};
  std::string json = trace::ProfileJson(analysis, sampler, folded);
  EXPECT_NE(json.find("\"kind\":\"gly.profile\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);

  auto parsed = trace::ParseProfileJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_NEAR(parsed->wall_seconds, analysis.wall_seconds, 1e-9);
  EXPECT_NEAR(parsed->critical_path_seconds, analysis.critical_path_seconds,
              1e-9);
  EXPECT_EQ(parsed->root, "root");
  EXPECT_EQ(parsed->completed_spans, 4u);
  ASSERT_EQ(parsed->critical_path.size(), 3u);
  EXPECT_EQ(parsed->critical_path[1].name, "b");
  EXPECT_NEAR(parsed->critical_path[1].self_seconds, 0.02, 1e-9);
  EXPECT_EQ(parsed->sampler.mode, "fake");
  EXPECT_EQ(parsed->sampler.samples, 6u);
  EXPECT_EQ(parsed->sampler.dropped, 1u);
  EXPECT_EQ(parsed->folded, folded);
  EXPECT_FALSE(parsed->workers.empty());
  EXPECT_FALSE(parsed->self_time.empty());

  EXPECT_FALSE(trace::ParseProfileJson("{}").ok());
  EXPECT_FALSE(trace::ParseProfileJson("not json").ok());
}

// ------------------------------------------------ harness, full profile

Graph Rmat8() {
  datagen::RmatConfig config;
  config.scale = 8;
  config.edge_factor = 8;
  config.seed = 1;
  ThreadPool pool(2);
  EdgeList edges = datagen::RmatGenerator(config).Generate(&pool).ValueOrDie();
  return GraphBuilder::Undirected(edges).ValueOrDie();
}

const std::vector<std::string> kAllPlatforms = {"giraph", "graphx",
                                                "mapreduce", "neo4j"};

RunSpec ProfiledMatrixSpec(const Graph* graph) {
  RunSpec spec;
  spec.platforms = kAllPlatforms;
  DatasetSpec dataset;
  dataset.name = "rmat8";
  dataset.graph = graph;
  dataset.params.pr.iterations = 5;
  spec.datasets.push_back(dataset);
  spec.algorithms = {AlgorithmKind::kBfs, AlgorithmKind::kPr};
  spec.monitor = false;
  return spec;
}

TEST(ProfilerHarnessTest, ProfiledMatrixEmitsBoundedProfilesOnEveryEngine) {
  auto dir = TempDir::Create("gly-prof");
  ASSERT_TRUE(dir.ok());
  Graph g = Rmat8();
  RunSpec spec = ProfiledMatrixSpec(&g);
  spec.trace_dir = dir->File("trace");
  prof::FakeSampler sampler;
  sampler.AddSample({"main", "RunBenchmark"}, "harness.run", 5);
  sampler.AddSample({"main", "LoadGraph"}, "harness.load", 2);
  spec.profile.mode = ProfileMode::kFull;
  spec.profile.sampler = &sampler;

  auto results = RunBenchmark(spec);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), kAllPlatforms.size() * 2);

  for (const BenchmarkResult& r : *results) {
    ASSERT_TRUE(r.status.ok()) << r.platform;
    // Every cell computed a critical path bounded by its wall clock.
    EXPECT_GT(r.critical_path_seconds, 0.0) << r.platform;
    EXPECT_LE(r.critical_path_seconds, r.runtime_seconds + r.load_seconds +
                                           1.0)
        << r.platform;

    std::string stem =
        r.platform + "-" + r.graph + "-" + AlgorithmKindName(r.algorithm);
    std::string profile_path = spec.trace_dir + "/profile-" + stem + ".json";
    ASSERT_TRUE(std::filesystem::exists(profile_path)) << profile_path;
    auto profile = trace::ParseProfileJson(ReadFileOrDie(profile_path));
    ASSERT_TRUE(profile.ok()) << profile_path << ": "
                              << profile.status().ToString();
    // The acceptance invariant: critical path through the cell's span
    // forest never exceeds the cell's wall-clock window.
    EXPECT_EQ(profile->root, "harness.cell") << profile_path;
    EXPECT_LE(profile->critical_path_seconds, profile->wall_seconds + 1e-9)
        << profile_path;
    EXPECT_NEAR(profile->critical_path_seconds, r.critical_path_seconds,
                1e-9)
        << profile_path;
    EXPECT_GT(profile->completed_spans, 0u) << profile_path;
    // Folded counts reconcile with the per-cell sampler window.
    uint64_t folded_total = 0;
    for (const std::string& line : profile->folded) {
      size_t space = line.rfind(' ');
      ASSERT_NE(space, std::string::npos) << line;
      folded_total += std::stoull(line.substr(space + 1));
    }
    EXPECT_EQ(folded_total, profile->sampler.samples) << profile_path;

    // The per-cell trace window carries counter-attributed span ends.
    std::string cell_trace =
        ReadFileOrDie(spec.trace_dir + "/trace-" + stem + ".json");
    auto events = trace::ParseChromeTraceJson(cell_trace);
    ASSERT_TRUE(events.ok()) << events.status().ToString();
    size_t counter_spans = 0;
    for (const trace::TraceEvent& e : *events) {
      if (e.phase != 'E') continue;
      for (const auto& [key, value] : e.args) {
        if (key == "counters") {
          ++counter_spans;
          EXPECT_TRUE(value == "perf" || value == "fallback") << e.name;
        }
      }
    }
    EXPECT_GT(counter_spans, 0u) << stem;
  }

  // The injected sampler ran and was torn down.
  EXPECT_FALSE(sampler.started());
  EXPECT_GT(sampler.emitted_samples(), 0u);

  // Run-wide artifacts: profile.json accounts for every emitted sample.
  std::string run_profile_path = spec.trace_dir + "/profile.json";
  ASSERT_TRUE(std::filesystem::exists(run_profile_path));
  auto run_profile = trace::ParseProfileJson(ReadFileOrDie(run_profile_path));
  ASSERT_TRUE(run_profile.ok()) << run_profile.status().ToString();
  EXPECT_EQ(run_profile->sampler.mode, "fake");
  EXPECT_EQ(run_profile->sampler.samples, sampler.emitted_samples());
  EXPECT_LE(run_profile->critical_path_seconds,
            run_profile->wall_seconds + 1e-9);
  uint64_t run_folded_total = 0;
  for (const std::string& line : run_profile->folded) {
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    run_folded_total += std::stoull(line.substr(space + 1));
  }
  EXPECT_EQ(run_folded_total, sampler.emitted_samples());
  EXPECT_TRUE(
      std::filesystem::exists(spec.trace_dir + "/profile.folded"));
}

TEST(ProfilerHarnessTest, CountersModeNeedsNoSamplerAndStillBounds) {
  auto dir = TempDir::Create("gly-prof-counters");
  ASSERT_TRUE(dir.ok());
  Graph g = Rmat8();
  RunSpec spec = ProfiledMatrixSpec(&g);
  spec.platforms = {"giraph"};
  spec.algorithms = {AlgorithmKind::kBfs};
  spec.trace_dir = dir->File("trace");
  spec.profile.mode = ProfileMode::kCounters;

  auto results = RunBenchmark(spec);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 1u);
  EXPECT_GT(results->front().critical_path_seconds, 0.0);

  std::string profile_path =
      spec.trace_dir + "/profile-giraph-rmat8-BFS.json";
  auto profile = trace::ParseProfileJson(ReadFileOrDie(profile_path));
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_EQ(profile->sampler.mode, "off");
  EXPECT_EQ(profile->sampler.samples, 0u);
  EXPECT_TRUE(profile->folded.empty());
  EXPECT_LE(profile->critical_path_seconds, profile->wall_seconds + 1e-9);
}

// --------------------------------------- per-cell traces under --jobs N

TEST(ProfilerHarnessTest, PerCellTracesAreValidUnderConcurrentScheduler) {
  auto dir = TempDir::Create("gly-prof-jobs");
  ASSERT_TRUE(dir.ok());
  Graph g = Rmat8();
  RunSpec spec = ProfiledMatrixSpec(&g);
  spec.trace_dir = dir->File("trace");
  spec.jobs = 4;
  spec.profile.mode = ProfileMode::kCounters;

  auto results = RunBenchmark(spec);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), kAllPlatforms.size() * 2);

  for (const BenchmarkResult& r : *results) {
    ASSERT_TRUE(r.status.ok()) << r.platform;
    std::string stem =
        r.platform + "-" + r.graph + "-" + AlgorithmKindName(r.algorithm);

    // The satellite this pins: per-cell traces are valid with jobs > 1 —
    // each cell's window contains only its own, fully closed spans.
    std::string cell_path = spec.trace_dir + "/trace-" + stem + ".json";
    ASSERT_TRUE(std::filesystem::exists(cell_path)) << cell_path;
    std::string cell_trace = ReadFileOrDie(cell_path);
    auto check = trace::ValidateChromeTraceJson(cell_trace);
    ASSERT_TRUE(check.ok()) << cell_path << ": "
                            << check.status().ToString();
    EXPECT_EQ(check->unmatched_begins, 0u) << cell_path;
    EXPECT_GT(check->completed_spans, 0u) << cell_path;
    // The window is the cell's own: exactly one harness.cell envelope,
    // no spans from any other platform's engine.
    EXPECT_NE(cell_trace.find("\"harness.cell\""), std::string::npos)
        << cell_path;
    if (r.platform == "giraph") {
      EXPECT_EQ(cell_trace.find("\"mapreduce.job\""), std::string::npos)
          << cell_path;
    }
    if (r.platform == "mapreduce") {
      EXPECT_EQ(cell_trace.find("\"pregel.superstep\""), std::string::npos)
          << cell_path;
    }

    // Per-cell critical paths stay exact under the scheduler.
    std::string profile_path = spec.trace_dir + "/profile-" + stem + ".json";
    auto profile = trace::ParseProfileJson(ReadFileOrDie(profile_path));
    ASSERT_TRUE(profile.ok()) << profile_path << ": "
                              << profile.status().ToString();
    EXPECT_LE(profile->critical_path_seconds, profile->wall_seconds + 1e-9)
        << profile_path;
  }

  // The merged run-wide trace stays fully closed too.
  auto run_check =
      trace::ValidateChromeTraceJson(ReadFileOrDie(spec.trace_dir +
                                                   "/trace.json"));
  ASSERT_TRUE(run_check.ok()) << run_check.status().ToString();
  EXPECT_EQ(run_check->unmatched_begins, 0u);
}

}  // namespace
}  // namespace gly
