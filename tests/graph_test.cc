// Unit tests for the graph module: edge lists, CSR construction, I/O,
// partitioners.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>

#include "common/temp_dir.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/partition.h"

namespace gly {
namespace {

EdgeList TriangleWithTail() {
  // 0-1, 1-2, 2-0 triangle plus 2-3 tail.
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(1, 2);
  edges.Add(2, 0);
  edges.Add(2, 3);
  return edges;
}

TEST(EdgeListTest, TracksVertexBound) {
  EdgeList edges;
  edges.Add(3, 9);
  EXPECT_EQ(edges.num_vertices(), 10u);
  edges.Add(11, 2);
  EXPECT_EQ(edges.num_vertices(), 12u);
  EXPECT_EQ(edges.num_edges(), 2u);
}

TEST(EdgeListTest, DeduplicateDropsLoopsAndRepeats) {
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(0, 1);
  edges.Add(1, 1);  // loop
  edges.Add(1, 0);  // distinct orientation is kept
  edges.DeduplicateAndDropLoops();
  EXPECT_EQ(edges.num_edges(), 2u);
}

TEST(EdgeListTest, AppendMergesBounds) {
  EdgeList a;
  a.Add(0, 1);
  EdgeList b(50);
  b.Add(2, 3);
  a.Append(b);
  EXPECT_EQ(a.num_edges(), 2u);
  EXPECT_EQ(a.num_vertices(), 50u);
}

TEST(GraphBuilderTest, DirectedAdjacency) {
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(0, 2);
  edges.Add(2, 1);
  auto g = GraphBuilder::Directed(edges);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(g->undirected());
  EXPECT_EQ(g->num_vertices(), 3u);
  EXPECT_EQ(g->num_edges(), 3u);
  EXPECT_EQ(g->OutDegree(0), 2u);
  EXPECT_EQ(g->InDegree(1), 2u);
  EXPECT_EQ(g->OutDegree(1), 0u);
  EXPECT_TRUE(g->HasEdge(0, 1));
  EXPECT_FALSE(g->HasEdge(1, 0));
  EXPECT_TRUE(g->Validate().ok());
}

TEST(GraphBuilderTest, UndirectedMirrorsEdges) {
  auto g = GraphBuilder::Undirected(TriangleWithTail());
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->undirected());
  EXPECT_EQ(g->num_vertices(), 4u);
  EXPECT_EQ(g->num_edges(), 4u);
  EXPECT_EQ(g->num_adjacency_entries(), 8u);
  EXPECT_EQ(g->Degree(2), 3u);
  EXPECT_TRUE(g->HasEdge(1, 0));
  EXPECT_TRUE(g->HasEdge(0, 1));
  EXPECT_TRUE(g->Validate().ok());
}

TEST(GraphBuilderTest, UndirectedMergesBothOrientations) {
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(1, 0);  // same undirected edge
  auto g = GraphBuilder::Undirected(edges);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1u);
}

TEST(GraphBuilderTest, DirectedKeepsDuplicatesWhenAsked) {
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(0, 1);
  auto g = GraphBuilder::Directed(edges, /*dedup=*/false);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);
}

TEST(GraphBuilderTest, EmptyGraph) {
  EdgeList edges(5);
  auto g = GraphBuilder::Undirected(edges);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 5u);
  EXPECT_EQ(g->num_edges(), 0u);
  EXPECT_TRUE(g->Validate().ok());
}

TEST(GraphTest, AdjacencyIsSorted) {
  EdgeList edges;
  edges.Add(0, 3);
  edges.Add(0, 1);
  edges.Add(0, 2);
  auto g = GraphBuilder::Directed(edges);
  ASSERT_TRUE(g.ok());
  auto nbrs = g->OutNeighbors(0);
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_EQ(nbrs[1], 2u);
  EXPECT_EQ(nbrs[2], 3u);
}

TEST(GraphTest, ToEdgeListRoundTripsUndirected) {
  auto g = GraphBuilder::Undirected(TriangleWithTail());
  ASSERT_TRUE(g.ok());
  EdgeList out = g->ToEdgeList();
  EXPECT_EQ(out.num_edges(), g->num_edges());
  auto g2 = GraphBuilder::Undirected(out);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->num_adjacency_entries(), g->num_adjacency_entries());
}

TEST(GraphTest, MemoryBytesPositive) {
  auto g = GraphBuilder::Undirected(TriangleWithTail());
  ASSERT_TRUE(g.ok());
  EXPECT_GT(g->MemoryBytes(), 0u);
}

// --------------------------------------------------------------------- IO

TEST(GraphIoTest, TextRoundTrip) {
  auto dir = TempDir::Create("gly-io");
  ASSERT_TRUE(dir.ok());
  EdgeList edges = TriangleWithTail();
  ASSERT_TRUE(WriteEdgeListText(edges, dir->File("g.e")).ok());
  auto read = ReadEdgeListText(dir->File("g.e"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->num_edges(), edges.num_edges());
  EXPECT_EQ(read->edges(), edges.edges());
}

TEST(GraphIoTest, TextSkipsComments) {
  auto dir = TempDir::Create("gly-io");
  ASSERT_TRUE(dir.ok());
  std::ofstream(dir->File("g.e")) << "# header\n0 1\n\n2 3\n";
  auto read = ReadEdgeListText(dir->File("g.e"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->num_edges(), 2u);
}

TEST(GraphIoTest, TextRejectsMalformed) {
  auto dir = TempDir::Create("gly-io");
  ASSERT_TRUE(dir.ok());
  std::ofstream(dir->File("bad.e")) << "0\n";
  EXPECT_FALSE(ReadEdgeListText(dir->File("bad.e")).ok());
  std::ofstream(dir->File("bad2.e")) << "0 xyz\n";
  EXPECT_FALSE(ReadEdgeListText(dir->File("bad2.e")).ok());
}

TEST(GraphIoTest, MalformedInputCorpusIsRejectedWithLocation) {
  // Each corpus entry is one way real edge dumps go wrong; every one must
  // be rejected with an error naming the file and (1-based) line.
  auto dir = TempDir::Create("gly-io");
  ASSERT_TRUE(dir.ok());
  struct Case {
    const char* name;
    const char* content;
    const char* bad_line;  // "<line_no>" expected in the error message
  };
  const Case corpus[] = {
      {"truncated.e", "0 1\n2\n", "2"},                // line cut mid-edge
      {"nonnumeric.e", "0 1\nfoo bar\n", "2"},         // words, not ids
      {"negative.e", "0 1\n-3 4\n", "2"},              // negative id
      {"float.e", "0 1\n2.5 3\n", "2"},                // fractional id
      {"overflow.e", "99999999999999999999 1\n", "1"}, // > uint64
      {"too_large.e", "0 1\n4294967295 2\n", "2"},     // == kInvalidVertex
      {"trailing.e", "0 1\n2 3x\n", "2"},              // trailing garbage
  };
  for (const Case& c : corpus) {
    std::ofstream(dir->File(c.name)) << c.content;
    auto read = ReadEdgeListText(dir->File(c.name));
    ASSERT_FALSE(read.ok()) << c.name;
    EXPECT_NE(read.status().message().find(c.name), std::string::npos)
        << c.name << ": " << read.status().ToString();
    EXPECT_NE(read.status().message().find(std::string(":") + c.bad_line),
              std::string::npos)
        << c.name << ": " << read.status().ToString();
  }
}

TEST(GraphIoTest, ParseOptionsDropSelfLoopsAndDuplicates) {
  auto dir = TempDir::Create("gly-io");
  ASSERT_TRUE(dir.ok());
  std::ofstream(dir->File("messy.e")) << "0 1\n1 1\n0 1\n2 0\n2 2\n0 1\n";

  // Default: everything kept verbatim.
  auto verbatim = ReadEdgeListText(dir->File("messy.e"));
  ASSERT_TRUE(verbatim.ok());
  EXPECT_EQ(verbatim->num_edges(), 6u);

  EdgeListParseOptions drop_loops;
  drop_loops.drop_self_loops = true;
  auto no_loops = ReadEdgeListText(dir->File("messy.e"), drop_loops);
  ASSERT_TRUE(no_loops.ok());
  EXPECT_EQ(no_loops->num_edges(), 4u);

  EdgeListParseOptions drop_both;
  drop_both.drop_self_loops = true;
  drop_both.drop_duplicates = true;
  auto clean = ReadEdgeListText(dir->File("messy.e"), drop_both);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->num_edges(), 2u);  // {0 1, 2 0}
  EXPECT_EQ(clean->num_vertices(), 3u);
}

TEST(GraphIoTest, ParseOptionsEnforceVertexIdLimit) {
  auto dir = TempDir::Create("gly-io");
  ASSERT_TRUE(dir.ok());
  std::ofstream(dir->File("wide.e")) << "0 1\n5000 2\n";
  EdgeListParseOptions bounded;
  bounded.max_vertex_id = 100;
  auto read = ReadEdgeListText(dir->File("wide.e"), bounded);
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsInvalidArgument());
  EXPECT_NE(read.status().message().find(":2"), std::string::npos)
      << read.status().ToString();
}

TEST(GraphIoTest, BinaryRejectsEdgeCountBeyondFileSize) {
  // A corrupt header must not turn into a multi-gigabyte allocation.
  auto dir = TempDir::Create("gly-io");
  ASSERT_TRUE(dir.ok());
  EdgeList edges = TriangleWithTail();
  ASSERT_TRUE(WriteEdgeListBinary(edges, dir->File("g.bin")).ok());
  // Corrupt the edge-count field (bytes 16..24) to a huge value.
  std::fstream f(dir->File("g.bin"),
                 std::ios::binary | std::ios::in | std::ios::out);
  uint64_t huge = uint64_t{1} << 40;
  f.seekp(16);
  f.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  f.close();
  auto read = ReadEdgeListBinary(dir->File("g.bin"));
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsInvalidArgument()) << read.status().ToString();
}

TEST(GraphIoTest, BinaryRoundTrip) {
  auto dir = TempDir::Create("gly-io");
  ASSERT_TRUE(dir.ok());
  EdgeList edges = TriangleWithTail();
  ASSERT_TRUE(WriteEdgeListBinary(edges, dir->File("g.bin")).ok());
  auto read = ReadEdgeListBinary(dir->File("g.bin"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->edges(), edges.edges());
  EXPECT_EQ(read->num_vertices(), edges.num_vertices());
}

TEST(GraphIoTest, BinaryRejectsBadMagic) {
  auto dir = TempDir::Create("gly-io");
  ASSERT_TRUE(dir.ok());
  std::ofstream(dir->File("junk.bin"), std::ios::binary) << "NOTMAGIC123456";
  EXPECT_FALSE(ReadEdgeListBinary(dir->File("junk.bin")).ok());
}

TEST(GraphIoTest, MissingFileIsIOError) {
  EXPECT_TRUE(ReadEdgeListText("/nonexistent/g.e").status().IsIOError());
  EXPECT_TRUE(ReadEdgeListBinary("/nonexistent/g.bin").status().IsIOError());
}

TEST(GraphIoTest, VertexFileCoversIsolatedVertices) {
  auto dir = TempDir::Create("gly-io");
  ASSERT_TRUE(dir.ok());
  EdgeList edges;
  edges.Add(0, 1);
  // Graphalytics dataset: .e file plus a .v listing vertices 0..4
  // (2, 3, 4 are isolated).
  ASSERT_TRUE(WriteEdgeListText(edges, dir->File("g.e")).ok());
  std::ofstream(dir->File("g.v")) << "0\n1\n2\n3\n4\n";
  auto read = ReadGraphalyticsDataset(dir->File("g"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->num_vertices(), 5u);
  EXPECT_EQ(read->num_edges(), 1u);
  auto g = GraphBuilder::Undirected(*read);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->Degree(4), 0u);
}

TEST(GraphIoTest, DatasetWithoutVertexFileInfersFromEdges) {
  auto dir = TempDir::Create("gly-io");
  ASSERT_TRUE(dir.ok());
  EdgeList edges = TriangleWithTail();
  ASSERT_TRUE(WriteEdgeListText(edges, dir->File("g.e")).ok());
  auto read = ReadGraphalyticsDataset(dir->File("g"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->num_vertices(), 4u);
}

TEST(GraphIoTest, VertexFileRoundTrip) {
  auto dir = TempDir::Create("gly-io");
  ASSERT_TRUE(dir.ok());
  EdgeList edges(7);
  edges.Add(0, 1);
  ASSERT_TRUE(WriteVertexFile(edges, dir->File("g.v")).ok());
  EdgeList fresh;
  fresh.Add(0, 1);
  ASSERT_TRUE(ApplyVertexFile(dir->File("g.v"), &fresh).ok());
  EXPECT_EQ(fresh.num_vertices(), 7u);
}

TEST(GraphIoTest, VertexFileRejectsGarbage) {
  auto dir = TempDir::Create("gly-io");
  ASSERT_TRUE(dir.ok());
  std::ofstream(dir->File("bad.v")) << "0\nxyz\n";
  EdgeList edges;
  EXPECT_FALSE(ApplyVertexFile(dir->File("bad.v"), &edges).ok());
}

// ------------------------------------------------------------- Partition

TEST(PartitionTest, HashCoversAllPartitions) {
  HashPartitioner p(4);
  std::set<uint32_t> seen;
  for (VertexId v = 0; v < 1000; ++v) {
    uint32_t part = p.PartitionOf(v);
    EXPECT_LT(part, 4u);
    seen.insert(part);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(PartitionTest, RangeIsContiguous) {
  RangePartitioner p(100, 4);
  EXPECT_EQ(p.PartitionOf(0), 0u);
  EXPECT_EQ(p.PartitionOf(99), 3u);
  for (VertexId v = 1; v < 100; ++v) {
    EXPECT_GE(p.PartitionOf(v), p.PartitionOf(v - 1));
  }
}

TEST(PartitionTest, BalancedEdgePartitionerBalancesLoad) {
  // Star graph: hub 0 with 99 spokes. Hash partitioning is balanced by
  // vertex count but wildly imbalanced by edges; the greedy partitioner
  // should spread the load.
  EdgeList edges;
  for (VertexId v = 1; v < 100; ++v) edges.Add(0, v);
  auto g = GraphBuilder::Undirected(edges);
  ASSERT_TRUE(g.ok());
  BalancedEdgePartitioner balanced(*g, 4);
  EXPECT_LT(LoadImbalance(*g, balanced), 2.0);
}

// --------------------------------------------------------- ReorderByDegree

TEST(ReorderTest, StarHubBecomesVertexZero) {
  // Star: hub 7 with 9 spokes. Degree-descending relabeling must move the
  // hub to new id 0.
  EdgeList edges;
  for (VertexId v = 0; v < 10; ++v) {
    if (v != 7) edges.Add(7, v);
  }
  auto g = GraphBuilder::Undirected(edges);
  ASSERT_TRUE(g.ok());
  ReorderedGraph r = g->ReorderByDegree();
  ASSERT_TRUE(r.graph.Validate().ok());
  EXPECT_EQ(r.perm.old_to_new[7], 0u);
  EXPECT_EQ(r.perm.new_to_old[0], 7u);
  EXPECT_EQ(r.graph.OutDegree(0), 9u);
  // Spokes tie at degree 1: ties break by ascending original id.
  EXPECT_EQ(r.perm.new_to_old[1], 0u);
  EXPECT_EQ(r.perm.new_to_old[2], 1u);
}

TEST(ReorderTest, PermutationIsABijectionAndDegreesDescend) {
  EdgeList edges;
  for (VertexId v = 1; v < 40; ++v) edges.Add(v % 7, v);
  auto g = GraphBuilder::Undirected(edges);
  ASSERT_TRUE(g.ok());
  ReorderedGraph r = g->ReorderByDegree();
  ASSERT_EQ(r.perm.old_to_new.size(), g->num_vertices());
  ASSERT_EQ(r.perm.new_to_old.size(), g->num_vertices());
  std::set<VertexId> seen;
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    EXPECT_EQ(r.perm.old_to_new[r.perm.new_to_old[v]], v);
    seen.insert(r.perm.new_to_old[v]);
  }
  EXPECT_EQ(seen.size(), g->num_vertices());
  for (VertexId v = 1; v < r.graph.num_vertices(); ++v) {
    EXPECT_GE(r.graph.OutDegree(v - 1), r.graph.OutDegree(v));
  }
}

TEST(ReorderTest, RelabeledGraphPreservesStructure) {
  auto g = GraphBuilder::Undirected(TriangleWithTail());
  ASSERT_TRUE(g.ok());
  ReorderedGraph r = g->ReorderByDegree();
  ASSERT_TRUE(r.graph.Validate().ok());
  EXPECT_EQ(r.graph.num_vertices(), g->num_vertices());
  EXPECT_EQ(r.graph.num_edges(), g->num_edges());
  // Every original edge exists under the new labels and vice versa.
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    for (VertexId w : g->OutNeighbors(v)) {
      EXPECT_TRUE(
          r.graph.HasEdge(r.perm.old_to_new[v], r.perm.old_to_new[w]));
    }
    EXPECT_EQ(r.graph.OutDegree(r.perm.old_to_new[v]), g->OutDegree(v));
  }
}

TEST(ReorderTest, DirectedGraphKeepsBothSides) {
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(0, 2);
  edges.Add(3, 0);
  edges.Add(2, 1);
  auto g = GraphBuilder::Directed(edges);
  ASSERT_TRUE(g.ok());
  ReorderedGraph r = g->ReorderByDegree();
  ASSERT_TRUE(r.graph.Validate().ok());
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    EXPECT_EQ(r.graph.OutDegree(r.perm.old_to_new[v]), g->OutDegree(v));
    EXPECT_EQ(r.graph.InDegree(r.perm.old_to_new[v]), g->InDegree(v));
  }
  EXPECT_TRUE(r.graph.HasEdge(r.perm.old_to_new[3], r.perm.old_to_new[0]));
  EXPECT_FALSE(r.graph.HasEdge(r.perm.old_to_new[0], r.perm.old_to_new[3]));
}

TEST(ReorderTest, EmptyGraphYieldsEmptyPermutation) {
  Graph g;
  ReorderedGraph r = g.ReorderByDegree();
  EXPECT_EQ(r.graph.num_vertices(), 0u);
  EXPECT_TRUE(r.perm.old_to_new.empty());
  EXPECT_TRUE(r.perm.new_to_old.empty());
}

TEST(ReorderTest, PoolAndSerialAgree) {
  EdgeList edges;
  for (VertexId v = 1; v < 200; ++v) edges.Add(v % 13, (v * 7) % 200);
  auto g = GraphBuilder::Undirected(edges);
  ASSERT_TRUE(g.ok());
  ReorderedGraph serial = g->ReorderByDegree();
  ThreadPool pool(4);
  ReorderedGraph parallel = g->ReorderByDegree(&pool);
  EXPECT_EQ(serial.perm.old_to_new, parallel.perm.old_to_new);
  for (VertexId v = 0; v < serial.graph.num_vertices(); ++v) {
    auto a = serial.graph.OutNeighbors(v);
    auto b = parallel.graph.OutNeighbors(v);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
}

TEST(PartitionTest, CutRatioBounds) {
  auto g = GraphBuilder::Undirected(TriangleWithTail());
  ASSERT_TRUE(g.ok());
  HashPartitioner hash(4);
  double cut = EdgeCutRatio(*g, hash);
  EXPECT_GE(cut, 0.0);
  EXPECT_LE(cut, 1.0);
  // Single partition has no cut.
  HashPartitioner one(1);
  EXPECT_DOUBLE_EQ(EdgeCutRatio(*g, one), 0.0);
}

}  // namespace
}  // namespace gly
