// CellScheduler tests (CTest label: scheduler; also run under TSan by
// scripts/ci.sh stage 3).
//
// Two layers:
//  * Unit tests drive the scheduler with opaque callbacks and assert the
//    scheduling contract directly: serial order at jobs=1, one load per
//    group with cache hits for the rest, budget admission that queues
//    (never fails) oversubscribed loads, the oversized-group bypass, stop
//    semantics, intra-group mutual exclusion, and real cross-group
//    concurrency.
//  * The differential test is the safety proof for the whole harness
//    integration: the same 4-engine × {BFS, PR, CONN} matrix on one
//    scale-12 R-MAT graph, run at jobs=1 and jobs=4, must produce
//    equivalent journals — same cells, statuses, validation outcomes,
//    traversed-edge counts, and output checksums — and the jobs=4 run must
//    have actually overlapped cells (max_in_flight >= 2).

#include <gtest/gtest.h>

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/stopwatch.h"
#include "common/temp_dir.h"
#include "datagen/rmat.h"
#include "graph/graph.h"
#include "harness/core.h"
#include "harness/report.h"
#include "harness/scheduler.h"
#include "ref/algorithms.h"

namespace gly::harness {
namespace {

// ------------------------------------------------------------ unit layer

/// Event log shared by scheduler callbacks across worker threads.
class EventLog {
 public:
  void Add(const std::string& event) {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(event);
  }
  std::vector<std::string> Take() {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }
  /// Index of `event`, or -1 when absent.
  int IndexOf(const std::string& event) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::find(events_.begin(), events_.end(), event);
    return it == events_.end() ? -1 : static_cast<int>(it - events_.begin());
  }

 private:
  std::mutex mu_;
  std::vector<std::string> events_;
};

TEST(CellSchedulerTest, JobsOneRunsInRegistrationOrder) {
  CellScheduler::Options options;
  options.jobs = 1;
  CellScheduler sched(options);
  size_t a = sched.AddGroup(0);
  size_t b = sched.AddGroup(0);
  sched.AddItem(a, "a0");
  sched.AddItem(a, "a1");
  sched.AddItem(b, "b0");
  sched.AddItem(b, "b1");

  EventLog log;
  SchedulerStats stats = sched.Run(
      [&](size_t g) { log.Add("load" + std::to_string(g)); },
      [&](size_t i) { log.Add("run" + std::to_string(i)); },
      [&](size_t g) { log.Add("retire" + std::to_string(g)); });

  // jobs=1 must reproduce the serial triple loop exactly: each group is
  // loaded before its first item, retired after its last, in order.
  std::vector<std::string> expected = {"load0", "run0",    "run1", "retire0",
                                       "load1", "run2",    "run3", "retire1"};
  EXPECT_EQ(log.Take(), expected);
  EXPECT_EQ(stats.jobs, 1u);
  EXPECT_EQ(stats.items, 4u);
  EXPECT_EQ(stats.groups, 2u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.graph_cache_hits, 2u);
  EXPECT_EQ(stats.skipped, 0u);
  EXPECT_EQ(stats.max_in_flight, 1u);
}

TEST(CellSchedulerTest, SharedGroupLoadsOnceAndCountsCacheHits) {
  CellScheduler::Options options;
  options.jobs = 2;
  CellScheduler sched(options);
  size_t g = sched.AddGroup(1 << 20);
  for (int i = 0; i < 4; ++i) sched.AddItem(g);

  int loads = 0, retires = 0;
  SchedulerStats stats = sched.Run([&](size_t) { ++loads; },
                                   [&](size_t) {},
                                   [&](size_t) { ++retires; });
  EXPECT_EQ(loads, 1);
  EXPECT_EQ(retires, 1);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.graph_cache_hits, 3u);
}

TEST(CellSchedulerTest, BudgetQueuesOversubscribedLoadInsteadOfFailing) {
  // Two groups of 80 bytes against a 100-byte budget: the second load must
  // wait for the first group to retire, not fail and not run concurrently.
  CellScheduler::Options options;
  options.jobs = 2;
  options.memory_budget_bytes = 100;
  CellScheduler sched(options);
  size_t a = sched.AddGroup(80);
  size_t b = sched.AddGroup(80);
  sched.AddItem(a, "a0");
  sched.AddItem(b, "b0");

  EventLog log;
  SchedulerStats stats = sched.Run(
      [&](size_t g) { log.Add("load" + std::to_string(g)); },
      [&](size_t i) {
        log.Add("run" + std::to_string(i));
        // Hold the charge long enough that the other worker's admission
        // scan is guaranteed to observe the oversubscribed budget (the
        // deferral counters only tick when a scan actually sees it).
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
      },
      [&](size_t g) { log.Add("retire" + std::to_string(g)); });

  // Both items ran (admission delays, never fails)...
  EXPECT_GE(log.IndexOf("run0"), 0);
  EXPECT_GE(log.IndexOf("run1"), 0);
  // ...and the second group's load was held back past the first's retire.
  EXPECT_LT(log.IndexOf("retire0"), log.IndexOf("load1"));
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_GE(stats.budget_deferrals, 1u);
  EXPECT_GE(stats.queued, 1u);
}

TEST(CellSchedulerTest, GroupLargerThanWholeBudgetStillRuns) {
  CellScheduler::Options options;
  options.jobs = 2;
  options.memory_budget_bytes = 10;
  CellScheduler sched(options);
  size_t small = sched.AddGroup(4);
  size_t huge = sched.AddGroup(100);  // can never fit the budget
  sched.AddItem(small, "small");
  sched.AddItem(huge, "huge");

  int runs = 0;
  std::mutex mu;
  SchedulerStats stats = sched.Run(
      [](size_t) {},
      [&](size_t) {
        std::lock_guard<std::mutex> lock(mu);
        ++runs;
      },
      [](size_t) {});
  // The oversized group is bypass-admitted once nothing else is active —
  // a budget smaller than one graph delays that graph, it never starves it.
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.skipped, 0u);
}

TEST(CellSchedulerTest, PreArmedStopSkipsEveryItemWithoutLoading) {
  CancelToken stop;
  stop.Cancel(CancelReason::kHarnessStop);

  CellScheduler::Options options;
  options.jobs = 4;
  options.stop = &stop;
  CellScheduler sched(options);
  size_t g = sched.AddGroup(0);
  for (int i = 0; i < 3; ++i) sched.AddItem(g);

  int loads = 0, runs = 0, retires = 0;
  SchedulerStats stats = sched.Run([&](size_t) { ++loads; },
                                   [&](size_t) { ++runs; },
                                   [&](size_t) { ++retires; });
  EXPECT_EQ(loads, 0);
  EXPECT_EQ(runs, 0);
  EXPECT_EQ(retires, 0);  // never loaded, nothing to retire
  EXPECT_EQ(stats.skipped, 3u);
}

TEST(CellSchedulerTest, StopMidRunSkipsRestButRetiresLoadedGroup) {
  CancelToken stop;
  CellScheduler::Options options;
  options.jobs = 1;
  options.stop = &stop;
  CellScheduler sched(options);
  size_t g = sched.AddGroup(0);
  sched.AddItem(g, "first");
  sched.AddItem(g, "second");

  int loads = 0, retires = 0;
  std::vector<size_t> ran;
  SchedulerStats stats = sched.Run(
      [&](size_t) { ++loads; },
      [&](size_t item) {
        ran.push_back(item);
        stop.Cancel(CancelReason::kHarnessStop);
      },
      [&](size_t) { ++retires; });
  // The in-flight item finishes; the unclaimed one is skipped; the already
  // loaded group is still retired exactly once (graph unloaded).
  EXPECT_EQ(ran, std::vector<size_t>({0}));
  EXPECT_EQ(loads, 1);
  EXPECT_EQ(retires, 1);
  EXPECT_EQ(stats.skipped, 1u);
}

TEST(CellSchedulerTest, ItemsOfOneGroupNeverOverlap) {
  // Platform::Run is stateful, so two cells of the same (platform, graph)
  // group must never run concurrently no matter how many jobs are free.
  CellScheduler::Options options;
  options.jobs = 4;
  CellScheduler sched(options);
  size_t g = sched.AddGroup(0);
  for (int i = 0; i < 8; ++i) sched.AddItem(g);

  std::mutex mu;
  int inside = 0, peak = 0;
  sched.Run([](size_t) {},
            [&](size_t) {
              {
                std::lock_guard<std::mutex> lock(mu);
                peak = std::max(peak, ++inside);
              }
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
              std::lock_guard<std::mutex> lock(mu);
              --inside;
            },
            [](size_t) {});
  EXPECT_EQ(peak, 1);
}

TEST(CellSchedulerTest, DistinctGroupsRunConcurrently) {
  CellScheduler::Options options;
  options.jobs = 4;
  CellScheduler sched(options);
  for (int i = 0; i < 4; ++i) sched.AddItem(sched.AddGroup(0));

  // Rendezvous: every item waits (bounded) until a second item has
  // entered, which forces max_in_flight >= 2 when concurrency works and
  // still terminates (via timeout) if it ever regresses to serial.
  std::mutex mu;
  std::condition_variable cv;
  int entered = 0;
  SchedulerStats stats = sched.Run(
      [](size_t) {},
      [&](size_t) {
        std::unique_lock<std::mutex> lock(mu);
        ++entered;
        cv.notify_all();
        cv.wait_for(lock, std::chrono::seconds(5),
                    [&] { return entered >= 2; });
      },
      [](size_t) {});
  EXPECT_GE(stats.max_in_flight, 2u);
  EXPECT_EQ(stats.items, 4u);
}

TEST(CellSchedulerTest, SummaryNamesTheLoadBearingCounters) {
  SchedulerStats stats;
  stats.jobs = 4;
  stats.items = 12;
  std::string summary = SchedulerSummary(stats);
  EXPECT_NE(summary.find("jobs=4"), std::string::npos) << summary;
  EXPECT_NE(summary.find("cells=12"), std::string::npos) << summary;
  EXPECT_NE(summary.find("graph-cache-hits="), std::string::npos) << summary;
}

// ---------------------------------------------------- differential layer

struct JournalCell {
  StatusCode status = StatusCode::kOk;
  StatusCode validation = StatusCode::kOk;
  uint64_t traversed_edges = 0;
  uint32_t output_checksum = 0;
};

/// Parses a journal into cell-key → comparable fields, sorted by key.
std::map<std::string, JournalCell> ReadJournal(const std::string& path) {
  std::map<std::string, JournalCell> cells;
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << "journal missing: " << path;
  std::string line;
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    auto parsed = ResultFromJson(line);
    EXPECT_TRUE(parsed.ok()) << line;
    if (!parsed.ok()) continue;
    std::string key = parsed->platform + "/" + parsed->graph + "/" +
                      AlgorithmKindName(parsed->algorithm);
    cells[key] = {parsed->status.code(), parsed->validation.code(),
                  parsed->traversed_edges, parsed->output_checksum};
  }
  return cells;
}

Graph RmatGraph(uint32_t scale, uint64_t seed) {
  datagen::RmatConfig config;
  config.scale = scale;
  config.edge_factor = 16;
  config.seed = seed;
  EdgeList edges = datagen::RmatGenerator(config).Generate().ValueOrDie();
  return GraphBuilder::Undirected(edges).ValueOrDie();
}

RunSpec MatrixSpec(const Graph* graph,
                   const std::vector<AlgorithmKind>& algorithms) {
  RunSpec spec;
  spec.platforms = {"giraph", "graphx", "mapreduce", "neo4j"};
  spec.datasets.push_back({"g500", graph, {}});
  spec.algorithms = algorithms;
  spec.monitor = false;
  return spec;
}

TEST(SchedulerDifferentialTest, ConcurrentJournalEquivalentToSerial) {
  Graph g = RmatGraph(/*scale=*/12, /*seed=*/99);
  auto tmp = TempDir::Create("sched-diff");
  ASSERT_TRUE(tmp.ok());

  const std::vector<AlgorithmKind> algorithms = {
      AlgorithmKind::kBfs, AlgorithmKind::kPr, AlgorithmKind::kConn};

  RunSpec serial = MatrixSpec(&g, algorithms);
  serial.validate = true;
  serial.jobs = 1;
  serial.journal_path = tmp->File("serial.jsonl");
  auto serial_results = RunBenchmark(serial);
  ASSERT_TRUE(serial_results.ok());

  RunSpec concurrent = MatrixSpec(&g, algorithms);
  concurrent.validate = true;
  concurrent.jobs = 4;
  // Budget two concurrent graph loads (of four groups), rounding the MiB
  // limit *up* so two estimates genuinely fit: exercises real admission
  // queueing in an end-to-end run without changing any result.
  concurrent.sched_memory_budget_mb = ((2 * g.MemoryBytes()) >> 20) + 1;
  SchedulerStats stats;
  concurrent.scheduler_stats = &stats;
  concurrent.journal_path = tmp->File("jobs4.jsonl");
  auto concurrent_results = RunBenchmark(concurrent);
  ASSERT_TRUE(concurrent_results.ok());

  auto serial_cells = ReadJournal(serial.journal_path);
  auto concurrent_cells = ReadJournal(concurrent.journal_path);
  ASSERT_EQ(serial_cells.size(), 12u);
  ASSERT_EQ(concurrent_cells.size(), 12u);
  for (const auto& [key, want] : serial_cells) {
    ASSERT_TRUE(concurrent_cells.count(key)) << "missing cell " << key;
    const JournalCell& got = concurrent_cells[key];
    EXPECT_EQ(got.status, want.status) << key;
    EXPECT_EQ(got.validation, want.validation) << key;
    EXPECT_EQ(got.traversed_edges, want.traversed_edges) << key;
    EXPECT_EQ(got.output_checksum, want.output_checksum) << key;
    // Every cell of this matrix succeeds and validates; the checksum is a
    // real fingerprint, not the failed-cell placeholder.
    EXPECT_EQ(want.status, StatusCode::kOk) << key;
    EXPECT_EQ(want.validation, StatusCode::kOk) << key;
    EXPECT_NE(want.output_checksum, 0u) << key;
  }

  // The equivalence only proves anything if cells actually overlapped.
  EXPECT_EQ(stats.jobs, 4u);
  EXPECT_EQ(stats.items, 12u);
  EXPECT_GE(stats.max_in_flight, 2u);
  EXPECT_GE(stats.graph_cache_hits, 8u);  // 3 algorithms share each load
}

TEST(SchedulerDifferentialTest, ConcurrentMatrixIsNotSlowerThanSerial) {
  // The weak speedup gate from the issue: a --jobs 4 smoke matrix must be
  // measurably concurrent (peak in-flight >= 2, logged summary) and must
  // not be meaningfully slower than serial. The generous 1.5x bound keeps
  // this stable on loaded CI boxes and under TSan while still catching a
  // scheduler that accidentally serialized or thrashed.
  Graph g = RmatGraph(/*scale=*/14, /*seed=*/5);
  RunSpec serial = MatrixSpec(&g, {AlgorithmKind::kBfs});
  serial.validate = false;
  serial.jobs = 1;
  Stopwatch serial_watch;
  ASSERT_TRUE(RunBenchmark(serial).ok());
  const double serial_s = serial_watch.ElapsedSeconds();

  RunSpec concurrent = MatrixSpec(&g, {AlgorithmKind::kBfs});
  concurrent.validate = false;
  concurrent.jobs = 4;
  SchedulerStats stats;
  concurrent.scheduler_stats = &stats;
  Stopwatch concurrent_watch;
  ASSERT_TRUE(RunBenchmark(concurrent).ok());
  const double concurrent_s = concurrent_watch.ElapsedSeconds();

  std::printf("scheduler speedup: serial=%.3fs jobs4=%.3fs (%s)\n", serial_s,
              concurrent_s, SchedulerSummary(stats).c_str());
  EXPECT_GE(stats.max_in_flight, 2u);
  EXPECT_LT(concurrent_s, serial_s * 1.5)
      << "jobs=4 run should not be meaningfully slower than serial";
}

}  // namespace
}  // namespace gly::harness
