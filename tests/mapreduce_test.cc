// Tests for the MapReduce engine: record files, serialization, job
// execution (spill/shuffle/combine), counters, and the algorithm chains.

#include <gtest/gtest.h>

#include <filesystem>

#include "common/random.h"
#include "common/string_util.h"
#include "common/temp_dir.h"
#include "harness/validator.h"
#include "mapreduce/graph_jobs.h"
#include "mapreduce/job.h"
#include "mapreduce/record.h"

namespace gly::mapreduce {
namespace {

// ------------------------------------------------------------ record files

TEST(RecordFileTest, RoundTrip) {
  auto dir = TempDir::Create("gly-mr");
  ASSERT_TRUE(dir.ok());
  std::vector<Record> records = {
      {1, "alpha"}, {2, ""}, {~0ULL, std::string(1000, 'x')}};
  ASSERT_TRUE(WriteAllRecords(records, dir->File("r.bin")).ok());
  auto read = ReadAllRecords(dir->File("r.bin"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, records);
}

TEST(RecordFileTest, EmptyFile) {
  auto dir = TempDir::Create("gly-mr");
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE(WriteAllRecords({}, dir->File("empty.bin")).ok());
  auto read = ReadAllRecords(dir->File("empty.bin"));
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
}

TEST(RecordFileTest, DetectsTruncation) {
  auto dir = TempDir::Create("gly-mr");
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE(WriteAllRecords({{1, "hello world"}}, dir->File("t.bin")).ok());
  std::filesystem::resize_file(dir->File("t.bin"), 14);  // cut into value
  auto read = ReadAllRecords(dir->File("t.bin"));
  EXPECT_FALSE(read.ok());
}

TEST(ValueCodecTest, RoundTripsPrimitives) {
  std::string buf;
  ValueWriter w(&buf);
  w.PutU32(7);
  w.PutI64(-9);
  w.PutDouble(2.5);
  w.PutBytes("abc", 3);
  ValueReader r(buf);
  EXPECT_EQ(*r.GetU32(), 7u);
  EXPECT_EQ(*r.GetI64(), -9);
  EXPECT_DOUBLE_EQ(*r.GetDouble(), 2.5);
  EXPECT_EQ(*r.GetBytes(), "abc");
  EXPECT_TRUE(r.AtEnd());
}

TEST(ValueCodecTest, DetectsTruncation) {
  std::string buf;
  ValueWriter w(&buf);
  w.PutU64(1);
  buf.resize(4);
  ValueReader r(buf);
  EXPECT_FALSE(r.GetU64().ok());
}

// ------------------------------------------------------------------- jobs

// Word-count-style job over integer keys: map emits (key % 10, "1"),
// reduce sums.
class ModMapper : public Mapper {
 public:
  void Map(const Record& input, Emitter* out, Counters* counters) override {
    out->Emit(input.key % 10, "1");
    counters->Increment("mapped");
  }
};

// Values are decimal counts; reduce sums them. Doubles as the combiner
// (sum is associative), matching Hadoop's reducer-as-combiner idiom.
class SumReducer : public Reducer {
 public:
  void Reduce(uint64_t key, const std::vector<std::string>& values,
              Emitter* out, Counters*) override {
    uint64_t sum = 0;
    for (const std::string& v : values) sum += ParseUint64(v).ValueOr(0);
    out->Emit(key, std::to_string(sum));
  }
};

TEST(JobTest, CountsKeysAcrossMappersAndReducers) {
  auto dir = TempDir::Create("gly-mr");
  ASSERT_TRUE(dir.ok());
  std::vector<Record> input;
  for (uint64_t i = 0; i < 1000; ++i) input.push_back({i, ""});
  ASSERT_TRUE(WriteAllRecords(input, dir->File("in.bin")).ok());

  JobConfig config;
  config.num_mappers = 3;
  config.num_reducers = 4;
  config.scratch_dir = dir->File("scratch");
  Job job(config, [] { return std::make_unique<ModMapper>(); },
          [] { return std::make_unique<SumReducer>(); });
  ThreadPool pool(4);
  Counters counters;
  JobStats stats;
  auto outputs = job.Run({dir->File("in.bin")}, dir->File("out"), &pool,
                         &counters, &stats);
  ASSERT_TRUE(outputs.ok());
  EXPECT_EQ(outputs->size(), 4u);
  EXPECT_EQ(counters.Get("mapped"), 1000u);
  EXPECT_EQ(stats.input_records, 1000u);
  EXPECT_EQ(stats.map_output_records, 1000u);
  EXPECT_GT(stats.spill_bytes, 0u);

  uint64_t total = 0;
  int groups = 0;
  for (const std::string& path : *outputs) {
    auto records = ReadAllRecords(path);
    ASSERT_TRUE(records.ok());
    for (const Record& r : *records) {
      total += *ParseUint64(r.value);
      ++groups;
    }
  }
  EXPECT_EQ(total, 1000u);  // each input contributes one "1"
  EXPECT_EQ(groups, 10);    // keys 0..9
}

TEST(JobTest, SmallSortBufferForcesMultipleSpills) {
  auto dir = TempDir::Create("gly-mr");
  ASSERT_TRUE(dir.ok());
  std::vector<Record> input;
  for (uint64_t i = 0; i < 2000; ++i) input.push_back({i, std::string(100, 'v')});
  ASSERT_TRUE(WriteAllRecords(input, dir->File("in.bin")).ok());

  JobConfig config;
  config.num_mappers = 1;
  config.num_reducers = 1;
  config.sort_buffer_bytes = 4096;  // force spills
  config.scratch_dir = dir->File("scratch");
  Job job(config, [] { return std::make_unique<ModMapper>(); },
          [] { return std::make_unique<SumReducer>(); });
  ThreadPool pool(2);
  Counters counters;
  JobStats stats;
  auto outputs =
      job.Run({dir->File("in.bin")}, dir->File("out"), &pool, &counters,
              &stats);
  ASSERT_TRUE(outputs.ok());
  EXPECT_GT(stats.spill_files, 4u);
  // Merged output is still correct.
  auto records = ReadAllRecords((*outputs)[0]);
  ASSERT_TRUE(records.ok());
  uint64_t total = 0;
  for (const Record& r : *records) total += *ParseUint64(r.value);
  EXPECT_EQ(total, 2000u);
}

TEST(JobTest, CombinerShrinksSpills) {
  auto dir = TempDir::Create("gly-mr");
  ASSERT_TRUE(dir.ok());
  std::vector<Record> input;
  for (uint64_t i = 0; i < 5000; ++i) input.push_back({i, ""});
  ASSERT_TRUE(WriteAllRecords(input, dir->File("in.bin")).ok());

  auto run = [&](bool with_combiner) -> uint64_t {
    JobConfig config;
    config.num_mappers = 2;
    config.num_reducers = 2;
    config.scratch_dir =
        dir->File(with_combiner ? "scratch-c" : "scratch-n");
    Job job(config, [] { return std::make_unique<ModMapper>(); },
            [] { return std::make_unique<SumReducer>(); },
            with_combiner
                ? ReducerFactory([] { return std::make_unique<SumReducer>(); })
                : nullptr);
    ThreadPool pool(2);
    Counters counters;
    JobStats stats;
    auto outputs = job.Run({dir->File("in.bin")},
                           dir->File(with_combiner ? "out-c" : "out-n"),
                           &pool, &counters, &stats);
    EXPECT_TRUE(outputs.ok());
    return stats.shuffle_bytes;
  };
  uint64_t with = run(true);
  uint64_t without = run(false);
  EXPECT_LT(with, without / 10);
}

TEST(JobTest, RequiresScratchDir) {
  JobConfig config;  // no scratch_dir
  Job job(config, [] { return std::make_unique<ModMapper>(); },
          [] { return std::make_unique<SumReducer>(); });
  ThreadPool pool(1);
  Counters counters;
  EXPECT_FALSE(job.Run({}, "/tmp/out", &pool, &counters).ok());
}

// --------------------------------------------------------- algorithm chains

Graph RandomUndirected(VertexId n, size_t m, uint64_t seed) {
  EdgeList edges(n);
  Rng rng(seed);
  while (edges.num_edges() < m) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(n));
    VertexId b = static_cast<VertexId>(rng.NextBounded(n));
    if (a != b) edges.Add(a, b);
  }
  return GraphBuilder::Undirected(edges).ValueOrDie();
}

PlatformConfig MakePlatformConfig(const TempDir& dir) {
  PlatformConfig config;
  config.job.num_mappers = 3;
  config.job.num_reducers = 3;
  config.job.scratch_dir = dir.path() + "/scratch";
  config.work_dir = dir.path() + "/work";
  return config;
}

TEST(MapReduceAlgorithmsTest, BfsMatchesReference) {
  auto dir = TempDir::Create("gly-mr");
  ASSERT_TRUE(dir.ok());
  Graph g = RandomUndirected(150, 400, 21);
  AlgorithmParams params;
  params.bfs.source = 2;
  ChainStats stats;
  auto out = RunAlgorithm(MakePlatformConfig(*dir), g, AlgorithmKind::kBfs,
                          params, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(
      harness::ValidateOutput(g, AlgorithmKind::kBfs, params, *out).ok());
  EXPECT_GT(stats.jobs_run, 1u);
  EXPECT_GT(stats.total_spill_bytes, 0u);  // disk really used
}

TEST(MapReduceAlgorithmsTest, ConnMatchesReference) {
  auto dir = TempDir::Create("gly-mr");
  ASSERT_TRUE(dir.ok());
  Graph g = RandomUndirected(150, 250, 22);
  auto out =
      RunAlgorithm(MakePlatformConfig(*dir), g, AlgorithmKind::kConn, {});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(
      harness::ValidateOutput(g, AlgorithmKind::kConn, {}, *out).ok());
}

TEST(MapReduceAlgorithmsTest, ConnOnDirectedGraph) {
  auto dir = TempDir::Create("gly-mr");
  ASSERT_TRUE(dir.ok());
  EdgeList edges;
  Rng rng(23);
  for (int i = 0; i < 200; ++i) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(100));
    VertexId b = static_cast<VertexId>(rng.NextBounded(100));
    if (a != b) edges.Add(a, b);
  }
  Graph g = GraphBuilder::Directed(edges).ValueOrDie();
  auto out =
      RunAlgorithm(MakePlatformConfig(*dir), g, AlgorithmKind::kConn, {});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(
      harness::ValidateOutput(g, AlgorithmKind::kConn, {}, *out).ok());
}

TEST(MapReduceAlgorithmsTest, CdMatchesReference) {
  auto dir = TempDir::Create("gly-mr");
  ASSERT_TRUE(dir.ok());
  Graph g = RandomUndirected(120, 360, 24);
  AlgorithmParams params;
  params.cd = CdParams{5, 0.05};
  auto out =
      RunAlgorithm(MakePlatformConfig(*dir), g, AlgorithmKind::kCd, params);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(
      harness::ValidateOutput(g, AlgorithmKind::kCd, params, *out).ok());
}

TEST(MapReduceAlgorithmsTest, StatsMatchesReference) {
  auto dir = TempDir::Create("gly-mr");
  ASSERT_TRUE(dir.ok());
  Graph g = RandomUndirected(120, 360, 25);
  auto out =
      RunAlgorithm(MakePlatformConfig(*dir), g, AlgorithmKind::kStats, {});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(
      harness::ValidateOutput(g, AlgorithmKind::kStats, {}, *out).ok());
}

TEST(MapReduceAlgorithmsTest, EvoMatchesReference) {
  auto dir = TempDir::Create("gly-mr");
  ASSERT_TRUE(dir.ok());
  Graph g = RandomUndirected(120, 360, 26);
  AlgorithmParams params;
  params.evo.num_new_vertices = 7;
  auto out =
      RunAlgorithm(MakePlatformConfig(*dir), g, AlgorithmKind::kEvo, params);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(
      harness::ValidateOutput(g, AlgorithmKind::kEvo, params, *out).ok());
}

TEST(MapReduceAlgorithmsTest, RequiresWorkDir) {
  Graph g = RandomUndirected(10, 20, 27);
  PlatformConfig config;
  config.job.scratch_dir = "/tmp/x";
  EXPECT_FALSE(RunAlgorithm(config, g, AlgorithmKind::kBfs, {}).ok());
}

}  // namespace
}  // namespace gly::mapreduce
