// Unit tests for the analysis module: clustering coefficients,
// assortativity, degree-distribution models and fitting (Table 1/Figure 1
// machinery).

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/degree_distribution.h"
#include "analysis/metrics.h"
#include "common/random.h"
#include "graph/graph.h"

namespace gly {
namespace {

Graph MakeUndirected(std::initializer_list<std::pair<VertexId, VertexId>> es,
                     VertexId n = 0) {
  EdgeList edges(n);
  for (auto [a, b] : es) edges.Add(a, b);
  return GraphBuilder::Undirected(edges).ValueOrDie();
}

// ---------------------------------------------------------------- metrics

TEST(MetricsTest, TriangleIsFullyClustered) {
  Graph g = MakeUndirected({{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(CountTriangles(g), 1u);
  EXPECT_EQ(CountWedges(g), 3u);
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 1.0);
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(g), 1.0);
}

TEST(MetricsTest, StarHasNoClustering) {
  Graph g = MakeUndirected({{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  EXPECT_EQ(CountTriangles(g), 0u);
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 0.0);
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(g), 0.0);
}

TEST(MetricsTest, CompleteGraphK5) {
  EdgeList edges;
  for (VertexId a = 0; a < 5; ++a) {
    for (VertexId b = a + 1; b < 5; ++b) edges.Add(a, b);
  }
  Graph g = GraphBuilder::Undirected(edges).ValueOrDie();
  EXPECT_EQ(CountTriangles(g), 10u);  // C(5,3)
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 1.0);
}

TEST(MetricsTest, TriangleWithTailLocalCc) {
  // Triangle 0-1-2 plus edge 2-3: cc(0)=cc(1)=1, cc(2)=1/3, cc(3)=0.
  Graph g = MakeUndirected({{0, 1}, {1, 2}, {2, 0}, {2, 3}});
  auto cc = LocalClusteringCoefficients(g);
  EXPECT_DOUBLE_EQ(cc[0], 1.0);
  EXPECT_DOUBLE_EQ(cc[1], 1.0);
  EXPECT_NEAR(cc[2], 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cc[3], 0.0);
  GraphCharacteristics chars = ComputeCharacteristics(g);
  EXPECT_EQ(chars.num_vertices, 4u);
  EXPECT_EQ(chars.num_edges, 4u);
  EXPECT_NEAR(chars.average_clustering_coefficient, (1 + 1 + 1.0 / 3) / 4,
              1e-12);
  // global = 3*1 triangles / (1+1+3+0=5 wedges)
  EXPECT_NEAR(chars.global_clustering_coefficient, 3.0 / 5.0, 1e-12);
}

TEST(MetricsTest, ParallelMatchesSerial) {
  // Random-ish graph; parallel triangle counting must agree with serial.
  EdgeList edges;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(100));
    VertexId b = static_cast<VertexId>(rng.NextBounded(100));
    if (a != b) edges.Add(a, b);
  }
  Graph g = GraphBuilder::Undirected(edges).ValueOrDie();
  ThreadPool pool(4);
  EXPECT_EQ(CountTriangles(g, &pool), CountTriangles(g, nullptr));
  EXPECT_NEAR(AverageClusteringCoefficient(g, &pool),
              AverageClusteringCoefficient(g, nullptr), 1e-12);
}

TEST(MetricsTest, StarIsDisassortative) {
  // Hubs connected to leaves: negative degree correlation.
  Graph g = MakeUndirected({{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}});
  EXPECT_LT(DegreeAssortativity(g), -0.9);
}

TEST(MetricsTest, RegularishChainAssortativity) {
  // A long path: interior vertices all degree 2 — strongly assortative
  // core. Expect positive-ish value.
  EdgeList edges;
  for (VertexId v = 0; v + 1 < 50; ++v) edges.Add(v, v + 1);
  Graph g = GraphBuilder::Undirected(edges).ValueOrDie();
  EXPECT_GT(DegreeAssortativity(g), -0.5);
}

TEST(MetricsTest, DegreeHistogram) {
  Graph g = MakeUndirected({{0, 1}, {0, 2}, {0, 3}});
  Histogram h = DegreeHistogram(g);
  EXPECT_EQ(h.CountOf(3), 1u);  // hub
  EXPECT_EQ(h.CountOf(1), 3u);  // leaves
}

// ---------------------------------------------------- distribution models

TEST(DegreeModelTest, PmfsSumToOne) {
  ZetaModel zeta(2.0, 100000);
  GeometricModel geo(0.2);
  PoissonModel poisson(5.0);
  WeibullModel weibull(1.2, 8.0);
  for (const DegreeModel* m :
       std::initializer_list<const DegreeModel*>{&zeta, &geo, &poisson,
                                                 &weibull}) {
    double sum = 0.0;
    for (uint64_t k = 1; k <= 100000; ++k) sum += m->Pmf(k);
    EXPECT_NEAR(sum, 1.0, 0.02) << m->ToString();
  }
}

Histogram SampleHistogram(const std::function<uint64_t(Rng&)>& sampler,
                          int n, uint64_t seed) {
  Histogram h;
  Rng rng(seed);
  for (int i = 0; i < n; ++i) h.Add(sampler(rng));
  return h;
}

TEST(DegreeModelTest, ZetaFitRecoversAlpha) {
  ZetaSampler sampler(1.7, 10000);
  Histogram h = SampleHistogram(
      [&sampler](Rng& rng) { return sampler.Sample(rng); }, 100000, 31);
  ZetaModel fit = ZetaModel::Fit(h);
  EXPECT_NEAR(fit.alpha(), 1.7, 0.05);
}

TEST(DegreeModelTest, GeometricFitRecoversP) {
  Histogram h = SampleHistogram(
      [](Rng& rng) { return SampleGeometric(rng, 0.12); }, 100000, 37);
  GeometricModel fit = GeometricModel::Fit(h);
  EXPECT_NEAR(fit.p(), 0.12, 0.01);
}

TEST(DegreeModelTest, PoissonFitRecoversLambda) {
  Histogram h = SampleHistogram(
      [](Rng& rng) {
        uint64_t k;
        do {
          k = SamplePoisson(rng, 9.0);
        } while (k == 0);
        return k;
      },
      50000, 41);
  PoissonModel fit = PoissonModel::Fit(h);
  EXPECT_NEAR(fit.lambda(), 9.0, 0.3);
}

TEST(DegreeModelTest, ModelSelectionPicksTrueFamily) {
  // Paper: "depending on the graph, the best fitting model changed".
  // Zeta data must rank zeta first; geometric data must rank geometric
  // first.
  ZetaSampler zeta_sampler(1.7, 10000);
  Histogram zeta_data = SampleHistogram(
      [&zeta_sampler](Rng& rng) { return zeta_sampler.Sample(rng); }, 50000,
      43);
  auto zeta_fits = FitAllModels(zeta_data);
  EXPECT_TRUE(zeta_fits[0].model_description.find("zeta") !=
              std::string::npos)
      << "best: " << zeta_fits[0].model_description;

  Histogram geo_data = SampleHistogram(
      [](Rng& rng) { return SampleGeometric(rng, 0.12); }, 50000, 47);
  auto geo_fits = FitAllModels(geo_data);
  EXPECT_TRUE(geo_fits[0].model_description.find("geometric") !=
              std::string::npos)
      << "best: " << geo_fits[0].model_description;
}

TEST(DegreeModelTest, GoodnessOfFitDiscriminates) {
  // KS statistic of the true model must beat a wrong model.
  ZetaSampler sampler(1.7, 10000);
  Histogram h = SampleHistogram(
      [&sampler](Rng& rng) { return sampler.Sample(rng); }, 50000, 53);
  ZetaModel good = ZetaModel::Fit(h);
  PoissonModel bad = PoissonModel::Fit(h);
  EXPECT_LT(KsStatistic(h, good), KsStatistic(h, bad));
  double dof_good = 0;
  double dof_bad = 0;
  double chi_good = ChiSquareStatistic(h, good, &dof_good);
  double chi_bad = ChiSquareStatistic(h, bad, &dof_bad);
  EXPECT_LT(chi_good / dof_good, chi_bad / dof_bad);
}

TEST(DegreeModelTest, WeibullFitImprovesOverDefault) {
  Histogram h = SampleHistogram(
      [](Rng& rng) { return SampleWeibullDegree(rng, 0.8, 15.0); }, 30000, 59);
  WeibullModel fit = WeibullModel::Fit(h);
  WeibullModel naive(1.0, 1.0);
  EXPECT_GT(fit.LogLikelihood(h), naive.LogLikelihood(h));
  EXPECT_NEAR(fit.shape(), 0.8, 0.2);
}

}  // namespace
}  // namespace gly
