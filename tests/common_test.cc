// Unit tests for the common module: Status/Result, Config, RNG, histogram,
// thread pool, memory budget, string utilities, CSV, temp dirs.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/config.h"
#include "common/csv.h"
#include "common/histogram.h"
#include "common/macros.h"
#include "common/memory_budget.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/temp_dir.h"
#include "common/threadpool.h"

namespace gly {
namespace {

// ----------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "io-error: disk on fire");
}

TEST(StatusTest, CopySemantics) {
  Status a = Status::NotFound("x");
  Status b = a;
  EXPECT_EQ(a, b);
  b = Status::OK();
  EXPECT_TRUE(b.ok());
  EXPECT_TRUE(a.IsNotFound());
}

TEST(StatusTest, WithPrefixPrependsContext) {
  Status s = Status::InvalidArgument("bad key").WithPrefix("config");
  EXPECT_EQ(s.message(), "config: bad key");
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_TRUE(Status::OK().WithPrefix("x").ok());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 10; ++c) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(c)), "unknown");
  }
}

// ----------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Timeout("slow");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTimeout());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  GLY_ASSIGN_OR_RETURN(int h, Half(x));
  GLY_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());
}

// ----------------------------------------------------------------- Config

TEST(ConfigTest, ParsesKeysSectionsComments) {
  auto config = Config::Parse(
      "# comment\n"
      "a = 1\n"
      "flag = true\n"
      "[pregel]\n"
      "workers = 8\n"
      "rate = 2.5\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(*config->GetInt("a"), 1);
  EXPECT_TRUE(*config->GetBool("flag"));
  EXPECT_EQ(*config->GetInt("pregel.workers"), 8);
  EXPECT_DOUBLE_EQ(*config->GetDouble("pregel.rate"), 2.5);
}

TEST(ConfigTest, RejectsMalformedLines) {
  EXPECT_FALSE(Config::Parse("no equals sign").ok());
  EXPECT_FALSE(Config::Parse("[unterminated\n").ok());
  EXPECT_FALSE(Config::Parse("= value\n").ok());
}

TEST(ConfigTest, TypedGetterErrors) {
  auto config = Config::Parse("x = notanumber\n");
  ASSERT_TRUE(config.ok());
  EXPECT_TRUE(config->GetInt("x").status().IsInvalidArgument());
  EXPECT_TRUE(config->GetInt("missing").status().IsNotFound());
  EXPECT_EQ(config->GetIntOr("x", 9), 9);
  EXPECT_EQ(config->GetIntOr("missing", 9), 9);
}

TEST(ConfigTest, ScopedExtractsPrefix) {
  auto config = Config::Parse("giraph.workers = 4\ngiraph.x = y\nother.z = 1\n");
  ASSERT_TRUE(config.ok());
  Config scoped = config->Scoped("giraph");
  EXPECT_EQ(scoped.size(), 2u);
  EXPECT_EQ(*scoped.GetInt("workers"), 4);
  EXPECT_FALSE(scoped.Has("z"));
}

TEST(ConfigTest, MergeOverwrites) {
  Config a = *Config::Parse("x = 1\ny = 2\n");
  Config b = *Config::Parse("y = 3\nz = 4\n");
  a.MergeFrom(b);
  EXPECT_EQ(*a.GetInt("y"), 3);
  EXPECT_EQ(*a.GetInt("z"), 4);
  EXPECT_EQ(*a.GetInt("x"), 1);
}

TEST(ConfigTest, RoundTripsThroughToString) {
  Config a = *Config::Parse("x = 1\nname = value with spaces\n");
  Config b = *Config::Parse(a.ToString());
  EXPECT_EQ(b.ToString(), a.ToString());
}

TEST(ConfigTest, BoolSpellings) {
  Config c = *Config::Parse("a=yes\nb=off\nc=1\nd=False\n");
  EXPECT_TRUE(*c.GetBool("a"));
  EXPECT_FALSE(*c.GetBool("b"));
  EXPECT_TRUE(*c.GetBool("c"));
  EXPECT_FALSE(*c.GetBool("d"));
}

// -------------------------------------------------------------------- RNG

TEST(RandomTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RandomTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, DeriveSeedIndependentStreams) {
  uint64_t s1 = DeriveSeed(42, 0);
  uint64_t s2 = DeriveSeed(42, 1);
  EXPECT_NE(s1, s2);
  EXPECT_EQ(DeriveSeed(42, 0), s1);  // stable
}

TEST(RandomTest, GeometricMeanMatches) {
  Rng rng(11);
  const double p = 0.25;
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(SampleGeometric(rng, p));
  EXPECT_NEAR(sum / n, 1.0 / p, 0.05);
}

TEST(RandomTest, PoissonMeanMatchesSmallAndLargeLambda) {
  Rng rng(13);
  for (double lambda : {2.5, 80.0}) {
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(SamplePoisson(rng, lambda));
    EXPECT_NEAR(sum / n, lambda, lambda * 0.03);
  }
}

TEST(RandomTest, ZetaSamplerTailHeavierForSmallerAlpha) {
  Rng rng(17);
  ZetaSampler heavy(1.5, 1 << 20);
  ZetaSampler light(3.0, 1 << 20);
  uint64_t heavy_big = 0;
  uint64_t light_big = 0;
  for (int i = 0; i < 50000; ++i) {
    if (heavy.Sample(rng) > 10) ++heavy_big;
    if (light.Sample(rng) > 10) ++light_big;
  }
  EXPECT_GT(heavy_big, light_big * 5);
}

TEST(RandomTest, ZetaSamplerRespectsTruncation) {
  Rng rng(19);
  ZetaSampler z(1.2, 50);
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = z.Sample(rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 50u);
  }
}

TEST(RandomTest, AliasTableMatchesWeights) {
  std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  AliasTable table(weights);
  Rng rng(23);
  std::vector<uint64_t> counts(4, 0);
  const int n = 400000;
  for (int i = 0; i < n; ++i) ++counts[table.Sample(rng)];
  for (size_t i = 0; i < 4; ++i) {
    double expected = weights[i] / 10.0;
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, expected, 0.01);
  }
}

TEST(RandomTest, WeibullDegreesArePositive) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(SampleWeibullDegree(rng, 0.7, 10.0), 1u);
  }
}

// -------------------------------------------------------------- Histogram

TEST(HistogramTest, BasicStatistics) {
  Histogram h;
  h.Add(1, 2);  // 1, 1
  h.Add(4);     // 4
  EXPECT_EQ(h.total_count(), 3u);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.0);
  EXPECT_DOUBLE_EQ(h.Variance(), 2.0);
  EXPECT_EQ(h.Min(), 1u);
  EXPECT_EQ(h.Max(), 4u);
  EXPECT_EQ(h.CountOf(1), 2u);
  EXPECT_EQ(h.CountOf(9), 0u);
}

TEST(HistogramTest, Percentiles) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Add(v);
  EXPECT_EQ(h.Percentile(0.5), 50u);
  EXPECT_EQ(h.Percentile(1.0), 100u);
  EXPECT_LE(h.Percentile(0.0), 1u);
}

TEST(HistogramTest, EmptyIsSafe) {
  Histogram h;
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0u);
}

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.Submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForChunkedPartitions) {
  ThreadPool pool(3);
  std::atomic<size_t> total{0};
  pool.ParallelForChunked(997, [&](size_t b, size_t e) {
    total.fetch_add(e - b);
  });
  EXPECT_EQ(total.load(), 997u);
}

TEST(ThreadPoolTest, ZeroItemsIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
}

TEST(ThreadPoolTest, RangedParallelForCoversHalfOpenRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(200, 900, /*grain=*/64,
                   [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), i >= 200 && i < 900 ? 1 : 0) << i;
  }
}

TEST(ThreadPoolTest, RangedParallelForChunkedRespectsGrain) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  std::atomic<size_t> max_chunk{0};
  pool.ParallelForChunked(0, 1000, /*grain=*/600, [&](size_t b, size_t e) {
    total.fetch_add(e - b);
    size_t len = e - b;
    size_t seen = max_chunk.load();
    while (len > seen && !max_chunk.compare_exchange_weak(seen, len)) {
    }
  });
  EXPECT_EQ(total.load(), 1000u);
  // grain = 600 over 1000 items allows at most ceil(1000/600) = 2 chunks,
  // so some chunk must span at least 500 items.
  EXPECT_GE(max_chunk.load(), 500u);
}

TEST(ThreadPoolTest, RangedEmptyRangeIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(10, 10, 1, [](size_t) { FAIL(); });
  pool.ParallelForChunked(5, 5, 1, [](size_t, size_t) { FAIL(); });
}

TEST(ThreadPoolTest, ParallelForPropagatesWorkerException) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  try {
    pool.ParallelFor(0, 1000, /*grain=*/8, [&](size_t i) {
      if (i == 613) throw std::runtime_error("worker 613 failed");
      hits[i].fetch_add(1);
    });
    FAIL() << "expected the worker exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "worker 613 failed");
  }
  // The throw aborts the throwing chunk, so its tail never runs — but no
  // index is ever visited twice, the throwing index itself is skipped, and
  // the pool is still usable afterwards.
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_LE(hits[i].load(), 1) << i;
  }
  EXPECT_EQ(hits[613].load(), 0);
  EXPECT_EQ(pool.Submit([] { return 5; }).get(), 5);
}

// ----------------------------------------------------------- MemoryBudget

TEST(MemoryBudgetTest, ChargesAndReleases) {
  MemoryBudget budget(1000);
  EXPECT_TRUE(budget.Charge(600, "a").ok());
  EXPECT_EQ(budget.used(), 600u);
  Status s = budget.Charge(500, "b");
  EXPECT_TRUE(s.IsResourceExhausted());
  EXPECT_EQ(budget.used(), 600u);  // failed charge rolls back
  budget.Release(600);
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.peak(), 600u);
}

TEST(MemoryBudgetTest, UnlimitedWhenZero) {
  MemoryBudget budget(0);
  EXPECT_TRUE(budget.Charge(1ULL << 40, "huge").ok());
}

TEST(MemoryBudgetTest, ScopedChargeReleasesOnDestruction) {
  MemoryBudget budget(100);
  {
    ASSERT_TRUE(budget.Charge(80, "x").ok());
    ScopedCharge charge(&budget, 80);
    EXPECT_EQ(budget.used(), 80u);
  }
  EXPECT_EQ(budget.used(), 0u);
}

TEST(MemoryBudgetTest, ScopedChargeMoves) {
  MemoryBudget budget(100);
  ASSERT_TRUE(budget.Charge(50, "x").ok());
  ScopedCharge a(&budget, 50);
  ScopedCharge b = std::move(a);
  a.ReleaseNow();  // no-op after move
  EXPECT_EQ(budget.used(), 50u);
  b.ReleaseNow();
  EXPECT_EQ(budget.used(), 0u);
}

// ------------------------------------------------------------ string_util

TEST(StringUtilTest, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, SplitWhitespace) {
  auto parts = SplitWhitespace("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, TrimAndStartsWith) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(StringUtilTest, ParseNumbers) {
  EXPECT_EQ(*ParseInt64("-42"), -42);
  EXPECT_EQ(*ParseUint64(" 17 "), 17u);
  EXPECT_DOUBLE_EQ(*ParseDouble("2.5e3"), 2500.0);
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseUint64("-1").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringUtilTest, Formatting) {
  EXPECT_EQ(FormatBytes(512), "512.0 B");
  EXPECT_EQ(FormatBytes(1536), "1.5 KiB");
  EXPECT_EQ(FormatSeconds(0.0005), "500.0 us");
  EXPECT_EQ(FormatSeconds(2.0), "2.00 s");
  EXPECT_EQ(StringPrintf("%d-%s", 3, "x"), "3-x");
}

// -------------------------------------------------------------------- CSV

TEST(CsvTest, QuotesSpecialFields) {
  std::ostringstream out;
  CsvWriter csv(&out);
  csv.WriteRow({"plain", "with,comma", "with\"quote"});
  EXPECT_EQ(out.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(CsvTest, BuilderApi) {
  std::ostringstream out;
  CsvWriter csv(&out);
  csv.Field(std::string("a")).Field(int64_t{-1}).Field(2.5);
  csv.EndRow();
  EXPECT_EQ(out.str(), "a,-1,2.5\n");
  EXPECT_EQ(csv.rows_written(), 1u);
}

TEST(CsvTest, ParseUndoesQuoting) {
  EXPECT_EQ(ParseCsvLine("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(ParseCsvLine("\"with,comma\",\"with\"\"quote\""),
            (std::vector<std::string>{"with,comma", "with\"quote"}));
  EXPECT_EQ(ParseCsvLine(""), (std::vector<std::string>{""}));
  EXPECT_EQ(ParseCsvLine("a,,b"), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(ParseCsvLine(",,"), (std::vector<std::string>{"", "", ""}));
}

TEST(CsvTest, WriteParseRoundTripsHostileFields) {
  // The report's status_detail / cancel_reason / top_phases columns carry
  // free-form engine text; ParseCsvLine must be the exact inverse of
  // WriteRow for anything that can appear there.
  const std::vector<std::vector<std::string>> rows = {
      {"plain", "", "trailing,comma,"},
      {"a,b", "she said \"hi\"", "\"\"", "''"},
      {"line\nbreak", "cr\r\nlf", "tab\tstop"},
      {"unicode ✓", " leading space", "trailing space "},
      {"quote at end\"", "\"quote at start", "only\"middle\"quotes"},
  };
  for (const auto& row : rows) {
    std::ostringstream out;
    CsvWriter csv(&out);
    csv.WriteRow(row);
    std::string line = out.str();
    ASSERT_FALSE(line.empty());
    line.pop_back();  // WriteRow appends the record's trailing '\n'
    EXPECT_EQ(ParseCsvLine(line), row) << "serialized as: " << line;
  }
}

// ---------------------------------------------------------------- TempDir

TEST(TempDirTest, CreatesAndRemoves) {
  std::string path;
  {
    auto dir = TempDir::Create("gly-test");
    ASSERT_TRUE(dir.ok());
    path = dir->path();
    EXPECT_TRUE(std::filesystem::exists(path));
    std::ofstream(dir->File("f.txt")) << "x";
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(TempDirTest, UniquePaths) {
  auto a = TempDir::Create("gly-test");
  auto b = TempDir::Create("gly-test");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->path(), b->path());
}

}  // namespace
}  // namespace gly
