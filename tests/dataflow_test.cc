// Tests for the dataflow (GraphX-like) engine: dataset transformations,
// shuffles/joins, memory accounting and lineage, and the algorithms.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "dataflow/algorithms.h"
#include "dataflow/dataset.h"
#include "dataflow/graph.h"
#include "harness/validator.h"

namespace gly::dataflow {
namespace {

ContextConfig SmallContext() {
  ContextConfig config;
  config.num_partitions = 4;
  config.num_threads = 4;
  return config;
}

Graph RandomUndirected(VertexId n, size_t m, uint64_t seed) {
  EdgeList edges(n);
  Rng rng(seed);
  while (edges.num_edges() < m) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(n));
    VertexId b = static_cast<VertexId>(rng.NextBounded(n));
    if (a != b) edges.Add(a, b);
  }
  return GraphBuilder::Undirected(edges).ValueOrDie();
}

// ---------------------------------------------------------------- datasets

TEST(DatasetTest, ParallelizeAndCollect) {
  Context ctx(SmallContext());
  std::vector<int> data = {1, 2, 3, 4, 5};
  auto ds = ctx.Parallelize(data);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->Count(), 5u);
  auto collected = ds->Collect();
  std::sort(collected.begin(), collected.end());
  EXPECT_EQ(collected, data);
}

TEST(DatasetTest, MapAndFilter) {
  Context ctx(SmallContext());
  std::vector<int> data;
  for (int i = 0; i < 100; ++i) data.push_back(i);
  auto ds = ctx.Parallelize(data);
  ASSERT_TRUE(ds.ok());
  auto doubled = ctx.Map<int>(*ds, [](int x) { return x * 2; });
  ASSERT_TRUE(doubled.ok());
  auto small = ctx.Filter(*doubled, [](int x) { return x < 10; });
  ASSERT_TRUE(small.ok());
  auto collected = small->Collect();
  std::sort(collected.begin(), collected.end());
  EXPECT_EQ(collected, (std::vector<int>{0, 2, 4, 6, 8}));
}

TEST(DatasetTest, FlatMap) {
  Context ctx(SmallContext());
  auto ds = ctx.Parallelize(std::vector<int>{1, 2, 3});
  ASSERT_TRUE(ds.ok());
  auto expanded = ctx.FlatMap<int>(*ds, [](int x) {
    return std::vector<int>(static_cast<size_t>(x), x);
  });
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(expanded->Count(), 6u);  // 1 + 2 + 3
}

TEST(DatasetTest, ReduceByKeySums) {
  Context ctx(SmallContext());
  std::vector<std::pair<uint64_t, int>> data;
  for (int i = 0; i < 100; ++i) data.emplace_back(i % 7, 1);
  auto ds = ctx.ParallelizeByKey(std::move(data));
  ASSERT_TRUE(ds.ok());
  auto reduced = ctx.ReduceByKey(*ds, [](int a, int b) { return a + b; });
  ASSERT_TRUE(reduced.ok());
  auto collected = reduced->Collect();
  EXPECT_EQ(collected.size(), 7u);
  int total = 0;
  for (const auto& [k, v] : collected) total += v;
  EXPECT_EQ(total, 100);
}

TEST(DatasetTest, LeftJoinFindsMatches) {
  Context ctx(SmallContext());
  std::vector<std::pair<uint64_t, int>> left = {{1, 10}, {2, 20}, {3, 30}};
  std::vector<std::pair<uint64_t, int>> right = {{2, 200}, {3, 300}};
  auto l = ctx.ParallelizeByKey(std::move(left));
  auto r = ctx.ParallelizeByKey(std::move(right));
  ASSERT_TRUE(l.ok());
  ASSERT_TRUE(r.ok());
  auto joined = ctx.LeftJoin<std::pair<uint64_t, int>>(
      *l, *r, [](uint64_t k, const int& a, const int* b) {
        return std::make_pair(k, b != nullptr ? a + *b : a);
      });
  ASSERT_TRUE(joined.ok());
  auto collected = joined->Collect();
  std::sort(collected.begin(), collected.end());
  EXPECT_EQ(collected,
            (std::vector<std::pair<uint64_t, int>>{{1, 10}, {2, 220},
                                                   {3, 330}}));
}

TEST(DatasetTest, ShuffleCoPartitions) {
  Context ctx(SmallContext());
  std::vector<std::pair<uint64_t, int>> data;
  for (uint64_t i = 0; i < 64; ++i) data.emplace_back(i, 0);
  auto ds = ctx.Parallelize(data);  // NOT key-partitioned
  ASSERT_TRUE(ds.ok());
  auto shuffled = ctx.Shuffle(*ds);
  ASSERT_TRUE(shuffled.ok());
  for (size_t p = 0; p < shuffled->num_partitions(); ++p) {
    for (const auto& [k, v] : shuffled->partition(p)) {
      EXPECT_EQ(ctx.PartitionOf(k), p);
    }
  }
  EXPECT_GT(ctx.stats().shuffle_bytes, 0u);
}

TEST(DatasetTest, MemoryBudgetAborts) {
  ContextConfig config = SmallContext();
  config.memory_budget_bytes = 128;  // tiny
  Context ctx(config);
  std::vector<int> data(10000, 1);
  auto ds = ctx.Parallelize(data);
  ASSERT_FALSE(ds.ok());
  EXPECT_TRUE(ds.status().IsResourceExhausted());
}

TEST(DatasetTest, DroppedDatasetReleasesBudget) {
  ContextConfig config = SmallContext();
  config.memory_budget_bytes = 1 << 20;
  config.object_overhead_factor = 1.0;
  Context ctx(config);
  {
    auto ds = ctx.Parallelize(std::vector<int>(1000, 7));
    ASSERT_TRUE(ds.ok());
    EXPECT_GT(ctx.budget().used(), 0u);
  }
  EXPECT_EQ(ctx.budget().used(), 0u);
}

TEST(DatasetTest, ObjectOverheadFactorCharged) {
  ContextConfig config = SmallContext();
  config.object_overhead_factor = 3.0;
  Context ctx(config);
  auto ds = ctx.Parallelize(std::vector<int>(1000, 7));
  ASSERT_TRUE(ds.ok());
  EXPECT_GE(ctx.budget().used(), 3u * 1000u * sizeof(int));
}

// -------------------------------------------------------------- algorithms

TEST(DataflowAlgorithmsTest, BfsMatchesReference) {
  Graph g = RandomUndirected(200, 600, 31);
  AlgorithmParams params;
  params.bfs.source = 1;
  auto out = RunAlgorithm(SmallContext(), g, AlgorithmKind::kBfs, params);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(
      harness::ValidateOutput(g, AlgorithmKind::kBfs, params, *out).ok());
}

TEST(DataflowAlgorithmsTest, BfsDirOptMatchesJoinsPlan) {
  // The frontier-based direction-optimizing plan and the legacy
  // Pregel-by-joins plan must emit identical levels and traversal counts
  // that both satisfy the validator, from several sources.
  Graph g = RandomUndirected(300, 1200, 35);
  for (VertexId source : {VertexId{0}, VertexId{42}, VertexId{299}}) {
    AlgorithmParams joins;
    joins.bfs.source = source;
    joins.bfs.strategy = BfsStrategy::kTopDown;  // routes to the joins plan
    AlgorithmParams diropt;
    diropt.bfs.source = source;
    diropt.bfs.strategy = BfsStrategy::kDirectionOptimizing;
    auto a = RunAlgorithm(SmallContext(), g, AlgorithmKind::kBfs, joins);
    auto b = RunAlgorithm(SmallContext(), g, AlgorithmKind::kBfs, diropt);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->vertex_values, b->vertex_values) << "source " << source;
    EXPECT_TRUE(
        harness::ValidateOutput(g, AlgorithmKind::kBfs, diropt, *b).ok());
  }
}

TEST(DataflowAlgorithmsTest, ConnMatchesReference) {
  Graph g = RandomUndirected(200, 350, 32);
  auto out = RunAlgorithm(SmallContext(), g, AlgorithmKind::kConn, {});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(
      harness::ValidateOutput(g, AlgorithmKind::kConn, {}, *out).ok());
}

TEST(DataflowAlgorithmsTest, CdMatchesReference) {
  Graph g = RandomUndirected(150, 450, 33);
  AlgorithmParams params;
  params.cd = CdParams{5, 0.05};
  auto out = RunAlgorithm(SmallContext(), g, AlgorithmKind::kCd, params);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(
      harness::ValidateOutput(g, AlgorithmKind::kCd, params, *out).ok());
}

TEST(DataflowAlgorithmsTest, StatsMatchesReference) {
  Graph g = RandomUndirected(150, 450, 34);
  auto out = RunAlgorithm(SmallContext(), g, AlgorithmKind::kStats, {});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(
      harness::ValidateOutput(g, AlgorithmKind::kStats, {}, *out).ok());
}

TEST(DataflowAlgorithmsTest, EvoMatchesReference) {
  Graph g = RandomUndirected(150, 450, 35);
  AlgorithmParams params;
  params.evo.num_new_vertices = 6;
  auto out = RunAlgorithm(SmallContext(), g, AlgorithmKind::kEvo, params);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(
      harness::ValidateOutput(g, AlgorithmKind::kEvo, params, *out).ok());
}

TEST(DataflowAlgorithmsTest, FailsOnBudgetGiraphSurvives) {
  // The Figure 4 memory story: with the same budget, the dataflow engine's
  // immutable re-materialization exhausts memory on a graph the leaner
  // engines handle. ~50 KiB of CSR with a 400 KiB budget: dataflow fails.
  Graph g = RandomUndirected(2000, 6000, 36);
  ContextConfig config = SmallContext();
  config.memory_budget_bytes = 400 << 10;
  auto out = RunAlgorithm(config, g, AlgorithmKind::kConn, {});
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsResourceExhausted());
}

TEST(DataflowAlgorithmsTest, StatsReportMaterializations) {
  Graph g = RandomUndirected(100, 300, 37);
  ContextStats stats;
  auto out = RunAlgorithm(SmallContext(), g, AlgorithmKind::kConn, {}, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(stats.datasets_materialized, 5u);
  EXPECT_GT(stats.bytes_materialized, 0u);
  EXPECT_GT(stats.join_probe_rows, 0u);
}

}  // namespace
}  // namespace gly::dataflow
