// Tests for the harness: platform factory, validator, system monitor,
// benchmark core, report generator, results database.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "common/random.h"
#include "common/temp_dir.h"
#include "harness/core.h"
#include "harness/monitor.h"
#include "harness/platform.h"
#include "harness/report.h"
#include "harness/validator.h"

namespace gly::harness {
namespace {

Graph RandomUndirected(VertexId n, size_t m, uint64_t seed) {
  EdgeList edges(n);
  Rng rng(seed);
  while (edges.num_edges() < m) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(n));
    VertexId b = static_cast<VertexId>(rng.NextBounded(n));
    if (a != b) edges.Add(a, b);
  }
  return GraphBuilder::Undirected(edges).ValueOrDie();
}

// ---------------------------------------------------------------- platform

TEST(PlatformFactoryTest, CreatesAllRegisteredPlatforms) {
  for (const std::string& name : RegisteredPlatforms()) {
    auto platform = MakePlatform(name, Config());
    ASSERT_TRUE(platform.ok()) << name;
    EXPECT_EQ((*platform)->name(), name);
  }
}

TEST(PlatformFactoryTest, RejectsUnknown) {
  EXPECT_TRUE(MakePlatform("flink", Config()).status().IsNotFound());
}

TEST(PlatformTest, RunWithoutLoadFails) {
  auto platform = MakePlatform("giraph", Config());
  ASSERT_TRUE(platform.ok());
  EXPECT_FALSE((*platform)->Run(AlgorithmKind::kBfs, {}).ok());
}

TEST(PlatformTest, EachPlatformRunsBfsCorrectly) {
  Graph g = RandomUndirected(120, 300, 51);
  AlgorithmParams params;
  params.bfs.source = 0;
  for (const std::string& name : RegisteredPlatforms()) {
    auto platform = MakePlatform(name, Config());
    ASSERT_TRUE(platform.ok()) << name;
    ASSERT_TRUE((*platform)->LoadGraph(g, "test").ok()) << name;
    auto out = (*platform)->Run(AlgorithmKind::kBfs, params);
    ASSERT_TRUE(out.ok()) << name << ": " << out.status().ToString();
    EXPECT_TRUE(
        ValidateOutput(g, AlgorithmKind::kBfs, params, *out).ok())
        << name;
    EXPECT_FALSE((*platform)->LastRunMetrics().empty()) << name;
    (*platform)->UnloadGraph();
  }
}

// --------------------------------------------------------------- validator

TEST(ValidatorTest, AcceptsCorrectOutput) {
  Graph g = RandomUndirected(50, 120, 52);
  AlgorithmParams params;
  auto expected = ref::Run(g, AlgorithmKind::kConn, params);
  EXPECT_TRUE(
      ValidateOutput(g, AlgorithmKind::kConn, params, expected).ok());
}

TEST(ValidatorTest, RejectsCorruptedVertexValues) {
  Graph g = RandomUndirected(50, 120, 53);
  AlgorithmParams params;
  auto out = ref::Run(g, AlgorithmKind::kConn, params);
  out.vertex_values[7] += 1;
  Status s = ValidateOutput(g, AlgorithmKind::kConn, params, out);
  EXPECT_TRUE(s.IsValidationFailed());
  EXPECT_NE(s.message().find("vertex 7"), std::string::npos);
}

TEST(ValidatorTest, RejectsSizeMismatch) {
  Graph g = RandomUndirected(50, 120, 54);
  AlgorithmParams params;
  auto out = ref::Run(g, AlgorithmKind::kBfs, params);
  out.vertex_values.pop_back();
  EXPECT_TRUE(ValidateOutput(g, AlgorithmKind::kBfs, params, out)
                  .IsValidationFailed());
}

TEST(ValidatorTest, StatsToleranceAllowsSummationNoise) {
  Graph g = RandomUndirected(50, 120, 55);
  AlgorithmParams params;
  auto out = ref::Run(g, AlgorithmKind::kStats, params);
  out.stats.mean_local_clustering *= 1.0 + 1e-9;
  EXPECT_TRUE(ValidateOutput(g, AlgorithmKind::kStats, params, out).ok());
  out.stats.mean_local_clustering += 0.1;
  EXPECT_TRUE(ValidateOutput(g, AlgorithmKind::kStats, params, out)
                  .IsValidationFailed());
}

TEST(ValidatorTest, RejectsEvoEdgeDifference) {
  Graph g = RandomUndirected(50, 120, 56);
  AlgorithmParams params;
  auto out = ref::Run(g, AlgorithmKind::kEvo, params);
  out.new_edges.Add(51, 0);
  EXPECT_TRUE(ValidateOutput(g, AlgorithmKind::kEvo, params, out)
                  .IsValidationFailed());
}

// ----------------------------------------------------------------- monitor

TEST(SystemMonitorTest, ReadsProcCounters) {
  EXPECT_GT(SystemMonitor::CurrentRssBytes(), 1u << 20);
  double cpu1 = SystemMonitor::CurrentCpuSeconds();
  // Burn a little CPU.
  volatile double x = 0;
  for (int i = 0; i < 20000000; ++i) x = x + i;
  (void)x;
  double cpu2 = SystemMonitor::CurrentCpuSeconds();
  EXPECT_GE(cpu2, cpu1);
}

TEST(SystemMonitorTest, SamplesDuringWindow) {
  SystemMonitor monitor(0.01);
  monitor.Start();
  // Generous window: under heavy parallel test load the sampler thread can
  // be starved, so only a conservative sample count is asserted.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  ResourceSummary summary = monitor.Stop();
  EXPECT_GE(summary.samples, 2u);
  EXPECT_GT(summary.peak_rss_bytes, 0u);
  EXPECT_GT(summary.wall_seconds, 0.1);
}

// -------------------------------------------------------------------- core

TEST(BenchmarkCoreTest, RunsFullMatrixWithValidation) {
  Graph g = RandomUndirected(80, 200, 57);
  RunSpec spec;
  spec.platforms = {"giraph", "neo4j"};
  spec.datasets.push_back({"toy", &g, {}});
  spec.algorithms = {AlgorithmKind::kBfs, AlgorithmKind::kConn};
  spec.monitor = false;
  size_t callbacks = 0;
  auto results = RunBenchmark(spec, [&callbacks](const BenchmarkResult&) {
    ++callbacks;
  });
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 4u);
  EXPECT_EQ(callbacks, 4u);
  for (const BenchmarkResult& r : *results) {
    EXPECT_TRUE(r.status.ok()) << r.platform;
    EXPECT_TRUE(r.validation.ok()) << r.platform;
    EXPECT_GT(r.runtime_seconds, 0.0);
    EXPECT_GT(r.teps, 0.0);
  }
}

TEST(BenchmarkCoreTest, ValidationIsExplicitlyUntestedWhenNotRun) {
  // validate = false must be distinguishable from "validation passed":
  // the result carries the dedicated untested state, which is neither OK
  // nor a validation failure.
  Graph g = RandomUndirected(80, 200, 59);
  RunSpec spec;
  spec.platforms = {"reference"};
  spec.datasets.push_back({"toy", &g, {}});
  spec.algorithms = {AlgorithmKind::kBfs};
  spec.monitor = false;
  spec.validate = false;
  auto results = RunBenchmark(spec);
  ASSERT_TRUE(results.ok());
  const BenchmarkResult& r = (*results)[0];
  EXPECT_TRUE(r.status.ok());
  EXPECT_TRUE(r.validation.IsUntested());
  EXPECT_FALSE(r.validation.ok());
  EXPECT_FALSE(r.validation.IsValidationFailed());
  // A default-constructed result is untested too, not silently "passed".
  EXPECT_TRUE(BenchmarkResult{}.validation.IsUntested());
}

TEST(BenchmarkCoreTest, RecordsSingleAttemptOnCleanRuns) {
  Graph g = RandomUndirected(80, 200, 60);
  RunSpec spec;
  spec.platforms = {"reference"};
  spec.datasets.push_back({"toy", &g, {}});
  spec.algorithms = {AlgorithmKind::kBfs};
  spec.monitor = false;
  spec.max_attempts = 3;  // headroom must not inflate the count
  auto results = RunBenchmark(spec);
  ASSERT_TRUE(results.ok());
  const BenchmarkResult& r = (*results)[0];
  EXPECT_EQ(r.attempts, 1u);
  EXPECT_FALSE(r.timed_out);
  EXPECT_EQ(r.injected_faults, 0u);
  EXPECT_TRUE(r.validation.ok());
}

TEST(BenchmarkCoreTest, ReportsFailuresAsResults) {
  Graph g = RandomUndirected(2000, 6000, 58);
  RunSpec spec;
  spec.platforms = {"graphx"};
  Config config;
  config.SetInt("graphx.memory_budget_mb", 1);  // guaranteed failure
  spec.platform_config = config;
  spec.datasets.push_back({"big", &g, {}});
  spec.algorithms = {AlgorithmKind::kConn};
  spec.monitor = false;
  spec.validate = false;
  auto results = RunBenchmark(spec);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_TRUE((*results)[0].status.IsResourceExhausted());
}

TEST(BenchmarkCoreTest, RejectsEmptySpec) {
  EXPECT_FALSE(RunBenchmark(RunSpec{}).ok());
}

TEST(BenchmarkCoreTest, ReorderedDatasetValidatesInOriginalIds) {
  Graph g = RandomUndirected(120, 400, 61);
  ReorderedGraph reordered = g.ReorderByDegree();
  RunSpec spec;
  spec.platforms = {"giraph", "neo4j"};
  DatasetSpec dataset;
  dataset.name = "toy_reordered";
  dataset.graph = &reordered.graph;
  dataset.original = &g;
  dataset.new_to_old = &reordered.perm.new_to_old;
  dataset.old_to_new = &reordered.perm.old_to_new;
  dataset.params.bfs.source = 17;  // original-id space
  spec.datasets.push_back(dataset);
  spec.algorithms = {AlgorithmKind::kBfs, AlgorithmKind::kConn,
                     AlgorithmKind::kPr};
  spec.monitor = false;
  auto results = RunBenchmark(spec);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 6u);
  for (const BenchmarkResult& r : *results) {
    EXPECT_TRUE(r.status.ok()) << r.platform << "/"
                               << AlgorithmKindName(r.algorithm);
    EXPECT_TRUE(r.validation.ok())
        << r.platform << "/" << AlgorithmKindName(r.algorithm) << ": "
        << r.validation.ToString();
  }
}

TEST(BenchmarkCoreTest, ReorderedDatasetRefusesIdSeededAlgorithms) {
  // CD and EVO seed their dynamics with vertex ids: on a reordered dataset
  // the cell must be *recorded* as InvalidArgument, not silently run.
  Graph g = RandomUndirected(60, 150, 62);
  ReorderedGraph reordered = g.ReorderByDegree();
  RunSpec spec;
  spec.platforms = {"reference"};
  DatasetSpec dataset;
  dataset.name = "toy_reordered";
  dataset.graph = &reordered.graph;
  dataset.original = &g;
  dataset.new_to_old = &reordered.perm.new_to_old;
  dataset.old_to_new = &reordered.perm.old_to_new;
  spec.datasets.push_back(dataset);
  spec.algorithms = {AlgorithmKind::kCd, AlgorithmKind::kEvo,
                     AlgorithmKind::kBfs};
  spec.monitor = false;
  auto results = RunBenchmark(spec);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 3u);
  EXPECT_TRUE((*results)[0].status.IsInvalidArgument());
  EXPECT_TRUE((*results)[1].status.IsInvalidArgument());
  EXPECT_TRUE((*results)[2].status.ok());
  EXPECT_TRUE((*results)[2].validation.ok());
}

TEST(BenchmarkCoreTest, RejectsReorderedDatasetWithBrokenPermutation) {
  Graph g = RandomUndirected(30, 60, 63);
  ReorderedGraph reordered = g.ReorderByDegree();
  std::vector<VertexId> short_perm(g.num_vertices() - 1);
  RunSpec spec;
  spec.platforms = {"reference"};
  DatasetSpec dataset;
  dataset.name = "broken";
  dataset.graph = &reordered.graph;
  dataset.original = &g;
  dataset.new_to_old = &short_perm;
  dataset.old_to_new = &reordered.perm.old_to_new;
  spec.datasets.push_back(dataset);
  spec.algorithms = {AlgorithmKind::kBfs};
  EXPECT_TRUE(RunBenchmark(spec).status().IsInvalidArgument());
}

// ------------------------------------------------------------------ report

std::vector<BenchmarkResult> FakeResults() {
  BenchmarkResult ok;
  ok.platform = "giraph";
  ok.graph = "g500";
  ok.algorithm = AlgorithmKind::kBfs;
  ok.runtime_seconds = 86.0;
  ok.teps = 1.6e7;
  ok.traversed_edges = 1000;
  BenchmarkResult failed;
  failed.platform = "graphx";
  failed.graph = "g500";
  failed.algorithm = AlgorithmKind::kBfs;
  failed.status = Status::ResourceExhausted("oom");
  return {ok, failed};
}

TEST(ReportTest, RuntimeTableMarksFailures) {
  std::string table = RenderRuntimeTable(FakeResults());
  EXPECT_NE(table.find("BFS"), std::string::npos);
  EXPECT_NE(table.find("g500/giraph"), std::string::npos);
  // "Missing values indicate failures."
  EXPECT_NE(table.find(" -"), std::string::npos);
}

TEST(ReportTest, TepsTable) {
  std::string table = RenderTepsTable(FakeResults(), AlgorithmKind::kBfs);
  EXPECT_NE(table.find("kTEPS"), std::string::npos);
  EXPECT_NE(table.find("16000"), std::string::npos);
}

TEST(ReportTest, FullReportIncludesConfigAndDetails) {
  Config config;
  config.Set("platforms", "giraph,graphx");
  std::string report = RenderFullReport(config, FakeResults());
  EXPECT_NE(report.find("platforms = giraph,graphx"), std::string::npos);
  EXPECT_NE(report.find("resource-exhausted"), std::string::npos);
}

TEST(ReportTest, CsvAndJsonlOutputs) {
  auto dir = TempDir::Create("gly-report");
  ASSERT_TRUE(dir.ok());
  auto results = FakeResults();
  ASSERT_TRUE(WriteResultsCsv(results, dir->File("r.csv")).ok());
  ASSERT_TRUE(
      AppendResultsDatabase(results, Config(), dir->File("db.jsonl")).ok());
  ASSERT_TRUE(
      AppendResultsDatabase(results, Config(), dir->File("db.jsonl")).ok());
  std::ifstream csv(dir->File("r.csv"));
  std::string line;
  int csv_lines = 0;
  while (std::getline(csv, line)) ++csv_lines;
  EXPECT_EQ(csv_lines, 3);  // header + 2 rows
  std::ifstream db(dir->File("db.jsonl"));
  int db_lines = 0;
  while (std::getline(db, line)) ++db_lines;
  EXPECT_EQ(db_lines, 4);  // appended twice
}

TEST(ReportTest, JsonEscapesSpecials) {
  BenchmarkResult r;
  r.platform = "giraph";
  r.graph = "we\"ird\ngraph";
  r.algorithm = AlgorithmKind::kCd;
  std::string json = ResultToJson(r);
  EXPECT_NE(json.find("we\\\"ird\\ngraph"), std::string::npos);
}

}  // namespace
}  // namespace gly::harness
