// Tests for the graph database: page cache, WAL + crash recovery, record
// store, transactions, properties, traversal, and the algorithms.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/fault_injection.h"

#include "common/random.h"
#include "common/temp_dir.h"
#include "graphdb/algorithms.h"
#include "graphdb/page_cache.h"
#include "graphdb/store.h"
#include "graphdb/traversal.h"
#include "graphdb/wal.h"
#include "harness/validator.h"

namespace gly::graphdb {
namespace {

Graph RandomUndirected(VertexId n, size_t m, uint64_t seed) {
  EdgeList edges(n);
  Rng rng(seed);
  while (edges.num_edges() < m) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(n));
    VertexId b = static_cast<VertexId>(rng.NextBounded(n));
    if (a != b) edges.Add(a, b);
  }
  edges.DeduplicateAndDropLoops();
  return GraphBuilder::Undirected(edges).ValueOrDie();
}

// --------------------------------------------------------------- PageCache

TEST(PageCacheTest, ReadBeyondEofIsZeros) {
  auto dir = TempDir::Create("gly-db");
  ASSERT_TRUE(dir.ok());
  PageCache cache(1 << 20);
  auto file = cache.OpenFile(dir->File("a.db"));
  ASSERT_TRUE(file.ok());
  char buf[16];
  ASSERT_TRUE(cache.Read(*file, 1 << 16, buf, sizeof(buf)).ok());
  for (char c : buf) EXPECT_EQ(c, 0);
}

TEST(PageCacheTest, WriteReadRoundTrip) {
  auto dir = TempDir::Create("gly-db");
  ASSERT_TRUE(dir.ok());
  PageCache cache(1 << 20);
  auto file = cache.OpenFile(dir->File("a.db"));
  ASSERT_TRUE(file.ok());
  const char data[] = "hello page cache";
  ASSERT_TRUE(cache.Write(*file, 12345, data, sizeof(data)).ok());
  char buf[sizeof(data)];
  ASSERT_TRUE(cache.Read(*file, 12345, buf, sizeof(buf)).ok());
  EXPECT_STREQ(buf, data);
}

TEST(PageCacheTest, CrossPageBoundaryAccess) {
  auto dir = TempDir::Create("gly-db");
  ASSERT_TRUE(dir.ok());
  PageCache cache(1 << 20);
  auto file = cache.OpenFile(dir->File("a.db"));
  ASSERT_TRUE(file.ok());
  std::vector<char> data(kPageSize, 'x');
  ASSERT_TRUE(
      cache.Write(*file, kPageSize - 100, data.data(), data.size()).ok());
  std::vector<char> buf(data.size());
  ASSERT_TRUE(
      cache.Read(*file, kPageSize - 100, buf.data(), buf.size()).ok());
  EXPECT_EQ(buf, data);
}

TEST(PageCacheTest, EvictsAndWritesBackUnderPressure) {
  auto dir = TempDir::Create("gly-db");
  ASSERT_TRUE(dir.ok());
  {
    PageCache cache(4 * kPageSize);  // 4-page cache
    auto file = cache.OpenFile(dir->File("a.db"));
    ASSERT_TRUE(file.ok());
    // Write 32 pages: forces eviction with writeback.
    for (uint64_t p = 0; p < 32; ++p) {
      uint64_t value = p * 7;
      ASSERT_TRUE(
          cache.Write(*file, p * kPageSize, &value, sizeof(value)).ok());
    }
    EXPECT_GT(cache.stats().evictions, 0u);
    EXPECT_LE(cache.resident_pages(), 4u);
    // Read everything back through the same (small) cache.
    for (uint64_t p = 0; p < 32; ++p) {
      uint64_t value = 0;
      ASSERT_TRUE(
          cache.Read(*file, p * kPageSize, &value, sizeof(value)).ok());
      EXPECT_EQ(value, p * 7);
    }
    ASSERT_TRUE(cache.Flush().ok());
  }
  // And through a fresh cache (data durably on disk).
  PageCache cache2(1 << 20);
  auto file2 = cache2.OpenFile(dir->File("a.db"));
  ASSERT_TRUE(file2.ok());
  uint64_t value = 0;
  ASSERT_TRUE(cache2.Read(*file2, 5 * kPageSize, &value, sizeof(value)).ok());
  EXPECT_EQ(value, 35u);
}

TEST(PageCacheTest, HitRateImprovesOnRepeatedAccess) {
  auto dir = TempDir::Create("gly-db");
  ASSERT_TRUE(dir.ok());
  PageCache cache(1 << 20);
  auto file = cache.OpenFile(dir->File("a.db"));
  ASSERT_TRUE(file.ok());
  char buf[8];
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(cache.Read(*file, 0, buf, sizeof(buf)).ok());
  }
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 99u);
}

// --------------------------------------------------------------------- WAL

TEST(WalTest, AppendAndReadAll) {
  auto dir = TempDir::Create("gly-db");
  ASSERT_TRUE(dir.ok());
  auto wal = Wal::Open(dir->File("wal.log"));
  ASSERT_TRUE(wal.ok());
  std::vector<WalChange> tx1 = {{0, 100, {'a', 'b'}}};
  std::vector<WalChange> tx2 = {{1, 200, {'c'}}, {0, 300, {'d', 'e', 'f'}}};
  ASSERT_TRUE(wal->Append(tx1).ok());
  ASSERT_TRUE(wal->Append(tx2).ok());
  auto entries = wal->ReadAll();
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0][0].offset, 100u);
  EXPECT_EQ((*entries)[1][1].bytes.size(), 3u);
}

TEST(WalTest, IgnoresTornTail) {
  auto dir = TempDir::Create("gly-db");
  ASSERT_TRUE(dir.ok());
  {
    auto wal = Wal::Open(dir->File("wal.log"));
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append({{0, 1, {'x'}}}).ok());
    ASSERT_TRUE(wal->Append({{0, 2, {'y'}}}).ok());
  }
  // Corrupt the tail: truncate into the second entry.
  auto size = std::filesystem::file_size(dir->File("wal.log"));
  std::filesystem::resize_file(dir->File("wal.log"), size - 3);
  auto wal = Wal::Open(dir->File("wal.log"));
  ASSERT_TRUE(wal.ok());
  auto entries = wal->ReadAll();
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 1u);  // only the intact first entry
}

TEST(WalTest, TruncateEmptiesLog) {
  auto dir = TempDir::Create("gly-db");
  ASSERT_TRUE(dir.ok());
  auto wal = Wal::Open(dir->File("wal.log"));
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append({{0, 1, {'x'}}}).ok());
  ASSERT_TRUE(wal->Truncate().ok());
  auto entries = wal->ReadAll();
  ASSERT_TRUE(entries.ok());
  EXPECT_TRUE(entries->empty());
}

TEST(WalTest, RecoverTruncatesTornTailSoNewAppendsStayVisible) {
  auto dir = TempDir::Create("gly-db");
  ASSERT_TRUE(dir.ok());
  std::string path = dir->File("wal.log");
  {
    auto wal = Wal::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append({{0, 1, {'x'}}}).ok());
    ASSERT_TRUE(wal->Append({{0, 2, {'y'}}}).ok());
  }
  // Tear the second entry (a crash mid-append).
  auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 3);

  auto wal = Wal::Open(path);
  ASSERT_TRUE(wal.ok());
  auto recovery = wal->Recover();
  ASSERT_TRUE(recovery.ok());
  ASSERT_EQ(recovery->entries.size(), 1u);
  EXPECT_GT(recovery->truncated_bytes, 0u);
  // The torn bytes are physically gone, not just skipped.
  EXPECT_EQ(std::filesystem::file_size(path), recovery->valid_bytes);

  // This is why truncation matters: an append landing *behind* a merely
  // ignored torn tail would be unreachable for every future reader.
  ASSERT_TRUE(wal->Append({{0, 3, {'z'}}}).ok());
  auto entries = wal->ReadAll();
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[1][0].offset, 3u);
}

TEST(WalTest, BogusFrameLengthIsATornTailNotAnAllocation) {
  auto dir = TempDir::Create("gly-db");
  ASSERT_TRUE(dir.ok());
  std::string path = dir->File("wal.log");
  {
    auto wal = Wal::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append({{0, 1, {'x'}}}).ok());
  }
  // Append a frame header claiming ~4 GB of payload: the scanner must
  // treat it as torn (len exceeds the file) instead of allocating.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    uint32_t len = 0xF0000000u;
    uint32_t crc = 0;
    out.write(reinterpret_cast<const char*>(&len), sizeof(len));
    out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    out << "junk";
  }
  auto wal = Wal::Open(path);
  ASSERT_TRUE(wal.ok());
  auto recovery = wal->Recover();
  ASSERT_TRUE(recovery.ok());
  EXPECT_EQ(recovery->entries.size(), 1u);
  EXPECT_EQ(recovery->truncated_bytes, 12u);
}

#ifndef GLY_DISABLE_FAULT_POINTS

TEST(WalTest, InjectedAppendFailureIsTransient) {
  auto dir = TempDir::Create("gly-db");
  ASSERT_TRUE(dir.ok());
  auto wal = Wal::Open(dir->File("wal.log"));
  ASSERT_TRUE(wal.ok());
  fault::FaultPlan plan(0xDB1);
  plan.Add({.site = "graphdb.wal.append", .kind = fault::FaultKind::kIOError,
            .max_triggers = 1});
  {
    fault::ScopedFaultPlan active(&plan);
    EXPECT_FALSE(wal->Append({{0, 1, {'x'}}}).ok());
    ASSERT_TRUE(wal->Append({{0, 2, {'y'}}}).ok());  // transient: next works
  }
  auto entries = wal->ReadAll();
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);  // the failed append left no frame behind
  EXPECT_EQ((*entries)[0][0].offset, 2u);
}

#endif  // GLY_DISABLE_FAULT_POINTS

TEST(Crc32cTest, DetectsCorruption) {
  const char a[] = "hello";
  const char b[] = "hellp";
  EXPECT_NE(Crc32c(a, 5), Crc32c(b, 5));
  EXPECT_EQ(Crc32c(a, 5), Crc32c(a, 5));
}

// ------------------------------------------------------------------- store

TEST(GraphStoreTest, BulkImportAndNeighbors) {
  auto dir = TempDir::Create("gly-db");
  ASSERT_TRUE(dir.ok());
  StoreConfig config;
  config.directory = dir->File("store");
  auto store = GraphStore::Open(config);
  ASSERT_TRUE(store.ok());
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(0, 2);
  edges.Add(1, 2);
  ASSERT_TRUE((*store)->BulkImport(edges).ok());
  EXPECT_EQ((*store)->node_count(), 3u);
  EXPECT_EQ((*store)->relationship_count(), 3u);

  std::vector<VertexId> nbrs;
  ASSERT_TRUE((*store)->CollectNeighbors(0, false, &nbrs).ok());
  std::sort(nbrs.begin(), nbrs.end());
  EXPECT_EQ(nbrs, (std::vector<VertexId>{1, 2}));
  ASSERT_TRUE((*store)->CollectNeighbors(2, true, &nbrs).ok());
  EXPECT_TRUE(nbrs.empty());  // 2 has only incoming relationships
  ASSERT_TRUE((*store)->CollectNeighbors(2, false, &nbrs).ok());
  EXPECT_EQ(nbrs.size(), 2u);
}

TEST(GraphStoreTest, TransactionsCreateNodesAndRels) {
  auto dir = TempDir::Create("gly-db");
  ASSERT_TRUE(dir.ok());
  StoreConfig config;
  config.directory = dir->File("store");
  auto store = GraphStore::Open(config);
  ASSERT_TRUE(store.ok());
  auto tx = (*store)->Begin();
  auto a = tx.CreateNode();
  auto b = tx.CreateNode();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(tx.CreateRelationship(*a, *b).ok());
  ASSERT_TRUE(tx.SetNodeProperty(*a, 7, 42).ok());
  ASSERT_TRUE(tx.Commit().ok());

  EXPECT_EQ((*store)->node_count(), 2u);
  EXPECT_EQ((*store)->relationship_count(), 1u);
  EXPECT_EQ(*(*store)->GetNodeProperty(*a, 7), 42);
  EXPECT_TRUE((*store)->GetNodeProperty(*b, 7).status().IsNotFound());
  std::vector<VertexId> nbrs;
  ASSERT_TRUE((*store)->CollectNeighbors(*a, true, &nbrs).ok());
  EXPECT_EQ(nbrs, (std::vector<VertexId>{*b}));
}

TEST(GraphStoreTest, UncommittedTransactionIsInvisible) {
  auto dir = TempDir::Create("gly-db");
  ASSERT_TRUE(dir.ok());
  StoreConfig config;
  config.directory = dir->File("store");
  auto store = GraphStore::Open(config);
  ASSERT_TRUE(store.ok());
  {
    auto tx = (*store)->Begin();
    ASSERT_TRUE(tx.CreateNode().ok());
    // dropped without Commit
  }
  EXPECT_EQ((*store)->node_count(), 0u);
}

TEST(GraphStoreTest, PropertyUpdateInPlace) {
  auto dir = TempDir::Create("gly-db");
  ASSERT_TRUE(dir.ok());
  StoreConfig config;
  config.directory = dir->File("store");
  auto store = GraphStore::Open(config);
  ASSERT_TRUE(store.ok());
  auto tx = (*store)->Begin();
  auto node = tx.CreateNode();
  ASSERT_TRUE(tx.SetNodeProperty(*node, 1, 10).ok());
  ASSERT_TRUE(tx.SetNodeProperty(*node, 2, 20).ok());
  ASSERT_TRUE(tx.SetNodeProperty(*node, 1, 11).ok());  // overwrite
  ASSERT_TRUE(tx.Commit().ok());
  EXPECT_EQ(*(*store)->GetNodeProperty(*node, 1), 11);
  EXPECT_EQ(*(*store)->GetNodeProperty(*node, 2), 20);
}

TEST(GraphStoreTest, CommittedDataSurvivesReopenWithoutCheckpoint) {
  // Crash-recovery: commit (WAL fsync) but never checkpoint; the page cache
  // contents are lost with the process, and recovery must replay the WAL.
  auto dir = TempDir::Create("gly-db");
  ASSERT_TRUE(dir.ok());
  StoreConfig config;
  config.directory = dir->File("store");
  VertexId a = 0;
  VertexId b = 0;
  {
    auto store = GraphStore::Open(config);
    ASSERT_TRUE(store.ok());
    auto tx = (*store)->Begin();
    a = *tx.CreateNode();
    b = *tx.CreateNode();
    ASSERT_TRUE(tx.CreateRelationship(a, b).ok());
    ASSERT_TRUE(tx.SetNodeProperty(a, 3, 99).ok());
    ASSERT_TRUE(tx.Commit().ok());
    // NO Checkpoint(); destructor flushes best-effort, but recovery must
    // not depend on it — delete the store files' pages by reopening fresh.
  }
  auto store = GraphStore::Open(config);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->node_count(), 2u);
  EXPECT_EQ((*store)->relationship_count(), 1u);
  EXPECT_EQ(*(*store)->GetNodeProperty(a, 3), 99);
  std::vector<VertexId> nbrs;
  ASSERT_TRUE((*store)->CollectNeighbors(a, true, &nbrs).ok());
  EXPECT_EQ(nbrs, (std::vector<VertexId>{b}));
}

#ifndef GLY_DISABLE_FAULT_POINTS

TEST(GraphStoreTest, CrashDuringCheckpointWritebackIsRecoverable) {
  // A checkpoint is flush-then-truncate; a crash inside the page-cache
  // writeback aborts it *before* the WAL truncate. Reopening must replay
  // the intact WAL and reproduce the committed state.
  auto dir = TempDir::Create("gly-db");
  ASSERT_TRUE(dir.ok());
  StoreConfig config;
  config.directory = dir->File("store");
  VertexId a = 0;
  VertexId b = 0;
  {
    auto store = GraphStore::Open(config);
    ASSERT_TRUE(store.ok());
    auto tx = (*store)->Begin();
    a = *tx.CreateNode();
    b = *tx.CreateNode();
    ASSERT_TRUE(tx.CreateRelationship(a, b).ok());
    ASSERT_TRUE(tx.SetNodeProperty(a, 3, 99).ok());
    ASSERT_TRUE(tx.Commit().ok());

    fault::FaultPlan plan(0xDB2);
    plan.Add({.site = "graphdb.pagecache.writeback",
              .kind = fault::FaultKind::kCrash, .max_triggers = 1});
    fault::ScopedFaultPlan active(&plan);
    EXPECT_FALSE((*store)->Checkpoint().ok());
    EXPECT_EQ(plan.TotalTriggered(), 1u);
  }
  auto store = GraphStore::Open(config);
  ASSERT_TRUE(store.ok());
  EXPECT_GT((*store)->wal_entries_recovered(), 0u);
  EXPECT_EQ((*store)->node_count(), 2u);
  EXPECT_EQ((*store)->relationship_count(), 1u);
  EXPECT_EQ(*(*store)->GetNodeProperty(a, 3), 99);
  std::vector<VertexId> nbrs;
  ASSERT_TRUE((*store)->CollectNeighbors(a, true, &nbrs).ok());
  EXPECT_EQ(nbrs, (std::vector<VertexId>{b}));
}

#endif  // GLY_DISABLE_FAULT_POINTS

TEST(GraphStoreTest, ReopenAfterTornWalTailSurfacesTruncationCounters) {
  auto dir = TempDir::Create("gly-db");
  ASSERT_TRUE(dir.ok());
  StoreConfig config;
  config.directory = dir->File("store");
  VertexId a = 0;
  {
    auto store = GraphStore::Open(config);
    ASSERT_TRUE(store.ok());
    auto tx = (*store)->Begin();
    a = *tx.CreateNode();
    ASSERT_TRUE(tx.SetNodeProperty(a, 1, 7).ok());
    ASSERT_TRUE(tx.Commit().ok());
    auto tx2 = (*store)->Begin();
    ASSERT_TRUE(tx2.CreateNode().ok());
    ASSERT_TRUE(tx2.Commit().ok());
  }
  // Tear into the last committed entry: that transaction is lost, but the
  // store must reopen cleanly with everything before it.
  std::string wal_path = config.directory + "/wal.log";
  auto size = std::filesystem::file_size(wal_path);
  std::filesystem::resize_file(wal_path, size - 2);

  auto store = GraphStore::Open(config);
  ASSERT_TRUE(store.ok());
  EXPECT_GT((*store)->wal_bytes_truncated(), 0u);
  EXPECT_EQ(*(*store)->GetNodeProperty(a, 1), 7);
}

TEST(GraphStoreTest, WorksWithTinyPageCache) {
  // Store much larger than the cache: pure eviction traffic, still correct.
  auto dir = TempDir::Create("gly-db");
  ASSERT_TRUE(dir.ok());
  StoreConfig config;
  config.directory = dir->File("store");
  config.page_cache_bytes = 4 * kPageSize;
  auto store = GraphStore::Open(config);
  ASSERT_TRUE(store.ok());
  Graph g = RandomUndirected(500, 2000, 41);
  ASSERT_TRUE((*store)->BulkImport(g.ToEdgeList()).ok());
  // Spot-check neighborhoods against the CSR graph.
  std::vector<VertexId> nbrs;
  for (VertexId v = 0; v < 500; v += 37) {
    ASSERT_TRUE((*store)->CollectNeighbors(v, false, &nbrs).ok());
    std::sort(nbrs.begin(), nbrs.end());
    auto expected_span = g.OutNeighbors(v);
    std::vector<VertexId> expected(expected_span.begin(), expected_span.end());
    EXPECT_EQ(nbrs, expected) << "vertex " << v;
  }
  EXPECT_GT((*store)->cache_stats().evictions, 0u);
}

TEST(GraphStoreTest, DeleteRelationshipUnlinksBothChains) {
  auto dir = TempDir::Create("gly-db");
  ASSERT_TRUE(dir.ok());
  StoreConfig config;
  config.directory = dir->File("store");
  auto store = GraphStore::Open(config);
  ASSERT_TRUE(store.ok());
  // Triangle 0-1, 0-2, 1-2; delete 0-2.
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(0, 2);
  edges.Add(1, 2);
  ASSERT_TRUE((*store)->BulkImport(edges).ok());
  auto tx = (*store)->Begin();
  ASSERT_TRUE(tx.DeleteRelationship(1).ok());  // bulk import id order
  ASSERT_TRUE(tx.Commit().ok());
  EXPECT_EQ((*store)->relationship_count(), 2u);
  std::vector<VertexId> nbrs;
  ASSERT_TRUE((*store)->CollectNeighbors(0, false, &nbrs).ok());
  EXPECT_EQ(nbrs, (std::vector<VertexId>{1}));
  ASSERT_TRUE((*store)->CollectNeighbors(2, false, &nbrs).ok());
  EXPECT_EQ(nbrs, (std::vector<VertexId>{1}));
}

TEST(GraphStoreTest, DeleteRelationshipErrors) {
  auto dir = TempDir::Create("gly-db");
  ASSERT_TRUE(dir.ok());
  StoreConfig config;
  config.directory = dir->File("store");
  auto store = GraphStore::Open(config);
  ASSERT_TRUE(store.ok());
  EdgeList edges;
  edges.Add(0, 1);
  ASSERT_TRUE((*store)->BulkImport(edges).ok());
  {
    auto tx = (*store)->Begin();
    EXPECT_TRUE(tx.DeleteRelationship(99).IsNotFound());
    ASSERT_TRUE(tx.DeleteRelationship(0).ok());
    // Double delete within the same transaction is caught via shadow reads.
    EXPECT_TRUE(tx.DeleteRelationship(0).IsNotFound());
    ASSERT_TRUE(tx.Commit().ok());
  }
  auto tx = (*store)->Begin();
  EXPECT_TRUE(tx.DeleteRelationship(0).IsNotFound());
}

TEST(GraphStoreTest, DeleteSurvivesRecovery) {
  auto dir = TempDir::Create("gly-db");
  ASSERT_TRUE(dir.ok());
  StoreConfig config;
  config.directory = dir->File("store");
  {
    auto store = GraphStore::Open(config);
    ASSERT_TRUE(store.ok());
    EdgeList edges;
    edges.Add(0, 1);
    edges.Add(1, 2);
    ASSERT_TRUE((*store)->BulkImport(edges).ok());
    auto tx = (*store)->Begin();
    ASSERT_TRUE(tx.DeleteRelationship(0).ok());
    ASSERT_TRUE(tx.Commit().ok());
    // No checkpoint: recovery must replay the deletion from the WAL.
  }
  auto store = GraphStore::Open(config);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->relationship_count(), 1u);
  std::vector<VertexId> nbrs;
  ASSERT_TRUE((*store)->CollectNeighbors(0, false, &nbrs).ok());
  EXPECT_TRUE(nbrs.empty());
  ASSERT_TRUE((*store)->CollectNeighbors(1, false, &nbrs).ok());
  EXPECT_EQ(nbrs, (std::vector<VertexId>{2}));
}

TEST(GraphStoreTest, DeleteMiddleOfLongChain) {
  // Vertex 0 has many relationships; delete one from the middle of its
  // chain and verify the walk-based unlink.
  auto dir = TempDir::Create("gly-db");
  ASSERT_TRUE(dir.ok());
  StoreConfig config;
  config.directory = dir->File("store");
  auto store = GraphStore::Open(config);
  ASSERT_TRUE(store.ok());
  EdgeList edges;
  for (VertexId v = 1; v <= 10; ++v) edges.Add(0, v);
  ASSERT_TRUE((*store)->BulkImport(edges).ok());
  auto tx = (*store)->Begin();
  ASSERT_TRUE(tx.DeleteRelationship(4).ok());  // edge 0-5
  ASSERT_TRUE(tx.Commit().ok());
  std::vector<VertexId> nbrs;
  ASSERT_TRUE((*store)->CollectNeighbors(0, false, &nbrs).ok());
  std::sort(nbrs.begin(), nbrs.end());
  EXPECT_EQ(nbrs.size(), 9u);
  EXPECT_TRUE(std::find(nbrs.begin(), nbrs.end(), 5u) == nbrs.end());
}

// --------------------------------------------------------------- traversal

TEST(TraversalTest, BfsOrderDepths) {
  auto dir = TempDir::Create("gly-db");
  ASSERT_TRUE(dir.ok());
  StoreConfig config;
  config.directory = dir->File("store");
  auto store = GraphStore::Open(config);
  ASSERT_TRUE(store.ok());
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(1, 2);
  edges.Add(2, 3);
  ASSERT_TRUE((*store)->BulkImport(edges).ok());
  std::vector<uint32_t> depth(4, 99);
  TraversalStats stats;
  ASSERT_TRUE(Traverse(store->get(), 0, TraversalOrder::kBreadthFirst,
                       Expand::kBoth,
                       [&depth](VertexId v, uint32_t d) {
                         depth[v] = d;
                         return true;
                       },
                       &stats)
                  .ok());
  EXPECT_EQ(depth, (std::vector<uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(stats.nodes_visited, 4u);
  EXPECT_EQ(stats.max_depth, 3u);
}

TEST(TraversalTest, PruningStopsExpansion) {
  auto dir = TempDir::Create("gly-db");
  ASSERT_TRUE(dir.ok());
  StoreConfig config;
  config.directory = dir->File("store");
  auto store = GraphStore::Open(config);
  ASSERT_TRUE(store.ok());
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(1, 2);
  ASSERT_TRUE((*store)->BulkImport(edges).ok());
  size_t visited = 0;
  ASSERT_TRUE(Traverse(store->get(), 0, TraversalOrder::kBreadthFirst,
                       Expand::kBoth,
                       [&visited](VertexId, uint32_t d) {
                         ++visited;
                         return d < 1;  // prune below depth 1
                       })
                  .ok());
  EXPECT_EQ(visited, 2u);  // 0 and 1; 2 never discovered
}

TEST(TraversalTest, RejectsBadSeed) {
  auto dir = TempDir::Create("gly-db");
  ASSERT_TRUE(dir.ok());
  StoreConfig config;
  config.directory = dir->File("store");
  auto store = GraphStore::Open(config);
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(Traverse(store->get(), 5, TraversalOrder::kBreadthFirst,
                        Expand::kBoth, [](VertexId, uint32_t) { return true; })
                   .ok());
}

// -------------------------------------------------------------- algorithms

DbPlatformConfig DbConfig(const TempDir& dir) {
  DbPlatformConfig config;
  config.store_dir = dir.path() + "/store";
  return config;
}

TEST(GraphDbAlgorithmsTest, AllAlgorithmsMatchReference) {
  Graph g = RandomUndirected(150, 450, 43);
  AlgorithmParams params;
  params.bfs.source = 4;
  params.cd = CdParams{4, 0.05};
  params.evo.num_new_vertices = 6;
  for (AlgorithmKind kind :
       {AlgorithmKind::kBfs, AlgorithmKind::kConn, AlgorithmKind::kCd,
        AlgorithmKind::kStats, AlgorithmKind::kEvo}) {
    auto dir = TempDir::Create("gly-db");
    ASSERT_TRUE(dir.ok());
    auto out = RunAlgorithm(DbConfig(*dir), g, kind, params);
    ASSERT_TRUE(out.ok()) << AlgorithmKindName(kind) << ": "
                          << out.status().ToString();
    EXPECT_TRUE(harness::ValidateOutput(g, kind, params, *out).ok())
        << AlgorithmKindName(kind);
  }
}

TEST(GraphDbAlgorithmsTest, FailsWhenGraphExceedsMemory) {
  Graph g = RandomUndirected(2000, 8000, 44);
  auto dir = TempDir::Create("gly-db");
  ASSERT_TRUE(dir.ok());
  DbPlatformConfig config = DbConfig(*dir);
  config.memory_budget_bytes = 10 << 10;  // 10 KiB: store can't fit
  auto out = RunAlgorithm(config, g, AlgorithmKind::kBfs, {});
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsResourceExhausted());
}

TEST(GraphDbAlgorithmsTest, DirectedBfs) {
  EdgeList edges;
  Rng rng(45);
  for (int i = 0; i < 300; ++i) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(80));
    VertexId b = static_cast<VertexId>(rng.NextBounded(80));
    if (a != b) edges.Add(a, b);
  }
  Graph g = GraphBuilder::Directed(edges).ValueOrDie();
  AlgorithmParams params;
  params.bfs.source = 0;
  auto dir = TempDir::Create("gly-db");
  ASSERT_TRUE(dir.ok());
  auto out = RunAlgorithm(DbConfig(*dir), g, AlgorithmKind::kBfs, params);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(
      harness::ValidateOutput(g, AlgorithmKind::kBfs, params, *out).ok());
}

}  // namespace
}  // namespace gly::graphdb
