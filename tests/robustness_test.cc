// Differential robustness tests: every platform runs under injected
// worker crashes, transient I/O errors, and stalls, and the harness must
// (a) record every cell's outcome — never hang, never kill the process —
// and (b) recover to a clean, validated result when the fault is
// transient or the plan is removed. This is the testable form of the
// paper's "Missing values indicate failures".

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/random.h"
#include "harness/core.h"
#include "harness/validator.h"

namespace gly::harness {
namespace {

#ifdef GLY_DISABLE_FAULT_POINTS

TEST(RobustnessTest, FaultPointsCompiledOut) {
  GTEST_SKIP() << "built with GLY_FAULT_POINTS=OFF; engine fault sites are "
                  "no-ops, so the robustness scenarios cannot run";
}

#else

Graph RandomUndirected(VertexId n, size_t m, uint64_t seed) {
  EdgeList edges(n);
  Rng rng(seed);
  while (edges.num_edges() < m) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(n));
    VertexId b = static_cast<VertexId>(rng.NextBounded(n));
    if (a != b) edges.Add(a, b);
  }
  return GraphBuilder::Undirected(edges).ValueOrDie();
}

// All fault sites of one platform ("pregel.*" etc.).
std::string SitePrefix(const std::string& platform) {
  if (platform == "giraph") return "pregel.*";
  if (platform == "graphx") return "dataflow.*";
  if (platform == "mapreduce") return "mapreduce.*";
  if (platform == "neo4j") return "graphdb.*";
  return "*";
}

const std::vector<std::string> kFaultablePlatforms = {"giraph", "graphx",
                                                      "mapreduce", "neo4j"};

RunSpec BaseSpec(const Graph* graph, const std::string& platform) {
  RunSpec spec;
  spec.platforms = {platform};
  spec.datasets.push_back({"toy", graph, {}});
  spec.algorithms = {AlgorithmKind::kBfs};
  spec.monitor = false;
  return spec;
}

// ---------------------------------------------------- crashes are recorded

TEST(RobustnessTest, InjectedCrashIsARecordedFailureOnEveryPlatform) {
  Graph g = RandomUndirected(100, 250, 71);
  for (const std::string& platform : kFaultablePlatforms) {
    fault::FaultPlan plan(0xC0FFEE);
    plan.Add({.site = SitePrefix(platform), .kind = fault::FaultKind::kCrash,
              .probability = 1.0});
    RunSpec spec = BaseSpec(&g, platform);
    spec.fault_plan = &plan;
    auto results = RunBenchmark(spec);
    // The harness survives and reports the cell as failed.
    ASSERT_TRUE(results.ok()) << platform;
    ASSERT_EQ(results->size(), 1u) << platform;
    const BenchmarkResult& r = (*results)[0];
    EXPECT_FALSE(r.status.ok()) << platform;
    EXPECT_TRUE(r.validation.IsUntested()) << platform;
    EXPECT_GT(plan.TotalTriggered(), 0u) << platform;
  }
}

TEST(RobustnessTest, TransientIOErrorIsRetryableOnEveryPlatform) {
  Graph g = RandomUndirected(100, 250, 72);
  for (const std::string& platform : kFaultablePlatforms) {
    fault::FaultPlan plan(0xBEEF);
    plan.Add({.site = SitePrefix(platform),
              .kind = fault::FaultKind::kIOError, .max_triggers = 1});
    RunSpec spec = BaseSpec(&g, platform);
    spec.fault_plan = &plan;
    spec.max_attempts = 3;
    auto results = RunBenchmark(spec);
    ASSERT_TRUE(results.ok()) << platform;
    const BenchmarkResult& r = (*results)[0];
    // One transient fault, bounded retry: the cell ends up clean and the
    // fault-free re-execution validates against the reference.
    EXPECT_TRUE(r.status.ok()) << platform << ": " << r.status.ToString();
    EXPECT_TRUE(r.validation.ok()) << platform << ": "
                                   << r.validation.ToString();
    EXPECT_EQ(plan.TotalTriggered(), 1u) << platform;
  }
}

TEST(RobustnessTest, RetryCountsAreRecorded) {
  // giraph's pregel.run.start is hit exactly once per execution attempt,
  // so a single transient crash there pins attempts == 2.
  Graph g = RandomUndirected(100, 250, 73);
  fault::FaultPlan plan(0xAB);
  plan.Add({.site = "pregel.run.start", .kind = fault::FaultKind::kCrash,
            .max_triggers = 1});
  RunSpec spec = BaseSpec(&g, "giraph");
  spec.fault_plan = &plan;
  spec.max_attempts = 3;
  spec.retry_backoff_s = 0.001;
  auto results = RunBenchmark(spec);
  ASSERT_TRUE(results.ok());
  const BenchmarkResult& r = (*results)[0];
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_TRUE(r.validation.ok());
  EXPECT_EQ(r.attempts, 2u);
  EXPECT_EQ(r.injected_faults, 1u);
}

TEST(RobustnessTest, RetriesAreBounded) {
  // A permanent crash must consume exactly max_attempts, then surface.
  Graph g = RandomUndirected(100, 250, 74);
  fault::FaultPlan plan(0xAC);
  plan.Add({.site = "pregel.run.start", .kind = fault::FaultKind::kCrash});
  RunSpec spec = BaseSpec(&g, "giraph");
  spec.fault_plan = &plan;
  spec.max_attempts = 3;
  auto results = RunBenchmark(spec);
  ASSERT_TRUE(results.ok());
  const BenchmarkResult& r = (*results)[0];
  EXPECT_TRUE(r.status.IsInternal());
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_EQ(r.injected_faults, 3u);
}

// ----------------------------------------------------------------- timeouts

TEST(RobustnessTest, StalledCellTimesOutAndIsRecorded) {
  Graph g = RandomUndirected(100, 250, 75);
  fault::FaultPlan plan(0xAD);
  plan.Add({.site = "pregel.superstep.barrier",
            .kind = fault::FaultKind::kStall, .delay_seconds = 0.6});
  RunSpec spec = BaseSpec(&g, "giraph");
  spec.fault_plan = &plan;
  spec.cell_timeout_s = 0.15;
  auto results = RunBenchmark(spec);
  ASSERT_TRUE(results.ok());
  const BenchmarkResult& r = (*results)[0];
  EXPECT_TRUE(r.status.IsTimeout()) << r.status.ToString();
  EXPECT_TRUE(r.timed_out);
  EXPECT_EQ(r.attempts, 1u);
  EXPECT_TRUE(r.validation.IsUntested());
}

TEST(RobustnessTest, TimeoutRetryRecoversWhenStallIsTransient) {
  Graph g = RandomUndirected(100, 250, 76);
  fault::FaultPlan plan(0xAE);
  plan.Add({.site = "pregel.superstep.barrier",
            .kind = fault::FaultKind::kStall, .max_triggers = 1,
            .delay_seconds = 0.6});
  RunSpec spec = BaseSpec(&g, "giraph");
  spec.fault_plan = &plan;
  spec.cell_timeout_s = 0.15;
  spec.max_attempts = 2;
  auto results = RunBenchmark(spec);
  ASSERT_TRUE(results.ok());
  const BenchmarkResult& r = (*results)[0];
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_TRUE(r.validation.ok());
  EXPECT_EQ(r.attempts, 2u);
  EXPECT_FALSE(r.timed_out);  // the recorded (final) attempt was clean
}

// ------------------------------------------------------------ message loss

TEST(RobustnessTest, DroppedMessagesCorruptResultsAndValidationCatchesIt) {
  // Message loss must not hang or crash the engine; it yields a wrong
  // answer that the Output Validator flags — the silent-failure mode the
  // differential harness exists to catch.
  Graph g = RandomUndirected(100, 250, 77);
  fault::FaultPlan plan(0xAF);
  plan.Add({.site = "pregel.message.deliver",
            .kind = fault::FaultKind::kDrop, .probability = 0.9});
  RunSpec spec = BaseSpec(&g, "giraph");
  spec.fault_plan = &plan;
  auto results = RunBenchmark(spec);
  ASSERT_TRUE(results.ok());
  const BenchmarkResult& r = (*results)[0];
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_GT(plan.TriggeredCount("pregel.message.deliver"), 0u);
  EXPECT_TRUE(r.validation.IsValidationFailed()) << r.validation.ToString();
}

// ----------------------------------------- the full matrix, faults enabled

TEST(RobustnessTest, FullMatrixUnderFaultsCompletesEveryCellThenRunsClean) {
  Graph g = RandomUndirected(100, 300, 78);
  RunSpec spec;
  spec.platforms = {"giraph", "graphx", "mapreduce", "neo4j", "reference"};
  spec.datasets.push_back({"toy", &g, {}});
  spec.algorithms = {AlgorithmKind::kStats, AlgorithmKind::kBfs,
                     AlgorithmKind::kConn};
  spec.monitor = false;
  spec.cell_timeout_s = 1.0;
  spec.max_attempts = 2;
  spec.retry_backoff_s = 0.001;

  // Fixed seed: crashes sprinkled over every site, plus one guaranteed
  // stall at the second pregel barrier that must trip the cell timeout.
  fault::FaultPlan plan(0x5EED);
  plan.Add({.site = "pregel.superstep.barrier",
            .kind = fault::FaultKind::kStall, .skip_hits = 1,
            .max_triggers = 1, .delay_seconds = 3.0});
  plan.Add({.site = "*", .kind = fault::FaultKind::kCrash,
            .probability = 0.01});
  spec.fault_plan = &plan;

  size_t callbacks = 0;
  auto faulty = RunBenchmark(spec, [&callbacks](const BenchmarkResult&) {
    ++callbacks;
  });
  // Every cell is reported — status recorded, no hang, no process abort.
  ASSERT_TRUE(faulty.ok());
  ASSERT_EQ(faulty->size(), 15u);
  EXPECT_EQ(callbacks, 15u);
  for (const BenchmarkResult& r : *faulty) {
    EXPECT_LE(r.attempts, 2u) << r.platform;
    if (r.status.ok()) {
      // Whatever survived the fault storm must still be correct.
      EXPECT_TRUE(r.validation.ok())
          << r.platform << "/" << AlgorithmKindName(r.algorithm) << ": "
          << r.validation.ToString();
    }
  }
  EXPECT_GT(plan.TotalTriggered(), 0u);
  // The deterministic stall fired (the crash rule may add more triggers at
  // the same site), so the timeout path ran.
  EXPECT_GE(plan.TriggeredCount("pregel.superstep.barrier"), 1u);

  // Re-run with faults disabled: the same matrix validates clean.
  spec.fault_plan = nullptr;
  auto clean = RunBenchmark(spec);
  ASSERT_TRUE(clean.ok());
  ASSERT_EQ(clean->size(), 15u);
  for (const BenchmarkResult& r : *clean) {
    EXPECT_TRUE(r.status.ok())
        << r.platform << "/" << AlgorithmKindName(r.algorithm) << ": "
        << r.status.ToString();
    EXPECT_TRUE(r.validation.ok())
        << r.platform << "/" << AlgorithmKindName(r.algorithm) << ": "
        << r.validation.ToString();
  }
}

#endif  // GLY_DISABLE_FAULT_POINTS

}  // namespace
}  // namespace gly::harness
