// Differential robustness tests: every platform runs under injected
// worker crashes, transient I/O errors, and stalls, and the harness must
// (a) record every cell's outcome — never hang, never kill the process —
// and (b) recover to a clean, validated result when the fault is
// transient or the plan is removed. This is the testable form of the
// paper's "Missing values indicate failures".

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/temp_dir.h"
#include "harness/core.h"
#include "harness/report.h"
#include "harness/validator.h"
#include "pregel/algorithms.h"
#include "pregel/engine.h"

namespace gly::harness {
namespace {

#ifdef GLY_DISABLE_FAULT_POINTS

TEST(RobustnessTest, FaultPointsCompiledOut) {
  GTEST_SKIP() << "built with GLY_FAULT_POINTS=OFF; engine fault sites are "
                  "no-ops, so the robustness scenarios cannot run";
}

#else

Graph RandomUndirected(VertexId n, size_t m, uint64_t seed) {
  EdgeList edges(n);
  Rng rng(seed);
  while (edges.num_edges() < m) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(n));
    VertexId b = static_cast<VertexId>(rng.NextBounded(n));
    if (a != b) edges.Add(a, b);
  }
  return GraphBuilder::Undirected(edges).ValueOrDie();
}

// All fault sites of one platform ("pregel.*" etc.).
std::string SitePrefix(const std::string& platform) {
  if (platform == "giraph") return "pregel.*";
  if (platform == "graphx") return "dataflow.*";
  if (platform == "mapreduce") return "mapreduce.*";
  if (platform == "neo4j") return "graphdb.*";
  return "*";
}

const std::vector<std::string> kFaultablePlatforms = {"giraph", "graphx",
                                                      "mapreduce", "neo4j"};

RunSpec BaseSpec(const Graph* graph, const std::string& platform) {
  RunSpec spec;
  spec.platforms = {platform};
  spec.datasets.push_back({"toy", graph, {}});
  spec.algorithms = {AlgorithmKind::kBfs};
  spec.monitor = false;
  return spec;
}

// ---------------------------------------------------- crashes are recorded

TEST(RobustnessTest, InjectedCrashIsARecordedFailureOnEveryPlatform) {
  Graph g = RandomUndirected(100, 250, 71);
  for (const std::string& platform : kFaultablePlatforms) {
    fault::FaultPlan plan(0xC0FFEE);
    plan.Add({.site = SitePrefix(platform), .kind = fault::FaultKind::kCrash,
              .probability = 1.0});
    RunSpec spec = BaseSpec(&g, platform);
    spec.fault_plan = &plan;
    auto results = RunBenchmark(spec);
    // The harness survives and reports the cell as failed.
    ASSERT_TRUE(results.ok()) << platform;
    ASSERT_EQ(results->size(), 1u) << platform;
    const BenchmarkResult& r = (*results)[0];
    EXPECT_FALSE(r.status.ok()) << platform;
    EXPECT_TRUE(r.validation.IsUntested()) << platform;
    EXPECT_GT(plan.TotalTriggered(), 0u) << platform;
  }
}

TEST(RobustnessTest, TransientIOErrorIsRetryableOnEveryPlatform) {
  Graph g = RandomUndirected(100, 250, 72);
  for (const std::string& platform : kFaultablePlatforms) {
    fault::FaultPlan plan(0xBEEF);
    plan.Add({.site = SitePrefix(platform),
              .kind = fault::FaultKind::kIOError, .max_triggers = 1});
    RunSpec spec = BaseSpec(&g, platform);
    spec.fault_plan = &plan;
    spec.max_attempts = 3;
    auto results = RunBenchmark(spec);
    ASSERT_TRUE(results.ok()) << platform;
    const BenchmarkResult& r = (*results)[0];
    // One transient fault, bounded retry: the cell ends up clean and the
    // fault-free re-execution validates against the reference.
    EXPECT_TRUE(r.status.ok()) << platform << ": " << r.status.ToString();
    EXPECT_TRUE(r.validation.ok()) << platform << ": "
                                   << r.validation.ToString();
    EXPECT_EQ(plan.TotalTriggered(), 1u) << platform;
  }
}

TEST(RobustnessTest, RetryCountsAreRecorded) {
  // giraph's pregel.run.start is hit exactly once per execution attempt,
  // so a single transient crash there pins attempts == 2.
  Graph g = RandomUndirected(100, 250, 73);
  fault::FaultPlan plan(0xAB);
  plan.Add({.site = "pregel.run.start", .kind = fault::FaultKind::kCrash,
            .max_triggers = 1});
  RunSpec spec = BaseSpec(&g, "giraph");
  spec.fault_plan = &plan;
  spec.max_attempts = 3;
  spec.retry_backoff_s = 0.001;
  auto results = RunBenchmark(spec);
  ASSERT_TRUE(results.ok());
  const BenchmarkResult& r = (*results)[0];
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_TRUE(r.validation.ok());
  EXPECT_EQ(r.attempts, 2u);
  EXPECT_EQ(r.injected_faults, 1u);
}

TEST(RobustnessTest, RetriesAreBounded) {
  // A permanent crash must consume exactly max_attempts, then surface.
  Graph g = RandomUndirected(100, 250, 74);
  fault::FaultPlan plan(0xAC);
  plan.Add({.site = "pregel.run.start", .kind = fault::FaultKind::kCrash});
  RunSpec spec = BaseSpec(&g, "giraph");
  spec.fault_plan = &plan;
  spec.max_attempts = 3;
  auto results = RunBenchmark(spec);
  ASSERT_TRUE(results.ok());
  const BenchmarkResult& r = (*results)[0];
  EXPECT_TRUE(r.status.IsInternal());
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_EQ(r.injected_faults, 3u);
}

// ----------------------------------------------------------------- timeouts

TEST(RobustnessTest, StalledCellTimesOutAndIsRecorded) {
  Graph g = RandomUndirected(100, 250, 75);
  fault::FaultPlan plan(0xAD);
  plan.Add({.site = "pregel.superstep.barrier",
            .kind = fault::FaultKind::kStall, .delay_seconds = 0.6});
  RunSpec spec = BaseSpec(&g, "giraph");
  spec.fault_plan = &plan;
  spec.cell_timeout_s = 0.15;
  auto results = RunBenchmark(spec);
  ASSERT_TRUE(results.ok());
  const BenchmarkResult& r = (*results)[0];
  EXPECT_TRUE(r.status.IsTimeout()) << r.status.ToString();
  EXPECT_TRUE(r.timed_out);
  EXPECT_EQ(r.attempts, 1u);
  EXPECT_TRUE(r.validation.IsUntested());
}

TEST(RobustnessTest, TimeoutRetryRecoversWhenStallIsTransient) {
  Graph g = RandomUndirected(100, 250, 76);
  fault::FaultPlan plan(0xAE);
  plan.Add({.site = "pregel.superstep.barrier",
            .kind = fault::FaultKind::kStall, .max_triggers = 1,
            .delay_seconds = 0.6});
  RunSpec spec = BaseSpec(&g, "giraph");
  spec.fault_plan = &plan;
  spec.cell_timeout_s = 0.15;
  spec.max_attempts = 2;
  auto results = RunBenchmark(spec);
  ASSERT_TRUE(results.ok());
  const BenchmarkResult& r = (*results)[0];
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_TRUE(r.validation.ok());
  EXPECT_EQ(r.attempts, 2u);
  EXPECT_FALSE(r.timed_out);  // the recorded (final) attempt was clean
}

// ------------------------------------------------------------ message loss

TEST(RobustnessTest, DroppedMessagesCorruptResultsAndValidationCatchesIt) {
  // Message loss must not hang or crash the engine; it yields a wrong
  // answer that the Output Validator flags — the silent-failure mode the
  // differential harness exists to catch.
  Graph g = RandomUndirected(100, 250, 77);
  fault::FaultPlan plan(0xAF);
  plan.Add({.site = "pregel.message.deliver",
            .kind = fault::FaultKind::kDrop, .probability = 0.9});
  RunSpec spec = BaseSpec(&g, "giraph");
  spec.fault_plan = &plan;
  auto results = RunBenchmark(spec);
  ASSERT_TRUE(results.ok());
  const BenchmarkResult& r = (*results)[0];
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_GT(plan.TriggeredCount("pregel.message.deliver"), 0u);
  EXPECT_TRUE(r.validation.IsValidationFailed()) << r.validation.ToString();
}

// ------------------------------------------- superstep checkpoint recovery

// A path graph: CONN label propagation needs ~N supersteps to converge,
// giving faults room to strike long after checkpoints exist.
Graph PathGraph(VertexId n) {
  EdgeList edges;
  for (VertexId v = 0; v + 1 < n; ++v) edges.Add(v, v + 1);
  return GraphBuilder::Undirected(edges).ValueOrDie();
}

TEST(CheckpointRecoveryTest, PregelReplaysOnlyFromTheLastCheckpoint) {
  Graph g = PathGraph(60);

  pregel::EngineConfig config;
  config.num_workers = 2;
  pregel::RunStats clean_stats;
  auto baseline = pregel::RunConn(pregel::Engine(config), g, &clean_stats);
  ASSERT_TRUE(baseline.ok());

  auto dir = TempDir::Create("gly-ckpt-recovery");
  ASSERT_TRUE(dir.ok());
  config.checkpoint.interval = 8;
  config.checkpoint.directory = dir->path();

  // Crash at the superstep-20 barrier: the engine must roll back to the
  // superstep-16 checkpoint and replay 4 supersteps, not start over.
  fault::FaultPlan plan(0xD1);
  plan.Add({.site = "pregel.superstep.barrier",
            .kind = fault::FaultKind::kCrash, .skip_hits = 20,
            .max_triggers = 1});
  fault::ScopedFaultPlan active(&plan);

  pregel::RunStats stats;
  auto recovered = pregel::RunConn(pregel::Engine(config), g, &stats);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(plan.TotalTriggered(), 1u);
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_GT(stats.checkpoints_written, 0u);
  EXPECT_EQ(stats.supersteps_replayed, 4u);
  EXPECT_LT(stats.supersteps_replayed, stats.supersteps);
  // The recovered run is indistinguishable from the fault-free one.
  EXPECT_EQ(stats.supersteps, clean_stats.supersteps);
  EXPECT_EQ(recovered->vertex_values, baseline->vertex_values);
}

TEST(CheckpointRecoveryTest, FailedCheckpointWriteFallsBackToPreviousOne) {
  Graph g = PathGraph(60);
  auto dir = TempDir::Create("gly-ckpt-recovery");
  ASSERT_TRUE(dir.ok());
  pregel::EngineConfig config;
  config.num_workers = 2;
  config.checkpoint.interval = 4;
  config.checkpoint.directory = dir->path();

  // The second checkpoint write (superstep 8) crashes mid-write; the crash
  // at the superstep-10 barrier must fall back to the still-valid
  // superstep-4 checkpoint — 6 supersteps replayed, correct output.
  fault::FaultPlan plan(0xD2);
  plan.Add({.site = "checkpoint.write", .kind = fault::FaultKind::kCrash,
            .skip_hits = 1, .max_triggers = 1});
  plan.Add({.site = "pregel.superstep.barrier",
            .kind = fault::FaultKind::kCrash, .skip_hits = 10,
            .max_triggers = 1});
  fault::ScopedFaultPlan active(&plan);

  pregel::RunStats stats;
  auto out = pregel::RunConn(pregel::Engine(config), g, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(stats.checkpoint_failures, 1u);
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_EQ(stats.supersteps_replayed, 6u);

  pregel::EngineConfig clean;
  clean.num_workers = 2;
  auto baseline = pregel::RunConn(pregel::Engine(clean), g, nullptr);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(out->vertex_values, baseline->vertex_values);
}

TEST(CheckpointRecoveryTest, RecoveriesAreBoundedByPolicy) {
  // A permanent barrier crash exhausts max_recoveries, then surfaces.
  Graph g = PathGraph(40);
  auto dir = TempDir::Create("gly-ckpt-recovery");
  ASSERT_TRUE(dir.ok());
  pregel::EngineConfig config;
  config.num_workers = 2;
  config.checkpoint.interval = 2;
  config.checkpoint.directory = dir->path();
  config.checkpoint.max_recoveries = 2;

  fault::FaultPlan plan(0xD3);
  plan.Add({.site = "pregel.superstep.barrier",
            .kind = fault::FaultKind::kCrash, .skip_hits = 4});
  fault::ScopedFaultPlan active(&plan);

  auto out = pregel::RunConn(pregel::Engine(config), g, nullptr);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsInternal());
  // The barrier re-crashed on every replay: the initial crash plus one per
  // permitted recovery reached the site before the policy gave up.
  EXPECT_EQ(plan.TriggeredCount("pregel.superstep.barrier"), 3u);
}

TEST(CheckpointRecoveryTest, HarnessCellRecoversWithoutConsumingARetry) {
  // The engine absorbs a mid-run worker crash via rollback: the harness
  // sees one clean attempt, with the recovery surfaced in the metrics.
  Graph g = RandomUndirected(100, 250, 79);
  fault::FaultPlan plan(0xD4);
  plan.Add({.site = "pregel.worker.compute",
            .kind = fault::FaultKind::kCrash, .skip_hits = 8,
            .max_triggers = 1});
  RunSpec spec = BaseSpec(&g, "giraph");
  spec.algorithms = {AlgorithmKind::kConn};
  spec.platform_config.SetInt("giraph.checkpoint_interval", 1);
  spec.fault_plan = &plan;
  auto results = RunBenchmark(spec);
  ASSERT_TRUE(results.ok());
  const BenchmarkResult& r = (*results)[0];
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_TRUE(r.validation.ok()) << r.validation.ToString();
  EXPECT_EQ(r.attempts, 1u);  // recovered inside the engine, not by retry
  EXPECT_GE(r.recoveries, 1u);
  EXPECT_EQ(plan.TotalTriggered(), 1u);
}

TEST(CheckpointRecoveryTest, MapReduceRetrySkipsTheCompletedMapStage) {
  // A crash in the reduce phase fails the attempt, but the map stage's
  // manifest survives: the retry restores spills instead of re-mapping.
  Graph g = RandomUndirected(100, 250, 80);
  fault::FaultPlan plan(0xD5);
  plan.Add({.site = "mapreduce.reduce.task",
            .kind = fault::FaultKind::kCrash, .max_triggers = 1});
  RunSpec spec = BaseSpec(&g, "mapreduce");
  spec.platform_config.SetBool("mapreduce.checkpointing", true);
  spec.fault_plan = &plan;
  spec.max_attempts = 2;
  auto results = RunBenchmark(spec);
  ASSERT_TRUE(results.ok());
  const BenchmarkResult& r = (*results)[0];
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_TRUE(r.validation.ok()) << r.validation.ToString();
  EXPECT_EQ(r.attempts, 2u);
  EXPECT_GE(r.recoveries, 1u) << "map stage was re-executed, not restored";
}

// ------------------------------------------------------- resumable matrices

TEST(ResumeTest, ResultJsonRoundTrips) {
  BenchmarkResult r;
  r.platform = "giraph";
  r.graph = "toy \"quoted\"\nname";
  r.algorithm = AlgorithmKind::kBfs;
  r.validation = Status::OK();
  r.runtime_seconds = 1.5;
  r.load_seconds = 0.25;
  r.traversed_edges = 1234;
  r.teps = 822.7;
  r.attempts = 2;
  r.injected_faults = 3;
  r.recoveries = 1;
  r.supersteps_replayed = 4;
  r.resources.peak_rss_bytes = 1 << 20;
  r.platform_metrics["supersteps"] = "17";
  r.platform_metrics["odd\"key"] = "value with spaces";

  auto parsed = ResultFromJson(ResultToJson(r));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->platform, r.platform);
  EXPECT_EQ(parsed->graph, r.graph);
  EXPECT_EQ(parsed->algorithm, r.algorithm);
  EXPECT_TRUE(parsed->status.ok());
  EXPECT_TRUE(parsed->validation.ok());
  EXPECT_EQ(parsed->runtime_seconds, r.runtime_seconds);
  EXPECT_EQ(parsed->load_seconds, r.load_seconds);
  EXPECT_EQ(parsed->traversed_edges, r.traversed_edges);
  EXPECT_EQ(parsed->teps, r.teps);
  EXPECT_EQ(parsed->attempts, r.attempts);
  EXPECT_EQ(parsed->injected_faults, r.injected_faults);
  EXPECT_EQ(parsed->recoveries, r.recoveries);
  EXPECT_EQ(parsed->supersteps_replayed, r.supersteps_replayed);
  EXPECT_EQ(parsed->resources.peak_rss_bytes, r.resources.peak_rss_bytes);
  EXPECT_EQ(parsed->platform_metrics, r.platform_metrics);

  // Failure codes round-trip too (messages intentionally don't).
  r.status = Status::Timeout("cell exceeded budget");
  r.validation = Status::Untested("validation not run");
  parsed = ResultFromJson(ResultToJson(r));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->status.IsTimeout());
  EXPECT_TRUE(parsed->validation.IsUntested());

  EXPECT_FALSE(ResultFromJson("not json at all").ok());
  EXPECT_FALSE(ResultFromJson("{\"platform\":\"x\"}").ok());
}

TEST(ResumeTest, ResumeReExecutesOnlyUnfinishedCells) {
  Graph g = RandomUndirected(100, 300, 81);
  auto dir = TempDir::Create("gly-resume");
  ASSERT_TRUE(dir.ok());

  RunSpec spec;
  spec.platforms = {"giraph", "reference"};
  spec.datasets.push_back({"toy", &g, {}});
  spec.algorithms = {AlgorithmKind::kBfs, AlgorithmKind::kConn};
  spec.monitor = false;
  spec.journal_path = dir->File("journal.jsonl");

  // Run 1 ("killed" matrix): giraph crashes permanently, so its two cells
  // journal as failures; the reference cells journal as validated.
  fault::FaultPlan plan(0xE1);
  plan.Add({.site = "pregel.run.start", .kind = fault::FaultKind::kCrash});
  spec.fault_plan = &plan;
  auto first = RunBenchmark(spec);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->size(), 4u);

  // Run 2: fault gone, resume on. Only the failed giraph cells execute.
  spec.fault_plan = nullptr;
  spec.resume = true;
  size_t executed = 0;
  auto second = RunBenchmark(spec, [&executed](const BenchmarkResult& r) {
    if (!r.resumed) ++executed;
  });
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->size(), 4u);
  EXPECT_EQ(executed, 2u);
  for (const BenchmarkResult& r : *second) {
    EXPECT_TRUE(r.status.ok()) << r.platform;
    EXPECT_TRUE(r.validation.ok()) << r.platform;
    EXPECT_EQ(r.resumed, r.platform == "reference") << r.platform;
  }

  // Run 3: everything is journaled clean now — nothing re-executes.
  executed = 0;
  auto third = RunBenchmark(spec, [&executed](const BenchmarkResult& r) {
    if (!r.resumed) ++executed;
  });
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(executed, 0u);
  for (const BenchmarkResult& r : *third) {
    EXPECT_TRUE(r.resumed) << r.platform;
    EXPECT_TRUE(r.status.ok()) << r.platform;
  }

  // Without resume, the journal restarts and the full matrix re-executes.
  spec.resume = false;
  auto fourth = RunBenchmark(spec);
  ASSERT_TRUE(fourth.ok());
  for (const BenchmarkResult& r : *fourth) EXPECT_FALSE(r.resumed);
}

TEST(ResumeTest, FailedValidationIsNotReused) {
  // A cell that ran but validated INVALID (here: message loss corrupted
  // the answer) must be re-executed on resume, not trusted.
  Graph g = RandomUndirected(100, 250, 82);
  auto dir = TempDir::Create("gly-resume");
  ASSERT_TRUE(dir.ok());

  RunSpec spec = BaseSpec(&g, "giraph");
  spec.journal_path = dir->File("journal.jsonl");
  fault::FaultPlan plan(0xE2);
  plan.Add({.site = "pregel.message.deliver",
            .kind = fault::FaultKind::kDrop, .probability = 0.9});
  spec.fault_plan = &plan;
  auto first = RunBenchmark(spec);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE((*first)[0].status.ok());
  ASSERT_TRUE((*first)[0].validation.IsValidationFailed());

  spec.fault_plan = nullptr;
  spec.resume = true;
  auto second = RunBenchmark(spec);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE((*second)[0].resumed);
  EXPECT_TRUE((*second)[0].status.ok());
  EXPECT_TRUE((*second)[0].validation.ok());
}

// ------------------------------------------------ cooperative cancellation

// Live threads of this process (Linux: one /proc/self/task entry each).
size_t ThreadCount() {
  size_t n = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator("/proc/self/task")) {
    ++n;
  }
  return n;
}

TEST(CancellationTest, StallWatchdogCancelsSilentCellWithoutWallClockTimeout) {
  Graph g = RandomUndirected(100, 250, 79);
  fault::FaultPlan plan(0xB0);
  plan.Add({.site = "pregel.superstep.barrier",
            .kind = fault::FaultKind::kStall, .delay_seconds = 0.8});
  RunSpec spec = BaseSpec(&g, "giraph");
  spec.fault_plan = &plan;
  // No wall-clock timeout at all: only the heartbeat watchdog is armed.
  spec.stall_timeout_s = 0.2;
  metrics::Registry registry;
  spec.metrics = &registry;
  auto results = RunBenchmark(spec);
  ASSERT_TRUE(results.ok());
  const BenchmarkResult& r = (*results)[0];
  EXPECT_TRUE(r.status.IsTimeout()) << r.status.ToString();
  EXPECT_TRUE(r.cancelled);
  EXPECT_TRUE(r.stalled);
  EXPECT_FALSE(r.timed_out);  // the wall-clock deadline never fired
  EXPECT_EQ(r.cancel_reason, "stall");
  // The stall delay is well inside the grace window, so the attempt was
  // joined, not abandoned.
  EXPECT_LT(r.cancel_join_seconds, spec.cancel_grace_s);
  EXPECT_TRUE(r.validation.IsUntested());
  auto snapshot = registry.Snapshot();
  EXPECT_GE(snapshot.at("harness.cancels").counter, 1u);
  EXPECT_GE(snapshot.at("harness.cancel_joins").counter, 1u);
}

TEST(CancellationTest, CancelledAttemptIsJoinedAndNoThreadOutlivesTheCell) {
  if (!std::filesystem::exists("/proc/self/task")) {
    GTEST_SKIP() << "/proc/self/task unavailable; cannot count threads";
  }
  Graph g = RandomUndirected(100, 250, 80);
  // Warm up lazily-created runtime threads before taking the baseline:
  // TSan spawns a persistent background thread on the first
  // pthread_create of the process, which would otherwise show up as a
  // "leak" the harness never caused.
  std::thread([] {}).join();
  const size_t baseline = ThreadCount();
  fault::FaultPlan plan(0xB1);
  plan.Add({.site = "pregel.superstep.barrier",
            .kind = fault::FaultKind::kStall, .delay_seconds = 0.6});
  RunSpec spec = BaseSpec(&g, "giraph");
  spec.fault_plan = &plan;
  spec.cell_timeout_s = 0.15;
  metrics::Registry registry;
  spec.metrics = &registry;
  auto results = RunBenchmark(spec);
  ASSERT_TRUE(results.ok());
  const BenchmarkResult& r = (*results)[0];
  EXPECT_TRUE(r.timed_out);
  EXPECT_TRUE(r.cancelled);
  EXPECT_EQ(r.cancel_reason, "deadline");
  auto snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.at("harness.cancel_joins").counter, 1u);
  // The failure counter is created on first use; a clean join never
  // touches it.
  EXPECT_EQ(snapshot.count("harness.cancel_join_failures"), 0u);
  // The timed-out attempt was cooperatively joined, not detached: the
  // process thread count returns to its pre-run baseline (bounded wait —
  // platform teardown after RunBenchmark returns is not instantaneous).
  Stopwatch watch;
  while (ThreadCount() > baseline && watch.ElapsedSeconds() < 5.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_LE(ThreadCount(), baseline);
}

TEST(CancellationTest, HarnessStopCancelsInFlightCellAndSkipsRemainingCells) {
  Graph g = RandomUndirected(100, 250, 81);
  // Giraph (first platform) stalls at every barrier, giving the stop
  // signal a wide window to land mid-cell.
  fault::FaultPlan plan(0xB2);
  plan.Add({.site = "pregel.superstep.barrier",
            .kind = fault::FaultKind::kStall, .delay_seconds = 0.5});
  CancelToken stop;
  RunSpec spec;
  spec.platforms = kFaultablePlatforms;
  spec.datasets.push_back({"toy", &g, {}});
  spec.algorithms = {AlgorithmKind::kBfs};
  spec.monitor = false;
  spec.fault_plan = &plan;
  spec.stop = &stop;  // supervision armed by the stop token alone
  spec.max_attempts = 3;
  std::thread stopper([&stop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    stop.Cancel(CancelReason::kHarnessStop, "user interrupt");
  });
  auto results = RunBenchmark(spec);
  stopper.join();
  ASSERT_TRUE(results.ok());
  // The in-flight giraph cell is recorded as cancelled; the other three
  // platforms are skipped entirely, not recorded as failures.
  ASSERT_EQ(results->size(), 1u);
  const BenchmarkResult& r = (*results)[0];
  EXPECT_EQ(r.platform, "giraph");
  EXPECT_TRUE(r.status.IsCancelled()) << r.status.ToString();
  EXPECT_TRUE(r.cancelled);
  EXPECT_EQ(r.cancel_reason, "harness_stop");
  EXPECT_FALSE(r.timed_out);
  // A harness stop is final — the retry policy must not burn attempts.
  EXPECT_EQ(r.attempts, 1u);
}

TEST(CancellationTest, PreArmedStopRunsNothing) {
  Graph g = RandomUndirected(100, 250, 82);
  CancelToken stop;
  stop.Cancel(CancelReason::kHarnessStop, "stopped before start");
  RunSpec spec = BaseSpec(&g, "giraph");
  spec.stop = &stop;
  auto results = RunBenchmark(spec);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
}

// ----------------------------------------- the full matrix, faults enabled

TEST(RobustnessTest, FullMatrixUnderFaultsCompletesEveryCellThenRunsClean) {
  Graph g = RandomUndirected(100, 300, 78);
  RunSpec spec;
  spec.platforms = {"giraph", "graphx", "mapreduce", "neo4j", "reference"};
  spec.datasets.push_back({"toy", &g, {}});
  spec.algorithms = {AlgorithmKind::kStats, AlgorithmKind::kBfs,
                     AlgorithmKind::kConn};
  spec.monitor = false;
  spec.cell_timeout_s = 1.0;
  spec.max_attempts = 2;
  spec.retry_backoff_s = 0.001;
  // Recovery machinery on: Pregel checkpoints and MapReduce manifests may
  // absorb some injected crashes before the retry policy even sees them.
  spec.platform_config.SetInt("giraph.checkpoint_interval", 2);
  spec.platform_config.SetBool("mapreduce.checkpointing", true);

  // Fixed seed: crashes sprinkled over every site, plus one guaranteed
  // stall at the second pregel barrier that must trip the cell timeout.
  fault::FaultPlan plan(0x5EED);
  plan.Add({.site = "pregel.superstep.barrier",
            .kind = fault::FaultKind::kStall, .skip_hits = 1,
            .max_triggers = 1, .delay_seconds = 3.0});
  plan.Add({.site = "*", .kind = fault::FaultKind::kCrash,
            .probability = 0.01});
  spec.fault_plan = &plan;

  size_t callbacks = 0;
  auto faulty = RunBenchmark(spec, [&callbacks](const BenchmarkResult&) {
    ++callbacks;
  });
  // Every cell is reported — status recorded, no hang, no process abort.
  ASSERT_TRUE(faulty.ok());
  ASSERT_EQ(faulty->size(), 15u);
  EXPECT_EQ(callbacks, 15u);
  for (const BenchmarkResult& r : *faulty) {
    EXPECT_LE(r.attempts, 2u) << r.platform;
    if (r.status.ok()) {
      // Whatever survived the fault storm must still be correct.
      EXPECT_TRUE(r.validation.ok())
          << r.platform << "/" << AlgorithmKindName(r.algorithm) << ": "
          << r.validation.ToString();
    }
  }
  EXPECT_GT(plan.TotalTriggered(), 0u);
  // The deterministic stall fired (the crash rule may add more triggers at
  // the same site), so the timeout path ran.
  EXPECT_GE(plan.TriggeredCount("pregel.superstep.barrier"), 1u);

  // Re-run with faults disabled: the same matrix validates clean.
  spec.fault_plan = nullptr;
  auto clean = RunBenchmark(spec);
  ASSERT_TRUE(clean.ok());
  ASSERT_EQ(clean->size(), 15u);
  for (const BenchmarkResult& r : *clean) {
    EXPECT_TRUE(r.status.ok())
        << r.platform << "/" << AlgorithmKindName(r.algorithm) << ": "
        << r.status.ToString();
    EXPECT_TRUE(r.validation.ok())
        << r.platform << "/" << AlgorithmKindName(r.algorithm) << ": "
        << r.validation.ToString();
  }
}

#endif  // GLY_DISABLE_FAULT_POINTS

}  // namespace
}  // namespace gly::harness
