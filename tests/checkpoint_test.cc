// Tests for the checkpoint serialization module (common/checkpoint.h) and
// the stale-scratch reaping in TempDir: the recovery layer's foundations.
// A checkpoint must either load exactly as written or fail Load() — torn
// writes, bit flips, and truncation are detected, and a crash *during* a
// checkpoint write must leave the previous checkpoint intact.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/checkpoint.h"
#include "common/fault_injection.h"
#include "common/temp_dir.h"

namespace gly {
namespace {

namespace fs = std::filesystem;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return data;
}

void WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

TEST(CheckpointTest, RoundTripsSections) {
  auto dir = TempDir::Create("gly-ckpt-test");
  ASSERT_TRUE(dir.ok());
  std::string path = dir->File("a.ckpt");

  CheckpointWriter writer;
  CheckpointEncoder meta(writer.AddSection("meta"));
  meta.PutU32(7);
  meta.PutU64(123456789012345ull);
  meta.PutDouble(3.25);
  meta.PutString("hello");
  CheckpointEncoder blob(writer.AddSection("blob"));
  blob.PutBytes("\x00\x01\xff", 3);
  ASSERT_TRUE(writer.WriteTo(path).ok());

  auto reader = CheckpointReader::Load(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->Has("meta"));
  EXPECT_TRUE(reader->Has("blob"));
  EXPECT_FALSE(reader->Has("missing"));

  auto meta_section = reader->Section("meta");
  ASSERT_TRUE(meta_section.ok());
  CheckpointDecoder dec(*meta_section);
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  double d = 0;
  std::string s;
  ASSERT_TRUE(dec.GetU32(&u32));
  ASSERT_TRUE(dec.GetU64(&u64));
  ASSERT_TRUE(dec.GetDouble(&d));
  ASSERT_TRUE(dec.GetString(&s));
  EXPECT_EQ(u32, 7u);
  EXPECT_EQ(u64, 123456789012345ull);
  EXPECT_EQ(d, 3.25);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(dec.Done());

  auto blob_section = reader->Section("blob");
  ASSERT_TRUE(blob_section.ok());
  EXPECT_EQ(*blob_section, std::string_view("\x00\x01\xff", 3));
}

TEST(CheckpointTest, DecoderFailsClosedOnUnderflow) {
  CheckpointWriter writer;
  CheckpointEncoder enc(writer.AddSection("s"));
  enc.PutU32(1);

  auto dir = TempDir::Create("gly-ckpt-test");
  ASSERT_TRUE(dir.ok());
  std::string path = dir->File("b.ckpt");
  ASSERT_TRUE(writer.WriteTo(path).ok());
  auto reader = CheckpointReader::Load(path);
  ASSERT_TRUE(reader.ok());
  CheckpointDecoder dec(*reader->Section("s"));
  uint64_t u64 = 0;
  EXPECT_FALSE(dec.GetU64(&u64));  // only 4 bytes present
  std::string s;
  EXPECT_FALSE(dec.GetString(&s));
}

TEST(CheckpointTest, CorruptionIsRejected) {
  auto dir = TempDir::Create("gly-ckpt-test");
  ASSERT_TRUE(dir.ok());
  std::string path = dir->File("c.ckpt");

  CheckpointWriter writer;
  CheckpointEncoder enc(writer.AddSection("payload"));
  for (uint32_t i = 0; i < 100; ++i) enc.PutU32(i);
  ASSERT_TRUE(writer.WriteTo(path).ok());
  std::string good = ReadFile(path);
  ASSERT_TRUE(CheckpointReader::Load(path).ok());

  // Bit flip in the payload: checksum mismatch.
  std::string flipped = good;
  flipped[flipped.size() / 2] ^= 0x40;
  WriteFile(path, flipped);
  EXPECT_FALSE(CheckpointReader::Load(path).ok());

  // Truncated tail (torn write that bypassed the atomic rename).
  WriteFile(path, good.substr(0, good.size() - 7));
  EXPECT_FALSE(CheckpointReader::Load(path).ok());

  // Wrong magic.
  std::string bad_magic = good;
  bad_magic[0] = 'X';
  WriteFile(path, bad_magic);
  EXPECT_FALSE(CheckpointReader::Load(path).ok());

  // Empty file.
  WriteFile(path, "");
  EXPECT_FALSE(CheckpointReader::Load(path).ok());
}

#ifndef GLY_DISABLE_FAULT_POINTS

TEST(CheckpointTest, CrashDuringWriteKeepsPreviousCheckpoint) {
  auto dir = TempDir::Create("gly-ckpt-test");
  ASSERT_TRUE(dir.ok());
  std::string path = dir->File("d.ckpt");

  CheckpointWriter first;
  CheckpointEncoder(first.AddSection("gen")).PutU32(1);
  ASSERT_TRUE(first.WriteTo(path).ok());

  // The second write crashes between staging the .tmp file and the rename:
  // the visible checkpoint must still be generation 1.
  CheckpointWriter second;
  CheckpointEncoder(second.AddSection("gen")).PutU32(2);
  fault::FaultPlan plan(42);
  plan.Add({.site = "checkpoint.write", .kind = fault::FaultKind::kCrash,
            .max_triggers = 1});
  {
    fault::ScopedFaultPlan active(&plan);
    EXPECT_FALSE(second.WriteTo(path).ok());
  }
  ASSERT_EQ(plan.TotalTriggered(), 1u);

  auto reader = CheckpointReader::Load(path);
  ASSERT_TRUE(reader.ok());
  CheckpointDecoder dec(*reader->Section("gen"));
  uint32_t gen = 0;
  ASSERT_TRUE(dec.GetU32(&gen));
  EXPECT_EQ(gen, 1u);

  // After the "crash", the next write attempt succeeds and supersedes it.
  ASSERT_TRUE(second.WriteTo(path).ok());
  reader = CheckpointReader::Load(path);
  ASSERT_TRUE(reader.ok());
  CheckpointDecoder dec2(*reader->Section("gen"));
  ASSERT_TRUE(dec2.GetU32(&gen));
  EXPECT_EQ(gen, 2u);
}

#endif  // GLY_DISABLE_FAULT_POINTS

TEST(CheckpointTest, RemoveCheckpointClearsStagedTemp) {
  auto dir = TempDir::Create("gly-ckpt-test");
  ASSERT_TRUE(dir.ok());
  std::string path = dir->File("e.ckpt");
  CheckpointWriter writer;
  CheckpointEncoder(writer.AddSection("s")).PutU32(1);
  ASSERT_TRUE(writer.WriteTo(path).ok());
  WriteFile(path + ".tmp", "leftover staged bytes");
  RemoveCheckpoint(path);
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

// ------------------------------------------------------- stale scratch dirs

TEST(TempDirReapTest, CleanupStaleRemovesDirsOfDeadProcesses) {
  // A forked child that has already been reaped gives us a pid that is
  // guaranteed dead (and, having just existed, valid in range).
  pid_t dead = fork();
  ASSERT_GE(dead, 0);
  if (dead == 0) _exit(0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(dead, &wstatus, 0), dead);

  const char* env = std::getenv("TMPDIR");
  fs::path base = (env != nullptr && *env != '\0')
                      ? fs::path(env)
                      : fs::temp_directory_path();
  fs::path stale =
      base / ("gly-reap-test.p" + std::to_string(dead) + ".deadbeef");
  fs::create_directories(stale / "nested");
  fs::path live =
      base / ("gly-reap-test.p" + std::to_string(getpid()) + ".cafe");
  fs::create_directories(live);

  EXPECT_GE(TempDir::CleanupStale("gly-reap-test"), 1u);
  EXPECT_FALSE(fs::exists(stale));   // dead owner: reaped (recursively)
  EXPECT_TRUE(fs::exists(live));     // we are alive: untouched
  fs::remove_all(live);

  // Unrelated prefixes are never touched.
  fs::path other =
      base / ("gly-other-prefix.p" + std::to_string(dead) + ".1");
  fs::create_directories(other);
  TempDir::CleanupStale("gly-reap-test");
  EXPECT_TRUE(fs::exists(other));
  fs::remove_all(other);
}

}  // namespace
}  // namespace gly
