// Unit tests for the fault-injection subsystem: FaultPlan determinism
// (same seed -> same fault schedule), scoped enable/disable, site pattern
// matching, and fault-point hit accounting.

#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/stopwatch.h"

namespace gly::fault {
namespace {

// --------------------------------------------------------------- schedule

TEST(FaultPlanTest, SameSeedSameSchedule) {
  auto make = [](uint64_t seed) {
    auto plan = std::make_unique<FaultPlan>(seed);
    plan->Add({.site = "pregel.*", .kind = FaultKind::kCrash,
               .probability = 0.3});
    return plan;
  };
  auto a = make(42);
  auto b = make(42);
  auto c = make(43);
  auto sched_a = a->TriggerSchedule("pregel.superstep.barrier", 1000);
  auto sched_b = b->TriggerSchedule("pregel.superstep.barrier", 1000);
  auto sched_c = c->TriggerSchedule("pregel.superstep.barrier", 1000);
  EXPECT_EQ(sched_a, sched_b);
  EXPECT_NE(sched_a, sched_c);  // astronomically unlikely to collide
  // p = 0.3 over 1000 hits: the schedule is neither empty nor total.
  EXPECT_GT(sched_a.size(), 200u);
  EXPECT_LT(sched_a.size(), 400u);
}

TEST(FaultPlanTest, ScheduleIsDecorrelatedAcrossSites) {
  FaultPlan plan(7);
  plan.Add({.site = "*", .kind = FaultKind::kCrash, .probability = 0.5});
  EXPECT_NE(plan.TriggerSchedule("site.a", 500),
            plan.TriggerSchedule("site.b", 500));
}

TEST(FaultPlanTest, ScheduleMatchesLiveDecisions) {
  // The pure preview and the live OnPoint path agree hit-for-hit.
  FaultPlan plan(99);
  plan.Add({.site = "x", .kind = FaultKind::kCrash, .probability = 0.25});
  auto schedule = plan.TriggerSchedule("x", 200);
  std::vector<uint32_t> live;
  for (uint32_t hit = 0; hit < 200; ++hit) {
    if (!plan.OnPoint("x").ok()) live.push_back(hit);
  }
  EXPECT_EQ(schedule, live);
}

TEST(FaultPlanTest, SkipHitsAndMaxTriggersBoundTheSchedule) {
  FaultPlan plan(1);
  plan.Add({.site = "s", .kind = FaultKind::kCrash, .probability = 1.0,
            .skip_hits = 5, .max_triggers = 3});
  auto schedule = plan.TriggerSchedule("s", 100);
  EXPECT_EQ(schedule, (std::vector<uint32_t>{5, 6, 7}));
  // Live path honors the same bounds.
  uint64_t failures = 0;
  for (int i = 0; i < 100; ++i) {
    if (!plan.OnPoint("s").ok()) ++failures;
  }
  EXPECT_EQ(failures, 3u);
  EXPECT_EQ(plan.TriggeredCount("s"), 3u);
  EXPECT_EQ(plan.HitCount("s"), 100u);
}

TEST(FaultPlanTest, FirstMatchingRuleWins) {
  FaultPlan plan(1);
  plan.Add({.site = "a.*", .kind = FaultKind::kIOError});
  plan.Add({.site = "*", .kind = FaultKind::kCrash});
  EXPECT_TRUE(plan.OnPoint("a.x").IsIOError());
  EXPECT_TRUE(plan.OnPoint("b.x").IsInternal());
}

TEST(FaultPlanTest, ExactSiteDoesNotMatchPrefix) {
  FaultPlan plan(1);
  plan.Add({.site = "pregel.superstep.barrier", .kind = FaultKind::kCrash});
  EXPECT_TRUE(plan.OnPoint("pregel.superstep.barrier").IsInternal());
  EXPECT_TRUE(plan.OnPoint("pregel.superstep.barrier.extra").ok());
  EXPECT_TRUE(plan.OnPoint("pregel.worker.compute").ok());
}

// ------------------------------------------------------------ fault kinds

TEST(FaultPlanTest, KindsMapToStatusCodes) {
  FaultPlan plan(1);
  plan.Add({.site = "crash", .kind = FaultKind::kCrash});
  plan.Add({.site = "io", .kind = FaultKind::kIOError});
  Status crash = plan.OnPoint("crash");
  EXPECT_TRUE(crash.IsInternal());
  EXPECT_NE(crash.message().find("injected"), std::string::npos);
  EXPECT_NE(crash.message().find("crash"), std::string::npos);
  EXPECT_TRUE(plan.OnPoint("io").IsIOError());
}

TEST(FaultPlanTest, StallSleepsButSucceeds) {
  FaultPlan plan(1);
  plan.Add({.site = "slow", .kind = FaultKind::kStall, .max_triggers = 1,
            .delay_seconds = 0.05});
  Stopwatch watch;
  EXPECT_TRUE(plan.OnPoint("slow").ok());
  EXPECT_GE(watch.ElapsedSeconds(), 0.04);
  // Quota consumed: no further delay.
  Stopwatch watch2;
  EXPECT_TRUE(plan.OnPoint("slow").ok());
  EXPECT_LT(watch2.ElapsedSeconds(), 0.04);
}

TEST(FaultPlanTest, DropRulesOnlyFireAtDropPoints) {
  FaultPlan plan(1);
  plan.Add({.site = "net", .kind = FaultKind::kDrop});
  // An error-returning point ignores drop rules...
  EXPECT_TRUE(plan.OnPoint("net").ok());
  // ...and a drop point ignores error rules.
  plan.Add({.site = "cpu", .kind = FaultKind::kCrash});
  EXPECT_FALSE(plan.OnDropPoint("cpu"));
  EXPECT_TRUE(plan.OnDropPoint("net"));
}

// -------------------------------------------------------- scoped activation

TEST(ScopedFaultPlanTest, PointsAreNoOpsWithoutAnActivePlan) {
  ASSERT_EQ(ActivePlan(), nullptr);
  EXPECT_TRUE(CheckPoint("anything").ok());
  EXPECT_FALSE(ShouldDrop("anything"));
}

TEST(ScopedFaultPlanTest, InstallsAndRestores) {
  FaultPlan outer(1);
  outer.Add({.site = "*", .kind = FaultKind::kCrash});
  FaultPlan inner(2);  // no rules: hits recorded, nothing triggers
  {
    ScopedFaultPlan activate_outer(&outer);
    EXPECT_EQ(ActivePlan(), &outer);
    EXPECT_FALSE(CheckPoint("site").ok());
    {
      ScopedFaultPlan activate_inner(&inner);
      EXPECT_EQ(ActivePlan(), &inner);
      EXPECT_TRUE(CheckPoint("site").ok());
    }
    EXPECT_EQ(ActivePlan(), &outer);
    EXPECT_FALSE(CheckPoint("site").ok());
  }
  EXPECT_EQ(ActivePlan(), nullptr);
  EXPECT_EQ(outer.HitCount("site"), 2u);
  EXPECT_EQ(outer.TriggeredCount("site"), 2u);
  EXPECT_EQ(inner.HitCount("site"), 1u);
  EXPECT_EQ(inner.TriggeredCount("site"), 0u);
}

#ifndef GLY_DISABLE_FAULT_POINTS
TEST(ScopedFaultPlanTest, MacroFormsConsultTheActivePlan) {
  FaultPlan plan(3);
  plan.Add({.site = "macro.point", .kind = FaultKind::kIOError});
  plan.Add({.site = "macro.drop", .kind = FaultKind::kDrop});
  auto guarded = []() -> Status {
    GLY_FAULT_POINT("macro.point");
    return Status::OK();
  };
  EXPECT_TRUE(guarded().ok());  // disabled: no plan installed
  ScopedFaultPlan active(&plan);
  EXPECT_TRUE(guarded().IsIOError());
  EXPECT_TRUE(GLY_FAULT_DROP("macro.drop"));
  EXPECT_FALSE(GLY_FAULT_DROP("macro.point"));
}
#endif  // GLY_DISABLE_FAULT_POINTS

// -------------------------------------------------------------- accounting

TEST(FaultPlanTest, HitAccountingPerSite) {
  FaultPlan plan(5);
  plan.Add({.site = "a", .kind = FaultKind::kCrash, .probability = 0.5});
  for (int i = 0; i < 100; ++i) {
    (void)plan.OnPoint("a");
    (void)plan.OnPoint("b");
  }
  auto snapshot = plan.Snapshot();
  EXPECT_EQ(snapshot["a"].hits, 100u);
  EXPECT_EQ(snapshot["b"].hits, 100u);
  EXPECT_EQ(snapshot["b"].triggered, 0u);
  EXPECT_GT(snapshot["a"].triggered, 0u);
  EXPECT_LT(snapshot["a"].triggered, 100u);
  EXPECT_EQ(plan.TotalTriggered(), snapshot["a"].triggered);
}

TEST(FaultPlanTest, MaxTriggersHoldsUnderConcurrency) {
  FaultPlan plan(6);
  plan.Add({.site = "c", .kind = FaultKind::kCrash, .max_triggers = 10});
  std::vector<std::future<uint64_t>> tasks;
  for (int t = 0; t < 8; ++t) {
    tasks.push_back(std::async(std::launch::async, [&plan] {
      uint64_t failures = 0;
      for (int i = 0; i < 200; ++i) {
        if (!plan.OnPoint("c").ok()) ++failures;
      }
      return failures;
    }));
  }
  uint64_t failures = 0;
  for (auto& t : tasks) failures += t.get();
  EXPECT_EQ(failures, 10u);
  EXPECT_EQ(plan.HitCount("c"), 1600u);
  EXPECT_EQ(plan.TotalTriggered(), 10u);
}

}  // namespace
}  // namespace gly::fault
