// SystemMonitor unit tests driven through the injectable ProcReader: the
// summary math (peak/mean RSS, cpu_utilization > 1 with threads) becomes
// deterministic arithmetic instead of a live-process sample, and the
// previously untested windowless-Stop() path is pinned down.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "harness/monitor.h"

namespace gly::harness {
namespace {

// Scripted reader: the test sets the fields between samples.
class FakeProcReader : public ProcReader {
 public:
  uint64_t rss = 0;
  double cpu = 0.0;
  double now = 0.0;

  uint64_t RssBytes() override { return rss; }
  double CpuSeconds() override { return cpu; }
  double NowSeconds() override { return now; }
};

TEST(SystemMonitorTest, PeakAndMeanRssMath) {
  FakeProcReader proc;
  SystemMonitor monitor(/*interval_seconds=*/0.05, &proc);

  proc.now = 100.0;
  proc.cpu = 10.0;
  monitor.StartManual();

  proc.now = 101.0;
  proc.rss = 1000;
  monitor.SampleOnce();
  proc.now = 102.0;
  proc.rss = 3000;
  monitor.SampleOnce();
  proc.now = 103.0;
  proc.rss = 2000;
  monitor.SampleOnce();

  proc.now = 104.0;
  proc.cpu = 14.0;
  ResourceSummary summary = monitor.Stop();

  EXPECT_EQ(summary.samples, 3u);
  EXPECT_EQ(summary.peak_rss_bytes, 3000u);
  EXPECT_EQ(summary.mean_rss_bytes, 2000u);
  EXPECT_DOUBLE_EQ(summary.wall_seconds, 4.0);
  EXPECT_DOUBLE_EQ(summary.cpu_seconds, 4.0);
  EXPECT_DOUBLE_EQ(summary.cpu_utilization, 1.0);

  const std::vector<ResourceSample>& samples = monitor.samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_DOUBLE_EQ(samples[0].at_seconds, 1.0);
  EXPECT_DOUBLE_EQ(samples[2].at_seconds, 3.0);
  EXPECT_EQ(samples[1].rss_bytes, 3000u);
}

TEST(SystemMonitorTest, CpuUtilizationExceedsOneWithThreads) {
  // 8 CPU-seconds over a 2-second wall window: a multi-threaded process.
  FakeProcReader proc;
  SystemMonitor monitor(0.05, &proc);
  proc.now = 50.0;
  proc.cpu = 100.0;
  monitor.StartManual();
  proc.now = 52.0;
  proc.cpu = 108.0;
  ResourceSummary summary = monitor.Stop();
  EXPECT_DOUBLE_EQ(summary.wall_seconds, 2.0);
  EXPECT_DOUBLE_EQ(summary.cpu_seconds, 8.0);
  EXPECT_DOUBLE_EQ(summary.cpu_utilization, 4.0);
}

TEST(SystemMonitorTest, ZeroSampleStopIsWellDefined) {
  // A window so short the sampler never ran: summary must not divide by
  // zero samples, and the RSS stats are zero, not garbage.
  FakeProcReader proc;
  SystemMonitor monitor(0.05, &proc);
  proc.now = 10.0;
  monitor.StartManual();
  proc.now = 10.0;  // zero-width window too
  ResourceSummary summary = monitor.Stop();
  EXPECT_EQ(summary.samples, 0u);
  EXPECT_EQ(summary.peak_rss_bytes, 0u);
  EXPECT_EQ(summary.mean_rss_bytes, 0u);
  EXPECT_DOUBLE_EQ(summary.wall_seconds, 0.0);
  EXPECT_DOUBLE_EQ(summary.cpu_utilization, 0.0);  // 0/0 guarded
}

TEST(SystemMonitorTest, StopWithoutStartReturnsZeroSummary) {
  // Previously this path reported NowSeconds() - 0.0 as the wall span.
  FakeProcReader proc;
  proc.now = 12345.0;
  proc.cpu = 67.0;
  SystemMonitor monitor(0.05, &proc);
  ResourceSummary summary = monitor.Stop();
  EXPECT_EQ(summary.samples, 0u);
  EXPECT_DOUBLE_EQ(summary.wall_seconds, 0.0);
  EXPECT_DOUBLE_EQ(summary.cpu_seconds, 0.0);
  EXPECT_DOUBLE_EQ(summary.cpu_utilization, 0.0);
}

TEST(SystemMonitorTest, SecondStopIsZeroNotStale) {
  FakeProcReader proc;
  SystemMonitor monitor(0.05, &proc);
  proc.now = 1.0;
  monitor.StartManual();
  proc.now = 3.0;
  ResourceSummary first = monitor.Stop();
  EXPECT_DOUBLE_EQ(first.wall_seconds, 2.0);
  proc.now = 50.0;
  ResourceSummary second = monitor.Stop();  // window already closed
  EXPECT_DOUBLE_EQ(second.wall_seconds, 0.0);
  EXPECT_EQ(second.samples, 0u);
}

TEST(SystemMonitorTest, RestartClearsPreviousWindow) {
  FakeProcReader proc;
  SystemMonitor monitor(0.05, &proc);
  proc.now = 0.0;
  monitor.StartManual();
  proc.rss = 9999;
  monitor.SampleOnce();
  monitor.Stop();

  proc.now = 100.0;
  monitor.StartManual();  // must clear old samples
  proc.now = 101.0;
  proc.rss = 10;
  monitor.SampleOnce();
  ResourceSummary summary = monitor.Stop();
  EXPECT_EQ(summary.samples, 1u);
  EXPECT_EQ(summary.peak_rss_bytes, 10u);
}

TEST(SystemMonitorTest, BackgroundSamplingOnLiveProcess) {
  // Smoke test on the real /proc reader: the background thread collects at
  // least one sample and RSS of a live process is nonzero.
  SystemMonitor monitor(/*interval_seconds=*/0.001);
  monitor.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ResourceSummary summary = monitor.Stop();
  EXPECT_GE(summary.samples, 1u);
  EXPECT_GT(summary.peak_rss_bytes, 0u);
  EXPECT_GT(summary.wall_seconds, 0.0);
}

TEST(SystemMonitorTest, LiveProcReadersReturnPlausibleValues) {
  SelfProcReader self;
  EXPECT_GT(self.RssBytes(), 0u);
  EXPECT_GE(self.CpuSeconds(), 0.0);
  double a = self.NowSeconds();
  double b = self.NowSeconds();
  EXPECT_GE(b, a);
  // getrusage's high-water mark can never be below the current RSS.
  EXPECT_GE(self.PeakRssBytes(), self.RssBytes());
}

// Reader that also scripts the kernel's ru_maxrss high-water mark.
class PeakAwareProcReader : public FakeProcReader {
 public:
  uint64_t peak = 0;
  uint64_t PeakRssBytes() override { return peak; }
};

TEST(SystemMonitorTest, PeakRssReconciledWithRusageHighWaterMark) {
  // An allocation spike between /proc samples is invisible to the poller
  // but moves ru_maxrss: the summary must report the rusage value.
  PeakAwareProcReader proc;
  SystemMonitor monitor(0.05, &proc);
  proc.now = 0.0;
  proc.peak = 5000;  // lifetime peak before this window
  monitor.StartManual();
  proc.now = 1.0;
  proc.rss = 1000;
  monitor.SampleOnce();
  proc.now = 2.0;
  proc.peak = 8000;  // spike the sampler never saw
  ResourceSummary summary = monitor.Stop();
  EXPECT_EQ(summary.peak_rss_bytes, 8000u);
}

TEST(SystemMonitorTest, StalePeakFromEarlierWindowIsIgnored) {
  // ru_maxrss is per-process-lifetime: a big peak *before* this window must
  // not leak into its summary when the mark did not advance.
  PeakAwareProcReader proc;
  SystemMonitor monitor(0.05, &proc);
  proc.now = 0.0;
  proc.peak = 90000;  // high-water mark from some earlier phase
  monitor.StartManual();
  proc.now = 1.0;
  proc.rss = 1000;
  monitor.SampleOnce();
  proc.now = 2.0;  // peak unchanged during the window
  ResourceSummary summary = monitor.Stop();
  EXPECT_EQ(summary.peak_rss_bytes, 1000u);
}

TEST(SystemMonitorTest, SampledPeakWinsWhenAboveAdvancedMark) {
  // If the sampler itself saw a higher value (e.g. rusage granularity),
  // reconciliation takes the max rather than trusting either side alone.
  PeakAwareProcReader proc;
  SystemMonitor monitor(0.05, &proc);
  proc.now = 0.0;
  proc.peak = 100;
  monitor.StartManual();
  proc.now = 1.0;
  proc.rss = 7000;
  monitor.SampleOnce();
  proc.now = 2.0;
  proc.peak = 4000;  // advanced, but below the sampled peak
  ResourceSummary summary = monitor.Stop();
  EXPECT_EQ(summary.peak_rss_bytes, 7000u);
}

}  // namespace
}  // namespace gly::harness
