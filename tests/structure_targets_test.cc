// Tests for the structure-targeted generation pipeline (§2.2 / Table 1).

#include <gtest/gtest.h>

#include "analysis/metrics.h"
#include "datagen/structure_targets.h"
#include "graph/graph.h"

namespace gly::datagen {
namespace {

StructureTargets SmallTargets() {
  StructureTargets targets;
  targets.num_vertices = 3000;
  targets.num_edges = 12000;
  targets.degree_spec = "geometric:p=0.25";
  targets.closure_bisection_steps = 4;
  targets.rewire_iterations = 15000;
  targets.seed = 9;
  return targets;
}

TEST(StructureTargetsTest, HitsHighClusteringTarget) {
  StructureTargets targets = SmallTargets();
  targets.target_average_clustering = 0.35;
  auto result = GenerateWithTargets(targets);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->average_clustering, 0.2);
  EXPECT_GT(result->closure_fraction_used, 0.0);
}

TEST(StructureTargetsTest, HitsLowClusteringTarget) {
  StructureTargets targets = SmallTargets();
  targets.target_average_clustering = 0.02;
  auto result = GenerateWithTargets(targets);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->average_clustering, 0.08);
}

TEST(StructureTargetsTest, DrivesAssortativitySign) {
  for (double target : {0.12, -0.12}) {
    StructureTargets targets = SmallTargets();
    targets.target_average_clustering = 0.05;
    targets.target_assortativity = target;
    auto result = GenerateWithTargets(targets);
    ASSERT_TRUE(result.ok());
    if (target > 0) {
      EXPECT_GT(result->assortativity, 0.02) << "target " << target;
    } else {
      EXPECT_LT(result->assortativity, -0.02) << "target " << target;
    }
  }
}

TEST(StructureTargetsTest, EdgeBudgetApproximatelyRespected) {
  StructureTargets targets = SmallTargets();
  targets.target_average_clustering = 0.15;
  auto result = GenerateWithTargets(targets);
  ASSERT_TRUE(result.ok());
  double ratio = static_cast<double>(result->edges.num_edges()) /
                 static_cast<double>(targets.num_edges);
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.3);
}

TEST(StructureTargetsTest, ReportedMetricsMatchIndependentMeasurement) {
  StructureTargets targets = SmallTargets();
  targets.target_average_clustering = 0.2;
  auto result = GenerateWithTargets(targets);
  ASSERT_TRUE(result.ok());
  Graph g = GraphBuilder::Undirected(result->edges).ValueOrDie();
  EXPECT_NEAR(AverageClusteringCoefficient(g), result->average_clustering,
              1e-9);
  EXPECT_NEAR(DegreeAssortativity(g), result->assortativity, 1e-9);
}

TEST(StructureTargetsTest, DeterministicForSeed) {
  StructureTargets targets = SmallTargets();
  targets.target_average_clustering = 0.1;
  auto a = GenerateWithTargets(targets);
  auto b = GenerateWithTargets(targets);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->edges.edges(), b->edges.edges());
}

TEST(StructureTargetsTest, RejectsDegenerateTargets) {
  StructureTargets targets;
  targets.num_vertices = 1;
  targets.num_edges = 0;
  EXPECT_FALSE(GenerateWithTargets(targets).ok());
}

}  // namespace
}  // namespace gly::datagen
