#include "columnstore/transitive.h"

#include <algorithm>
#include <atomic>

#include "common/stopwatch.h"

namespace gly::columnstore {

VertexHashSet::VertexHashSet(size_t initial_capacity) {
  size_t cap = 16;
  while (cap < initial_capacity) cap <<= 1;
  slots_.assign(cap, kEmpty);
}

void VertexHashSet::Grow() {
  std::vector<uint32_t> old = std::move(slots_);
  slots_.assign(old.size() * 2, kEmpty);
  size_ = 0;
  for (uint32_t v : old) {
    if (v != kEmpty) Insert(v);
  }
}

bool VertexHashSet::Insert(uint32_t v) {
  if ((size_ + 1) * 10 >= slots_.size() * 7) Grow();
  size_t mask = slots_.size() - 1;
  size_t i = static_cast<size_t>(Hash(v) >> 33) & mask;
  for (;;) {
    ++probes_;
    if (slots_[i] == kEmpty) {
      slots_[i] = v;
      ++size_;
      return true;
    }
    if (slots_[i] == v) return false;
    i = (i + 1) & mask;
  }
}

bool VertexHashSet::Contains(uint32_t v) const {
  size_t mask = slots_.size() - 1;
  size_t i = static_cast<size_t>(Hash(v) >> 33) & mask;
  for (;;) {
    ++probes_;
    if (slots_[i] == kEmpty) return false;
    if (slots_[i] == v) return true;
    i = (i + 1) & mask;
  }
}

namespace {

uint32_t PartitionOf(uint32_t v, uint32_t parts) {
  uint64_t h = (static_cast<uint64_t>(v) + 1) * 0xD1B54A32D192ED03ULL;
  return static_cast<uint32_t>((h >> 33) % parts);
}

}  // namespace

Result<TransitiveProfile> TransitiveCount(const EdgeTable& table,
                                          VertexId source,
                                          const TransitiveConfig& config) {
  if (source >= table.num_vertices()) {
    return Status::InvalidArgument("source vertex out of range");
  }
  const uint32_t parts = std::max(1u, config.num_partitions);
  ThreadPool pool(parts);
  Stopwatch total;

  // Partitioned visited/border state: one hash set + border vector per
  // partition, touched only by its owning thread.
  std::vector<VertexHashSet> visited(parts);
  std::vector<std::vector<uint32_t>> border(parts);
  border[PartitionOf(source, parts)].push_back(source);
  visited[PartitionOf(source, parts)].Insert(source);

  // Per-partition operator timers and lookup stats.
  std::vector<double> column_time(parts, 0.0);
  std::vector<double> exchange_time(parts, 0.0);
  std::vector<double> hash_time(parts, 0.0);
  std::vector<LookupStats> lookups(parts);

  TransitiveProfile profile;

  bool any_border = true;
  while (any_border) {
    ++profile.waves;
    // Stage 1+2 (parallel per partition): column lookups over the border,
    // exchange split of the targets.
    std::vector<std::vector<std::vector<uint32_t>>> outgoing(
        parts, std::vector<std::vector<uint32_t>>(parts));
    std::vector<std::future<void>> tasks;
    for (uint32_t p = 0; p < parts; ++p) {
      tasks.push_back(pool.Submit([&, p] {
        std::vector<uint32_t> targets;
        std::vector<uint32_t> batch_targets;
        const auto& b = border[p];
        for (size_t i = 0; i < b.size(); i += config.vector_size) {
          size_t end = std::min(b.size(), i + config.vector_size);
          // Column access: vectored out-edge lookups.
          Stopwatch col_watch;
          batch_targets.clear();
          for (size_t j = i; j < end; ++j) {
            std::vector<uint32_t> out;
            table.OutEdges(b[j], &out, &lookups[p]);
            batch_targets.insert(batch_targets.end(), out.begin(), out.end());
          }
          column_time[p] += col_watch.ElapsedSeconds();

          // Exchange: split the batch by target partition.
          Stopwatch ex_watch;
          for (uint32_t t : batch_targets) {
            outgoing[p][PartitionOf(t, parts)].push_back(t);
          }
          exchange_time[p] += ex_watch.ElapsedSeconds();
        }
      }));
    }
    for (auto& t : tasks) t.get();

    // Barrier, then stage 3 (parallel per destination partition): record
    // the new border in the partitioned hash table.
    std::vector<std::future<uint64_t>> hash_tasks;
    for (uint32_t p = 0; p < parts; ++p) {
      hash_tasks.push_back(pool.Submit([&, p]() -> uint64_t {
        Stopwatch hash_watch;
        std::vector<uint32_t> new_border;
        for (uint32_t src_part = 0; src_part < parts; ++src_part) {
          for (uint32_t t : outgoing[src_part][p]) {
            if (visited[p].Insert(t)) new_border.push_back(t);
          }
        }
        border[p] = std::move(new_border);
        hash_time[p] += hash_watch.ElapsedSeconds();
        return border[p].size();
      }));
    }
    uint64_t new_border_total = 0;
    for (auto& t : hash_tasks) new_border_total += t.get();
    any_border = new_border_total > 0;
  }

  profile.seconds = total.ElapsedSeconds();
  for (uint32_t p = 0; p < parts; ++p) {
    profile.random_lookups += lookups[p].random_lookups;
    profile.edge_endpoints_visited += lookups[p].edge_endpoints_visited;
    profile.distinct_reached += visited[p].size();
  }
  profile.distinct_reached -= 1;  // the source itself is not counted
  double op_total = 0.0;
  double col = 0.0;
  double ex = 0.0;
  double hash = 0.0;
  for (uint32_t p = 0; p < parts; ++p) {
    col += column_time[p];
    ex += exchange_time[p];
    hash += hash_time[p];
  }
  op_total = col + ex + hash;
  if (op_total > 0.0) {
    profile.column_fraction = col / op_total;
    profile.exchange_fraction = ex / op_total;
    profile.hash_fraction = hash / op_total;
  }
  if (profile.seconds > 0.0) {
    profile.mteps = static_cast<double>(profile.edge_endpoints_visited) /
                    profile.seconds / 1e6;
  }
  return profile;
}

}  // namespace gly::columnstore
