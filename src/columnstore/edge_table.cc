#include "columnstore/edge_table.h"

#include <algorithm>

namespace gly::columnstore {

Result<EdgeTable> EdgeTable::Build(const EdgeList& edges) {
  EdgeTable table;
  table.num_vertices_ = edges.num_vertices();
  std::vector<Edge> sorted = edges.edges();
  std::sort(sorted.begin(), sorted.end());
  std::vector<uint32_t> from;
  std::vector<uint32_t> to;
  from.reserve(sorted.size());
  to.reserve(sorted.size());
  for (const Edge& e : sorted) {
    from.push_back(e.src);
    to.push_back(e.dst);
  }
  table.row_index_.assign(static_cast<size_t>(table.num_vertices_) + 1, 0);
  for (const Edge& e : sorted) {
    ++table.row_index_[e.src + 1];
  }
  for (size_t i = 1; i < table.row_index_.size(); ++i) {
    table.row_index_[i] += table.row_index_[i - 1];
  }
  table.from_ = Column::Encode(from);
  table.to_ = Column::Encode(to);
  return table;
}

void EdgeTable::OutEdges(VertexId v, std::vector<uint32_t>* out,
                         LookupStats* stats) const {
  out->clear();
  if (v >= num_vertices_) return;
  ++stats->random_lookups;
  uint64_t begin = row_index_[v];
  uint64_t end = row_index_[v + 1];
  to_.ReadRange(begin, end, out);
  stats->edge_endpoints_visited += out->size();
}

}  // namespace gly::columnstore
