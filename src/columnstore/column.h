// Compressed columns — the "Virtuoso column store" storage layer.
//
// Section 3.4 of the paper runs BFS as a SQL transitive query on OpenLink
// Virtuoso, whose profile is dominated by "column store random access and
// decompression". This module provides the matching storage primitives:
// u32 columns stored in fixed-size blocks, each block encoded with the
// cheapest of
//   * RLE        — run-length (constant or few-valued blocks),
//   * DELTA_FOR  — delta + frame-of-reference bit-packing (sorted or
//                  clustered data, e.g. the edge table's `from` column),
//   * FOR        — frame-of-reference bit-packing (small-range data),
//   * PLAIN      — raw values (incompressible blocks).
// Reads decode whole blocks into caller vectors (vectored execution).

#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace gly::columnstore {

/// Values per block (Virtuoso-like vector size).
inline constexpr uint32_t kBlockSize = 2048;

/// Block encodings.
enum class Encoding : uint8_t { kPlain = 0, kRle = 1, kFor = 2, kDeltaFor = 3 };

/// Packs `values` (each < 2^width) at `width` bits each into `out`.
void BitPack(const uint32_t* values, size_t count, uint32_t width,
             std::vector<uint64_t>* out);

/// Unpacks `count` `width`-bit values from `packed`.
void BitUnpack(const uint64_t* packed, size_t count, uint32_t width,
               uint32_t* out);

/// Number of bits needed to represent `v` (0 -> 0 bits).
uint32_t BitsFor(uint32_t v);

/// An immutable compressed u32 column.
class Column {
 public:
  /// Encodes `values` into a column, choosing per block the smallest of the
  /// supported encodings.
  static Column Encode(const std::vector<uint32_t>& values);

  uint64_t size() const { return size_; }

  /// Compressed footprint in bytes (data + block directory).
  uint64_t compressed_bytes() const;

  /// Uncompressed footprint (size * 4).
  uint64_t raw_bytes() const { return size_ * sizeof(uint32_t); }

  /// Decodes the block containing `row` into `out` (kBlockSize values max);
  /// returns the row index of the block's first value. `out` is resized to
  /// the block's value count. Counts one block decode in `decodes`.
  uint64_t DecodeBlockContaining(uint64_t row, std::vector<uint32_t>* out) const;

  /// Reads rows [begin, end) into `out` (block-at-a-time decode).
  void ReadRange(uint64_t begin, uint64_t end, std::vector<uint32_t>* out) const;

  /// Random access to a single row (decodes its block).
  uint32_t Get(uint64_t row) const;

  /// Total block decodes performed (profiling; mutable counter).
  uint64_t block_decodes() const { return decodes_; }

  /// Per-encoding block counts, indexed by Encoding.
  const std::vector<uint32_t>& encoding_histogram() const {
    return encoding_counts_;
  }

 private:
  struct BlockMeta {
    uint64_t data_offset = 0;  // index into data_ (u64 words)
    uint32_t count = 0;
    uint32_t base = 0;         // FOR base / RLE value / delta start
    Encoding encoding = Encoding::kPlain;
    uint8_t width = 0;         // packed bit width
  };

  static BlockMeta EncodeBlock(const uint32_t* values, uint32_t count,
                               std::vector<uint64_t>* data);

  uint64_t size_ = 0;
  std::vector<BlockMeta> blocks_;
  std::vector<uint64_t> data_;
  std::vector<uint32_t> encoding_counts_ = std::vector<uint32_t>(4, 0);
  mutable uint64_t decodes_ = 0;
};

}  // namespace gly::columnstore
