// The Virtuoso transitive-traversal operator (§3.4).
//
// Reproduces the execution strategy the paper describes verbatim: "The
// state of the computation is kept in a partitioned hash table, with one
// thread reading/writing each partition, with an exchange operator between
// the lookup of outbound edges and the recording of the new border, as the
// source and target of any edge most often fall in a different partition."
//
// Per BFS wave, each partition thread
//   1. column access — looks up the outbound edges of its border vertices
//      (random lookups + block decodes on the compressed edge table);
//   2. exchange      — hash-splits the resulting targets into per-partition
//      vectors ("get partition hash of a vector, split into per partition
//      vectors by hash");
//   3. hash table    — after the wave barrier, probes/inserts its incoming
//      targets into its partition of the border hash table.
// Per-operator wall time is accumulated so the bench can report the CPU
// profile split the paper gives (33% hash table / 10% exchange / 57%
// column access).

#pragma once

#include <cstdint>
#include <vector>

#include "columnstore/edge_table.h"
#include "common/result.h"
#include "common/threadpool.h"

namespace gly::columnstore {

/// Operator configuration.
struct TransitiveConfig {
  uint32_t num_partitions = 8;  ///< hash-table partitions == worker threads
  uint32_t vector_size = 1024;  ///< vectored-execution batch size
};

/// Execution profile of one transitive query (the §3.4 numbers).
struct TransitiveProfile {
  uint64_t distinct_reached = 0;   ///< count(*) result (excludes the source)
  uint64_t random_lookups = 0;     ///< per-vertex out-edge lookups
  uint64_t edge_endpoints_visited = 0;
  uint64_t waves = 0;              ///< BFS depth reached
  double seconds = 0.0;
  double mteps = 0.0;              ///< edge endpoints / second / 1e6
  /// Fraction of measured operator time per stage (sums to ~1).
  double hash_fraction = 0.0;
  double exchange_fraction = 0.0;
  double column_fraction = 0.0;
};

/// Open-addressing hash set over vertex ids (one partition of the border
/// hash table). Linear probing, power-of-two capacity, grows at 0.7 load.
class VertexHashSet {
 public:
  explicit VertexHashSet(size_t initial_capacity = 1024);

  /// Inserts `v`; returns true if newly inserted.
  bool Insert(uint32_t v);

  bool Contains(uint32_t v) const;
  size_t size() const { return size_; }
  uint64_t probes() const { return probes_; }

 private:
  void Grow();
  static uint64_t Hash(uint32_t v) {
    return (static_cast<uint64_t>(v) + 1) * 0x9E3779B97F4A7C15ULL;
  }

  std::vector<uint32_t> slots_;  // kEmpty == empty
  size_t size_ = 0;
  mutable uint64_t probes_ = 0;
  static constexpr uint32_t kEmpty = ~0u;
};

/// Runs the transitive reachability count from `source`:
/// `select count(*) ... where spe_from = source` with t_distinct semantics.
Result<TransitiveProfile> TransitiveCount(const EdgeTable& table,
                                          VertexId source,
                                          const TransitiveConfig& config);

}  // namespace gly::columnstore
