// EdgeTable: the sp_edge relation of the §3.4 experiment.
//
// A two-column table (spe_from, spe_to) sorted by (from, to) and compressed
// column-wise — the Virtuoso layout the paper queries with
//
//   select count (*) from (select spe_to from
//     (select transitive t_in (1) t_out (2) t_distinct
//        spe_from, spe_to from sp_edge) derived_table_1
//     where spe_from = 420) derived_table_2;
//
// "Getting the outbound edges of a vertex" is a random lookup: a binary
// search over the sparse from-index followed by block decodes of the `to`
// column — the 57% "column store random access and decompression" share of
// the paper's CPU profile comes from exactly this path.

#pragma once

#include <cstdint>
#include <vector>

#include "columnstore/column.h"
#include "common/result.h"
#include "graph/edge_list.h"

namespace gly::columnstore {

/// Lookup statistics (the §3.4 query profile counts).
struct LookupStats {
  uint64_t random_lookups = 0;        ///< per-vertex range lookups
  uint64_t edge_endpoints_visited = 0;
};

/// Immutable compressed edge table.
class EdgeTable {
 public:
  /// Builds the table from an edge list (sorted internally).
  static Result<EdgeTable> Build(const EdgeList& edges);

  uint64_t num_rows() const { return to_.size(); }
  VertexId num_vertices() const { return num_vertices_; }

  uint64_t compressed_bytes() const {
    return from_.compressed_bytes() + to_.compressed_bytes() +
           row_index_.size() * sizeof(uint64_t);
  }
  uint64_t raw_bytes() const { return from_.raw_bytes() + to_.raw_bytes(); }

  /// Appends the out-neighbors of `v` to `out` (decoding `to` blocks) and
  /// accounts the lookup in `stats`.
  void OutEdges(VertexId v, std::vector<uint32_t>* out,
                LookupStats* stats) const;

  const Column& from_column() const { return from_; }
  const Column& to_column() const { return to_; }

 private:
  VertexId num_vertices_ = 0;
  Column from_;
  Column to_;
  /// Sparse index: row_index_[v] = first row with spe_from >= v
  /// (size num_vertices_+1). Equivalent to Virtuoso's index on the sorted
  /// projection.
  std::vector<uint64_t> row_index_;
};

}  // namespace gly::columnstore
