#include "columnstore/column.h"

#include <algorithm>
#include <cassert>

namespace gly::columnstore {

uint32_t BitsFor(uint32_t v) {
  uint32_t bits = 0;
  while (v != 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

void BitPack(const uint32_t* values, size_t count, uint32_t width,
             std::vector<uint64_t>* out) {
  out->assign((count * width + 63) / 64, 0);
  if (width == 0) return;
  for (size_t i = 0; i < count; ++i) {
    uint64_t bit = i * width;
    size_t word = bit / 64;
    uint32_t shift = bit % 64;
    (*out)[word] |= static_cast<uint64_t>(values[i]) << shift;
    if (shift + width > 64) {
      (*out)[word + 1] |= static_cast<uint64_t>(values[i]) >> (64 - shift);
    }
  }
}

void BitUnpack(const uint64_t* packed, size_t count, uint32_t width,
               uint32_t* out) {
  if (width == 0) {
    std::fill(out, out + count, 0);
    return;
  }
  const uint64_t mask = width >= 32 ? ~0u : ((1ULL << width) - 1);
  for (size_t i = 0; i < count; ++i) {
    uint64_t bit = i * width;
    size_t word = bit / 64;
    uint32_t shift = bit % 64;
    uint64_t v = packed[word] >> shift;
    if (shift + width > 64) {
      v |= packed[word + 1] << (64 - shift);
    }
    out[i] = static_cast<uint32_t>(v & mask);
  }
}

Column::BlockMeta Column::EncodeBlock(const uint32_t* values, uint32_t count,
                                      std::vector<uint64_t>* data) {
  BlockMeta meta;
  meta.count = count;
  meta.data_offset = data->size();

  uint32_t min_v = values[0];
  uint32_t max_v = values[0];
  bool sorted = true;
  bool constant = true;
  for (uint32_t i = 0; i < count; ++i) {
    min_v = std::min(min_v, values[i]);
    max_v = std::max(max_v, values[i]);
    if (i > 0) {
      if (values[i] < values[i - 1]) sorted = false;
      if (values[i] != values[0]) constant = false;
    }
  }

  if (constant) {
    meta.encoding = Encoding::kRle;
    meta.base = values[0];
    meta.width = 0;
    return meta;  // no payload
  }

  // Candidate widths.
  const uint32_t for_width = BitsFor(max_v - min_v);
  uint32_t delta_width = 0;
  if (sorted) {
    uint32_t max_delta = 0;
    for (uint32_t i = 1; i < count; ++i) {
      max_delta = std::max(max_delta, values[i] - values[i - 1]);
    }
    delta_width = BitsFor(max_delta);
  }

  std::vector<uint32_t> transformed(count);
  if (sorted && delta_width < for_width) {
    meta.encoding = Encoding::kDeltaFor;
    meta.base = values[0];
    meta.width = static_cast<uint8_t>(delta_width);
    transformed[0] = 0;
    for (uint32_t i = 1; i < count; ++i) {
      transformed[i] = values[i] - values[i - 1];
    }
  } else if (for_width < 32) {
    meta.encoding = Encoding::kFor;
    meta.base = min_v;
    meta.width = static_cast<uint8_t>(for_width);
    for (uint32_t i = 0; i < count; ++i) transformed[i] = values[i] - min_v;
  } else {
    meta.encoding = Encoding::kPlain;
    meta.base = 0;
    meta.width = 32;
    std::copy(values, values + count, transformed.begin());
  }
  std::vector<uint64_t> packed;
  BitPack(transformed.data(), count, meta.width, &packed);
  data->insert(data->end(), packed.begin(), packed.end());
  return meta;
}

Column Column::Encode(const std::vector<uint32_t>& values) {
  Column col;
  col.size_ = values.size();
  for (uint64_t begin = 0; begin < values.size(); begin += kBlockSize) {
    uint32_t count = static_cast<uint32_t>(
        std::min<uint64_t>(kBlockSize, values.size() - begin));
    BlockMeta meta = EncodeBlock(values.data() + begin, count, &col.data_);
    ++col.encoding_counts_[static_cast<size_t>(meta.encoding)];
    col.blocks_.push_back(meta);
  }
  return col;
}

uint64_t Column::compressed_bytes() const {
  return data_.size() * sizeof(uint64_t) + blocks_.size() * sizeof(BlockMeta);
}

uint64_t Column::DecodeBlockContaining(uint64_t row,
                                       std::vector<uint32_t>* out) const {
  assert(row < size_);
  const uint64_t block_idx = row / kBlockSize;
  const BlockMeta& meta = blocks_[block_idx];
  out->resize(meta.count);
  ++decodes_;
  switch (meta.encoding) {
    case Encoding::kRle:
      std::fill(out->begin(), out->end(), meta.base);
      break;
    case Encoding::kFor:
      BitUnpack(data_.data() + meta.data_offset, meta.count, meta.width,
                out->data());
      for (uint32_t& v : *out) v += meta.base;
      break;
    case Encoding::kDeltaFor: {
      BitUnpack(data_.data() + meta.data_offset, meta.count, meta.width,
                out->data());
      uint32_t acc = meta.base;
      for (uint32_t i = 0; i < meta.count; ++i) {
        acc += (*out)[i];
        (*out)[i] = acc;
      }
      break;
    }
    case Encoding::kPlain:
      BitUnpack(data_.data() + meta.data_offset, meta.count, meta.width,
                out->data());
      break;
  }
  return block_idx * kBlockSize;
}

void Column::ReadRange(uint64_t begin, uint64_t end,
                       std::vector<uint32_t>* out) const {
  out->clear();
  if (begin >= end) return;
  out->reserve(end - begin);
  std::vector<uint32_t> block;
  uint64_t row = begin;
  while (row < end) {
    uint64_t block_start = DecodeBlockContaining(row, &block);
    uint64_t offset = row - block_start;
    uint64_t take = std::min<uint64_t>(block.size() - offset, end - row);
    out->insert(out->end(), block.begin() + offset,
                block.begin() + offset + take);
    row += take;
  }
}

uint32_t Column::Get(uint64_t row) const {
  std::vector<uint32_t> block;
  uint64_t start = DecodeBlockContaining(row, &block);
  return block[row - start];
}

}  // namespace gly::columnstore
