// SystemMonitor — Figure 2's "System Monitor": "responsible for gathering
// resource utilization statistics from the SUT."
//
// Samples process RSS and CPU time from /proc at a fixed interval on a
// background thread while a benchmark run executes. The /proc access is
// behind the ProcReader interface so tests can drive the summary math with
// a scripted reader instead of the live process.

#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/result.h"

namespace gly::harness {

/// One sample of process resource usage.
struct ResourceSample {
  double at_seconds = 0.0;       ///< since Start()
  uint64_t rss_bytes = 0;
  double cpu_seconds = 0.0;      ///< cumulative user+system
};

/// Summary over a monitoring window.
struct ResourceSummary {
  uint64_t peak_rss_bytes = 0;
  uint64_t mean_rss_bytes = 0;
  double cpu_seconds = 0.0;        ///< CPU consumed during the window
  double wall_seconds = 0.0;
  double cpu_utilization = 0.0;    ///< cpu / wall (can exceed 1 with threads)
  size_t samples = 0;
};

/// Source of the monitor's raw readings. The default implementation reads
/// the live process; tests substitute a scripted fake.
class ProcReader {
 public:
  virtual ~ProcReader() = default;
  virtual uint64_t RssBytes() = 0;      ///< current resident set, bytes
  virtual double CpuSeconds() = 0;      ///< cumulative user+system CPU
  virtual double NowSeconds() = 0;      ///< monotonic wall clock
  /// Kernel-tracked lifetime peak RSS (getrusage ru_maxrss), bytes.
  /// 0 = unavailable; defaulted so scripted fakes need not implement it.
  virtual uint64_t PeakRssBytes() { return 0; }
};

/// ProcReader over /proc/self (statm for RSS, stat for CPU) plus
/// getrusage for the kernel's peak-RSS high-water mark.
class SelfProcReader : public ProcReader {
 public:
  uint64_t RssBytes() override;
  double CpuSeconds() override;
  double NowSeconds() override;
  uint64_t PeakRssBytes() override;
};

/// Background sampler.
class SystemMonitor {
 public:
  /// `reader == nullptr` reads the live process via SelfProcReader.
  explicit SystemMonitor(double interval_seconds = 0.05,
                         ProcReader* reader = nullptr)
      : interval_seconds_(interval_seconds), reader_(reader) {}
  ~SystemMonitor();

  /// Starts background sampling (clears previous samples).
  void Start();

  /// Opens a monitoring window without spawning the sampler thread; drive
  /// it with SampleOnce(). Deterministic — for tests and manual stepping.
  void StartManual();

  /// Records one sample now. Only meaningful after StartManual().
  void SampleOnce();

  /// Stops sampling and returns the summary. Calling Stop() with no open
  /// window (never started, or already stopped) returns an all-zero
  /// summary instead of a garbage wall-clock span.
  ResourceSummary Stop();

  const std::vector<ResourceSample>& samples() const { return samples_; }

  /// Reads the current process RSS (bytes) from /proc/self/statm.
  static uint64_t CurrentRssBytes();

  /// Reads cumulative process CPU seconds from /proc/self/stat.
  static double CurrentCpuSeconds();

 private:
  void Loop();
  ProcReader& reader();
  void OpenWindow();

  double interval_seconds_;
  ProcReader* reader_;
  SelfProcReader self_reader_;
  std::atomic<bool> running_{false};
  bool started_ = false;
  std::thread thread_;
  std::vector<ResourceSample> samples_;
  double start_cpu_ = 0.0;
  double start_wall_ = 0.0;
  uint64_t start_peak_rss_ = 0;
};

}  // namespace gly::harness
