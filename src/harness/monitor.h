// SystemMonitor — Figure 2's "System Monitor": "responsible for gathering
// resource utilization statistics from the SUT."
//
// Samples process RSS and CPU time from /proc at a fixed interval on a
// background thread while a benchmark run executes.

#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/result.h"

namespace gly::harness {

/// One sample of process resource usage.
struct ResourceSample {
  double at_seconds = 0.0;       ///< since Start()
  uint64_t rss_bytes = 0;
  double cpu_seconds = 0.0;      ///< cumulative user+system
};

/// Summary over a monitoring window.
struct ResourceSummary {
  uint64_t peak_rss_bytes = 0;
  uint64_t mean_rss_bytes = 0;
  double cpu_seconds = 0.0;        ///< CPU consumed during the window
  double wall_seconds = 0.0;
  double cpu_utilization = 0.0;    ///< cpu / wall (can exceed 1 with threads)
  size_t samples = 0;
};

/// Background sampler.
class SystemMonitor {
 public:
  explicit SystemMonitor(double interval_seconds = 0.05)
      : interval_seconds_(interval_seconds) {}
  ~SystemMonitor();

  /// Starts sampling (clears previous samples).
  void Start();

  /// Stops sampling and returns the summary.
  ResourceSummary Stop();

  const std::vector<ResourceSample>& samples() const { return samples_; }

  /// Reads the current process RSS (bytes) from /proc/self/statm.
  static uint64_t CurrentRssBytes();

  /// Reads cumulative process CPU seconds from /proc/self/stat.
  static double CurrentCpuSeconds();

 private:
  void Loop();

  double interval_seconds_;
  std::atomic<bool> running_{false};
  std::thread thread_;
  std::vector<ResourceSample> samples_;
  double start_cpu_ = 0.0;
  double start_wall_ = 0.0;
};

}  // namespace gly::harness
