// OutputValidator — Figure 2's "Output Validator": "checks the outcome of
// the benchmark to ensure correctness."
//
// Every platform output is compared against the reference implementation:
// exact per-vertex equality for BFS/CONN/CD, exact edge-set equality for
// EVO, numeric tolerance for STATS (floating-point summation order differs
// across platforms).

#pragma once

#include "common/result.h"
#include "ref/algorithms.h"

namespace gly::harness {

/// Validation options.
struct ValidatorOptions {
  double stats_tolerance = 1e-6;   ///< relative tolerance for mean LCC
  double score_tolerance = 1e-9;   ///< relative tolerance for PR ranks
};

/// Validates `actual` against a freshly computed reference result.
/// OK on match; ValidationFailed with a diagnostic otherwise.
Status ValidateOutput(const Graph& graph, AlgorithmKind kind,
                      const AlgorithmParams& params,
                      const AlgorithmOutput& actual,
                      const ValidatorOptions& options = {});

/// Validates against a precomputed expected output (used when the reference
/// run is amortized across platforms).
Status ValidateAgainst(const AlgorithmOutput& expected,
                       const AlgorithmOutput& actual, AlgorithmKind kind,
                       const ValidatorOptions& options = {});

/// True when `kind`'s output is invariant under vertex relabeling (the
/// reorder-permutation contract): STATS, BFS, CONN, and PR qualify; CD and
/// EVO seed their dynamics with vertex ids, so a relabeled run is a
/// different computation and cannot be mapped back.
bool RelabelingInvariant(AlgorithmKind kind);

/// Maps an output computed on a `Graph::ReorderByDegree` graph back into
/// original vertex ids (`new_to_old[new_id] == original_id`): per-vertex
/// values and scores move to their original slots, and CONN's labels —
/// which are vertex ids — are rewritten to the component's smallest
/// original id, exactly what the reference produces on the original graph.
/// Requires RelabelingInvariant(kind).
AlgorithmOutput MapOutputToOriginalIds(AlgorithmKind kind,
                                       const std::vector<VertexId>& new_to_old,
                                       AlgorithmOutput output);

/// CRC32C fingerprint of an algorithm output: per-vertex values, scores
/// (bit patterns), stats, and EVO's new edges, each section length-prefixed
/// so empty/missing sections cannot alias. Two runs that produced the same
/// answer checksum identically — the differential scheduler test compares
/// these across jobs=1 and jobs=N journals; the harness records it per cell
/// as `output_checksum`.
uint32_t OutputChecksum(const AlgorithmOutput& output);

}  // namespace gly::harness
