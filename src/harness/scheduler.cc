#include "harness/scheduler.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/trace.h"

namespace gly::harness {

namespace {
constexpr size_t kNone = static_cast<size_t>(-1);
}  // namespace

std::string SchedulerSummary(const SchedulerStats& stats) {
  return StringPrintf(
      "jobs=%u cells=%llu groups=%llu etl-loads=%llu graph-cache-hits=%llu "
      "queued=%llu budget-deferrals=%llu skipped=%llu peak-in-flight=%u "
      "wall=%.3fs",
      stats.jobs, (unsigned long long)stats.items,
      (unsigned long long)stats.groups, (unsigned long long)stats.admitted,
      (unsigned long long)stats.graph_cache_hits,
      (unsigned long long)stats.queued,
      (unsigned long long)stats.budget_deferrals,
      (unsigned long long)stats.skipped, stats.max_in_flight,
      stats.wall_seconds);
}

CellScheduler::CellScheduler(const Options& options)
    : options_(options), budget_(options.memory_budget_bytes) {
  options_.jobs = std::max(1u, options_.jobs);
}

size_t CellScheduler::AddGroup(uint64_t estimate_bytes) {
  Group group;
  group.estimate = estimate_bytes;
  groups_.push_back(group);
  return groups_.size() - 1;
}

size_t CellScheduler::AddItem(size_t group, std::string label) {
  Item item;
  item.group = group;
  item.label = std::move(label);
  items_.push_back(std::move(item));
  groups_[group].pending += 1;
  return items_.size() - 1;
}

SchedulerStats CellScheduler::Run(const GroupFn& load, const ItemFn& run,
                                  const GroupFn& retire) {
  SchedulerStats stats;
  stats.jobs = options_.jobs;
  stats.items = items_.size();
  stats.groups = groups_.size();
  Stopwatch wall;

  std::mutex mu;
  std::condition_variable cv;
  size_t done_items = 0;       // finished or skipped
  uint32_t in_flight = 0;      // claimed items currently loading/running
  size_t active_groups = 0;    // loaded-not-retired groups
  bool bypass_active = false;  // an oversized group is running alone
  bool stop_swept = false;     // unclaimed items already skipped on stop

  // Would admitting `estimate` more bytes stay inside the budget? The
  // MemoryBudget itself is the accounting; this is the pre-claim check
  // that keeps the scan side-effect free.
  auto fits = [&](uint64_t estimate) {
    return budget_.limit() == 0 ||
           budget_.used() + estimate <= budget_.limit();
  };

  // Admission scan (mu held, pure): the first unclaimed item whose group
  // can go right now. A loaded group just needs to be idle; a fresh group
  // must also fit the remaining admission budget — unless nothing at all
  // is admitted, in which case it goes through oversized (running alone
  // beats starving; the engines' own MemoryBudget still polices real
  // memory). While an oversized group runs, nothing else is admitted.
  auto find_admissible = [&]() -> size_t {
    for (size_t i = 0; i < items_.size(); ++i) {
      Item& item = items_[i];
      if (item.claimed) continue;
      Group& group = groups_[item.group];
      if (group.busy) {
        item.deferred = true;
        continue;
      }
      if (!group.loaded) {
        if (bypass_active) {
          item.deferred = true;
          continue;
        }
        if (!fits(group.estimate) && active_groups > 0) {
          if (!item.deferred) stats.budget_deferrals += 1;
          item.deferred = true;
          continue;
        }
      }
      return i;
    }
    return kNone;
  };

  // Claim bookkeeping (mu held). Returns true when this worker must run
  // the group's load before the item.
  auto claim = [&](size_t i) -> bool {
    Item& item = items_[i];
    Group& group = groups_[item.group];
    item.claimed = true;
    group.busy = true;
    const bool need_load = !group.loaded;
    if (need_load) {
      group.loaded = true;
      if (group.estimate > 0 && fits(group.estimate) &&
          budget_.Charge(group.estimate, "sched.group").ok()) {
        group.charged = true;
      } else if (!fits(group.estimate)) {
        group.bypass = true;  // oversized: admitted against an empty budget
        bypass_active = true;
      }
      active_groups += 1;
      stats.admitted += 1;
    } else {
      stats.graph_cache_hits += 1;
    }
    if (item.deferred) stats.queued += 1;
    in_flight += 1;
    stats.max_in_flight = std::max(stats.max_in_flight, in_flight);
    return need_load;
  };

  // Stop: skip everything unclaimed, exactly once. Returns the groups that
  // became retirable because all their remaining items were skipped.
  auto sweep_on_stop = [&]() -> std::vector<size_t> {
    std::vector<size_t> retirable;
    if (stop_swept) return retirable;
    stop_swept = true;
    for (Item& item : items_) {
      if (item.claimed) continue;
      item.claimed = true;
      done_items += 1;
      stats.skipped += 1;
      Group& group = groups_[item.group];
      group.pending -= 1;
      if (group.pending == 0 && group.loaded && !group.busy) {
        retirable.push_back(item.group);
      }
    }
    cv.notify_all();
    return retirable;
  };

  // Retire a group (mu NOT held): unload first, then release its
  // admission hold so waiters see memory only after it is actually free.
  auto retire_group = [&](size_t g) {
    retire(g);
    std::lock_guard<std::mutex> lock(mu);
    Group& group = groups_[g];
    if (group.charged) {
      budget_.Release(group.estimate);
      group.charged = false;
    }
    if (group.bypass) {
      group.bypass = false;
      bypass_active = false;
    }
    active_groups -= 1;
    cv.notify_all();
  };

  auto worker = [&]() {
    for (;;) {
      size_t claimed = kNone;
      bool need_load = false;
      bool exit_now = false;
      std::vector<size_t> stop_retires;
      {
        std::unique_lock<std::mutex> lock(mu);
        for (;;) {
          if (Cancelled(options_.stop)) {
            stop_retires = sweep_on_stop();
            exit_now = true;
            break;
          }
          if (done_items + in_flight == items_.size()) {
            // Everything is finished or running on other workers.
            exit_now = true;
            break;
          }
          size_t next = find_admissible();
          if (next == kNone) {
            // Blocked on a busy group or the budget: wait under a real
            // span so queue time shows up in the trace, attributed to the
            // item this worker ends up claiming.
            trace::TraceSpan wait_span("harness.sched.wait", "harness");
            while (next == kNone) {
              cv.wait(lock);
              if (Cancelled(options_.stop) ||
                  done_items + in_flight == items_.size()) {
                break;
              }
              next = find_admissible();
            }
            if (next == kNone) continue;  // stop or drained: re-evaluate
            wait_span.SetAttribute("cell", items_[next].label);
          }
          need_load = claim(next);
          claimed = next;
          break;
        }
      }

      for (size_t g : stop_retires) retire_group(g);
      if (claimed == kNone) {
        if (exit_now) {
          cv.notify_all();
          return;
        }
        continue;
      }

      if (need_load) {
        metrics::AddCounter("harness.sched.admitted");
        load(items_[claimed].group);
      } else {
        metrics::AddCounter("harness.sched.graph_cache_hits");
      }
      if (items_[claimed].deferred) {
        metrics::AddCounter("harness.sched.queued");
      }
      run(claimed);

      bool do_retire = false;
      const size_t g = items_[claimed].group;
      {
        std::lock_guard<std::mutex> lock(mu);
        Group& group = groups_[g];
        group.busy = false;
        group.pending -= 1;
        do_retire = group.pending == 0;
        in_flight -= 1;
        done_items += 1;
        cv.notify_all();
      }
      if (do_retire) retire_group(g);
    }
  };

  const size_t workers =
      std::min<size_t>(std::max<size_t>(1, items_.size()), options_.jobs);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t i = 0; i < workers; ++i) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  stats.wall_seconds = wall.ElapsedSeconds();
  return stats;
}

}  // namespace gly::harness
