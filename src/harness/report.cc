#include "harness/report.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "common/csv.h"
#include "common/macros.h"
#include "common/string_util.h"

namespace gly::harness {

namespace {

std::string CellKey(const BenchmarkResult& r) {
  return r.graph + "/" + r.platform;
}

// Minimal flat-JSON field extraction, matched to ResultToJson's output
// shape (no whitespace, top-level fields before the "metrics" object).

std::string JsonUnescape(std::string_view s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u':
        if (i + 4 < s.size()) {
          out += static_cast<char>(
              std::strtoul(std::string(s.substr(i + 1, 4)).c_str(), nullptr,
                           16));
          i += 4;
        }
        break;
      default: out += s[i];
    }
  }
  return out;
}

/// Scans a quoted JSON string starting at `pos` (the opening quote);
/// returns the index one past the closing quote, or npos.
size_t ScanJsonString(std::string_view text, size_t pos, std::string* out) {
  if (pos >= text.size() || text[pos] != '"') return std::string_view::npos;
  size_t end = pos + 1;
  while (end < text.size() && text[end] != '"') {
    end += (text[end] == '\\') ? 2 : 1;
  }
  if (end >= text.size()) return std::string_view::npos;
  *out = JsonUnescape(text.substr(pos + 1, end - pos - 1));
  return end + 1;
}

bool ExtractJsonString(std::string_view text, std::string_view key,
                       std::string* out) {
  std::string pattern = "\"" + std::string(key) + "\":";
  size_t pos = text.find(pattern);
  if (pos == std::string_view::npos) return false;
  return ScanJsonString(text, pos + pattern.size(), out) !=
         std::string_view::npos;
}

bool ExtractJsonNumber(std::string_view text, std::string_view key,
                       double* out) {
  std::string pattern = "\"" + std::string(key) + "\":";
  size_t pos = text.find(pattern);
  if (pos == std::string_view::npos) return false;
  *out = std::strtod(std::string(text.substr(pos + pattern.size())).c_str(),
                     nullptr);
  return true;
}

bool ExtractJsonBool(std::string_view text, std::string_view key, bool* out) {
  std::string pattern = "\"" + std::string(key) + "\":";
  size_t pos = text.find(pattern);
  if (pos == std::string_view::npos) return false;
  *out = text.compare(pos + pattern.size(), 4, "true") == 0;
  return true;
}

}  // namespace

std::string RenderRuntimeTable(const std::vector<BenchmarkResult>& results) {
  // Column order: (graph, platform) as first seen; row order: algorithms as
  // first seen.
  std::vector<std::string> columns;
  std::vector<AlgorithmKind> rows;
  for (const BenchmarkResult& r : results) {
    std::string key = CellKey(r);
    if (std::find(columns.begin(), columns.end(), key) == columns.end()) {
      columns.push_back(key);
    }
    if (std::find(rows.begin(), rows.end(), r.algorithm) == rows.end()) {
      rows.push_back(r.algorithm);
    }
  }
  std::ostringstream out;
  out << StringPrintf("%-8s", "algo");
  for (const std::string& c : columns) {
    out << StringPrintf(" %22s", c.c_str());
  }
  out << '\n';
  for (AlgorithmKind algo : rows) {
    out << StringPrintf("%-8s", AlgorithmKindName(algo).c_str());
    for (const std::string& c : columns) {
      const BenchmarkResult* cell = nullptr;
      for (const BenchmarkResult& r : results) {
        if (r.algorithm == algo && CellKey(r) == c) {
          cell = &r;
          break;
        }
      }
      if (cell == nullptr) {
        out << StringPrintf(" %22s", "?");
      } else if (!cell->status.ok()) {
        // "Missing values indicate failures."
        out << StringPrintf(" %22s", "-");
      } else {
        out << StringPrintf(" %22s",
                            FormatSeconds(cell->runtime_seconds).c_str());
      }
    }
    out << '\n';
  }
  return out.str();
}

std::string RenderTepsTable(const std::vector<BenchmarkResult>& results,
                            AlgorithmKind algorithm) {
  std::ostringstream out;
  out << StringPrintf("%-12s %-12s %14s %14s\n", "graph", "platform", "kTEPS",
                      "runtime");
  for (const BenchmarkResult& r : results) {
    if (r.algorithm != algorithm) continue;
    if (!r.status.ok()) {
      out << StringPrintf("%-12s %-12s %14s %14s\n", r.graph.c_str(),
                          r.platform.c_str(), "-", "-");
    } else {
      out << StringPrintf("%-12s %-12s %14.0f %14s\n", r.graph.c_str(),
                          r.platform.c_str(), r.teps / 1e3,
                          FormatSeconds(r.runtime_seconds).c_str());
    }
  }
  return out.str();
}

std::string RenderFullReport(const Config& configuration,
                             const std::vector<BenchmarkResult>& results) {
  std::ostringstream out;
  out << "==== Graphalytics benchmark report ====\n\n";
  out << "-- configuration --\n" << configuration.ToString() << '\n';
  out << "-- runtime matrix (algorithm x graph/platform) --\n";
  out << RenderRuntimeTable(results) << '\n';

  // Robustness summary: how many cells needed retries, timed out, or saw
  // injected faults (the paper's "missing values", made auditable).
  uint64_t failed_cells = 0;
  uint64_t retried_cells = 0;
  uint64_t timed_out_cells = 0;
  uint64_t cancelled_cells = 0;
  uint64_t stalled_cells = 0;
  uint64_t total_attempts = 0;
  uint64_t injected_faults = 0;
  uint64_t resumed_cells = 0;
  uint64_t recoveries = 0;
  uint64_t supersteps_replayed = 0;
  for (const BenchmarkResult& r : results) {
    if (!r.status.ok()) ++failed_cells;
    if (r.attempts > 1) ++retried_cells;
    if (r.timed_out) ++timed_out_cells;
    if (r.cancelled) ++cancelled_cells;
    if (r.stalled) ++stalled_cells;
    total_attempts += r.attempts;
    injected_faults += r.injected_faults;
    if (r.resumed) ++resumed_cells;
    recoveries += r.recoveries;
    supersteps_replayed += r.supersteps_replayed;
  }
  out << "-- robustness --\n";
  out << StringPrintf(
      "cells: %zu  failed: %llu  retried: %llu  timed out: %llu  "
      "attempts: %llu  injected faults: %llu\n",
      results.size(), (unsigned long long)failed_cells,
      (unsigned long long)retried_cells, (unsigned long long)timed_out_cells,
      (unsigned long long)total_attempts, (unsigned long long)injected_faults);
  out << StringPrintf(
      "cancelled: %llu  (stall watchdog: %llu)  "
      "resumed from journal: %llu  recovered from checkpoint: %llu  "
      "supersteps replayed: %llu\n\n",
      (unsigned long long)cancelled_cells, (unsigned long long)stalled_cells,
      (unsigned long long)resumed_cells, (unsigned long long)recoveries,
      (unsigned long long)supersteps_replayed);

  out << "-- details --\n";
  for (const BenchmarkResult& r : results) {
    out << StringPrintf("%s / %s / %s\n", r.platform.c_str(), r.graph.c_str(),
                        AlgorithmKindName(r.algorithm).c_str());
    out << "  status:      " << r.status.ToString() << '\n';
    if (r.attempts > 1 || r.timed_out || r.injected_faults > 0) {
      out << StringPrintf("  attempts:    %u%s\n", r.attempts,
                          r.timed_out ? "  (timed out)" : "");
      if (r.injected_faults > 0) {
        out << StringPrintf("  faults:      %llu injected\n",
                            (unsigned long long)r.injected_faults);
      }
    }
    if (r.cancelled) {
      out << StringPrintf("  cancelled:   %s  (joined in %.3fs)\n",
                          r.cancel_reason.c_str(), r.cancel_join_seconds);
    }
    if (r.resumed) out << "  resumed:     from journal (not re-executed)\n";
    if (r.recoveries > 0) {
      out << StringPrintf("  recoveries:  %llu  (supersteps replayed: %llu)\n",
                          (unsigned long long)r.recoveries,
                          (unsigned long long)r.supersteps_replayed);
    }
    if (r.status.ok()) {
      out << "  runtime:     " << FormatSeconds(r.runtime_seconds) << '\n';
      out << "  load (ETL):  " << FormatSeconds(r.load_seconds) << '\n';
      out << StringPrintf("  teps:        %.0f\n", r.teps);
      out << "  validation:  " << r.validation.ToString() << '\n';
      if (r.resources.samples > 0) {
        out << "  peak rss:    " << FormatBytes(r.resources.peak_rss_bytes)
            << StringPrintf("  (cpu util %.0f%%)\n",
                            r.resources.cpu_utilization * 100.0);
      }
      if (r.trace_spans > 0) {
        out << StringPrintf("  trace:       %llu spans",
                            (unsigned long long)r.trace_spans);
        if (!r.top_phases.empty()) out << "  top: " << r.top_phases;
        out << '\n';
      }
      if (r.critical_path_seconds > 0) {
        out << "  crit path:   " << FormatSeconds(r.critical_path_seconds)
            << '\n';
      }
      for (const auto& [k, v] : r.platform_metrics) {
        out << "  " << StringPrintf("%-12s %s\n", (k + ":").c_str(),
                                    v.c_str());
      }
    }
  }
  return out.str();
}

Status WriteResultsCsv(const std::vector<BenchmarkResult>& results,
                       const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::IOError("cannot open " + path);
  CsvWriter csv(&file);
  csv.WriteHeader({"platform", "graph", "algorithm", "status",
                   "status_detail", "validation", "runtime_s", "load_s",
                   "traversed_edges", "teps", "output_checksum",
                   "attempts", "timed_out", "cancelled", "stalled",
                   "cancel_reason", "cancel_join_s", "injected_faults",
                   "resumed", "recoveries", "supersteps_replayed",
                   "peak_rss_bytes", "cpu_utilization", "trace_spans",
                   "top_phases", "critical_path_s"});
  for (const BenchmarkResult& r : results) {
    // status_detail (and cancel_reason / top_phases below) carry free-form
    // engine text — commas, quotes, newlines — which CsvWriter::Field
    // escapes per RFC 4180; see the round-trip test in common_test.
    csv.Field(r.platform)
        .Field(r.graph)
        .Field(AlgorithmKindName(r.algorithm))
        .Field(std::string(StatusCodeToString(r.status.code())))
        .Field(r.status.message())
        .Field(std::string(StatusCodeToString(r.validation.code())))
        .Field(r.runtime_seconds)
        .Field(r.load_seconds)
        .Field(r.traversed_edges)
        .Field(r.teps)
        .Field(static_cast<uint64_t>(r.output_checksum))
        .Field(static_cast<uint64_t>(r.attempts))
        .Field(static_cast<uint64_t>(r.timed_out ? 1 : 0))
        .Field(static_cast<uint64_t>(r.cancelled ? 1 : 0))
        .Field(static_cast<uint64_t>(r.stalled ? 1 : 0))
        .Field(r.cancel_reason)
        .Field(r.cancel_join_seconds)
        .Field(r.injected_faults)
        .Field(static_cast<uint64_t>(r.resumed ? 1 : 0))
        .Field(r.recoveries)
        .Field(r.supersteps_replayed)
        .Field(r.resources.peak_rss_bytes)
        .Field(r.resources.cpu_utilization)
        .Field(r.trace_spans)
        .Field(r.top_phases)
        .Field(r.critical_path_seconds);
    csv.EndRow();
  }
  file.flush();
  if (!file) return Status::IOError("write failed: " + path);
  return Status::OK();
}

std::string ResultToJson(const BenchmarkResult& result) {
  std::ostringstream out;
  out << '{'
      << "\"platform\":\"" << JsonEscape(result.platform) << "\","
      << "\"graph\":\"" << JsonEscape(result.graph) << "\","
      << "\"algorithm\":\"" << AlgorithmKindName(result.algorithm) << "\","
      << "\"status\":\"" << StatusCodeToString(result.status.code()) << "\","
      << "\"validation\":\"" << StatusCodeToString(result.validation.code())
      << "\","
      << StringPrintf("\"runtime_s\":%.6f,", result.runtime_seconds)
      << StringPrintf("\"load_s\":%.6f,", result.load_seconds)
      << "\"traversed_edges\":" << result.traversed_edges << ','
      << StringPrintf("\"teps\":%.1f,", result.teps)
      << "\"output_checksum\":" << result.output_checksum << ','
      << "\"attempts\":" << result.attempts << ','
      << "\"timed_out\":" << (result.timed_out ? "true" : "false") << ','
      << "\"cancelled\":" << (result.cancelled ? "true" : "false") << ','
      << "\"stalled\":" << (result.stalled ? "true" : "false") << ','
      << "\"cancel_reason\":\"" << JsonEscape(result.cancel_reason)
      << "\","
      << StringPrintf("\"cancel_join_s\":%.6f,",
                      result.cancel_join_seconds)
      << "\"injected_faults\":" << result.injected_faults << ','
      << "\"resumed\":" << (result.resumed ? "true" : "false") << ','
      << "\"recoveries\":" << result.recoveries << ','
      << "\"supersteps_replayed\":" << result.supersteps_replayed << ','
      << "\"peak_rss_bytes\":" << result.resources.peak_rss_bytes << ','
      << "\"trace_spans\":" << result.trace_spans << ','
      << "\"top_phases\":\"" << JsonEscape(result.top_phases) << "\","
      << StringPrintf("\"critical_path_s\":%.6f,",
                      result.critical_path_seconds)
      << "\"metrics\":{";
  bool first = true;
  for (const auto& [k, v] : result.platform_metrics) {
    if (!first) out << ',';
    first = false;
    out << '"' << JsonEscape(k) << "\":\"" << JsonEscape(v) << '"';
  }
  out << "}}";
  return out.str();
}

Result<BenchmarkResult> ResultFromJson(const std::string& line) {
  // Restrict top-level field searches to the text before the metrics
  // object, whose (string) values could otherwise shadow top-level keys.
  size_t metrics_pos = line.find("\"metrics\":{");
  std::string_view head(line.data(), metrics_pos == std::string::npos
                                         ? line.size()
                                         : metrics_pos);
  BenchmarkResult r;
  std::string algorithm;
  std::string status_name;
  std::string validation_name;
  if (!ExtractJsonString(head, "platform", &r.platform) ||
      !ExtractJsonString(head, "graph", &r.graph) ||
      !ExtractJsonString(head, "algorithm", &algorithm) ||
      !ExtractJsonString(head, "status", &status_name) ||
      !ExtractJsonString(head, "validation", &validation_name)) {
    return Status::InvalidArgument("malformed result record: " + line);
  }
  GLY_ASSIGN_OR_RETURN(r.algorithm, ParseAlgorithmKind(algorithm));
  StatusCode code;
  if (!StatusCodeFromString(status_name, &code)) {
    return Status::InvalidArgument("unknown status code: " + status_name);
  }
  r.status = code == StatusCode::kOk ? Status::OK()
                                     : Status(code, "from journal");
  if (!StatusCodeFromString(validation_name, &code)) {
    return Status::InvalidArgument("unknown status code: " + validation_name);
  }
  r.validation = code == StatusCode::kOk ? Status::OK()
                                         : Status(code, "from journal");

  double value = 0.0;
  if (ExtractJsonNumber(head, "runtime_s", &value)) r.runtime_seconds = value;
  if (ExtractJsonNumber(head, "load_s", &value)) r.load_seconds = value;
  if (ExtractJsonNumber(head, "traversed_edges", &value)) {
    r.traversed_edges = static_cast<uint64_t>(value);
  }
  if (ExtractJsonNumber(head, "teps", &value)) r.teps = value;
  // Optional: journals from before the output-checksum field existed must
  // still parse for resume.
  if (ExtractJsonNumber(head, "output_checksum", &value)) {
    r.output_checksum = static_cast<uint32_t>(value);
  }
  if (ExtractJsonNumber(head, "attempts", &value)) {
    r.attempts = static_cast<uint32_t>(value);
  }
  ExtractJsonBool(head, "timed_out", &r.timed_out);
  // Cancellation fields are optional: journals from before the
  // cancellation subsystem existed must still parse for resume.
  ExtractJsonBool(head, "cancelled", &r.cancelled);
  ExtractJsonBool(head, "stalled", &r.stalled);
  ExtractJsonString(head, "cancel_reason", &r.cancel_reason);
  if (ExtractJsonNumber(head, "cancel_join_s", &value)) {
    r.cancel_join_seconds = value;
  }
  if (ExtractJsonNumber(head, "injected_faults", &value)) {
    r.injected_faults = static_cast<uint64_t>(value);
  }
  ExtractJsonBool(head, "resumed", &r.resumed);
  if (ExtractJsonNumber(head, "recoveries", &value)) {
    r.recoveries = static_cast<uint64_t>(value);
  }
  if (ExtractJsonNumber(head, "supersteps_replayed", &value)) {
    r.supersteps_replayed = static_cast<uint64_t>(value);
  }
  if (ExtractJsonNumber(head, "peak_rss_bytes", &value)) {
    r.resources.peak_rss_bytes = static_cast<uint64_t>(value);
  }
  // Observability fields are optional: journals written before tracing
  // existed (or with it off) must still parse for resume.
  if (ExtractJsonNumber(head, "trace_spans", &value)) {
    r.trace_spans = static_cast<uint64_t>(value);
  }
  ExtractJsonString(head, "top_phases", &r.top_phases);
  if (ExtractJsonNumber(head, "critical_path_s", &value)) {
    r.critical_path_seconds = value;
  }

  if (metrics_pos != std::string::npos) {
    size_t pos = metrics_pos + std::string_view("\"metrics\":{").size();
    while (pos < line.size() && line[pos] != '}') {
      if (line[pos] == ',') {
        ++pos;
        continue;
      }
      std::string key;
      pos = ScanJsonString(line, pos, &key);
      if (pos == std::string::npos || pos >= line.size() ||
          line[pos] != ':') {
        return Status::InvalidArgument("malformed metrics: " + line);
      }
      std::string metric_value;
      pos = ScanJsonString(line, pos + 1, &metric_value);
      if (pos == std::string::npos) {
        return Status::InvalidArgument("malformed metrics: " + line);
      }
      r.platform_metrics[key] = metric_value;
    }
  }
  return r;
}

Status AppendResultsDatabase(const std::vector<BenchmarkResult>& results,
                             const Config& configuration,
                             const std::string& path) {
  std::ofstream file(path, std::ios::app);
  if (!file) return Status::IOError("cannot open " + path);
  for (const BenchmarkResult& r : results) {
    file << ResultToJson(r) << '\n';
  }
  (void)configuration;
  file.flush();
  if (!file) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace gly::harness
