#include "harness/monitor.h"

#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>

namespace gly::harness {

uint64_t SystemMonitor::CurrentRssBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long size = 0;
  unsigned long long resident = 0;
  int n = std::fscanf(f, "%llu %llu", &size, &resident);
  std::fclose(f);
  if (n != 2) return 0;
  return resident * static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
}

double SystemMonitor::CurrentCpuSeconds() {
  FILE* f = std::fopen("/proc/self/stat", "r");
  if (f == nullptr) return 0.0;
  char buf[1024];
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  // Fields 14 (utime) and 15 (stime) follow the comm field, which may
  // contain spaces but is parenthesized; skip past the last ')'.
  const char* p = std::strrchr(buf, ')');
  if (p == nullptr) return 0.0;
  ++p;
  unsigned long long utime = 0;
  unsigned long long stime = 0;
  // After ')': field 3 is state; utime is field 14 overall, i.e. the 12th
  // token after state.
  int field = 2;  // next token parsed will be field 3
  char state;
  if (std::sscanf(p, " %c", &state) != 1) return 0.0;
  const char* q = p;
  while (*q != '\0' && field < 13) {
    while (*q == ' ') ++q;
    while (*q != '\0' && *q != ' ') ++q;
    ++field;
  }
  if (std::sscanf(q, " %llu %llu", &utime, &stime) != 2) return 0.0;
  double ticks = static_cast<double>(::sysconf(_SC_CLK_TCK));
  return (static_cast<double>(utime) + static_cast<double>(stime)) / ticks;
}

uint64_t SelfProcReader::RssBytes() { return SystemMonitor::CurrentRssBytes(); }

double SelfProcReader::CpuSeconds() {
  return SystemMonitor::CurrentCpuSeconds();
}

double SelfProcReader::NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t SelfProcReader::PeakRssBytes() {
  struct rusage usage;
  if (::getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
}

ProcReader& SystemMonitor::reader() {
  return reader_ != nullptr ? *reader_ : self_reader_;
}

SystemMonitor::~SystemMonitor() {
  if (running_.load()) {
    running_.store(false);
    if (thread_.joinable()) thread_.join();
  }
}

void SystemMonitor::OpenWindow() {
  samples_.clear();
  start_cpu_ = reader().CpuSeconds();
  start_wall_ = reader().NowSeconds();
  start_peak_rss_ = reader().PeakRssBytes();
  started_ = true;
}

void SystemMonitor::Start() {
  OpenWindow();
  running_.store(true);
  thread_ = std::thread([this] { Loop(); });
}

void SystemMonitor::StartManual() { OpenWindow(); }

void SystemMonitor::SampleOnce() {
  ResourceSample sample;
  sample.at_seconds = reader().NowSeconds() - start_wall_;
  sample.rss_bytes = reader().RssBytes();
  sample.cpu_seconds = reader().CpuSeconds();
  samples_.push_back(sample);
}

void SystemMonitor::Loop() {
  while (running_.load(std::memory_order_relaxed)) {
    SampleOnce();
    std::this_thread::sleep_for(
        std::chrono::duration<double>(interval_seconds_));
  }
}

ResourceSummary SystemMonitor::Stop() {
  running_.store(false);
  if (thread_.joinable()) thread_.join();
  ResourceSummary summary;
  // A window that was never opened has no meaningful start times; reporting
  // NowSeconds() - 0.0 as the wall span (and dividing by it) would be
  // garbage, so an unopened window summarizes to all zeros.
  if (!started_) return summary;
  started_ = false;
  summary.wall_seconds = reader().NowSeconds() - start_wall_;
  summary.cpu_seconds = reader().CpuSeconds() - start_cpu_;
  summary.cpu_utilization = summary.wall_seconds > 0.0
                                ? summary.cpu_seconds / summary.wall_seconds
                                : 0.0;
  summary.samples = samples_.size();
  uint64_t sum_rss = 0;
  for (const ResourceSample& s : samples_) {
    summary.peak_rss_bytes = std::max(summary.peak_rss_bytes, s.rss_bytes);
    sum_rss += s.rss_bytes;
  }
  if (!samples_.empty()) summary.mean_rss_bytes = sum_rss / samples_.size();
  // Reconcile the sampled peak with the kernel's high-water mark: a short
  // allocation spike between samples is invisible to the /proc poller but
  // moves ru_maxrss. Only trust the rusage value when it advanced during
  // this window — the high-water mark is per-process-lifetime, so a large
  // earlier window would otherwise leak into this summary.
  uint64_t end_peak_rss = reader().PeakRssBytes();
  if (end_peak_rss > start_peak_rss_) {
    summary.peak_rss_bytes = std::max(summary.peak_rss_bytes, end_peak_rss);
  }
  return summary;
}

}  // namespace gly::harness
