// Platform: the harness-facing interface every graph-processing platform
// implements ("Platform-specific algorithm implementation" in Figure 2).
//
// The paper: "adding a new platform to Graphalytics consists of
// implementing the algorithms, adding a dataset loading method, providing a
// workload processing interface, and logging the information required for
// results reporting" — which maps onto LoadGraph / Run / metrics().

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/result.h"
#include "ref/algorithms.h"

namespace gly::harness {

/// A loaded-and-runnable graph-processing platform instance.
class Platform {
 public:
  virtual ~Platform() = default;

  /// Stable identifier used in configs and reports ("giraph", "graphx",
  /// "mapreduce", "neo4j").
  virtual std::string name() const = 0;

  /// Dataset loading (ETL). Untimed by the harness: "The runtime measures
  /// the complete execution of an algorithm, from job submission to result
  /// availability, but does not include ETL."
  virtual Status LoadGraph(const Graph& graph, const std::string& graph_name) = 0;

  /// Runs one algorithm on the loaded graph (timed by the harness).
  virtual Result<AlgorithmOutput> Run(AlgorithmKind kind,
                                      const AlgorithmParams& params) = 0;

  /// Releases the loaded graph.
  virtual void UnloadGraph() = 0;

  /// Installs (or clears, with nullptr) a cancellation token observed by
  /// work *outside* Run — today the dataset-loading path (LoadGraph), whose
  /// signature carries no AlgorithmParams. Run itself is cancelled through
  /// AlgorithmParams::cancel. Default: ignored (platform loads are cheap
  /// in-memory pointer swaps except the graph database's bulk import).
  virtual void SetCancelToken(const CancelToken* /*cancel*/) {}

  /// Free-form run metrics for the report (messages, supersteps, spills...).
  virtual std::map<std::string, std::string> LastRunMetrics() const {
    return {};
  }
};

/// Names of all registered platforms.
std::vector<std::string> RegisteredPlatforms();

/// Instantiates a platform by name.
///
/// Common config keys (all optional):
///   memory_budget_mb  — per-platform memory budget (0 = unlimited)
///   workers           — logical workers / partitions
///   threads           — executor threads
///   scratch_dir       — spill/store directory (defaults to a temp dir)
/// Platform-specific keys are documented in platforms.cc.
Result<std::unique_ptr<Platform>> MakePlatform(const std::string& name,
                                               const Config& config);

}  // namespace gly::harness
