// Platform adapters binding the four substrates to the harness interface.

#include <optional>
#include <utility>

#include "common/macros.h"
#include "common/memory_budget.h"
#include "common/string_util.h"
#include "common/temp_dir.h"
#include "dataflow/algorithms.h"
#include "graph/io.h"
#include "graphdb/algorithms.h"
#include "harness/platform.h"
#include "mapreduce/graph_jobs.h"
#include "pregel/algorithms.h"

namespace gly::harness {

namespace {

// Shared config plumbing.
struct CommonOptions {
  uint64_t memory_budget_bytes = 0;
  uint32_t workers = 8;
  uint32_t threads = 0;
  std::string scratch_dir;
};

Result<CommonOptions> ReadCommon(const Config& config) {
  CommonOptions opts;
  opts.memory_budget_bytes = config.GetUintOr("memory_budget_mb", 0) << 20;
  opts.workers = static_cast<uint32_t>(config.GetUintOr("workers", 8));
  opts.threads = static_cast<uint32_t>(config.GetUintOr("threads", 0));
  opts.scratch_dir = config.GetStringOr("scratch_dir", "");
  return opts;
}

// ----------------------------------------------------------------- Giraph

class GiraphLikePlatform final : public Platform {
 public:
  GiraphLikePlatform(const CommonOptions& opts, const Config& config,
                     std::optional<TempDir> checkpoint_dir)
      : checkpoint_dir_(std::move(checkpoint_dir)) {
    pregel::EngineConfig engine;
    engine.num_workers = opts.workers;
    engine.num_threads = opts.threads;
    engine.memory_budget_bytes = opts.memory_budget_bytes;
    engine.network_mib_per_s = config.GetDoubleOr("network_mib_per_s", 0.0);
    engine.barrier_latency_s = config.GetDoubleOr("barrier_latency_s", 0.0);
    engine.checkpoint.interval =
        static_cast<uint32_t>(config.GetUintOr("checkpoint_interval", 0));
    engine.checkpoint.directory = config.GetStringOr(
        "checkpoint_dir",
        checkpoint_dir_.has_value() ? checkpoint_dir_->path() : "");
    engine.checkpoint.max_recoveries = static_cast<uint32_t>(
        config.GetUintOr("checkpoint_max_recoveries", 3));
    // Traversal-kernel knobs: 0 disables the dense-frontier fast path /
    // work-stealing chunks respectively (the pre-optimization engine).
    engine.dense_frontier_threshold = config.GetDoubleOr(
        "dense_frontier_threshold", engine.dense_frontier_threshold);
    engine.steal_chunk_vertices = static_cast<uint32_t>(config.GetUintOr(
        "steal_chunk_vertices", engine.steal_chunk_vertices));
    // Hot-path memory knob (DESIGN.md §13): false reverts to the legacy
    // per-superstep allocation path.
    engine.outbox_pool = config.GetBoolOr("outbox_pool", engine.outbox_pool);
    engine_ = std::make_unique<pregel::Engine>(engine);
  }

  std::string name() const override { return "giraph"; }

  Status LoadGraph(const Graph& graph, const std::string&) override {
    graph_ = &graph;
    return Status::OK();
  }

  Result<AlgorithmOutput> Run(AlgorithmKind kind,
                              const AlgorithmParams& params) override {
    if (graph_ == nullptr) return Status::InvalidArgument("no graph loaded");
    pregel::RunStats stats;
    GLY_ASSIGN_OR_RETURN(
        AlgorithmOutput out,
        pregel::RunAlgorithm(*engine_, *graph_, kind, params, &stats));
    metrics_.clear();
    metrics_["supersteps"] = std::to_string(stats.supersteps);
    metrics_["messages"] = std::to_string(stats.total_messages);
    metrics_["cross_worker_bytes"] =
        std::to_string(stats.total_cross_worker_bytes);
    metrics_["peak_memory"] = FormatBytes(stats.peak_memory_bytes);
    if (stats.dense_supersteps > 0) {
      metrics_["dense_supersteps"] = std::to_string(stats.dense_supersteps);
    }
    if (engine_->config().outbox_pool) {
      metrics_["outbox_bytes_peak"] = std::to_string(stats.outbox_bytes_peak);
    }
    if (engine_->config().checkpoint.interval > 0) {
      metrics_["checkpoints"] = std::to_string(stats.checkpoints_written);
      metrics_["recoveries"] = std::to_string(stats.recoveries);
      metrics_["supersteps_replayed"] =
          std::to_string(stats.supersteps_replayed);
    }
    return out;
  }

  void UnloadGraph() override { graph_ = nullptr; }

  std::map<std::string, std::string> LastRunMetrics() const override {
    return metrics_;
  }

 private:
  std::optional<TempDir> checkpoint_dir_;
  std::unique_ptr<pregel::Engine> engine_;
  const Graph* graph_ = nullptr;
  std::map<std::string, std::string> metrics_;
};

// ----------------------------------------------------------------- GraphX

class GraphXLikePlatform final : public Platform {
 public:
  explicit GraphXLikePlatform(const CommonOptions& opts, const Config& config) {
    context_.num_partitions = opts.workers;
    context_.num_threads = opts.threads;
    context_.memory_budget_bytes = opts.memory_budget_bytes;
    context_.object_overhead_factor =
        config.GetDoubleOr("object_overhead_factor", 2.0);
    context_.shuffle_mib_per_s = config.GetDoubleOr("shuffle_mib_per_s", 0.0);
    context_.materialize_mib_per_s =
        config.GetDoubleOr("materialize_mib_per_s", 0.0);
    // Hot-path memory knob (DESIGN.md §13): false reverts shuffles and
    // operator outputs to per-call allocation.
    context_.pooled_buffers =
        config.GetBoolOr("pooled_buffers", context_.pooled_buffers);
  }

  std::string name() const override { return "graphx"; }

  Status LoadGraph(const Graph& graph, const std::string&) override {
    graph_ = &graph;
    return Status::OK();
  }

  Result<AlgorithmOutput> Run(AlgorithmKind kind,
                              const AlgorithmParams& params) override {
    if (graph_ == nullptr) return Status::InvalidArgument("no graph loaded");
    dataflow::ContextStats stats;
    GLY_ASSIGN_OR_RETURN(
        AlgorithmOutput out,
        dataflow::RunAlgorithm(context_, *graph_, kind, params, &stats));
    metrics_.clear();
    metrics_["datasets"] = std::to_string(stats.datasets_materialized);
    metrics_["materialized"] = FormatBytes(stats.bytes_materialized);
    metrics_["materialize_s"] = StringPrintf("%.3f", stats.materialize_seconds);
    metrics_["shuffle_bytes"] = std::to_string(stats.shuffle_bytes);
    metrics_["peak_memory"] = FormatBytes(stats.peak_memory_bytes);
    if (context_.pooled_buffers) {
      metrics_["shuffle_bytes_pooled"] =
          std::to_string(stats.shuffle_bytes_pooled);
      metrics_["pooled_bytes_peak"] = std::to_string(stats.pooled_bytes_peak);
    }
    return out;
  }

  void UnloadGraph() override { graph_ = nullptr; }

  std::map<std::string, std::string> LastRunMetrics() const override {
    return metrics_;
  }

 private:
  dataflow::ContextConfig context_;
  const Graph* graph_ = nullptr;
  std::map<std::string, std::string> metrics_;
};

// -------------------------------------------------------------- MapReduce

class MapReducePlatform final : public Platform {
 public:
  MapReducePlatform(const CommonOptions& opts, const Config& config,
                    TempDir scratch)
      : scratch_(std::move(scratch)) {
    config_.job.num_mappers = opts.workers;
    config_.job.num_reducers = opts.workers;
    config_.job.sort_buffer_bytes =
        config.GetUintOr("sort_buffer_mb", 8) << 20;
    config_.job.scratch_dir = scratch_.path() + "/spills";
    config_.job.job_startup_s = config.GetDoubleOr("job_startup_s", 0.0);
    config_.job.checkpoint_map_stage = config.GetBoolOr("checkpointing", false);
    config_.max_iterations =
        static_cast<uint32_t>(config.GetUintOr("max_iterations", 1000));
  }

  std::string name() const override { return "mapreduce"; }

  Status LoadGraph(const Graph& graph, const std::string& graph_name) override {
    // The HDFS-upload analog: the dataset must be on the job filesystem
    // before any job can run. This is ETL — the harness times it
    // separately from the algorithm runtime.
    std::string path = scratch_.path() + "/dataset-" + graph_name + ".bin";
    GLY_RETURN_NOT_OK(WriteEdgeListBinary(graph.ToEdgeList(), path));
    graph_ = &graph;
    return Status::OK();
  }

  Result<AlgorithmOutput> Run(AlgorithmKind kind,
                              const AlgorithmParams& params) override {
    if (graph_ == nullptr) return Status::InvalidArgument("no graph loaded");
    mapreduce::PlatformConfig run_config = config_;
    // With map-stage checkpointing, the work dir must be stable across
    // re-runs of the same cell so crashed jobs find their spill manifests;
    // without it, every run gets a fresh directory.
    run_config.work_dir =
        config_.job.checkpoint_map_stage
            ? scratch_.path() + "/run-" + std::string(AlgorithmKindName(kind))
            : scratch_.path() + "/run-" + std::to_string(run_counter_++);
    mapreduce::ChainStats stats;
    GLY_ASSIGN_OR_RETURN(AlgorithmOutput out,
                         mapreduce::RunAlgorithm(run_config, *graph_, kind,
                                                 params, &stats));
    metrics_.clear();
    metrics_["jobs"] = std::to_string(stats.jobs_run);
    metrics_["spill_bytes"] = std::to_string(stats.total_spill_bytes);
    metrics_["shuffle_bytes"] = std::to_string(stats.total_shuffle_bytes);
    metrics_["output_bytes"] = std::to_string(stats.total_output_bytes);
    if (config_.job.checkpoint_map_stage) {
      metrics_["map_stages_recovered"] =
          std::to_string(stats.map_stages_recovered);
    }
    return out;
  }

  void UnloadGraph() override { graph_ = nullptr; }

  std::map<std::string, std::string> LastRunMetrics() const override {
    return metrics_;
  }

 private:
  TempDir scratch_;
  mapreduce::PlatformConfig config_;
  const Graph* graph_ = nullptr;
  uint64_t run_counter_ = 0;
  std::map<std::string, std::string> metrics_;
};

// ------------------------------------------------------------------ Neo4j

class Neo4jLikePlatform final : public Platform {
 public:
  Neo4jLikePlatform(const CommonOptions& opts, const Config& config,
                    TempDir scratch)
      : scratch_(std::move(scratch)) {
    memory_budget_bytes_ = opts.memory_budget_bytes;
    page_cache_bytes_ = config.GetUintOr(
        "page_cache_mb",
        opts.memory_budget_bytes != 0 ? (opts.memory_budget_bytes >> 20) : 256)
        << 20;
    // Hot-path memory knob (DESIGN.md §13): lock-striped page cache
    // segment count; 0 lets the cache pick min(8, capacity pages).
    page_cache_shards_ =
        static_cast<uint32_t>(config.GetUintOr("pagecache_shards", 0));
  }

  std::string name() const override { return "neo4j"; }

  Status LoadGraph(const Graph& graph, const std::string& graph_name) override {
    graphdb::StoreConfig store_config;
    store_config.directory = scratch_.path() + "/store-" + graph_name + "-" +
                             std::to_string(load_counter_++);
    store_config.page_cache_bytes = page_cache_bytes_;
    store_config.page_cache_shards = page_cache_shards_;
    GLY_ASSIGN_OR_RETURN(store_, graphdb::GraphStore::Open(store_config));
    GLY_RETURN_NOT_OK(store_->BulkImport(graph.ToEdgeList(), load_cancel_));
    undirected_ = graph.undirected();
    return Status::OK();
  }

  void SetCancelToken(const CancelToken* cancel) override {
    load_cancel_ = cancel;
  }

  Result<AlgorithmOutput> Run(AlgorithmKind kind,
                              const AlgorithmParams& params) override {
    if (store_ == nullptr) return Status::InvalidArgument("no graph loaded");
    graphdb::DbRunStats stats;
    GLY_ASSIGN_OR_RETURN(
        AlgorithmOutput out,
        graphdb::RunAlgorithmOnStore(store_.get(), undirected_,
                                     memory_budget_bytes_, kind, params,
                                     &stats));
    metrics_.clear();
    metrics_["rels_expanded"] = std::to_string(stats.relationships_expanded);
    metrics_["cache_hits"] = std::to_string(stats.cache.hits);
    metrics_["cache_misses"] = std::to_string(stats.cache.misses);
    metrics_["cache_shard_contention"] =
        std::to_string(stats.cache.shard_contention);
    return out;
  }

  void UnloadGraph() override { store_.reset(); }

  std::map<std::string, std::string> LastRunMetrics() const override {
    return metrics_;
  }

 private:
  TempDir scratch_;
  uint64_t memory_budget_bytes_;
  uint64_t page_cache_bytes_;
  uint32_t page_cache_shards_ = 0;
  std::unique_ptr<graphdb::GraphStore> store_;
  const CancelToken* load_cancel_ = nullptr;
  bool undirected_ = true;
  uint64_t load_counter_ = 0;
  std::map<std::string, std::string> metrics_;
};

// -------------------------------------------------------------- Reference
//
// A fifth platform: the single-machine shared-memory reference
// implementation run as a system under test. Useful as the lower bound of
// distribution overhead ("the paper's vision covers 10 platforms; adding
// one is implementing the algorithms + a loading method + a processing
// interface" — this adapter is exactly that and nothing more).

class ReferencePlatform final : public Platform {
 public:
  explicit ReferencePlatform(const CommonOptions& opts)
      : memory_budget_bytes_(opts.memory_budget_bytes) {}

  std::string name() const override { return "reference"; }

  Status LoadGraph(const Graph& graph, const std::string&) override {
    graph_ = &graph;
    return Status::OK();
  }

  Result<AlgorithmOutput> Run(AlgorithmKind kind,
                              const AlgorithmParams& params) override {
    if (graph_ == nullptr) return Status::InvalidArgument("no graph loaded");
    MemoryBudget budget(memory_budget_bytes_);
    GLY_RETURN_NOT_OK(budget.Charge(graph_->MemoryBytes(), "graph")
                          .WithPrefix("reference"));
    AlgorithmOutput out = ref::Run(*graph_, kind, params);
    metrics_.clear();
    metrics_["traversed"] = std::to_string(out.traversed_edges);
    return out;
  }

  void UnloadGraph() override { graph_ = nullptr; }

  std::map<std::string, std::string> LastRunMetrics() const override {
    return metrics_;
  }

 private:
  uint64_t memory_budget_bytes_;
  const Graph* graph_ = nullptr;
  std::map<std::string, std::string> metrics_;
};

}  // namespace

std::vector<std::string> RegisteredPlatforms() {
  return {"giraph", "graphx", "mapreduce", "neo4j", "reference"};
}

Result<std::unique_ptr<Platform>> MakePlatform(const std::string& name,
                                               const Config& config) {
  GLY_ASSIGN_OR_RETURN(CommonOptions opts, ReadCommon(config));
  std::string lower = ToLower(name);
  if (lower == "giraph") {
    std::optional<TempDir> ckpt_dir;
    if (config.GetUintOr("checkpoint_interval", 0) > 0 &&
        config.GetStringOr("checkpoint_dir", "").empty()) {
      GLY_ASSIGN_OR_RETURN(TempDir dir, TempDir::Create("gly-pregel-ckpt"));
      ckpt_dir = std::move(dir);
    }
    return {std::make_unique<GiraphLikePlatform>(opts, config,
                                                 std::move(ckpt_dir))};
  }
  if (lower == "graphx") {
    return {std::make_unique<GraphXLikePlatform>(opts, config)};
  }
  if (lower == "mapreduce") {
    GLY_ASSIGN_OR_RETURN(TempDir scratch, TempDir::Create("gly-mr"));
    return {std::make_unique<MapReducePlatform>(opts, config,
                                                std::move(scratch))};
  }
  if (lower == "neo4j") {
    GLY_ASSIGN_OR_RETURN(TempDir scratch, TempDir::Create("gly-neo4j"));
    return {std::make_unique<Neo4jLikePlatform>(opts, config,
                                                std::move(scratch))};
  }
  if (lower == "reference") {
    return {std::make_unique<ReferencePlatform>(opts)};
  }
  return Status::NotFound("unknown platform: '" + name + "'");
}

}  // namespace gly::harness
