#include "harness/validator.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/crc32.h"
#include "common/string_util.h"

namespace gly::harness {

namespace {

Status CompareVertexValues(const std::vector<int64_t>& expected,
                           const std::vector<int64_t>& actual,
                           const char* what) {
  if (expected.size() != actual.size()) {
    return Status::ValidationFailed(StringPrintf(
        "%s: size mismatch (expected %zu, got %zu)", what, expected.size(),
        actual.size()));
  }
  size_t mismatches = 0;
  size_t first = 0;
  for (size_t i = 0; i < expected.size(); ++i) {
    if (expected[i] != actual[i]) {
      if (mismatches == 0) first = i;
      ++mismatches;
    }
  }
  if (mismatches > 0) {
    return Status::ValidationFailed(StringPrintf(
        "%s: %zu/%zu vertices differ; first at vertex %zu (expected %lld, "
        "got %lld)",
        what, mismatches, expected.size(), first,
        static_cast<long long>(expected[first]),
        static_cast<long long>(actual[first])));
  }
  return Status::OK();
}

Status CompareVertexScores(const std::vector<double>& expected,
                           const std::vector<double>& actual,
                           double tolerance) {
  if (expected.size() != actual.size()) {
    return Status::ValidationFailed(StringPrintf(
        "PR scores: size mismatch (expected %zu, got %zu)", expected.size(),
        actual.size()));
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    double scale = std::max({std::abs(expected[i]), std::abs(actual[i]),
                             1e-300});
    if (std::abs(expected[i] - actual[i]) / scale > tolerance) {
      return Status::ValidationFailed(StringPrintf(
          "PR score mismatch at vertex %zu (expected %.12g, got %.12g)", i,
          expected[i], actual[i]));
    }
  }
  return Status::OK();
}

Status CompareEdges(const EdgeList& expected, const EdgeList& actual) {
  std::vector<Edge> e = expected.edges();
  std::vector<Edge> a = actual.edges();
  std::sort(e.begin(), e.end());
  std::sort(a.begin(), a.end());
  if (e != a) {
    return Status::ValidationFailed(StringPrintf(
        "EVO edge sets differ (expected %zu edges, got %zu)", e.size(),
        a.size()));
  }
  return Status::OK();
}

}  // namespace

Status ValidateAgainst(const AlgorithmOutput& expected,
                       const AlgorithmOutput& actual, AlgorithmKind kind,
                       const ValidatorOptions& options) {
  switch (kind) {
    case AlgorithmKind::kBfs:
      return CompareVertexValues(expected.vertex_values, actual.vertex_values,
                                 "BFS distances");
    case AlgorithmKind::kConn:
      return CompareVertexValues(expected.vertex_values, actual.vertex_values,
                                 "CONN labels");
    case AlgorithmKind::kCd:
      return CompareVertexValues(expected.vertex_values, actual.vertex_values,
                                 "CD labels");
    case AlgorithmKind::kEvo:
      return CompareEdges(expected.new_edges, actual.new_edges);
    case AlgorithmKind::kPr:
      return CompareVertexScores(expected.vertex_scores, actual.vertex_scores,
                                 options.score_tolerance);
    case AlgorithmKind::kStats: {
      if (expected.stats.num_vertices != actual.stats.num_vertices) {
        return Status::ValidationFailed(
            StringPrintf("STATS vertex count mismatch (expected %llu, got %llu)",
                         static_cast<unsigned long long>(
                             expected.stats.num_vertices),
                         static_cast<unsigned long long>(
                             actual.stats.num_vertices)));
      }
      if (expected.stats.num_edges != actual.stats.num_edges) {
        return Status::ValidationFailed(StringPrintf(
            "STATS edge count mismatch (expected %llu, got %llu)",
            static_cast<unsigned long long>(expected.stats.num_edges),
            static_cast<unsigned long long>(actual.stats.num_edges)));
      }
      double e = expected.stats.mean_local_clustering;
      double a = actual.stats.mean_local_clustering;
      double scale = std::max({std::abs(e), std::abs(a), 1e-12});
      if (std::abs(e - a) / scale > options.stats_tolerance) {
        return Status::ValidationFailed(StringPrintf(
            "STATS mean LCC mismatch (expected %.9f, got %.9f)", e, a));
      }
      return Status::OK();
    }
  }
  return Status::Internal("unhandled algorithm kind in validator");
}

Status ValidateOutput(const Graph& graph, AlgorithmKind kind,
                      const AlgorithmParams& params,
                      const AlgorithmOutput& actual,
                      const ValidatorOptions& options) {
  AlgorithmOutput expected = ref::Run(graph, kind, params);
  return ValidateAgainst(expected, actual, kind, options);
}

bool RelabelingInvariant(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kStats:
    case AlgorithmKind::kBfs:
    case AlgorithmKind::kConn:
    case AlgorithmKind::kPr:
      return true;
    case AlgorithmKind::kCd:
    case AlgorithmKind::kEvo:
      return false;
  }
  return false;
}

AlgorithmOutput MapOutputToOriginalIds(AlgorithmKind kind,
                                       const std::vector<VertexId>& new_to_old,
                                       AlgorithmOutput output) {
  const size_t n = new_to_old.size();
  if (!output.vertex_values.empty() && output.vertex_values.size() == n) {
    std::vector<int64_t> mapped(n);
    if (kind == AlgorithmKind::kConn) {
      // CONN labels are vertex ids: in the reordered space a component is
      // labeled with its smallest *new* id. Recover the original-space
      // convention (smallest original id per component) in one pass.
      std::vector<VertexId> min_orig(n, kInvalidVertex);
      for (size_t i = 0; i < n; ++i) {
        int64_t label = output.vertex_values[i];
        if (label < 0 || static_cast<size_t>(label) >= n) continue;
        min_orig[label] = std::min(min_orig[label], new_to_old[i]);
      }
      for (size_t i = 0; i < n; ++i) {
        int64_t label = output.vertex_values[i];
        int64_t translated =
            (label >= 0 && static_cast<size_t>(label) < n)
                ? static_cast<int64_t>(min_orig[label])
                : label;
        mapped[new_to_old[i]] = translated;
      }
    } else {
      // BFS distances are id-free: move each value to its original slot.
      for (size_t i = 0; i < n; ++i) {
        mapped[new_to_old[i]] = output.vertex_values[i];
      }
    }
    output.vertex_values = std::move(mapped);
  }
  if (!output.vertex_scores.empty() && output.vertex_scores.size() == n) {
    std::vector<double> mapped(n);
    for (size_t i = 0; i < n; ++i) {
      mapped[new_to_old[i]] = output.vertex_scores[i];
    }
    output.vertex_scores = std::move(mapped);
  }
  return output;
}

namespace {

uint32_t FoldU64(uint32_t state, uint64_t v) {
  return Crc32cUpdate(state, &v, sizeof(v));
}

uint32_t FoldDouble(uint32_t state, double v) {
  // Bit pattern, not value: NaNs and signed zeros stay distinguishable and
  // the fold is exact (no formatting round-trip).
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return FoldU64(state, bits);
}

}  // namespace

uint32_t OutputChecksum(const AlgorithmOutput& output) {
  uint32_t state = kCrc32cInit;
  state = FoldU64(state, output.vertex_values.size());
  if (!output.vertex_values.empty()) {
    state = Crc32cUpdate(state, output.vertex_values.data(),
                         output.vertex_values.size() * sizeof(int64_t));
  }
  state = FoldU64(state, output.vertex_scores.size());
  for (double score : output.vertex_scores) state = FoldDouble(state, score);
  state = FoldU64(state, output.stats.num_vertices);
  state = FoldU64(state, output.stats.num_edges);
  state = FoldDouble(state, output.stats.mean_local_clustering);
  state = FoldU64(state, output.new_edges.num_edges());
  for (const Edge& e : output.new_edges.edges()) {
    state = FoldU64(state, static_cast<uint64_t>(e.src));
    state = FoldU64(state, static_cast<uint64_t>(e.dst));
  }
  return Crc32cFinalize(state);
}

}  // namespace gly::harness
