// ReportGenerator — Figure 2's "Report Generator": "produces the main
// outcome of Graphalytics, a detailed report on the performance of the SUT
// during the benchmark, which includes all relevant configuration
// information." Plus the results database ("a database for Results ...
// accepts results submissions"), realized as an append-only JSONL file.

#pragma once

#include <string>
#include <vector>

#include "common/config.h"
#include "harness/core.h"

namespace gly::harness {

/// Renders the Figure-4-style runtime matrix as a fixed-width text table:
/// rows = algorithms, columns = (graph, platform), failed cells marked "-".
std::string RenderRuntimeTable(const std::vector<BenchmarkResult>& results);

/// Renders a TEPS table for one algorithm (the Figure 5 shape).
std::string RenderTepsTable(const std::vector<BenchmarkResult>& results,
                            AlgorithmKind algorithm);

/// Full human-readable report: configuration echo, runtime matrix, per-cell
/// details (validation, resources, platform metrics).
std::string RenderFullReport(const Config& configuration,
                             const std::vector<BenchmarkResult>& results);

/// Writes results as CSV (one row per cell).
Status WriteResultsCsv(const std::vector<BenchmarkResult>& results,
                       const std::string& path);

/// Appends results to the JSONL results database.
Status AppendResultsDatabase(const std::vector<BenchmarkResult>& results,
                             const Config& configuration,
                             const std::string& path);

/// Serializes one result as a single-line JSON object.
std::string ResultToJson(const BenchmarkResult& result);

/// Parses a journal/database line written by ResultToJson back into a
/// BenchmarkResult (status and validation carry only the code; messages
/// are not round-tripped). Returns an error on malformed lines.
Result<BenchmarkResult> ResultFromJson(const std::string& line);

}  // namespace gly::harness
