// BenchmarkCore — Figure 2's "Benchmark Core": "implements the benchmark
// harness that binds together Graphalytics."
//
// Runs the configured (platform × graph × algorithm) matrix: per cell it
// loads the dataset (ETL, untimed), executes the algorithm under the
// System Monitor, validates the output, and produces a BenchmarkResult.
// "By default, Graphalytics runs all the algorithms implemented on all
// configured graphs" — RunSpec mirrors the paper's run definition.
//
// Robustness: a cell that crashes, errors, or hangs must degrade to a
// *recorded* failure — the paper's "Missing values indicate failures" —
// never poison the rest of the matrix. RunSpec therefore carries a
// per-cell wall-clock timeout and a bounded retry policy with exponential
// backoff, and an optional fault::FaultPlan injects deterministic faults
// into the platform engines for testing exactly those paths.

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/config.h"
#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/trace.h"

namespace gly::prof {
class Sampler;
}  // namespace gly::prof
#include "harness/monitor.h"
#include "harness/platform.h"
#include "harness/scheduler.h"
#include "harness/validator.h"

namespace gly::harness {

/// What the profiling layer (DESIGN.md §14) collects during a run.
enum class ProfileMode {
  kOff,       ///< no profiling (the default)
  kCounters,  ///< hardware-counter deltas on spans (perf or fallback)
  kSampler,   ///< sampling CPU profiler → folded stacks
  kFull,      ///< counters + sampler
};

struct ProfileOptions {
  ProfileMode mode = ProfileMode::kOff;
  /// Sampling interval in microseconds of CPU time (500 Hz default).
  uint64_t sample_interval_us = 2000;
  /// Injected sampler (e.g. prof::FakeSampler) for deterministic tests;
  /// not owned. Null = the harness owns a real SignalSampler.
  prof::Sampler* sampler = nullptr;
};

/// One dataset in the run.
///
/// Reordered datasets (graph.reorder = degree): `graph` is the
/// degree-relabeled graph the platforms execute on, `original` the
/// pre-reorder graph, and the permutation arrays map between the two id
/// spaces (`new_to_old[new_id] == original_id`). `params` stays in
/// *original* ids — the harness translates id-valued parameters (the BFS
/// source) into the reordered space, maps each output back through
/// `MapOutputToOriginalIds`, and validates against `original`, so every
/// recorded result speaks original vertex ids. Algorithms that are not
/// relabeling-invariant (CD, EVO) are refused on reordered datasets with a
/// recorded per-cell failure. All three reorder fields are null for plain
/// datasets.
struct DatasetSpec {
  std::string name;
  const Graph* graph = nullptr;
  AlgorithmParams params;  ///< per-graph parameters (BFS source, seeds...)
  const Graph* original = nullptr;
  const std::vector<VertexId>* new_to_old = nullptr;
  const std::vector<VertexId>* old_to_new = nullptr;
};

/// The run definition.
struct RunSpec {
  std::vector<std::string> platforms;       ///< platform names
  Config platform_config;                   ///< keys: <platform>.<option>
  std::vector<DatasetSpec> datasets;
  std::vector<AlgorithmKind> algorithms;
  bool validate = true;
  bool monitor = true;

  /// Per-cell wall-clock timeout (0 = none). A cell that exceeds it is
  /// cooperatively cancelled (CancelReason::kDeadline through
  /// AlgorithmParams::cancel), recorded as kTimeout, and its attempt thread
  /// joined within `cancel_grace_s`. Only an attempt that ignores the token
  /// past the grace window is abandoned on a background thread (with the
  /// platform instance rebuilt before any retry) — the pre-cancellation
  /// behaviour, kept as the never-hangs backstop.
  double cell_timeout_s = 0.0;

  /// Stall watchdog (0 = off): cancel the attempt when its progress
  /// heartbeat (CancelToken::Heartbeat, bumped by every engine per
  /// superstep / job / operator / iteration / import batch) stops
  /// advancing for this long. Catches livelock and stalls long before a
  /// generous `cell_timeout_s` would, and catches them even with no
  /// wall-clock timeout configured at all.
  double stall_timeout_s = 0.0;

  /// How long a cancelled attempt gets to observe the token, unwind, and
  /// be joined before the harness falls back to abandoning it.
  double cancel_grace_s = 5.0;

  /// Optional harness-level stop token (e.g. armed by a SIGINT handler —
  /// CancelToken::Cancel(reason) is async-signal-safe). When it fires, the
  /// in-flight attempt is cancelled with kHarnessStop (final, not
  /// retried), remaining cells are skipped, and backoff/drain waits wake
  /// immediately. The harness only reads it; the caller owns it.
  const CancelToken* stop = nullptr;

  /// Bounded retry: total attempts per cell (>= 1). Only transient
  /// failures (timeout, internal/crash, I/O, resource exhaustion) are
  /// retried; the LDBC spec's "validated re-execution".
  uint32_t max_attempts = 1;

  /// Base delay before the first retry; doubles each further retry
  /// (exponential backoff). 0 = retry immediately.
  double retry_backoff_s = 0.0;

  /// How long RunBenchmark waits, after the matrix completes, for attempts
  /// that were abandoned on timeout to finish in the background (bounds
  /// the "never hangs" guarantee).
  double abandon_grace_s = 5.0;

  /// Optional deterministic fault plan, installed (scoped) for the whole
  /// run. Faults triggered during a cell are counted in its result.
  fault::FaultPlan* fault_plan = nullptr;

  /// Completion journal (JSONL, one line per finished cell, flushed as each
  /// cell completes). Empty = no journaling. With `resume` set, cells whose
  /// last journal entry succeeded (status ok, and validation ok when the
  /// spec validates) are reused from the journal instead of re-executed;
  /// everything else — failed, unvalidated, or never-run cells — runs
  /// normally and is re-journaled. Without `resume` the journal is
  /// truncated at the start of the run.
  std::string journal_path;
  bool resume = false;

  /// Observability (see DESIGN.md §10). With `trace_dir` set, the run
  /// emits a run-wide `trace.json` (Chrome trace-event format), one
  /// `trace-<platform>-<graph>-<algorithm>.json` per cell, a run-wide
  /// `profile.json` (critical path / utilization / self time, schema v1),
  /// one `profile-<cell>.json` per cell, and a schema-versioned
  /// `metrics.jsonl` into that directory, and each result carries its span
  /// count, top phase durations, and critical-path seconds. Per-cell
  /// artifacts are valid at any `jobs`: each in-flight cell records into
  /// its own child tracer (thread-local override, propagated into engine
  /// pools), merged back into the run-wide trace when the cell completes.
  /// `tracer` / `metrics` may be supplied by the caller (e.g. with a fake
  /// clock for golden tests); when null and `trace_dir` is set,
  /// RunBenchmark owns its own. All three empty/null (the default)
  /// disables tracing entirely — spans throughout the engines then cost
  /// one atomic load each.
  ///
  /// Caveat (same as caller-owned graphs): a caller-supplied tracer or
  /// registry must outlive attempts abandoned on timeout, i.e. live past
  /// the `abandon_grace_s` drain. Events an abandoned attempt records
  /// after its cell was summarized stay in the (kept-alive) child tracer
  /// and are dropped, never a use-after-free.
  std::string trace_dir;
  trace::Tracer* tracer = nullptr;
  metrics::Registry* metrics = nullptr;

  /// Profiling (DESIGN.md §14): sampling CPU profiler and/or hardware
  /// counters attached to spans. Artifacts land in `trace_dir` (profile
  /// modes other than kOff require tracing to be on to be useful — the
  /// launcher defaults a trace dir when `--profile` is given). Per-cell
  /// folded stacks are attributed exactly at jobs == 1; under jobs > 1
  /// samples are reported run-wide only (the interval timer is a process
  /// resource), while per-cell critical paths stay exact at any jobs.
  ProfileOptions profile;

  /// Concurrent scheduling (see DESIGN.md §12). `jobs` is the maximum
  /// number of cells in flight; 1 (the default) reproduces the serial
  /// execution order exactly. Cells sharing a (platform, dataset) pair run
  /// mutually exclusively on one reference-counted graph load; concurrency
  /// comes from distinct pairs.
  ///
  /// Caveats at jobs > 1 — everything else (journal contents, statuses,
  /// validation, per-cell trace files, retry/backoff, stall detection,
  /// stop, resume) is equivalent to the serial run: per-cell
  /// `injected_faults` attribution is approximate (the plan's trigger
  /// counter is process-global); per-cell folded stacks from the sampling
  /// profiler are reported run-wide only; and an explicit
  /// `<platform>.scratch_dir` is shared by concurrent instances of that
  /// platform (the default per-instance temp dir is safe).
  uint32_t jobs = 1;

  /// Admission budget for concurrently loaded graphs, in MiB (0 = no
  /// limit). A (platform, dataset) load is admitted only when its
  /// estimated footprint fits the remaining budget; oversubscribed loads
  /// queue rather than OOM, and a load bigger than the whole budget runs
  /// alone once everything else drained — admission delays cells, it never
  /// fails them.
  uint64_t sched_memory_budget_mb = 0;

  /// Share one graph load across all cells of a (platform, dataset) pair
  /// (on: the serial loop's behaviour). Off: every cell re-runs ETL in its
  /// own group — isolation for debugging at the cost of repeated loads.
  bool graph_cache = true;

  /// When non-null, receives the scheduler's aggregate stats (admissions,
  /// cache hits, queueing, peak concurrency, wall clock) for the run.
  SchedulerStats* scheduler_stats = nullptr;
};

/// Outcome of one (platform, graph, algorithm) cell.
struct BenchmarkResult {
  std::string platform;
  std::string graph;
  AlgorithmKind algorithm = AlgorithmKind::kStats;
  Status status;                 ///< OK, ResourceExhausted (failure), ...
  /// Validation outcome. Defaults to kUntested ("validation not run"), so
  /// a passing check (OK) is distinguishable from one that never ran
  /// (spec.validate == false, or the cell failed before producing output).
  Status validation = Status::Untested("validation not run");
  double runtime_seconds = 0.0;  ///< "job submission to result availability"
  double load_seconds = 0.0;     ///< ETL (reported separately, not runtime)
  uint64_t traversed_edges = 0;
  double teps = 0.0;             ///< traversed edges per second
  /// CRC32C fingerprint of the produced output in original vertex ids
  /// (harness::OutputChecksum); 0 when the cell failed before producing
  /// output. Lets the differential scheduler test assert concurrent and
  /// serial runs computed byte-identical answers, not merely same-status.
  uint32_t output_checksum = 0;
  uint32_t attempts = 0;         ///< execution attempts consumed (>= 1)
  bool timed_out = false;        ///< final attempt hit cell_timeout_s
  /// Final attempt was cooperatively cancelled (deadline, stall, or
  /// harness stop); `cancel_reason` names why ("deadline" | "stall" |
  /// "harness_stop", empty when not cancelled).
  bool cancelled = false;
  bool stalled = false;          ///< cancellation was the stall watchdog's
  std::string cancel_reason;
  /// Seconds the harness waited (within cancel_grace_s) for the final
  /// cancelled attempt to unwind and join; 0 when never cancelled.
  double cancel_join_seconds = 0.0;
  uint64_t injected_faults = 0;  ///< faults the plan triggered in this cell
  bool resumed = false;          ///< reused from the journal, not re-executed
  /// Checkpoint recoveries inside the platform during this cell (Pregel
  /// rollback-replays + MapReduce map stages restored from a manifest).
  uint64_t recoveries = 0;
  uint64_t supersteps_replayed = 0;  ///< Pregel supersteps re-executed
  /// Observability (0/empty when tracing is off): completed trace spans
  /// recorded during this cell, and the top-3 phases by total duration as
  /// "name:seconds" pairs joined with ';'.
  uint64_t trace_spans = 0;
  std::string top_phases;
  /// Critical path through the cell's span tree, rooted at its
  /// harness.cell envelope (trace analysis, DESIGN.md §14); by
  /// construction never exceeds the envelope's wall-clock duration. 0
  /// when tracing is off.
  double critical_path_seconds = 0.0;
  ResourceSummary resources;
  std::map<std::string, std::string> platform_metrics;
};

/// Callback invoked after each cell (progress reporting).
using ResultCallback = std::function<void(const BenchmarkResult&)>;

/// Executes the run and returns all results (one per matrix cell, failures
/// included — "Missing values indicate failures").
Result<std::vector<BenchmarkResult>> RunBenchmark(
    const RunSpec& spec, const ResultCallback& on_result = nullptr);

}  // namespace gly::harness
