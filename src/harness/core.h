// BenchmarkCore — Figure 2's "Benchmark Core": "implements the benchmark
// harness that binds together Graphalytics."
//
// Runs the configured (platform × graph × algorithm) matrix: per cell it
// loads the dataset (ETL, untimed), executes the algorithm under the
// System Monitor, validates the output, and produces a BenchmarkResult.
// "By default, Graphalytics runs all the algorithms implemented on all
// configured graphs" — RunSpec mirrors the paper's run definition.

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/result.h"
#include "harness/monitor.h"
#include "harness/platform.h"
#include "harness/validator.h"

namespace gly::harness {

/// One dataset in the run.
struct DatasetSpec {
  std::string name;
  const Graph* graph = nullptr;
  AlgorithmParams params;  ///< per-graph parameters (BFS source, seeds...)
};

/// The run definition.
struct RunSpec {
  std::vector<std::string> platforms;       ///< platform names
  Config platform_config;                   ///< keys: <platform>.<option>
  std::vector<DatasetSpec> datasets;
  std::vector<AlgorithmKind> algorithms;
  bool validate = true;
  bool monitor = true;
};

/// Outcome of one (platform, graph, algorithm) cell.
struct BenchmarkResult {
  std::string platform;
  std::string graph;
  AlgorithmKind algorithm = AlgorithmKind::kStats;
  Status status;                 ///< OK, ResourceExhausted (failure), ...
  Status validation;             ///< OK / ValidationFailed / untested
  double runtime_seconds = 0.0;  ///< "job submission to result availability"
  double load_seconds = 0.0;     ///< ETL (reported separately, not runtime)
  uint64_t traversed_edges = 0;
  double teps = 0.0;             ///< traversed edges per second
  ResourceSummary resources;
  std::map<std::string, std::string> platform_metrics;
};

/// Callback invoked after each cell (progress reporting).
using ResultCallback = std::function<void(const BenchmarkResult&)>;

/// Executes the run and returns all results (one per matrix cell, failures
/// included — "Missing values indicate failures").
Result<std::vector<BenchmarkResult>> RunBenchmark(
    const RunSpec& spec, const ResultCallback& on_result = nullptr);

}  // namespace gly::harness
