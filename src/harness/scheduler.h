// CellScheduler — concurrent execution of benchmark matrix cells.
//
// The LDBC Graphalytics harness automates a many-cell (platform × dataset ×
// algorithm) matrix; running those cells strictly serially leaves cores
// idle whenever a cell is I/O-bound or small. The scheduler runs up to
// `jobs` cells in flight while keeping every guarantee the serial loop
// gave (see DESIGN.md §12):
//
//  * Items (cells) are grouped: a *group* is one shared graph load — the
//    per-(platform, dataset) ETL. The group's load runs once, is
//    reference-counted across its items, and is retired (graph unloaded)
//    when the last item finishes, so cells on the same dataset reuse one
//    loaded graph instead of re-running ETL ("graph cache").
//  * Items of one group are mutually exclusive (Platform::Run is stateful),
//    so concurrency comes from distinct (platform, dataset) groups.
//  * Admission control: a group is admitted only when its estimated
//    footprint fits the remaining MemoryBudget. Oversubscribed groups
//    *queue* rather than OOM; a group bigger than the whole budget runs
//    alone once everything else has drained, so no cell ever starves.
//  * Items are claimed in registration order; a later item is only taken
//    early when every earlier one is blocked (group busy or budget), which
//    keeps jobs=1 exactly the serial execution order.
//  * A harness-level stop token skips all unclaimed items but still
//    retires every loaded group.
//
// Observability: `harness.sched.{admitted,queued,graph_cache_hits}`
// counters on the active metrics registry, plus a real `harness.sched.wait`
// span whenever a worker has to wait for admission (attributed to the item
// it ends up claiming).
//
// The scheduler itself is deliberately ignorant of benchmarks: it schedules
// opaque group/item ids against callbacks, which is what makes the
// admission logic unit-testable without running an engine.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/memory_budget.h"

namespace gly::harness {

/// Aggregate outcome of one scheduler run — the launcher's per-run summary
/// and the speedup test's evidence that concurrency actually happened.
struct SchedulerStats {
  uint32_t jobs = 1;             ///< configured max cells in flight
  uint64_t items = 0;            ///< schedulable cells (resumed excluded)
  uint64_t groups = 0;           ///< distinct (platform, dataset) loads
  uint64_t admitted = 0;         ///< group loads executed (ETL admissions)
  uint64_t graph_cache_hits = 0; ///< items that reused an already-loaded group
  uint64_t queued = 0;           ///< items that waited before starting
  uint64_t budget_deferrals = 0; ///< admission scans deferred on the budget
  uint64_t skipped = 0;          ///< items never started (harness stop)
  uint32_t max_in_flight = 0;    ///< peak concurrently running items
  double wall_seconds = 0.0;     ///< scheduler wall clock
};

/// Renders the stats as one summary line ("jobs=4 cells=12 ...").
std::string SchedulerSummary(const SchedulerStats& stats);

class CellScheduler {
 public:
  struct Options {
    uint32_t jobs = 1;                 ///< max items in flight (>= 1)
    uint64_t memory_budget_bytes = 0;  ///< admission budget (0 = unlimited)
    /// Optional harness stop: unclaimed items are skipped once it fires
    /// (in-flight items finish under their own cancellation machinery).
    const CancelToken* stop = nullptr;
  };

  using GroupFn = std::function<void(size_t group)>;
  using ItemFn = std::function<void(size_t item)>;

  explicit CellScheduler(const Options& options);

  /// Registers a group (one shared graph load) with its estimated resident
  /// footprint; returns its id. Estimates of 0 are admitted for free.
  size_t AddGroup(uint64_t estimate_bytes);

  /// Registers an item in `group`. Registration order is execution
  /// priority: with jobs=1 items run in exactly this order. `label` names
  /// the item in wait spans ("platform/graph/ALGO").
  size_t AddItem(size_t group, std::string label = "");

  /// Runs every item to completion (or skips it on stop) and returns the
  /// stats. `load(group)` runs once per admitted group before its first
  /// item; `run(item)` once per item, group-exclusively, on a worker
  /// thread; `retire(group)` once per loaded group after its last item
  /// finished or was skipped. Run() may be called once.
  SchedulerStats Run(const GroupFn& load, const ItemFn& run,
                     const GroupFn& retire);

 private:
  struct Group {
    uint64_t estimate = 0;
    size_t pending = 0;   ///< registered items not yet finished/skipped
    bool loaded = false;  ///< load() ran (or is running right now)
    bool busy = false;    ///< a worker is loading/running on it
    bool charged = false; ///< holds a budget charge until retire
    bool bypass = false;  ///< admitted oversized against an empty budget
  };
  struct Item {
    size_t group = 0;
    std::string label;
    bool claimed = false;
    bool deferred = false;  ///< was scanned and passed over at least once
  };

  Options options_;
  MemoryBudget budget_;
  std::vector<Group> groups_;
  std::vector<Item> items_;
};

}  // namespace gly::harness
