// Config-driven benchmark execution — the paper's user workflow (§2.3):
// "Add graphs ... Configure the platform ... Choose the workload ... Run
// the benchmark. Graphalytics includes a Unix shell script that triggers
// the execution of the benchmark. After the execution completes, the
// benchmark report is available in the local file system."
//
// RunFromConfig is that workflow as a library call (the
// tools/graphalytics_run CLI is a thin wrapper). Properties dialect:
//
//   # datasets
//   graphs = snb, g500
//   graph.snb.source = datagen            # datagen | rmat | file
//   graph.snb.persons = 10000
//   graph.snb.degree_spec = facebook:mean=18
//   graph.snb.seed = 42
//   graph.snb.bfs_source = 0
//   graph.g500.source = rmat
//   graph.g500.scale = 12
//   graph.g500.edge_factor = 16
//   # graph.mine.source = file
//   # graph.mine.path = /data/mine.e      # .e text or .bin binary
//
//   # platforms (any registered name; keys pass through to the adapter)
//   platforms = giraph, neo4j
//   giraph.workers = 8
//   neo4j.memory_budget_mb = 256
//
//   # workload ("all" or a subset)
//   algorithms = bfs, conn, stats
//   cd.max_iterations = 10
//   evo.new_vertices = 32
//
//   # ETL (see DESIGN.md §8, "ETL performance")
//   etl.threads = 8                   # parallel parse + CSR build (0 = all
//                                     # hardware threads, 1 = serial)
//   graph.reorder = degree            # degree | none: relabel hubs-first;
//   graph.snb.reorder = none          # per-graph override. Outputs and
//                                     # validation stay in original ids;
//                                     # CD/EVO cells are refused (recorded).
//
//   # outputs
//   report.dir = graphalytics-report
//   validate = true
//   monitor = true
//
//   # robustness (see DESIGN.md, "Recovery model" and §11)
//   timeout_s = 60                    # per-cell wall clock (0 = none)
//   stall_timeout_s = 10              # cancel when the progress heartbeat
//                                     # stops advancing (0 = off)
//   cancel_grace_s = 5                # join window for a cancelled attempt
//   max_attempts = 3                  # bounded retry of transient failures
//   giraph.checkpoint_interval = 4    # Pregel checkpoint every N supersteps
//   mapreduce.checkpointing = true    # persist map-stage manifests
//   resume = true                     # reuse finished cells from the journal
//   journal = run/journal.jsonl       # default: <report.dir>/journal.jsonl
//
//   # concurrent scheduling (see DESIGN.md §12)
//   harness.jobs = 4                  # max cells in flight (1 = serial)
//   harness.memory_budget_mb = 2048   # admission budget for concurrent
//                                     # graph loads (0 = no limit)
//   harness.graph_cache = true        # share one load per (platform, graph)

#pragma once

#include <string>

#include "common/config.h"
#include "harness/core.h"

namespace gly::harness {

/// Outcome of a config-driven run.
struct ConfigRunOutput {
  std::vector<BenchmarkResult> results;
  std::string report_text;     ///< full rendered report
  std::string report_dir;      ///< where files were written ("" if disabled)
  SchedulerStats scheduler;    ///< cell-scheduler summary (see RunSpec::jobs)
};

/// Executes the workflow described by `config`. Writes report.txt,
/// results.csv, and appends results.jsonl under `report.dir` when set.
/// `stop` (optional) is a harness-level stop token: arm it — e.g. from a
/// SIGINT handler; CancelToken::Cancel(reason) is async-signal-safe — and
/// the in-flight cell is cooperatively cancelled, remaining cells are
/// skipped, and the journal/report reflect what completed.
Result<ConfigRunOutput> RunFromConfig(const Config& config,
                                      const CancelToken* stop = nullptr);

}  // namespace gly::harness
