#include "harness/run_config.h"

#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>

#include "common/macros.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "datagen/rmat.h"
#include "datagen/social_datagen.h"
#include "graph/io.h"
#include "harness/report.h"

namespace gly::harness {

namespace fs = std::filesystem;

namespace {

// Builds one dataset from its `graph.<name>.*` scope. `etl_pool` (nullable)
// parallelizes text parsing and CSR construction — both paths are
// bit-identical to their serial counterparts, so the knob is purely a
// performance choice.
Result<Graph> BuildGraph(const std::string& name, const Config& scope,
                         ThreadPool* etl_pool) {
  CsrBuildOptions build;
  build.pool = etl_pool;
  std::string source = ToLower(scope.GetStringOr("source", "datagen"));
  if (source == "datagen") {
    datagen::SocialDatagenConfig dg;
    dg.num_persons = scope.GetUintOr("persons", 10000);
    dg.degree_spec = scope.GetStringOr("degree_spec", "facebook:mean=18");
    dg.window_size = scope.GetUintOr("window", 128);
    dg.seed = scope.GetUintOr("seed", 42);
    dg.university_fraction =
        scope.GetDoubleOr("university_fraction", dg.university_fraction);
    dg.interest_fraction =
        scope.GetDoubleOr("interest_fraction", dg.interest_fraction);
    dg.random_fraction =
        scope.GetDoubleOr("random_fraction", dg.random_fraction);
    ThreadPool pool(HardwareThreads());
    GLY_ASSIGN_OR_RETURN(datagen::SocialGraph social,
                         datagen::SocialDatagen(dg).Generate(&pool));
    return GraphBuilder::Undirected(social.edges, build);
  }
  if (source == "rmat") {
    datagen::RmatConfig rmat;
    rmat.scale = static_cast<uint32_t>(scope.GetUintOr("scale", 12));
    rmat.edge_factor =
        static_cast<uint32_t>(scope.GetUintOr("edge_factor", 16));
    rmat.seed = scope.GetUintOr("seed", 1);
    ThreadPool pool(HardwareThreads());
    GLY_ASSIGN_OR_RETURN(EdgeList edges,
                         datagen::RmatGenerator(rmat).Generate(&pool));
    bool directed = scope.GetBoolOr("directed", false);
    return directed ? GraphBuilder::Directed(edges, build)
                    : GraphBuilder::Undirected(edges, build);
  }
  if (source == "file") {
    GLY_ASSIGN_OR_RETURN(std::string path, scope.GetString("path"));
    EdgeListParseOptions parse;
    parse.drop_self_loops = scope.GetBoolOr("drop_self_loops", false);
    parse.drop_duplicates = scope.GetBoolOr("drop_duplicates", false);
    parse.max_vertex_id = scope.GetUintOr("max_vertex_id",
                                          parse.max_vertex_id);
    EtlOptions etl;
    etl.pool = etl_pool;
    EdgeList edges;
    if (path.size() >= 4 && path.substr(path.size() - 4) == ".bin") {
      GLY_ASSIGN_OR_RETURN(edges, ReadEdgeListBinary(path));
    } else if (path.size() >= 2 && path.substr(path.size() - 2) == ".e") {
      // Graphalytics dataset convention: companion ".v" picked up when
      // present (covers isolated vertices).
      GLY_ASSIGN_OR_RETURN(
          edges, ReadGraphalyticsDataset(path.substr(0, path.size() - 2),
                                         parse, etl));
    } else {
      GLY_ASSIGN_OR_RETURN(edges, ReadEdgeListText(path, parse, etl));
    }
    bool directed = scope.GetBoolOr("directed", false);
    return directed ? GraphBuilder::Directed(edges, build)
                    : GraphBuilder::Undirected(edges, build);
  }
  return Status::InvalidArgument("graph." + name + ".source: unknown '" +
                                 source + "'");
}

// Backing store for one dataset: the built graph plus, when the reorder
// knob asks for it, the degree-relabeled copy and its permutation. Held by
// pointer so DatasetSpec's raw pointers stay valid as the vector grows.
struct DatasetStorage {
  Graph graph;
  bool reordered = false;
  ReorderedGraph by_degree;
};

}  // namespace

Result<ConfigRunOutput> RunFromConfig(const Config& config,
                                      const CancelToken* stop) {
  // ----------------------------------------------------------- add graphs
  GLY_ASSIGN_OR_RETURN(std::string graphs_value, config.GetString("graphs"));
  std::vector<std::string> graph_names;
  for (const std::string& raw : Split(graphs_value, ',')) {
    std::string name(Trim(raw));
    if (!name.empty()) graph_names.push_back(name);
  }
  if (graph_names.empty()) {
    return Status::InvalidArgument("'graphs' lists no datasets");
  }

  // Shared algorithm parameters.
  AlgorithmParams base_params;
  base_params.cd.max_iterations =
      static_cast<uint32_t>(config.GetUintOr("cd.max_iterations", 10));
  base_params.cd.hop_attenuation =
      config.GetDoubleOr("cd.hop_attenuation", 0.05);
  base_params.evo.num_new_vertices =
      static_cast<uint32_t>(config.GetUintOr("evo.new_vertices", 16));
  base_params.evo.p_forward = config.GetDoubleOr("evo.p_forward", 0.3);
  base_params.evo.seed = config.GetUintOr("evo.seed", 99);
  {
    auto strategy =
        ParseBfsStrategy(config.GetStringOr("bfs.strategy", "diropt"));
    if (!strategy.ok()) return strategy.status().WithPrefix("bfs.strategy");
    base_params.bfs.strategy = *strategy;
  }
  base_params.bfs.alpha = config.GetDoubleOr("bfs.alpha", base_params.bfs.alpha);
  base_params.bfs.beta = config.GetDoubleOr("bfs.beta", base_params.bfs.beta);

  // ETL parallelism: etl.threads = 1 keeps the serial reference loaders;
  // N > 1 parses and builds on an N-thread pool; 0 = hardware threads.
  // Either way the graphs are bit-identical (see DESIGN.md §8).
  size_t etl_threads = config.GetUintOr("etl.threads", 1);
  if (etl_threads == 0) etl_threads = HardwareThreads();
  std::optional<ThreadPool> etl_pool;
  if (etl_threads > 1) etl_pool.emplace(etl_threads);
  ThreadPool* etl_pool_ptr = etl_pool ? &*etl_pool : nullptr;

  // Observability: trace.dir enables tracing for the whole run. The tracer
  // and registry are installed *here* — before the graphs are built — so the
  // ETL parse/CSR spans land in the same timeline as the benchmark cells.
  // Declared before the Scoped* installers so scope teardown (which
  // uninstalls the process-global pointer) precedes object destruction.
  std::string trace_dir = config.GetStringOr("trace.dir", "");

  // Profiling (DESIGN.md §14): profile.mode = off | counters | sampler |
  // full. Profile artifacts land next to the trace exports, so a profiled
  // run needs a trace directory; default one under report.dir when unset.
  ProfileOptions profile;
  std::string profile_mode =
      ToLower(config.GetStringOr("profile.mode", "off"));
  if (profile_mode == "off") {
    profile.mode = ProfileMode::kOff;
  } else if (profile_mode == "counters") {
    profile.mode = ProfileMode::kCounters;
  } else if (profile_mode == "sampler") {
    profile.mode = ProfileMode::kSampler;
  } else if (profile_mode == "full") {
    profile.mode = ProfileMode::kFull;
  } else {
    return Status::InvalidArgument("profile.mode: unknown '" + profile_mode +
                                   "' (off | counters | sampler | full)");
  }
  profile.sample_interval_us = config.GetUintOr("profile.interval_us", 2000);
  if (profile.mode != ProfileMode::kOff && trace_dir.empty()) {
    std::string profile_report_dir = config.GetStringOr("report.dir", "");
    if (profile_report_dir.empty()) {
      return Status::InvalidArgument(
          "profile.mode requires trace.dir or report.dir for artifacts");
    }
    trace_dir = profile_report_dir + "/trace";
  }

  std::optional<trace::Tracer> tracer;
  std::optional<metrics::Registry> run_metrics;
  std::optional<trace::ScopedTracer> trace_scope;
  std::optional<metrics::ScopedRegistry> metrics_scope;
  if (!trace_dir.empty()) {
    tracer.emplace();
    run_metrics.emplace();
    trace_scope.emplace(&*tracer);
    metrics_scope.emplace(&*run_metrics);
  }

  // graph.reorder = degree relabels every dataset by descending out-degree
  // (hubs first, for traversal locality); graph.<name>.reorder overrides it
  // per dataset. Results and validation stay in original vertex ids.
  std::string default_reorder =
      ToLower(config.GetStringOr("graph.reorder", "none"));

  std::vector<std::unique_ptr<DatasetStorage>> graphs;
  RunSpec spec;
  {
    trace::TraceSpan etl_span("harness.etl", "harness");
    for (const std::string& name : graph_names) {
      Config scope = config.Scoped("graph." + name);
      auto graph = BuildGraph(name, scope, etl_pool_ptr);
      if (!graph.ok()) return graph.status().WithPrefix("graph." + name);
      auto storage = std::make_unique<DatasetStorage>();
      storage->graph = std::move(graph).ValueOrDie();
      std::string reorder =
          ToLower(scope.GetStringOr("reorder", default_reorder));
      if (reorder == "degree") {
        storage->by_degree = storage->graph.ReorderByDegree(etl_pool_ptr);
        storage->reordered = true;
      } else if (reorder != "none") {
        return Status::InvalidArgument("graph." + name +
                                       ".reorder: unknown '" + reorder +
                                       "' (degree | none)");
      }
      graphs.push_back(std::move(storage));
    }
    etl_span.SetAttribute("graphs", uint64_t{graphs.size()});
  }
  for (size_t i = 0; i < graph_names.size(); ++i) {
    Config scope = config.Scoped("graph." + graph_names[i]);
    const DatasetStorage& storage = *graphs[i];
    DatasetSpec dataset;
    dataset.name = graph_names[i];
    if (storage.reordered) {
      dataset.graph = &storage.by_degree.graph;
      dataset.original = &storage.graph;
      dataset.new_to_old = &storage.by_degree.perm.new_to_old;
      dataset.old_to_new = &storage.by_degree.perm.old_to_new;
    } else {
      dataset.graph = &storage.graph;
    }
    dataset.params = base_params;
    dataset.params.bfs.source =
        static_cast<VertexId>(scope.GetUintOr("bfs_source", 0));
    spec.datasets.push_back(dataset);
  }

  // --------------------------------------------------- configure platforms
  std::string platforms_value =
      config.GetStringOr("platforms", Join(RegisteredPlatforms(), ","));
  for (const std::string& raw : Split(platforms_value, ',')) {
    std::string name(Trim(raw));
    if (!name.empty()) spec.platforms.push_back(name);
  }
  spec.platform_config = config;  // adapters read their own scope

  // ------------------------------------------------------ choose workload
  std::string algos_value = config.GetStringOr("algorithms", "all");
  if (ToLower(std::string(Trim(algos_value))) == "all") {
    spec.algorithms = {AlgorithmKind::kStats, AlgorithmKind::kBfs,
                       AlgorithmKind::kConn, AlgorithmKind::kCd,
                       AlgorithmKind::kEvo};
  } else {
    for (const std::string& raw : Split(algos_value, ',')) {
      std::string name(Trim(raw));
      if (name.empty()) continue;
      GLY_ASSIGN_OR_RETURN(AlgorithmKind kind, ParseAlgorithmKind(name));
      spec.algorithms.push_back(kind);
    }
  }
  spec.validate = config.GetBoolOr("validate", true);
  spec.monitor = config.GetBoolOr("monitor", true);

  // ------------------------------------------------ robustness policy
  spec.cell_timeout_s = config.GetDoubleOr("timeout_s", 0.0);
  spec.stall_timeout_s = config.GetDoubleOr("stall_timeout_s", 0.0);
  spec.cancel_grace_s = config.GetDoubleOr("cancel_grace_s", 5.0);
  spec.max_attempts =
      static_cast<uint32_t>(config.GetUintOr("max_attempts", 1));
  spec.retry_backoff_s = config.GetDoubleOr("retry_backoff_s", 0.0);
  spec.stop = stop;

  // ------------------------------------------- concurrent scheduling (§12)
  spec.jobs = static_cast<uint32_t>(config.GetUintOr("harness.jobs", 1));
  spec.sched_memory_budget_mb =
      config.GetUintOr("harness.memory_budget_mb", 0);
  spec.graph_cache = config.GetBoolOr("harness.graph_cache", true);

  // Resumable matrices: journal per-cell completion under the report dir
  // (or an explicit `journal` path); `resume = true` reuses finished cells.
  std::string report_dir = config.GetStringOr("report.dir", "");
  spec.journal_path = config.GetStringOr(
      "journal", report_dir.empty() ? "" : report_dir + "/journal.jsonl");
  spec.resume = config.GetBoolOr("resume", false);
  if (spec.resume && spec.journal_path.empty()) {
    return Status::InvalidArgument(
        "resume requires a journal: set report.dir or 'journal'");
  }
  if (!spec.journal_path.empty()) {
    std::error_code ec;
    fs::path parent = fs::path(spec.journal_path).parent_path();
    if (!parent.empty()) fs::create_directories(parent, ec);
  }

  // ------------------------------------------------- observability exports
  spec.trace_dir = trace_dir;
  spec.tracer = tracer ? &*tracer : nullptr;
  spec.metrics = run_metrics ? &*run_metrics : nullptr;
  spec.profile = profile;

  // --------------------------------------------------------------- run it
  ConfigRunOutput out;
  spec.scheduler_stats = &out.scheduler;
  GLY_ASSIGN_OR_RETURN(std::vector<BenchmarkResult> results,
                       RunBenchmark(spec));

  out.report_text = RenderFullReport(config, results);
  out.results = std::move(results);

  out.report_dir = config.GetStringOr("report.dir", "");
  if (!out.report_dir.empty()) {
    std::error_code ec;
    fs::create_directories(out.report_dir, ec);
    if (ec) {
      return Status::IOError("cannot create report dir: " + out.report_dir);
    }
    std::ofstream report(out.report_dir + "/report.txt");
    report << out.report_text;
    if (!report) return Status::IOError("cannot write report.txt");
    GLY_RETURN_NOT_OK(
        WriteResultsCsv(out.results, out.report_dir + "/results.csv"));
    GLY_RETURN_NOT_OK(AppendResultsDatabase(
        out.results, config, out.report_dir + "/results.jsonl"));
  }
  return out;
}

}  // namespace gly::harness
