#include "harness/core.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/macros.h"
#include "common/perf_counters.h"
#include "common/profiler.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/trace_analysis.h"
#include "harness/report.h"
#include "harness/scheduler.h"

namespace gly::harness {

namespace {

/// Failures worth re-executing: transient by construction (injected
/// faults, worker crashes, timeouts, I/O hiccups) or possibly so
/// (resource exhaustion under concurrent load). Spec errors
/// (InvalidArgument, NotImplemented, ...) re-fail identically, so they
/// are not retried.
bool IsRetryable(const Status& status) {
  return status.IsTimeout() || status.IsInternal() || status.IsIOError() ||
         status.IsResourceExhausted();
}

/// State shared with the runner thread of one supervised attempt. The
/// attempt's cancellation token lives here: the supervision loop arms it
/// (deadline / stall / harness stop) and the engines poll it through
/// AlgorithmParams::cancel. The thread holds its own shared_ptr, so in the
/// fallback case — an attempt that ignores the token past the grace window
/// and is abandoned — it can finish in the background, touching only this
/// state and the platform it owns, long after the harness has rebuilt the
/// platform and moved on.
struct AttemptState {
  std::shared_ptr<Platform> platform;
  AlgorithmKind algorithm = AlgorithmKind::kStats;
  AlgorithmParams params;
  CancelToken cancel;
  /// The cell's child tracer, held here so an abandoned attempt can keep
  /// recording into live storage after the harness summarized the cell
  /// and moved on (those late events are dropped, never a dangling write).
  std::shared_ptr<trace::Tracer> cell_tracer;
  Result<AlgorithmOutput> run = Status::Internal("attempt never finished");
  std::promise<void> done;
};

/// Supervision poll slice: how often the watchdog loop, retry backoff, and
/// abandoned-attempt drain re-check their conditions. Small enough that a
/// stop request feels immediate; large enough to cost nothing.
constexpr std::chrono::milliseconds kSuperviseSlice(10);

/// Backoff/housekeeping sleep that wakes early when the harness-level stop
/// token fires (so Ctrl-C never waits out an exponential backoff).
void InterruptibleSleep(double seconds, const CancelToken* stop) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(std::max(0.0, seconds)));
  while (std::chrono::steady_clock::now() < deadline) {
    if (Cancelled(stop)) return;
    const auto remaining = deadline - std::chrono::steady_clock::now();
    std::this_thread::sleep_for(std::min<std::chrono::steady_clock::duration>(
        remaining, kSuperviseSlice));
  }
}

std::string CellKey(const std::string& platform, const std::string& graph,
                    AlgorithmKind algorithm) {
  return platform + "/" + graph + "/" + AlgorithmKindName(algorithm);
}

/// A journaled cell can replace re-execution only if it finished cleanly:
/// status OK, and validation either passed or was (matching the spec)
/// deliberately not run. Anything else re-executes.
bool ReusableFromJournal(const RunSpec& spec, const BenchmarkResult& cell) {
  if (!cell.status.ok()) return false;
  if (cell.validation.ok()) return true;
  return !spec.validate && cell.validation.IsUntested();
}

/// A run killed mid-append (the chaos driver's SIGKILL) can leave a torn
/// final line with no trailing newline. Appending to it as-is would glue
/// the next entry onto the fragment, corrupting that entry too. Sealing
/// terminates the partial line so it parses as one malformed (skipped)
/// line and the lost cell simply re-executes.
void SealTornJournalTail(const std::string& path) {
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  if (!file) return;  // no journal yet: nothing to seal
  file.seekg(0, std::ios::end);
  if (file.tellg() == std::streampos(0)) return;
  file.seekg(-1, std::ios::end);
  char last = '\n';
  file.get(last);
  if (last != '\n') {
    file.clear();
    file.seekp(0, std::ios::end);
    file.put('\n');
  }
}

/// Loads the completion journal, keeping the last entry per cell.
/// Malformed lines (e.g. a torn tail from a killed run) are skipped, not
/// fatal — resume must work exactly after a crash.
std::map<std::string, BenchmarkResult> LoadJournal(const std::string& path) {
  std::map<std::string, BenchmarkResult> cells;
  std::ifstream file(path);
  if (!file) return cells;  // no journal yet: nothing to resume
  std::string line;
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    Result<BenchmarkResult> parsed = ResultFromJson(line);
    if (!parsed.ok()) {
      GLY_LOG_WARN << "journal: skipping malformed line: "
                   << parsed.status().ToString();
      continue;
    }
    std::string key =
        CellKey(parsed->platform, parsed->graph, parsed->algorithm);
    cells.insert_or_assign(key, std::move(parsed).ValueOrDie());
  }
  return cells;
}

/// Reads a numeric platform metric ("recoveries", ...); 0 when absent.
uint64_t MetricValue(const std::map<std::string, std::string>& metrics,
                     const std::string& key) {
  auto it = metrics.find(key);
  if (it == metrics.end()) return 0;
  return std::strtoull(it->second.c_str(), nullptr, 10);
}

/// Writes one artifact file under the trace dir, warning (not failing) on
/// I/O errors — observability output never fails a run.
void WriteTraceArtifact(const std::string& trace_dir, const std::string& file,
                        const std::string& contents) {
  std::ofstream out(std::filesystem::path(trace_dir) / file,
                    std::ios::binary | std::ios::trunc);
  out << contents;
  if (!out) {
    GLY_LOG_WARN << "trace: cannot write artifact " << file;
  }
}

/// Folds the cell's trace window into its result (span count + top-3
/// phases by total duration, the cell envelope itself excluded) and, when
/// a trace dir is set, writes the window as a per-cell Chrome trace. The
/// window is the full snapshot of the cell's child tracer, so it is exact
/// at any jobs.
void SummarizeCellTrace(const std::vector<trace::TraceEvent>& window,
                        const std::string& trace_dir,
                        BenchmarkResult* result) {
  std::vector<trace::PhaseTotal> phases = trace::AggregateSpans(window);
  std::vector<std::string> top;
  for (const trace::PhaseTotal& phase : phases) {
    if (phase.name == "harness.cell") continue;
    result->trace_spans += phase.count;
    if (top.size() < 3) {
      top.push_back(StringPrintf("%s:%.6f", phase.name.c_str(),
                                 phase.seconds));
    }
  }
  result->top_phases = Join(top, ";");
  if (!trace_dir.empty()) {
    std::string file = "trace-" + result->platform + "-" + result->graph +
                       "-" + AlgorithmKindName(result->algorithm) + ".json";
    WriteTraceArtifact(trace_dir, file, trace::ChromeTraceJson(window));
  }
}

/// Trace analysis of one cell's window: records the critical path (rooted
/// at the harness.cell envelope) on the result and, when a trace dir is
/// set, writes profile-<cell>.json (plus its folded stacks when per-cell
/// sampling was attributed).
void WriteCellProfile(const std::vector<trace::TraceEvent>& window,
                      const std::string& trace_dir,
                      const trace::SamplerSummary& sampler,
                      const prof::FoldedProfile& folded,
                      BenchmarkResult* result) {
  trace::AnalyzeOptions options;
  options.root = "harness.cell";
  trace::TraceAnalysis analysis = trace::AnalyzeTrace(window, options);
  result->critical_path_seconds = analysis.critical_path_seconds;
  if (trace_dir.empty()) return;
  std::string stem = result->platform + "-" + result->graph + "-" +
                     AlgorithmKindName(result->algorithm);
  WriteTraceArtifact(trace_dir, "profile-" + stem + ".json",
                     trace::ProfileJson(analysis, sampler, folded.ToLines()));
  if (sampler.mode != "off") {
    WriteTraceArtifact(trace_dir, "profile-" + stem + ".folded",
                       folded.ToFolded());
  }
}

/// One scheduler group: a shared (platform, dataset) graph load. The
/// platform instance, its load outcome, and the id-translated execution
/// parameters live here; items of the group run mutually exclusively, so
/// no lock is needed — the scheduler IS the lock.
struct GroupState {
  std::string platform_name;
  const DatasetSpec* dataset = nullptr;
  AlgorithmParams run_params;  ///< dataset.params, BFS source translated
  std::shared_ptr<Platform> platform;
  Status load_status;
  double load_seconds = 0.0;
};

/// One scheduler item: a matrix cell, pointing at its group and its slot
/// in the (matrix-ordered) result vector.
struct CellRef {
  size_t slot = 0;
  size_t group = 0;
  AlgorithmKind algorithm = AlgorithmKind::kStats;
};

}  // namespace

Result<std::vector<BenchmarkResult>> RunBenchmark(const RunSpec& spec,
                                                  const ResultCallback& on_result) {
  if (spec.platforms.empty()) {
    return Status::InvalidArgument("run spec has no platforms");
  }
  if (spec.datasets.empty()) {
    return Status::InvalidArgument("run spec has no datasets");
  }
  if (spec.algorithms.empty()) {
    return Status::InvalidArgument("run spec has no algorithms");
  }
  for (const DatasetSpec& ds : spec.datasets) {
    if (ds.graph == nullptr) {
      return Status::InvalidArgument("dataset '" + ds.name + "' has no graph");
    }
    if (ds.original != nullptr) {
      if (ds.new_to_old == nullptr || ds.old_to_new == nullptr ||
          ds.new_to_old->size() != ds.graph->num_vertices() ||
          ds.old_to_new->size() != ds.graph->num_vertices() ||
          ds.original->num_vertices() != ds.graph->num_vertices()) {
        return Status::InvalidArgument(
            "reordered dataset '" + ds.name +
            "' needs a permutation covering every vertex");
      }
    }
  }

  const uint32_t max_attempts = std::max(1u, spec.max_attempts);
  const uint32_t jobs = std::max(1u, spec.jobs);
  std::optional<fault::ScopedFaultPlan> fault_scope;
  if (spec.fault_plan != nullptr) fault_scope.emplace(spec.fault_plan);

  // Observability: install the tracer/registry for the whole run (the
  // engines pick them up through ActiveTracer()/ActiveRegistry(), no
  // plumbing). Owned instances are declared before the scoped installers
  // so the scopes are torn down first — an abandoned attempt that outlives
  // the grace drain then records nothing instead of touching freed state.
  std::optional<trace::Tracer> owned_tracer;
  std::optional<metrics::Registry> owned_registry;
  trace::Tracer* tracer = spec.tracer;
  metrics::Registry* registry = spec.metrics;
  if (!spec.trace_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(spec.trace_dir, ec);
    if (ec) {
      return Status::IOError("cannot create trace dir " + spec.trace_dir +
                             ": " + ec.message());
    }
    if (tracer == nullptr) tracer = &owned_tracer.emplace();
    if (registry == nullptr) registry = &owned_registry.emplace();
  }
  std::optional<trace::ScopedTracer> trace_scope;
  std::optional<metrics::ScopedRegistry> metrics_scope;
  if (tracer != nullptr) trace_scope.emplace(tracer);
  if (registry != nullptr) metrics_scope.emplace(registry);

  // Profiling (DESIGN.md §14). Counters are opened before the scheduler
  // spawns any worker or attempt thread: perf events inherit only into
  // threads created after the open. The sampling profiler is process-wide
  // (one interval timer); per-cell sample attribution happens by draining
  // at cell boundaries, which is exact only at jobs == 1 — otherwise all
  // samples land in the run-wide folded profile.
  const bool counters_on = spec.profile.mode == ProfileMode::kCounters ||
                           spec.profile.mode == ProfileMode::kFull;
  const bool sampler_on = spec.profile.mode == ProfileMode::kSampler ||
                          spec.profile.mode == ProfileMode::kFull;
  std::unique_ptr<perf::PerfCounters> counters;
  std::optional<perf::ScopedPerfCounters> counters_scope;
  if (counters_on) {
    counters = perf::PerfCounters::Open();
    counters_scope.emplace(counters.get());
  }
  std::optional<prof::CpuProfiler> profiler;
  prof::FoldedProfile run_folded;
  std::mutex profile_mu;  // guards profiler drains + run_folded merges
  if (sampler_on) {
    prof::CpuProfiler::Options profiler_options;
    profiler_options.interval_us = std::max<uint64_t>(
        1, spec.profile.sample_interval_us);
    profiler_options.sampler = spec.profile.sampler;
    profiler.emplace(profiler_options);
    Status started = profiler->Start();
    if (!started.ok()) {
      GLY_LOG_WARN << "profiler: " << started.ToString()
                   << " (sampling disabled for this run)";
      profiler.reset();
    }
  }
  const bool per_cell_samples = profiler.has_value() && jobs == 1;

  // Completion journal: with `resume`, cells already journaled as finished
  // are reused; without it the journal restarts from scratch. Newly
  // executed cells are appended (and flushed) as they complete, so a run
  // killed mid-matrix leaves a valid journal behind.
  std::map<std::string, BenchmarkResult> journal_cells;
  std::ofstream journal;
  if (!spec.journal_path.empty()) {
    if (spec.resume) {
      SealTornJournalTail(spec.journal_path);
      journal_cells = LoadJournal(spec.journal_path);
    }
    journal.open(spec.journal_path,
                 spec.resume ? std::ios::app : std::ios::trunc);
    if (!journal) {
      return Status::IOError("cannot open journal " + spec.journal_path);
    }
  }

  // Fail fast on unbuildable platforms (unknown name, bad config) — the
  // serial loop's whole-run error, checked before any cell executes. The
  // scheduler builds its own instance per (platform, dataset) group.
  for (const std::string& platform_name : spec.platforms) {
    GLY_ASSIGN_OR_RETURN(std::unique_ptr<Platform> probe,
                         MakePlatform(platform_name,
                                      spec.platform_config.Scoped(platform_name)));
    (void)probe;
  }

  // Build the matrix in registration order — the scheduler claims items in
  // this order, so jobs = 1 is exactly the old serial execution. A group is
  // one shared (platform, dataset) graph load; with the graph cache off,
  // every cell gets a private group and re-runs ETL. Cells resumed from
  // the journal are emitted up front and never scheduled; a dataset whose
  // cells all resumed is never loaded at all.
  CellScheduler::Options sched_options;
  sched_options.jobs = jobs;
  sched_options.memory_budget_bytes = spec.sched_memory_budget_mb << 20;
  sched_options.stop = spec.stop;
  CellScheduler scheduler(sched_options);
  std::vector<GroupState> groups;
  std::vector<CellRef> cells;
  std::vector<std::optional<BenchmarkResult>> slots(
      spec.platforms.size() * spec.datasets.size() * spec.algorithms.size());

  std::mutex emit_mu;
  auto emit = [&](size_t slot, BenchmarkResult result) {
    std::lock_guard<std::mutex> lock(emit_mu);
    if (journal.is_open() && !result.resumed) {
      journal << ResultToJson(result) << '\n';
      journal.flush();
    }
    slots[slot] = std::move(result);
    if (on_result) on_result(*slots[slot]);
  };

  size_t slot = 0;
  const bool stopped_before_start = Cancelled(spec.stop);
  for (const std::string& platform_name : spec.platforms) {
    for (const DatasetSpec& dataset : spec.datasets) {
      auto make_group = [&]() -> size_t {
        GroupState group;
        group.platform_name = platform_name;
        group.dataset = &dataset;
        group.run_params = dataset.params;
        // `dataset.params` speaks original vertex ids; on a reordered
        // dataset the BFS source must be translated into the id space the
        // platform actually runs in.
        if (dataset.original != nullptr &&
            dataset.params.bfs.source < dataset.old_to_new->size()) {
          group.run_params.bfs.source =
              (*dataset.old_to_new)[dataset.params.bfs.source];
        }
        groups.push_back(std::move(group));
        return scheduler.AddGroup(dataset.graph->MemoryBytes());
      };
      size_t group_id = static_cast<size_t>(-1);
      for (AlgorithmKind algorithm : spec.algorithms) {
        const size_t cell_slot = slot++;
        auto it = journal_cells.find(
            CellKey(platform_name, dataset.name, algorithm));
        if (it != journal_cells.end() &&
            ReusableFromJournal(spec, it->second)) {
          if (!stopped_before_start) {
            BenchmarkResult cached = it->second;
            cached.resumed = true;
            emit(cell_slot, std::move(cached));
          }
          continue;
        }
        if (!spec.graph_cache || group_id == static_cast<size_t>(-1)) {
          group_id = make_group();
        }
        CellRef cell;
        cell.slot = cell_slot;
        cell.group = group_id;
        cell.algorithm = algorithm;
        // Item ids are assigned densely in AddItem order, so cells[item]
        // is this cell by construction.
        scheduler.AddItem(group_id,
                          CellKey(platform_name, dataset.name, algorithm));
        cells.push_back(cell);
      }
    }
  }

  // Attempts abandoned on timeout; drained (bounded) before returning so
  // orphan threads do not normally outlive caller-owned graphs.
  std::mutex abandoned_mu;
  std::vector<std::future<void>> abandoned;

  auto make_group_platform = [&](GroupState& g) -> Status {
    GLY_ASSIGN_OR_RETURN(
        std::unique_ptr<Platform> fresh,
        MakePlatform(g.platform_name,
                     spec.platform_config.Scoped(g.platform_name)));
    g.platform = std::move(fresh);
    // Loads (untimed, outside AlgorithmParams) still honour a harness
    // stop — this is how Ctrl-C interrupts a multi-minute bulk import.
    g.platform->SetCancelToken(spec.stop);
    return Status::OK();
  };

  // Group load: platform instance + ETL, once per admitted group; not part
  // of the runtime metric. Transient load failures (e.g. injected I/O
  // errors) get the same bounded retry as cells; a failed load is recorded
  // on every cell of the group, never thrown.
  auto load_group = [&](size_t group_id) {
    GroupState& g = groups[group_id];
    prof::ScopedProfilePhase profile_phase("harness.load");
    g.load_status = make_group_platform(g);
    if (!g.load_status.ok()) return;
    Stopwatch load_watch;
    {
      trace::TraceSpan load_span("harness.load", "harness");
      perf::SpanCounters load_counters(&load_span);
      load_span.SetAttribute("platform", g.platform_name);
      load_span.SetAttribute("graph", g.dataset->name);
      uint32_t load_attempts = 0;
      for (uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
        load_attempts = attempt;
        g.load_status =
            g.platform->LoadGraph(*g.dataset->graph, g.dataset->name);
        if (g.load_status.ok() || !IsRetryable(g.load_status) ||
            attempt == max_attempts || Cancelled(spec.stop)) {
          break;
        }
        InterruptibleSleep(
            spec.retry_backoff_s *
                static_cast<double>(1ull << std::min(attempt - 1, 20u)),
            spec.stop);
      }
      load_span.SetAttribute("attempts", uint64_t{load_attempts});
      load_span.SetAttribute("ok", g.load_status.ok() ? "true" : "false");
    }
    g.load_seconds = load_watch.ElapsedSeconds();
  };

  // Cell execution: the per-cell watchdog/retry machinery, unchanged from
  // the serial loop, operating on the cell's group state (which the
  // scheduler guarantees is not shared with any concurrent cell).
  auto run_cell = [&](size_t item_id) {
    const CellRef& cell = cells[item_id];
    GroupState& g = groups[cell.group];
    const DatasetSpec& dataset = *g.dataset;
    const AlgorithmKind algorithm = cell.algorithm;

    BenchmarkResult result;
    result.platform = g.platform_name;
    result.graph = dataset.name;
    result.algorithm = algorithm;
    result.load_seconds = g.load_seconds;

    prof::ScopedProfilePhase profile_phase("harness.run");

    // The cell records into its own child tracer (sharing the run
    // tracer's clock), installed as this thread's override and propagated
    // into engine pools by ThreadPool::Submit — so the window is exactly
    // this cell's events at any jobs. It is summarized, written as the
    // per-cell trace/profile, and merged back into the run-wide tracer
    // once the envelope closes.
    std::shared_ptr<trace::Tracer> cell_tracer;
    std::optional<trace::ScopedThreadTracer> cell_scope;
    if (tracer != nullptr) {
      cell_tracer = std::make_shared<trace::Tracer>(tracer->clock());
      cell_scope.emplace(cell_tracer.get());
    }

    // Per-cell sample attribution (jobs == 1 only): samples still queued
    // from between cells are flushed to the run-wide profile, so the
    // cell-end drain contains exactly this cell's samples.
    uint64_t dropped_before = 0;
    if (per_cell_samples) {
      std::lock_guard<std::mutex> lock(profile_mu);
      run_folded.Merge(profiler->Collect());
      dropped_before = profiler->dropped_samples();
    }
    {
    trace::TraceSpan cell_span("harness.cell", "harness");
    cell_span.SetAttribute("platform", g.platform_name);
    cell_span.SetAttribute("graph", dataset.name);
    cell_span.SetAttribute("algorithm", AlgorithmKindName(algorithm));
    metrics::AddCounter("harness.cells");

    // CD and EVO seed their dynamics with vertex ids: running them on a
    // relabeled graph is a different computation whose output cannot be
    // mapped back. Refuse the cell — recorded, never silent.
    if (dataset.original != nullptr && !RelabelingInvariant(algorithm)) {
      result.status = Status::InvalidArgument(
          StringPrintf("%s is not relabeling-invariant; rerun with "
                       "graph.reorder = none",
                       AlgorithmKindName(algorithm).c_str()));
    } else if (!g.load_status.ok()) {
      result.status = g.load_status.WithPrefix("load");
    } else {
    const uint64_t faults_before =
        spec.fault_plan != nullptr ? spec.fault_plan->TotalTriggered() : 0;

    for (uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
      result.attempts = attempt;
      result.timed_out = false;
      result.cancelled = false;
      result.stalled = false;
      result.cancel_reason.clear();
      result.cancel_join_seconds = 0.0;

      // A prior attempt was abandoned: rebuild the platform and
      // re-run ETL before this attempt.
      if (g.platform == nullptr) {
        Status rebuilt = make_group_platform(g);
        if (rebuilt.ok()) {
          rebuilt = g.platform->LoadGraph(*dataset.graph, dataset.name);
        }
        if (!rebuilt.ok()) {
          result.status = rebuilt.WithPrefix("reload after timeout");
          g.platform.reset();
          break;
        }
      }

      SystemMonitor monitor;
      if (spec.monitor) monitor.Start();
      Stopwatch run_watch;
      Result<AlgorithmOutput> run = Status::Internal("cell never ran");
      {
        trace::TraceSpan run_span("harness.run", "harness");
        perf::SpanCounters run_counters(&run_span);
        run_span.SetAttribute("attempt", uint64_t{attempt});
        const bool supervised = spec.cell_timeout_s > 0.0 ||
                                spec.stall_timeout_s > 0.0 ||
                                spec.stop != nullptr;
        if (supervised) {
          auto state = std::make_shared<AttemptState>();
          state->platform = g.platform;
          state->algorithm = algorithm;
          state->params = g.run_params;
          state->params.cancel = &state->cancel;
          state->cell_tracer = cell_tracer;
          std::future<void> done = state->done.get_future();
          std::thread runner([state] {
            // The runner is a fresh thread: re-install the cell's tracer
            // override so the attempt (and pools it submits to) records
            // into the cell's window.
            trace::ScopedThreadTracer tracer_scope(state->cell_tracer.get());
            state->run = state->platform->Run(state->algorithm,
                                              state->params);
            state->done.set_value();
          });

          // Watchdog loop: slice-wait on the attempt, arming its token
          // on the first condition that fires — harness stop, the
          // wall-clock deadline, or a stalled progress heartbeat.
          const Deadline cell_deadline =
              spec.cell_timeout_s > 0.0 ? Deadline::After(spec.cell_timeout_s)
                                        : Deadline::Never();
          uint64_t last_beats = state->cancel.heartbeats();
          Stopwatch stall_watch;
          CancelReason why = CancelReason::kNone;
          for (;;) {
            if (done.wait_for(kSuperviseSlice) ==
                std::future_status::ready) {
              break;
            }
            if (Cancelled(spec.stop)) {
              why = CancelReason::kHarnessStop;
              state->cancel.Cancel(why, "harness stop requested");
              break;
            }
            if (cell_deadline.expired()) {
              why = CancelReason::kDeadline;
              state->cancel.Cancel(
                  why, StringPrintf("cell exceeded %.3fs wall-clock budget",
                                    spec.cell_timeout_s));
              break;
            }
            if (spec.stall_timeout_s > 0.0) {
              const uint64_t beats = state->cancel.heartbeats();
              if (beats != last_beats) {
                last_beats = beats;
                stall_watch = Stopwatch();
              } else if (stall_watch.ElapsedSeconds() >=
                         spec.stall_timeout_s) {
                why = CancelReason::kStall;
                state->cancel.Cancel(
                    why, StringPrintf(
                             "no progress heartbeat for %.3fs (stall "
                             "watchdog)",
                             spec.stall_timeout_s));
                break;
              }
            }
          }

          if (why == CancelReason::kNone) {
            runner.join();
            run = std::move(state->run);
          } else {
            // Grace join: the engines poll the token at bounded-work
            // intervals, so a cooperative attempt unwinds (releasing
            // budget charges, closing spans) and joins well within the
            // grace window — no thread outlives the cell.
            result.cancelled = true;
            result.cancel_reason = CancelReasonName(why);
            result.timed_out = why == CancelReason::kDeadline;
            result.stalled = why == CancelReason::kStall;
            metrics::AddCounter("harness.cancels");
            if (why == CancelReason::kDeadline) {
              metrics::AddCounter("harness.timeouts");
            }
            trace::Instant(
                "harness.cancel", "harness",
                {{"reason", CancelReasonName(why)},
                 {"platform", g.platform_name},
                 {"graph", dataset.name},
                 {"algorithm", AlgorithmKindName(algorithm)}});
            Stopwatch join_watch;
            const bool joined =
                done.wait_for(std::chrono::duration<double>(std::max(
                    0.0, spec.cancel_grace_s))) ==
                std::future_status::ready;
            result.cancel_join_seconds = join_watch.ElapsedSeconds();
            run_span.SetAttribute("cancelled", CancelReasonName(why));
            if (result.timed_out) {
              run_span.SetAttribute("timed_out", "true");
            }
            if (joined) {
              runner.join();
              // The cancelled verdict stands even if the attempt raced
              // to completion during the grace window: the cell blew
              // its budget (or the harness is stopping) either way.
              run = state->cancel.ToStatus();
              metrics::AddCounter("harness.cancel_joins");
              // The platform unwound cooperatively: keep it (and its
              // loaded graph) for the retry instead of rebuilding.
            } else {
              // Wedged past the grace window (e.g. stuck in a blocking
              // syscall the token cannot interrupt): fall back to the
              // abandon path so the matrix never hangs.
              runner.detach();
              run = state->cancel.ToStatus().WithPrefix(
                  StringPrintf("attempt ignored cancellation for %.3fs",
                               spec.cancel_grace_s));
              metrics::AddCounter("harness.cancel_join_failures");
              {
                std::lock_guard<std::mutex> lock(abandoned_mu);
                abandoned.push_back(std::move(done));
              }
              g.platform.reset();
            }
          }
        } else {
          run = g.platform->Run(algorithm, g.run_params);
        }
        run_span.SetAttribute("ok", run.ok() ? "true" : "false");
      }
      result.runtime_seconds = run_watch.ElapsedSeconds();
      if (spec.monitor) result.resources = monitor.Stop();
      if (g.platform != nullptr) {
        result.platform_metrics = g.platform->LastRunMetrics();
      }

      if (run.ok()) {
        result.status = Status::OK();
        result.traversed_edges = run->traversed_edges;
        result.teps = result.runtime_seconds > 0.0
                          ? static_cast<double>(run->traversed_edges) /
                                result.runtime_seconds
                          : 0.0;
        // The recorded answer speaks original vertex ids: reordered
        // outputs are mapped back before both the checksum and the
        // validation, so a reordered run and a plain run that computed
        // the same answer fingerprint identically.
        const AlgorithmOutput* answer = &*run;
        AlgorithmOutput mapped;
        if (dataset.original != nullptr) {
          mapped = MapOutputToOriginalIds(algorithm, *dataset.new_to_old,
                                          *run);
          answer = &mapped;
        }
        result.output_checksum = OutputChecksum(*answer);
        if (spec.validate) {
          prof::ScopedProfilePhase validate_phase("harness.validate");
          trace::TraceSpan validate_span("harness.validate", "harness");
          perf::SpanCounters validate_counters(&validate_span);
          // Reordered datasets validate in original vertex ids against
          // the original graph, so a reordered run and a plain run
          // answer to the same reference output.
          const Graph& expected_on =
              dataset.original != nullptr ? *dataset.original : *dataset.graph;
          result.validation = ValidateOutput(expected_on, algorithm,
                                             dataset.params, *answer);
          if (!result.validation.ok()) {
            GLY_LOG_ERROR << g.platform_name << "/" << dataset.name << "/"
                          << AlgorithmKindName(algorithm) << " validation: "
                          << result.validation.ToString();
          }
        }
        break;
      }

      result.status = run.status();
      GLY_LOG_WARN << g.platform_name << "/" << dataset.name << "/"
                   << AlgorithmKindName(algorithm) << " attempt "
                   << attempt << "/" << max_attempts
                   << " failed: " << run.status().ToString();
      if (attempt == max_attempts || !IsRetryable(result.status) ||
          Cancelled(spec.stop)) {
        break;
      }
      double backoff =
          spec.retry_backoff_s *
          static_cast<double>(1ull << std::min(attempt - 1, 20u));
      metrics::AddCounter("harness.retries");
      trace::Instant("harness.retry", "harness",
                     {{"attempt", std::to_string(attempt)},
                      {"backoff_s", StringPrintf("%.3f", backoff)}});
      InterruptibleSleep(backoff, spec.stop);
    }

    // Per-cell fault attribution via the plan's global trigger counter;
    // exact at jobs == 1, approximate when concurrent cells trigger
    // faults in the same window.
    result.injected_faults =
        spec.fault_plan != nullptr
            ? spec.fault_plan->TotalTriggered() - faults_before
            : 0;
    // Checkpoint/recovery counters surface through platform metrics
    // (Pregel rollback-replays and MapReduce map-stage restores).
    result.recoveries =
        MetricValue(result.platform_metrics, "recoveries") +
        MetricValue(result.platform_metrics, "map_stages_recovered");
    result.supersteps_replayed =
        MetricValue(result.platform_metrics, "supersteps_replayed");
    }  // retry loop (else branch of the refusal checks)
    }  // harness.cell envelope
    if (cell_tracer != nullptr) {
      // Close the override first so nothing this thread does below lands
      // in the cell window, then summarize/analyze it and merge it back
      // into the run-wide trace (events are appended contiguously, with
      // child tids remapped to fresh run-level tids).
      cell_scope.reset();
      std::vector<trace::TraceEvent> window = cell_tracer->Snapshot();
      SummarizeCellTrace(window, spec.trace_dir, &result);
      trace::SamplerSummary sampler_summary;
      prof::FoldedProfile cell_folded;
      if (per_cell_samples) {
        std::lock_guard<std::mutex> lock(profile_mu);
        cell_folded = profiler->Collect();
        run_folded.Merge(cell_folded);
        cell_folded.dropped = profiler->dropped_samples() - dropped_before;
        sampler_summary.mode = profiler->mode();
        sampler_summary.interval_us = profiler->interval_us();
        sampler_summary.samples = cell_folded.samples;
        sampler_summary.dropped = cell_folded.dropped;
      }
      WriteCellProfile(window, spec.trace_dir, sampler_summary, cell_folded,
                       &result);
      tracer->MergeEvents(std::move(window));
    }
    emit(cell.slot, std::move(result));
  };

  // Last cell of a group done (or skipped on stop): unload its graph.
  auto retire_group = [&](size_t group_id) {
    GroupState& g = groups[group_id];
    if (g.platform != nullptr) g.platform->UnloadGraph();
    g.platform.reset();
  };

  SchedulerStats stats = scheduler.Run(load_group, run_cell, retire_group);
  if (spec.scheduler_stats != nullptr) *spec.scheduler_stats = stats;

  // Bounded drain: give abandoned attempts a grace window to finish (they
  // are sleeping in a stalled site or finishing a slow superstep). If one
  // is genuinely wedged we still return — the matrix never hangs. The wait
  // re-checks its own deadline on every slice (a wait_until return is not
  // proof of readiness — timeouts and spurious returns look identical) and
  // wakes immediately when the harness-level stop token fires, so Ctrl-C
  // never hangs on the drain.
  if (!abandoned.empty()) {
    const Deadline drain_deadline =
        Deadline::After(std::max(0.0, spec.abandon_grace_s));
    for (std::future<void>& done : abandoned) {
      for (;;) {
        if (done.wait_for(kSuperviseSlice) == std::future_status::ready) break;
        if (drain_deadline.expired() || Cancelled(spec.stop)) break;
      }
    }
  }

  // Stop sampling and fold the tail (samples taken after the last cell
  // completed); the run-wide profile then accounts for every sample the
  // ring accepted, with drops reported from the sampler's own counter.
  if (profiler.has_value()) {
    std::lock_guard<std::mutex> lock(profile_mu);
    profiler->Stop();
    run_folded.Merge(profiler->Collect());
    run_folded.dropped = profiler->dropped_samples();
    metrics::AddCounter("profiler.samples", run_folded.samples);
    metrics::AddCounter("profiler.dropped", run_folded.dropped);
  }

  // Run-wide observability artifacts (after the drain, so spans from
  // abandoned-but-finished attempts are included).
  if (!spec.trace_dir.empty()) {
    std::filesystem::path dir(spec.trace_dir);
    if (tracer != nullptr) {
      Status written = tracer->WriteTo((dir / "trace.json").string());
      if (!written.ok()) {
        GLY_LOG_WARN << "trace: " << written.ToString();
      }
      // Run-wide profile.json: critical path over the whole span forest
      // (longest top-level span as root), per-worker utilization, top-K
      // self time, plus the run-wide folded stacks.
      trace::TraceAnalysis analysis = trace::AnalyzeTrace(tracer->Snapshot());
      trace::SamplerSummary sampler_summary;
      if (profiler.has_value()) {
        sampler_summary.mode = profiler->mode();
        sampler_summary.interval_us = profiler->interval_us();
        sampler_summary.samples = run_folded.samples;
        sampler_summary.dropped = run_folded.dropped;
      }
      WriteTraceArtifact(
          spec.trace_dir, "profile.json",
          trace::ProfileJson(analysis, sampler_summary, run_folded.ToLines()));
      if (profiler.has_value()) {
        WriteTraceArtifact(spec.trace_dir, "profile.folded",
                           run_folded.ToFolded());
      }
    }
    if (registry != nullptr) {
      Status written = registry->WriteTo((dir / "metrics.jsonl").string());
      if (!written.ok()) {
        GLY_LOG_WARN << "metrics: " << written.ToString();
      }
    }
  }

  // Results in matrix order; cells skipped on stop leave no result, same
  // as the serial loop breaking out of its nests.
  std::vector<BenchmarkResult> results;
  results.reserve(slots.size());
  for (std::optional<BenchmarkResult>& filled : slots) {
    if (filled.has_value()) results.push_back(*std::move(filled));
  }
  return results;
}

}  // namespace gly::harness