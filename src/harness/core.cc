#include "harness/core.h"

#include "common/logging.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace gly::harness {

Result<std::vector<BenchmarkResult>> RunBenchmark(const RunSpec& spec,
                                                  const ResultCallback& on_result) {
  if (spec.platforms.empty()) {
    return Status::InvalidArgument("run spec has no platforms");
  }
  if (spec.datasets.empty()) {
    return Status::InvalidArgument("run spec has no datasets");
  }
  if (spec.algorithms.empty()) {
    return Status::InvalidArgument("run spec has no algorithms");
  }
  for (const DatasetSpec& ds : spec.datasets) {
    if (ds.graph == nullptr) {
      return Status::InvalidArgument("dataset '" + ds.name + "' has no graph");
    }
  }

  std::vector<BenchmarkResult> results;
  for (const std::string& platform_name : spec.platforms) {
    GLY_ASSIGN_OR_RETURN(
        std::unique_ptr<Platform> platform,
        MakePlatform(platform_name,
                     spec.platform_config.Scoped(platform_name)));
    for (const DatasetSpec& dataset : spec.datasets) {
      // ETL once per (platform, graph); not part of the runtime metric.
      Stopwatch load_watch;
      Status load_status = platform->LoadGraph(*dataset.graph, dataset.name);
      double load_seconds = load_watch.ElapsedSeconds();

      for (AlgorithmKind algorithm : spec.algorithms) {
        BenchmarkResult result;
        result.platform = platform_name;
        result.graph = dataset.name;
        result.algorithm = algorithm;
        result.load_seconds = load_seconds;

        if (!load_status.ok()) {
          result.status = load_status.WithPrefix("load");
          results.push_back(result);
          if (on_result) on_result(result);
          continue;
        }

        SystemMonitor monitor;
        if (spec.monitor) monitor.Start();
        Stopwatch run_watch;
        Result<AlgorithmOutput> run =
            platform->Run(algorithm, dataset.params);
        result.runtime_seconds = run_watch.ElapsedSeconds();
        if (spec.monitor) result.resources = monitor.Stop();
        result.platform_metrics = platform->LastRunMetrics();

        if (!run.ok()) {
          result.status = run.status();
          GLY_LOG_WARN << platform_name << "/" << dataset.name << "/"
                       << AlgorithmKindName(algorithm)
                       << " failed: " << run.status().ToString();
        } else {
          result.status = Status::OK();
          result.traversed_edges = run->traversed_edges;
          result.teps = result.runtime_seconds > 0.0
                            ? static_cast<double>(run->traversed_edges) /
                                  result.runtime_seconds
                            : 0.0;
          if (spec.validate) {
            result.validation = ValidateOutput(*dataset.graph, algorithm,
                                               dataset.params, *run);
            if (!result.validation.ok()) {
              GLY_LOG_ERROR << platform_name << "/" << dataset.name << "/"
                            << AlgorithmKindName(algorithm) << " validation: "
                            << result.validation.ToString();
            }
          }
        }
        results.push_back(result);
        if (on_result) on_result(result);
      }
      platform->UnloadGraph();
    }
  }
  return results;
}

}  // namespace gly::harness
