#include "harness/core.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <optional>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace gly::harness {

namespace {

/// Failures worth re-executing: transient by construction (injected
/// faults, worker crashes, timeouts, I/O hiccups) or possibly so
/// (resource exhaustion under concurrent load). Spec errors
/// (InvalidArgument, NotImplemented, ...) re-fail identically, so they
/// are not retried.
bool IsRetryable(const Status& status) {
  return status.IsTimeout() || status.IsInternal() || status.IsIOError() ||
         status.IsResourceExhausted();
}

/// State shared with the runner thread of one timed attempt. The thread
/// holds its own references, so an attempt abandoned on timeout can finish
/// in the background — touching only this state and the platform it owns —
/// long after the harness has rebuilt the platform and moved on.
struct AttemptState {
  std::shared_ptr<Platform> platform;
  AlgorithmKind algorithm = AlgorithmKind::kStats;
  AlgorithmParams params;
  Result<AlgorithmOutput> run = Status::Internal("attempt never finished");
  std::promise<void> done;
};

void SleepSeconds(double seconds) {
  if (seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
}

}  // namespace

Result<std::vector<BenchmarkResult>> RunBenchmark(const RunSpec& spec,
                                                  const ResultCallback& on_result) {
  if (spec.platforms.empty()) {
    return Status::InvalidArgument("run spec has no platforms");
  }
  if (spec.datasets.empty()) {
    return Status::InvalidArgument("run spec has no datasets");
  }
  if (spec.algorithms.empty()) {
    return Status::InvalidArgument("run spec has no algorithms");
  }
  for (const DatasetSpec& ds : spec.datasets) {
    if (ds.graph == nullptr) {
      return Status::InvalidArgument("dataset '" + ds.name + "' has no graph");
    }
  }

  const uint32_t max_attempts = std::max(1u, spec.max_attempts);
  std::optional<fault::ScopedFaultPlan> fault_scope;
  if (spec.fault_plan != nullptr) fault_scope.emplace(spec.fault_plan);

  // Attempts abandoned on timeout; drained (bounded) before returning so
  // orphan threads do not normally outlive caller-owned graphs.
  std::vector<std::future<void>> abandoned;

  std::vector<BenchmarkResult> results;
  for (const std::string& platform_name : spec.platforms) {
    // The platform instance is discarded whenever an attempt times out
    // (the hung run still owns the old one) and rebuilt lazily here.
    std::shared_ptr<Platform> platform;
    auto make_platform = [&]() -> Status {
      GLY_ASSIGN_OR_RETURN(
          std::unique_ptr<Platform> fresh,
          MakePlatform(platform_name,
                       spec.platform_config.Scoped(platform_name)));
      platform = std::move(fresh);
      return Status::OK();
    };
    GLY_RETURN_NOT_OK(make_platform());

    for (const DatasetSpec& dataset : spec.datasets) {
      // ETL once per (platform, graph); not part of the runtime metric.
      // Transient load failures (e.g. injected I/O errors) get the same
      // bounded retry as cells.
      Stopwatch load_watch;
      Status load_status;
      for (uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
        load_status = platform->LoadGraph(*dataset.graph, dataset.name);
        if (load_status.ok() || !IsRetryable(load_status) ||
            attempt == max_attempts) {
          break;
        }
        SleepSeconds(spec.retry_backoff_s *
                     static_cast<double>(1ull << std::min(attempt - 1, 20u)));
      }
      double load_seconds = load_watch.ElapsedSeconds();

      for (AlgorithmKind algorithm : spec.algorithms) {
        BenchmarkResult result;
        result.platform = platform_name;
        result.graph = dataset.name;
        result.algorithm = algorithm;
        result.load_seconds = load_seconds;

        if (!load_status.ok()) {
          result.status = load_status.WithPrefix("load");
          results.push_back(result);
          if (on_result) on_result(result);
          continue;
        }

        const uint64_t faults_before =
            spec.fault_plan != nullptr ? spec.fault_plan->TotalTriggered() : 0;

        for (uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
          result.attempts = attempt;
          result.timed_out = false;

          // A prior attempt was abandoned: rebuild the platform and
          // re-run ETL before this attempt.
          if (platform == nullptr) {
            Status rebuilt = make_platform();
            if (rebuilt.ok()) {
              rebuilt = platform->LoadGraph(*dataset.graph, dataset.name);
            }
            if (!rebuilt.ok()) {
              result.status = rebuilt.WithPrefix("reload after timeout");
              platform.reset();
              break;
            }
          }

          SystemMonitor monitor;
          if (spec.monitor) monitor.Start();
          Stopwatch run_watch;
          Result<AlgorithmOutput> run = Status::Internal("cell never ran");
          if (spec.cell_timeout_s > 0.0) {
            auto state = std::make_shared<AttemptState>();
            state->platform = platform;
            state->algorithm = algorithm;
            state->params = dataset.params;
            std::future<void> done = state->done.get_future();
            std::thread([state] {
              state->run = state->platform->Run(state->algorithm,
                                                state->params);
              state->done.set_value();
            }).detach();
            if (done.wait_for(std::chrono::duration<double>(
                    spec.cell_timeout_s)) == std::future_status::ready) {
              run = std::move(state->run);
            } else {
              run = Status::Timeout(StringPrintf(
                  "cell exceeded %.3fs wall-clock budget",
                  spec.cell_timeout_s));
              result.timed_out = true;
              abandoned.push_back(std::move(done));
              platform.reset();
            }
          } else {
            run = platform->Run(algorithm, dataset.params);
          }
          result.runtime_seconds = run_watch.ElapsedSeconds();
          if (spec.monitor) result.resources = monitor.Stop();
          if (platform != nullptr) {
            result.platform_metrics = platform->LastRunMetrics();
          }

          if (run.ok()) {
            result.status = Status::OK();
            result.traversed_edges = run->traversed_edges;
            result.teps = result.runtime_seconds > 0.0
                              ? static_cast<double>(run->traversed_edges) /
                                    result.runtime_seconds
                              : 0.0;
            if (spec.validate) {
              result.validation = ValidateOutput(*dataset.graph, algorithm,
                                                 dataset.params, *run);
              if (!result.validation.ok()) {
                GLY_LOG_ERROR << platform_name << "/" << dataset.name << "/"
                              << AlgorithmKindName(algorithm) << " validation: "
                              << result.validation.ToString();
              }
            }
            break;
          }

          result.status = run.status();
          GLY_LOG_WARN << platform_name << "/" << dataset.name << "/"
                       << AlgorithmKindName(algorithm) << " attempt "
                       << attempt << "/" << max_attempts
                       << " failed: " << run.status().ToString();
          if (attempt == max_attempts || !IsRetryable(result.status)) break;
          SleepSeconds(spec.retry_backoff_s *
                       static_cast<double>(1ull << std::min(attempt - 1, 20u)));
        }

        result.injected_faults =
            spec.fault_plan != nullptr
                ? spec.fault_plan->TotalTriggered() - faults_before
                : 0;
        results.push_back(result);
        if (on_result) on_result(result);
      }
      if (platform != nullptr) platform->UnloadGraph();
    }
  }

  // Bounded drain: give abandoned attempts a grace window to finish (they
  // are sleeping in a stalled site or finishing a slow superstep). If one
  // is genuinely wedged we still return — the matrix never hangs.
  if (!abandoned.empty()) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(
                            std::max(0.0, spec.abandon_grace_s)));
    for (std::future<void>& done : abandoned) {
      done.wait_until(deadline);
    }
  }
  return results;
}

}  // namespace gly::harness
