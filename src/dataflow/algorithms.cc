#include "dataflow/algorithms.h"

#include <algorithm>
#include <atomic>
#include <optional>

#include "common/bitset.h"
#include "dataflow/graph.h"

namespace gly::dataflow {

namespace {

// ------------------------------------------------------------------- BFS

struct BfsValue {
  int64_t dist = kUnreachable;
  bool changed = false;
};

// Naive path: the GraphX Pregel operator — every level joins the full
// vertex dataset (the platform's cost signature). Selected by
// BfsStrategy::kTopDown; the frontier kernel below is the default.
Result<AlgorithmOutput> RunBfsPregelJoins(Context* ctx, const Graph& graph,
                                          const BfsParams& params) {
  GLY_ASSIGN_OR_RETURN(
      auto pg, PropertyGraph<BfsValue>::FromGraph(
                   ctx, graph, [&params](VertexId v) {
                     return BfsValue{v == params.source ? 0 : kUnreachable,
                                     v == params.source};
                   }));
  GLY_ASSIGN_OR_RETURN(
      PregelJoinStats pstats,
      pg.template Pregel<int64_t>(
          /*max_iterations=*/graph.num_vertices() + 1,
          [](const BfsValue& src, VertexId, VertexId) -> std::optional<int64_t> {
            if (src.changed) return src.dist + 1;
            return std::nullopt;
          },
          [](const int64_t& a, const int64_t& b) { return std::min(a, b); },
          [](uint64_t, const BfsValue& old, const int64_t* m)
              -> std::pair<BfsValue, bool> {
            if (m != nullptr && *m < old.dist) {
              return {BfsValue{*m, true}, true};
            }
            return {BfsValue{old.dist, false}, false};
          }));
  AlgorithmOutput out;
  out.vertex_values.assign(graph.num_vertices(), kUnreachable);
  for (const auto& [k, v] : pg.vertices().Collect()) {
    out.vertex_values[k] = v.dist;
  }
  out.traversed_edges = pstats.messages;
  return out;
}

// Direction-optimizing path (GraphX's aggregateMessages with a chosen edge
// direction): each level materializes the frontier as a dataset and
// expands it top-down (FlatMap over frontier vertices) or bottom-up
// (FlatMap over undiscovered vertices probing potential parents),
// switched by the shared alpha/beta policy. The distance array and the
// visited bitmap are driver-side broadcast state; every per-level
// collection still funnels through Materialize, so the engine's memory
// budget and JVM-churn cost model keep applying.
Result<AlgorithmOutput> RunBfsDirOpt(Context* ctx, const Graph& graph,
                                     const BfsParams& params) {
  AlgorithmOutput out;
  const VertexId n = graph.num_vertices();
  out.vertex_values.assign(n, kUnreachable);
  if (params.source >= n) return out;

  AtomicBitset visited(n);
  visited.Set(params.source);
  out.vertex_values[params.source] = 0;
  std::vector<VertexId> frontier{params.source};

  BfsDirectionPolicy policy(params, n);
  uint64_t frontier_degree = graph.OutDegree(params.source);
  uint64_t unexplored_degree =
      graph.num_adjacency_entries() - frontier_degree;
  std::atomic<uint64_t> traversed{0};
  int64_t depth = 0;
  const int64_t* dist = out.vertex_values.data();
  while (!frontier.empty()) {
    const bool bottom_up = policy.UseBottomUp(frontier.size(),
                                              frontier_degree,
                                              unexplored_degree);
    std::vector<VertexId> discovered;
    if (!bottom_up) {
      GLY_ASSIGN_OR_RETURN(Dataset<VertexId> frontier_ds,
                           ctx->Parallelize(frontier));
      GLY_ASSIGN_OR_RETURN(
          Dataset<VertexId> discovered_ds,
          (ctx->template FlatMap<VertexId>(
              frontier_ds, [&graph, &visited, &traversed](VertexId v) {
                std::vector<VertexId> won;
                uint64_t probes = 0;
                for (VertexId w : graph.OutNeighbors(v)) {
                  ++probes;
                  if (visited.TestAndSet(w)) won.push_back(w);
                }
                traversed.fetch_add(probes, std::memory_order_relaxed);
                return won;
              })));
      discovered = discovered_ds.Collect();
    } else {
      std::vector<VertexId> unexplored;
      unexplored.reserve(n - visited.Count());
      for (VertexId v = 0; v < n; ++v) {
        if (!visited.Test(v)) unexplored.push_back(v);
      }
      GLY_ASSIGN_OR_RETURN(Dataset<VertexId> unexplored_ds,
                           ctx->Parallelize(unexplored));
      GLY_ASSIGN_OR_RETURN(
          Dataset<VertexId> discovered_ds,
          (ctx->template FlatMap<VertexId>(
              unexplored_ds,
              [&graph, &traversed, dist, depth](VertexId v) {
                std::vector<VertexId> won;
                auto parents = graph.undirected() ? graph.OutNeighbors(v)
                                                  : graph.InNeighbors(v);
                uint64_t probes = 0;
                for (VertexId u : parents) {
                  ++probes;
                  if (dist[u] == depth) {
                    won.push_back(v);
                    break;
                  }
                }
                traversed.fetch_add(probes, std::memory_order_relaxed);
                return won;
              })));
      discovered = discovered_ds.Collect();
      for (VertexId v : discovered) visited.Set(v);
    }
    // Distances are written on the driver between levels, so the parallel
    // phases above only ever read a stable snapshot.
    std::sort(discovered.begin(), discovered.end());
    uint64_t next_degree = 0;
    for (VertexId v : discovered) {
      out.vertex_values[v] = depth + 1;
      next_degree += graph.OutDegree(v);
    }
    unexplored_degree -= next_degree;
    frontier_degree = next_degree;
    frontier = std::move(discovered);
    ++depth;
  }
  out.traversed_edges = traversed.load();
  return out;
}

Result<AlgorithmOutput> RunBfs(Context* ctx, const Graph& graph,
                               const BfsParams& params) {
  if (params.strategy == BfsStrategy::kTopDown) {
    return RunBfsPregelJoins(ctx, graph, params);
  }
  return RunBfsDirOpt(ctx, graph, params);
}

// ------------------------------------------------------------------ CONN

struct ConnValue {
  int64_t label = 0;
  bool changed = false;
};

Result<AlgorithmOutput> RunConn(Context* ctx, const Graph& graph) {
  // For directed graphs weak connectivity needs both directions; the
  // property graph's edge table carries out-edges, so feed it the
  // symmetrized graph when necessary.
  const Graph* g = &graph;
  Graph symmetric;
  if (!graph.undirected()) {
    GLY_ASSIGN_OR_RETURN(symmetric,
                         GraphBuilder::Undirected(graph.ToEdgeList()));
    g = &symmetric;
  }
  GLY_ASSIGN_OR_RETURN(
      auto pg, PropertyGraph<ConnValue>::FromGraph(
                   ctx, *g, [](VertexId v) {
                     return ConnValue{static_cast<int64_t>(v), true};
                   }));
  GLY_ASSIGN_OR_RETURN(
      PregelJoinStats pstats,
      pg.template Pregel<int64_t>(
          /*max_iterations=*/g->num_vertices() + 1,
          [](const ConnValue& src, VertexId, VertexId)
              -> std::optional<int64_t> {
            if (src.changed) return src.label;
            return std::nullopt;
          },
          [](const int64_t& a, const int64_t& b) { return std::min(a, b); },
          [](uint64_t, const ConnValue& old, const int64_t* m)
              -> std::pair<ConnValue, bool> {
            if (m != nullptr && *m < old.label) {
              return {ConnValue{*m, true}, true};
            }
            return {ConnValue{old.label, false}, false};
          }));
  AlgorithmOutput out;
  out.vertex_values.assign(graph.num_vertices(), 0);
  for (const auto& [k, v] : pg.vertices().Collect()) {
    out.vertex_values[k] = v.label;
  }
  out.traversed_edges = pstats.messages;
  return out;
}

// -------------------------------------------------------------------- CD

struct CdFlowValue {
  int64_t label = 0;
  double score = 1.0;
};

Result<AlgorithmOutput> RunCd(Context* ctx, const Graph& graph,
                              const CdParams& params) {
  using Msg = std::vector<LabelScore>;
  GLY_ASSIGN_OR_RETURN(
      auto pg, PropertyGraph<CdFlowValue>::FromGraph(
                   ctx, graph, [](VertexId v) {
                     return CdFlowValue{static_cast<int64_t>(v), 1.0};
                   }));
  double hop = params.hop_attenuation;
  GLY_ASSIGN_OR_RETURN(
      PregelJoinStats pstats,
      pg.template Pregel<Msg>(
          params.max_iterations,
          [](const CdFlowValue& src, VertexId, VertexId)
              -> std::optional<Msg> {
            return Msg{LabelScore{src.label, src.score}};
          },
          [](const Msg& a, const Msg& b) {
            Msg merged = a;
            merged.insert(merged.end(), b.begin(), b.end());
            return merged;
          },
          [hop](uint64_t, const CdFlowValue& old, const Msg* m)
              -> std::pair<CdFlowValue, bool> {
            if (m == nullptr || m->empty()) return {old, true};
            LabelScore adopted = CdAdoptLabel(*m, hop);
            return {CdFlowValue{adopted.label, adopted.score}, true};
          }));
  AlgorithmOutput out;
  out.vertex_values.assign(graph.num_vertices(), 0);
  for (const auto& [k, v] : pg.vertices().Collect()) {
    out.vertex_values[k] = v.label;
  }
  out.traversed_edges = pstats.messages;
  return out;
}

// -------------------------------------------------------------------- PR

struct PrFlowValue {
  double rank = 0.0;
  uint32_t out_degree = 0;
};

Result<AlgorithmOutput> RunPr(Context* ctx, const Graph& graph,
                              const PrParams& params) {
  if (graph.num_vertices() == 0) return AlgorithmOutput{};
  const double n = static_cast<double>(graph.num_vertices());
  const double base = (1.0 - params.damping) / n;
  const double damping = params.damping;
  GLY_ASSIGN_OR_RETURN(
      auto pg, PropertyGraph<PrFlowValue>::FromGraph(
                   ctx, graph, [&graph, n](VertexId v) {
                     return PrFlowValue{
                         1.0 / n,
                         static_cast<uint32_t>(graph.OutDegree(v))};
                   }));
  GLY_ASSIGN_OR_RETURN(
      PregelJoinStats pstats,
      pg.template Pregel<double>(
          params.iterations,
          [](const PrFlowValue& src, VertexId, VertexId)
              -> std::optional<double> {
            if (src.out_degree == 0) return std::nullopt;  // unreachable: no edges
            return src.rank / static_cast<double>(src.out_degree);
          },
          [](const double& a, const double& b) { return a + b; },
          [base, damping](uint64_t, const PrFlowValue& old, const double* m)
              -> std::pair<PrFlowValue, bool> {
            double sum = m != nullptr ? *m : 0.0;
            return {PrFlowValue{base + damping * sum, old.out_degree}, true};
          }));
  AlgorithmOutput out;
  out.vertex_scores.assign(graph.num_vertices(), 0.0);
  for (const auto& [k, v] : pg.vertices().Collect()) {
    out.vertex_scores[k] = v.rank;
  }
  out.traversed_edges = pstats.messages;
  return out;
}

// ----------------------------------------------------------------- STATS

struct LccValue {
  std::vector<VertexId> adjacency;  // sorted
  double lcc = 0.0;
};

Result<AlgorithmOutput> RunStatsAlgorithm(Context* ctx, const Graph& graph) {
  using Msg = std::vector<std::vector<VertexId>>;
  GLY_ASSIGN_OR_RETURN(
      auto pg,
      PropertyGraph<LccValue>::FromGraph(ctx, graph, [&graph](VertexId v) {
        auto nbrs = graph.OutNeighbors(v);
        return LccValue{{nbrs.begin(), nbrs.end()}, 0.0};
      }));
  GLY_ASSIGN_OR_RETURN(
      PregelJoinStats pstats,
      pg.template Pregel<Msg>(
          /*max_iterations=*/1,
          [](const LccValue& src, VertexId, VertexId) -> std::optional<Msg> {
            if (src.adjacency.size() < 2) return std::nullopt;
            return Msg{src.adjacency};
          },
          [](const Msg& a, const Msg& b) {
            Msg merged = a;
            merged.insert(merged.end(), b.begin(), b.end());
            return merged;
          },
          [](uint64_t, const LccValue& old, const Msg* m)
              -> std::pair<LccValue, bool> {
            LccValue next = old;
            uint64_t deg = old.adjacency.size();
            if (m != nullptr && deg >= 2) {
              uint64_t links = 0;
              for (const auto& their : *m) {
                size_t a = 0;
                size_t b = 0;
                while (a < their.size() && b < old.adjacency.size()) {
                  if (their[a] < old.adjacency[b]) {
                    ++a;
                  } else if (their[a] > old.adjacency[b]) {
                    ++b;
                  } else {
                    ++links;
                    ++a;
                    ++b;
                  }
                }
              }
              next.lcc = static_cast<double>(links) /
                         (static_cast<double>(deg) *
                          static_cast<double>(deg - 1));
            }
            return {next, false};
          }));
  (void)pstats;
  AlgorithmOutput out;
  out.stats.num_vertices = graph.num_vertices();
  out.stats.num_edges = graph.num_edges();
  double sum = 0.0;
  for (const auto& [k, v] : pg.vertices().Collect()) sum += v.lcc;
  out.stats.mean_local_clustering =
      graph.num_vertices() == 0
          ? 0.0
          : sum / static_cast<double>(graph.num_vertices());
  out.traversed_edges = graph.num_adjacency_entries();
  return out;
}

// ------------------------------------------------------------------- EVO

Result<AlgorithmOutput> RunEvo(Context* ctx, const Graph& graph,
                               const EvoParams& params) {
  std::vector<uint32_t> fires(params.num_new_vertices);
  for (uint32_t i = 0; i < params.num_new_vertices; ++i) fires[i] = i;
  GLY_ASSIGN_OR_RETURN(Dataset<uint32_t> fire_ds, ctx->Parallelize(fires));
  GLY_ASSIGN_OR_RETURN(
      Dataset<Edge> edges_ds,
      (ctx->template FlatMap<Edge>(fire_ds, [&graph, &params](uint32_t fire) {
        VertexId ambassador = ForestFireAmbassador(graph, params, fire);
        std::vector<VertexId> burned =
            ForestFireBurn(graph, ambassador, params, fire);
        std::vector<Edge> out;
        out.reserve(burned.size());
        VertexId nv = graph.num_vertices() + fire;
        for (VertexId b : burned) out.push_back(Edge{nv, b});
        return out;
      })));
  AlgorithmOutput out;
  std::vector<Edge> edges = edges_ds.Collect();
  std::sort(edges.begin(), edges.end());
  for (const Edge& e : edges) out.new_edges.Add(e.src, e.dst);
  out.new_edges.EnsureVertices(graph.num_vertices() + params.num_new_vertices);
  out.traversed_edges = edges.size();
  return out;
}

}  // namespace

Result<AlgorithmOutput> RunAlgorithm(const ContextConfig& config,
                                     const Graph& graph, AlgorithmKind kind,
                                     const AlgorithmParams& params,
                                     ContextStats* stats_out) {
  // Install the harness cancellation token (if any): every operator funnels
  // through Context::Materialize, which polls it.
  ContextConfig run_config = config;
  if (params.cancel != nullptr && run_config.cancel == nullptr) {
    run_config.cancel = params.cancel;
  }
  Context ctx(run_config);
  Result<AlgorithmOutput> result = Status::Internal("unreached");
  switch (kind) {
    case AlgorithmKind::kStats:
      result = RunStatsAlgorithm(&ctx, graph);
      break;
    case AlgorithmKind::kBfs:
      result = RunBfs(&ctx, graph, params.bfs);
      break;
    case AlgorithmKind::kConn:
      result = RunConn(&ctx, graph);
      break;
    case AlgorithmKind::kCd:
      result = RunCd(&ctx, graph, params.cd);
      break;
    case AlgorithmKind::kEvo:
      result = RunEvo(&ctx, graph, params.evo);
      break;
    case AlgorithmKind::kPr:
      result = RunPr(&ctx, graph, params.pr);
      break;
  }
  if (stats_out != nullptr) *stats_out = ctx.stats();
  return result;
}

}  // namespace gly::dataflow
