// GraphX-like property graph and pregel-by-joins on the dataflow engine.
//
// Mirrors GraphX's structure (Xin et al., GRADES 2013): a property graph is
// a pair of datasets — vertices (id, value) and edges (src, dst) — and
// iterative algorithms are expressed with the Pregel operator implemented
// as joins: messages = edges ⋈ vertices, new vertices = vertices ⋈ messages.
// Every iteration materializes new immutable datasets; `lineage_depth`
// previous vertex generations are kept alive, as Spark's lineage does
// before checkpointing.

#pragma once

#include <deque>

#include "dataflow/dataset.h"
#include "graph/graph.h"
#include "ref/algorithms.h"

namespace gly::dataflow {

/// Per-run statistics of a pregel-by-joins execution.
struct PregelJoinStats {
  uint32_t iterations = 0;
  uint64_t messages = 0;
};

/// GraphX-like property graph over the dataflow engine.
template <typename V>
class PropertyGraph {
 public:
  /// Builds vertex and edge datasets from a CSR graph. The edge dataset is
  /// partitioned by source vertex so the messages join is co-partitioned
  /// with the vertex dataset.
  template <typename InitFn>
  static Result<PropertyGraph> FromGraph(Context* ctx, const Graph& graph,
                                         InitFn init) {
    PropertyGraph pg;
    pg.ctx_ = ctx;
    pg.num_vertices_ = graph.num_vertices();
    std::vector<std::pair<uint64_t, V>> vertices;
    vertices.reserve(graph.num_vertices());
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      vertices.emplace_back(v, init(v));
    }
    GLY_ASSIGN_OR_RETURN(pg.vertices_,
                         ctx->ParallelizeByKey(std::move(vertices)));
    // Edge triplet source table: (src, dst) keyed by src.
    std::vector<std::pair<uint64_t, VertexId>> edges;
    edges.reserve(graph.num_adjacency_entries());
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      for (VertexId w : graph.OutNeighbors(v)) {
        edges.emplace_back(v, w);
      }
    }
    GLY_ASSIGN_OR_RETURN(pg.edges_, ctx->ParallelizeByKey(std::move(edges)));
    return pg;
  }

  const Dataset<std::pair<uint64_t, V>>& vertices() const { return vertices_; }

  VertexId num_vertices() const { return num_vertices_; }

  /// The GraphX Pregel operator.
  ///
  /// * `send(src_value, src, dst)` returns an optional message (M) routed
  ///   to dst — evaluated for every edge whose source is in the active set;
  /// * `combine(a, b)` merges messages to the same destination;
  /// * `apply(v, old_value, msg_or_null)` produces the new vertex value and
  ///   flags whether the vertex is active next round.
  // send/combine/apply stay template parameters (not std::function): the
  // send callback runs once per edge per iteration — the join plan's
  // innermost loop — and must inline into the partition scan.
  template <typename M, typename SendFn, typename CombineFn, typename ApplyFn>
  Result<PregelJoinStats> Pregel(uint32_t max_iterations, SendFn send,
                                 CombineFn combine, ApplyFn apply,
                                 uint32_t lineage_depth = 2) {
    PregelJoinStats stats;
    std::deque<Dataset<std::pair<uint64_t, V>>> lineage;  // kept alive

    for (uint32_t iter = 0; iter < max_iterations; ++iter) {
      // messages = edges ⋈ vertices (co-partitioned on src), then shuffled
      // to destination partitions and combined.
      using KM = std::pair<uint64_t, M>;
      GLY_ASSIGN_OR_RETURN(
          Dataset<KM> raw_messages,
          (ctx_->template LeftJoin<KM>(
              edges_, vertices_,
              [&send](uint64_t src, const VertexId& dst, const V* value) {
                if (value != nullptr) {
                  std::optional<M> m =
                      send(*value, static_cast<VertexId>(src), dst);
                  if (m.has_value()) {
                    return KM{dst, std::move(*m)};
                  }
                }
                // Tombstone: key out of vertex range is dropped below.
                return KM{~0ULL, M{}};
              })));
      GLY_ASSIGN_OR_RETURN(
          raw_messages,
          ctx_->Filter(raw_messages, [this](const KM& kv) {
            return kv.first < num_vertices_;
          }));
      GLY_ASSIGN_OR_RETURN(Dataset<KM> messages,
                           ctx_->ReduceByKey(raw_messages, combine));
      uint64_t message_count = messages.Count();
      stats.messages += message_count;
      ++stats.iterations;

      // newVertices = vertices ⋈ messages (full outer walk of the vertex
      // dataset — the GraphX cost signature).
      using KV = std::pair<uint64_t, V>;
      std::atomic<uint64_t> active{0};
      GLY_ASSIGN_OR_RETURN(
          Dataset<KV> new_vertices,
          (ctx_->template LeftJoin<KV>(
              vertices_, messages,
              [&apply, &active](uint64_t k, const V& old_value, const M* m) {
                auto [value, is_active] = apply(k, old_value, m);
                if (is_active) active.fetch_add(1, std::memory_order_relaxed);
                return KV{k, std::move(value)};
              })));

      // Lineage: previous generations stay materialized (and budget-charged)
      // until they age out.
      lineage.push_back(vertices_);
      while (lineage.size() > lineage_depth) lineage.pop_front();
      vertices_ = std::move(new_vertices);

      if (active.load() == 0 && message_count == 0) break;
    }
    return stats;
  }

 private:
  Context* ctx_ = nullptr;
  VertexId num_vertices_ = 0;
  Dataset<std::pair<uint64_t, V>> vertices_;
  Dataset<std::pair<uint64_t, VertexId>> edges_;
};

}  // namespace gly::dataflow
