// Dataflow engine — the "GraphX on Spark" substrate.
//
// Models the RDD execution style the paper benchmarks through GraphX:
// immutable, partitioned, eagerly materialized datasets transformed by
// map/filter/flatMap and shuffled by reduceByKey/join. GraphX expresses
// Pregel iterations as *joins over immutable collections*: every superstep
// materializes a fresh message dataset and a fresh full vertex dataset
// (graph.h builds on these primitives).
//
// Two properties of this execution model — both mechanistic here, not
// tuned constants — explain GraphX's Figure 4 behaviour:
//   * every iteration touches and re-materializes the FULL vertex dataset
//     (the join walks all vertices even when few are active), so the
//     long converging tail of CONN costs ~O(V) per superstep where Giraph
//     pays ~O(active) — the ~3x CONN slowdown;
//   * immutability + lineage keep the previous generation(s) of vertex
//     datasets alive, so peak memory is a multiple of Giraph's — with an
//     equal per-platform budget, dataflow exhausts memory on workloads the
//     BSP engine completes (the paper's failed GraphX runs, "surprising
//     considering they both use the Java virtual machine").
//
// Every materialized dataset charges its bytes against the context's
// MemoryBudget and releases them when the dataset is dropped.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/cancellation.h"
#include "common/fault_injection.h"
#include "common/macros.h"
#include "common/memory_budget.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/stopwatch.h"
#include "common/threadpool.h"
#include "common/perf_counters.h"
#include "common/trace.h"

namespace gly::dataflow {

/// Engine configuration (one simulated Spark deployment).
struct ContextConfig {
  uint32_t num_partitions = 8;
  uint32_t num_threads = 0;  ///< 0 = hardware concurrency
  uint64_t memory_budget_bytes = 0;

  /// Bytes-per-element overhead factor modelling JVM object headers +
  /// RDD bookkeeping (Spark's in-memory tuples are far larger than their
  /// payload). Applied to every materialized dataset.
  double object_overhead_factor = 2.0;

  /// Simulated shuffle bandwidth (MiB/s, 0 = free).
  double shuffle_mib_per_s = 0.0;

  /// Simulated materialization throughput (MiB/s, 0 = free): the cost of
  /// allocating, populating, and GC-tracking fresh immutable collections
  /// every transformation — the JVM object churn that separates GraphX
  /// from Giraph in practice even though "they both use the Java virtual
  /// machine". Charged on every dataset the engine materializes.
  double materialize_mib_per_s = 0.0;

  /// Cooperative cancellation (null = unsupervised). Every transformation
  /// funnels through Context::Materialize, so one poll there bounds a
  /// cancelled lineage to a single operator's work; Shuffle additionally
  /// polls per source partition. Materialization bumps the token's
  /// progress heartbeat.
  CancelToken* cancel = nullptr;

  /// Hot-path memory model (DESIGN.md §13): recycle partition storage
  /// through per-type vector pools when datasets drop, shuffle through a
  /// stable two-pass radix partition step, and build join/reduce tables in
  /// epoch-tagged flat arrays instead of per-operator hash maps. Results
  /// are identical either way; `false` restores the legacy per-record
  /// heap path (kept for the `hotpath` parity suite).
  bool pooled_buffers = true;
};

/// Accumulated execution statistics.
struct ContextStats {
  uint64_t datasets_materialized = 0;
  uint64_t elements_materialized = 0;
  uint64_t bytes_materialized = 0;
  uint64_t shuffle_bytes = 0;
  uint64_t join_probe_rows = 0;
  double shuffle_seconds = 0.0;
  double materialize_seconds = 0.0;
  uint64_t peak_memory_bytes = 0;
  /// Shuffle output bytes that landed in recycled pooled buffers (pooled
  /// mode only; 0 on the legacy path).
  uint64_t shuffle_bytes_pooled = 0;
  /// Peak bytes parked in the context's recycled-buffer pools.
  uint64_t pooled_bytes_peak = 0;
};

class Context;

namespace detail {

/// Thread-safe wrapper around one per-element-type vector pool. Payload
/// destructors release partitions from whatever thread drops the last
/// dataset reference, hence the mutex (taken per partition, not per
/// record). Shared ownership: payloads hold a shared_ptr so buffers can
/// outlive the Context that spawned them.
template <typename T>
struct TypedPool {
  explicit TypedPool(arena::PoolGroupStats* stats) : pool(stats) {}
  std::vector<T> Acquire() {
    std::lock_guard<std::mutex> lock(mu);
    return pool.Acquire();
  }
  void Release(std::vector<T>&& v) {
    std::lock_guard<std::mutex> lock(mu);
    pool.Release(std::move(v));
  }
  std::mutex mu;
  arena::VectorPool<T> pool;
};

}  // namespace detail

/// An immutable, partitioned, materialized collection.
template <typename T>
class Dataset {
 public:
  Dataset() = default;

  size_t num_partitions() const {
    return data_ ? data_->partitions.size() : 0;
  }
  const std::vector<T>& partition(size_t i) const {
    return data_->partitions[i];
  }

  uint64_t Count() const {
    if (!data_) return 0;
    uint64_t n = 0;
    for (const auto& p : data_->partitions) n += p.size();
    return n;
  }

  /// Copies all elements out (tests, result collection).
  std::vector<T> Collect() const {
    std::vector<T> out;
    if (!data_) return out;
    for (const auto& p : data_->partitions) {
      out.insert(out.end(), p.begin(), p.end());
    }
    return out;
  }

  bool valid() const { return data_ != nullptr; }

 private:
  friend class Context;

  struct Payload {
    std::vector<std::vector<T>> partitions;
    ScopedCharge charge;  // released when the last reference drops
    /// Origin pool (null on the legacy path): partition storage is
    /// recycled here when the last reference drops, so the next operator
    /// materializes into warm buffers instead of the allocator.
    std::shared_ptr<detail::TypedPool<T>> pool;
    ~Payload() {
      if (pool != nullptr) {
        for (auto& p : partitions) pool->Release(std::move(p));
      }
    }
  };

  explicit Dataset(std::shared_ptr<Payload> data) : data_(std::move(data)) {}

  std::shared_ptr<Payload> data_;
};

/// The dataflow execution context (driver + executors).
class Context {
 public:
  explicit Context(ContextConfig config)
      : config_(config),
        budget_(config.memory_budget_bytes),
        pool_(config.num_threads != 0 ? config.num_threads
                                      : HardwareThreads()) {}

  const ContextConfig& config() const { return config_; }
  const ContextStats& stats() const {
    const_cast<ContextStats&>(stats_).peak_memory_bytes = budget_.peak();
    const_cast<ContextStats&>(stats_).pooled_bytes_peak = pool_stats_.peak();
    return stats_;
  }
  MemoryBudget& budget() { return budget_; }
  ThreadPool& pool() { return pool_; }

  /// Creates a dataset from a vector, hash-spread across partitions.
  template <typename T>
  Result<Dataset<T>> Parallelize(const std::vector<T>& elements) {
    const uint32_t parts = config_.num_partitions;
    auto partitions = AcquirePartitions<T>(parts);
    if (config_.pooled_buffers) {
      // Exact-size scatter: element i lands at partitions[i % parts] slot
      // i / parts — identical content and order to the append loop, with
      // one resize per partition instead of per-element growth.
      for (uint32_t p = 0; p < parts; ++p) {
        partitions[p].resize(elements.size() / parts +
                             (p < elements.size() % parts ? 1 : 0));
      }
      for (size_t i = 0; i < elements.size(); ++i) {
        partitions[i % parts][i / parts] = elements[i];
      }
    } else {
      for (size_t i = 0; i < elements.size(); ++i) {
        partitions[i % parts].push_back(elements[i]);
      }
    }
    return Materialize(std::move(partitions));
  }

  /// Creates a keyed dataset partitioned by hash(key) — the co-partitioning
  /// contract joins rely on.
  template <typename V>
  Result<Dataset<std::pair<uint64_t, V>>> ParallelizeByKey(
      std::vector<std::pair<uint64_t, V>> elements) {
    using KV = std::pair<uint64_t, V>;
    const uint32_t parts = config_.num_partitions;
    auto partitions = AcquirePartitions<KV>(parts);
    if (config_.pooled_buffers) {
      // Radix scatter (count, resize exact, place): stable within each
      // partition, so the result matches the per-record append loop
      // bit-for-bit without its reallocation churn.
      auto& targets = target_scratch_;
      targets.clear();
      targets.reserve(elements.size());
      std::vector<size_t> counts(parts, 0);
      for (const KV& kv : elements) {
        uint32_t t = PartitionOf(kv.first);
        targets.push_back(t);
        ++counts[t];
      }
      std::vector<size_t> cursor(parts, 0);
      for (uint32_t p = 0; p < parts; ++p) partitions[p].resize(counts[p]);
      for (size_t i = 0; i < elements.size(); ++i) {
        uint32_t t = targets[i];
        partitions[t][cursor[t]++] = std::move(elements[i]);
      }
    } else {
      for (auto& kv : elements) {
        partitions[PartitionOf(kv.first)].push_back(std::move(kv));
      }
    }
    return Materialize(std::move(partitions));
  }

  /// map: T -> U, narrow (no shuffle).
  template <typename U, typename T, typename Fn>
  Result<Dataset<U>> Map(const Dataset<T>& in, Fn fn) {
    auto partitions = AcquirePartitions<U>(in.num_partitions());
    pool_.ParallelFor(in.num_partitions(), [&](size_t p) {
      const auto& src = in.partition(p);
      auto& dst = partitions[p];
      dst.reserve(src.size());
      for (const T& t : src) dst.push_back(fn(t));
    });
    return Materialize(std::move(partitions));
  }

  /// flatMap: T -> vector<U>, narrow.
  template <typename U, typename T, typename Fn>
  Result<Dataset<U>> FlatMap(const Dataset<T>& in, Fn fn) {
    auto partitions = AcquirePartitions<U>(in.num_partitions());
    pool_.ParallelFor(in.num_partitions(), [&](size_t p) {
      const auto& src = in.partition(p);
      auto& dst = partitions[p];
      for (const T& t : src) {
        for (U& u : fn(t)) dst.push_back(std::move(u));
      }
    });
    return Materialize(std::move(partitions));
  }

  /// filter, narrow.
  template <typename T, typename Fn>
  Result<Dataset<T>> Filter(const Dataset<T>& in, Fn pred) {
    auto partitions = AcquirePartitions<T>(in.num_partitions());
    pool_.ParallelFor(in.num_partitions(), [&](size_t p) {
      for (const T& t : in.partition(p)) {
        if (pred(t)) partitions[p].push_back(t);
      }
    });
    return Materialize(std::move(partitions));
  }

  /// reduceByKey: shuffles (key, V) pairs to hash partitions, then folds
  /// per-key with `fn`. Wide dependency: bytes cross the simulated network.
  template <typename V, typename Fn>
  Result<Dataset<std::pair<uint64_t, V>>> ReduceByKey(
      const Dataset<std::pair<uint64_t, V>>& in, Fn fn) {
    using KV = std::pair<uint64_t, V>;
    GLY_ASSIGN_OR_RETURN(Dataset<KV> shuffled, Shuffle(in));
    auto partitions = AcquirePartitions<KV>(shuffled.num_partitions());
    if (config_.pooled_buffers) {
      // Flat fold: per-key accumulation through a recycled epoch-tagged
      // dense array when the key domain is small enough (FlatDomainOk),
      // falling back to the hash map otherwise. Per-key values fold in
      // the same encounter order as the map path, so they are
      // bit-identical; only the emission order of distinct keys within a
      // partition differs (first-encounter vs hash-iteration), which no
      // consumer observes — results are keyed, never order-addressed.
      auto accs = AccumulatorsFor<V>(shuffled.num_partitions());
      pool_.ParallelFor(shuffled.num_partitions(), [&](size_t p) {
        const auto& src = shuffled.partition(p);
        uint64_t max_key = 0;
        for (const KV& kv : src) max_key = std::max(max_key, kv.first);
        auto& dst = partitions[p];
        if (!src.empty() && FlatDomainOk(max_key, src.size())) {
          auto& acc = (*accs)[p];
          acc.EnsureDomain(max_key + 1);
          acc.NewEpoch();
          for (const KV& kv : src) {
            if (acc.touched(kv.first)) {
              V& a = acc.slot(kv.first);
              a = fn(a, kv.second);
            } else {
              acc.mark(kv.first) = kv.second;
            }
          }
          dst.reserve(acc.touched_keys().size());
          for (size_t k : acc.touched_keys()) {
            dst.emplace_back(k, std::move(acc.slot(k)));
          }
        } else {
          std::unordered_map<uint64_t, V> acc;
          for (const KV& kv : src) {
            auto [it, inserted] = acc.try_emplace(kv.first, kv.second);
            if (!inserted) it->second = fn(it->second, kv.second);
          }
          dst.assign(acc.begin(), acc.end());
        }
      });
    } else {
      pool_.ParallelFor(shuffled.num_partitions(), [&](size_t p) {
        std::unordered_map<uint64_t, V> acc;
        for (const KV& kv : shuffled.partition(p)) {
          auto [it, inserted] = acc.try_emplace(kv.first, kv.second);
          if (!inserted) it->second = fn(it->second, kv.second);
        }
        partitions[p].assign(acc.begin(), acc.end());
      });
    }
    return Materialize(std::move(partitions));
  }

  /// Left outer join of two co-partitioned keyed datasets:
  /// for every (k, a) in `left`, calls fn(k, a, b_or_null) where b points
  /// to the matching right value (first match) or nullptr.
  template <typename U, typename A, typename B, typename Fn>
  Result<Dataset<U>> LeftJoin(const Dataset<std::pair<uint64_t, A>>& left,
                              const Dataset<std::pair<uint64_t, B>>& right,
                              Fn fn) {
    if (left.num_partitions() != right.num_partitions()) {
      return Status::InvalidArgument("join requires co-partitioned inputs");
    }
    trace::TraceSpan join_span("dataflow.join", "dataflow");
    perf::SpanCounters join_counters(&join_span);
    auto partitions = AcquirePartitions<U>(left.num_partitions());
    std::atomic<uint64_t> probes{0};
    // Pooled build tables: one recycled epoch-tagged [key -> value*]
    // array per partition replaces the per-call hash map when the build
    // side's key domain is small enough; first match wins either way.
    auto accs = config_.pooled_buffers
                    ? AccumulatorsFor<const void*>(left.num_partitions())
                    : nullptr;
    pool_.ParallelFor(left.num_partitions(), [&](size_t p) {
      const auto& build_src = right.partition(p);
      uint64_t max_key = 0;
      for (const auto& kv : build_src) max_key = std::max(max_key, kv.first);
      uint64_t local_probes = 0;
      auto& dst = partitions[p];
      dst.reserve(left.partition(p).size());
      if (accs != nullptr && FlatDomainOk(max_key, build_src.size())) {
        auto& build = (*accs)[p];
        build.EnsureDomain(max_key + 1);
        build.NewEpoch();
        for (const auto& kv : build_src) {
          if (!build.touched(kv.first)) build.mark(kv.first) = &kv.second;
        }
        for (const auto& kv : left.partition(p)) {
          ++local_probes;
          const B* match =
              kv.first <= max_key && build.touched(kv.first)
                  ? static_cast<const B*>(build.slot(kv.first))
                  : nullptr;
          dst.push_back(fn(kv.first, kv.second, match));
        }
      } else {
        std::unordered_map<uint64_t, const B*> build;
        build.reserve(build_src.size());
        for (const auto& kv : build_src) {
          build.emplace(kv.first, &kv.second);
        }
        for (const auto& kv : left.partition(p)) {
          ++local_probes;
          auto it = build.find(kv.first);
          dst.push_back(fn(kv.first, kv.second,
                           it == build.end() ? nullptr : it->second));
        }
      }
      probes.fetch_add(local_probes, std::memory_order_relaxed);
    });
    stats_.join_probe_rows += probes.load();
    join_span.SetAttribute("probe_rows", probes.load());
    metrics::AddCounter("dataflow.join_probe_rows", probes.load());
    return Materialize(std::move(partitions));
  }

  /// Re-partitions a keyed dataset by key hash (the shuffle primitive).
  template <typename V>
  Result<Dataset<std::pair<uint64_t, V>>> Shuffle(
      const Dataset<std::pair<uint64_t, V>>& in) {
    using KV = std::pair<uint64_t, V>;
    trace::TraceSpan shuffle_span("dataflow.shuffle", "dataflow");
    perf::SpanCounters shuffle_counters(&shuffle_span);
    // Injected shuffle failure: a lost map output / fetch failure aborts
    // the stage (Spark without stage retries).
    GLY_FAULT_POINT("dataflow.shuffle");
    const uint32_t parts = config_.num_partitions;
    auto partitions = AcquirePartitions<KV>(parts);
    uint64_t moved_bytes = 0;
    if (config_.pooled_buffers) {
      // Radix partition step, pass 1: compute each record's target (cached
      // in a recycled scratch array) and per-target occupancy, plus the
      // cross-partition bytes the simulated network must move.
      auto& targets = target_scratch_;
      targets.clear();
      std::vector<size_t> counts(parts, 0);
      for (size_t p = 0; p < in.num_partitions(); ++p) {
        GLY_RETURN_NOT_OK(CheckCancel(config_.cancel));
        for (const KV& kv : in.partition(p)) {
          uint32_t target = PartitionOf(kv.first);
          if (target != p) moved_bytes += sizeof(KV);
          targets.push_back(target);
          ++counts[target];
        }
      }
      // Pass 2: resize each output partition exactly once and scatter in
      // source order — stable within each target partition, so join and
      // fold order downstream are unchanged from the append path.
      for (uint32_t t = 0; t < parts; ++t) partitions[t].resize(counts[t]);
      std::vector<size_t> cursor(parts, 0);
      size_t i = 0;
      uint64_t pooled_bytes = 0;
      for (size_t p = 0; p < in.num_partitions(); ++p) {
        for (const KV& kv : in.partition(p)) {
          uint32_t target = targets[i++];
          partitions[target][cursor[target]++] = kv;
        }
      }
      pooled_bytes = static_cast<uint64_t>(targets.size()) * sizeof(KV);
      stats_.shuffle_bytes_pooled += pooled_bytes;
      shuffle_span.SetAttribute("pooled_bytes", pooled_bytes);
      metrics::AddCounter("dataflow.shuffle_bytes_pooled", pooled_bytes);
    } else {
      for (size_t p = 0; p < in.num_partitions(); ++p) {
        GLY_RETURN_NOT_OK(CheckCancel(config_.cancel));
        for (const KV& kv : in.partition(p)) {
          uint32_t target = PartitionOf(kv.first);
          if (target != p) moved_bytes += sizeof(KV);
          partitions[target].push_back(kv);
        }
      }
    }
    stats_.shuffle_bytes += moved_bytes;
    shuffle_span.SetAttribute("moved_bytes", moved_bytes);
    metrics::AddCounter("dataflow.shuffle_bytes", moved_bytes);
    if (config_.shuffle_mib_per_s > 0.0 && moved_bytes > 0) {
      double s = static_cast<double>(moved_bytes) /
                 (config_.shuffle_mib_per_s * (1 << 20));
      stats_.shuffle_seconds += s;
      std::this_thread::sleep_for(std::chrono::duration<double>(s));
    }
    return Materialize(std::move(partitions));
  }

  uint32_t PartitionOf(uint64_t key) const {
    uint64_t h = (key + 1) * 0x9E3779B97F4A7C15ULL;
    return static_cast<uint32_t>((h >> 33) % config_.num_partitions);
  }

 private:
  /// Flat-table admission check (pooled join/reduce): a dense
  /// [0, max_key] array is used only when the key domain is within a
  /// small multiple of the partition's population (hash partitioning
  /// spreads a dense id space across partitions, hence the 16x slack)
  /// and below a hard cap, so a sparse 64-bit key space can never
  /// provoke a giant allocation. Otherwise the hash-map path runs.
  static bool FlatDomainOk(uint64_t max_key, size_t elements) {
    constexpr uint64_t kFlatDomainCap = 1ull << 24;
    return max_key < kFlatDomainCap &&
           max_key + 1 <= 16 * static_cast<uint64_t>(elements) + 1024;
  }

  /// The per-element-type vector pool (created on first use). Driver-side
  /// only; the returned TypedPool itself is thread-safe.
  template <typename T>
  std::shared_ptr<detail::TypedPool<T>> PoolFor() {
    auto [it, inserted] =
        pools_.try_emplace(std::type_index(typeid(T)), nullptr);
    if (inserted) {
      it->second = std::make_shared<detail::TypedPool<T>>(&pool_stats_);
    }
    return std::static_pointer_cast<detail::TypedPool<T>>(it->second);
  }

  /// `n` partition buffers, recycled from the pool in pooled mode.
  template <typename T>
  std::vector<std::vector<T>> AcquirePartitions(size_t n) {
    std::vector<std::vector<T>> partitions(n);
    if (config_.pooled_buffers) {
      auto pool = PoolFor<T>();
      for (auto& p : partitions) p = pool->Acquire();
    }
    return partitions;
  }

  /// Per-partition epoch-tagged accumulators for slot type V (join build
  /// tables, reduce folds), recycled across operators. Acquired on the
  /// driver thread; each parallel partition body touches only its own
  /// accumulator.
  template <typename V>
  std::shared_ptr<std::vector<arena::FlatAccumulator<V>>> AccumulatorsFor(
      size_t n) {
    auto [it, inserted] =
        accumulators_.try_emplace(std::type_index(typeid(V)), nullptr);
    if (inserted) {
      it->second = std::make_shared<std::vector<arena::FlatAccumulator<V>>>();
    }
    auto accs = std::static_pointer_cast<std::vector<arena::FlatAccumulator<V>>>(
        it->second);
    if (accs->size() < n) accs->resize(n);
    return accs;
  }

  /// Charges the budget for a new dataset and wraps it. All transformations
  /// funnel through here, so an exceeded budget aborts the computation with
  /// ResourceExhausted at the exact materialization that overflowed.
  template <typename T>
  Result<Dataset<T>> Materialize(std::vector<std::vector<T>> partitions) {
    // Every transformation funnels through here — one span per operator in
    // the lineage, and one site to model an executor loss at any point.
    trace::TraceSpan mat_span("dataflow.materialize", "dataflow");
    perf::SpanCounters mat_counters(&mat_span);
    GLY_FAULT_POINT("dataflow.materialize");
    GLY_RETURN_NOT_OK(CheckCancel(config_.cancel));
    uint64_t elements = 0;
    for (const auto& p : partitions) elements += p.size();
    uint64_t bytes = static_cast<uint64_t>(
        static_cast<double>(elements * sizeof(T)) *
        config_.object_overhead_factor);
    mat_span.SetAttribute("elements", elements);
    mat_span.SetAttribute("bytes", bytes);
    GLY_RETURN_NOT_OK(budget_.Charge(bytes, "dataset materialization"));
    ++stats_.datasets_materialized;
    stats_.elements_materialized += elements;
    stats_.bytes_materialized += bytes;
    metrics::AddCounter("dataflow.datasets_materialized");
    metrics::AddCounter("dataflow.bytes_materialized", bytes);
    if (config_.materialize_mib_per_s > 0.0 && bytes > 0) {
      double s = static_cast<double>(bytes) /
                 (config_.materialize_mib_per_s * (1 << 20));
      stats_.materialize_seconds += s;
      std::this_thread::sleep_for(std::chrono::duration<double>(s));
    }
    auto payload = std::make_shared<typename Dataset<T>::Payload>();
    payload->partitions = std::move(partitions);
    payload->charge = ScopedCharge(&budget_, bytes);
    if (config_.pooled_buffers) payload->pool = PoolFor<T>();
    if (config_.cancel != nullptr) config_.cancel->Heartbeat();
    return Dataset<T>(std::move(payload));
  }

  ContextConfig config_;
  MemoryBudget budget_;
  ThreadPool pool_;
  ContextStats stats_;
  // Hot-path memory model state (DESIGN.md §13): per-type partition-buffer
  // pools, per-type flat accumulators, the shuffle radix scratch, and the
  // pool byte telemetry. All recycle across operators within this
  // context's lifetime and unwind with it.
  std::map<std::type_index, std::shared_ptr<void>> pools_;
  std::map<std::type_index, std::shared_ptr<void>> accumulators_;
  std::vector<uint32_t> target_scratch_;
  arena::PoolGroupStats pool_stats_;
};

}  // namespace gly::dataflow
