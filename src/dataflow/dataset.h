// Dataflow engine — the "GraphX on Spark" substrate.
//
// Models the RDD execution style the paper benchmarks through GraphX:
// immutable, partitioned, eagerly materialized datasets transformed by
// map/filter/flatMap and shuffled by reduceByKey/join. GraphX expresses
// Pregel iterations as *joins over immutable collections*: every superstep
// materializes a fresh message dataset and a fresh full vertex dataset
// (graph.h builds on these primitives).
//
// Two properties of this execution model — both mechanistic here, not
// tuned constants — explain GraphX's Figure 4 behaviour:
//   * every iteration touches and re-materializes the FULL vertex dataset
//     (the join walks all vertices even when few are active), so the
//     long converging tail of CONN costs ~O(V) per superstep where Giraph
//     pays ~O(active) — the ~3x CONN slowdown;
//   * immutability + lineage keep the previous generation(s) of vertex
//     datasets alive, so peak memory is a multiple of Giraph's — with an
//     equal per-platform budget, dataflow exhausts memory on workloads the
//     BSP engine completes (the paper's failed GraphX runs, "surprising
//     considering they both use the Java virtual machine").
//
// Every materialized dataset charges its bytes against the context's
// MemoryBudget and releases them when the dataset is dropped.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/fault_injection.h"
#include "common/macros.h"
#include "common/memory_budget.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/stopwatch.h"
#include "common/threadpool.h"
#include "common/trace.h"

namespace gly::dataflow {

/// Engine configuration (one simulated Spark deployment).
struct ContextConfig {
  uint32_t num_partitions = 8;
  uint32_t num_threads = 0;  ///< 0 = hardware concurrency
  uint64_t memory_budget_bytes = 0;

  /// Bytes-per-element overhead factor modelling JVM object headers +
  /// RDD bookkeeping (Spark's in-memory tuples are far larger than their
  /// payload). Applied to every materialized dataset.
  double object_overhead_factor = 2.0;

  /// Simulated shuffle bandwidth (MiB/s, 0 = free).
  double shuffle_mib_per_s = 0.0;

  /// Simulated materialization throughput (MiB/s, 0 = free): the cost of
  /// allocating, populating, and GC-tracking fresh immutable collections
  /// every transformation — the JVM object churn that separates GraphX
  /// from Giraph in practice even though "they both use the Java virtual
  /// machine". Charged on every dataset the engine materializes.
  double materialize_mib_per_s = 0.0;

  /// Cooperative cancellation (null = unsupervised). Every transformation
  /// funnels through Context::Materialize, so one poll there bounds a
  /// cancelled lineage to a single operator's work; Shuffle additionally
  /// polls per source partition. Materialization bumps the token's
  /// progress heartbeat.
  CancelToken* cancel = nullptr;
};

/// Accumulated execution statistics.
struct ContextStats {
  uint64_t datasets_materialized = 0;
  uint64_t elements_materialized = 0;
  uint64_t bytes_materialized = 0;
  uint64_t shuffle_bytes = 0;
  uint64_t join_probe_rows = 0;
  double shuffle_seconds = 0.0;
  double materialize_seconds = 0.0;
  uint64_t peak_memory_bytes = 0;
};

class Context;

/// An immutable, partitioned, materialized collection.
template <typename T>
class Dataset {
 public:
  Dataset() = default;

  size_t num_partitions() const {
    return data_ ? data_->partitions.size() : 0;
  }
  const std::vector<T>& partition(size_t i) const {
    return data_->partitions[i];
  }

  uint64_t Count() const {
    if (!data_) return 0;
    uint64_t n = 0;
    for (const auto& p : data_->partitions) n += p.size();
    return n;
  }

  /// Copies all elements out (tests, result collection).
  std::vector<T> Collect() const {
    std::vector<T> out;
    if (!data_) return out;
    for (const auto& p : data_->partitions) {
      out.insert(out.end(), p.begin(), p.end());
    }
    return out;
  }

  bool valid() const { return data_ != nullptr; }

 private:
  friend class Context;

  struct Payload {
    std::vector<std::vector<T>> partitions;
    ScopedCharge charge;  // released when the last reference drops
  };

  explicit Dataset(std::shared_ptr<Payload> data) : data_(std::move(data)) {}

  std::shared_ptr<Payload> data_;
};

/// The dataflow execution context (driver + executors).
class Context {
 public:
  explicit Context(ContextConfig config)
      : config_(config),
        budget_(config.memory_budget_bytes),
        pool_(config.num_threads != 0 ? config.num_threads
                                      : HardwareThreads()) {}

  const ContextConfig& config() const { return config_; }
  const ContextStats& stats() const {
    const_cast<ContextStats&>(stats_).peak_memory_bytes = budget_.peak();
    return stats_;
  }
  MemoryBudget& budget() { return budget_; }
  ThreadPool& pool() { return pool_; }

  /// Creates a dataset from a vector, hash-spread across partitions.
  template <typename T>
  Result<Dataset<T>> Parallelize(const std::vector<T>& elements) {
    const uint32_t parts = config_.num_partitions;
    std::vector<std::vector<T>> partitions(parts);
    for (size_t i = 0; i < elements.size(); ++i) {
      partitions[i % parts].push_back(elements[i]);
    }
    return Materialize(std::move(partitions));
  }

  /// Creates a keyed dataset partitioned by hash(key) — the co-partitioning
  /// contract joins rely on.
  template <typename V>
  Result<Dataset<std::pair<uint64_t, V>>> ParallelizeByKey(
      std::vector<std::pair<uint64_t, V>> elements) {
    const uint32_t parts = config_.num_partitions;
    std::vector<std::vector<std::pair<uint64_t, V>>> partitions(parts);
    for (auto& kv : elements) {
      partitions[PartitionOf(kv.first)].push_back(std::move(kv));
    }
    return Materialize(std::move(partitions));
  }

  /// map: T -> U, narrow (no shuffle).
  template <typename U, typename T, typename Fn>
  Result<Dataset<U>> Map(const Dataset<T>& in, Fn fn) {
    std::vector<std::vector<U>> partitions(in.num_partitions());
    pool_.ParallelFor(in.num_partitions(), [&](size_t p) {
      const auto& src = in.partition(p);
      auto& dst = partitions[p];
      dst.reserve(src.size());
      for (const T& t : src) dst.push_back(fn(t));
    });
    return Materialize(std::move(partitions));
  }

  /// flatMap: T -> vector<U>, narrow.
  template <typename U, typename T, typename Fn>
  Result<Dataset<U>> FlatMap(const Dataset<T>& in, Fn fn) {
    std::vector<std::vector<U>> partitions(in.num_partitions());
    pool_.ParallelFor(in.num_partitions(), [&](size_t p) {
      const auto& src = in.partition(p);
      auto& dst = partitions[p];
      for (const T& t : src) {
        for (U& u : fn(t)) dst.push_back(std::move(u));
      }
    });
    return Materialize(std::move(partitions));
  }

  /// filter, narrow.
  template <typename T, typename Fn>
  Result<Dataset<T>> Filter(const Dataset<T>& in, Fn pred) {
    std::vector<std::vector<T>> partitions(in.num_partitions());
    pool_.ParallelFor(in.num_partitions(), [&](size_t p) {
      for (const T& t : in.partition(p)) {
        if (pred(t)) partitions[p].push_back(t);
      }
    });
    return Materialize(std::move(partitions));
  }

  /// reduceByKey: shuffles (key, V) pairs to hash partitions, then folds
  /// per-key with `fn`. Wide dependency: bytes cross the simulated network.
  template <typename V, typename Fn>
  Result<Dataset<std::pair<uint64_t, V>>> ReduceByKey(
      const Dataset<std::pair<uint64_t, V>>& in, Fn fn) {
    using KV = std::pair<uint64_t, V>;
    GLY_ASSIGN_OR_RETURN(Dataset<KV> shuffled, Shuffle(in));
    std::vector<std::vector<KV>> partitions(shuffled.num_partitions());
    pool_.ParallelFor(shuffled.num_partitions(), [&](size_t p) {
      std::unordered_map<uint64_t, V> acc;
      for (const KV& kv : shuffled.partition(p)) {
        auto [it, inserted] = acc.try_emplace(kv.first, kv.second);
        if (!inserted) it->second = fn(it->second, kv.second);
      }
      partitions[p].assign(acc.begin(), acc.end());
    });
    return Materialize(std::move(partitions));
  }

  /// Left outer join of two co-partitioned keyed datasets:
  /// for every (k, a) in `left`, calls fn(k, a, b_or_null) where b points
  /// to the matching right value (first match) or nullptr.
  template <typename U, typename A, typename B, typename Fn>
  Result<Dataset<U>> LeftJoin(const Dataset<std::pair<uint64_t, A>>& left,
                              const Dataset<std::pair<uint64_t, B>>& right,
                              Fn fn) {
    if (left.num_partitions() != right.num_partitions()) {
      return Status::InvalidArgument("join requires co-partitioned inputs");
    }
    trace::TraceSpan join_span("dataflow.join", "dataflow");
    std::vector<std::vector<U>> partitions(left.num_partitions());
    std::atomic<uint64_t> probes{0};
    pool_.ParallelFor(left.num_partitions(), [&](size_t p) {
      std::unordered_map<uint64_t, const B*> build;
      build.reserve(right.partition(p).size());
      for (const auto& kv : right.partition(p)) {
        build.emplace(kv.first, &kv.second);
      }
      uint64_t local_probes = 0;
      auto& dst = partitions[p];
      dst.reserve(left.partition(p).size());
      for (const auto& kv : left.partition(p)) {
        ++local_probes;
        auto it = build.find(kv.first);
        dst.push_back(
            fn(kv.first, kv.second, it == build.end() ? nullptr : it->second));
      }
      probes.fetch_add(local_probes, std::memory_order_relaxed);
    });
    stats_.join_probe_rows += probes.load();
    join_span.SetAttribute("probe_rows", probes.load());
    metrics::AddCounter("dataflow.join_probe_rows", probes.load());
    return Materialize(std::move(partitions));
  }

  /// Re-partitions a keyed dataset by key hash (the shuffle primitive).
  template <typename V>
  Result<Dataset<std::pair<uint64_t, V>>> Shuffle(
      const Dataset<std::pair<uint64_t, V>>& in) {
    using KV = std::pair<uint64_t, V>;
    trace::TraceSpan shuffle_span("dataflow.shuffle", "dataflow");
    // Injected shuffle failure: a lost map output / fetch failure aborts
    // the stage (Spark without stage retries).
    GLY_FAULT_POINT("dataflow.shuffle");
    const uint32_t parts = config_.num_partitions;
    std::vector<std::vector<KV>> partitions(parts);
    uint64_t moved_bytes = 0;
    for (size_t p = 0; p < in.num_partitions(); ++p) {
      GLY_RETURN_NOT_OK(CheckCancel(config_.cancel));
      for (const KV& kv : in.partition(p)) {
        uint32_t target = PartitionOf(kv.first);
        if (target != p) moved_bytes += sizeof(KV);
        partitions[target].push_back(kv);
      }
    }
    stats_.shuffle_bytes += moved_bytes;
    shuffle_span.SetAttribute("moved_bytes", moved_bytes);
    metrics::AddCounter("dataflow.shuffle_bytes", moved_bytes);
    if (config_.shuffle_mib_per_s > 0.0 && moved_bytes > 0) {
      double s = static_cast<double>(moved_bytes) /
                 (config_.shuffle_mib_per_s * (1 << 20));
      stats_.shuffle_seconds += s;
      std::this_thread::sleep_for(std::chrono::duration<double>(s));
    }
    return Materialize(std::move(partitions));
  }

  uint32_t PartitionOf(uint64_t key) const {
    uint64_t h = (key + 1) * 0x9E3779B97F4A7C15ULL;
    return static_cast<uint32_t>((h >> 33) % config_.num_partitions);
  }

 private:
  /// Charges the budget for a new dataset and wraps it. All transformations
  /// funnel through here, so an exceeded budget aborts the computation with
  /// ResourceExhausted at the exact materialization that overflowed.
  template <typename T>
  Result<Dataset<T>> Materialize(std::vector<std::vector<T>> partitions) {
    // Every transformation funnels through here — one span per operator in
    // the lineage, and one site to model an executor loss at any point.
    trace::TraceSpan mat_span("dataflow.materialize", "dataflow");
    GLY_FAULT_POINT("dataflow.materialize");
    GLY_RETURN_NOT_OK(CheckCancel(config_.cancel));
    uint64_t elements = 0;
    for (const auto& p : partitions) elements += p.size();
    uint64_t bytes = static_cast<uint64_t>(
        static_cast<double>(elements * sizeof(T)) *
        config_.object_overhead_factor);
    mat_span.SetAttribute("elements", elements);
    mat_span.SetAttribute("bytes", bytes);
    GLY_RETURN_NOT_OK(budget_.Charge(bytes, "dataset materialization"));
    ++stats_.datasets_materialized;
    stats_.elements_materialized += elements;
    stats_.bytes_materialized += bytes;
    metrics::AddCounter("dataflow.datasets_materialized");
    metrics::AddCounter("dataflow.bytes_materialized", bytes);
    if (config_.materialize_mib_per_s > 0.0 && bytes > 0) {
      double s = static_cast<double>(bytes) /
                 (config_.materialize_mib_per_s * (1 << 20));
      stats_.materialize_seconds += s;
      std::this_thread::sleep_for(std::chrono::duration<double>(s));
    }
    auto payload = std::make_shared<typename Dataset<T>::Payload>();
    payload->partitions = std::move(partitions);
    payload->charge = ScopedCharge(&budget_, bytes);
    if (config_.cancel != nullptr) config_.cancel->Heartbeat();
    return Dataset<T>(std::move(payload));
  }

  ContextConfig config_;
  MemoryBudget budget_;
  ThreadPool pool_;
  ContextStats stats_;
};

}  // namespace gly::dataflow
