// The five Graphalytics algorithms on the dataflow (GraphX-like) engine.

#pragma once

#include "dataflow/dataset.h"
#include "ref/algorithms.h"

namespace gly::dataflow {

/// Runs `kind` on `graph` in a fresh Context built from `config`.
/// `stats_out` (optional) receives the engine statistics of the run.
Result<AlgorithmOutput> RunAlgorithm(const ContextConfig& config,
                                     const Graph& graph, AlgorithmKind kind,
                                     const AlgorithmParams& params,
                                     ContextStats* stats_out = nullptr);

}  // namespace gly::dataflow
