#include "analysis/degree_distribution.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace gly {

double DegreeModel::LogLikelihood(const Histogram& observed) const {
  double ll = 0.0;
  for (const auto& [k, count] : observed.Items()) {
    if (k == 0) continue;  // models condition on degree >= 1
    double p = Pmf(k);
    if (p <= 0.0) p = 1e-300;
    ll += static_cast<double>(count) * std::log(p);
  }
  return ll;
}

// ---------------------------------------------------------------- Zeta

ZetaModel::ZetaModel(double alpha, uint64_t support_max)
    : alpha_(alpha), support_max_(support_max) {
  // Truncated normalizer: sum_{k=1}^{support_max} k^-alpha. Sum the head
  // exactly and approximate the tail with the integral bound.
  double norm = 0.0;
  const uint64_t head = std::min<uint64_t>(support_max_, 100000);
  for (uint64_t k = 1; k <= head; ++k) norm += std::pow(k, -alpha_);
  if (support_max_ > head && alpha_ > 1.0) {
    // Integral of x^-alpha from head to support_max.
    norm += (std::pow(static_cast<double>(head), 1.0 - alpha_) -
             std::pow(static_cast<double>(support_max_), 1.0 - alpha_)) /
            (alpha_ - 1.0);
  }
  norm_ = norm;
}

std::string ZetaModel::ToString() const {
  return StringPrintf("zeta(alpha=%.3f)", alpha_);
}

double ZetaModel::Pmf(uint64_t k) const {
  if (k < 1 || k > support_max_) return 0.0;
  return std::pow(static_cast<double>(k), -alpha_) / norm_;
}

ZetaModel ZetaModel::Fit(const Histogram& observed) {
  // Golden-section maximization of the log-likelihood over alpha.
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double lo = 1.01;
  double hi = 6.0;
  auto ll = [&observed](double alpha) {
    return ZetaModel(alpha).LogLikelihood(observed);
  };
  double x1 = hi - phi * (hi - lo);
  double x2 = lo + phi * (hi - lo);
  double f1 = ll(x1);
  double f2 = ll(x2);
  for (int iter = 0; iter < 60 && hi - lo > 1e-5; ++iter) {
    if (f1 < f2) {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + phi * (hi - lo);
      f2 = ll(x2);
    } else {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - phi * (hi - lo);
      f1 = ll(x1);
    }
  }
  return ZetaModel((lo + hi) / 2.0);
}

// ------------------------------------------------------------ Geometric

GeometricModel::GeometricModel(double p) : p_(std::clamp(p, 1e-12, 1.0)) {}

std::string GeometricModel::ToString() const {
  return StringPrintf("geometric(p=%.4f)", p_);
}

double GeometricModel::Pmf(uint64_t k) const {
  if (k < 1) return 0.0;
  return std::pow(1.0 - p_, static_cast<double>(k - 1)) * p_;
}

GeometricModel GeometricModel::Fit(const Histogram& observed) {
  double mean = observed.Mean();
  if (mean < 1.0) mean = 1.0;
  return GeometricModel(1.0 / mean);
}

// -------------------------------------------------------------- Weibull

WeibullModel::WeibullModel(double shape, double scale)
    : shape_(std::max(shape, 1e-6)), scale_(std::max(scale, 1e-6)) {}

std::string WeibullModel::ToString() const {
  return StringPrintf("weibull(shape=%.3f, scale=%.3f)", shape_, scale_);
}

double WeibullModel::Pmf(uint64_t k) const {
  if (k < 1) return 0.0;
  auto survival = [this](double x) {
    return x <= 0.0 ? 1.0 : std::exp(-std::pow(x / scale_, shape_));
  };
  return survival(static_cast<double>(k - 1)) - survival(static_cast<double>(k));
}

WeibullModel WeibullModel::Fit(const Histogram& observed) {
  // Coordinate descent on (shape, scale) maximizing log-likelihood.
  double shape = 1.0;
  double scale = std::max(observed.Mean(), 1.0);
  auto ll = [&observed](double sh, double sc) {
    return WeibullModel(sh, sc).LogLikelihood(observed);
  };
  double best = ll(shape, scale);
  double step_sh = 0.5;
  double step_sc = scale / 2.0;
  for (int iter = 0; iter < 200; ++iter) {
    bool improved = false;
    for (double dsh : {step_sh, -step_sh}) {
      double cand = shape + dsh;
      if (cand <= 0.05) continue;
      double v = ll(cand, scale);
      if (v > best) {
        best = v;
        shape = cand;
        improved = true;
      }
    }
    for (double dsc : {step_sc, -step_sc}) {
      double cand = scale + dsc;
      if (cand <= 0.05) continue;
      double v = ll(shape, cand);
      if (v > best) {
        best = v;
        scale = cand;
        improved = true;
      }
    }
    if (!improved) {
      step_sh /= 2.0;
      step_sc /= 2.0;
      if (step_sh < 1e-4 && step_sc < 1e-4) break;
    }
  }
  return WeibullModel(shape, scale);
}

// -------------------------------------------------------------- Poisson

PoissonModel::PoissonModel(double lambda) : lambda_(std::max(lambda, 1e-9)) {}

std::string PoissonModel::ToString() const {
  return StringPrintf("poisson(lambda=%.3f)", lambda_);
}

double PoissonModel::Pmf(uint64_t k) const {
  if (k < 1) return 0.0;
  // log pmf = -lambda + k log lambda - lgamma(k+1), then condition on k>=1.
  double logp = -lambda_ + static_cast<double>(k) * std::log(lambda_) -
                std::lgamma(static_cast<double>(k) + 1.0);
  double zero_mass = std::exp(-lambda_);
  double denominator = 1.0 - zero_mass;
  if (denominator <= 0.0) return 0.0;
  return std::exp(logp) / denominator;
}

PoissonModel PoissonModel::Fit(const Histogram& observed) {
  // Zero-truncated Poisson MLE: solve mean = lambda / (1 - e^-lambda).
  double mean = std::max(observed.Mean(), 1.0 + 1e-9);
  double lambda = mean;  // starting guess
  for (int iter = 0; iter < 100; ++iter) {
    double em = std::exp(-lambda);
    double f = lambda / (1.0 - em) - mean;
    double df = (1.0 - em - lambda * em) / ((1.0 - em) * (1.0 - em));
    if (std::abs(df) < 1e-15) break;
    double next = lambda - f / df;
    if (next <= 0.0) next = lambda / 2.0;
    if (std::abs(next - lambda) < 1e-12) {
      lambda = next;
      break;
    }
    lambda = next;
  }
  return PoissonModel(lambda);
}

// ------------------------------------------------------- goodness of fit

double ChiSquareStatistic(const Histogram& observed, const DegreeModel& model,
                          double* dof_out) {
  const double n = static_cast<double>(observed.total_count());
  auto items = observed.Items();
  // Build contiguous bins over [1, max], pooling from the right so each
  // pooled bin has expected count >= 5.
  uint64_t max_k = observed.Max();
  double chi = 0.0;
  double pooled_obs = 0.0;
  double pooled_exp = 0.0;
  int bins = 0;
  size_t idx = 0;
  for (uint64_t k = 1; k <= max_k; ++k) {
    double obs = 0.0;
    while (idx < items.size() && items[idx].first < k) ++idx;
    if (idx < items.size() && items[idx].first == k) {
      obs = static_cast<double>(items[idx].second);
    }
    double exp = n * model.Pmf(k);
    pooled_obs += obs;
    pooled_exp += exp;
    if (pooled_exp >= 5.0) {
      chi += (pooled_obs - pooled_exp) * (pooled_obs - pooled_exp) / pooled_exp;
      ++bins;
      pooled_obs = 0.0;
      pooled_exp = 0.0;
    }
  }
  if (pooled_exp > 0.0) {
    chi += (pooled_obs - pooled_exp) * (pooled_obs - pooled_exp) / pooled_exp;
    ++bins;
  }
  if (dof_out != nullptr) *dof_out = std::max(1, bins - 1);
  return chi;
}

double KsStatistic(const Histogram& observed, const DegreeModel& model) {
  const double n = static_cast<double>(observed.total_count());
  if (n == 0.0) return 0.0;
  uint64_t max_k = observed.Max();
  auto items = observed.Items();
  double emp_cdf = 0.0;
  double model_cdf = 0.0;
  double ks = 0.0;
  size_t idx = 0;
  for (uint64_t k = 1; k <= max_k; ++k) {
    while (idx < items.size() && items[idx].first < k) ++idx;
    if (idx < items.size() && items[idx].first == k) {
      emp_cdf += static_cast<double>(items[idx].second) / n;
    }
    model_cdf += model.Pmf(k);
    ks = std::max(ks, std::abs(emp_cdf - model_cdf));
  }
  return ks;
}

std::vector<ModelFit> FitAllModels(const Histogram& observed) {
  std::vector<std::unique_ptr<DegreeModel>> models;
  models.push_back(std::make_unique<ZetaModel>(ZetaModel::Fit(observed)));
  models.push_back(
      std::make_unique<GeometricModel>(GeometricModel::Fit(observed)));
  models.push_back(std::make_unique<WeibullModel>(WeibullModel::Fit(observed)));
  models.push_back(std::make_unique<PoissonModel>(PoissonModel::Fit(observed)));

  const double params[] = {1, 1, 2, 1};  // zeta, geometric, weibull, poisson
  std::vector<ModelFit> fits;
  for (size_t i = 0; i < models.size(); ++i) {
    const auto& m = models[i];
    ModelFit fit;
    fit.model_description = m->ToString();
    fit.log_likelihood = m->LogLikelihood(observed);
    fit.aic = 2.0 * params[i] - 2.0 * fit.log_likelihood;
    fit.chi_square = ChiSquareStatistic(observed, *m, &fit.chi_square_dof);
    fit.ks_statistic = KsStatistic(observed, *m);
    fits.push_back(fit);
  }
  std::sort(fits.begin(), fits.end(), [](const ModelFit& a, const ModelFit& b) {
    return a.aic < b.aic;
  });
  return fits;
}

}  // namespace gly
