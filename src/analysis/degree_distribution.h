// Degree-distribution models and fitting.
//
// The paper (Section 2.2) fits real degree distributions with "several
// existing models: Zeta, Geometric, Weibull and Poisson" and observes that
// the best-fitting model varies per graph. This module provides those four
// models with maximum-likelihood fitting and goodness-of-fit tests, used by
// the Table 1 analysis and the Figure 1 reproduction.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/result.h"

namespace gly {

/// A parametric discrete distribution over degrees {1, 2, ...}.
class DegreeModel {
 public:
  virtual ~DegreeModel() = default;

  /// Model family name ("zeta", "geometric", "weibull", "poisson").
  virtual std::string name() const = 0;

  /// Human-readable parameterization, e.g. "zeta(alpha=1.70)".
  virtual std::string ToString() const = 0;

  /// P(X = k) for k >= 1 (models are conditioned on X >= 1).
  virtual double Pmf(uint64_t k) const = 0;

  /// Log-likelihood of an observed degree histogram.
  double LogLikelihood(const Histogram& observed) const;
};

/// Zeta (discrete power law): P(k) ∝ k^-alpha, alpha > 1.
class ZetaModel final : public DegreeModel {
 public:
  explicit ZetaModel(double alpha, uint64_t support_max = 1u << 20);
  std::string name() const override { return "zeta"; }
  std::string ToString() const override;
  double Pmf(uint64_t k) const override;
  double alpha() const { return alpha_; }

  /// MLE fit by golden-section search on alpha in (1, 6].
  static ZetaModel Fit(const Histogram& observed);

 private:
  double alpha_;
  uint64_t support_max_;
  double norm_;  // truncated zeta(alpha) normalizer
};

/// Geometric on {1, 2, ...}: P(k) = (1-p)^(k-1) p.
class GeometricModel final : public DegreeModel {
 public:
  explicit GeometricModel(double p);
  std::string name() const override { return "geometric"; }
  std::string ToString() const override;
  double Pmf(uint64_t k) const override;
  double p() const { return p_; }

  /// MLE: p = 1 / mean.
  static GeometricModel Fit(const Histogram& observed);

 private:
  double p_;
};

/// Discretized Weibull on {1, 2, ...}: P(k) = S(k-1) - S(k),
/// S(x) = exp(-(x/lambda)^shape).
class WeibullModel final : public DegreeModel {
 public:
  WeibullModel(double shape, double scale);
  std::string name() const override { return "weibull"; }
  std::string ToString() const override;
  double Pmf(uint64_t k) const override;
  double shape() const { return shape_; }
  double scale() const { return scale_; }

  /// Approximate MLE via coordinate search.
  static WeibullModel Fit(const Histogram& observed);

 private:
  double shape_;
  double scale_;
};

/// Poisson conditioned on k >= 1: P(k) = e^-λ λ^k / k! / (1 - e^-λ).
class PoissonModel final : public DegreeModel {
 public:
  explicit PoissonModel(double lambda);
  std::string name() const override { return "poisson"; }
  std::string ToString() const override;
  double Pmf(uint64_t k) const override;
  double lambda() const { return lambda_; }

  /// MLE for the zero-truncated Poisson via Newton iteration on the mean.
  static PoissonModel Fit(const Histogram& observed);

 private:
  double lambda_;
};

/// Result of fitting one model family to observed degrees.
struct ModelFit {
  std::string model_description;
  double log_likelihood = 0.0;
  double aic = 0.0;                 // 2*params - 2*LL (lower is better)
  double chi_square = 0.0;          // Pearson chi-square over pooled bins
  double chi_square_dof = 0.0;      // degrees of freedom used
  double ks_statistic = 0.0;        // max CDF deviation
};

/// Fits all four families and returns them sorted by ascending AIC (best
/// fit first) — the per-graph model selection the paper describes. AIC
/// rather than raw likelihood, so the 2-parameter Weibull only wins when it
/// genuinely explains the data better than the 1-parameter families.
std::vector<ModelFit> FitAllModels(const Histogram& observed);

/// Pearson chi-square statistic between observed counts and model
/// expectations, pooling tail bins so every expected count >= 5.
/// `dof_out` receives the resulting degrees of freedom.
double ChiSquareStatistic(const Histogram& observed, const DegreeModel& model,
                          double* dof_out);

/// Kolmogorov–Smirnov statistic between the empirical degree CDF and the
/// model CDF.
double KsStatistic(const Histogram& observed, const DegreeModel& model);

}  // namespace gly
