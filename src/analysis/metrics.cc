#include "analysis/metrics.h"

#include <algorithm>
#include <atomic>
#include <cmath>

namespace gly {

namespace {

// Counts, for each vertex v, the edges among v's neighbors (== 2 * triangles
// through v for undirected graphs, since each neighbor pair is examined
// once). Neighbor lists are sorted, so we intersect with a merge walk.
uint64_t EdgesAmongNeighbors(const Graph& graph, VertexId v) {
  auto nbrs = graph.OutNeighbors(v);
  uint64_t links = 0;
  for (size_t i = 0; i < nbrs.size(); ++i) {
    VertexId u = nbrs[i];
    if (u == v) continue;
    // For each pair (u, w) of neighbors with u < w, check edge u-w.
    auto u_nbrs = graph.OutNeighbors(u);
    // Intersect u_nbrs with nbrs[i+1..]: both sorted.
    size_t a = 0;
    size_t b = i + 1;
    while (a < u_nbrs.size() && b < nbrs.size()) {
      if (u_nbrs[a] < nbrs[b]) {
        ++a;
      } else if (u_nbrs[a] > nbrs[b]) {
        ++b;
      } else {
        ++links;
        ++a;
        ++b;
      }
    }
  }
  return links;
}

}  // namespace

std::vector<double> LocalClusteringCoefficients(const Graph& graph,
                                                ThreadPool* pool) {
  const VertexId n = graph.num_vertices();
  std::vector<double> cc(n, 0.0);
  auto compute = [&graph, &cc](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      VertexId v = static_cast<VertexId>(i);
      uint64_t deg = graph.Degree(v);
      if (deg < 2) continue;
      uint64_t links = EdgesAmongNeighbors(graph, v);
      cc[i] = 2.0 * static_cast<double>(links) /
              (static_cast<double>(deg) * static_cast<double>(deg - 1));
    }
  };
  if (pool != nullptr) {
    pool->ParallelForChunked(n, compute);
  } else {
    compute(0, n);
  }
  return cc;
}

double AverageClusteringCoefficient(const Graph& graph, ThreadPool* pool) {
  if (graph.num_vertices() == 0) return 0.0;
  auto cc = LocalClusteringCoefficients(graph, pool);
  double sum = 0.0;
  for (double c : cc) sum += c;
  return sum / static_cast<double>(cc.size());
}

uint64_t CountTriangles(const Graph& graph, ThreadPool* pool) {
  const VertexId n = graph.num_vertices();
  std::atomic<uint64_t> total{0};
  auto compute = [&graph, &total](size_t begin, size_t end) {
    uint64_t local = 0;
    for (size_t i = begin; i < end; ++i) {
      // Each triangle {u,v,w} is counted at every vertex as one
      // neighbor-pair link, so sum(links) == 3 * triangles... but
      // EdgesAmongNeighbors counts unordered pairs, giving exactly one per
      // triangle per apex; divide by 3 at the end.
      local += EdgesAmongNeighbors(graph, static_cast<VertexId>(i));
    }
    total.fetch_add(local, std::memory_order_relaxed);
  };
  if (pool != nullptr) {
    pool->ParallelForChunked(n, compute);
  } else {
    compute(0, n);
  }
  return total.load() / 3;
}

uint64_t CountWedges(const Graph& graph) {
  uint64_t wedges = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    uint64_t d = graph.Degree(v);
    wedges += d * (d - 1) / 2;
  }
  return wedges;
}

double GlobalClusteringCoefficient(const Graph& graph, ThreadPool* pool) {
  uint64_t wedges = CountWedges(graph);
  if (wedges == 0) return 0.0;
  uint64_t triangles = CountTriangles(graph, pool);
  return 3.0 * static_cast<double>(triangles) / static_cast<double>(wedges);
}

double DegreeAssortativity(const Graph& graph) {
  // Newman's formula over the set of (unordered) edges, using the "remaining
  // degree" convention simplified to plain degrees (standard for empirical
  // assortativity): Pearson correlation of endpoint degrees across edges,
  // with each undirected edge contributing both orientations.
  double m = 0.0;
  double sum_xy = 0.0;
  double sum_x = 0.0;
  double sum_x2 = 0.0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    double dv = static_cast<double>(graph.Degree(v));
    for (VertexId w : graph.OutNeighbors(v)) {
      double dw = static_cast<double>(graph.Degree(w));
      // Each stored arc contributes once; undirected graphs store both
      // orientations, which yields the symmetric sum Newman requires.
      sum_xy += dv * dw;
      sum_x += 0.5 * (dv + dw);
      sum_x2 += 0.5 * (dv * dv + dw * dw);
      m += 1.0;
    }
  }
  if (m < 2.0) return 0.0;
  double num = sum_xy / m - (sum_x / m) * (sum_x / m);
  double den = sum_x2 / m - (sum_x / m) * (sum_x / m);
  if (den <= 0.0) return 0.0;
  return num / den;
}

Histogram DegreeHistogram(const Graph& graph) {
  Histogram h;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    h.Add(graph.Degree(v));
  }
  return h;
}

GraphCharacteristics ComputeCharacteristics(const Graph& graph,
                                            ThreadPool* pool) {
  GraphCharacteristics out;
  out.num_vertices = graph.num_vertices();
  out.num_edges = graph.num_edges();

  // One neighbor-intersection pass serves both clustering metrics: the
  // per-vertex link counts give the local coefficients, and their sum is
  // 3x the triangle count.
  const VertexId n = graph.num_vertices();
  std::vector<uint64_t> links(n, 0);
  auto compute = [&graph, &links](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      links[i] = EdgesAmongNeighbors(graph, static_cast<VertexId>(i));
    }
  };
  if (pool != nullptr) {
    pool->ParallelForChunked(n, compute);
  } else {
    compute(0, n);
  }
  double cc_sum = 0.0;
  uint64_t triangles3 = 0;
  for (VertexId v = 0; v < n; ++v) {
    triangles3 += links[v];
    uint64_t deg = graph.Degree(v);
    if (deg >= 2) {
      cc_sum += 2.0 * static_cast<double>(links[v]) /
                (static_cast<double>(deg) * static_cast<double>(deg - 1));
    }
  }
  out.average_clustering_coefficient =
      n == 0 ? 0.0 : cc_sum / static_cast<double>(n);
  uint64_t wedges = CountWedges(graph);
  out.global_clustering_coefficient =
      wedges == 0 ? 0.0
                  : static_cast<double>(triangles3) /
                        static_cast<double>(wedges);
  out.degree_assortativity = DegreeAssortativity(graph);
  return out;
}

}  // namespace gly
