// Structural graph metrics reported in Table 1 of the paper:
// node/edge counts, global clustering coefficient, average local clustering
// coefficient, and degree assortativity.

#pragma once

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "common/threadpool.h"
#include "graph/graph.h"

namespace gly {

/// The Table 1 characteristics of one graph.
struct GraphCharacteristics {
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  double global_clustering_coefficient = 0.0;  // 3*triangles / wedges
  double average_clustering_coefficient = 0.0; // mean local CC
  double degree_assortativity = 0.0;           // Pearson r over edge endpoints
};

/// Local clustering coefficient of each vertex of an *undirected* graph:
/// (# edges among neighbors) / (deg * (deg-1) / 2); 0 for deg < 2.
/// Runs triangle counting in parallel on `pool` when provided.
std::vector<double> LocalClusteringCoefficients(const Graph& graph,
                                                ThreadPool* pool = nullptr);

/// Mean of LocalClusteringCoefficients.
double AverageClusteringCoefficient(const Graph& graph,
                                    ThreadPool* pool = nullptr);

/// Global (transitivity) clustering coefficient: 3*triangles / wedges.
double GlobalClusteringCoefficient(const Graph& graph,
                                   ThreadPool* pool = nullptr);

/// Pearson degree assortativity over undirected edges (Newman 2002).
/// Returns 0 for graphs with < 2 edges or zero variance.
double DegreeAssortativity(const Graph& graph);

/// Degree histogram (out-degree; full neighborhood degree for undirected).
Histogram DegreeHistogram(const Graph& graph);

/// Computes all Table 1 characteristics in one pass.
GraphCharacteristics ComputeCharacteristics(const Graph& graph,
                                            ThreadPool* pool = nullptr);

/// Exact triangle count (each triangle counted once) for undirected graphs.
uint64_t CountTriangles(const Graph& graph, ThreadPool* pool = nullptr);

/// Number of wedges (paths of length 2): sum over v of C(deg(v), 2).
uint64_t CountWedges(const Graph& graph);

}  // namespace gly
