#include "ref/algorithms.h"

#include <algorithm>
#include <deque>
#include <map>
#include <numeric>

#include "analysis/metrics.h"
#include "common/string_util.h"
#include "graph/frontier.h"

namespace gly {

Result<AlgorithmKind> ParseAlgorithmKind(const std::string& name) {
  std::string lower = ToLower(name);
  if (lower == "stats") return AlgorithmKind::kStats;
  if (lower == "bfs") return AlgorithmKind::kBfs;
  if (lower == "conn") return AlgorithmKind::kConn;
  if (lower == "cd") return AlgorithmKind::kCd;
  if (lower == "evo") return AlgorithmKind::kEvo;
  if (lower == "pr") return AlgorithmKind::kPr;
  return Status::InvalidArgument("unknown algorithm: '" + name + "'");
}

std::string AlgorithmKindName(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kStats: return "STATS";
    case AlgorithmKind::kBfs: return "BFS";
    case AlgorithmKind::kConn: return "CONN";
    case AlgorithmKind::kCd: return "CD";
    case AlgorithmKind::kEvo: return "EVO";
    case AlgorithmKind::kPr: return "PR";
  }
  return "?";
}

Result<BfsStrategy> ParseBfsStrategy(const std::string& name) {
  std::string lower = ToLower(name);
  if (lower == "top_down") return BfsStrategy::kTopDown;
  if (lower == "bottom_up") return BfsStrategy::kBottomUp;
  if (lower == "diropt") return BfsStrategy::kDirectionOptimizing;
  return Status::InvalidArgument("unknown BFS strategy: '" + name + "'");
}

std::string BfsStrategyName(BfsStrategy strategy) {
  switch (strategy) {
    case BfsStrategy::kTopDown: return "top_down";
    case BfsStrategy::kBottomUp: return "bottom_up";
    case BfsStrategy::kDirectionOptimizing: return "diropt";
  }
  return "?";
}

BfsDirectionPolicy::BfsDirectionPolicy(const BfsParams& params,
                                       uint64_t num_vertices)
    : strategy_(params.strategy),
      alpha_(params.alpha > 0 ? params.alpha : 1e-9),
      beta_(params.beta > 0 ? params.beta : 1e-9),
      num_vertices_(num_vertices),
      bottom_up_(params.strategy == BfsStrategy::kBottomUp) {}

bool BfsDirectionPolicy::UseBottomUp(uint64_t frontier_vertices,
                                     uint64_t frontier_degree,
                                     uint64_t unexplored_degree) {
  switch (strategy_) {
    case BfsStrategy::kTopDown: return false;
    case BfsStrategy::kBottomUp: return true;
    case BfsStrategy::kDirectionOptimizing: break;
  }
  if (!bottom_up_) {
    // Growing phase: switch when a top-down step would probe more than
    // 1/alpha of the edges still reachable from undiscovered vertices.
    if (static_cast<double>(frontier_degree) >
        static_cast<double>(unexplored_degree) / alpha_) {
      bottom_up_ = true;
    }
  } else {
    // Shrinking phase: a small frontier makes scanning all unvisited
    // vertices wasteful again.
    if (static_cast<double>(frontier_vertices) <
        static_cast<double>(num_vertices_) / beta_) {
      bottom_up_ = false;
    }
  }
  return bottom_up_;
}

VertexId ForestFireAmbassador(const Graph& graph, const EvoParams& params,
                              uint32_t new_vertex_index) {
  Rng rng(DeriveSeed(params.seed, 0xA0000000ULL + new_vertex_index));
  return static_cast<VertexId>(rng.NextBounded(graph.num_vertices()));
}

std::vector<VertexId> ForestFireBurn(const Graph& graph, VertexId ambassador,
                                     const EvoParams& params,
                                     uint32_t new_vertex_index) {
  return ForestFireBurnWithFetch(
      graph.num_vertices(),
      [&graph](VertexId v) {
        auto span = graph.OutNeighbors(v);
        return std::vector<VertexId>(span.begin(), span.end());
      },
      ambassador, params, new_vertex_index);
}

std::vector<VertexId> ForestFireBurnWithFetch(
    VertexId num_vertices,
    const std::function<std::vector<VertexId>(VertexId)>& fetch_neighbors,
    VertexId ambassador, const EvoParams& params, uint32_t new_vertex_index) {
  std::vector<VertexId> burned{ambassador};
  std::vector<bool> is_burned(num_vertices, false);
  is_burned[ambassador] = true;
  std::vector<VertexId> frontier{ambassador};
  for (uint32_t depth = 0;
       depth < params.max_depth && !frontier.empty() &&
       burned.size() < params.max_burned;
       ++depth) {
    // Deterministic order: ascending vertex id within the frontier.
    std::sort(frontier.begin(), frontier.end());
    std::vector<VertexId> next;
    for (VertexId w : frontier) {
      if (burned.size() >= params.max_burned) break;
      // Fanout x ~ Geometric(1 - p_forward) - 1 (mean p/(1-p)), seeded by
      // (seed, new vertex, depth, w) so any evaluation order agrees.
      Rng rng(DeriveSeed(params.seed,
                         0xB0000000ULL + new_vertex_index * (1ULL << 34) +
                             static_cast<uint64_t>(depth) * (1ULL << 32) + w));
      uint64_t fanout = SampleGeometric(rng, 1.0 - params.p_forward) - 1;
      if (fanout == 0) continue;
      // Select unburned neighbors via a seeded partial Fisher-Yates over the
      // (sorted) neighbor list.
      std::vector<VertexId> nbrs = fetch_neighbors(w);
      uint64_t selected = 0;
      for (uint64_t i = 0; i < nbrs.size() && selected < fanout; ++i) {
        uint64_t j = i + rng.NextBounded(nbrs.size() - i);
        std::swap(nbrs[i], nbrs[j]);
        VertexId cand = nbrs[i];
        if (is_burned[cand]) continue;
        is_burned[cand] = true;
        burned.push_back(cand);
        next.push_back(cand);
        ++selected;
        if (burned.size() >= params.max_burned) break;
      }
    }
    frontier = std::move(next);
  }
  std::sort(burned.begin(), burned.end());
  return burned;
}

LabelScore CdAdoptLabel(const std::vector<LabelScore>& neighbor_labels,
                        double hop_attenuation) {
  // Aggregate neighbor scores per label; adopt the label with the maximum
  // score sum (ties -> smaller label). The adopted label's new score is the
  // maximum contributing score minus the attenuation.
  std::map<int64_t, double> sums;
  std::map<int64_t, double> max_score;
  for (const LabelScore& ls : neighbor_labels) {
    sums[ls.label] += ls.score;
    auto it = max_score.find(ls.label);
    if (it == max_score.end() || ls.score > it->second) {
      max_score[ls.label] = ls.score;
    }
  }
  int64_t best_label = 0;
  double best_sum = -1.0;
  for (const auto& [label, sum] : sums) {
    if (sum > best_sum + 1e-12 ||
        (std::abs(sum - best_sum) <= 1e-12 && label < best_label)) {
      best_sum = sum;
      best_label = label;
    }
  }
  double score = std::max(0.0, max_score[best_label] - hop_attenuation);
  return LabelScore{best_label, score};
}

namespace ref {

AlgorithmOutput Stats(const Graph& graph) {
  AlgorithmOutput out;
  out.stats.num_vertices = graph.num_vertices();
  out.stats.num_edges = graph.num_edges();
  out.stats.mean_local_clustering = AverageClusteringCoefficient(graph);
  // STATS examines every adjacency entry (and neighbor intersections);
  // count the base scan for TEPS accounting.
  out.traversed_edges = graph.num_adjacency_entries();
  return out;
}

AlgorithmOutput Bfs(const Graph& graph, const BfsParams& params) {
  AlgorithmOutput out;
  out.vertex_values.assign(graph.num_vertices(), kUnreachable);
  if (params.source >= graph.num_vertices()) return out;
  std::deque<VertexId> queue{params.source};
  out.vertex_values[params.source] = 0;
  uint64_t traversed = 0;
  while (!queue.empty()) {
    VertexId v = queue.front();
    queue.pop_front();
    int64_t next_dist = out.vertex_values[v] + 1;
    for (VertexId w : graph.OutNeighbors(v)) {
      ++traversed;
      if (out.vertex_values[w] == kUnreachable) {
        out.vertex_values[w] = next_dist;
        queue.push_back(w);
      }
    }
  }
  out.traversed_edges = traversed;
  return out;
}

AlgorithmOutput BfsDirOpt(const Graph& graph, const BfsParams& params) {
  AlgorithmOutput out;
  const VertexId n = graph.num_vertices();
  out.vertex_values.assign(n, kUnreachable);
  if (params.source >= n) return out;

  AtomicBitset visited(n);
  Frontier frontier(n);
  frontier.Add(params.source);
  visited.Set(params.source);
  out.vertex_values[params.source] = 0;

  BfsDirectionPolicy policy(params, n);
  uint64_t frontier_degree = graph.OutDegree(params.source);
  uint64_t unexplored_degree =
      graph.num_adjacency_entries() - frontier_degree;
  uint64_t traversed = 0;
  int64_t depth = 0;
  while (!frontier.empty()) {
    const bool bottom_up = policy.UseBottomUp(frontier.size(),
                                              frontier_degree,
                                              unexplored_degree);
    Frontier next(n, frontier.dense_threshold());
    uint64_t next_degree = 0;
    if (!bottom_up) {
      // Top-down: expand every frontier vertex's out-edges.
      frontier.ForEach([&](VertexId v) {
        for (VertexId w : graph.OutNeighbors(v)) {
          ++traversed;
          if (visited.TestAndSet(w)) {
            out.vertex_values[w] = depth + 1;
            next.Add(w);
            next_degree += graph.OutDegree(w);
          }
        }
      });
    } else {
      // Bottom-up: every undiscovered vertex searches its potential
      // parents (in-neighbors; the full neighborhood when undirected) for
      // one at the current depth, stopping at the first hit — the saved
      // probes on high-degree frontiers are the kernel's payoff.
      next.Densify();
      for (VertexId v = 0; v < n; ++v) {
        if (visited.Test(v)) continue;
        auto parents = graph.undirected() ? graph.OutNeighbors(v)
                                          : graph.InNeighbors(v);
        for (VertexId u : parents) {
          ++traversed;
          if (out.vertex_values[u] == depth) {
            visited.Set(v);
            out.vertex_values[v] = depth + 1;
            next.Add(v);
            next_degree += graph.OutDegree(v);
            break;
          }
        }
      }
    }
    unexplored_degree -= next_degree;
    frontier_degree = next_degree;
    frontier.swap(next);
    ++depth;
  }
  out.traversed_edges = traversed;
  return out;
}

AlgorithmOutput Conn(const Graph& graph) {
  // Label = smallest vertex id in the (weakly) connected component.
  // For directed graphs, connectivity is over the union of in/out edges.
  AlgorithmOutput out;
  const VertexId n = graph.num_vertices();
  out.vertex_values.assign(n, -1);
  uint64_t traversed = 0;
  for (VertexId start = 0; start < n; ++start) {
    if (out.vertex_values[start] != -1) continue;
    std::deque<VertexId> queue{start};
    out.vertex_values[start] = start;
    while (!queue.empty()) {
      VertexId v = queue.front();
      queue.pop_front();
      auto visit = [&](VertexId w) {
        ++traversed;
        if (out.vertex_values[w] == -1) {
          out.vertex_values[w] = start;
          queue.push_back(w);
        }
      };
      for (VertexId w : graph.OutNeighbors(v)) visit(w);
      if (!graph.undirected()) {
        for (VertexId w : graph.InNeighbors(v)) visit(w);
      }
    }
  }
  out.traversed_edges = traversed;
  return out;
}

AlgorithmOutput Cd(const Graph& graph, const CdParams& params) {
  AlgorithmOutput out;
  const VertexId n = graph.num_vertices();
  std::vector<int64_t> labels(n);
  std::vector<double> scores(n, 1.0);
  std::iota(labels.begin(), labels.end(), 0);
  uint64_t traversed = 0;
  std::vector<int64_t> new_labels(n);
  std::vector<double> new_scores(n);
  for (uint32_t iter = 0; iter < params.max_iterations; ++iter) {
    for (VertexId v = 0; v < n; ++v) {
      auto nbrs = graph.OutNeighbors(v);
      if (nbrs.empty()) {
        new_labels[v] = labels[v];
        new_scores[v] = scores[v];
        continue;
      }
      std::vector<LabelScore> incoming;
      incoming.reserve(nbrs.size());
      for (VertexId w : nbrs) {
        ++traversed;
        incoming.push_back(LabelScore{labels[w], scores[w]});
      }
      LabelScore adopted = CdAdoptLabel(incoming, params.hop_attenuation);
      new_labels[v] = adopted.label;
      new_scores[v] = adopted.score;
    }
    labels.swap(new_labels);
    scores.swap(new_scores);
  }
  out.vertex_values = std::move(labels);
  out.traversed_edges = traversed;
  return out;
}

AlgorithmOutput Evo(const Graph& graph, const EvoParams& params) {
  AlgorithmOutput out;
  const VertexId base = graph.num_vertices();
  uint64_t traversed = 0;
  for (uint32_t i = 0; i < params.num_new_vertices; ++i) {
    VertexId ambassador = ForestFireAmbassador(graph, params, i);
    std::vector<VertexId> burned = ForestFireBurn(graph, ambassador, params, i);
    for (VertexId b : burned) {
      out.new_edges.Add(base + i, b);
      ++traversed;
    }
  }
  out.new_edges.EnsureVertices(base + params.num_new_vertices);
  out.traversed_edges = traversed;
  return out;
}

AlgorithmOutput Pr(const Graph& graph, const PrParams& params) {
  AlgorithmOutput out;
  const VertexId n = graph.num_vertices();
  if (n == 0) return out;
  const double base = (1.0 - params.damping) / static_cast<double>(n);
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  uint64_t traversed = 0;
  for (uint32_t iter = 0; iter < params.iterations; ++iter) {
    for (VertexId v = 0; v < n; ++v) {
      double sum = 0.0;
      for (VertexId u : graph.InNeighbors(v)) {
        ++traversed;
        sum += rank[u] / static_cast<double>(graph.OutDegree(u));
      }
      next[v] = base + params.damping * sum;
    }
    rank.swap(next);
  }
  out.vertex_scores = std::move(rank);
  out.traversed_edges = traversed;
  return out;
}

AlgorithmOutput Run(const Graph& graph, AlgorithmKind kind,
                    const AlgorithmParams& params) {
  switch (kind) {
    case AlgorithmKind::kStats: return Stats(graph);
    case AlgorithmKind::kBfs: return Bfs(graph, params.bfs);
    case AlgorithmKind::kConn: return Conn(graph);
    case AlgorithmKind::kCd: return Cd(graph, params.cd);
    case AlgorithmKind::kEvo: return Evo(graph, params.evo);
    case AlgorithmKind::kPr: return Pr(graph, params.pr);
  }
  return AlgorithmOutput{};
}

}  // namespace ref
}  // namespace gly
