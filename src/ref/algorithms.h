// The five Graphalytics algorithms: shared parameter types, canonical
// semantics, and reference (gold) implementations.
//
// Paper §3.2: "We have included so far in Graphalytics five algorithms that
// are representative for real-world usage and stress the choke points of
// platforms": STATS, BFS, CONN, CD (community detection, Leung et al.),
// EVO (forest-fire graph evolution, Leskovec et al.).
//
// Every platform implements the same deterministic semantics defined here,
// so the Output Validator can compare results exactly:
//
//  * BFS      — level (hop distance) per vertex from `source`;
//               kUnreachable for unreached vertices.
//  * CONN     — per vertex, the smallest vertex id in its connected
//               component (the standard Graphalytics label convention).
//  * CD       — synchronous label propagation with hop attenuation
//               (Leung et al. 2009): every vertex starts with its own id as
//               label (score 1.0); each iteration a vertex adopts the label
//               with the highest neighbor score sum (ties -> smaller
//               label), the adopted label's score is max contributing
//               score minus `hop_attenuation`. Runs `max_iterations`
//               rounds; output is the final label per vertex.
//  * EVO      — batched forest-fire evolution: `num_new_vertices` new
//               vertices are added; each independently picks a seeded
//               ambassador among the original vertices and burns through
//               the original graph (geometric forward fanout, seeded
//               neighbor selection); the new vertex links to every burned
//               vertex. Per-new-vertex RNG streams make the result
//               independent of platform scheduling. (The original model
//               grows one vertex at a time; the batch variant preserves
//               the burning mechanics while being expressible on BSP/
//               MapReduce platforms — see DESIGN.md.)
//  * STATS    — vertex count, edge count, mean local clustering
//               coefficient (paper: "counts the number of vertices and
//               edges ... computes the mean local clustering coefficient").

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/random.h"
#include "common/result.h"
#include "graph/graph.h"

namespace gly {

/// Algorithm identifiers: the paper's five-algorithm workload plus PR
/// (PageRank), an extension anticipating the benchmark's stated growth
/// ("more algorithms will be added"; LDBC Graphalytics later standardized
/// PageRank).
enum class AlgorithmKind { kStats, kBfs, kConn, kCd, kEvo, kPr };

/// Parses "stats" | "bfs" | "conn" | "cd" | "evo" | "pr".
Result<AlgorithmKind> ParseAlgorithmKind(const std::string& name);
std::string AlgorithmKindName(AlgorithmKind kind);

/// PR (PageRank) parameters. Semantics shared by every platform: ranks
/// start at 1/n; each of `iterations` synchronous rounds computes
///   rank'(v) = (1-damping)/n + damping * sum over in-neighbors u of
///              rank(u) / out_degree(u).
/// Dangling mass is allowed to leak (no redistribution) so the update is
/// purely local — identical on BSP, dataflow, MapReduce, and the graph
/// database. Scores are validated with a numeric tolerance.
struct PrParams {
  uint32_t iterations = 20;
  double damping = 0.85;
};

/// Traversal kernel selection for BFS implementations that support the
/// direction-optimizing kernel (Beamer et al., SC'12). The reference
/// validator always uses the naive queue BFS; platforms honour this knob.
enum class BfsStrategy {
  kTopDown,               ///< classic frontier-expansion only
  kBottomUp,              ///< parent-search from unvisited vertices only
  kDirectionOptimizing,   ///< alpha/beta-switched hybrid (the default)
};

/// Parses "top_down" | "bottom_up" | "diropt".
Result<BfsStrategy> ParseBfsStrategy(const std::string& name);
std::string BfsStrategyName(BfsStrategy strategy);

/// BFS parameters.
struct BfsParams {
  VertexId source = 0;
  BfsStrategy strategy = BfsStrategy::kDirectionOptimizing;
  /// GAP-style switch heuristics: go bottom-up when the frontier's edge
  /// count exceeds 1/alpha of the unexplored edge count; return top-down
  /// when the frontier shrinks below 1/beta of the vertices.
  double alpha = 15.0;
  double beta = 18.0;
};

/// Shared direction chooser for the direction-optimizing BFS kernels.
/// Stateful: remembers the current direction so the alpha and beta
/// thresholds act as hysteresis, exactly as in the GAP reference.
class BfsDirectionPolicy {
 public:
  BfsDirectionPolicy(const BfsParams& params, uint64_t num_vertices);

  /// Decides the direction for the next level. `frontier_vertices` is the
  /// frontier's cardinality, `frontier_degree` the sum of its out-degrees
  /// (the edges a top-down step would examine), `unexplored_degree` the
  /// sum of out-degrees of undiscovered vertices.
  bool UseBottomUp(uint64_t frontier_vertices, uint64_t frontier_degree,
                   uint64_t unexplored_degree);

 private:
  BfsStrategy strategy_;
  double alpha_;
  double beta_;
  uint64_t num_vertices_;
  bool bottom_up_ = false;
};

/// CD (label propagation, Leung et al.) parameters.
struct CdParams {
  uint32_t max_iterations = 10;
  double hop_attenuation = 0.05;
};

/// EVO (forest fire) parameters.
struct EvoParams {
  uint32_t num_new_vertices = 16;
  double p_forward = 0.3;    ///< geometric burn parameter
  uint32_t max_depth = 4;    ///< burn frontier depth limit
  uint32_t max_burned = 64;  ///< total burn size cap per new vertex
  uint64_t seed = 99;
};

/// Union of all algorithm parameters carried through the harness. Doubles
/// as the per-run parameter block (RunParams) of Platform::Run.
struct AlgorithmParams {
  BfsParams bfs;
  CdParams cd;
  EvoParams evo;
  PrParams pr;
  /// Cooperative cancellation (null = unsupervised run, zero overhead).
  /// The harness arms it on timeout / stall / stop; every engine polls it
  /// at bounded-work intervals and bumps its progress heartbeat — see
  /// common/cancellation.h and DESIGN.md §11. Not serialized.
  CancelToken* cancel = nullptr;
};

/// STATS output.
struct StatsResult {
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  double mean_local_clustering = 0.0;
};

/// Output of one algorithm run, in the shape the validator understands.
struct AlgorithmOutput {
  /// BFS: distance per vertex; CONN: component label; CD: community label.
  std::vector<int64_t> vertex_values;
  /// PR only: rank per vertex.
  std::vector<double> vertex_scores;
  /// STATS only.
  StatsResult stats;
  /// EVO only: the edges added by the evolution step
  /// (new vertex ids start at graph.num_vertices()).
  EdgeList new_edges;
  /// Number of edges the algorithm traversed, for the TEPS metric
  /// (Figure 5). Platforms fill this with their true traversal count.
  uint64_t traversed_edges = 0;
};

namespace ref {

/// Reference implementations (single-threaded, obviously-correct).
AlgorithmOutput Stats(const Graph& graph);
AlgorithmOutput Bfs(const Graph& graph, const BfsParams& params);

/// Direction-optimizing BFS over the frontier module (common/bitset.h +
/// graph/frontier.h): top-down expansion while the frontier is small,
/// bottom-up parent search once it covers enough edges, per
/// params.strategy/alpha/beta. Produces exactly the levels of Bfs();
/// traversed_edges counts the edges actually examined, which is what the
/// direction optimization reduces.
AlgorithmOutput BfsDirOpt(const Graph& graph, const BfsParams& params);
AlgorithmOutput Conn(const Graph& graph);
AlgorithmOutput Cd(const Graph& graph, const CdParams& params);
AlgorithmOutput Evo(const Graph& graph, const EvoParams& params);
AlgorithmOutput Pr(const Graph& graph, const PrParams& params);

/// Dispatch by kind.
AlgorithmOutput Run(const Graph& graph, AlgorithmKind kind,
                    const AlgorithmParams& params);

}  // namespace ref

/// Shared deterministic forest-fire burn used by every platform's EVO:
/// burns from `ambassador` through `graph` and returns the burned vertex
/// set in ascending order (ambassador included). Seeded per new vertex.
std::vector<VertexId> ForestFireBurn(const Graph& graph, VertexId ambassador,
                                     const EvoParams& params,
                                     uint32_t new_vertex_index);

/// Substrate-agnostic variant: `fetch_neighbors` must return the vertex's
/// neighborhood in ascending order (matching CSR order), so every platform
/// makes identical seeded selections. Used by the graph-database platform.
std::vector<VertexId> ForestFireBurnWithFetch(
    VertexId num_vertices,
    const std::function<std::vector<VertexId>(VertexId)>& fetch_neighbors,
    VertexId ambassador, const EvoParams& params, uint32_t new_vertex_index);

/// Deterministic ambassador choice for new vertex `i`.
VertexId ForestFireAmbassador(const Graph& graph, const EvoParams& params,
                              uint32_t new_vertex_index);

/// The label-propagation scoring rule shared by all CD implementations:
/// given (label, score) of each neighbor, returns the adopted label and its
/// new score. Exposed so platform implementations stay in lockstep.
struct LabelScore {
  int64_t label;
  double score;
};
LabelScore CdAdoptLabel(const std::vector<LabelScore>& neighbor_labels,
                        double hop_attenuation);

}  // namespace gly
