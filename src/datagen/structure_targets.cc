#include "datagen/structure_targets.h"

#include <algorithm>
#include <cmath>

#include "analysis/metrics.h"
#include "common/macros.h"
#include "datagen/rewire.h"
#include "datagen/social_datagen.h"
#include "graph/graph.h"

namespace gly::datagen {

namespace {

// Generates a candidate graph: (1-closure_fraction) of the edge budget from
// the windowed generator, the rest as wedge-closing edges.
Result<EdgeList> GenerateCandidate(const StructureTargets& targets,
                                   double closure_fraction,
                                   ThreadPool* pool) {
  const uint64_t closure_edges = static_cast<uint64_t>(
      static_cast<double>(targets.num_edges) * closure_fraction);
  const uint64_t base_edges = targets.num_edges - closure_edges;

  SocialDatagenConfig config;
  config.num_persons = targets.num_vertices;
  config.degree_spec = targets.degree_spec;
  config.window_size = 128;
  config.seed = targets.seed;
  // The plugin controls degree *shape*; rescale the edge count by thinning
  // or repeating the stub budget via pass fractions is fragile, so instead
  // generate at the plugin's natural density and trim/extend below.
  SocialDatagen generator(config);
  GLY_ASSIGN_OR_RETURN(SocialGraph social, generator.Generate(pool));
  EdgeList edges = std::move(social.edges);

  // Trim to the base budget (deterministically: keep a prefix of a seeded
  // shuffle) or top up with random long-range edges.
  Rng rng(DeriveSeed(targets.seed, 0xC0FFEE));
  std::vector<Edge>& es = edges.mutable_edges();
  for (size_t i = es.size(); i > 1; --i) {
    size_t j = static_cast<size_t>(rng.NextBounded(i));
    std::swap(es[i - 1], es[j]);
  }
  if (es.size() > base_edges) {
    es.resize(base_edges);
  } else {
    while (es.size() < base_edges) {
      VertexId a = static_cast<VertexId>(rng.NextBounded(targets.num_vertices));
      VertexId b = static_cast<VertexId>(rng.NextBounded(targets.num_vertices));
      if (a != b) es.push_back(Edge{a, b});
    }
  }
  edges.EnsureVertices(static_cast<VertexId>(targets.num_vertices));

  // Triad closure: repeatedly pick a vertex, pick two of its neighbors,
  // close the wedge. Operates on an adjacency snapshot refreshed in rounds
  // so new triangles compound (as in the Holme–Kim model).
  uint64_t remaining = closure_edges;
  while (remaining > 0) {
    GLY_ASSIGN_OR_RETURN(Graph g, GraphBuilder::Undirected(edges));
    uint64_t this_round = std::min<uint64_t>(remaining, closure_edges / 2 + 1);
    uint64_t added = 0;
    uint64_t attempts = 0;
    const uint64_t max_attempts = this_round * 50;
    while (added < this_round && attempts < max_attempts) {
      ++attempts;
      VertexId v = static_cast<VertexId>(rng.NextBounded(g.num_vertices()));
      auto nbrs = g.OutNeighbors(v);
      if (nbrs.size() < 2) continue;
      VertexId u = nbrs[rng.NextBounded(nbrs.size())];
      VertexId w = nbrs[rng.NextBounded(nbrs.size())];
      if (u == w || g.HasEdge(u, w)) continue;
      edges.Add(u, w);
      ++added;
    }
    if (added == 0) break;  // saturated
    remaining -= added;
  }
  edges.DeduplicateAndDropLoops();
  return edges;
}

}  // namespace

Result<StructureResult> GenerateWithTargets(const StructureTargets& targets,
                                            ThreadPool* pool) {
  if (targets.num_vertices < 3 || targets.num_edges < 3) {
    return Status::InvalidArgument("targets too small");
  }
  // Bisection on the closure fraction against the measured average CC.
  double lo = 0.0;
  double hi = 0.9;
  double best_fraction = 0.0;
  EdgeList best_edges;
  double best_cc = -1.0;
  for (uint32_t step = 0; step < targets.closure_bisection_steps; ++step) {
    double mid = (step == 0) ? std::min(0.9, targets.target_average_clustering)
                             : (lo + hi) / 2.0;
    GLY_ASSIGN_OR_RETURN(EdgeList candidate,
                         GenerateCandidate(targets, mid, pool));
    GLY_ASSIGN_OR_RETURN(Graph g, GraphBuilder::Undirected(candidate));
    double cc = AverageClusteringCoefficient(g, pool);
    if (best_cc < 0 || std::abs(cc - targets.target_average_clustering) <
                           std::abs(best_cc -
                                    targets.target_average_clustering)) {
      best_cc = cc;
      best_fraction = mid;
      best_edges = std::move(candidate);
    }
    if (cc < targets.target_average_clustering) {
      lo = mid;
    } else {
      hi = mid;
    }
  }

  // Assortativity rewiring with a clustering anchor.
  RewireConfig rewire;
  rewire.target_assortativity = targets.target_assortativity;
  rewire.assortativity_weight = 1.0;
  {
    GLY_ASSIGN_OR_RETURN(Graph g, GraphBuilder::Undirected(best_edges));
    rewire.target_clustering = GlobalClusteringCoefficient(g, pool);
  }
  rewire.clustering_weight = 0.5;
  rewire.max_iterations = targets.rewire_iterations;
  rewire.seed = DeriveSeed(targets.seed, 0xAB);
  RewireStats rewire_stats;
  GLY_ASSIGN_OR_RETURN(EdgeList rewired,
                       GraphRewirer(rewire).Rewire(best_edges, &rewire_stats));

  StructureResult result;
  GLY_ASSIGN_OR_RETURN(Graph final_graph, GraphBuilder::Undirected(rewired));
  result.average_clustering = AverageClusteringCoefficient(final_graph, pool);
  result.global_clustering = GlobalClusteringCoefficient(final_graph, pool);
  result.assortativity = DegreeAssortativity(final_graph);
  result.closure_fraction_used = best_fraction;
  result.edges = std::move(rewired);
  return result;
}

}  // namespace gly::datagen
