#include "datagen/degree_plugin.h"

#include <algorithm>
#include <cmath>

#include "common/config.h"
#include "common/macros.h"
#include "common/string_util.h"

namespace gly::datagen {

// ------------------------------------------------------------------ Zeta

ZetaDegreePlugin::ZetaDegreePlugin(double alpha, uint64_t max_degree)
    : sampler_(alpha, max_degree), max_degree_(max_degree) {
  // Mean of the truncated zeta: sum k^(1-alpha) / sum k^-alpha.
  double num = 0.0;
  double den = 0.0;
  const uint64_t head = std::min<uint64_t>(max_degree_, 100000);
  for (uint64_t k = 1; k <= head; ++k) {
    double w = std::pow(static_cast<double>(k), -alpha);
    num += static_cast<double>(k) * w;
    den += w;
  }
  mean_ = den > 0.0 ? num / den : 1.0;
}

std::string ZetaDegreePlugin::ToString() const {
  return StringPrintf("zeta(alpha=%.3f, max=%llu)", sampler_.alpha(),
                      static_cast<unsigned long long>(max_degree_));
}

uint64_t ZetaDegreePlugin::Sample(Rng& rng) const { return sampler_.Sample(rng); }

// ------------------------------------------------------------- Geometric

GeometricDegreePlugin::GeometricDegreePlugin(double p)
    : p_(std::clamp(p, 1e-9, 1.0 - 1e-12)) {}

std::string GeometricDegreePlugin::ToString() const {
  return StringPrintf("geometric(p=%.4f)", p_);
}

uint64_t GeometricDegreePlugin::Sample(Rng& rng) const {
  return SampleGeometric(rng, p_);
}

// --------------------------------------------------------------- Weibull

WeibullDegreePlugin::WeibullDegreePlugin(double shape, double scale)
    : shape_(shape), scale_(scale) {}

std::string WeibullDegreePlugin::ToString() const {
  return StringPrintf("weibull(shape=%.3f, scale=%.3f)", shape_, scale_);
}

uint64_t WeibullDegreePlugin::Sample(Rng& rng) const {
  return SampleWeibullDegree(rng, shape_, scale_);
}

double WeibullDegreePlugin::MeanDegree() const {
  return scale_ * std::tgamma(1.0 + 1.0 / shape_) + 0.5;
}

// --------------------------------------------------------------- Poisson

PoissonDegreePlugin::PoissonDegreePlugin(double lambda)
    : lambda_(std::max(lambda, 1e-9)) {}

std::string PoissonDegreePlugin::ToString() const {
  return StringPrintf("poisson(lambda=%.3f)", lambda_);
}

uint64_t PoissonDegreePlugin::Sample(Rng& rng) const {
  uint64_t k;
  do {
    k = SamplePoisson(rng, lambda_);
  } while (k == 0);  // zero-truncated: degrees are >= 1
  return k;
}

double PoissonDegreePlugin::MeanDegree() const {
  return lambda_ / (1.0 - std::exp(-lambda_));
}

// ------------------------------------------------------------- Empirical

EmpiricalDegreePlugin::EmpiricalDegreePlugin(std::vector<uint64_t> degrees,
                                             AliasTable table, double mean)
    : degrees_(std::move(degrees)), table_(std::move(table)), mean_(mean) {}

Result<EmpiricalDegreePlugin> EmpiricalDegreePlugin::FromHistogram(
    const Histogram& observed) {
  std::vector<uint64_t> degrees;
  std::vector<double> weights;
  double num = 0.0;
  double den = 0.0;
  for (const auto& [k, count] : observed.Items()) {
    if (k == 0) continue;
    degrees.push_back(k);
    weights.push_back(static_cast<double>(count));
    num += static_cast<double>(k) * static_cast<double>(count);
    den += static_cast<double>(count);
  }
  if (degrees.empty()) {
    return Status::InvalidArgument(
        "empirical degree plugin needs a non-empty histogram with degrees >= 1");
  }
  return EmpiricalDegreePlugin(std::move(degrees), AliasTable(weights),
                               num / den);
}

std::string EmpiricalDegreePlugin::ToString() const {
  return StringPrintf("empirical(%zu distinct degrees, mean=%.2f)",
                      degrees_.size(), mean_);
}

uint64_t EmpiricalDegreePlugin::Sample(Rng& rng) const {
  return degrees_[table_.Sample(rng)];
}

// -------------------------------------------------------------- Facebook

FacebookDegreePlugin::FacebookDegreePlugin(double mean_degree)
    : mean_(std::max(mean_degree, 1.0)) {}

std::string FacebookDegreePlugin::ToString() const {
  return StringPrintf("facebook(mean=%.1f)", mean_);
}

uint64_t FacebookDegreePlugin::Sample(Rng& rng) const {
  // Mixture approximating the Facebook shape from Ugander et al.: a bulk of
  // modest-degree users (geometric body) plus a stretched-exponential tail,
  // truncated at ~5000 (Facebook's friend cap scaled to the mean).
  // Mixture mean is calibrated to `mean_`:
  //   0.85 * body_mean + 0.15 * tail_mean == mean_
  const double body_mean = mean_ * 0.6;
  const double tail_mean = mean_ * (1.0 - 0.85 * 0.6) / 0.15;
  uint64_t cap = static_cast<uint64_t>(mean_ * 170.0);  // ~5000 at mean 30
  uint64_t d;
  if (rng.NextDouble() < 0.85) {
    d = SampleGeometric(rng, 1.0 / body_mean);
  } else {
    // Weibull with shape < 1 gives the stretched-exponential tail.
    const double shape = 0.65;
    const double scale = tail_mean / std::tgamma(1.0 + 1.0 / shape);
    d = SampleWeibullDegree(rng, shape, scale);
  }
  return std::min<uint64_t>(std::max<uint64_t>(d, 1), cap);
}

// ---------------------------------------------------------------- factory

Result<std::unique_ptr<DegreePlugin>> MakeDegreePlugin(
    const std::string& spec) {
  auto head_and_args = Split(spec, ':');
  const std::string kind = ToLower(std::string(Trim(head_and_args[0])));
  Config args;
  if (head_and_args.size() > 1) {
    // Reuse the key=value parser: turn "a=1,b=2" into lines.
    std::string text;
    for (const auto& pair : Split(head_and_args[1], ',')) {
      text += pair;
      text += '\n';
    }
    GLY_ASSIGN_OR_RETURN(args, Config::Parse(text));
  }
  if (kind == "zeta") {
    GLY_ASSIGN_OR_RETURN(double alpha, args.GetDouble("alpha"));
    uint64_t max = args.GetUintOr("max", 10000);
    if (alpha <= 1.0) {
      return Status::InvalidArgument("zeta plugin requires alpha > 1");
    }
    return {std::make_unique<ZetaDegreePlugin>(alpha, max)};
  }
  if (kind == "geometric") {
    GLY_ASSIGN_OR_RETURN(double p, args.GetDouble("p"));
    if (p <= 0.0 || p >= 1.0) {
      return Status::InvalidArgument("geometric plugin requires 0 < p < 1");
    }
    return {std::make_unique<GeometricDegreePlugin>(p)};
  }
  if (kind == "weibull") {
    GLY_ASSIGN_OR_RETURN(double shape, args.GetDouble("shape"));
    GLY_ASSIGN_OR_RETURN(double scale, args.GetDouble("scale"));
    if (shape <= 0.0 || scale <= 0.0) {
      return Status::InvalidArgument("weibull plugin requires positive params");
    }
    return {std::make_unique<WeibullDegreePlugin>(shape, scale)};
  }
  if (kind == "poisson") {
    GLY_ASSIGN_OR_RETURN(double lambda, args.GetDouble("lambda"));
    if (lambda <= 0.0) {
      return Status::InvalidArgument("poisson plugin requires lambda > 0");
    }
    return {std::make_unique<PoissonDegreePlugin>(lambda)};
  }
  if (kind == "facebook") {
    double mean = args.GetDoubleOr("mean", 30.0);
    return {std::make_unique<FacebookDegreePlugin>(mean)};
  }
  return Status::InvalidArgument("unknown degree plugin: '" + kind + "'");
}

}  // namespace gly::datagen
