#include "datagen/social_datagen.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"

namespace gly::datagen {

namespace {

// Stable sub-stream ids for DeriveSeed.
enum SeedStream : uint64_t {
  kPersonStream = 1,
  kDegreeStream = 2,
  kPassStreamBase = 16,  // + pass index * 2^20 + block index
};

// Zipf-ish attribute pick: maps a uniform draw through a power transform so
// low indices are much more popular. Cheap stand-in for a full zeta sampler
// over a small attribute space.
uint32_t SampleSkewedAttribute(Rng& rng, uint32_t space, double alpha) {
  double u = rng.NextDouble();
  double x = std::pow(u, alpha);  // concentrates near 0 for alpha > 1
  uint32_t v = static_cast<uint32_t>(x * space);
  return v >= space ? space - 1 : v;
}

// One stub: a slot of a person's degree budget awaiting pairing.
struct Stub {
  uint64_t sort_key;  // correlation key (attribute value, tie-broken)
  VertexId person;
};

// Sorts stubs by key and pairs them within deterministic shuffled windows.
// Appends resulting edges to `out`. Deterministic in (seed, pass_id).
void PairStubsWindowed(std::vector<Stub>& stubs, uint64_t window_size,
                       uint64_t seed, uint64_t pass_id, ThreadPool* pool,
                       EdgeList* out) {
  if (stubs.size() < 2) return;
  std::sort(stubs.begin(), stubs.end(), [](const Stub& a, const Stub& b) {
    return a.sort_key != b.sort_key ? a.sort_key < b.sort_key
                                    : a.person < b.person;
  });
  const uint64_t n = stubs.size();
  const uint64_t num_blocks = (n + window_size - 1) / window_size;

  // Per-block: Fisher-Yates shuffle the window with a block-seeded RNG,
  // then pair adjacent stubs. Blocks are independent -> parallel safe and
  // thread-count invariant.
  std::vector<EdgeList> block_edges(num_blocks);
  auto run_block = [&](size_t b) {
    const uint64_t begin = b * window_size;
    const uint64_t end = std::min(n, begin + window_size);
    const uint64_t len = end - begin;
    Rng rng(DeriveSeed(seed, kPassStreamBase + pass_id * (1ULL << 20) + b));
    std::vector<uint32_t> idx(len);
    std::iota(idx.begin(), idx.end(), 0);
    for (uint64_t i = len; i > 1; --i) {
      uint64_t j = rng.NextBounded(i);
      std::swap(idx[i - 1], idx[j]);
    }
    EdgeList& edges = block_edges[b];
    edges.Reserve(len / 2);
    for (uint64_t i = 0; i + 1 < len; i += 2) {
      VertexId u = stubs[begin + idx[i]].person;
      VertexId v = stubs[begin + idx[i + 1]].person;
      if (u == v) continue;  // self-pairing: budget lost, as in Datagen
      edges.Add(u, v);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(num_blocks, run_block);
  } else {
    for (size_t b = 0; b < num_blocks; ++b) run_block(b);
  }
  for (auto& e : block_edges) out->Append(e);
}

}  // namespace

SocialDatagen::SocialDatagen(SocialDatagenConfig config)
    : config_(std::move(config)) {}

Status SocialDatagen::Validate() const {
  if (config_.num_persons < 2) {
    return Status::InvalidArgument("num_persons must be >= 2");
  }
  if (config_.num_persons > kInvalidVertex) {
    return Status::InvalidArgument("num_persons exceeds VertexId range");
  }
  if (config_.window_size < 2) {
    return Status::InvalidArgument("window_size must be >= 2");
  }
  double total = config_.university_fraction + config_.interest_fraction +
                 config_.random_fraction;
  if (total > 1.0 + 1e-9) {
    return Status::InvalidArgument("pass fractions must sum to <= 1");
  }
  if (config_.university_fraction < 0 || config_.interest_fraction < 0 ||
      config_.random_fraction < 0) {
    return Status::InvalidArgument("pass fractions must be non-negative");
  }
  if (config_.num_locations == 0 || config_.universities_per_location == 0 ||
      config_.num_interests == 0) {
    return Status::InvalidArgument("attribute spaces must be non-empty");
  }
  return MakeDegreePlugin(config_.degree_spec).status();
}

std::vector<Person> SocialDatagen::GeneratePersons(ThreadPool* pool) const {
  std::vector<Person> persons(config_.num_persons);
  auto gen = [this, &persons](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      Rng rng(DeriveSeed(config_.seed, kPersonStream * (1ULL << 40) + i));
      Person& p = persons[i];
      p.location = SampleSkewedAttribute(rng, config_.num_locations,
                                         config_.attribute_zipf_alpha);
      // University correlated with location: most people study where they
      // live (S3G2's correlated property generation).
      uint32_t local_univ = static_cast<uint32_t>(
          rng.NextBounded(config_.universities_per_location));
      if (rng.NextDouble() < 0.1) {
        // 10% study in a different (random) location.
        uint32_t other = static_cast<uint32_t>(
            rng.NextBounded(config_.num_locations));
        p.university = other * config_.universities_per_location + local_univ;
      } else {
        p.university =
            p.location * config_.universities_per_location + local_univ;
      }
      p.interest = SampleSkewedAttribute(rng, config_.num_interests,
                                         config_.attribute_zipf_alpha);
    }
  };
  if (pool != nullptr) {
    pool->ParallelForChunked(persons.size(), gen);
  } else {
    gen(0, persons.size());
  }
  return persons;
}

std::vector<uint32_t> SocialDatagen::SampleDegrees(const DegreePlugin& plugin,
                                                   ThreadPool* pool) const {
  std::vector<uint32_t> degrees(config_.num_persons);
  auto gen = [this, &plugin, &degrees](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      Rng rng(DeriveSeed(config_.seed, kDegreeStream * (1ULL << 40) + i));
      uint64_t d = plugin.Sample(rng);
      // Degrees are capped at the person count (can't know more people than
      // exist).
      degrees[i] = static_cast<uint32_t>(
          std::min<uint64_t>(d, config_.num_persons - 1));
    }
  };
  if (pool != nullptr) {
    pool->ParallelForChunked(degrees.size(), gen);
  } else {
    gen(0, degrees.size());
  }
  return degrees;
}

Result<SocialGraph> SocialDatagen::Generate(ThreadPool* pool) const {
  GLY_RETURN_NOT_OK(Validate());
  GLY_ASSIGN_OR_RETURN(std::unique_ptr<DegreePlugin> plugin,
                       MakeDegreePlugin(config_.degree_spec));

  SocialGraph out;
  out.persons = GeneratePersons(pool);
  std::vector<uint32_t> degrees = SampleDegrees(*plugin, pool);

  // Split each person's degree budget across the passes with largest-
  // remainder rounding, so the per-person total is exact.
  struct PassSpec {
    double fraction;
    uint64_t pass_id;
  };
  const PassSpec passes[3] = {
      {config_.university_fraction, 0},
      {config_.interest_fraction, 1},
      {config_.random_fraction, 2},
  };

  out.edges.EnsureVertices(static_cast<VertexId>(config_.num_persons));

  for (const PassSpec& pass : passes) {
    if (pass.fraction <= 0.0) continue;
    // Stubs for this pass. Each edge consumes two stubs, so a person with
    // budget b contributes b stubs and ends with ~b edges total across
    // passes (each pairing grants one edge to each endpoint).
    std::vector<Stub> stubs;
    stubs.reserve(static_cast<size_t>(
        static_cast<double>(config_.num_persons) * pass.fraction *
        plugin->MeanDegree()));
    for (uint64_t i = 0; i < config_.num_persons; ++i) {
      // Deterministic largest-remainder-ish split: floor + seeded coin for
      // the fractional part.
      double exact = degrees[i] * pass.fraction;
      uint64_t whole = static_cast<uint64_t>(exact);
      Rng coin(DeriveSeed(config_.seed,
                          (pass.pass_id + 7) * (1ULL << 40) + i));
      if (coin.NextDouble() < exact - static_cast<double>(whole)) ++whole;
      uint64_t attribute;
      switch (pass.pass_id) {
        case 0:
          attribute = out.persons[i].university;
          break;
        case 1:
          attribute = out.persons[i].interest;
          break;
        default:
          attribute = 0;  // random pass: no attribute grouping
      }
      for (uint64_t s = 0; s < whole; ++s) {
        // Key layout: [attribute | per-stub jitter]. The jitter spreads one
        // person's stubs across their attribute group (instead of clumping
        // adjacently), which keeps self-pairings and duplicate edges rare
        // even for high-degree persons — preserving the plugin's degree
        // distribution. In the random pass the key is pure jitter, giving
        // uniform long-range pairing.
        uint64_t jitter = coin.Next() & 0xFFFFFFFFULL;
        stubs.push_back(
            Stub{(attribute << 32) | jitter, static_cast<VertexId>(i)});
      }
    }
    PairStubsWindowed(stubs, config_.window_size, config_.seed, pass.pass_id,
                      pool, &out.edges);
  }

  // Canonicalize undirected orientation (u < v) so a pair connected in two
  // different passes collapses to one edge, then dedup.
  for (Edge& e : out.edges.mutable_edges()) {
    if (e.src > e.dst) std::swap(e.src, e.dst);
  }
  out.edges.DeduplicateAndDropLoops();
  return out;
}

}  // namespace gly::datagen
