#include "datagen/rmat.h"

#include <numeric>
#include <vector>

#include "common/macros.h"
#include "common/random.h"

namespace gly::datagen {

Status RmatGenerator::Validate() const {
  if (config_.scale == 0 || config_.scale > 30) {
    return Status::InvalidArgument("rmat scale must be in [1, 30]");
  }
  if (config_.edge_factor == 0) {
    return Status::InvalidArgument("rmat edge_factor must be >= 1");
  }
  double d = 1.0 - config_.a - config_.b - config_.c;
  if (config_.a < 0 || config_.b < 0 || config_.c < 0 || d < 0) {
    return Status::InvalidArgument("rmat quadrant probabilities invalid");
  }
  return Status::OK();
}

Result<EdgeList> RmatGenerator::Generate(ThreadPool* pool) const {
  GLY_RETURN_NOT_OK(Validate());
  const uint64_t n = 1ULL << config_.scale;
  const uint64_t m = n * config_.edge_factor;

  // Vertex permutation (Fisher-Yates with the master seed); identity when
  // disabled.
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  if (config_.permute_vertices) {
    Rng prng(DeriveSeed(config_.seed, 0xBEEF));
    for (uint64_t i = n; i > 1; --i) {
      uint64_t j = prng.NextBounded(i);
      std::swap(perm[i - 1], perm[j]);
    }
  }

  EdgeList edges(static_cast<VertexId>(n));
  edges.mutable_edges().resize(m);
  auto gen = [this, &edges, &perm](size_t begin, size_t end) {
    const double ab = config_.a + config_.b;
    const double a_norm = config_.a / ab;
    const double c_norm =
        config_.c / (1.0 - ab);  // P(left | bottom half)
    for (size_t e = begin; e < end; ++e) {
      Rng rng(DeriveSeed(config_.seed, 0x1000000ULL + e));
      uint64_t src = 0;
      uint64_t dst = 0;
      for (uint32_t bit = 0; bit < config_.scale; ++bit) {
        // Graph500 noise: jitter quadrant probabilities per level.
        bool bottom = rng.NextDouble() > ab;
        bool right = rng.NextDouble() > (bottom ? c_norm : a_norm);
        src = (src << 1) | (bottom ? 1u : 0u);
        dst = (dst << 1) | (right ? 1u : 0u);
      }
      edges.mutable_edges()[e] = Edge{perm[src], perm[dst]};
    }
  };
  if (pool != nullptr) {
    pool->ParallelForChunked(m, gen);
  } else {
    gen(0, m);
  }
  return edges;
}

}  // namespace gly::datagen
