// Degree-distribution plugins for Datagen.
//
// The paper extends Datagen "with the capability to dynamically reproduce
// different distributions by means of plugins. We have already implemented
// those for the Zeta and Geometric distribution models ... Furthermore, for
// those graphs whose distributions cannot be theoretically modeled, we have
// implemented a plugin to feed Datagen with empirical data." This module
// implements exactly that plugin interface: Zeta, Geometric, Weibull,
// Poisson, an empirical plugin fed with an observed histogram, and a
// Facebook-like plugin approximating the distribution of Ugander et al.
// (the only distribution the original Datagen supported).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "common/result.h"

namespace gly::datagen {

/// Produces a target degree for each person. Implementations must be
/// deterministic functions of (their parameters, the passed Rng state).
class DegreePlugin {
 public:
  virtual ~DegreePlugin() = default;

  /// Plugin name for configs and reports.
  virtual std::string name() const = 0;

  /// Human-readable parameterization.
  virtual std::string ToString() const = 0;

  /// Samples one target degree (>= 1).
  virtual uint64_t Sample(Rng& rng) const = 0;

  /// Theoretical mean degree (used for sizing); may be approximate.
  virtual double MeanDegree() const = 0;
};

/// Zeta (power-law) plugin: P(k) ∝ k^-alpha on [1, max_degree].
class ZetaDegreePlugin final : public DegreePlugin {
 public:
  ZetaDegreePlugin(double alpha, uint64_t max_degree = 10000);
  std::string name() const override { return "zeta"; }
  std::string ToString() const override;
  uint64_t Sample(Rng& rng) const override;
  double MeanDegree() const override { return mean_; }
  double alpha() const { return sampler_.alpha(); }

 private:
  ZetaSampler sampler_;
  uint64_t max_degree_;
  double mean_;
};

/// Geometric plugin on {1, 2, ...} with success probability p.
class GeometricDegreePlugin final : public DegreePlugin {
 public:
  explicit GeometricDegreePlugin(double p);
  std::string name() const override { return "geometric"; }
  std::string ToString() const override;
  uint64_t Sample(Rng& rng) const override;
  double MeanDegree() const override { return 1.0 / p_; }
  double p() const { return p_; }

 private:
  double p_;
};

/// Discrete Weibull plugin (ceil of a continuous Weibull).
class WeibullDegreePlugin final : public DegreePlugin {
 public:
  WeibullDegreePlugin(double shape, double scale);
  std::string name() const override { return "weibull"; }
  std::string ToString() const override;
  uint64_t Sample(Rng& rng) const override;
  double MeanDegree() const override;

 private:
  double shape_;
  double scale_;
};

/// Zero-truncated Poisson plugin.
class PoissonDegreePlugin final : public DegreePlugin {
 public:
  explicit PoissonDegreePlugin(double lambda);
  std::string name() const override { return "poisson"; }
  std::string ToString() const override;
  uint64_t Sample(Rng& rng) const override;
  double MeanDegree() const override;

 private:
  double lambda_;
};

/// Empirical plugin: reproduces an observed degree histogram (the paper's
/// "feed Datagen with empirical data to be reproduced").
class EmpiricalDegreePlugin final : public DegreePlugin {
 public:
  /// `observed` must be non-empty. Degree 0 entries are dropped.
  static Result<EmpiricalDegreePlugin> FromHistogram(const Histogram& observed);

  std::string name() const override { return "empirical"; }
  std::string ToString() const override;
  uint64_t Sample(Rng& rng) const override;
  double MeanDegree() const override { return mean_; }

 private:
  EmpiricalDegreePlugin(std::vector<uint64_t> degrees, AliasTable table,
                        double mean);
  std::vector<uint64_t> degrees_;
  AliasTable table_;
  double mean_;
};

/// Facebook-like plugin: the piecewise distribution Datagen originally
/// shipped, approximating the degree shape reported by Ugander et al. for
/// the Facebook social graph (median well below the mean, a mode at low
/// degrees, and a heavy but bounded tail), rescaled to `mean_degree`.
class FacebookDegreePlugin final : public DegreePlugin {
 public:
  explicit FacebookDegreePlugin(double mean_degree = 30.0);
  std::string name() const override { return "facebook"; }
  std::string ToString() const override;
  uint64_t Sample(Rng& rng) const override;
  double MeanDegree() const override { return mean_; }

 private:
  double mean_;
};

/// Creates a plugin from a config-style spec:
///   "zeta:alpha=1.7[,max=10000]" | "geometric:p=0.12" |
///   "weibull:shape=0.8,scale=20" | "poisson:lambda=10" |
///   "facebook[:mean=30]"
Result<std::unique_ptr<DegreePlugin>> MakeDegreePlugin(const std::string& spec);

}  // namespace gly::datagen
