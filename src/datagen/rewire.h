// GraphRewirer: degree-preserving hill-climbing rewiring.
//
// The paper (§2.2, "Different structural characteristics"): "for
// Graphalytics we plan to extend the current windowed based edge generation
// process of Datagen, to allow the generation of graphs with a target
// average clustering coefficient, but also to decide whether the
// assortativity is positive or negative, while preserving the degree
// distribution of the graph. We envision this process as a post processing
// step where the graph is iteratively rewired until the desired values are
// achieved, in a hill climbing fashion."
//
// Mechanism: double-edge swaps (u,v),(x,y) -> (u,y),(x,v), which preserve
// every vertex degree. Two useful facts make hill climbing cheap:
//  * the wedge count is a function of degrees only, so the global
//    clustering coefficient is monotone in the triangle count; and
//  * across edges, the endpoint-degree sums and sums of squares are
//    degree-sequence invariants, so assortativity is monotone in
//    S = sum over edges of deg(u)*deg(v).
// Each candidate swap therefore only needs the triangle delta of the four
// touched edges and the (closed-form) S delta.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "graph/edge_list.h"

namespace gly::datagen {

/// Rewiring targets. Leave an objective disengaged by keeping the weight 0.
struct RewireConfig {
  /// Target global clustering coefficient in [0, 1]; weight 0 disables.
  double target_clustering = 0.0;
  double clustering_weight = 0.0;

  /// Target assortativity in [-1, 1]; weight 0 disables.
  double target_assortativity = 0.0;
  double assortativity_weight = 0.0;

  /// Max candidate swaps to evaluate.
  uint64_t max_iterations = 200000;

  /// Stop early once the weighted objective falls below this.
  double tolerance = 1e-3;

  /// Accept a swap only if it strictly improves the objective (pure hill
  /// climbing). When false, sideways moves are also accepted.
  bool strict_improvement = true;

  uint64_t seed = 7;
};

/// Progress/result statistics of one rewiring run.
struct RewireStats {
  uint64_t iterations = 0;
  uint64_t accepted_swaps = 0;
  double initial_clustering = 0.0;
  double final_clustering = 0.0;
  double initial_assortativity = 0.0;
  double final_assortativity = 0.0;
  double final_objective = 0.0;
};

/// Rewires an undirected simple graph toward the configured targets.
/// The input edge list is interpreted as undirected simple edges (self loops
/// and duplicates are removed first). Degrees are preserved exactly.
class GraphRewirer {
 public:
  explicit GraphRewirer(RewireConfig config) : config_(config) {}

  /// Runs rewiring. Returns the rewired edge list; `stats_out` (optional)
  /// receives run statistics.
  Result<EdgeList> Rewire(const EdgeList& input,
                          RewireStats* stats_out = nullptr) const;

 private:
  RewireConfig config_;
};

}  // namespace gly::datagen
