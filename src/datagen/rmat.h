// RmatGenerator: R-MAT / Graph500-style Kronecker graph generator.
//
// Graph500 — "the de facto benchmarking standard ... limited to a single
// algorithm applied to a synthetic graph model" — generates its input with
// R-MAT. The paper's Figure 4/5 evaluation uses the "Graph500 23" graph
// (scale 23, edge factor 16). We implement the same recursive quadrant
// model (Chakrabarti et al.) with the Graph500 parameters, plus optional
// vertex permutation to destroy the generator's locality artifacts.

#pragma once

#include <cstdint>

#include "common/result.h"
#include "common/threadpool.h"
#include "graph/edge_list.h"

namespace gly::datagen {

/// R-MAT parameters. Defaults are the Graph500 specification.
struct RmatConfig {
  uint32_t scale = 16;        ///< num_vertices = 2^scale
  uint32_t edge_factor = 16;  ///< num_edges = edge_factor * num_vertices
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;            ///< d = 1 - a - b - c
  /// Randomly permute vertex ids (Graph500 requires this so locality does
  /// not leak from the recursive construction).
  bool permute_vertices = true;
  uint64_t seed = 1;
};

/// Generates an R-MAT edge list. Deterministic in (config, seed) and
/// thread-count invariant: each edge is generated from its own derived
/// RNG stream.
class RmatGenerator {
 public:
  explicit RmatGenerator(RmatConfig config) : config_(config) {}

  Status Validate() const;

  /// Generates the raw directed edge list (duplicates and self-loops
  /// possible, as in Graph500; build with dedup or keep the multigraph).
  Result<EdgeList> Generate(ThreadPool* pool = nullptr) const;

  const RmatConfig& config() const { return config_; }

 private:
  RmatConfig config_;
};

}  // namespace gly::datagen
