// Structure-targeted generation — the full §2.2 pipeline.
//
// "for Graphalytics we plan to extend the current windowed based edge
// generation process of Datagen, to allow the generation of graphs with a
// target average clustering coefficient, but also to decide whether the
// assortativity is positive or negative, while preserving the degree
// distribution of the graph."
//
// Pipeline:
//   1. base graph from the windowed SocialDatagen (a fraction of the edge
//      budget);
//   2. triad-closure edges (Holme–Kim-style wedge closing) spend the rest
//      of the budget; the split is tuned by bisection until the average
//      clustering coefficient lands near the target — random rewiring alone
//      cannot reach the high clustering of e.g. the Amazon graph (0.42) in
//      reasonable time because triangle-creating swaps are rare;
//   3. degree-preserving hill-climbing rewiring (rewire.h) with a combined
//      objective pushes assortativity to the requested value while holding
//      the achieved clustering.
//
// Used by the Table 1 bench to synthesize stand-ins for the five SNAP
// graphs (see DESIGN.md's substitution table).

#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/threadpool.h"
#include "graph/edge_list.h"

namespace gly::datagen {

/// Target characteristics (the Table 1 columns).
struct StructureTargets {
  uint64_t num_vertices = 10000;
  uint64_t num_edges = 40000;
  double target_average_clustering = 0.1;
  double target_assortativity = 0.0;
  /// Degree plugin for the base graph.
  std::string degree_spec = "zeta:alpha=2.0,max=1000";
  uint64_t seed = 5;

  /// Tuning effort.
  uint32_t closure_bisection_steps = 5;
  uint64_t rewire_iterations = 60000;
};

/// What the pipeline achieved.
struct StructureResult {
  EdgeList edges;
  double average_clustering = 0.0;
  double global_clustering = 0.0;
  double assortativity = 0.0;
  double closure_fraction_used = 0.0;
};

/// Runs the pipeline. `pool` parallelizes generation and measurement.
Result<StructureResult> GenerateWithTargets(const StructureTargets& targets,
                                            ThreadPool* pool = nullptr);

}  // namespace gly::datagen
