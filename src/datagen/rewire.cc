#include "datagen/rewire.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace gly::datagen {

namespace {

// Mutable adjacency-set view of an undirected simple graph, maintaining the
// edge array (for uniform edge sampling), triangle count, and
// S = sum over edges of deg(u)*deg(v).
class MutableGraph {
 public:
  explicit MutableGraph(const EdgeList& input) {
    EdgeList cleaned = input;
    cleaned.DeduplicateAndDropLoops();
    // Dedup leaves (u,v) and (v,u) as distinct entries if both present;
    // canonicalize to u < v and dedup again.
    std::vector<Edge>& es = cleaned.mutable_edges();
    for (Edge& e : es) {
      if (e.src > e.dst) std::swap(e.src, e.dst);
    }
    std::sort(es.begin(), es.end());
    es.erase(std::unique(es.begin(), es.end()), es.end());

    n_ = cleaned.num_vertices();
    adj_.resize(n_);
    edges_ = es;
    for (const Edge& e : edges_) {
      adj_[e.src].insert(e.dst);
      adj_[e.dst].insert(e.src);
    }
    // Initial triangle count: sum over edges of |N(u) ∩ N(v)| / 3 counts
    // each triangle once per edge => divide by 3.
    uint64_t tri3 = 0;
    for (const Edge& e : edges_) tri3 += CommonNeighbors(e.src, e.dst);
    triangles_ = tri3 / 3;
    // S and the degree-sequence invariants.
    s_ = 0.0;
    sum_d_ = 0.0;
    sum_d2_ = 0.0;
    for (const Edge& e : edges_) {
      double du = Degree(e.src);
      double dv = Degree(e.dst);
      s_ += du * dv;
      sum_d_ += 0.5 * (du + dv);
      sum_d2_ += 0.5 * (du * du + dv * dv);
    }
    wedges_ = 0;
    for (VertexId v = 0; v < n_; ++v) {
      uint64_t d = Degree(v);
      wedges_ += d * (d - 1) / 2;
    }
  }

  uint64_t num_edges() const { return edges_.size(); }
  uint64_t Degree(VertexId v) const { return adj_[v].size(); }
  bool HasEdge(VertexId u, VertexId v) const { return adj_[u].count(v) > 0; }

  uint64_t CommonNeighbors(VertexId u, VertexId v) const {
    const auto& a = adj_[u].size() <= adj_[v].size() ? adj_[u] : adj_[v];
    const auto& b = adj_[u].size() <= adj_[v].size() ? adj_[v] : adj_[u];
    uint64_t c = 0;
    for (VertexId w : a) {
      if (b.count(w)) ++c;
    }
    return c;
  }

  double GlobalClustering() const {
    return wedges_ == 0
               ? 0.0
               : 3.0 * static_cast<double>(triangles_) /
                     static_cast<double>(wedges_);
  }

  double Assortativity() const {
    double m = 2.0 * static_cast<double>(edges_.size());
    if (m < 2.0) return 0.0;
    // Each undirected edge contributes both orientations; the symmetric
    // sums below already fold that in (s_, sum_d_, sum_d2_ are per-edge).
    double mm = static_cast<double>(edges_.size());
    double mean = sum_d_ / mm;
    double num = s_ / mm - mean * mean;
    double den = sum_d2_ / mm - mean * mean;
    return den <= 0.0 ? 0.0 : num / den;
  }

  uint64_t triangles() const { return triangles_; }
  double s() const { return s_; }

  /// Attempts the double-edge swap (a,b),(c,d) -> (a,d),(c,b).
  /// Returns false (no mutation) if it would create a loop or multi-edge.
  /// On success updates adjacency, the edge array entries ei/ej, triangle
  /// count, and S.
  bool TrySwap(size_t ei, size_t ej) {
    Edge& e1 = edges_[ei];
    Edge& e2 = edges_[ej];
    VertexId a = e1.src, b = e1.dst, c = e2.src, d = e2.dst;
    if (a == c || a == d || b == c || b == d) return false;
    if (HasEdge(a, d) || HasEdge(c, b)) return false;

    // Triangle delta: removing (a,b) removes |N(a)∩N(b)| triangles, etc.
    // Order matters: compute removals before mutating, additions after
    // removals.
    int64_t delta = 0;
    delta -= static_cast<int64_t>(CommonNeighbors(a, b));
    delta -= static_cast<int64_t>(CommonNeighbors(c, d));
    RemoveEdge(a, b);
    RemoveEdge(c, d);
    delta += static_cast<int64_t>(CommonNeighbors(a, d));
    delta += static_cast<int64_t>(CommonNeighbors(c, b));
    AddEdge(a, d);
    AddEdge(c, b);
    triangles_ = static_cast<uint64_t>(static_cast<int64_t>(triangles_) + delta);

    // S delta (degrees unchanged).
    double da = Degree(a), db = Degree(b), dc = Degree(c), dd = Degree(d);
    s_ += da * dd + dc * db - da * db - dc * dd;

    e1 = Edge{std::min(a, d), std::max(a, d)};
    e2 = Edge{std::min(c, b), std::max(c, b)};
    return true;
  }

  /// Reverts a swap previously performed on the same indices. The caller
  /// passes the original edges.
  void RevertSwap(size_t ei, size_t ej, Edge orig1, Edge orig2) {
    Edge cur1 = edges_[ei];
    Edge cur2 = edges_[ej];
    int64_t delta = 0;
    delta -= static_cast<int64_t>(CommonNeighbors(cur1.src, cur1.dst));
    delta -= static_cast<int64_t>(CommonNeighbors(cur2.src, cur2.dst));
    RemoveEdge(cur1.src, cur1.dst);
    RemoveEdge(cur2.src, cur2.dst);
    delta += static_cast<int64_t>(CommonNeighbors(orig1.src, orig1.dst));
    delta += static_cast<int64_t>(CommonNeighbors(orig2.src, orig2.dst));
    AddEdge(orig1.src, orig1.dst);
    AddEdge(orig2.src, orig2.dst);
    triangles_ = static_cast<uint64_t>(static_cast<int64_t>(triangles_) + delta);

    double d1 = static_cast<double>(Degree(orig1.src)) * Degree(orig1.dst);
    double d2 = static_cast<double>(Degree(orig2.src)) * Degree(orig2.dst);
    double c1 = static_cast<double>(Degree(cur1.src)) * Degree(cur1.dst);
    double c2 = static_cast<double>(Degree(cur2.src)) * Degree(cur2.dst);
    s_ += d1 + d2 - c1 - c2;

    edges_[ei] = orig1;
    edges_[ej] = orig2;
  }

  EdgeList ToEdgeList() const {
    EdgeList out(n_);
    out.Reserve(edges_.size());
    for (const Edge& e : edges_) out.Add(e.src, e.dst);
    return out;
  }

  const std::vector<Edge>& edges() const { return edges_; }

 private:
  void AddEdge(VertexId u, VertexId v) {
    adj_[u].insert(v);
    adj_[v].insert(u);
  }
  void RemoveEdge(VertexId u, VertexId v) {
    adj_[u].erase(v);
    adj_[v].erase(u);
  }

  VertexId n_ = 0;
  std::vector<std::unordered_set<VertexId>> adj_;
  std::vector<Edge> edges_;
  uint64_t triangles_ = 0;
  uint64_t wedges_ = 0;
  double s_ = 0.0;
  double sum_d_ = 0.0;
  double sum_d2_ = 0.0;
};

}  // namespace

Result<EdgeList> GraphRewirer::Rewire(const EdgeList& input,
                                      RewireStats* stats_out) const {
  if (config_.clustering_weight < 0 || config_.assortativity_weight < 0) {
    return Status::InvalidArgument("rewire weights must be non-negative");
  }
  MutableGraph g(input);
  if (g.num_edges() < 2) {
    if (stats_out != nullptr) *stats_out = RewireStats{};
    return g.ToEdgeList();
  }

  auto objective = [this, &g]() {
    double obj = 0.0;
    if (config_.clustering_weight > 0.0) {
      double diff = g.GlobalClustering() - config_.target_clustering;
      obj += config_.clustering_weight * diff * diff;
    }
    if (config_.assortativity_weight > 0.0) {
      double diff = g.Assortativity() - config_.target_assortativity;
      obj += config_.assortativity_weight * diff * diff;
    }
    return obj;
  };

  RewireStats stats;
  stats.initial_clustering = g.GlobalClustering();
  stats.initial_assortativity = g.Assortativity();

  Rng rng(config_.seed);
  double current = objective();
  for (uint64_t iter = 0; iter < config_.max_iterations; ++iter) {
    ++stats.iterations;
    if (current <= config_.tolerance) break;
    size_t ei = static_cast<size_t>(rng.NextBounded(g.num_edges()));
    size_t ej = static_cast<size_t>(rng.NextBounded(g.num_edges()));
    if (ei == ej) continue;
    Edge orig1 = g.edges()[ei];
    Edge orig2 = g.edges()[ej];
    if (!g.TrySwap(ei, ej)) continue;
    double cand = objective();
    bool accept = config_.strict_improvement ? cand < current : cand <= current;
    if (accept) {
      current = cand;
      ++stats.accepted_swaps;
    } else {
      g.RevertSwap(ei, ej, orig1, orig2);
    }
  }

  stats.final_clustering = g.GlobalClustering();
  stats.final_assortativity = g.Assortativity();
  stats.final_objective = current;
  if (stats_out != nullptr) *stats_out = stats;
  return g.ToEdgeList();
}

}  // namespace gly::datagen
