#include "datagen/runner.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace gly::datagen {

namespace fs = std::filesystem;

void DiskThrottle::Consume(uint64_t bytes) {
  if (bytes_per_s_ <= 0.0) return;
  double sleep_s = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    debt_seconds_ += static_cast<double>(bytes) / bytes_per_s_;
    // Sleep in chunks once debt accumulates past 1 ms, so tiny writes do
    // not oversleep from timer granularity.
    if (debt_seconds_ > 1e-3) {
      sleep_s = debt_seconds_;
      debt_seconds_ = 0.0;
    }
  }
  if (sleep_s > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
  }
}

Result<DatagenRunResult> RunDatagenJob(const DatagenRunConfig& config) {
  if (config.output_dir.empty()) {
    return Status::InvalidArgument("output_dir must be set");
  }
  const uint32_t nodes =
      config.mode == RunMode::kCluster ? std::max(1u, config.num_nodes) : 1;
  const uint32_t total_threads = nodes * std::max(1u, config.threads_per_node);

  std::error_code ec;
  fs::create_directories(config.output_dir, ec);
  if (ec) {
    return Status::IOError("cannot create output dir: " + config.output_dir);
  }

  DatagenRunResult result;
  Stopwatch total;

  // Simulated coordination overhead (cluster only): one charge per phase.
  if (config.mode == RunMode::kCluster) {
    result.overhead_seconds =
        config.cluster_phase_overhead_s * config.num_phases;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(result.overhead_seconds));
  }

  // CPU-bound pipeline.
  Stopwatch gen_watch;
  ThreadPool pool(total_threads);
  SocialDatagen generator(config.datagen);
  GLY_ASSIGN_OR_RETURN(SocialGraph graph, generator.Generate(&pool));
  result.generate_seconds = gen_watch.ElapsedSeconds();
  result.num_persons = config.datagen.num_persons;
  result.num_edges = graph.edges.num_edges();

  // Output phase: edges partitioned across nodes, each node writing its
  // part file through its own DiskThrottle, nodes in parallel.
  Stopwatch write_watch;
  std::vector<std::unique_ptr<DiskThrottle>> throttles;
  throttles.reserve(nodes);
  for (uint32_t i = 0; i < nodes; ++i) {
    throttles.push_back(std::make_unique<DiskThrottle>(config.disk_mib_per_s));
  }
  const auto& edges = graph.edges.edges();
  const uint64_t per_node = (edges.size() + nodes - 1) / nodes;
  std::vector<std::future<Result<uint64_t>>> parts;
  for (uint32_t node = 0; node < nodes; ++node) {
    parts.push_back(pool.Submit([&, node]() -> Result<uint64_t> {
      const uint64_t begin = static_cast<uint64_t>(node) * per_node;
      const uint64_t end =
          std::min<uint64_t>(edges.size(), begin + per_node);
      std::string path =
          config.output_dir + "/" + StringPrintf("part-%05u.bin", node);
      std::ofstream out(path, std::ios::binary);
      if (!out) return Status::IOError("cannot open " + path);
      uint64_t written = 0;
      constexpr uint64_t kChunkEdges = 64 * 1024;
      for (uint64_t i = begin; i < end; i += kChunkEdges) {
        uint64_t count = std::min<uint64_t>(kChunkEdges, end - i);
        uint64_t bytes = count * sizeof(Edge);
        out.write(reinterpret_cast<const char*>(edges.data() + i),
                  static_cast<std::streamsize>(bytes));
        throttles[node]->Consume(bytes);
        written += bytes;
      }
      out.flush();
      if (!out) return Status::IOError("write failed: " + path);
      return written;
    }));
  }
  // Drain every writer before acting on failures: the task lambdas
  // reference this frame's locals, so an early return would dangle.
  Status write_status = Status::OK();
  for (auto& f : parts) {
    Result<uint64_t> written = f.get();
    if (written.ok()) {
      result.bytes_written += *written;
    } else if (write_status.ok()) {
      write_status = written.status();
    }
  }
  GLY_RETURN_NOT_OK(write_status);
  result.write_seconds = write_watch.ElapsedSeconds();
  result.wall_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace gly::datagen
