// SocialDatagen: the LDBC-SNB-style social network generator.
//
// Reproduces the person-knows-person generation pipeline of Datagen/S3G2
// (Pham, Boncz, Erling, TPCTC 2012) as used by Graphalytics:
//
//  1. Person generation — each person gets correlated attributes
//     (location, university, interest): university choice is correlated
//     with location, interest is drawn from a shared Zipfian pool. This is
//     S3G2's "nodes are structurally correlated based on their attributes".
//  2. Degree assignment — a pluggable degree distribution (degree_plugin.h)
//     assigns each person a target number of "knows" edges.
//  3. Windowed correlated edge generation — multiple passes; in each pass
//     persons are sorted along one correlation dimension (university,
//     interest, random) and edge stubs are paired within a bounded sliding
//     window of the sorted order. Pairing within a window connects persons
//     with similar attributes (community structure); the final random pass
//     adds long-range edges. Stub pairing preserves the sampled degree
//     sequence up to duplicate/self-loop losses, which is what lets the
//     plugins reproduce their distributions (paper Figure 1).
//
// The whole pipeline is deterministic for a fixed (config, seed): every
// random decision draws from an Rng seeded by DeriveSeed(seed, stable_id),
// never from shared mutable state — so block-parallel execution returns
// bit-identical graphs regardless of thread count ("it is deterministic,
// guaranteeing reproducible results and fair comparisons").

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/threadpool.h"
#include "datagen/degree_plugin.h"
#include "graph/edge_list.h"

namespace gly::datagen {

/// Attributes of one generated person (the correlation dimensions).
struct Person {
  uint32_t location = 0;
  uint32_t university = 0;
  uint32_t interest = 0;
};

/// Generator parameters.
struct SocialDatagenConfig {
  /// Number of persons (vertices).
  uint64_t num_persons = 10000;

  /// Degree plugin spec (see MakeDegreePlugin), e.g. "zeta:alpha=1.7".
  std::string degree_spec = "facebook:mean=20";

  /// Sliding-window size in stubs for the correlated passes.
  uint64_t window_size = 512;

  /// Fraction of each person's degree budget spent per pass. Must sum to
  /// <= 1; the remainder is dropped. Defaults mirror Datagen's split:
  /// most edges correlated, a minority fully random.
  double university_fraction = 0.45;
  double interest_fraction = 0.35;
  double random_fraction = 0.20;

  /// Attribute-space sizes.
  uint32_t num_locations = 50;
  uint32_t universities_per_location = 20;
  uint32_t num_interests = 1000;

  /// Zipf exponent for attribute popularity (locations/interests are
  /// skewed in real social networks).
  double attribute_zipf_alpha = 1.3;

  /// Master seed.
  uint64_t seed = 42;
};

/// Output of a generation run.
struct SocialGraph {
  EdgeList edges;               ///< undirected person-knows-person edges
  std::vector<Person> persons;  ///< per-vertex attributes
};

/// The generator. Thread-safe for concurrent Generate calls with distinct
/// configs.
class SocialDatagen {
 public:
  explicit SocialDatagen(SocialDatagenConfig config);

  /// Validates the config.
  Status Validate() const;

  /// Runs the full pipeline on `pool` (or single-threaded when null).
  Result<SocialGraph> Generate(ThreadPool* pool = nullptr) const;

  /// Step 1 only: persons with correlated attributes.
  std::vector<Person> GeneratePersons(ThreadPool* pool) const;

  /// Step 2 only: per-person target degrees.
  std::vector<uint32_t> SampleDegrees(const DegreePlugin& plugin,
                                      ThreadPool* pool) const;

  const SocialDatagenConfig& config() const { return config_; }

 private:
  SocialDatagenConfig config_;
};

}  // namespace gly::datagen
