// The five Graphalytics algorithms as Pregel vertex programs.
//
// Semantics match ref/algorithms.h exactly (the Output Validator compares
// them verbatim); the implementations mirror how the Graphalytics Giraph
// driver writes them:
//   * BFS  — level propagation with a min combiner.
//   * CONN — HashMin label propagation with a min combiner.
//   * CD   — synchronous Leung-style label propagation; messages carry
//            (label, score) pairs, no combiner (the adoption rule needs the
//            full multiset).
//   * STATS— two supersteps: vertices exchange adjacency lists, then count
//            neighbor-pair links (the canonical Giraph LCC pattern; the
//            heavy vector messages are exactly its network choke point).
//   * EVO  — forest fires distributed across workers; each fire replays the
//            shared deterministic burn (see DESIGN.md on the batched model).

#pragma once

#include "pregel/engine.h"
#include "ref/algorithms.h"

namespace gly::pregel {

/// Runs `kind` on `graph` with this engine; returns validator-comparable
/// output. `stats_out` (optional) receives BSP run statistics.
Result<AlgorithmOutput> RunAlgorithm(const Engine& engine, const Graph& graph,
                                     AlgorithmKind kind,
                                     const AlgorithmParams& params,
                                     RunStats* stats_out = nullptr);

/// Individual entry points (used by tests and the ablation benches).
Result<AlgorithmOutput> RunBfs(const Engine& engine, const Graph& graph,
                               const BfsParams& params,
                               RunStats* stats_out = nullptr);
Result<AlgorithmOutput> RunConn(const Engine& engine, const Graph& graph,
                                RunStats* stats_out = nullptr);
Result<AlgorithmOutput> RunCd(const Engine& engine, const Graph& graph,
                              const CdParams& params,
                              RunStats* stats_out = nullptr);
Result<AlgorithmOutput> RunStatsAlgorithm(const Engine& engine, const Graph& graph,
                                 RunStats* stats_out = nullptr);
Result<AlgorithmOutput> RunEvo(const Engine& engine, const Graph& graph,
                               const EvoParams& params,
                               RunStats* stats_out = nullptr);
Result<AlgorithmOutput> RunPr(const Engine& engine, const Graph& graph,
                              const PrParams& params,
                              RunStats* stats_out = nullptr);

/// BFS without the min combiner — the ablation_network experiment
/// (quantifies the "excessive network utilization" choke point).
Result<AlgorithmOutput> RunBfsNoCombiner(const Engine& engine,
                                         const Graph& graph,
                                         const BfsParams& params,
                                         RunStats* stats_out = nullptr);

}  // namespace gly::pregel
