// Pregel/BSP engine — the "Giraph" substrate.
//
// Implements the Pregel programming model (Malewicz et al., SIGMOD 2010) the
// paper benchmarks through Apache Giraph: vertex-centric computation in
// supersteps separated by synchronization barriers; vertices exchange
// messages, vote to halt, and are reactivated by incoming messages.
//
// Distribution is simulated: vertices are partitioned across `num_workers`
// logical workers executed by a thread pool. The engine accounts network
// traffic (messages whose endpoints live on different workers) and can
// inject a bandwidth/latency cost model, which makes the paper's
// choke points measurable:
//   * "excessive network utilization" — per-superstep cross-worker bytes,
//     reducible with message combiners (ablation_network bench);
//   * "skewed execution intensity" — per-superstep active-vertex counts and
//     per-worker compute imbalance (ablation_skew bench);
//   * "large graph memory footprint" — graph + message memory is charged
//     against a MemoryBudget; exceeding it aborts the run with
//     ResourceExhausted, which the harness reports as a failure (the
//     paper's "missing values").
//
// Determinism: per-vertex inboxes are either combined with an associative,
// commutative combiner or passed as unordered batches to Compute; every
// algorithm in pregel/algorithms.h is written to be order-independent, so
// results are identical across thread counts.

#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/cancellation.h"
#include "common/checkpoint.h"
#include "common/fault_injection.h"
#include "common/macros.h"
#include "common/memory_budget.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/stopwatch.h"
#include "common/threadpool.h"
#include "common/perf_counters.h"
#include "common/trace.h"
#include "graph/graph.h"
#include "graph/partition.h"

namespace gly::pregel {

/// Pregel aggregators: named global values every vertex can contribute to
/// during a superstep; the combined result is visible to all vertices in
/// the *next* superstep (and to the caller after the run). Sum/min/max
/// over doubles, matching the common Giraph aggregators.
class Aggregators {
 public:
  enum class Kind { kSum, kMin, kMax };

  /// Registers an aggregator before the run. Re-registering is a no-op.
  void Register(const std::string& name, Kind kind) {
    kinds_.emplace(name, kind);
    current_.emplace(name, Identity(kind));
    next_.emplace(name, Identity(kind));
  }

  /// Contribution from a vertex (thread-safe via per-worker partials; this
  /// object is only touched through WorkerView during compute).
  void Combine(std::map<std::string, double>* partial,
               const std::string& name, double value) const {
    auto kind_it = kinds_.find(name);
    if (kind_it == kinds_.end()) return;  // unregistered: dropped
    auto [it, inserted] = partial->emplace(name, value);
    if (!inserted) it->second = Fold(kind_it->second, it->second, value);
  }

  /// Value aggregated during the previous superstep.
  double Get(const std::string& name) const {
    auto it = current_.find(name);
    return it == current_.end() ? 0.0 : it->second;
  }

  /// Epoch values as of the last barrier (checkpoint serialization).
  const std::map<std::string, double>& CurrentValues() const {
    return current_;
  }

  /// Restores epoch values from a checkpoint; unregistered names are
  /// dropped (engine-internal, used only on rollback recovery).
  void RestoreCurrentValues(const std::map<std::string, double>& values) {
    for (const auto& [name, value] : values) {
      auto it = current_.find(name);
      if (it != current_.end()) it->second = value;
    }
  }

  /// Merges worker partials and rolls the epoch (engine-internal).
  void EndSuperstep(const std::vector<std::map<std::string, double>>& partials) {
    for (auto& [name, value] : next_) value = Identity(kinds_.at(name));
    for (const auto& partial : partials) {
      for (const auto& [name, value] : partial) {
        auto kind_it = kinds_.find(name);
        if (kind_it == kinds_.end()) continue;
        next_[name] = Fold(kind_it->second, next_[name], value);
      }
    }
    current_ = next_;
  }

 private:
  static double Identity(Kind kind) {
    switch (kind) {
      case Kind::kSum: return 0.0;
      case Kind::kMin: return std::numeric_limits<double>::infinity();
      case Kind::kMax: return -std::numeric_limits<double>::infinity();
    }
    return 0.0;
  }
  static double Fold(Kind kind, double a, double b) {
    switch (kind) {
      case Kind::kSum: return a + b;
      case Kind::kMin: return std::min(a, b);
      case Kind::kMax: return std::max(a, b);
    }
    return a;
  }

  std::map<std::string, Kind> kinds_;
  std::map<std::string, double> current_;
  std::map<std::string, double> next_;
};

/// Approximate wire size of one message (for network accounting).
template <typename M>
uint64_t MessageWireBytes(const M&) {
  return sizeof(M);
}
template <typename T>
uint64_t MessageWireBytes(const std::vector<T>& m) {
  return sizeof(uint32_t) + m.size() * sizeof(T);
}

/// Whether a vertex-value/message type can round-trip through the
/// checkpoint serializer: trivially copyable scalars/structs, and vectors
/// thereof (covers every program shipped in pregel/algorithms.h).
template <typename T>
inline constexpr bool kCheckpointSerializable = std::is_trivially_copyable_v<T>;
template <typename T>
inline constexpr bool kCheckpointSerializable<std::vector<T>> =
    kCheckpointSerializable<T>;

namespace detail {

template <typename T>
  requires std::is_trivially_copyable_v<T>
void CkptPutValue(CheckpointEncoder& enc, const T& v) {
  enc.PutRaw(v);
}

template <typename T>
void CkptPutValue(CheckpointEncoder& enc, const std::vector<T>& v) {
  enc.PutU64(v.size());
  if constexpr (std::is_trivially_copyable_v<T>) {
    enc.PutBytes(v.data(), v.size() * sizeof(T));
  } else {
    for (const T& x : v) CkptPutValue(enc, x);
  }
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
bool CkptGetValue(CheckpointDecoder& dec, T* v) {
  return dec.GetRaw(v);
}

template <typename T>
bool CkptGetValue(CheckpointDecoder& dec, std::vector<T>* v) {
  uint64_t size = 0;
  if (!dec.GetU64(&size)) return false;
  if constexpr (std::is_trivially_copyable_v<T>) {
    if (size > dec.remaining() / sizeof(T)) return false;
    v->resize(size);
    return size == 0 || dec.GetBytes(v->data(), size * sizeof(T));
  } else {
    if (size > dec.remaining()) return false;  // every element costs >=1 byte
    v->clear();
    v->resize(size);
    for (uint64_t i = 0; i < size; ++i) {
      if (!CkptGetValue(dec, &(*v)[i])) return false;
    }
    return true;
  }
}

}  // namespace detail

/// Vertex-to-worker assignment policy.
enum class PartitioningPolicy {
  kHash,      ///< multiplicative hash (Giraph default)
  kBalanced,  ///< greedy degree-aware balancing (the §2.1 skew mitigation)
};

/// Superstep checkpointing (rollback recovery). When enabled, the engine
/// snapshots vertex values, halt flags, pending messages, and aggregator
/// state every `interval` supersteps (atomic, checksummed — see
/// common/checkpoint.h). A fault-injected worker crash or barrier failure
/// then rolls back to the last snapshot and replays from there instead of
/// failing the run, up to `max_recoveries` times.
struct CheckpointPolicy {
  /// Checkpoint every N supersteps; 0 disables checkpointing.
  uint32_t interval = 0;

  /// Directory for snapshot files (required when interval > 0).
  std::string directory;

  /// Rollback budget per run; a crash beyond it surfaces as failure.
  uint32_t max_recoveries = 3;
};

/// Engine configuration (one simulated Giraph deployment).
struct EngineConfig {
  /// Logical workers (cluster nodes). Paper testbed: 10 compute machines.
  uint32_t num_workers = 8;

  /// How vertices map to workers.
  PartitioningPolicy partitioning = PartitioningPolicy::kHash;

  /// Real threads executing the workers.
  uint32_t num_threads = 0;  // 0 = hardware concurrency

  /// Memory budget for graph + live messages; 0 = unlimited.
  uint64_t memory_budget_bytes = 0;

  /// Simulated network: cross-worker message bandwidth (MiB/s, 0 = free)
  /// and per-superstep barrier latency (seconds).
  double network_mib_per_s = 0.0;
  double barrier_latency_s = 0.0;

  /// Safety valve.
  uint32_t max_supersteps = 10000;

  /// Dense-frontier fast path: when a superstep's active vertices exceed
  /// this fraction of the graph and the program has a combiner, outgoing
  /// messages are combined into one dense slot per destination vertex at
  /// delivery time instead of materializing per-vertex message vectors —
  /// the §2.1 access-locality optimization for near-full frontiers.
  /// 0 disables the fast path.
  double dense_frontier_threshold = 0.05;

  /// Compute-phase scheduling: vertex ranges of this many vertices are
  /// pulled from a shared queue by the pool threads (work stealing), so a
  /// hub-heavy partition no longer serializes the superstep (the §2.1
  /// skew choke point). 0 restores one fixed task per logical worker.
  /// Message order, and therefore results, are identical either way.
  uint32_t steal_chunk_vertices = 4096;

  /// Hot-path memory model (DESIGN.md §13): recycle outbox and inbox
  /// storage across supersteps — flat arena outboxes, sender-side combining
  /// through an epoch-tagged dense accumulator, and count-then-scatter
  /// delivery into a flat CSR inbox — instead of allocating per-superstep
  /// heap containers and sorting. Results are bit-identical either way;
  /// `false` restores the legacy heap path (kept for the `hotpath` parity
  /// suite and as a memory/speed trade-off knob).
  bool outbox_pool = true;

  /// Superstep checkpoint/rollback policy (disabled by default).
  CheckpointPolicy checkpoint;

  /// Cooperative cancellation (null = unsupervised). Polled at every
  /// superstep boundary and before every compute chunk; the engine bumps
  /// the token's progress heartbeat once per completed superstep. A
  /// cancelled run returns the token's Status (Timeout/Cancelled) with the
  /// partial RunStats accumulated so far.
  CancelToken* cancel = nullptr;
};

/// Per-superstep statistics (skew/network diagnostics).
struct SuperstepStats {
  uint32_t superstep = 0;
  uint64_t active_vertices = 0;
  uint64_t messages_sent = 0;
  uint64_t messages_dropped = 0;  ///< lost to injected faults
  uint64_t cross_worker_messages = 0;
  uint64_t cross_worker_bytes = 0;
  double compute_seconds = 0.0;
  double network_seconds = 0.0;
  /// max worker busy-time / mean worker busy-time (execution skew).
  double worker_imbalance = 1.0;
  /// Messages were delivered through the dense-frontier fast path.
  bool dense_delivery = false;
};

/// Whole-run statistics.
struct RunStats {
  uint32_t supersteps = 0;
  uint64_t total_messages = 0;
  uint64_t total_messages_dropped = 0;
  uint64_t total_cross_worker_bytes = 0;
  double total_seconds = 0.0;
  double network_seconds = 0.0;
  uint64_t peak_memory_bytes = 0;
  // Checkpoint/recovery accounting (zero unless a CheckpointPolicy is set).
  uint32_t checkpoints_written = 0;
  uint32_t checkpoint_failures = 0;   ///< failed snapshot writes (non-fatal)
  uint32_t recoveries = 0;            ///< rollbacks to the last checkpoint
  uint32_t supersteps_replayed = 0;   ///< completed supersteps re-executed
  double checkpoint_seconds = 0.0;
  /// Supersteps whose messages took the dense-frontier fast path.
  uint32_t dense_supersteps = 0;
  /// Peak bytes held by the recycled outbox/inbox arenas (pooled mode
  /// only; the legacy heap path reports 0).
  uint64_t outbox_bytes_peak = 0;
  std::vector<SuperstepStats> per_superstep;
};

/// A vertex program: V = vertex value, M = message type.
/// Subclasses override Init and Compute. All member functions must be
/// thread-safe (they run concurrently for distinct vertices).
template <typename V, typename M>
class VertexProgram {
 public:
  virtual ~VertexProgram() = default;

  /// Context handed to Compute for one vertex in one superstep.
  class Context {
   public:
    Context(const Graph* graph, VertexId vertex, uint32_t superstep, V* value,
            std::vector<std::pair<VertexId, M>>* outbox, bool* halted,
            const Aggregators* aggregators = nullptr,
            std::map<std::string, double>* aggregator_partial = nullptr)
        : graph_(graph),
          vertex_(vertex),
          superstep_(superstep),
          value_(value),
          outbox_(outbox),
          halted_(halted),
          aggregators_(aggregators),
          aggregator_partial_(aggregator_partial) {}

    VertexId vertex() const { return vertex_; }
    uint32_t superstep() const { return superstep_; }
    V& value() { return *value_; }
    const Graph& graph() const { return *graph_; }

    std::span<const VertexId> out_neighbors() const {
      return graph_->OutNeighbors(vertex_);
    }

    /// Sends `msg` to `target`, delivered next superstep.
    void SendTo(VertexId target, const M& msg) {
      outbox_->emplace_back(target, msg);
    }

    /// Sends `msg` to all out-neighbors.
    void SendToNeighbors(const M& msg) {
      for (VertexId w : out_neighbors()) outbox_->emplace_back(w, msg);
    }

    /// Votes to halt; the vertex is reactivated by an incoming message.
    void VoteToHalt() { *halted_ = true; }

    /// Contributes to a registered aggregator (visible next superstep).
    void AggregateValue(const std::string& name, double value) {
      if (aggregators_ != nullptr && aggregator_partial_ != nullptr) {
        aggregators_->Combine(aggregator_partial_, name, value);
      }
    }

    /// Reads an aggregator's value from the *previous* superstep.
    double GetAggregate(const std::string& name) const {
      return aggregators_ != nullptr ? aggregators_->Get(name) : 0.0;
    }

   private:
    const Graph* graph_;
    VertexId vertex_;
    uint32_t superstep_;
    V* value_;
    std::vector<std::pair<VertexId, M>>* outbox_;
    bool* halted_;
    const Aggregators* aggregators_;
    std::map<std::string, double>* aggregator_partial_;
  };

  /// Initial vertex value (superstep 0 runs Compute on every vertex).
  virtual V Init(const Graph& graph, VertexId v) = 0;

  /// One superstep of computation for an active vertex. The message span
  /// views engine-owned inbox storage (per-vertex vectors, one dense slot,
  /// or a flat CSR segment depending on the delivery path) and is valid
  /// only for the duration of the call.
  virtual void Compute(Context& ctx, std::span<const M> messages) = 0;

  /// Optional associative+commutative message combiner. Returning a
  /// function enables combining at the sender (reduces network bytes, the
  /// ablation_network experiment).
  virtual std::optional<std::function<M(const M&, const M&)>> Combiner() const {
    return std::nullopt;
  }

  /// Registers the program's aggregators before superstep 0.
  virtual void RegisterAggregators(Aggregators*) const {}
};

/// Result of Engine::Run.
template <typename V>
struct RunOutput {
  std::vector<V> values;
  RunStats stats;
  Aggregators aggregators;  ///< final aggregator values
};

/// The BSP engine.
class Engine {
 public:
  explicit Engine(EngineConfig config) : config_(config) {}

  const EngineConfig& config() const { return config_; }

  /// Runs `program` on `graph` to halt (all vertices halted, no messages in
  /// flight) or to max_supersteps. Fails with ResourceExhausted if the
  /// memory budget is exceeded. `partial_stats` (optional) receives the
  /// stats accumulated so far when the run is cooperatively cancelled —
  /// the success path leaves it untouched (stats arrive in the output).
  template <typename V, typename M>
  Result<RunOutput<V>> Run(const Graph& graph, VertexProgram<V, M>* program,
                           RunStats* partial_stats = nullptr) const {
    GLY_FAULT_POINT("pregel.run.start");
    GLY_RETURN_NOT_OK(CheckCancel(config_.cancel));
    const VertexId n = graph.num_vertices();
    const uint32_t workers = std::max(1u, config_.num_workers);
    const uint32_t threads = config_.num_threads != 0
                                 ? config_.num_threads
                                 : static_cast<uint32_t>(HardwareThreads());
    MemoryBudget budget(config_.memory_budget_bytes);

    // The graph is replicated state on every worker in Giraph-like systems
    // only for small worker counts; realistically each worker stores its
    // partition. We charge the CSR once (partitioned storage).
    GLY_RETURN_NOT_OK(budget.Charge(graph.MemoryBytes(), "graph partitions"));
    GLY_RETURN_NOT_OK(
        budget.Charge(n * (sizeof(V) + 2), "vertex values and flags"));

    std::unique_ptr<Partitioner> partitioner_holder;
    if (config_.partitioning == PartitioningPolicy::kBalanced) {
      partitioner_holder = std::make_unique<BalancedEdgePartitioner>(graph, workers);
    } else {
      partitioner_holder = std::make_unique<HashPartitioner>(workers);
    }
    const Partitioner& partitioner = *partitioner_holder;
    ThreadPool pool(threads);

    RunOutput<V> out;
    out.values.resize(n);
    std::vector<uint8_t> halted(n, 0);
    pool.ParallelForChunked(n, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) {
        out.values[i] = program->Init(graph, static_cast<VertexId>(i));
      }
    });

    auto combiner = program->Combiner();
    Aggregators aggregators;
    program->RegisterAggregators(&aggregators);

    // Inboxes, double-buffered, in one of three representations per
    // superstep: sparse (per-vertex message vectors — the legacy general
    // case), flat (a recycled CSR of offsets + contiguous messages — the
    // pooled general case), or dense (one combined slot + presence flag
    // per vertex — the fast path for near-full frontiers of combinable
    // programs, which skips materializing per-vertex storage entirely).
    const bool pooled = config_.outbox_pool;
    std::vector<std::vector<M>> inbox(pooled ? 0 : n);
    std::vector<std::vector<M>> next_inbox(pooled ? 0 : n);
    bool inbox_dense = false;
    bool next_dense = false;
    std::vector<M> inbox_slots;
    std::vector<M> next_slots;
    std::vector<uint8_t> inbox_has;
    std::vector<uint8_t> next_has;
    // Pooled flat inbox (CSR): messages for vertex v live in
    // inbox_data[inbox_offsets[v] .. inbox_offsets[v+1]). All buffers are
    // recycled across supersteps; they are owned by this activation frame,
    // so cancellation (which returns through cancelled_status) releases
    // them wholesale.
    std::vector<size_t> inbox_offsets(pooled ? n + 1 : 0, 0);
    std::vector<size_t> next_offsets;
    std::vector<M> inbox_data;
    std::vector<M> next_data;
    // Delivery staging for the pooled path: kept (post-fault) messages in
    // delivery order plus per-vertex counts for the count-then-scatter
    // pass, and the sender-side combining accumulator.
    std::vector<std::pair<VertexId, M>> kept;
    std::vector<uint32_t> counts(pooled ? n : 0, 0);
    std::vector<size_t> scatter_cursor;
    arena::FlatAccumulator<M> combine_acc;
    if (pooled && combiner.has_value()) combine_acc.EnsureDomain(n);
    // The delivered inbox in canonical sparse form (checkpointing).
    auto inbox_as_sparse = [&]() -> std::vector<std::vector<M>> {
      std::vector<std::vector<M>> sparse(n);
      if (inbox_dense) {
        for (VertexId v = 0; v < n; ++v) {
          if (inbox_has[v]) sparse[v].push_back(inbox_slots[v]);
        }
      } else if (pooled) {
        for (VertexId v = 0; v < n; ++v) {
          sparse[v].assign(inbox_data.begin() + inbox_offsets[v],
                           inbox_data.begin() + inbox_offsets[v + 1]);
        }
      } else {
        return inbox;
      }
      return sparse;
    };

    // Per-worker vertex lists.
    std::vector<std::vector<VertexId>> worker_vertices(workers);
    for (VertexId v = 0; v < n; ++v) {
      worker_vertices[partitioner.PartitionOf(v)].push_back(v);
    }

    // Work-stealing schedule: each worker's vertex list split into ranges
    // small enough for idle threads to steal. Ranges are merged back in
    // list order after compute, so message order — and every result bit —
    // matches the fixed-partition path.
    struct ChunkRange {
      uint32_t worker;
      uint32_t begin;
      uint32_t end;
    };
    std::vector<ChunkRange> chunk_ranges;
    if (config_.steal_chunk_vertices > 0) {
      const uint32_t chunk = config_.steal_chunk_vertices;
      for (uint32_t w = 0; w < workers; ++w) {
        const uint32_t count =
            static_cast<uint32_t>(worker_vertices[w].size());
        for (uint32_t b = 0; b < count; b += chunk) {
          chunk_ranges.push_back({w, b, std::min(b + chunk, count)});
        }
      }
    }

    Stopwatch total_watch;
    uint64_t live_message_bytes = 0;

    // ------------------------------------------------ checkpoint machinery
    // Snapshots capture the state needed to re-enter superstep `step`:
    // vertex values, halt flags, the delivered inbox, and aggregator epoch
    // values. Recovery counters live in locals because a rollback resets
    // out.stats to the snapshot-time copy.
    constexpr bool can_checkpoint =
        kCheckpointSerializable<V> && kCheckpointSerializable<M>;
    const bool ckpt_enabled = can_checkpoint &&
                              config_.checkpoint.interval > 0 &&
                              !config_.checkpoint.directory.empty();
    const std::string ckpt_path = config_.checkpoint.directory + "/pregel.ckpt";
    bool have_checkpoint = false;
    uint32_t checkpoint_step = 0;  // superstep a rollback re-enters
    RunStats stats_at_checkpoint;
    uint32_t ckpts_written = 0;
    uint32_t ckpt_failures = 0;
    uint32_t recoveries = 0;
    uint32_t replayed = 0;
    double ckpt_seconds = 0.0;
    auto sync_ckpt_stats = [&] {
      out.stats.checkpoints_written = ckpts_written;
      out.stats.checkpoint_failures = ckpt_failures;
      out.stats.recoveries = recoveries;
      out.stats.supersteps_replayed = replayed;
      out.stats.checkpoint_seconds = ckpt_seconds;
    };
    if (ckpt_enabled) {
      // A missing directory would otherwise fail every snapshot write and
      // silently disable recovery for the whole run.
      std::error_code ec;
      std::filesystem::create_directories(config_.checkpoint.directory, ec);
      RemoveCheckpoint(ckpt_path);  // stale prior-run file
    }

    uint32_t step = 0;
    auto write_checkpoint = [&] {
      if constexpr (can_checkpoint) {
        trace::TraceSpan ckpt_span("pregel.checkpoint.write", "pregel");
        ckpt_span.SetAttribute("superstep", uint64_t{step});
        Stopwatch ckpt_watch;
        CheckpointWriter writer;
        CheckpointEncoder meta(writer.AddSection("meta"));
        meta.PutU32(step);
        meta.PutU64(n);
        meta.PutU64(live_message_bytes);
        CheckpointEncoder values(writer.AddSection("values"));
        detail::CkptPutValue(values, out.values);
        CheckpointEncoder halt(writer.AddSection("halted"));
        detail::CkptPutValue(halt, halted);
        CheckpointEncoder msgs(writer.AddSection("inbox"));
        detail::CkptPutValue(msgs, inbox_as_sparse());
        CheckpointEncoder agg(writer.AddSection("aggregators"));
        const auto& agg_values = aggregators.CurrentValues();
        agg.PutU64(agg_values.size());
        for (const auto& [name, value] : agg_values) {
          agg.PutString(name);
          agg.PutDouble(value);
        }
        Status written = writer.WriteTo(ckpt_path);
        ckpt_seconds += ckpt_watch.ElapsedSeconds();
        if (written.ok()) {
          ++ckpts_written;
          have_checkpoint = true;
          checkpoint_step = step;
          sync_ckpt_stats();
          stats_at_checkpoint = out.stats;
        } else {
          // Non-fatal: the previous snapshot (if any) is still the valid
          // recovery point — WriteTo stages and renames atomically.
          ++ckpt_failures;
        }
      }
    };

    auto restore_checkpoint = [&]() -> Status {
      if constexpr (can_checkpoint) {
        trace::TraceSpan restore_span("pregel.checkpoint.restore", "pregel");
        restore_span.SetAttribute("checkpoint_step",
                                  uint64_t{checkpoint_step});
        GLY_ASSIGN_OR_RETURN(CheckpointReader reader,
                             CheckpointReader::Load(ckpt_path));
        GLY_ASSIGN_OR_RETURN(std::string_view meta_raw,
                             reader.Section("meta"));
        CheckpointDecoder meta(meta_raw);
        uint32_t saved_step = 0;
        uint64_t saved_n = 0;
        uint64_t saved_live_bytes = 0;
        if (!meta.GetU32(&saved_step) || !meta.GetU64(&saved_n) ||
            !meta.GetU64(&saved_live_bytes) || saved_n != n ||
            saved_step != checkpoint_step) {
          return Status::Internal("pregel checkpoint metadata mismatch");
        }
        GLY_ASSIGN_OR_RETURN(std::string_view values_raw,
                             reader.Section("values"));
        CheckpointDecoder values(values_raw);
        if (!detail::CkptGetValue(values, &out.values) ||
            out.values.size() != n) {
          return Status::Internal("pregel checkpoint vertex values corrupt");
        }
        GLY_ASSIGN_OR_RETURN(std::string_view halt_raw,
                             reader.Section("halted"));
        CheckpointDecoder halt(halt_raw);
        if (!detail::CkptGetValue(halt, &halted) || halted.size() != n) {
          return Status::Internal("pregel checkpoint halt flags corrupt");
        }
        GLY_ASSIGN_OR_RETURN(std::string_view msgs_raw,
                             reader.Section("inbox"));
        CheckpointDecoder msgs(msgs_raw);
        if (!detail::CkptGetValue(msgs, &inbox) || inbox.size() != n) {
          return Status::Internal("pregel checkpoint inbox corrupt");
        }
        GLY_ASSIGN_OR_RETURN(std::string_view agg_raw,
                             reader.Section("aggregators"));
        CheckpointDecoder agg(agg_raw);
        uint64_t agg_count = 0;
        if (!agg.GetU64(&agg_count)) {
          return Status::Internal("pregel checkpoint aggregators corrupt");
        }
        std::map<std::string, double> agg_values;
        for (uint64_t i = 0; i < agg_count; ++i) {
          std::string name;
          double value = 0.0;
          if (!agg.GetString(&name) || !agg.GetDouble(&value)) {
            return Status::Internal("pregel checkpoint aggregators corrupt");
          }
          agg_values[name] = value;
        }
        aggregators.RestoreCurrentValues(agg_values);
        for (auto& v : next_inbox) v.clear();
        if (pooled) {
          // Re-flatten the canonical sparse snapshot into the recycled CSR
          // buffers (per-vertex order is preserved verbatim).
          inbox_offsets.resize(n + 1);
          inbox_offsets[0] = 0;
          for (VertexId v = 0; v < n; ++v) {
            inbox_offsets[v + 1] = inbox_offsets[v] + inbox[v].size();
          }
          inbox_data.resize(inbox_offsets[n]);
          for (VertexId v = 0; v < n; ++v) {
            std::move(inbox[v].begin(), inbox[v].end(),
                      inbox_data.begin() + inbox_offsets[v]);
          }
          inbox.clear();
          kept.clear();
          std::fill(counts.begin(), counts.end(), 0u);
        }
        // Snapshots always hold the canonical sparse form.
        inbox_dense = false;
        next_dense = false;
        std::fill(inbox_has.begin(), inbox_has.end(), 0);
        std::fill(next_has.begin(), next_has.end(), 0);
        // Swap the message-memory accounting over to the restored inbox.
        budget.Release(live_message_bytes);
        live_message_bytes = 0;
        GLY_RETURN_NOT_OK(
            budget.Charge(saved_live_bytes, "restored superstep messages"));
        live_message_bytes = saved_live_bytes;
        out.stats = stats_at_checkpoint;
        return Status::OK();
      } else {
        return Status::Internal("checkpointing unavailable for this program");
      }
    };

    // On superstep failure: roll back to the last snapshot if the policy
    // allows, returning true and rewinding `step`; otherwise the failure
    // surfaces to the caller.
    auto try_recover = [&]() -> bool {
      if (!ckpt_enabled || !have_checkpoint) return false;
      if (recoveries >= config_.checkpoint.max_recoveries) return false;
      if (!restore_checkpoint().ok()) return false;
      ++recoveries;
      metrics::AddCounter("pregel.recoveries");
      replayed += step - checkpoint_step;
      sync_ckpt_stats();
      step = checkpoint_step;
      return true;
    };

    // Computes one ascending slice of a worker's vertex list into the given
    // outbox/partials. Shared by the fixed-partition and work-stealing
    // dispatchers so both produce bit-identical per-vertex effects; reads
    // whichever inbox representation the previous barrier delivered.
    auto run_range = [&](uint32_t w, uint32_t begin, uint32_t end,
                         std::vector<std::pair<VertexId, M>>* outbox,
                         std::map<std::string, double>* partials) -> uint64_t {
      uint64_t local_active = 0;
      for (uint32_t i = begin; i < end; ++i) {
        const VertexId v = worker_vertices[w][i];
        // The message span views the delivered inbox in place, whatever
        // representation the previous barrier produced: the dense slot,
        // the flat CSR segment, or the per-vertex vector.
        std::span<const M> messages;
        if (inbox_dense) {
          if (inbox_has[v]) messages = {&inbox_slots[v], 1};
        } else if (pooled) {
          messages = {inbox_data.data() + inbox_offsets[v],
                      inbox_offsets[v + 1] - inbox_offsets[v]};
        } else {
          messages = inbox[v];
        }
        if (halted[v] && messages.empty() && step > 0) continue;
        halted[v] = 0;
        ++local_active;
        bool halt_flag = false;
        typename VertexProgram<V, M>::Context ctx(
            &graph, v, step, &out.values[v], outbox, &halt_flag,
            &aggregators, partials);
        program->Compute(ctx, messages);
        if (halt_flag) halted[v] = 1;
      }
      return local_active;
    };

    // Pooled outbox arenas: hoisted out of the superstep loop so clear()
    // recycles their capacity instead of re-allocating every superstep.
    // Ownership across steal chunks: a chunk writes only its own
    // chunk-outbox; the merge into the owning worker's outbox happens on
    // the barrier thread, after every chunk future has completed.
    std::vector<std::vector<std::pair<VertexId, M>>> pooled_outboxes;
    std::vector<std::vector<std::pair<VertexId, M>>> pooled_chunk_outboxes;
    uint64_t outbox_bytes_peak = 0;

    // A cancelled superstep: fold the partial stats out and return the
    // token's status — the harness records a timed-out/stalled cell whose
    // attempt thread it can join, instead of abandoning a runaway one.
    // The pooled arenas are locals of this activation frame, so returning
    // here releases them outright (recycle-within-run, release-on-cancel).
    auto cancelled_status = [&]() -> Status {
      sync_ckpt_stats();
      out.stats.total_seconds = total_watch.ElapsedSeconds();
      out.stats.peak_memory_bytes = budget.peak();
      out.stats.outbox_bytes_peak = outbox_bytes_peak;
      if (partial_stats != nullptr) *partial_stats = out.stats;
      return config_.cancel->ToStatus().WithPrefix(
          "pregel superstep " + std::to_string(step));
    };

    while (step < config_.max_supersteps) {
      if (Cancelled(config_.cancel)) return cancelled_status();
      SuperstepStats ss;
      ss.superstep = step;
      Stopwatch step_watch;
      // One span per superstep *attempt*: an iteration cut short by a
      // crashed worker or barrier fault still closes its span, so a
      // recovered run's timeline shows the failed attempt and its replays.
      trace::TraceSpan step_span("pregel.superstep", "pregel");
      perf::SpanCounters step_counters(&step_span);
      step_span.SetAttribute("superstep", uint64_t{step});

      // Compute phase: each worker processes its active vertices and fills
      // per-worker outboxes (keyed by destination worker for traffic
      // accounting). Pooled mode reuses the hoisted arenas; the legacy
      // path allocates fresh containers every superstep.
      std::vector<std::vector<std::pair<VertexId, M>>> local_outboxes(
          pooled ? 0 : workers);
      auto& outboxes = pooled ? pooled_outboxes : local_outboxes;
      if (pooled) {
        outboxes.resize(workers);
        for (auto& ob : outboxes) ob.clear();
      }
      std::vector<std::map<std::string, double>> aggregator_partials(workers);
      std::vector<double> worker_busy(workers, 0.0);
      std::vector<Status> worker_status(workers);
      std::atomic<uint64_t> active_count{0};
      if (!chunk_ranges.empty()) {
        // Work-stealing dispatch: any pool thread grabs the next undone
        // chunk, so a hub-heavy partition spreads across threads instead of
        // serializing the superstep. Injected worker crashes keep their
        // once-per-worker-per-superstep cadence: statuses are drawn up
        // front and a crashed worker's chunks are skipped, leaving the
        // superstep half-computed exactly like the fixed path.
        for (uint32_t w = 0; w < workers; ++w) {
          worker_status[w] = fault::CheckPoint("pregel.worker.compute");
        }
        const size_t num_chunks = chunk_ranges.size();
        std::vector<std::vector<std::pair<VertexId, M>>> local_chunk_outboxes(
            pooled ? 0 : num_chunks);
        auto& chunk_outboxes =
            pooled ? pooled_chunk_outboxes : local_chunk_outboxes;
        if (pooled) {
          chunk_outboxes.resize(num_chunks);
          for (auto& ob : chunk_outboxes) ob.clear();
        }
        std::vector<std::map<std::string, double>> chunk_partials(num_chunks);
        std::vector<double> chunk_busy(num_chunks, 0.0);
        std::atomic<size_t> cursor{0};
        auto steal_loop = [&] {
          for (size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
               i < num_chunks;
               i = cursor.fetch_add(1, std::memory_order_relaxed)) {
            // Per-chunk cancellation poll: a cancelled superstep stops
            // dispatching within one chunk's worth of compute.
            if (Cancelled(config_.cancel)) return;
            const ChunkRange& c = chunk_ranges[i];
            if (!worker_status[c.worker].ok()) continue;
            Stopwatch busy;
            const uint64_t active =
                run_range(c.worker, c.begin, c.end, &chunk_outboxes[i],
                          &chunk_partials[i]);
            chunk_busy[i] = busy.ElapsedSeconds();
            active_count.fetch_add(active, std::memory_order_relaxed);
          }
        };
        if (pool.num_threads() == 1) {
          // A one-thread pool would run the stealing loops back-to-back
          // anyway; calling them inline skips the queue/future handoff.
          for (uint32_t t = 0; t < workers; ++t) steal_loop();
        } else {
          std::vector<std::future<void>> futures;
          futures.reserve(workers);
          for (uint32_t t = 0; t < workers; ++t) {
            futures.push_back(pool.Submit(steal_loop));
          }
          for (auto& f : futures) f.get();
        }
        // Merge in chunk-index order: a worker's chunks are consecutive and
        // ascend over its vertex list, so concatenation reproduces the
        // fixed-partition outbox — and thus message order — exactly.
        for (size_t i = 0; i < num_chunks; ++i) {
          const ChunkRange& c = chunk_ranges[i];
          auto& dst = outboxes[c.worker];
          dst.insert(dst.end(),
                     std::make_move_iterator(chunk_outboxes[i].begin()),
                     std::make_move_iterator(chunk_outboxes[i].end()));
          for (const auto& [name, value] : chunk_partials[i]) {
            aggregators.Combine(&aggregator_partials[c.worker], name, value);
          }
          worker_busy[c.worker] += chunk_busy[i];
        }
      } else {
        auto worker_task = [&](uint32_t w) {
          Stopwatch busy;
          // Injected worker crash: the worker dies before computing its
          // partition; the engine surfaces the failure after the barrier.
          worker_status[w] = fault::CheckPoint("pregel.worker.compute");
          if (!worker_status[w].ok()) return;
          if (Cancelled(config_.cancel)) return;
          const uint64_t active = run_range(
              w, 0, static_cast<uint32_t>(worker_vertices[w].size()),
              &outboxes[w], &aggregator_partials[w]);
          active_count.fetch_add(active, std::memory_order_relaxed);
          worker_busy[w] = busy.ElapsedSeconds();
        };
        if (pool.num_threads() == 1) {
          // Same FIFO order a one-thread pool would impose, minus the
          // queue/future round trip per worker.
          for (uint32_t w = 0; w < workers; ++w) worker_task(w);
        } else {
          std::vector<std::future<void>> futures;
          futures.reserve(workers);
          for (uint32_t w = 0; w < workers; ++w) {
            futures.push_back(pool.Submit([&, w] { worker_task(w); }));
          }
          for (auto& f : futures) f.get();
        }
      }
      if (Cancelled(config_.cancel)) return cancelled_status();
      Status step_failure;
      for (uint32_t w = 0; w < workers; ++w) {
        if (!worker_status[w].ok()) {
          step_failure = worker_status[w].WithPrefix(
              "pregel superstep " + std::to_string(step) + " worker " +
              std::to_string(w));
          break;
        }
      }
      if (!step_failure.ok()) {
        // A crashed worker left this superstep half-computed; roll the
        // whole state back to the last snapshot and replay from there.
        if (try_recover()) continue;
        return step_failure;
      }
      aggregators.EndSuperstep(aggregator_partials);
      ss.active_vertices = active_count.load();
      ss.compute_seconds = step_watch.ElapsedSeconds();

      // Worker imbalance (skew choke point).
      double max_busy = 0.0;
      double sum_busy = 0.0;
      for (double b : worker_busy) {
        max_busy = std::max(max_busy, b);
        sum_busy += b;
      }
      double mean_busy = sum_busy / workers;
      ss.worker_imbalance = mean_busy > 1e-12 ? max_busy / mean_busy : 1.0;

      // Message delivery phase. Combine at the *sender* when a combiner is
      // available (per destination vertex), then deliver.
      budget.Release(live_message_bytes);
      live_message_bytes = 0;
      for (auto& v : next_inbox) v.clear();

      // Dense-frontier fast path: once the active set passes the threshold
      // (and the program is combinable), deliver into one combined slot +
      // presence flag per vertex instead of materializing per-vertex
      // message vectors. Messages are folded left-to-right in the same
      // worker order the sparse inbox would present them, so results —
      // including floating-point ones — are bit-identical.
      const bool deliver_dense =
          combiner.has_value() && config_.dense_frontier_threshold > 0.0 &&
          n > 0 &&
          static_cast<double>(active_count.load()) >=
              config_.dense_frontier_threshold * static_cast<double>(n);
      if (deliver_dense) {
        next_slots.resize(n);
        next_has.assign(n, 0);
      }

      uint64_t sent = 0;
      uint64_t dropped = 0;
      uint64_t cross = 0;
      uint64_t cross_bytes = 0;
      uint64_t inbox_bytes = 0;
      uint64_t emitted = 0;  ///< outbox entries before sender-side combine
      for (const auto& ob : outboxes) emitted += ob.size();
      // Deliver sequentially per source worker; per-destination-vertex
      // combining keeps inbox sizes O(1) for combinable programs. Both
      // combine implementations fold a target's messages left-to-right in
      // emission order and emit combined entries in ascending target
      // order, so their outputs — including floating-point folds — are
      // bit-identical.
      for (uint32_t w = 0; w < workers; ++w) {
        auto& outbox = outboxes[w];
        if (combiner.has_value()) {
          if (pooled) {
            // Sender-side combine, arena path: fold through the
            // epoch-tagged dense accumulator (no sort of the message
            // stream; only the touched-target list is sorted).
            combine_acc.NewEpoch();
            for (auto& [target, msg] : outbox) {
              if (combine_acc.touched(target)) {
                M& acc = combine_acc.slot(target);
                acc = (*combiner)(acc, msg);
              } else {
                combine_acc.mark(target) = std::move(msg);
              }
            }
            auto& targets = combine_acc.touched_keys();
            outbox.clear();
            if (targets.size() * 16 >= n) {
              // Dense round: a sequential sweep of the key domain emits
              // the same ascending target order as sorting the touched
              // list, without the O(k log k) sort.
              for (size_t target = 0; target < n; ++target) {
                if (!combine_acc.touched(target)) continue;
                outbox.emplace_back(static_cast<VertexId>(target),
                                    std::move(combine_acc.slot(target)));
              }
            } else {
              std::sort(targets.begin(), targets.end());
              for (size_t target : targets) {
                outbox.emplace_back(static_cast<VertexId>(target),
                                    std::move(combine_acc.slot(target)));
              }
            }
          } else {
            // Sender-side combine, legacy path: stable-sort by target,
            // fold runs (stability keeps the per-target fold in emission
            // order, matching the arena path bit-for-bit).
            std::stable_sort(outbox.begin(), outbox.end(),
                             [](const auto& a, const auto& b) {
                               return a.first < b.first;
                             });
            size_t write = 0;
            for (size_t i = 0; i < outbox.size();) {
              VertexId target = outbox[i].first;
              M acc = outbox[i].second;
              size_t j = i + 1;
              while (j < outbox.size() && outbox[j].first == target) {
                acc = (*combiner)(acc, outbox[j].second);
                ++j;
              }
              outbox[write++] = {target, acc};
              i = j;
            }
            outbox.resize(write);
          }
        }
        for (auto& [target, msg] : outbox) {
          if (GLY_FAULT_DROP("pregel.message.deliver")) {
            ++dropped;
            continue;
          }
          ++sent;
          uint64_t wire = MessageWireBytes(msg);
          if (!deliver_dense) inbox_bytes += wire;
          if (partitioner.PartitionOf(target) != w) {
            ++cross;
            cross_bytes += wire + sizeof(VertexId);
          }
          if (deliver_dense) {
            if (next_has[target]) {
              next_slots[target] = (*combiner)(next_slots[target], msg);
            } else {
              next_slots[target] = std::move(msg);
              next_has[target] = 1;
            }
          } else if (pooled) {
            // Count-then-scatter: stage the kept message in delivery
            // order; the scatter below places it into the flat CSR at the
            // same per-vertex position the legacy push_back would.
            ++counts[target];
            kept.emplace_back(target, std::move(msg));
          } else {
            next_inbox[target].push_back(std::move(msg));
          }
        }
      }
      if (pooled && !deliver_dense) {
        // Scatter pass: prefix-sum the per-vertex counts into CSR offsets,
        // then place kept messages — already in (source worker, combined
        // target order / emission order) delivery order — so each vertex's
        // segment reproduces the legacy per-vertex vector verbatim.
        next_offsets.resize(n + 1);
        next_offsets[0] = 0;
        for (VertexId v = 0; v < n; ++v) {
          next_offsets[v + 1] = next_offsets[v] + counts[v];
        }
        next_data.resize(next_offsets[n]);
        scatter_cursor.assign(next_offsets.begin(), next_offsets.end() - 1);
        for (auto& [target, msg] : kept) {
          next_data[scatter_cursor[target]++] = std::move(msg);
        }
        kept.clear();
        std::fill(counts.begin(), counts.end(), 0u);
      }
      if (deliver_dense) {
        // Live bytes are the combined slots actually occupied — the memory
        // the fast path holds instead of the per-message vectors.
        for (VertexId v = 0; v < n; ++v) {
          if (next_has[v]) inbox_bytes += MessageWireBytes(next_slots[v]);
        }
      }
      if (pooled) {
        // Arena telemetry: bytes parked in the recycled buffers right now
        // (capacity, not occupancy — this is what the pool holds between
        // supersteps). Surfaced as `pregel.outbox_bytes_peak`.
        uint64_t pool_bytes = 0;
        for (const auto& ob : outboxes) {
          pool_bytes += ob.capacity() * sizeof(std::pair<VertexId, M>);
        }
        for (const auto& ob : pooled_chunk_outboxes) {
          pool_bytes += ob.capacity() * sizeof(std::pair<VertexId, M>);
        }
        pool_bytes += (inbox_data.capacity() + next_data.capacity() +
                       inbox_slots.capacity() + next_slots.capacity()) *
                      sizeof(M);
        pool_bytes += kept.capacity() * sizeof(std::pair<VertexId, M>);
        pool_bytes += combine_acc.held_bytes();
        outbox_bytes_peak = std::max(outbox_bytes_peak, pool_bytes);
      }
      next_dense = deliver_dense;
      ss.dense_delivery = deliver_dense;
      if (deliver_dense) ++out.stats.dense_supersteps;
      ss.messages_sent = sent;
      ss.messages_dropped = dropped;
      ss.cross_worker_messages = cross;
      ss.cross_worker_bytes = cross_bytes;

      // Charge live messages against the budget (the Giraph OOM mode).
      live_message_bytes = inbox_bytes;
      Status charge = budget.Charge(inbox_bytes, "superstep messages");
      if (!charge.ok()) {
        return charge.WithPrefix("pregel superstep " + std::to_string(step));
      }

      // Simulated network cost: cross-worker bytes over the pipe plus the
      // barrier latency.
      double network_s = config_.barrier_latency_s;
      if (config_.network_mib_per_s > 0.0) {
        network_s += static_cast<double>(ss.cross_worker_bytes) /
                     (config_.network_mib_per_s * (1 << 20));
      }
      if (network_s > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(network_s));
      }
      ss.network_seconds = network_s;

      // Injected barrier faults: a crash here kills the superstep after
      // compute (recoverable from a checkpoint, like a worker crash); a
      // stall models the slow-worker scenario the harness timeout must cut
      // short.
      Status barrier = fault::CheckPoint("pregel.superstep.barrier");
      if (!barrier.ok()) {
        if (try_recover()) continue;
        return barrier.WithPrefix("pregel superstep " + std::to_string(step) +
                                  " barrier");
      }
      // Post-barrier poll: an injected stall sleeps through the deadline
      // here — surface the cancellation before committing the superstep.
      if (Cancelled(config_.cancel)) return cancelled_status();

      inbox.swap(next_inbox);
      inbox_offsets.swap(next_offsets);
      inbox_data.swap(next_data);
      inbox_slots.swap(next_slots);
      inbox_has.swap(next_has);
      inbox_dense = next_dense;
      next_dense = false;

      out.stats.total_messages += sent;
      out.stats.total_messages_dropped += dropped;
      out.stats.total_cross_worker_bytes += ss.cross_worker_bytes;
      out.stats.network_seconds += network_s;
      out.stats.per_superstep.push_back(ss);
      out.stats.supersteps = step + 1;

      step_span.SetAttribute("active", ss.active_vertices);
      step_span.SetAttribute("messages_sent", sent);
      step_span.SetAttribute("dense", deliver_dense ? "true" : "false");
      metrics::AddCounter("pregel.supersteps");
      // Progress heartbeat: one completed superstep. The harness stall
      // watchdog cancels the attempt when this stops advancing.
      if (config_.cancel != nullptr) config_.cancel->Heartbeat();
      metrics::AddCounter("pregel.messages_sent", sent);
      metrics::AddCounter("pregel.messages_dropped", dropped);
      // Messages the sender-side combiner folded away before delivery.
      metrics::AddCounter("pregel.messages_combined", emitted - sent - dropped);
      if (deliver_dense) metrics::AddCounter("pregel.dense_supersteps");
      ++step;

      // Termination: all halted and no messages in flight.
      if (sent == 0) {
        bool all_halted = true;
        for (VertexId v = 0; v < n; ++v) {
          if (!halted[v]) {
            all_halted = false;
            break;
          }
        }
        if (all_halted) break;
      }

      // Snapshot the post-barrier state (the entry state of superstep
      // `step`) on the policy's cadence.
      if (ckpt_enabled && step % config_.checkpoint.interval == 0) {
        write_checkpoint();
      }
    }

    sync_ckpt_stats();
    if (ckpt_enabled) RemoveCheckpoint(ckpt_path);  // run finished cleanly
    out.stats.total_seconds = total_watch.ElapsedSeconds();
    out.stats.peak_memory_bytes = budget.peak();
    out.stats.outbox_bytes_peak = outbox_bytes_peak;
    if (pooled) {
      metrics::SetGauge("pregel.outbox_bytes_peak",
                        static_cast<double>(outbox_bytes_peak));
    }
    out.aggregators = aggregators;
    return out;
  }

 private:
  EngineConfig config_;
};

}  // namespace gly::pregel
