#include "pregel/algorithms.h"

#include <algorithm>
#include <span>

namespace gly::pregel {

namespace {

// ------------------------------------------------------------------- BFS

struct BfsProgram : VertexProgram<int64_t, int64_t> {
  explicit BfsProgram(VertexId source, bool with_combiner)
      : source_(source), with_combiner_(with_combiner) {}

  int64_t Init(const Graph&, VertexId) override { return kUnreachable; }

  void Compute(Context& ctx, std::span<const int64_t> messages) override {
    int64_t best = ctx.value();
    if (ctx.superstep() == 0) {
      if (ctx.vertex() == source_) best = 0;
    }
    for (int64_t m : messages) best = std::min(best, m);
    if (best < ctx.value()) {
      ctx.value() = best;
      ctx.SendToNeighbors(best + 1);
      // Frontier-size aggregator: newly discovered vertices this superstep.
      ctx.AggregateValue("frontier", 1.0);
    }
    ctx.VoteToHalt();
  }

  std::optional<std::function<int64_t(const int64_t&, const int64_t&)>>
  Combiner() const override {
    if (!with_combiner_) return std::nullopt;
    return [](const int64_t& a, const int64_t& b) { return std::min(a, b); };
  }

  void RegisterAggregators(Aggregators* aggregators) const override {
    aggregators->Register("frontier", Aggregators::Kind::kSum);
  }

  VertexId source_;
  bool with_combiner_;
};

// ------------------------------------------------------------------ CONN

struct ConnProgram : VertexProgram<int64_t, int64_t> {
  int64_t Init(const Graph&, VertexId v) override {
    return static_cast<int64_t>(v);
  }

  void Compute(Context& ctx, std::span<const int64_t> messages) override {
    int64_t best = ctx.value();
    for (int64_t m : messages) best = std::min(best, m);
    const bool changed = best < ctx.value() || ctx.superstep() == 0;
    ctx.value() = best;
    if (changed) {
      // HashMin must reach the whole weakly-connected neighborhood: on
      // directed graphs propagate against edge direction too.
      ctx.SendToNeighbors(best);
      if (!ctx.graph().undirected()) {
        for (VertexId w : ctx.graph().InNeighbors(ctx.vertex())) {
          ctx.SendTo(w, best);
        }
      }
    }
    ctx.VoteToHalt();
  }

  std::optional<std::function<int64_t(const int64_t&, const int64_t&)>>
  Combiner() const override {
    return [](const int64_t& a, const int64_t& b) { return std::min(a, b); };
  }
};

// -------------------------------------------------------------------- CD

struct CdValue {
  int64_t label = 0;
  double score = 1.0;
};

struct CdMessage {
  int64_t label = 0;
  double score = 1.0;
};

struct CdProgram : VertexProgram<CdValue, CdMessage> {
  explicit CdProgram(const CdParams& params) : params_(params) {}

  CdValue Init(const Graph&, VertexId v) override {
    return CdValue{static_cast<int64_t>(v), 1.0};
  }

  void Compute(Context& ctx, std::span<const CdMessage> messages) override {
    // Superstep s: adopt from messages (s >= 1), then broadcast the current
    // label while more propagation rounds remain. Message round t feeds
    // adoption round t, matching the reference's synchronous iterations.
    if (ctx.superstep() >= 1 && !messages.empty()) {
      std::vector<LabelScore> incoming;
      incoming.reserve(messages.size());
      for (const CdMessage& m : messages) {
        incoming.push_back(LabelScore{m.label, m.score});
      }
      LabelScore adopted = CdAdoptLabel(incoming, params_.hop_attenuation);
      ctx.value() = CdValue{adopted.label, adopted.score};
    }
    if (ctx.superstep() < params_.max_iterations) {
      ctx.SendToNeighbors(CdMessage{ctx.value().label, ctx.value().score});
    }
    ctx.VoteToHalt();
  }

  CdParams params_;
};

// -------------------------------------------------------------------- PR

struct PrProgram : VertexProgram<double, double> {
  PrProgram(const PrParams& params, VertexId n)
      : params_(params), n_(n), base_((1.0 - params.damping) / n) {}

  double Init(const Graph&, VertexId) override {
    return 1.0 / static_cast<double>(n_);
  }

  void Compute(Context& ctx, std::span<const double> messages) override {
    if (ctx.superstep() >= 1) {
      double sum = 0.0;
      for (double m : messages) sum += m;
      ctx.value() = base_ + params_.damping * sum;
    }
    if (ctx.superstep() < params_.iterations) {
      auto nbrs = ctx.out_neighbors();
      if (!nbrs.empty()) {
        ctx.SendToNeighbors(ctx.value() / static_cast<double>(nbrs.size()));
      }
      // Total-rank aggregator: visible next superstep; exposes the mass
      // leak at dangling vertices to the driver.
      ctx.AggregateValue("rank_sum", ctx.value());
    } else {
      // Halt only after the final update round: a vertex must keep running
      // (to apply the base term and keep sending) even if it receives no
      // messages, e.g. sources in directed graphs and isolated vertices.
      ctx.VoteToHalt();
    }
  }

  std::optional<std::function<double(const double&, const double&)>>
  Combiner() const override {
    return [](const double& a, const double& b) { return a + b; };
  }

  void RegisterAggregators(Aggregators* aggregators) const override {
    aggregators->Register("rank_sum", Aggregators::Kind::kSum);
  }

  PrParams params_;
  VertexId n_;
  double base_;
};

// ----------------------------------------------------------------- STATS

// Superstep 0: send the adjacency list to every neighbor. Superstep 1:
// count links among neighbors via sorted-list intersection.
struct LccProgram : VertexProgram<double, std::vector<VertexId>> {
  double Init(const Graph&, VertexId) override { return 0.0; }

  void Compute(Context& ctx,
               std::span<const std::vector<VertexId>> messages) override {
    if (ctx.superstep() == 0) {
      auto nbrs = ctx.out_neighbors();
      if (nbrs.size() >= 2) {
        std::vector<VertexId> list(nbrs.begin(), nbrs.end());
        ctx.SendToNeighbors(list);
      }
      return;  // stay active to receive
    }
    auto nbrs = ctx.out_neighbors();
    uint64_t links = 0;
    for (const std::vector<VertexId>& their : messages) {
      // |their ∩ nbrs| counts edges between our neighborhood and the
      // sender; the sender is itself a neighbor, so each such common vertex
      // closes a wedge. Every neighbor-pair link is reported by both ends;
      // halving at the end corrects the double count.
      size_t a = 0;
      size_t b = 0;
      while (a < their.size() && b < nbrs.size()) {
        if (their[a] < nbrs[b]) {
          ++a;
        } else if (their[a] > nbrs[b]) {
          ++b;
        } else {
          ++links;
          ++a;
          ++b;
        }
      }
    }
    uint64_t deg = nbrs.size();
    if (deg >= 2) {
      ctx.value() = static_cast<double>(links) /  // links already == 2*pairs
                    (static_cast<double>(deg) * static_cast<double>(deg - 1));
    }
    ctx.VoteToHalt();
  }
};

// ------------------------------------------------------------------- EVO

Result<AlgorithmOutput> RunEvoImpl(const Engine& engine, const Graph& graph,
                                   const EvoParams& params,
                                   RunStats* stats_out) {
  // Fires are independent: distribute them across workers (threads), each
  // replaying the shared deterministic burn. Memory: the burn frontier is
  // negligible; the graph charge mirrors the other algorithms.
  MemoryBudget budget(engine.config().memory_budget_bytes);
  GLY_RETURN_NOT_OK(budget.Charge(graph.MemoryBytes(), "graph partitions"));

  Stopwatch watch;
  const uint32_t threads = engine.config().num_threads != 0
                               ? engine.config().num_threads
                               : static_cast<uint32_t>(HardwareThreads());
  CancelToken* cancel = engine.config().cancel;
  ThreadPool pool(threads);
  std::vector<std::vector<VertexId>> burned(params.num_new_vertices);
  pool.ParallelFor(
      0, params.num_new_vertices, 1,
      [&](size_t i) {
        VertexId ambassador =
            ForestFireAmbassador(graph, params, static_cast<uint32_t>(i));
        burned[i] = ForestFireBurn(graph, ambassador, params,
                                   static_cast<uint32_t>(i));
        if (cancel != nullptr) cancel->Heartbeat();
      },
      cancel);
  GLY_RETURN_NOT_OK(CheckCancel(cancel));

  AlgorithmOutput out;
  const VertexId base = graph.num_vertices();
  uint64_t traversed = 0;
  for (uint32_t i = 0; i < params.num_new_vertices; ++i) {
    for (VertexId b : burned[i]) {
      out.new_edges.Add(base + i, b);
      ++traversed;
    }
  }
  out.new_edges.EnsureVertices(base + params.num_new_vertices);
  out.traversed_edges = traversed;
  if (stats_out != nullptr) {
    *stats_out = RunStats{};
    stats_out->total_seconds = watch.ElapsedSeconds();
    stats_out->peak_memory_bytes = budget.peak();
  }
  return out;
}

}  // namespace

Result<AlgorithmOutput> RunBfs(const Engine& engine, const Graph& graph,
                               const BfsParams& params, RunStats* stats_out) {
  BfsProgram program(params.source, /*with_combiner=*/true);
  GLY_ASSIGN_OR_RETURN(auto run, engine.Run(graph, &program, stats_out));
  AlgorithmOutput out;
  out.vertex_values = std::move(run.values);
  out.traversed_edges = run.stats.total_messages;
  if (stats_out != nullptr) *stats_out = run.stats;
  return out;
}

Result<AlgorithmOutput> RunBfsNoCombiner(const Engine& engine,
                                         const Graph& graph,
                                         const BfsParams& params,
                                         RunStats* stats_out) {
  BfsProgram program(params.source, /*with_combiner=*/false);
  GLY_ASSIGN_OR_RETURN(auto run, engine.Run(graph, &program, stats_out));
  AlgorithmOutput out;
  out.vertex_values = std::move(run.values);
  out.traversed_edges = run.stats.total_messages;
  if (stats_out != nullptr) *stats_out = run.stats;
  return out;
}

Result<AlgorithmOutput> RunConn(const Engine& engine, const Graph& graph,
                                RunStats* stats_out) {
  ConnProgram program;
  GLY_ASSIGN_OR_RETURN(auto run, engine.Run(graph, &program, stats_out));
  AlgorithmOutput out;
  out.vertex_values = std::move(run.values);
  out.traversed_edges = run.stats.total_messages;
  if (stats_out != nullptr) *stats_out = run.stats;
  return out;
}

Result<AlgorithmOutput> RunCd(const Engine& engine, const Graph& graph,
                              const CdParams& params, RunStats* stats_out) {
  CdProgram program(params);
  GLY_ASSIGN_OR_RETURN(auto run, engine.Run(graph, &program, stats_out));
  AlgorithmOutput out;
  out.vertex_values.reserve(run.values.size());
  for (const CdValue& v : run.values) out.vertex_values.push_back(v.label);
  out.traversed_edges = run.stats.total_messages;
  if (stats_out != nullptr) *stats_out = run.stats;
  return out;
}

Result<AlgorithmOutput> RunStatsAlgorithm(const Engine& engine, const Graph& graph,
                                 RunStats* stats_out) {
  LccProgram program;
  GLY_ASSIGN_OR_RETURN(auto run, engine.Run(graph, &program, stats_out));
  AlgorithmOutput out;
  out.stats.num_vertices = graph.num_vertices();
  out.stats.num_edges = graph.num_edges();
  double sum = 0.0;
  for (double v : run.values) sum += v;
  out.stats.mean_local_clustering =
      run.values.empty() ? 0.0 : sum / static_cast<double>(run.values.size());
  out.traversed_edges = graph.num_adjacency_entries();
  if (stats_out != nullptr) *stats_out = run.stats;
  return out;
}

Result<AlgorithmOutput> RunEvo(const Engine& engine, const Graph& graph,
                               const EvoParams& params, RunStats* stats_out) {
  return RunEvoImpl(engine, graph, params, stats_out);
}

Result<AlgorithmOutput> RunPr(const Engine& engine, const Graph& graph,
                              const PrParams& params, RunStats* stats_out) {
  if (graph.num_vertices() == 0) return AlgorithmOutput{};
  PrProgram program(params, graph.num_vertices());
  GLY_ASSIGN_OR_RETURN(auto run, engine.Run(graph, &program, stats_out));
  AlgorithmOutput out;
  out.vertex_scores = std::move(run.values);
  out.traversed_edges = run.stats.total_messages;
  if (stats_out != nullptr) *stats_out = run.stats;
  return out;
}

Result<AlgorithmOutput> RunAlgorithm(const Engine& engine, const Graph& graph,
                                     AlgorithmKind kind,
                                     const AlgorithmParams& params,
                                     RunStats* stats_out) {
  // Thread the harness cancellation token into the engine: Engine is just
  // its config, so a supervised run dispatches through a local copy whose
  // config carries the token. The caller's engine stays untouched.
  if (params.cancel != nullptr && engine.config().cancel == nullptr) {
    EngineConfig supervised = engine.config();
    supervised.cancel = params.cancel;
    Engine engine_with_token(supervised);
    return RunAlgorithm(engine_with_token, graph, kind, params, stats_out);
  }
  switch (kind) {
    case AlgorithmKind::kStats: return RunStatsAlgorithm(engine, graph, stats_out);
    case AlgorithmKind::kBfs:
      return RunBfs(engine, graph, params.bfs, stats_out);
    case AlgorithmKind::kConn: return RunConn(engine, graph, stats_out);
    case AlgorithmKind::kCd: return RunCd(engine, graph, params.cd, stats_out);
    case AlgorithmKind::kEvo:
      return RunEvo(engine, graph, params.evo, stats_out);
    case AlgorithmKind::kPr:
      return RunPr(engine, graph, params.pr, stats_out);
  }
  return Status::Internal("unhandled algorithm kind");
}

}  // namespace gly::pregel
