// CsvWriter: RFC-4180-ish CSV emission for harness reports and bench output.

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace gly {

/// Streams CSV rows to an ostream, quoting fields when needed.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream* out) : out_(out) {}

  /// Writes a header row.
  void WriteHeader(const std::vector<std::string>& columns) { WriteRow(columns); }

  /// Writes one row; fields containing commas, quotes, or newlines are quoted.
  void WriteRow(const std::vector<std::string>& fields);

  /// Convenience builder-style row API.
  CsvWriter& Field(const std::string& value);
  CsvWriter& Field(int64_t value);
  CsvWriter& Field(uint64_t value);
  CsvWriter& Field(double value);
  /// Terminates the row started with Field() calls.
  void EndRow();

  size_t rows_written() const { return rows_; }

 private:
  static std::string Escape(const std::string& field);

  std::ostream* out_;
  std::vector<std::string> pending_;
  size_t rows_ = 0;
};

/// Parses one CSV record into fields, undoing CsvWriter's quoting (RFC
/// 4180: quoted fields may contain commas, doubled quotes, and newlines).
/// `line` must be a complete record — when a quoted field contains a
/// newline the caller must join physical lines until the quotes balance.
/// Exact inverse of CsvWriter::WriteRow for any field content.
std::vector<std::string> ParseCsvLine(const std::string& line);

}  // namespace gly
