// Minimal leveled logger. Thread-safe, writes to stderr.

#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace gly {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log configuration.
class Logger {
 public:
  static Logger& Instance();

  void SetLevel(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Emits one line `[LEVEL] message` if `level` is enabled.
  void Log(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kInfo;
  std::mutex mu_;
};

namespace internal {

/// Stream-style one-shot log line builder.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Instance().Log(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace gly

#define GLY_LOG_DEBUG ::gly::internal::LogMessage(::gly::LogLevel::kDebug)
#define GLY_LOG_INFO ::gly::internal::LogMessage(::gly::LogLevel::kInfo)
#define GLY_LOG_WARN ::gly::internal::LogMessage(::gly::LogLevel::kWarn)
#define GLY_LOG_ERROR ::gly::internal::LogMessage(::gly::LogLevel::kError)
