// Config: typed key=value configuration used by the harness.
//
// The paper's harness is configured through properties files ("We also
// provide configuration files associated with these graphs"). Config parses
// a minimal properties/INI dialect: `key = value` lines, `#`/`;` comments,
// optional `[section]` headers that prefix keys with "section.".

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace gly {

/// An ordered string->string map with typed accessors.
class Config {
 public:
  Config() = default;

  /// Parses properties text (see file comment for the dialect).
  static Result<Config> Parse(const std::string& text);

  /// Loads and parses a properties file.
  static Result<Config> LoadFile(const std::string& path);

  /// Sets (or overwrites) a key.
  void Set(const std::string& key, std::string value);
  void SetInt(const std::string& key, int64_t value);
  void SetDouble(const std::string& key, double value);
  void SetBool(const std::string& key, bool value);

  bool Has(const std::string& key) const;

  /// Typed getters; fail with NotFound / InvalidArgument.
  Result<std::string> GetString(const std::string& key) const;
  Result<int64_t> GetInt(const std::string& key) const;
  Result<uint64_t> GetUint(const std::string& key) const;
  Result<double> GetDouble(const std::string& key) const;
  Result<bool> GetBool(const std::string& key) const;

  /// Getters with defaults; never fail (a malformed value also yields the
  /// default).
  std::string GetStringOr(const std::string& key, std::string def) const;
  int64_t GetIntOr(const std::string& key, int64_t def) const;
  uint64_t GetUintOr(const std::string& key, uint64_t def) const;
  double GetDoubleOr(const std::string& key, double def) const;
  bool GetBoolOr(const std::string& key, bool def) const;

  /// All keys with the given prefix, in sorted order.
  std::vector<std::string> KeysWithPrefix(const std::string& prefix) const;

  /// Returns a Config containing every `prefix.rest` key re-keyed to `rest`.
  Config Scoped(const std::string& prefix) const;

  /// Merges `other` into this config; `other` wins on conflicts.
  void MergeFrom(const Config& other);

  /// Serializes back to properties text (sorted by key).
  std::string ToString() const;

  size_t size() const { return values_.size(); }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace gly
