#include "common/histogram.h"

#include "common/string_util.h"

namespace gly {

void Histogram::Add(uint64_t value, uint64_t count) {
  counts_[value] += count;
  total_ += count;
  sum_ += static_cast<double>(value) * static_cast<double>(count);
  sum_sq_ += static_cast<double>(value) * static_cast<double>(value) *
             static_cast<double>(count);
}

void Histogram::Merge(const Histogram& other) {
  for (const auto& [value, count] : other.counts_) counts_[value] += count;
  total_ += other.total_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

uint64_t Histogram::CountOf(uint64_t value) const {
  auto it = counts_.find(value);
  return it == counts_.end() ? 0 : it->second;
}

double Histogram::Mean() const {
  return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
}

double Histogram::Variance() const {
  if (total_ == 0) return 0.0;
  double mean = Mean();
  return sum_sq_ / static_cast<double>(total_) - mean * mean;
}

uint64_t Histogram::Percentile(double p) const {
  if (total_ == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  uint64_t threshold = static_cast<uint64_t>(p * static_cast<double>(total_));
  uint64_t running = 0;
  for (const auto& [value, count] : counts_) {
    running += count;
    if (running >= threshold) return value;
  }
  return counts_.rbegin()->first;
}

uint64_t Histogram::Min() const {
  return counts_.empty() ? 0 : counts_.begin()->first;
}

uint64_t Histogram::Max() const {
  return counts_.empty() ? 0 : counts_.rbegin()->first;
}

std::vector<std::pair<uint64_t, uint64_t>> Histogram::Items() const {
  return {counts_.begin(), counts_.end()};
}

std::string Histogram::ToString(size_t max_rows) const {
  std::string out;
  size_t rows = 0;
  for (const auto& [value, count] : counts_) {
    if (max_rows != 0 && rows >= max_rows) {
      out += StringPrintf("... (%zu more rows)\n", counts_.size() - rows);
      break;
    }
    out += StringPrintf("%llu %llu\n", static_cast<unsigned long long>(value),
                        static_cast<unsigned long long>(count));
    ++rows;
  }
  return out;
}

}  // namespace gly
