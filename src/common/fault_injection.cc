#include "common/fault_injection.h"

#include <chrono>
#include <thread>

#include "common/random.h"
#include "common/trace.h"

namespace {

const char* FaultKindLabel(gly::fault::FaultKind kind) {
  switch (kind) {
    case gly::fault::FaultKind::kCrash: return "crash";
    case gly::fault::FaultKind::kIOError: return "io_error";
    case gly::fault::FaultKind::kDelay: return "delay";
    case gly::fault::FaultKind::kStall: return "stall";
    case gly::fault::FaultKind::kDrop: return "drop";
  }
  return "unknown";
}

}  // namespace

namespace gly::fault {

namespace internal {
std::atomic<FaultPlan*> g_active_plan{nullptr};
}  // namespace internal

namespace {

uint64_t HashSite(const std::string& site) {
  // FNV-1a; only needs to decorrelate sites, not be cryptographic.
  uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

bool SiteMatches(const std::string& pattern, const std::string& site) {
  if (!pattern.empty() && pattern.back() == '*') {
    return site.compare(0, pattern.size() - 1, pattern, 0,
                        pattern.size() - 1) == 0;
  }
  return pattern == site;
}

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kIOError: return "io-error";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kStall: return "stall";
    case FaultKind::kDrop: return "drop";
  }
  return "unknown";
}

void FaultPlan::Add(FaultSpec spec) {
  auto rule = std::make_unique<Rule>();
  rule->spec = std::move(spec);
  rules_.push_back(std::move(rule));
}

bool FaultPlan::Decides(const Rule& rule, const std::string& site,
                        uint64_t hit_index) const {
  if (hit_index < rule.spec.skip_hits) return false;
  if (rule.spec.probability >= 1.0) return true;
  if (rule.spec.probability <= 0.0) return false;
  // Pure function of (seed, site, hit index): thread scheduling cannot
  // change which hit indexes trigger.
  Rng rng(DeriveSeed(seed_ ^ HashSite(site), hit_index));
  return rng.NextDouble() < rule.spec.probability;
}

uint64_t FaultPlan::NextHitIndex(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_[site].hits++;
}

FaultPlan::Rule* FaultPlan::FireAt(const std::string& site,
                                   uint64_t hit_index, bool drop_sites) {
  for (auto& rule : rules_) {
    if ((rule->spec.kind == FaultKind::kDrop) != drop_sites) continue;
    if (!SiteMatches(rule->spec.site, site)) continue;
    if (!Decides(*rule, site, hit_index)) continue;
    if (rule->spec.max_triggers != 0) {
      // Reserve quota; roll back on overshoot so a bounded transient fault
      // fires exactly max_triggers times even under concurrent hits.
      uint32_t reserved =
          rule->triggers.fetch_add(1, std::memory_order_acq_rel);
      if (reserved >= rule->spec.max_triggers) {
        rule->triggers.fetch_sub(1, std::memory_order_acq_rel);
        continue;
      }
    } else {
      rule->triggers.fetch_add(1, std::memory_order_relaxed);
    }
    return rule.get();
  }
  return nullptr;
}

Status FaultPlan::OnPoint(const std::string& site) {
  uint64_t hit_index = NextHitIndex(site);
  Rule* rule = FireAt(site, hit_index, /*drop_sites=*/false);
  if (rule == nullptr) return Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_[site].triggered;
  }
  total_triggered_.fetch_add(1, std::memory_order_relaxed);
  trace::Instant("fault.injected", "fault",
                 {{"site", site}, {"kind", FaultKindLabel(rule->spec.kind)}});
  switch (rule->spec.kind) {
    case FaultKind::kCrash:
      return Status::Internal("injected worker crash at " + site);
    case FaultKind::kIOError:
      return Status::IOError("injected transient i/o error at " + site);
    case FaultKind::kDelay:
    case FaultKind::kStall:
      if (rule->spec.delay_seconds > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(rule->spec.delay_seconds));
      }
      return Status::OK();
    case FaultKind::kDrop:
      break;  // unreachable: filtered by FireAt
  }
  return Status::OK();
}

bool FaultPlan::OnDropPoint(const std::string& site) {
  uint64_t hit_index = NextHitIndex(site);
  Rule* rule = FireAt(site, hit_index, /*drop_sites=*/true);
  if (rule == nullptr) return false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_[site].triggered;
  }
  total_triggered_.fetch_add(1, std::memory_order_relaxed);
  trace::Instant("fault.injected", "fault",
                 {{"site", site}, {"kind", "drop"}});
  return true;
}

uint64_t FaultPlan::HitCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find(site);
  return it == stats_.end() ? 0 : it->second.hits;
}

uint64_t FaultPlan::TriggeredCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find(site);
  return it == stats_.end() ? 0 : it->second.triggered;
}

uint64_t FaultPlan::TotalTriggered() const {
  return total_triggered_.load(std::memory_order_relaxed);
}

std::map<std::string, SiteStats> FaultPlan::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<uint32_t> FaultPlan::TriggerSchedule(const std::string& site,
                                                 uint32_t num_hits) const {
  std::vector<uint32_t> schedule;
  std::vector<uint32_t> local_triggers(rules_.size(), 0);
  for (uint32_t hit = 0; hit < num_hits; ++hit) {
    for (size_t i = 0; i < rules_.size(); ++i) {
      const Rule& rule = *rules_[i];
      if (!SiteMatches(rule.spec.site, site)) continue;
      if (!Decides(rule, site, hit)) continue;
      if (rule.spec.max_triggers != 0 &&
          local_triggers[i] >= rule.spec.max_triggers) {
        continue;
      }
      ++local_triggers[i];
      schedule.push_back(hit);
      break;
    }
  }
  return schedule;
}

}  // namespace gly::fault
