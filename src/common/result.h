// Result<T>: a value-or-Status, the return type of fallible producers.

#pragma once

#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace gly {

/// Holds either a successfully produced `T` or an error `Status`.
///
/// Usage:
///   Result<Graph> g = LoadGraph(path);
///   if (!g.ok()) return g.status();
///   Use(g.ValueOrDie());
///
/// or with the macros in macros.h:
///   GLY_ASSIGN_OR_RETURN(Graph g, LoadGraph(path));
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result (implicit, so `return value;` works).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result from a non-OK status (implicit, so
  /// `return Status::IOError(...);` works).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      // A Result constructed from a status must carry an error.
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }

  /// The error status; `Status::OK()` if this result holds a value.
  const Status& status() const { return status_; }

  /// Returns the value; aborts if this result holds an error.
  T& ValueOrDie() & {
    DieIfError();
    return *value_;
  }
  const T& ValueOrDie() const& {
    DieIfError();
    return *value_;
  }
  T&& ValueOrDie() && {
    DieIfError();
    return std::move(*value_);
  }

  /// Moves the value out; aborts if this result holds an error.
  T&& MoveValueOrDie() {
    DieIfError();
    return std::move(*value_);
  }

  /// Returns the value if OK, otherwise `fallback`.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  T* operator->() { return &ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T& operator*() const& { return ValueOrDie(); }

 private:
  void DieIfError() const {
    if (!ok()) {
      status_.Check();  // prints and aborts
      std::abort();     // unreachable; Check aborts on error
    }
  }

  std::optional<T> value_;
  Status status_;
};

}  // namespace gly
