#include "common/temp_dir.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>

namespace gly {

namespace fs = std::filesystem;

Result<TempDir> TempDir::Create(const std::string& prefix) {
  static std::atomic<uint64_t> counter{0};
  const char* tmp_env = std::getenv("TMPDIR");
  fs::path base = tmp_env != nullptr ? fs::path(tmp_env)
                                     : fs::temp_directory_path();
  for (int attempt = 0; attempt < 100; ++attempt) {
    uint64_t id = counter.fetch_add(1) ^
                  (static_cast<uint64_t>(::getpid()) << 32) ^
                  static_cast<uint64_t>(
                      std::chrono::steady_clock::now().time_since_epoch().count());
    fs::path dir = base / (prefix + "." + std::to_string(id));
    std::error_code ec;
    if (fs::create_directories(dir, ec) && !ec) {
      return TempDir(dir.string());
    }
  }
  return Status::IOError("cannot create temp directory with prefix " + prefix);
}

TempDir::TempDir(TempDir&& other) noexcept
    : path_(std::move(other.path_)), owned_(other.owned_) {
  other.owned_ = false;
}

TempDir& TempDir::operator=(TempDir&& other) noexcept {
  if (this != &other) {
    this->~TempDir();
    path_ = std::move(other.path_);
    owned_ = other.owned_;
    other.owned_ = false;
  }
  return *this;
}

TempDir::~TempDir() {
  if (owned_ && !path_.empty()) {
    std::error_code ec;
    fs::remove_all(path_, ec);  // best-effort
  }
}

}  // namespace gly
