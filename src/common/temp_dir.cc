#include "common/temp_dir.h"

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <set>

#include "common/string_util.h"

namespace gly {

namespace fs = std::filesystem;

namespace {

fs::path TempBase() {
  const char* tmp_env = std::getenv("TMPDIR");
  return tmp_env != nullptr ? fs::path(tmp_env) : fs::temp_directory_path();
}

// True when the directory name is `<prefix>.p<pid>.<seq>` for a process
// that no longer exists (and is not us).
bool IsStale(const std::string& name, const std::string& prefix) {
  const std::string tag = prefix + ".p";
  if (name.rfind(tag, 0) != 0) return false;
  size_t pid_end = name.find('.', tag.size());
  if (pid_end == std::string::npos) return false;
  auto pid = ParseUint64(name.substr(tag.size(), pid_end - tag.size()));
  if (!pid.ok() || *pid == 0) return false;
  if (static_cast<pid_t>(*pid) == ::getpid()) return false;
  return ::kill(static_cast<pid_t>(*pid), 0) == -1 && errno == ESRCH;
}

}  // namespace

size_t TempDir::CleanupStale(const std::string& prefix) {
  size_t removed = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(TempBase(), ec)) {
    if (ec) break;
    if (!entry.is_directory(ec) || ec) continue;
    if (!IsStale(entry.path().filename().string(), prefix)) continue;
    std::error_code rm_ec;
    fs::remove_all(entry.path(), rm_ec);  // best-effort
    if (!rm_ec) ++removed;
  }
  return removed;
}

Result<TempDir> TempDir::Create(const std::string& prefix) {
  // Reap leftovers from crashed prior runs, once per prefix per process.
  {
    static std::mutex mu;
    static std::set<std::string>* swept = new std::set<std::string>();
    std::lock_guard<std::mutex> lock(mu);
    if (swept->insert(prefix).second) CleanupStale(prefix);
  }

  static std::atomic<uint64_t> counter{0};
  fs::path base = TempBase();
  for (int attempt = 0; attempt < 100; ++attempt) {
    uint64_t seq = counter.fetch_add(1) ^
                   (static_cast<uint64_t>(
                        std::chrono::steady_clock::now()
                            .time_since_epoch()
                            .count())
                    << 20);
    fs::path dir = base / (prefix + ".p" + std::to_string(::getpid()) + "." +
                           std::to_string(seq));
    std::error_code ec;
    if (fs::create_directories(dir, ec) && !ec) {
      return TempDir(dir.string());
    }
  }
  return Status::IOError("cannot create temp directory with prefix " + prefix);
}

TempDir::TempDir(TempDir&& other) noexcept
    : path_(std::move(other.path_)), owned_(other.owned_) {
  other.owned_ = false;
}

TempDir& TempDir::operator=(TempDir&& other) noexcept {
  if (this != &other) {
    this->~TempDir();
    path_ = std::move(other.path_);
    owned_ = other.owned_;
    other.owned_ = false;
  }
  return *this;
}

TempDir::~TempDir() {
  if (owned_ && !path_.empty()) {
    std::error_code ec;
    fs::remove_all(path_, ec);  // best-effort
  }
}

}  // namespace gly
