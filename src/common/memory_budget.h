// MemoryBudget: cooperative memory accounting for platform engines.
//
// The paper's Figure 4 reports failures ("missing values indicate failures")
// when a platform exceeds the memory of its machines — GraphX crashes on
// workloads Giraph completes; Neo4j "is not able to process graphs larger
// than the memory of a single machine". Each simulated platform charges its
// graph storage and per-superstep state against a MemoryBudget and fails
// with ResourceExhausted when the budget is exceeded, reproducing this
// behaviour mechanistically instead of by fiat.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace gly {

/// Tracks bytes charged against a fixed budget. Thread-safe.
class MemoryBudget {
 public:
  /// `limit_bytes` == 0 means unlimited.
  explicit MemoryBudget(uint64_t limit_bytes = 0) : limit_(limit_bytes) {}

  /// Attempts to reserve `bytes`; fails with ResourceExhausted (and leaves
  /// the accounting unchanged) if the reservation would exceed the limit.
  Status Charge(uint64_t bytes, const std::string& what);

  /// Releases `bytes` previously charged.
  void Release(uint64_t bytes);

  /// Forgets all charges *and* the recorded peak, so a budget reused across
  /// attempts (e.g. after a cancelled cell) starts from a clean slate
  /// instead of reporting the abandoned attempt's high-water mark.
  void Reset() {
    used_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

  uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  uint64_t limit() const { return limit_; }
  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }

 private:
  uint64_t limit_;
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> peak_{0};
};

/// RAII guard that releases its charge on destruction.
class ScopedCharge {
 public:
  ScopedCharge() = default;
  ScopedCharge(MemoryBudget* budget, uint64_t bytes)
      : budget_(budget), bytes_(bytes) {}
  ScopedCharge(ScopedCharge&& other) noexcept
      : budget_(other.budget_), bytes_(other.bytes_) {
    other.budget_ = nullptr;
    other.bytes_ = 0;
  }
  ScopedCharge& operator=(ScopedCharge&& other) noexcept {
    if (this != &other) {
      ReleaseNow();
      budget_ = other.budget_;
      bytes_ = other.bytes_;
      other.budget_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;
  ~ScopedCharge() { ReleaseNow(); }

  /// Releases the charge early.
  void ReleaseNow() {
    if (budget_ != nullptr && bytes_ > 0) budget_->Release(bytes_);
    budget_ = nullptr;
    bytes_ = 0;
  }

 private:
  MemoryBudget* budget_ = nullptr;
  uint64_t bytes_ = 0;
};

}  // namespace gly
