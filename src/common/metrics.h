// Process-wide metrics registry — the counting half of the observability
// layer (trace.h holds the timeline half). Engines increment named
// counters (`pregel.messages_sent`), set gauges, and observe histogram
// samples; the harness snapshots the registry per run and exports it as
// schema-versioned `metrics.jsonl` (v1, like bench_util.h's bench JSON).
//
// Hot-path cost: a Counter::Add is one relaxed atomic fetch_add on a
// pointer obtained once; with no registry installed the inline helpers
// (AddCounter/SetGauge/Observe) are a single relaxed atomic load.
// Activation follows the same scoped-global pattern as trace.h and
// fault_injection.h: install with ScopedRegistry, and instrumented code
// needs no plumbing.
//
// Naming convention (see DESIGN.md §10): dotted lowercase
// `<component>.<subsystem>.<metric>`, e.g. `graphdb.wal.append_bytes`.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.h"
#include "common/result.h"

namespace gly::metrics {

/// Monotonic counter. Add() is lock-free; safe from any thread.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins gauge for point-in-time values (queue depth, rss).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram of non-negative integer observations (mutex-guarded; use for
/// per-event samples, not per-element hot loops).
class HistogramMetric {
 public:
  void Observe(uint64_t value) {
    std::lock_guard<std::mutex> lock(mu_);
    histogram_.Add(value);
  }
  void MergeFrom(const Histogram& other) {
    std::lock_guard<std::mutex> lock(mu_);
    histogram_.Merge(other);
  }
  Histogram Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return histogram_;
  }

 private:
  mutable std::mutex mu_;
  Histogram histogram_;
};

/// One metric in a registry snapshot.
struct MetricValue {
  enum class Type { kCounter, kGauge, kHistogram };
  Type type = Type::kCounter;
  uint64_t counter = 0;
  double gauge = 0.0;
  Histogram histogram;
};

/// Named metric registry. Get* return stable pointers (the registry owns
/// the metrics and never removes them), so callers may cache them across
/// the registry's lifetime. All methods are thread-safe.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Create-on-first-use lookups. Names are expected to be unique across
  /// metric types; reusing one name for two types makes the snapshot keep
  /// only one of them (counter wins over gauge wins over histogram).
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  HistogramMetric* GetHistogram(std::string_view name);

  /// Current values of every metric, keyed by name (sorted — map).
  std::map<std::string, MetricValue> Snapshot() const;

  /// Serializes Snapshot() as metrics.jsonl: a schema header line
  /// `{"schema_version":1,"kind":"gly.metrics"}` followed by one line per
  /// metric in name order. See DESIGN.md §10 for the line schema.
  std::string ToJsonl() const;

  /// Parses a ToJsonl() document back into a snapshot (for the round-trip
  /// test and for external tools). Fails on schema mismatch.
  static Result<std::map<std::string, MetricValue>> FromJsonl(
      std::string_view text);

  /// Writes ToJsonl() to `path`.
  Status WriteTo(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>, std::less<>>
      histograms_;
};

namespace internal {
extern std::atomic<Registry*> g_active_registry;
}  // namespace internal

/// The registry the inline helpers write to, or nullptr.
inline Registry* ActiveRegistry() {
  return internal::g_active_registry.load(std::memory_order_acquire);
}

/// RAII installation of a process-global registry (mirrors ScopedTracer).
class ScopedRegistry {
 public:
  explicit ScopedRegistry(Registry* registry)
      : previous_(internal::g_active_registry.exchange(
            registry, std::memory_order_acq_rel)) {}
  ~ScopedRegistry() {
    internal::g_active_registry.store(previous_, std::memory_order_release);
  }
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  Registry* previous_;
};

/// Increments `name` on the active registry; no-op when none installed.
inline void AddCounter(std::string_view name, uint64_t delta = 1) {
  if (Registry* r = ActiveRegistry()) r->GetCounter(name)->Add(delta);
}

/// Sets gauge `name` on the active registry; no-op when none installed.
inline void SetGauge(std::string_view name, double value) {
  if (Registry* r = ActiveRegistry()) r->GetGauge(name)->Set(value);
}

/// Observes `value` into histogram `name`; no-op when none installed.
inline void Observe(std::string_view name, uint64_t value) {
  if (Registry* r = ActiveRegistry()) r->GetHistogram(name)->Observe(value);
}

}  // namespace gly::metrics
