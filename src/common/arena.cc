#include "common/arena.h"

namespace gly::arena {

void PoolGroupStats::Add(uint64_t bytes) {
  uint64_t now =
      held_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

void PoolGroupStats::Sub(uint64_t bytes) {
  held_.fetch_sub(bytes, std::memory_order_relaxed);
}

void PoolGroupStats::ResetPeak() {
  peak_.store(held_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
}

}  // namespace gly::arena
