// In-process sampling CPU profiler (DESIGN.md §14). A SignalSampler arms
// a POSIX interval timer (ITIMER_PROF → SIGPROF, delivered to whichever
// thread is burning CPU); the signal handler captures a raw stack with
// backtrace() plus the current profile phase into a lock-free MPMC ring
// and returns — no allocation, no locks, no symbolization in signal
// context. Drain() pops and symbolizes off the hot path (dladdr +
// __cxa_demangle, memoized per pc).
//
// Sampler is an interface so tests inject a scripted FakeSampler and the
// whole pipeline — folding, per-cell attribution, profile.json — runs
// deterministically with zero signals.
//
// CpuProfiler folds drained samples into flamegraph-compatible folded
// stacks ("frame;frame;frame count"), rooted at the profile phase label
// when one is set (SetProfilePhase / ScopedProfilePhase; the harness
// labels load/run/validate). Invariant: the folded counts of everything
// drained sum to the sampler's emitted-sample counter — dropped samples
// (ring full) are counted separately, never silently lost.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"

namespace gly::prof {

/// One symbolized stack sample. `frames` is root-first (main() outermost).
struct StackSample {
  std::string phase;                ///< profile phase label ("" = none)
  std::vector<std::string> frames;  ///< root-first symbolized frames
  uint64_t count = 1;               ///< identical samples may be pre-merged
};

/// Source of stack samples. SignalSampler is the real one; FakeSampler is
/// scripted for deterministic tests.
class Sampler {
 public:
  virtual ~Sampler() = default;

  /// Begins sampling every `interval_us` microseconds of CPU time.
  virtual Status Start(uint64_t interval_us) = 0;

  /// Stops sampling. Samples already captured remain drainable.
  virtual void Stop() = 0;

  /// Pops every sample captured since the previous Drain (symbolizing as
  /// needed). Never called from signal context.
  virtual std::vector<StackSample> Drain() = 0;

  /// Samples successfully captured into the ring so far (monotonic). The
  /// sum of counts over all Drain() results equals this once stopped.
  virtual uint64_t emitted_samples() const = 0;

  /// Samples lost to a full ring (monotonic).
  virtual uint64_t dropped_samples() const = 0;

  /// "signal", "fake", ... — recorded in profile.json.
  virtual const char* mode() const = 0;
};

/// Real SIGPROF-driven sampler. At most one may be started process-wide
/// (the interval timer and signal disposition are process resources);
/// Start on a second instance fails with Internal.
class SignalSampler final : public Sampler {
 public:
  /// `ring_slots` is rounded up to a power of two; each slot holds one raw
  /// stack (fixed depth), so memory is ring_slots * ~300 bytes.
  explicit SignalSampler(size_t ring_slots = 4096);
  ~SignalSampler() override;

  Status Start(uint64_t interval_us) override;
  void Stop() override;
  std::vector<StackSample> Drain() override;
  uint64_t emitted_samples() const override;
  uint64_t dropped_samples() const override;
  const char* mode() const override { return "signal"; }

  struct Impl;  ///< public so the signal handler (free fn) can hold one

 private:
  std::unique_ptr<Impl> impl_;
};

/// Scripted sampler for tests: queue samples with AddSample; Drain returns
/// everything queued since the last drain. Thread-safe.
class FakeSampler final : public Sampler {
 public:
  void AddSample(std::vector<std::string> frames_root_first,
                 std::string phase = "", uint64_t count = 1);
  void SetDropped(uint64_t dropped);

  Status Start(uint64_t interval_us) override;
  void Stop() override;
  std::vector<StackSample> Drain() override;
  uint64_t emitted_samples() const override;
  uint64_t dropped_samples() const override;
  const char* mode() const override { return "fake"; }

  bool started() const;
  uint64_t interval_us() const;

 private:
  mutable std::mutex mu_;
  std::vector<StackSample> pending_;
  uint64_t emitted_ = 0;
  uint64_t dropped_ = 0;
  bool started_ = false;
  uint64_t interval_us_ = 0;
};

/// Folded flamegraph profile: "frame;frame;frame" stack keys → sample
/// counts. Render with ToLines()/ToFolded() for flamegraph.pl / speedscope.
struct FoldedProfile {
  std::map<std::string, uint64_t> stacks;
  uint64_t samples = 0;  ///< Σ counts over `stacks`
  uint64_t dropped = 0;

  void Merge(const FoldedProfile& other);
  /// One "stack count" line per entry, sorted by stack key.
  std::vector<std::string> ToLines() const;
  /// ToLines() joined with newlines (trailing newline included).
  std::string ToFolded() const;
};

/// Folds symbolized samples: frames are joined root-first with ';', the
/// phase label (when present) becomes the outermost frame, and characters
/// that would break the folded syntax (';' and ' ' inside frame names) are
/// sanitized.
FoldedProfile FoldSamples(const std::vector<StackSample>& samples);

/// Current profile phase label, attached to every sample taken while set.
/// `phase` must be a string literal or otherwise outlive the sampling run
/// (the signal handler reads the pointer). nullptr clears the label.
void SetProfilePhase(const char* phase);
const char* CurrentProfilePhase();

/// RAII phase label, restoring the previous label on destruction.
class ScopedProfilePhase {
 public:
  explicit ScopedProfilePhase(const char* phase)
      : previous_(CurrentProfilePhase()) {
    SetProfilePhase(phase);
  }
  ~ScopedProfilePhase() { SetProfilePhase(previous_); }
  ScopedProfilePhase(const ScopedProfilePhase&) = delete;
  ScopedProfilePhase& operator=(const ScopedProfilePhase&) = delete;

 private:
  const char* previous_;
};

/// Orchestrates a Sampler over a run: Start it, Collect() folded windows
/// (per cell, per phase), Stop it. Owns a SignalSampler unless one is
/// injected.
class CpuProfiler {
 public:
  struct Options {
    uint64_t interval_us = 2000;      ///< 500 Hz of CPU time by default
    Sampler* sampler = nullptr;       ///< injected (FakeSampler); not owned
  };

  explicit CpuProfiler(Options options);
  ~CpuProfiler();

  CpuProfiler(const CpuProfiler&) = delete;
  CpuProfiler& operator=(const CpuProfiler&) = delete;

  Status Start();
  /// Drains and folds every sample captured since the last Collect().
  FoldedProfile Collect();
  void Stop();

  bool running() const { return running_; }
  uint64_t interval_us() const { return options_.interval_us; }
  const char* mode() const;
  uint64_t emitted_samples() const;
  uint64_t dropped_samples() const;

 private:
  Options options_;
  std::unique_ptr<Sampler> owned_sampler_;
  Sampler* sampler_ = nullptr;
  bool running_ = false;
};

}  // namespace gly::prof
