#include "common/crc32.h"

namespace gly {

uint32_t Crc32cUpdate(uint32_t state, const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    state ^= p[i];
    for (int b = 0; b < 8; ++b) {
      state = (state >> 1) ^ (0x82F63B78u & (0u - (state & 1u)));
    }
  }
  return state;
}

uint32_t Crc32c(const void* data, size_t len) {
  return Crc32cFinalize(Crc32cUpdate(kCrc32cInit, data, len));
}

}  // namespace gly
