#include "common/memory_budget.h"

namespace gly {

Status MemoryBudget::Charge(uint64_t bytes, const std::string& what) {
  uint64_t prev = used_.fetch_add(bytes, std::memory_order_relaxed);
  uint64_t now = prev + bytes;
  if (limit_ != 0 && now > limit_) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "memory budget exceeded while allocating " + std::to_string(bytes) +
        " bytes for " + what + " (used " + std::to_string(prev) + " of " +
        std::to_string(limit_) + ")");
  }
  // Track peak (racy max-update loop).
  uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  return Status::OK();
}

void MemoryBudget::Release(uint64_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
}

}  // namespace gly
