// Post-run trace analytics (DESIGN.md §14): turns a span forest (the
// events a Tracer collected, or a trace.json read back from disk) into
// the three answers perf triage actually needs —
//
//   * the critical path: starting from a root span, repeatedly descend
//     into the longest child, charging each visited span its *self* time
//     (duration minus children). Children nest within their parent on one
//     thread, so the total is provably ≤ the root span's duration;
//   * per-worker (per-tid) busy/idle utilization over the trace window,
//     which shows whether `--jobs N` actually overlapped work;
//   * a top-K self-time table across all spans — the "where did the time
//     go" summary that pairs with the sampler's folded stacks.
//
// The result serializes as profile.json (schema v1, kind "gly.profile"),
// written next to trace.json and validated by scripts/validate_trace.py.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/trace.h"

namespace gly::trace {

/// One hop of the critical path, root first.
struct CriticalPathStep {
  std::string name;
  uint32_t tid = 0;
  double span_seconds = 0.0;  ///< full duration of this span
  double self_seconds = 0.0;  ///< duration minus children (what it's charged)
};

/// Busy/idle split for one virtual thread over the trace window.
struct WorkerUtilization {
  uint32_t tid = 0;
  double busy_seconds = 0.0;  ///< Σ top-level span durations on this tid
  double idle_seconds = 0.0;
  double utilization = 0.0;   ///< busy / window wall time
};

/// Aggregated self time for one span name.
struct SelfTimeEntry {
  std::string name;
  double self_seconds = 0.0;
  uint64_t count = 0;  ///< completed spans with this name
};

struct TraceAnalysis {
  double wall_seconds = 0.0;           ///< last event ts − first event ts
  double critical_path_seconds = 0.0;  ///< Σ self over the critical path
  std::string root;                    ///< name of the chosen root span
  size_t completed_spans = 0;
  std::vector<CriticalPathStep> critical_path;
  std::vector<WorkerUtilization> workers;
  std::vector<SelfTimeEntry> self_time;  ///< descending, truncated to top-K
};

struct AnalyzeOptions {
  size_t top_k = 10;  ///< self-time table size (0 = unbounded)
  /// Root span name for the critical path; the longest completed span with
  /// this name wins. Empty = the longest completed top-level span.
  std::string root;
};

/// Analyzes a raw event window. Ill-formed fragments (unmatched B/E) are
/// tolerated: only matched pairs contribute.
TraceAnalysis AnalyzeTrace(const std::vector<TraceEvent>& events,
                           const AnalyzeOptions& options = {});

/// Sampler provenance recorded in profile.json.
struct SamplerSummary {
  std::string mode = "off";  ///< "signal", "fake", "off"
  uint64_t interval_us = 0;
  uint64_t samples = 0;  ///< == Σ folded counts (validated)
  uint64_t dropped = 0;
};

/// Renders profile.json (schema v1, kind "gly.profile"). `folded_lines`
/// are "frame;frame count" lines from prof::FoldedProfile::ToLines().
std::string ProfileJson(const TraceAnalysis& analysis,
                        const SamplerSummary& sampler,
                        const std::vector<std::string>& folded_lines);

/// Parsed profile.json — the read side for tools/results_query,
/// tools/trace_analyze --reparse, and tests.
struct ProfileSummary {
  double wall_seconds = 0.0;
  double critical_path_seconds = 0.0;
  std::string root;
  size_t completed_spans = 0;
  std::vector<CriticalPathStep> critical_path;
  std::vector<WorkerUtilization> workers;
  std::vector<SelfTimeEntry> self_time;
  SamplerSummary sampler;
  std::vector<std::string> folded;
};

Result<ProfileSummary> ParseProfileJson(std::string_view json);

}  // namespace gly::trace
