#include "common/profiler.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "common/macros.h"
#include "common/string_util.h"

#if defined(__linux__) || defined(__APPLE__)
#define GLY_HAVE_SIGNAL_SAMPLER 1
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>
#include <time.h>
#else
#define GLY_HAVE_SIGNAL_SAMPLER 0
#endif

namespace gly::prof {

namespace {

// The profile phase label. Read from signal context, so it must be a raw
// pointer to storage that outlives the sampling run (string literals).
std::atomic<const char*> g_profile_phase{nullptr};

std::string SanitizeFrame(const std::string& frame) {
  std::string out = frame;
  for (char& c : out) {
    // ';' separates frames and the last ' ' separates the count in the
    // folded format; neither may appear inside a frame name.
    if (c == ';') c = ':';
    if (c == ' ') c = '_';
    if (c == '\n' || c == '\r' || c == '\t') c = '_';
  }
  return out.empty() ? std::string("?") : out;
}

}  // namespace

void SetProfilePhase(const char* phase) {
  g_profile_phase.store(phase, std::memory_order_release);
}

const char* CurrentProfilePhase() {
  return g_profile_phase.load(std::memory_order_acquire);
}

// ---------------------------------------------------------------------------
// SignalSampler

#if GLY_HAVE_SIGNAL_SAMPLER

namespace {

constexpr int kMaxFrames = 32;
// backtrace() captured from the handler sees [0] the handler itself and
// [1] the kernel's signal trampoline before the interrupted stack.
constexpr int kSkipFrames = 2;

struct RawSample {
  const char* phase = nullptr;
  void* frames[kMaxFrames];
  int depth = 0;
};

// Bounded MPMC ring (Vyukov). Push runs in signal context — SIGPROF with
// an armed interval timer can be delivered to several threads at once, so
// the producer side must be both lock-free and multi-producer. Pop runs
// only from Drain().
class SampleRing {
 public:
  explicit SampleRing(size_t slots) {
    size_t cap = 1;
    while (cap < slots) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
    for (size_t i = 0; i < cap; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  // Async-signal-safe: atomics and a POD copy only.
  bool TryPush(const RawSample& sample) {
    uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      uint64_t seq = slot.seq.load(std::memory_order_acquire);
      intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          slot.sample = sample;
          slot.seq.store(pos + 1, std::memory_order_release);
          emitted_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
      } else if (dif < 0) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return false;
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  bool TryPop(RawSample* out) {
    uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      uint64_t seq = slot.seq.load(std::memory_order_acquire);
      intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          *out = slot.sample;
          slot.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // empty
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  uint64_t emitted() const {
    return emitted_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<uint64_t> seq;
    RawSample sample;
  };
  std::unique_ptr<Slot[]> slots_;
  size_t mask_ = 0;
  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> tail_{0};
  std::atomic<uint64_t> emitted_{0};
  std::atomic<uint64_t> dropped_{0};
};

}  // namespace

struct SignalSampler::Impl {
  explicit Impl(size_t ring_slots) : ring(ring_slots) {}

  SampleRing ring;
  bool started = false;
  struct sigaction old_action;
  // pc → symbolized name, built lazily in Drain (never in signal context).
  std::unordered_map<void*, std::string> symbol_cache;
};

namespace {

// Only one SignalSampler may be armed: ITIMER_PROF and the SIGPROF
// disposition are process-global.
std::atomic<SignalSampler::Impl*> g_signal_impl{nullptr};

void ProfSignalHandler(int /*signum*/) {
  SignalSampler::Impl* impl =
      g_signal_impl.load(std::memory_order_acquire);
  if (impl == nullptr) return;
  RawSample sample;
  sample.phase = CurrentProfilePhase();
  int depth = ::backtrace(sample.frames, kMaxFrames);
  sample.depth = depth > 0 ? depth : 0;
  impl->ring.TryPush(sample);
}

std::string SymbolizePc(void* pc) {
  Dl_info info;
  if (dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      std::string name(demangled);
      free(demangled);
      return name;
    }
    return info.dli_sname;
  }
  if (dladdr(pc, &info) != 0 && info.dli_fname != nullptr) {
    const char* base = strrchr(info.dli_fname, '/');
    std::string module(base != nullptr ? base + 1 : info.dli_fname);
    uintptr_t offset = reinterpret_cast<uintptr_t>(pc) -
                       reinterpret_cast<uintptr_t>(info.dli_fbase);
    return module + StringPrintf("+0x%zx", static_cast<size_t>(offset));
  }
  return StringPrintf("0x%zx", reinterpret_cast<size_t>(pc));
}

}  // namespace

SignalSampler::SignalSampler(size_t ring_slots)
    : impl_(std::make_unique<Impl>(ring_slots)) {}

SignalSampler::~SignalSampler() { Stop(); }

Status SignalSampler::Start(uint64_t interval_us) {
  if (interval_us == 0) {
    return Status::InvalidArgument("sampler interval must be > 0");
  }
  if (impl_->started) {
    return Status::Internal("sampler already started");
  }
  Impl* expected = nullptr;
  if (!g_signal_impl.compare_exchange_strong(expected, impl_.get(),
                                             std::memory_order_acq_rel)) {
    return Status::Internal(
        "another SignalSampler is active (SIGPROF is process-global)");
  }
  // Pre-warm backtrace: its first call may dlopen libgcc, which is not
  // async-signal-safe — force that to happen here, not in the handler.
  void* warm[4];
  ::backtrace(warm, 4);

  struct sigaction action;
  memset(&action, 0, sizeof(action));
  action.sa_handler = &ProfSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  if (sigaction(SIGPROF, &action, &impl_->old_action) != 0) {
    g_signal_impl.store(nullptr, std::memory_order_release);
    return Status::Internal("sigaction(SIGPROF) failed");
  }

  itimerval timer;
  timer.it_interval.tv_sec = static_cast<time_t>(interval_us / 1000000);
  timer.it_interval.tv_usec = static_cast<suseconds_t>(interval_us % 1000000);
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    sigaction(SIGPROF, &impl_->old_action, nullptr);
    g_signal_impl.store(nullptr, std::memory_order_release);
    return Status::Internal("setitimer(ITIMER_PROF) failed");
  }
  impl_->started = true;
  return Status::OK();
}

void SignalSampler::Stop() {
  if (!impl_->started) return;
  itimerval zero;
  memset(&zero, 0, sizeof(zero));
  setitimer(ITIMER_PROF, &zero, nullptr);
  sigaction(SIGPROF, &impl_->old_action, nullptr);
  g_signal_impl.store(nullptr, std::memory_order_release);
  // A handler dispatched just before the disposition was restored may
  // still be on another thread's stack; give it time to return before the
  // caller may destroy this sampler.
  timespec pause{0, 2 * 1000 * 1000};  // 2 ms
  nanosleep(&pause, nullptr);
  impl_->started = false;
}

std::vector<StackSample> SignalSampler::Drain() {
  std::vector<StackSample> out;
  RawSample raw;
  while (impl_->ring.TryPop(&raw)) {
    StackSample sample;
    if (raw.phase != nullptr) sample.phase = raw.phase;
    int first = std::min(kSkipFrames, raw.depth);
    sample.frames.reserve(static_cast<size_t>(raw.depth - first));
    // backtrace() is leaf-first; folded stacks are root-first.
    for (int i = raw.depth - 1; i >= first; --i) {
      void* pc = raw.frames[i];
      auto it = impl_->symbol_cache.find(pc);
      if (it == impl_->symbol_cache.end()) {
        it = impl_->symbol_cache.emplace(pc, SymbolizePc(pc)).first;
      }
      sample.frames.push_back(it->second);
    }
    if (sample.frames.empty()) sample.frames.push_back("?");
    out.push_back(std::move(sample));
  }
  return out;
}

uint64_t SignalSampler::emitted_samples() const {
  return impl_->ring.emitted();
}

uint64_t SignalSampler::dropped_samples() const {
  return impl_->ring.dropped();
}

#else  // !GLY_HAVE_SIGNAL_SAMPLER

struct SignalSampler::Impl {};

SignalSampler::SignalSampler(size_t) : impl_(std::make_unique<Impl>()) {}
SignalSampler::~SignalSampler() = default;
Status SignalSampler::Start(uint64_t) {
  return Status::NotImplemented("signal sampler unavailable on this platform");
}
void SignalSampler::Stop() {}
std::vector<StackSample> SignalSampler::Drain() { return {}; }
uint64_t SignalSampler::emitted_samples() const { return 0; }
uint64_t SignalSampler::dropped_samples() const { return 0; }

#endif  // GLY_HAVE_SIGNAL_SAMPLER

// ---------------------------------------------------------------------------
// FakeSampler

void FakeSampler::AddSample(std::vector<std::string> frames_root_first,
                            std::string phase, uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  StackSample sample;
  sample.phase = std::move(phase);
  sample.frames = std::move(frames_root_first);
  sample.count = count;
  emitted_ += count;
  pending_.push_back(std::move(sample));
}

void FakeSampler::SetDropped(uint64_t dropped) {
  std::lock_guard<std::mutex> lock(mu_);
  dropped_ = dropped;
}

Status FakeSampler::Start(uint64_t interval_us) {
  std::lock_guard<std::mutex> lock(mu_);
  started_ = true;
  interval_us_ = interval_us;
  return Status::OK();
}

void FakeSampler::Stop() {
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

std::vector<StackSample> FakeSampler::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StackSample> out;
  out.swap(pending_);
  return out;
}

uint64_t FakeSampler::emitted_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return emitted_;
}

uint64_t FakeSampler::dropped_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

bool FakeSampler::started() const {
  std::lock_guard<std::mutex> lock(mu_);
  return started_;
}

uint64_t FakeSampler::interval_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return interval_us_;
}

// ---------------------------------------------------------------------------
// Folding

void FoldedProfile::Merge(const FoldedProfile& other) {
  for (const auto& [stack, count] : other.stacks) stacks[stack] += count;
  samples += other.samples;
  dropped += other.dropped;
}

std::vector<std::string> FoldedProfile::ToLines() const {
  std::vector<std::string> lines;
  lines.reserve(stacks.size());
  for (const auto& [stack, count] : stacks) {
    lines.push_back(stack + " " + std::to_string(count));
  }
  return lines;
}

std::string FoldedProfile::ToFolded() const {
  std::string out;
  for (const std::string& line : ToLines()) {
    out += line;
    out += '\n';
  }
  return out;
}

FoldedProfile FoldSamples(const std::vector<StackSample>& samples) {
  FoldedProfile folded;
  for (const StackSample& sample : samples) {
    std::string key;
    if (!sample.phase.empty()) key = SanitizeFrame(sample.phase);
    for (const std::string& frame : sample.frames) {
      if (!key.empty()) key += ';';
      key += SanitizeFrame(frame);
    }
    if (key.empty()) key = "?";
    folded.stacks[key] += sample.count;
    folded.samples += sample.count;
  }
  return folded;
}

// ---------------------------------------------------------------------------
// CpuProfiler

CpuProfiler::CpuProfiler(Options options) : options_(std::move(options)) {
  if (options_.sampler != nullptr) {
    sampler_ = options_.sampler;
  } else {
    owned_sampler_ = std::make_unique<SignalSampler>();
    sampler_ = owned_sampler_.get();
  }
}

CpuProfiler::~CpuProfiler() { Stop(); }

Status CpuProfiler::Start() {
  if (running_) return Status::Internal("profiler already running");
  GLY_RETURN_NOT_OK(sampler_->Start(options_.interval_us));
  running_ = true;
  return Status::OK();
}

FoldedProfile CpuProfiler::Collect() {
  FoldedProfile folded = FoldSamples(sampler_->Drain());
  return folded;
}

void CpuProfiler::Stop() {
  if (!running_) return;
  sampler_->Stop();
  running_ = false;
}

const char* CpuProfiler::mode() const { return sampler_->mode(); }

uint64_t CpuProfiler::emitted_samples() const {
  return sampler_->emitted_samples();
}

uint64_t CpuProfiler::dropped_samples() const {
  return sampler_->dropped_samples();
}

}  // namespace gly::prof
