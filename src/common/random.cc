#include "common/random.h"

#include <cassert>
#include <deque>

namespace gly {

uint64_t SamplePoisson(Rng& rng, double lambda) {
  assert(lambda > 0.0);
  if (lambda < 30.0) {
    // Knuth: multiply uniforms until the product drops below e^-lambda.
    const double limit = std::exp(-lambda);
    uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= rng.NextDouble();
    } while (p > limit);
    return k - 1;
  }
  // Split lambda: Poisson(a+b) = Poisson(a) + Poisson(b). Recurse on halves
  // until each piece is small. Exact and simple; lambda in Datagen is modest.
  double half = lambda / 2.0;
  return SamplePoisson(rng, half) + SamplePoisson(rng, lambda - half);
}

ZetaSampler::ZetaSampler(double alpha, uint64_t max_value)
    : alpha_(alpha), max_value_(max_value), b_(std::pow(2.0, alpha - 1.0)) {
  assert(alpha > 1.0);
  assert(max_value >= 1);
}

uint64_t ZetaSampler::Sample(Rng& rng) const {
  // Devroye's rejection method for the zeta distribution, with truncation
  // to [1, max_value_] by resampling (truncation mass is tiny for the
  // max_value_ used in Datagen, so the expected retry count is ~1).
  for (;;) {
    double x;
    double t;
    do {
      double u = rng.NextDouble();
      double v = rng.NextDouble();
      x = std::floor(std::pow(u, -1.0 / (alpha_ - 1.0)));
      t = std::pow(1.0 + 1.0 / x, alpha_ - 1.0);
      if (v * x * (t - 1.0) / (b_ - 1.0) <= t / b_) break;
    } while (true);
    uint64_t k = static_cast<uint64_t>(x);
    if (k >= 1 && k <= max_value_) return k;
  }
}

AliasTable::AliasTable(const std::vector<double>& weights) {
  assert(!weights.empty());
  const size_t n = weights.size();
  double sum = 0.0;
  for (double w : weights) sum += w;
  assert(sum > 0.0);

  prob_.resize(n);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / sum;

  std::deque<uint32_t> small, large;
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s = small.front();
    small.pop_front();
    uint32_t l = large.front();
    large.pop_front();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = scaled[l] + scaled[s] - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

size_t AliasTable::Sample(Rng& rng) const {
  size_t i = static_cast<size_t>(rng.NextBounded(prob_.size()));
  return rng.NextDouble() < prob_[i] ? i : alias_[i];
}

}  // namespace gly
