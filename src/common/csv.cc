#include "common/csv.h"

#include "common/string_util.h"

namespace gly {

std::string CsvWriter::Escape(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) *out_ << ',';
    *out_ << Escape(fields[i]);
  }
  *out_ << '\n';
  ++rows_;
}

CsvWriter& CsvWriter::Field(const std::string& value) {
  pending_.push_back(value);
  return *this;
}
CsvWriter& CsvWriter::Field(int64_t value) {
  pending_.push_back(std::to_string(value));
  return *this;
}
CsvWriter& CsvWriter::Field(uint64_t value) {
  pending_.push_back(std::to_string(value));
  return *this;
}
CsvWriter& CsvWriter::Field(double value) {
  pending_.push_back(StringPrintf("%.6g", value));
  return *this;
}

void CsvWriter::EndRow() {
  WriteRow(pending_);
  pending_.clear();
}

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';  // doubled quote inside a quoted field
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"' && field.empty()) {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field += c;
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

}  // namespace gly
