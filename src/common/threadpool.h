// Fixed-size thread pool with task futures and a parallel-for helper.
//
// The platform engines (pregel, mapreduce, dataflow) model "cluster workers"
// as pool threads; Datagen uses the pool for its Hadoop-like block-parallel
// generation.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/trace.h"

namespace gly {

/// A fixed-size pool of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future for its result. The submitter's
  /// effective tracer (thread-local override or process-global, see
  /// trace::ActiveTracer) is captured here and installed around the task,
  /// so a cell's parallel work traces into the cell's own tracer even on
  /// shared pool threads.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    trace::Tracer* tracer = trace::ActiveTracer();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task, tracer] {
        trace::ScopedThreadTracer scope(tracer);
        (*task)();
      });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs `fn(i)` for every i in [0, n), distributing chunks across the
  /// pool, and blocks until all complete. `fn` must be thread-safe across
  /// distinct indices.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Runs `fn(i)` for every i in [begin, end), splitting the range into
  /// chunks of at least `grain` indices (grain 0 = automatic). Blocks until
  /// every chunk finishes; if `fn` throws, the first exception propagates
  /// to the caller *after* all chunks have completed, so `fn` never
  /// outlives the call.
  ///
  /// Cooperative cancellation: with a non-null `cancel`, each chunk polls
  /// the token before running and cancelled chunks are skipped (already
  /// running chunks finish). The call still returns normally — callers
  /// poll the token afterwards (CheckCancel) to surface the status. A null
  /// token costs one pointer test per chunk.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t)>& fn,
                   const CancelToken* cancel = nullptr);

  /// Runs `fn(chunk_begin, chunk_end)` over [0, n) split into roughly
  /// pool-size chunks, blocking until done.
  void ParallelForChunked(
      size_t n, const std::function<void(size_t, size_t)>& fn);

  /// Ranged chunk variant: covers [begin, end) with chunks of at least
  /// `grain` indices (grain 0 = automatic). Same exception and
  /// cancellation contracts as the ranged ParallelFor.
  void ParallelForChunked(
      size_t begin, size_t end, size_t grain,
      const std::function<void(size_t, size_t)>& fn,
      const CancelToken* cancel = nullptr);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool stop_ = false;
};

/// Number of hardware threads, at least 1.
size_t HardwareThreads();

}  // namespace gly
