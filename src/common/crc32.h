// CRC32C (Castagnoli) checksum, shared by the graphdb WAL and the
// checkpoint serialization module.

#pragma once

#include <cstddef>
#include <cstdint>

namespace gly {

/// CRC32 (Castagnoli polynomial, bitwise) over a byte buffer.
uint32_t Crc32c(const void* data, size_t len);

/// Incremental form: start from kCrc32cInit, fold buffers with
/// Crc32cUpdate, then Crc32cFinalize. Equivalent to one-shot Crc32c over
/// the concatenation.
inline constexpr uint32_t kCrc32cInit = 0xFFFFFFFFu;
uint32_t Crc32cUpdate(uint32_t state, const void* data, size_t len);
inline uint32_t Crc32cFinalize(uint32_t state) { return state ^ 0xFFFFFFFFu; }

}  // namespace gly
