#include "common/cancellation.h"

#include <limits>

namespace gly {

const char* CancelReasonName(CancelReason reason) {
  switch (reason) {
    case CancelReason::kNone: return "none";
    case CancelReason::kDeadline: return "deadline";
    case CancelReason::kHarnessStop: return "harness_stop";
    case CancelReason::kStall: return "stall";
  }
  return "none";
}

bool CancelToken::Cancel(CancelReason reason, const std::string& detail) {
  // The lock spans the reason CAS and the detail write, and detail() takes
  // the same lock — a poller that observes `cancelled()` and asks for the
  // detail blocks until the winner's detail is in place.
  std::lock_guard<std::mutex> lock(mu_);
  if (!Cancel(reason)) return false;
  detail_ = detail;
  return true;
}

std::string CancelToken::detail() const {
  std::lock_guard<std::mutex> lock(mu_);
  return detail_;
}

Status CancelToken::ToStatus() const {
  const CancelReason why = reason();
  std::string what = detail();
  switch (why) {
    case CancelReason::kNone:
      return Status::Internal("CancelToken::ToStatus on a live token");
    case CancelReason::kDeadline:
      return Status::Timeout(what.empty() ? "cancelled: deadline exceeded"
                                          : what);
    case CancelReason::kStall:
      return Status::Timeout(
          what.empty() ? "cancelled: progress heartbeat stalled" : what);
    case CancelReason::kHarnessStop:
      return Status::Cancelled(what.empty() ? "cancelled: harness stop"
                                            : what);
  }
  return Status::Internal("unknown cancel reason");
}

Deadline Deadline::After(double seconds) {
  return Deadline(std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(seconds)));
}

bool Deadline::expired() const {
  if (never_) return false;
  return std::chrono::steady_clock::now() >= at_;
}

double Deadline::remaining_seconds() const {
  if (never_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(at_ -
                                       std::chrono::steady_clock::now())
      .count();
}

}  // namespace gly
