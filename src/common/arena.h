// Recycled-buffer primitives for the engine hot paths (the "arena" layer
// of the hot-path memory model, DESIGN.md §13).
//
// The paper's choke-point analysis (§2.1) blames per-superstep heap
// allocation and map-based message routing for most of the gap between
// the Pregel/dataflow engines and the hardware bound; Virtuoso's win in
// the same study comes from contiguous columnar access. These helpers let
// the engines keep every message/shuffle buffer flat and recycled:
//
//   * VectorPool<T>     — acquire/release std::vector<T> buffers whose
//                         capacity survives recycling, with byte telemetry
//                         reported into a shared PoolGroupStats.
//   * FlatAccumulator<V>— an epoch-tagged dense [key -> value] array: O(1)
//                         first-touch detection without clearing between
//                         epochs, the allocation-free replacement for
//                         per-round std::unordered_map / sort-and-fold.
//   * PoolGroupStats    — atomic held/peak byte accounting shared by the
//                         pools of one engine run (surfaced as
//                         `pregel.outbox_bytes_peak` /
//                         `dataflow.shuffle_bytes_pooled`).
//
// Lifetimes: pools and accumulators are owned by one engine activation
// (an Engine::Run frame or a dataflow Context); buffers recycle across
// supersteps/operators inside that activation and are released when it
// unwinds — including on cancellation, which exits through the normal
// return path.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace gly::arena {

/// Atomic held/peak byte accounting for a group of pools (one engine run).
/// Add/Sub are thread-safe; peak() is a monotonic high-water mark until
/// ResetPeak().
class PoolGroupStats {
 public:
  void Add(uint64_t bytes);
  void Sub(uint64_t bytes);
  uint64_t held() const { return held_.load(std::memory_order_relaxed); }
  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  void ResetPeak();

 private:
  std::atomic<uint64_t> held_{0};
  std::atomic<uint64_t> peak_{0};
};

/// Pool of std::vector<T> buffers. Release() keeps the vector's capacity
/// alive for the next Acquire(), so steady-state operation performs no
/// heap traffic. Not thread-safe: each pool belongs to one owner (the
/// engines use one pool per run/context, touched only between parallel
/// phases).
template <typename T>
class VectorPool {
 public:
  explicit VectorPool(PoolGroupStats* stats = nullptr) : stats_(stats) {}
  VectorPool(const VectorPool&) = delete;
  VectorPool& operator=(const VectorPool&) = delete;
  ~VectorPool() { Clear(); }

  /// Returns an empty vector, reusing a recycled buffer when available.
  std::vector<T> Acquire() {
    if (free_.empty()) return {};
    std::vector<T> v = std::move(free_.back());
    free_.pop_back();
    Account(-static_cast<int64_t>(Bytes(v)));
    v.clear();
    return v;
  }

  /// Recycles `v`'s storage. The contained elements are destroyed (clear),
  /// the capacity is kept.
  void Release(std::vector<T>&& v) {
    if (v.capacity() == 0) return;
    v.clear();
    Account(static_cast<int64_t>(Bytes(v)));
    free_.push_back(std::move(v));
  }

  /// Frees every recycled buffer (end-of-run / cancellation unwind).
  void Clear() {
    for (auto& v : free_) Account(-static_cast<int64_t>(Bytes(v)));
    free_.clear();
    free_.shrink_to_fit();
  }

  size_t free_buffers() const { return free_.size(); }

  /// Bytes currently held by recycled (idle) buffers.
  uint64_t held_bytes() const {
    uint64_t total = 0;
    for (const auto& v : free_) total += Bytes(v);
    return total;
  }

 private:
  static uint64_t Bytes(const std::vector<T>& v) {
    return static_cast<uint64_t>(v.capacity()) * sizeof(T);
  }
  void Account(int64_t delta) {
    if (stats_ == nullptr || delta == 0) return;
    if (delta > 0) {
      stats_->Add(static_cast<uint64_t>(delta));
    } else {
      stats_->Sub(static_cast<uint64_t>(-delta));
    }
  }

  std::vector<std::vector<T>> free_;
  PoolGroupStats* stats_;
};

/// Epoch-tagged dense accumulator: a flat [key -> value] array over keys
/// in [0, size) where "is this key live this round" is one integer
/// compare, and starting a new round is O(1) (no clearing). The touched
/// list records first-touch order, so callers can iterate live keys —
/// either in encounter order or sorted — without scanning the whole
/// domain. 64-bit epochs never wrap in practice.
template <typename V>
class FlatAccumulator {
 public:
  /// Grows the key domain to at least `n` (values of new slots are
  /// default-constructed; they only become visible after mark()).
  void EnsureDomain(size_t n) {
    if (tags_.size() < n) {
      tags_.resize(n, 0);
      slots_.resize(n);
    }
  }

  /// Starts a new accumulation round; every key becomes un-touched.
  void NewEpoch() {
    ++epoch_;
    touched_.clear();
  }

  bool touched(size_t key) const { return tags_[key] == epoch_; }

  /// Marks `key` live this epoch and records it in the touched list.
  /// Call once per key per epoch (guarded by touched()).
  V& mark(size_t key) {
    tags_[key] = epoch_;
    touched_.push_back(key);
    return slots_[key];
  }

  V& slot(size_t key) { return slots_[key]; }
  const V& slot(size_t key) const { return slots_[key]; }

  /// Keys marked this epoch, in first-touch order (mutable so callers may
  /// sort it when deterministic ascending order is required).
  std::vector<size_t>& touched_keys() { return touched_; }

  uint64_t held_bytes() const {
    return static_cast<uint64_t>(tags_.capacity()) * sizeof(uint64_t) +
           static_cast<uint64_t>(slots_.capacity()) * sizeof(V) +
           static_cast<uint64_t>(touched_.capacity()) * sizeof(size_t);
  }

 private:
  std::vector<uint64_t> tags_;
  std::vector<V> slots_;
  std::vector<size_t> touched_;
  uint64_t epoch_ = 0;
};

}  // namespace gly::arena
