#include "common/config.h"

#include <fstream>
#include <sstream>

#include "common/macros.h"
#include "common/string_util.h"

namespace gly {

Result<Config> Config::Parse(const std::string& text) {
  Config config;
  std::string section;
  size_t line_no = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = Trim(line);
    if (sv.empty() || sv[0] == '#' || sv[0] == ';') continue;
    if (sv.front() == '[') {
      if (sv.back() != ']') {
        return Status::InvalidArgument(
            StringPrintf("config line %zu: unterminated section header", line_no));
      }
      section = std::string(Trim(sv.substr(1, sv.size() - 2)));
      continue;
    }
    size_t eq = sv.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          StringPrintf("config line %zu: expected key=value", line_no));
    }
    std::string key(Trim(sv.substr(0, eq)));
    std::string value(Trim(sv.substr(eq + 1)));
    if (key.empty()) {
      return Status::InvalidArgument(
          StringPrintf("config line %zu: empty key", line_no));
    }
    if (!section.empty()) key = section + "." + key;
    config.values_[key] = value;
  }
  return config;
}

Result<Config> Config::LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open config file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  auto result = Parse(buf.str());
  if (!result.ok()) return result.status().WithPrefix(path);
  return result;
}

void Config::Set(const std::string& key, std::string value) {
  values_[key] = std::move(value);
}
void Config::SetInt(const std::string& key, int64_t value) {
  values_[key] = std::to_string(value);
}
void Config::SetDouble(const std::string& key, double value) {
  values_[key] = StringPrintf("%.17g", value);
}
void Config::SetBool(const std::string& key, bool value) {
  values_[key] = value ? "true" : "false";
}

bool Config::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

Result<std::string> Config::GetString(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return Status::NotFound("config key: " + key);
  return it->second;
}

Result<int64_t> Config::GetInt(const std::string& key) const {
  GLY_ASSIGN_OR_RETURN(std::string s, GetString(key));
  return ParseInt64(s);
}

Result<uint64_t> Config::GetUint(const std::string& key) const {
  GLY_ASSIGN_OR_RETURN(std::string s, GetString(key));
  return ParseUint64(s);
}

Result<double> Config::GetDouble(const std::string& key) const {
  GLY_ASSIGN_OR_RETURN(std::string s, GetString(key));
  return ParseDouble(s);
}

Result<bool> Config::GetBool(const std::string& key) const {
  GLY_ASSIGN_OR_RETURN(std::string s, GetString(key));
  std::string lower = ToLower(s);
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on") {
    return true;
  }
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off") {
    return false;
  }
  return Status::InvalidArgument("cannot parse bool: '" + s + "'");
}

std::string Config::GetStringOr(const std::string& key, std::string def) const {
  auto r = GetString(key);
  return r.ok() ? r.ValueOrDie() : std::move(def);
}
int64_t Config::GetIntOr(const std::string& key, int64_t def) const {
  auto r = GetInt(key);
  return r.ok() ? r.ValueOrDie() : def;
}
uint64_t Config::GetUintOr(const std::string& key, uint64_t def) const {
  auto r = GetUint(key);
  return r.ok() ? r.ValueOrDie() : def;
}
double Config::GetDoubleOr(const std::string& key, double def) const {
  auto r = GetDouble(key);
  return r.ok() ? r.ValueOrDie() : def;
}
bool Config::GetBoolOr(const std::string& key, bool def) const {
  auto r = GetBool(key);
  return r.ok() ? r.ValueOrDie() : def;
}

std::vector<std::string> Config::KeysWithPrefix(const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = values_.lower_bound(prefix); it != values_.end(); ++it) {
    if (!StartsWith(it->first, prefix)) break;
    out.push_back(it->first);
  }
  return out;
}

Config Config::Scoped(const std::string& prefix) const {
  Config out;
  std::string full = prefix + ".";
  for (const std::string& key : KeysWithPrefix(full)) {
    out.values_[key.substr(full.size())] = values_.at(key);
  }
  return out;
}

void Config::MergeFrom(const Config& other) {
  for (const auto& [k, v] : other.values_) values_[k] = v;
}

std::string Config::ToString() const {
  std::string out;
  for (const auto& [k, v] : values_) {
    out += k;
    out += " = ";
    out += v;
    out += '\n';
  }
  return out;
}

}  // namespace gly
