#include "common/metrics.h"

#include <cstdio>

#include "common/macros.h"
#include "common/string_util.h"

namespace gly::metrics {

namespace internal {
std::atomic<Registry*> g_active_registry{nullptr};
}  // namespace internal

Counter* Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

HistogramMetric* Registry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<HistogramMetric>())
             .first;
  }
  return it->second.get();
}

std::map<std::string, MetricValue> Registry::Snapshot() const {
  std::map<std::string, MetricValue> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, histogram] : histograms_) {
    MetricValue v;
    v.type = MetricValue::Type::kHistogram;
    v.histogram = histogram->Snapshot();
    out[name] = std::move(v);
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricValue v;
    v.type = MetricValue::Type::kGauge;
    v.gauge = gauge->Value();
    out[name] = v;
  }
  for (const auto& [name, counter] : counters_) {
    MetricValue v;
    v.type = MetricValue::Type::kCounter;
    v.counter = counter->Value();
    out[name] = v;
  }
  return out;
}

std::string Registry::ToJsonl() const {
  std::map<std::string, MetricValue> snapshot = Snapshot();
  std::string out = "{\"schema_version\":1,\"kind\":\"gly.metrics\"}\n";
  for (const auto& [name, v] : snapshot) {
    out += "{\"name\":\"";
    out += JsonEscape(name);
    out += "\",";
    switch (v.type) {
      case MetricValue::Type::kCounter:
        out += "\"type\":\"counter\",\"value\":";
        out += std::to_string(v.counter);
        break;
      case MetricValue::Type::kGauge:
        out += "\"type\":\"gauge\",\"value\":";
        out += StringPrintf("%.9g", v.gauge);
        break;
      case MetricValue::Type::kHistogram: {
        const Histogram& h = v.histogram;
        out += "\"type\":\"histogram\",\"count\":";
        out += std::to_string(h.total_count());
        out += ",\"min\":";
        out += std::to_string(h.Min());
        out += ",\"max\":";
        out += std::to_string(h.Max());
        out += ",\"mean\":";
        out += StringPrintf("%.9g", h.Mean());
        out += ",\"p50\":";
        out += std::to_string(h.Percentile(0.5));
        out += ",\"p95\":";
        out += std::to_string(h.Percentile(0.95));
        out += ",\"p99\":";
        out += std::to_string(h.Percentile(0.99));
        out += ",\"items\":[";
        bool first = true;
        for (const auto& [value, count] : h.Items()) {
          if (!first) out += ',';
          first = false;
          out += '[';
          out += std::to_string(value);
          out += ',';
          out += std::to_string(count);
          out += ']';
        }
        out += ']';
        break;
      }
    }
    out += "}\n";
  }
  return out;
}

namespace {

// Extracts the value of `"key":` from a flat JSON line; empty if absent.
// Values here are numbers, bare strings, or the items array — none of the
// repo's metric names contain the delimiters this scans for.
std::string_view RawField(std::string_view line, std::string_view key) {
  std::string needle;
  needle.reserve(key.size() + 3);
  needle += '"';
  needle += key;
  needle += "\":";
  size_t pos = line.find(needle);
  if (pos == std::string_view::npos) return {};
  size_t start = pos + needle.size();
  size_t end = start;
  if (end < line.size() && line[end] == '[') {
    int depth = 0;
    while (end < line.size()) {
      if (line[end] == '[') ++depth;
      if (line[end] == ']' && --depth == 0) {
        ++end;
        break;
      }
      ++end;
    }
  } else if (end < line.size() && line[end] == '"') {
    ++end;
    while (end < line.size() && line[end] != '"') {
      if (line[end] == '\\') ++end;
      ++end;
    }
    if (end < line.size()) ++end;
  } else {
    while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  }
  return line.substr(start, end - start);
}

Result<std::string> StringField(std::string_view line, std::string_view key) {
  std::string_view raw = RawField(line, key);
  if (raw.size() < 2 || raw.front() != '"' || raw.back() != '"') {
    return Status::InvalidArgument("metrics jsonl: missing string field \"" +
                                   std::string(key) + "\"");
  }
  // Metric names never need unescaping in practice, but honor the format.
  std::string_view body = raw.substr(1, raw.size() - 2);
  std::string out;
  for (size_t i = 0; i < body.size(); ++i) {
    if (body[i] == '\\' && i + 1 < body.size()) ++i;
    out += body[i];
  }
  return out;
}

}  // namespace

Result<std::map<std::string, MetricValue>> Registry::FromJsonl(
    std::string_view text) {
  std::map<std::string, MetricValue> out;
  bool saw_header = false;
  uint64_t schema_version = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    std::string_view line = Trim(raw_line);
    if (line.empty()) continue;
    if (!saw_header) {
      // Forward-compat: accept any schema_version >= 1 so readers built
      // against v1 can still load files from newer writers; unknown keys
      // anywhere are ignored by the field scanner, and under a newer
      // version unknown metric *types* are skipped instead of rejected.
      std::string_view version_raw = RawField(line, "schema_version");
      std::string_view kind = RawField(line, "kind");
      auto version = ParseUint64(version_raw);
      if (!version.ok() || version.ValueOrDie() < 1 ||
          kind != "\"gly.metrics\"") {
        return Status::InvalidArgument(
            "metrics jsonl: bad or missing schema header: " +
            std::string(line));
      }
      schema_version = version.ValueOrDie();
      saw_header = true;
      continue;
    }
    GLY_ASSIGN_OR_RETURN(std::string name, StringField(line, "name"));
    GLY_ASSIGN_OR_RETURN(std::string type, StringField(line, "type"));
    MetricValue v;
    if (type == "counter") {
      v.type = MetricValue::Type::kCounter;
      GLY_ASSIGN_OR_RETURN(v.counter, ParseUint64(RawField(line, "value")));
    } else if (type == "gauge") {
      v.type = MetricValue::Type::kGauge;
      GLY_ASSIGN_OR_RETURN(v.gauge, ParseDouble(RawField(line, "value")));
    } else if (type == "histogram") {
      v.type = MetricValue::Type::kHistogram;
      std::string_view items = RawField(line, "items");
      if (items.size() < 2 || items.front() != '[' || items.back() != ']') {
        return Status::InvalidArgument(
            "metrics jsonl: histogram without items array: " + name);
      }
      std::string_view body = items.substr(1, items.size() - 2);
      size_t pos = 0;
      while (pos < body.size()) {
        size_t open = body.find('[', pos);
        if (open == std::string_view::npos) break;
        size_t close = body.find(']', open);
        if (close == std::string_view::npos) {
          return Status::InvalidArgument(
              "metrics jsonl: malformed histogram items: " + name);
        }
        std::string_view pair = body.substr(open + 1, close - open - 1);
        size_t comma = pair.find(',');
        if (comma == std::string_view::npos) {
          return Status::InvalidArgument(
              "metrics jsonl: malformed histogram pair: " + name);
        }
        GLY_ASSIGN_OR_RETURN(uint64_t value,
                             ParseUint64(Trim(pair.substr(0, comma))));
        GLY_ASSIGN_OR_RETURN(uint64_t count,
                             ParseUint64(Trim(pair.substr(comma + 1))));
        v.histogram.Add(value, count);
        pos = close + 1;
      }
    } else {
      // Version 1 has a closed type set, so an unknown type there is
      // corruption; newer versions may add types this reader skips.
      if (schema_version <= 1) {
        return Status::InvalidArgument(
            "metrics jsonl: unknown metric type \"" + type + "\"");
      }
      continue;
    }
    out[name] = std::move(v);
  }
  if (!saw_header) {
    return Status::InvalidArgument("metrics jsonl: empty document");
  }
  return out;
}

Status Registry::WriteTo(const std::string& path) const {
  std::string jsonl = ToJsonl();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open metrics file for writing: " + path);
  }
  size_t written = std::fwrite(jsonl.data(), 1, jsonl.size(), f);
  int close_rc = std::fclose(f);
  if (written != jsonl.size() || close_rc != 0) {
    return Status::IOError("short write to metrics file: " + path);
  }
  return Status::OK();
}

}  // namespace gly::metrics
