#include "common/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/crc32.h"
#include "common/fault_injection.h"
#include "common/macros.h"

namespace gly {

namespace {

constexpr char kMagic[8] = {'G', 'L', 'Y', 'C', 'K', 'P', 'T', '1'};
constexpr size_t kHeaderBytes = 8 + 4 + 8 + 4;

Status WriteFileDurably(const std::string& path, const std::string& bytes) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n <= 0) {
      ::close(fd);
      return Status::IOError("write(" + path + "): " + std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::IOError("fsync(" + path + "): " + std::strerror(errno));
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace

std::string* CheckpointWriter::AddSection(const std::string& name) {
  sections_.emplace_back(name, std::string());
  return &sections_.back().second;
}

Status CheckpointWriter::WriteTo(const std::string& path) const {
  std::string payload;
  for (const auto& [name, data] : sections_) {
    uint32_t name_len = static_cast<uint32_t>(name.size());
    uint64_t data_len = data.size();
    payload.append(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    payload += name;
    payload.append(reinterpret_cast<const char*>(&data_len), sizeof(data_len));
    payload += data;
  }
  uint32_t section_count = static_cast<uint32_t>(sections_.size());
  uint64_t payload_len = payload.size();
  uint32_t crc = Crc32c(payload.data(), payload.size());

  std::string file;
  file.reserve(kHeaderBytes + payload.size());
  file.append(kMagic, sizeof(kMagic));
  file.append(reinterpret_cast<const char*>(&section_count),
              sizeof(section_count));
  file.append(reinterpret_cast<const char*>(&payload_len), sizeof(payload_len));
  file.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  file += payload;

  const std::string tmp = path + ".tmp";
  GLY_RETURN_NOT_OK(WriteFileDurably(tmp, file).WithPrefix("checkpoint stage"));
  // Crash window: the snapshot is staged but not yet published. An injected
  // fault here models losing the process between stage and rename — the
  // previous checkpoint at `path` must remain the recovery point.
  GLY_FAULT_POINT("checkpoint.write");
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("rename(" + tmp + " -> " + path +
                           "): " + std::strerror(errno));
  }
  return Status::OK();
}

Result<CheckpointReader> CheckpointReader::Load(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  off_t file_size = ::lseek(fd, 0, SEEK_END);
  if (file_size < static_cast<off_t>(kHeaderBytes)) {
    ::close(fd);
    return Status::IOError("checkpoint truncated (header): " + path);
  }
  std::string raw(static_cast<size_t>(file_size), '\0');
  ssize_t n = ::pread(fd, raw.data(), raw.size(), 0);
  ::close(fd);
  if (n != file_size) {
    return Status::IOError("checkpoint short read: " + path);
  }

  if (std::memcmp(raw.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::IOError("checkpoint bad magic: " + path);
  }
  uint32_t section_count = 0;
  uint64_t payload_len = 0;
  uint32_t crc = 0;
  std::memcpy(&section_count, raw.data() + 8, sizeof(section_count));
  std::memcpy(&payload_len, raw.data() + 12, sizeof(payload_len));
  std::memcpy(&crc, raw.data() + 20, sizeof(crc));
  if (payload_len != raw.size() - kHeaderBytes) {
    return Status::IOError("checkpoint truncated (payload): " + path);
  }
  if (Crc32c(raw.data() + kHeaderBytes, payload_len) != crc) {
    return Status::IOError("checkpoint checksum mismatch: " + path);
  }

  CheckpointReader reader;
  reader.payload_ = raw.substr(kHeaderBytes);
  size_t p = 0;
  for (uint32_t i = 0; i < section_count; ++i) {
    if (p + 4 > reader.payload_.size()) {
      return Status::IOError("checkpoint section table corrupt: " + path);
    }
    uint32_t name_len = 0;
    std::memcpy(&name_len, reader.payload_.data() + p, sizeof(name_len));
    p += 4;
    if (p + name_len + 8 > reader.payload_.size()) {
      return Status::IOError("checkpoint section table corrupt: " + path);
    }
    std::string name = reader.payload_.substr(p, name_len);
    p += name_len;
    uint64_t data_len = 0;
    std::memcpy(&data_len, reader.payload_.data() + p, sizeof(data_len));
    p += 8;
    if (data_len > reader.payload_.size() - p) {
      return Status::IOError("checkpoint section table corrupt: " + path);
    }
    reader.sections_[name] = {p, static_cast<size_t>(data_len)};
    p += data_len;
  }
  return reader;
}

Result<std::string_view> CheckpointReader::Section(
    const std::string& name) const {
  auto it = sections_.find(name);
  if (it == sections_.end()) {
    return Status::NotFound("checkpoint section: " + name);
  }
  return std::string_view(payload_.data() + it->second.first,
                          it->second.second);
}

void RemoveCheckpoint(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  std::filesystem::remove(path + ".tmp", ec);
}

}  // namespace gly
