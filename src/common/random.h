// Deterministic pseudo-random number generation.
//
// Every randomized component in graphalytics (Datagen, R-MAT, rewiring,
// forest-fire evolution, platform partitioners) takes an explicit 64-bit
// seed, so benchmark runs are reproducible — a core Datagen requirement in
// the paper ("it is deterministic, guaranteeing reproducible results and
// fair comparisons").

#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

namespace gly {

/// SplitMix64: used to seed other generators and to derive independent
/// substreams (`Derive`) from a master seed, so parallel workers draw from
/// decorrelated streams regardless of thread scheduling.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Derives an independent stream seed from (master_seed, stream_id).
inline uint64_t DeriveSeed(uint64_t master_seed, uint64_t stream_id) {
  SplitMix64 mix(master_seed ^ (stream_id * 0xD1B54A32D192ED03ULL));
  mix.Next();
  return mix.Next();
}

/// xoshiro256**: fast, high-quality 64-bit PRNG used as the workhorse
/// generator. Satisfies the UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed) {
    SplitMix64 mix(seed);
    for (auto& s : state_) s = mix.Next();
  }

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }

  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  /// Uses Lemire's multiply-shift rejection method.
  uint64_t NextBounded(uint64_t bound) {
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = -bound % bound;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return (Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `p`.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<uint64_t, 4> state_{};
};

/// Samples from a geometric distribution on {1, 2, ...} with success
/// probability `p` (number of trials until first success).
inline uint64_t SampleGeometric(Rng& rng, double p) {
  // Inverse transform: ceil(ln(U) / ln(1-p)).
  double u = rng.NextDouble();
  if (u <= 0.0) u = 1e-300;
  double v = std::log(u) / std::log1p(-p);
  uint64_t k = static_cast<uint64_t>(std::ceil(v));
  return k == 0 ? 1 : k;
}

/// Samples from a Poisson distribution with mean `lambda`.
/// Uses Knuth's method for small lambda and a normal approximation with
/// rejection touch-up for large lambda.
uint64_t SamplePoisson(Rng& rng, double lambda);

/// Samples from a Weibull distribution with shape `k` and scale `lambda`,
/// rounded up to an integer >= 1 (degrees are integral).
inline uint64_t SampleWeibullDegree(Rng& rng, double k, double lambda) {
  double u = rng.NextDouble();
  if (u <= 0.0) u = 1e-300;
  double x = lambda * std::pow(-std::log(1.0 - u), 1.0 / k);
  uint64_t d = static_cast<uint64_t>(std::ceil(x));
  return d == 0 ? 1 : d;
}

/// Samples from a (truncated) zeta / Zipf distribution P(X=k) ∝ k^-alpha on
/// {1, ..., max_value} using rejection sampling (Devroye). alpha > 1.
class ZetaSampler {
 public:
  ZetaSampler(double alpha, uint64_t max_value);

  uint64_t Sample(Rng& rng) const;

  double alpha() const { return alpha_; }

 private:
  double alpha_;
  uint64_t max_value_;
  double b_;  // 2^(alpha-1)
};

/// Weighted discrete sampling in O(1) per draw after O(n) setup
/// (Walker/Vose alias method). Used by the empirical degree plugin.
class AliasTable {
 public:
  /// `weights` need not be normalized; must be non-empty with a positive sum.
  explicit AliasTable(const std::vector<double>& weights);

  /// Returns an index in [0, weights.size()).
  size_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace gly
