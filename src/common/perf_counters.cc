#include "common/perf_counters.h"

#include <cstring>

#include "common/string_util.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <sys/time.h>
#include <unistd.h>
#endif

namespace gly::perf {

namespace internal {
std::atomic<PerfCounters*> g_active_counters{nullptr};
}  // namespace internal

namespace {

#if defined(__linux__)

int OpenPerfEvent(uint32_t type, uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = 0;
  // Count this process and every thread it spawns *after* the open; the
  // harness opens counters before engine pools exist for exactly this
  // reason. inherit precludes PERF_FORMAT_GROUP, hence one fd per event.
  attr.inherit = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  long fd = syscall(__NR_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
                    /*group_fd=*/-1, /*flags=*/0UL);
  return static_cast<int>(fd);
}

double RusageCpuSeconds(const rusage& ru) {
  auto seconds = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
  };
  return seconds(ru.ru_utime) + seconds(ru.ru_stime);
}

#endif  // __linux__

}  // namespace

std::unique_ptr<PerfCounters> PerfCounters::Open() {
  std::unique_ptr<PerfCounters> counters(new PerfCounters());
#if defined(__linux__)
  struct EventSpec {
    uint32_t type;
    uint64_t config;
  };
  const EventSpec specs[kNumEvents] = {
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
      {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},
  };
  bool all_open = true;
  for (int i = 0; i < kNumEvents; ++i) {
    counters->fds_[i] = OpenPerfEvent(specs[i].type, specs[i].config);
    if (counters->fds_[i] < 0) {
      all_open = false;
      break;
    }
  }
  if (all_open) {
    counters->fallback_ = false;
  } else {
    // All-or-nothing: partial counter sets would make IPC/miss rates lie.
    for (int i = 0; i < kNumEvents; ++i) {
      if (counters->fds_[i] >= 0) close(counters->fds_[i]);
      counters->fds_[i] = -1;
    }
  }
#endif
  return counters;
}

PerfCounters::~PerfCounters() {
#if defined(__linux__)
  for (int i = 0; i < kNumEvents; ++i) {
    if (fds_[i] >= 0) close(fds_[i]);
  }
#endif
}

Reading PerfCounters::Read() const {
  Reading r;
#if defined(__linux__)
  if (!fallback_) {
    uint64_t values[kNumEvents] = {0, 0, 0, 0, 0};
    for (int i = 0; i < kNumEvents; ++i) {
      uint64_t value = 0;
      if (read(fds_[i], &value, sizeof(value)) == sizeof(value)) {
        values[i] = value;
      }
    }
    r.cycles = values[0];
    r.instructions = values[1];
    r.cache_misses = values[2];
    r.branch_misses = values[3];
    // TASK_CLOCK counts nanoseconds of CPU time.
    r.task_clock_seconds = static_cast<double>(values[4]) * 1e-9;
    return r;
  }
  rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    r.task_clock_seconds = RusageCpuSeconds(ru);
    r.minor_faults = static_cast<uint64_t>(ru.ru_minflt);
    r.major_faults = static_cast<uint64_t>(ru.ru_majflt);
    r.ctx_switches =
        static_cast<uint64_t>(ru.ru_nvcsw) + static_cast<uint64_t>(ru.ru_nivcsw);
  }
#endif
  return r;
}

CounterDelta PerfCounters::Delta(const Reading& begin,
                                 const Reading& end) const {
  auto sub = [](uint64_t a, uint64_t b) { return a >= b ? a - b : 0; };
  CounterDelta d;
  d.fallback = fallback_;
  d.cycles = sub(end.cycles, begin.cycles);
  d.instructions = sub(end.instructions, begin.instructions);
  d.cache_misses = sub(end.cache_misses, begin.cache_misses);
  d.branch_misses = sub(end.branch_misses, begin.branch_misses);
  double clock = end.task_clock_seconds - begin.task_clock_seconds;
  d.task_clock_seconds = clock > 0 ? clock : 0.0;
  d.minor_faults = sub(end.minor_faults, begin.minor_faults);
  d.major_faults = sub(end.major_faults, begin.major_faults);
  d.ctx_switches = sub(end.ctx_switches, begin.ctx_switches);
  return d;
}

void SpanCounters::Attach(const CounterDelta& delta) {
  span_->SetAttribute("counters", counters_->mode());
  span_->SetAttribute("task_clock_ms",
                      StringPrintf("%.3f", delta.task_clock_seconds * 1e3));
  if (delta.fallback) {
    span_->SetAttribute("minor_faults", delta.minor_faults);
    span_->SetAttribute("major_faults", delta.major_faults);
    span_->SetAttribute("ctx_switches", delta.ctx_switches);
    return;
  }
  span_->SetAttribute("cycles", delta.cycles);
  span_->SetAttribute("instructions", delta.instructions);
  span_->SetAttribute("cache_misses", delta.cache_misses);
  span_->SetAttribute("branch_misses", delta.branch_misses);
  span_->SetAttribute("ipc", StringPrintf("%.3f", delta.Ipc()));
  span_->SetAttribute("cache_mpki", StringPrintf("%.3f", delta.CacheMpki()));
  span_->SetAttribute("branch_mpki", StringPrintf("%.3f", delta.BranchMpki()));
}

}  // namespace gly::perf
