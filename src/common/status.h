// Status: Arrow/RocksDB-style error propagation without exceptions.
//
// All fallible public APIs in graphalytics return either `Status` or
// `Result<T>` (see result.h). A Status is cheap to copy when OK (no
// allocation) and carries a code plus a human-readable message otherwise.

#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace gly {

/// Error categories used across the library.
///
/// The set mirrors the failures the Graphalytics harness must distinguish:
/// platform failures from exceeding a memory budget (`ResourceExhausted`)
/// are reported differently in benchmark reports ("missing values indicate
/// failures") than validation failures (`ValidationFailed`) or I/O errors.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kIOError = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kResourceExhausted = 5,
  kNotImplemented = 6,
  kInternal = 7,
  kTimeout = 8,
  kValidationFailed = 9,
  kCancelled = 10,
  kUntested = 11,
};

/// Returns the canonical lowercase name of a status code ("ok", "io-error"...).
std::string_view StatusCodeToString(StatusCode code);

/// Inverse of StatusCodeToString. Returns false if `name` is not a
/// canonical code name (the caller decides how to degrade).
bool StatusCodeFromString(std::string_view name, StatusCode* code);

/// Outcome of an operation: OK, or an error code plus message.
///
/// An OK status carries no state (the internal pointer is null), so returning
/// `Status::OK()` from hot paths costs nothing. Error construction allocates.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  /// Constructs a status with the given code and message. `code` must not be
  /// `kOk`; use the default constructor (or `OK()`) for success.
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Success singleton-by-value.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status ValidationFailed(std::string msg) {
    return Status(StatusCode::kValidationFailed, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  /// A check that was never performed (distinct from a passing check). Used
  /// by the harness to report "validation not run" explicitly instead of
  /// defaulting to OK.
  static Status Untested(std::string msg) {
    return Status(StatusCode::kUntested, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsTimeout() const { return code() == StatusCode::kTimeout; }
  bool IsValidationFailed() const {
    return code() == StatusCode::kValidationFailed;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsUntested() const { return code() == StatusCode::kUntested; }

  /// The error message; empty for OK.
  const std::string& message() const;

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with `prefix + ": "` prepended to the
  /// message. OK statuses are returned unchanged.
  Status WithPrefix(std::string_view prefix) const;

  /// Aborts the process with the status message if not OK. For use in
  /// examples and tests where failure is unrecoverable.
  void Check() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<State> state_;  // null == OK
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

}  // namespace gly
