#include "common/threadpool.h"

#include <algorithm>
#include <exception>

namespace gly {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelFor(0, n, 0, fn);
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t)>& fn,
                             const CancelToken* cancel) {
  ParallelForChunked(
      begin, end, grain,
      [&fn](size_t chunk_begin, size_t chunk_end) {
        for (size_t i = chunk_begin; i < chunk_end; ++i) fn(i);
      },
      cancel);
}

void ThreadPool::ParallelForChunked(
    size_t n, const std::function<void(size_t, size_t)>& fn) {
  ParallelForChunked(0, n, 0, fn);
}

void ThreadPool::ParallelForChunked(
    size_t begin, size_t end, size_t grain,
    const std::function<void(size_t, size_t)>& fn,
    const CancelToken* cancel) {
  if (begin >= end) return;
  const size_t n = end - begin;
  size_t chunks = std::min(n, num_threads() * 4);
  if (grain > 0) chunks = std::min(chunks, (n + grain - 1) / grain);
  chunks = std::max<size_t>(1, chunks);
  const size_t chunk_size = (n + chunks - 1) / chunks;
  if (threads_.size() == 1) {
    // A one-thread pool serializes the chunks anyway; running them on the
    // caller preserves order, cancellation, and first-exception semantics
    // while skipping the queue/future handoff entirely.
    std::exception_ptr first_error;
    for (size_t c = 0; c < chunks; ++c) {
      const size_t chunk_begin = begin + c * chunk_size;
      const size_t chunk_end = std::min(end, chunk_begin + chunk_size);
      if (chunk_begin >= chunk_end) break;
      if (Cancelled(cancel)) continue;
      try {
        fn(chunk_begin, chunk_end);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    const size_t chunk_begin = begin + c * chunk_size;
    const size_t chunk_end = std::min(end, chunk_begin + chunk_size);
    if (chunk_begin >= chunk_end) break;
    futures.push_back(Submit([&fn, cancel, chunk_begin, chunk_end] {
      // Cooperative cancellation: chunks not yet started are skipped once
      // the token is armed; the caller polls the token after the call.
      if (Cancelled(cancel)) return;
      fn(chunk_begin, chunk_end);
    }));
  }
  // Drain every future before rethrowing: a chunk still running when the
  // call returns would use a dangling `fn`. The first exception wins.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

size_t HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

}  // namespace gly
