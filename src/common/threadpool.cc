#include "common/threadpool.h"

#include <algorithm>

namespace gly {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelForChunked(n, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::ParallelForChunked(
    size_t n, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t chunks = std::min(n, num_threads() * 4);
  const size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * chunk_size;
    const size_t end = std::min(n, begin + chunk_size);
    if (begin >= end) break;
    futures.push_back(Submit([&fn, begin, end] { fn(begin, end); }));
  }
  for (auto& f : futures) f.get();
}

size_t HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

}  // namespace gly
