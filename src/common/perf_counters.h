// Hardware performance counters attached to trace spans — the resource-
// attribution half of the profiling layer (DESIGN.md §14). A PerfCounters
// instance opens a small fixed set of per-process counters via
// perf_event_open (cycles, instructions, cache-misses, branch-misses,
// task-clock); SpanCounters snapshots them around an existing TraceSpan
// and attaches the deltas — plus derived IPC and misses-per-kilo-
// instruction — as span attributes, so a `pregel.superstep` or
// `dataflow.shuffle` span explains *why* it took as long as it did.
//
// Fallback ladder: perf events are frequently unavailable (CI containers,
// perf_event_paranoid, non-Linux). Open() never fails — when any counter
// cannot be opened, the whole instance degrades to getrusage(RUSAGE_SELF)
// deltas (user+system CPU time, page faults, context switches) and spans
// carry an explicit `counters: "fallback"` marker instead of silently
// missing data.
//
// Activation mirrors the tracer: ScopedPerfCounters installs an instance
// process-globally; SpanCounters on a disabled span or with no installed
// instance is inert. Counters are opened with inherit=1, so open the
// instance *before* spawning worker pools — inheritance only covers
// threads created after the perf fds exist.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <atomic>

#include "common/trace.h"

namespace gly::perf {

/// One snapshot of the counter set (absolute values since Open).
struct Reading {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t cache_misses = 0;
  uint64_t branch_misses = 0;
  double task_clock_seconds = 0.0;
  // Fallback-mode fields (getrusage deltas; zero in perf mode).
  uint64_t minor_faults = 0;
  uint64_t major_faults = 0;
  uint64_t ctx_switches = 0;
};

/// Difference of two Readings plus derived rates.
struct CounterDelta {
  bool fallback = false;  ///< true = getrusage ladder, not perf events
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t cache_misses = 0;
  uint64_t branch_misses = 0;
  double task_clock_seconds = 0.0;
  uint64_t minor_faults = 0;
  uint64_t major_faults = 0;
  uint64_t ctx_switches = 0;

  /// Instructions per cycle (0 when cycles are unavailable).
  double Ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
  }
  /// Cache misses per kilo-instruction (0 when instructions unavailable).
  double CacheMpki() const {
    return instructions == 0 ? 0.0
                             : 1000.0 * static_cast<double>(cache_misses) /
                                   static_cast<double>(instructions);
  }
  /// Branch misses per kilo-instruction.
  double BranchMpki() const {
    return instructions == 0 ? 0.0
                             : 1000.0 * static_cast<double>(branch_misses) /
                                   static_cast<double>(instructions);
  }
};

/// Process-wide counter set. Construct via Open(); thread-safe to Read
/// concurrently (reads are independent syscalls / getrusage calls).
class PerfCounters {
 public:
  /// Opens the counter set. Never fails: when perf events are unavailable
  /// the instance reports `fallback() == true` and Read() returns
  /// getrusage-derived values.
  static std::unique_ptr<PerfCounters> Open();

  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// Current counter values (absolute; subtract two Readings for a delta).
  Reading Read() const;

  /// Delta between two readings taken on this instance.
  CounterDelta Delta(const Reading& begin, const Reading& end) const;

  bool fallback() const { return fallback_; }
  /// "perf" or "fallback" — the value spans carry in their `counters` attr.
  const char* mode() const { return fallback_ ? "fallback" : "perf"; }

 private:
  PerfCounters() = default;

  // One fd per event: inherit=1 does not combine with PERF_FORMAT_GROUP,
  // and we want inheritance so pool threads are counted.
  static constexpr int kNumEvents = 5;
  int fds_[kNumEvents] = {-1, -1, -1, -1, -1};
  bool fallback_ = true;
};

namespace internal {
extern std::atomic<PerfCounters*> g_active_counters;
}  // namespace internal

/// The installed counter set, or nullptr (the common, fast case).
inline PerfCounters* ActiveCounters() {
  return internal::g_active_counters.load(std::memory_order_acquire);
}

/// RAII process-global installation, mirroring trace::ScopedTracer.
class ScopedPerfCounters {
 public:
  explicit ScopedPerfCounters(PerfCounters* counters)
      : previous_(internal::g_active_counters.exchange(
            counters, std::memory_order_acq_rel)) {}
  ~ScopedPerfCounters() {
    internal::g_active_counters.store(previous_, std::memory_order_release);
  }
  ScopedPerfCounters(const ScopedPerfCounters&) = delete;
  ScopedPerfCounters& operator=(const ScopedPerfCounters&) = delete;

 private:
  PerfCounters* previous_;
};

/// Attaches counter deltas to a TraceSpan: snapshots the active counter
/// set at construction and, at destruction (before the span closes — declare
/// it after the span so it destructs first), attaches cycles, instructions,
/// ipc, cache/branch miss rates, task-clock and a `counters` mode marker.
/// Inert when the span is disabled or no counter set is installed.
class SpanCounters {
 public:
  explicit SpanCounters(trace::TraceSpan* span) : span_(span) {
    if (span_ == nullptr || !span_->enabled()) return;
    counters_ = ActiveCounters();
    if (counters_ != nullptr) begin_ = counters_->Read();
  }

  ~SpanCounters() {
    if (counters_ == nullptr) return;
    Attach(counters_->Delta(begin_, counters_->Read()));
  }

  SpanCounters(const SpanCounters&) = delete;
  SpanCounters& operator=(const SpanCounters&) = delete;

 private:
  void Attach(const CounterDelta& delta);

  trace::TraceSpan* span_;
  PerfCounters* counters_ = nullptr;
  Reading begin_;
};

}  // namespace gly::perf
