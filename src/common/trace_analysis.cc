#include "common/trace_analysis.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <unordered_map>

#include "common/macros.h"
#include "common/string_util.h"

namespace gly::trace {

namespace {

struct Node {
  std::string name;
  uint32_t tid = 0;
  uint64_t begin_micros = 0;
  uint64_t end_micros = 0;
  std::vector<size_t> children;  ///< indices into the completed-node vector

  double Seconds() const {
    return static_cast<double>(end_micros - begin_micros) * 1e-6;
  }
};

double SelfSeconds(const Node& node, const std::vector<Node>& nodes) {
  double children = 0.0;
  for (size_t child : node.children) children += nodes[child].Seconds();
  double self = node.Seconds() - children;
  return self > 0.0 ? self : 0.0;
}

}  // namespace

TraceAnalysis AnalyzeTrace(const std::vector<TraceEvent>& events,
                           const AnalyzeOptions& options) {
  TraceAnalysis analysis;
  if (events.empty()) return analysis;

  uint64_t min_ts = events.front().ts_micros;
  uint64_t max_ts = events.front().ts_micros;

  // Rebuild the span forest from matched B/E pairs. Mirrors
  // AggregateSpans' tolerance: an E that does not close the top of its
  // thread's stack is skipped, unmatched B's never complete.
  std::vector<Node> nodes;
  std::unordered_map<uint32_t, std::vector<Node>> open;
  std::unordered_map<uint32_t, std::vector<size_t>> top_level;
  for (const TraceEvent& e : events) {
    min_ts = std::min(min_ts, e.ts_micros);
    max_ts = std::max(max_ts, e.ts_micros);
    if (e.phase == 'B') {
      Node node;
      node.name = e.name;
      node.tid = e.tid;
      node.begin_micros = e.ts_micros;
      open[e.tid].push_back(std::move(node));
    } else if (e.phase == 'E') {
      auto& stack = open[e.tid];
      if (stack.empty() || stack.back().name != e.name) continue;
      Node node = std::move(stack.back());
      stack.pop_back();
      node.end_micros = e.ts_micros;
      nodes.push_back(std::move(node));
      size_t index = nodes.size() - 1;
      if (!stack.empty()) {
        stack.back().children.push_back(index);
      } else {
        top_level[e.tid].push_back(index);
      }
    }
  }

  analysis.wall_seconds = static_cast<double>(max_ts - min_ts) * 1e-6;
  analysis.completed_spans = nodes.size();

  // Per-worker utilization: top-level spans on one tid never overlap
  // (per-thread nesting), so their durations sum to that worker's busy
  // time over the window.
  for (const auto& [tid, indices] : top_level) {
    WorkerUtilization worker;
    worker.tid = tid;
    for (size_t index : indices) worker.busy_seconds += nodes[index].Seconds();
    worker.idle_seconds =
        std::max(0.0, analysis.wall_seconds - worker.busy_seconds);
    worker.utilization = analysis.wall_seconds > 0.0
                             ? worker.busy_seconds / analysis.wall_seconds
                             : 0.0;
    analysis.workers.push_back(worker);
  }
  std::sort(analysis.workers.begin(), analysis.workers.end(),
            [](const WorkerUtilization& a, const WorkerUtilization& b) {
              return a.tid < b.tid;
            });

  // Self-time table, aggregated by span name.
  std::map<std::string, SelfTimeEntry> by_name;
  for (const Node& node : nodes) {
    SelfTimeEntry& entry = by_name[node.name];
    entry.name = node.name;
    entry.self_seconds += SelfSeconds(node, nodes);
    ++entry.count;
  }
  for (auto& [name, entry] : by_name) {
    analysis.self_time.push_back(std::move(entry));
  }
  std::sort(analysis.self_time.begin(), analysis.self_time.end(),
            [](const SelfTimeEntry& a, const SelfTimeEntry& b) {
              if (a.self_seconds != b.self_seconds) {
                return a.self_seconds > b.self_seconds;
              }
              return a.name < b.name;
            });
  if (options.top_k > 0 && analysis.self_time.size() > options.top_k) {
    analysis.self_time.resize(options.top_k);
  }

  // Critical path: choose the root, then repeatedly descend into the
  // longest child, charging each visited span its self time. Children
  // nest within their parent on one thread, so the accumulated total can
  // never exceed the root span's duration.
  const Node* root = nullptr;
  if (!options.root.empty()) {
    for (const Node& node : nodes) {
      if (node.name != options.root) continue;
      if (root == nullptr || node.Seconds() > root->Seconds()) root = &node;
    }
  } else {
    for (const auto& [tid, indices] : top_level) {
      for (size_t index : indices) {
        const Node& node = nodes[index];
        if (root == nullptr || node.Seconds() > root->Seconds()) root = &node;
      }
    }
  }
  if (root != nullptr) {
    analysis.root = root->name;
    const Node* current = root;
    for (;;) {
      CriticalPathStep step;
      step.name = current->name;
      step.tid = current->tid;
      step.span_seconds = current->Seconds();
      step.self_seconds = SelfSeconds(*current, nodes);
      analysis.critical_path_seconds += step.self_seconds;
      analysis.critical_path.push_back(std::move(step));
      const Node* next = nullptr;
      for (size_t child : current->children) {
        if (next == nullptr || nodes[child].Seconds() > next->Seconds()) {
          next = &nodes[child];
        }
      }
      if (next == nullptr) break;
      current = next;
    }
  }
  return analysis;
}

// ---------------------------------------------------------------------------
// profile.json (schema v1)

std::string ProfileJson(const TraceAnalysis& analysis,
                        const SamplerSummary& sampler,
                        const std::vector<std::string>& folded_lines) {
  std::string out;
  out += "{\"schema_version\":1,\"kind\":\"gly.profile\",\n";
  out += "\"root\":\"" + JsonEscape(analysis.root) + "\",";
  out += StringPrintf("\"wall_seconds\":%.6f,", analysis.wall_seconds);
  out += StringPrintf("\"critical_path_seconds\":%.6f,",
                      analysis.critical_path_seconds);
  out += StringPrintf("\"completed_spans\":%zu,\n", analysis.completed_spans);
  out += "\"critical_path\":[\n";
  for (size_t i = 0; i < analysis.critical_path.size(); ++i) {
    const CriticalPathStep& step = analysis.critical_path[i];
    out += StringPrintf(
        "{\"name\":\"%s\",\"tid\":%u,\"span_seconds\":%.6f,"
        "\"self_seconds\":%.6f}%s\n",
        JsonEscape(step.name).c_str(), step.tid, step.span_seconds,
        step.self_seconds, i + 1 < analysis.critical_path.size() ? "," : "");
  }
  out += "],\n\"workers\":[\n";
  for (size_t i = 0; i < analysis.workers.size(); ++i) {
    const WorkerUtilization& worker = analysis.workers[i];
    out += StringPrintf(
        "{\"tid\":%u,\"busy_seconds\":%.6f,\"idle_seconds\":%.6f,"
        "\"utilization\":%.4f}%s\n",
        worker.tid, worker.busy_seconds, worker.idle_seconds,
        worker.utilization, i + 1 < analysis.workers.size() ? "," : "");
  }
  out += "],\n\"self_time\":[\n";
  for (size_t i = 0; i < analysis.self_time.size(); ++i) {
    const SelfTimeEntry& entry = analysis.self_time[i];
    out += StringPrintf(
        "{\"name\":\"%s\",\"self_seconds\":%.6f,\"count\":%llu}%s\n",
        JsonEscape(entry.name).c_str(), entry.self_seconds,
        static_cast<unsigned long long>(entry.count),
        i + 1 < analysis.self_time.size() ? "," : "");
  }
  out += StringPrintf(
      "],\n\"sampler\":{\"mode\":\"%s\",\"interval_us\":%llu,"
      "\"samples\":%llu,\"dropped\":%llu},\n",
      JsonEscape(sampler.mode).c_str(),
      static_cast<unsigned long long>(sampler.interval_us),
      static_cast<unsigned long long>(sampler.samples),
      static_cast<unsigned long long>(sampler.dropped));
  out += "\"folded\":[\n";
  for (size_t i = 0; i < folded_lines.size(); ++i) {
    out += "\"" + JsonEscape(folded_lines[i]) + "\"";
    out += i + 1 < folded_lines.size() ? ",\n" : "\n";
  }
  out += "]}\n";
  return out;
}

namespace {

// Scan-based extraction over the line-oriented document ProfileJson
// emits, mirroring report.cc's ResultFromJson idiom. validate_trace.py is
// the strict structural validator; this reader only needs to round-trip
// our own files.

Result<double> FindNumber(std::string_view text, std::string_view key) {
  std::string marker = "\"" + std::string(key) + "\":";
  size_t pos = text.find(marker);
  if (pos == std::string_view::npos) {
    return Status::InvalidArgument("profile.json missing key: " +
                                   std::string(key));
  }
  pos += marker.size();
  size_t end = pos;
  while (end < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[end])) ||
          text[end] == '-' || text[end] == '+' || text[end] == '.' ||
          text[end] == 'e' || text[end] == 'E')) {
    ++end;
  }
  return ParseDouble(text.substr(pos, end - pos));
}

Result<std::string> FindString(std::string_view text, std::string_view key) {
  std::string marker = "\"" + std::string(key) + "\":\"";
  size_t pos = text.find(marker);
  if (pos == std::string_view::npos) {
    return Status::InvalidArgument("profile.json missing key: " +
                                   std::string(key));
  }
  pos += marker.size();
  std::string value;
  while (pos < text.size() && text[pos] != '"') {
    if (text[pos] == '\\' && pos + 1 < text.size()) {
      char esc = text[pos + 1];
      switch (esc) {
        case 'n': value += '\n'; break;
        case 't': value += '\t'; break;
        case 'r': value += '\r'; break;
        default: value += esc; break;
      }
      pos += 2;
    } else {
      value += text[pos++];
    }
  }
  if (pos >= text.size()) {
    return Status::InvalidArgument("profile.json unterminated string for " +
                                   std::string(key));
  }
  return value;
}

// The body of `"key":[ ... \n]` as individual trimmed lines.
Result<std::vector<std::string>> ArrayLines(std::string_view text,
                                            std::string_view key) {
  std::string marker = "\"" + std::string(key) + "\":[";
  size_t pos = text.find(marker);
  if (pos == std::string_view::npos) {
    return Status::InvalidArgument("profile.json missing array: " +
                                   std::string(key));
  }
  pos += marker.size();
  size_t end = text.find("\n]", pos);
  if (end == std::string_view::npos) {
    return Status::InvalidArgument("profile.json unterminated array: " +
                                   std::string(key));
  }
  std::vector<std::string> lines;
  std::string_view body = text.substr(pos, end - pos);
  size_t start = 0;
  while (start <= body.size()) {
    size_t newline = body.find('\n', start);
    std::string_view line = body.substr(
        start, newline == std::string_view::npos ? body.size() - start
                                                 : newline - start);
    while (!line.empty() && (line.back() == ',' || line.back() == ' ' ||
                             line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (!line.empty()) lines.emplace_back(line);
    if (newline == std::string_view::npos) break;
    start = newline + 1;
  }
  return lines;
}

}  // namespace

Result<ProfileSummary> ParseProfileJson(std::string_view json) {
  if (json.find("\"kind\":\"gly.profile\"") == std::string_view::npos) {
    return Status::InvalidArgument(
        "not a profile.json document (kind != gly.profile)");
  }
  auto version = FindNumber(json, "schema_version");
  GLY_RETURN_NOT_OK(version.status());
  if (*version < 1) {
    return Status::InvalidArgument("profile.json schema_version < 1");
  }

  ProfileSummary profile;
  auto root = FindString(json, "root");
  if (root.ok()) profile.root = *root;
  auto wall = FindNumber(json, "wall_seconds");
  GLY_RETURN_NOT_OK(wall.status());
  profile.wall_seconds = *wall;
  auto critical = FindNumber(json, "critical_path_seconds");
  GLY_RETURN_NOT_OK(critical.status());
  profile.critical_path_seconds = *critical;
  auto spans = FindNumber(json, "completed_spans");
  GLY_RETURN_NOT_OK(spans.status());
  profile.completed_spans = static_cast<size_t>(*spans);

  auto path_lines = ArrayLines(json, "critical_path");
  GLY_RETURN_NOT_OK(path_lines.status());
  for (const std::string& line : *path_lines) {
    CriticalPathStep step;
    auto name = FindString(line, "name");
    GLY_RETURN_NOT_OK(name.status());
    step.name = *name;
    auto tid = FindNumber(line, "tid");
    GLY_RETURN_NOT_OK(tid.status());
    step.tid = static_cast<uint32_t>(*tid);
    auto span_s = FindNumber(line, "span_seconds");
    GLY_RETURN_NOT_OK(span_s.status());
    step.span_seconds = *span_s;
    auto self_s = FindNumber(line, "self_seconds");
    GLY_RETURN_NOT_OK(self_s.status());
    step.self_seconds = *self_s;
    profile.critical_path.push_back(std::move(step));
  }

  auto worker_lines = ArrayLines(json, "workers");
  GLY_RETURN_NOT_OK(worker_lines.status());
  for (const std::string& line : *worker_lines) {
    WorkerUtilization worker;
    auto tid = FindNumber(line, "tid");
    GLY_RETURN_NOT_OK(tid.status());
    worker.tid = static_cast<uint32_t>(*tid);
    auto busy = FindNumber(line, "busy_seconds");
    GLY_RETURN_NOT_OK(busy.status());
    worker.busy_seconds = *busy;
    auto idle = FindNumber(line, "idle_seconds");
    GLY_RETURN_NOT_OK(idle.status());
    worker.idle_seconds = *idle;
    auto util = FindNumber(line, "utilization");
    GLY_RETURN_NOT_OK(util.status());
    worker.utilization = *util;
    profile.workers.push_back(worker);
  }

  auto self_lines = ArrayLines(json, "self_time");
  GLY_RETURN_NOT_OK(self_lines.status());
  for (const std::string& line : *self_lines) {
    SelfTimeEntry entry;
    auto name = FindString(line, "name");
    GLY_RETURN_NOT_OK(name.status());
    entry.name = *name;
    auto self_s = FindNumber(line, "self_seconds");
    GLY_RETURN_NOT_OK(self_s.status());
    entry.self_seconds = *self_s;
    auto count = FindNumber(line, "count");
    GLY_RETURN_NOT_OK(count.status());
    entry.count = static_cast<uint64_t>(*count);
    profile.self_time.push_back(std::move(entry));
  }

  size_t sampler_pos = json.find("\"sampler\":{");
  if (sampler_pos == std::string_view::npos) {
    return Status::InvalidArgument("profile.json missing sampler block");
  }
  std::string_view sampler_text = json.substr(sampler_pos);
  size_t sampler_end = sampler_text.find('}');
  if (sampler_end != std::string_view::npos) {
    sampler_text = sampler_text.substr(0, sampler_end + 1);
  }
  auto mode = FindString(sampler_text, "mode");
  GLY_RETURN_NOT_OK(mode.status());
  profile.sampler.mode = *mode;
  auto interval = FindNumber(sampler_text, "interval_us");
  GLY_RETURN_NOT_OK(interval.status());
  profile.sampler.interval_us = static_cast<uint64_t>(*interval);
  auto samples = FindNumber(sampler_text, "samples");
  GLY_RETURN_NOT_OK(samples.status());
  profile.sampler.samples = static_cast<uint64_t>(*samples);
  auto dropped = FindNumber(sampler_text, "dropped");
  GLY_RETURN_NOT_OK(dropped.status());
  profile.sampler.dropped = static_cast<uint64_t>(*dropped);

  auto folded_lines = ArrayLines(json, "folded");
  GLY_RETURN_NOT_OK(folded_lines.status());
  for (std::string_view line : *folded_lines) {
    if (line.size() >= 2 && line.front() == '"' && line.back() == '"') {
      line = line.substr(1, line.size() - 2);
    }
    profile.folded.emplace_back(line);
  }
  return profile;
}

}  // namespace gly::trace
