// Wall-clock timing helpers used by the System Monitor and benches.

#pragma once

#include <chrono>
#include <cstdint>

namespace gly {

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start time to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds (integer).
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gly
