#include "common/logging.h"

#include <cstdio>

namespace gly {

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  static const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(stderr, "[%s] %s\n", kNames[static_cast<int>(level)],
               message.c_str());
}

}  // namespace gly
