// Error-propagation helper macros (Arrow-style).

#pragma once

#include "common/result.h"
#include "common/status.h"

#define GLY_CONCAT_IMPL(x, y) x##y
#define GLY_CONCAT(x, y) GLY_CONCAT_IMPL(x, y)

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define GLY_RETURN_NOT_OK(expr)                    \
  do {                                             \
    ::gly::Status gly_status_ = (expr);            \
    if (!gly_status_.ok()) return gly_status_;     \
  } while (false)

/// Evaluates `rexpr` (a Result<T> expression); if it failed, returns its
/// status from the enclosing function; otherwise declares `lhs` bound to the
/// moved-out value.
#define GLY_ASSIGN_OR_RETURN(lhs, rexpr) \
  GLY_ASSIGN_OR_RETURN_IMPL(GLY_CONCAT(gly_result_, __LINE__), lhs, rexpr)

#define GLY_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                              \
  if (!result_name.ok()) return result_name.status();      \
  lhs = std::move(result_name).ValueOrDie()

/// In tests/examples: abort with a message if the expression is not OK.
#define GLY_CHECK_OK(expr)            \
  do {                                \
    ::gly::Status gly_status_ = (expr); \
    gly_status_.Check();              \
  } while (false)

namespace gly {

/// Marks a deliberately unused value (e.g. a [[nodiscard]] Status in a
/// best-effort cleanup path).
template <typename T>
void Ignore(const T&) {}

}  // namespace gly
