// Deterministic fault injection for robustness testing.
//
// The paper reports benchmark cells that simply fail ("Missing values
// indicate failures"), but a harness can only be trusted to *record* such
// failures if its failure paths are exercised. This subsystem lets tests
// inject worker crashes, message drops, execution stalls, and transient
// I/O errors at named sites inside the platform engines, deterministically:
// a FaultPlan is seeded, and the decision for the i-th hit of a site is a
// pure function of (seed, site, i), so the same plan produces the same
// fault schedule regardless of thread interleaving.
//
// Engines mark instrumentation sites with GLY_FAULT_POINT("engine.site")
// (error-returning sites) or GLY_FAULT_DROP("engine.site") (message-loss
// query sites). With no plan installed a site is one relaxed atomic load;
// compiling with GLY_DISABLE_FAULT_POINTS removes the sites entirely.
//
// Activation is process-global and scoped:
//
//   fault::FaultPlan plan(/*seed=*/42);
//   plan.Add({.site = "pregel.*", .kind = fault::FaultKind::kCrash,
//             .probability = 0.5});
//   {
//     fault::ScopedFaultPlan active(&plan);
//     ... code under test; fault points consult `plan` ...
//   }  // previous plan (usually none) restored

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace gly::fault {

/// What an injected fault does at the site where it triggers.
enum class FaultKind {
  kCrash,    ///< the site fails with Internal ("worker crash")
  kIOError,  ///< the site fails with IOError ("transient I/O error")
  kDelay,    ///< the site sleeps `delay_seconds`, then succeeds
  kStall,    ///< kDelay semantics; names a slow-worker / hung-job scenario
  kDrop,     ///< GLY_FAULT_DROP sites report the message as lost
};

std::string_view FaultKindName(FaultKind kind);

/// One injection rule. Rules are matched in the order they were added; the
/// first rule that matches the site *and* decides to trigger wins.
struct FaultSpec {
  /// Site to fault: an exact name ("pregel.superstep.barrier") or a prefix
  /// pattern with a trailing '*' ("pregel.*", "*" = every site).
  std::string site;
  FaultKind kind = FaultKind::kCrash;
  /// Per-hit trigger probability, drawn deterministically from the plan
  /// seed and the site's hit index.
  double probability = 1.0;
  /// Leave the first N matching hits untouched (fault "later in the run").
  uint32_t skip_hits = 0;
  /// Trigger at most this many times across the plan's lifetime (0 = no
  /// limit). max_triggers = 1 models a transient fault a retry outlives.
  uint32_t max_triggers = 0;
  /// Sleep duration for kDelay / kStall.
  double delay_seconds = 0.0;
};

/// Per-site accounting: how often the site was reached and how often a
/// fault actually triggered there.
struct SiteStats {
  uint64_t hits = 0;
  uint64_t triggered = 0;
};

/// A seeded, scoped schedule of injected faults. Thread-safe after
/// installation; Add() must not race with active fault points.
class FaultPlan {
 public:
  explicit FaultPlan(uint64_t seed) : seed_(seed) {}

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  uint64_t seed() const { return seed_; }

  void Add(FaultSpec spec);

  /// Called by GLY_FAULT_POINT: records the hit and returns the injected
  /// error (kCrash / kIOError), sleeps and returns OK (kDelay / kStall),
  /// or returns OK when no rule triggers. kDrop rules are ignored here.
  Status OnPoint(const std::string& site);

  /// Called by GLY_FAULT_DROP: records the hit and returns true when a
  /// kDrop rule triggers (the caller discards the message).
  bool OnDropPoint(const std::string& site);

  /// -------- accounting ----------------------------------------------------

  uint64_t HitCount(const std::string& site) const;
  uint64_t TriggeredCount(const std::string& site) const;
  /// Total faults triggered across all sites (harness cells diff this to
  /// attribute injections to a run).
  uint64_t TotalTriggered() const;
  std::map<std::string, SiteStats> Snapshot() const;

  /// Pure preview: the hit indexes in [0, num_hits) at which this plan
  /// would trigger a fault at `site`, assuming no hits at other sites
  /// compete for shared max_triggers quotas. Deterministic in (seed, site)
  /// — the FaultPlan determinism contract tests assert on this.
  std::vector<uint32_t> TriggerSchedule(const std::string& site,
                                        uint32_t num_hits) const;

 private:
  struct Rule {
    FaultSpec spec;
    std::atomic<uint32_t> triggers{0};
  };

  /// Deterministic per-hit trigger decision for one rule.
  bool Decides(const Rule& rule, const std::string& site,
               uint64_t hit_index) const;
  /// Returns the rule that fires for this hit (accounting for skip_hits,
  /// max_triggers, probability), or nullptr. Consumes quota on match.
  Rule* FireAt(const std::string& site, uint64_t hit_index, bool drop_sites);
  uint64_t NextHitIndex(const std::string& site);

  const uint64_t seed_;
  std::vector<std::unique_ptr<Rule>> rules_;
  mutable std::mutex mu_;
  std::map<std::string, SiteStats> stats_;
  std::atomic<uint64_t> total_triggered_{0};
};

namespace internal {
extern std::atomic<FaultPlan*> g_active_plan;
}  // namespace internal

/// The plan fault points consult, or nullptr (the common, fast case).
inline FaultPlan* ActivePlan() {
  return internal::g_active_plan.load(std::memory_order_acquire);
}

/// RAII installation of a plan as the process-global active plan; restores
/// the previously installed plan (usually none) on destruction.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan* plan)
      : previous_(internal::g_active_plan.exchange(
            plan, std::memory_order_acq_rel)) {}
  ~ScopedFaultPlan() {
    internal::g_active_plan.store(previous_, std::memory_order_release);
  }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

 private:
  FaultPlan* previous_;
};

/// Function forms behind the macros (usable directly where a macro's
/// early-return does not fit, e.g. inside void worker lambdas).
inline Status CheckPoint(const char* site) {
  FaultPlan* plan = ActivePlan();
  return plan == nullptr ? Status::OK() : plan->OnPoint(site);
}

inline bool ShouldDrop(const char* site) {
  FaultPlan* plan = ActivePlan();
  return plan != nullptr && plan->OnDropPoint(site);
}

}  // namespace gly::fault

#if defined(GLY_DISABLE_FAULT_POINTS)

#define GLY_FAULT_POINT(site) \
  do {                        \
  } while (false)
#define GLY_FAULT_DROP(site) false

#else

/// Marks an error-returning fault site: if the active plan injects a fault
/// here, the enclosing function returns the injected Status (works in
/// functions returning Status or Result<T>).
#define GLY_FAULT_POINT(site)                                           \
  do {                                                                  \
    if (::gly::fault::ActivePlan() != nullptr) {                        \
      ::gly::Status gly_fault_status_ = ::gly::fault::CheckPoint(site); \
      if (!gly_fault_status_.ok()) return gly_fault_status_;            \
    }                                                                   \
  } while (false)

/// Marks a message-loss fault site: evaluates to true when the active plan
/// drops the message at this site.
#define GLY_FAULT_DROP(site) ::gly::fault::ShouldDrop(site)

#endif  // GLY_DISABLE_FAULT_POINTS
