// Structured tracing — the observability half of Figure 2's System
// Monitor. The paper's monitor samples coarse resource usage; it cannot
// say *where* a run spent its time. This layer can: engines and the
// harness open hierarchical spans (RAII TraceSpan) around their phases —
// harness etl/load/run/validate, Pregel supersteps, MapReduce stages,
// dataflow operators, WAL recovery — and the collected events export as
// Chrome trace-event JSON (`chrome://tracing`, Perfetto), so a regressed
// benchmark cell carries its own per-phase timeline.
//
// Activation mirrors common/fault_injection.h: a Tracer is installed
// process-globally and scoped (ScopedTracer); with none installed a span
// is one relaxed atomic load, so tracing is free when off (the default).
// The clock is injectable: tests drive a FakeClock, making whole traces
// deterministic and golden-testable — observability output is a tested
// contract, not best-effort logging.
//
//   trace::Tracer tracer;                      // steady clock
//   {
//     trace::ScopedTracer active(&tracer);
//     trace::TraceSpan span("pregel.superstep", "pregel");
//     span.SetAttribute("active", uint64_t{42});
//     ...
//   }                                          // span closed, tracer restored
//   tracer.WriteTo("trace.json");              // open in chrome://tracing

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.h"

namespace gly::trace {

/// Time source for a Tracer. Injectable so traces can be deterministic.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Monotonic microseconds. The origin is the clock's own epoch; only
  /// differences and ordering matter.
  virtual uint64_t NowMicros() = 0;
};

/// Monotonic wall clock; epoch = construction time, so traces start near 0.
class SteadyClock final : public Clock {
 public:
  SteadyClock();
  uint64_t NowMicros() override;

 private:
  uint64_t epoch_micros_ = 0;
};

/// Deterministic test clock. Starts at `start_micros`; every read advances
/// it by `tick_micros` (so consecutive events get distinct, reproducible
/// timestamps) and Advance() jumps it explicitly. Thread-safe.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(uint64_t start_micros = 0, uint64_t tick_micros = 0)
      : now_(start_micros), tick_(tick_micros) {}

  uint64_t NowMicros() override {
    return now_.fetch_add(tick_, std::memory_order_relaxed);
  }

  void Advance(uint64_t micros) {
    now_.fetch_add(micros, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> now_;
  const uint64_t tick_;
};

/// One attribute on an event ("args" in the Chrome trace format).
using TraceArg = std::pair<std::string, std::string>;

/// One trace event. Phases: 'B' span begin, 'E' span end (arguments ride
/// on the E event), 'i' instant.
struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'i';
  uint64_t ts_micros = 0;
  uint32_t tid = 0;  ///< virtual thread id (first-use order, starts at 1)
  std::vector<TraceArg> args;
};

/// Total duration of one span name across a set of events (matched B/E
/// pairs), used for the report's "top phases" columns.
struct PhaseTotal {
  std::string name;
  double seconds = 0.0;
  uint64_t count = 0;  ///< completed spans with this name
};

/// Well-formedness summary of an event stream (per-thread B/E nesting).
struct TraceCheck {
  size_t events = 0;
  size_t completed_spans = 0;   ///< matched B/E pairs
  size_t unmatched_begins = 0;  ///< spans still open at the end
  size_t max_depth = 0;         ///< deepest nesting over all threads
};

/// Thread-safe event collector. Threads are mapped to small stable virtual
/// ids in first-use order, so a trace produced by a deterministic schedule
/// is itself deterministic.
class Tracer {
 public:
  /// `clock` may be null: the tracer then owns a SteadyClock.
  explicit Tracer(Clock* clock = nullptr);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void Begin(std::string_view name, std::string_view category);
  void End(std::string_view name, std::string_view category,
           std::vector<TraceArg> args = {});
  void Instant(std::string_view name, std::string_view category,
               std::vector<TraceArg> args = {});

  /// Number of events recorded so far (monotonic; callers use it to slice
  /// per-cell windows out of a run-wide trace).
  size_t event_count() const;

  std::vector<TraceEvent> Snapshot() const;
  /// Events with index >= `first` at snapshot time.
  std::vector<TraceEvent> SnapshotSince(size_t first) const;

  /// Full trace as a Chrome trace-event JSON document.
  std::string ToChromeJson() const;

  /// Writes ToChromeJson() to `path`.
  Status WriteTo(const std::string& path) const;

  /// The clock events are stamped with (never null). Lets a child tracer
  /// share its parent's clock so merged timelines stay comparable.
  Clock* clock() const { return clock_; }

  /// Appends events recorded by another tracer (typically a per-cell child
  /// tracer, see ScopedThreadTracer). Each distinct incoming tid is mapped
  /// to a fresh virtual tid of this tracer, so per-thread B/E nesting in
  /// the merged stream stays valid even when both tracers saw the same OS
  /// thread. Events are appended contiguously in their original order.
  void MergeEvents(std::vector<TraceEvent> events);

 private:
  uint32_t TidOfCurrentThread();

  Clock* clock_;
  std::unique_ptr<SteadyClock> owned_clock_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::vector<std::pair<std::thread::id, uint32_t>> tids_;
  uint32_t next_tid_ = 1;  ///< next virtual tid (shared by threads + merges)
};

/// Renders any event list as a Chrome trace-event JSON document
/// (one event per line; `{"traceEvents":[...]}` with schema metadata).
std::string ChromeTraceJson(const std::vector<TraceEvent>& events);

/// Parses+validates a Chrome trace-event JSON document produced by
/// ChromeTraceJson (or any structurally equivalent one): top-level object
/// with a "traceEvents" array whose elements carry name/ph/ts/pid/tid,
/// and whose B/E events nest correctly per thread. Returns the check
/// summary or an error naming the first violation.
Result<TraceCheck> ValidateChromeTraceJson(std::string_view json);

/// Per-thread B/E nesting check over raw events (an E must close the most
/// recent open B of its thread, matched by name). Returns an error on a
/// mismatched E; unmatched B's are merely counted (a window sliced out of
/// a live trace can end mid-span).
Result<TraceCheck> CheckWellFormed(const std::vector<TraceEvent>& events);

/// Parses a Chrome trace-event JSON document back into its event list
/// (name/ph/ts/tid and string-valued args are recovered; other fields are
/// validated structurally and dropped). This is the read side used by the
/// post-run trace analyzer (common/trace_analysis.h).
Result<std::vector<TraceEvent>> ParseChromeTraceJson(std::string_view json);

/// Aggregates matched B/E pairs by span name, descending by total time.
std::vector<PhaseTotal> AggregateSpans(const std::vector<TraceEvent>& events);

namespace internal {
extern std::atomic<Tracer*> g_active_tracer;
extern thread_local Tracer* tls_tracer;
}  // namespace internal

/// The tracer spans write to, or nullptr (the common, fast case). A
/// thread-local override (ScopedThreadTracer) wins over the process-global
/// tracer: the harness gives every in-flight cell its own child tracer, so
/// `--trace-dir` under `--jobs N` still writes valid per-cell traces.
inline Tracer* ActiveTracer() {
  if (internal::tls_tracer != nullptr) return internal::tls_tracer;
  return internal::g_active_tracer.load(std::memory_order_acquire);
}

/// RAII installation of a process-global tracer; restores the previously
/// installed tracer (usually none) on destruction.
class ScopedTracer {
 public:
  explicit ScopedTracer(Tracer* tracer)
      : previous_(internal::g_active_tracer.exchange(
            tracer, std::memory_order_acq_rel)) {}
  ~ScopedTracer() {
    internal::g_active_tracer.store(previous_, std::memory_order_release);
  }
  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

 private:
  Tracer* previous_;
};

/// RAII installation of a *thread-local* tracer override; restores the
/// previous override on destruction. Installing nullptr removes the
/// override (spans fall back to the process-global tracer). ThreadPool
/// propagates the submitter's effective tracer into pool workers, so a
/// cell's parallel work lands in the cell's own tracer.
class ScopedThreadTracer {
 public:
  explicit ScopedThreadTracer(Tracer* tracer)
      : previous_(internal::tls_tracer) {
    internal::tls_tracer = tracer;
  }
  ~ScopedThreadTracer() { internal::tls_tracer = previous_; }
  ScopedThreadTracer(const ScopedThreadTracer&) = delete;
  ScopedThreadTracer& operator=(const ScopedThreadTracer&) = delete;

 private:
  Tracer* previous_;
};

/// RAII span against the tracer active at construction (a tracer swapped
/// mid-span still receives this span's E, keeping B/E matched). With no
/// active tracer the span is inert: one atomic load, no allocation.
class TraceSpan {
 public:
  TraceSpan(std::string_view name, std::string_view category)
      : tracer_(ActiveTracer()) {
    if (tracer_ == nullptr) return;
    name_ = name;
    category_ = category;
    tracer_->Begin(name_, category_);
  }

  ~TraceSpan() {
    if (tracer_ != nullptr) {
      tracer_->End(name_, category_, std::move(args_));
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches an attribute, reported on the span's end event.
  void SetAttribute(std::string_view key, std::string value) {
    if (tracer_ != nullptr) args_.emplace_back(std::string(key),
                                               std::move(value));
  }
  void SetAttribute(std::string_view key, const char* value) {
    SetAttribute(key, std::string(value));
  }
  void SetAttribute(std::string_view key, uint64_t value) {
    SetAttribute(key, std::to_string(value));
  }
  void SetAttribute(std::string_view key, double value);

  bool enabled() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_;
  std::string name_;
  std::string category_;
  std::vector<TraceArg> args_;
};

/// Emits an instant event on the active tracer (no-op when none).
inline void Instant(std::string_view name, std::string_view category,
                    std::vector<TraceArg> args = {}) {
  if (Tracer* tracer = ActiveTracer()) {
    tracer->Instant(name, category, std::move(args));
  }
}

}  // namespace gly::trace
