// Histogram: integer-valued frequency histogram with summary statistics.
//
// Used for degree distributions (Figure 1), per-superstep work skew traces,
// and System Monitor samples.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gly {

/// Exact frequency histogram over non-negative integer observations.
class Histogram {
 public:
  void Add(uint64_t value, uint64_t count = 1);

  /// Folds all of `other`'s observations into this histogram; equivalent
  /// to replaying other's Add() calls. Used to merge per-thread metric
  /// histograms into a process-wide one.
  void Merge(const Histogram& other);

  uint64_t total_count() const { return total_; }
  uint64_t CountOf(uint64_t value) const;

  /// Mean of all observations (0 when empty).
  double Mean() const;

  /// Population variance (0 when empty).
  double Variance() const;

  /// p in [0, 1]; returns the smallest value v such that at least p of the
  /// mass lies at values <= v. 0 when empty.
  uint64_t Percentile(double p) const;

  uint64_t Min() const;
  uint64_t Max() const;

  /// All (value, count) pairs in increasing value order.
  std::vector<std::pair<uint64_t, uint64_t>> Items() const;

  /// Multi-line "value count" dump, optionally capped to `max_rows` rows.
  std::string ToString(size_t max_rows = 0) const;

 private:
  std::map<uint64_t, uint64_t> counts_;
  uint64_t total_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace gly
