// AtomicBitset: a fixed-size dense bitmap whose bits can be set
// concurrently from many threads.
//
// The traversal kernels use it for the visited set and for dense frontier
// representations (graph/frontier.h): `TestAndSet` is a single
// `fetch_or`, so parallel BFS expansions discover each vertex exactly
// once without locks. Reads during a concurrent write phase are relaxed —
// callers separate "fill" and "scan" phases with their own barriers (a
// thread-pool join is one).

#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>

namespace gly {

class AtomicBitset {
 public:
  AtomicBitset() = default;

  explicit AtomicBitset(size_t num_bits)
      : num_bits_(num_bits),
        num_words_((num_bits + 63) / 64),
        words_(num_words_ ? new std::atomic<uint64_t>[num_words_] : nullptr) {
    Reset();
  }

  AtomicBitset(AtomicBitset&& other) noexcept
      : num_bits_(std::exchange(other.num_bits_, 0)),
        num_words_(std::exchange(other.num_words_, 0)),
        words_(std::move(other.words_)) {}

  AtomicBitset& operator=(AtomicBitset&& other) noexcept {
    num_bits_ = std::exchange(other.num_bits_, 0);
    num_words_ = std::exchange(other.num_words_, 0);
    words_ = std::move(other.words_);
    return *this;
  }

  AtomicBitset(const AtomicBitset&) = delete;
  AtomicBitset& operator=(const AtomicBitset&) = delete;

  size_t size() const { return num_bits_; }
  size_t num_words() const { return num_words_; }

  bool Test(size_t i) const {
    return (words_[i >> 6].load(std::memory_order_relaxed) >> (i & 63)) & 1;
  }

  void Set(size_t i) {
    words_[i >> 6].fetch_or(1ULL << (i & 63), std::memory_order_relaxed);
  }

  /// Atomically sets bit `i`; returns true iff this call flipped it 0 -> 1
  /// (i.e. the caller "won" the vertex).
  bool TestAndSet(size_t i) {
    const uint64_t mask = 1ULL << (i & 63);
    return (words_[i >> 6].fetch_or(mask, std::memory_order_relaxed) &
            mask) == 0;
  }

  /// Clears every bit.
  void Reset() {
    for (size_t w = 0; w < num_words_; ++w) {
      words_[w].store(0, std::memory_order_relaxed);
    }
  }

  /// Population count over the whole bitmap.
  uint64_t Count() const {
    uint64_t count = 0;
    for (size_t w = 0; w < num_words_; ++w) {
      count += std::popcount(words_[w].load(std::memory_order_relaxed));
    }
    return count;
  }

  uint64_t word(size_t w) const {
    return words_[w].load(std::memory_order_relaxed);
  }

  /// Calls `fn(i)` for every set bit, in ascending order.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (size_t w = 0; w < num_words_; ++w) {
      uint64_t bits = words_[w].load(std::memory_order_relaxed);
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        fn(w * 64 + static_cast<size_t>(b));
        bits &= bits - 1;
      }
    }
  }

 private:
  size_t num_bits_ = 0;
  size_t num_words_ = 0;
  std::unique_ptr<std::atomic<uint64_t>[]> words_;
};

}  // namespace gly
