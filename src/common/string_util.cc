#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

namespace gly {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = Trim(s);
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::InvalidArgument("cannot parse int64: '" + std::string(s) +
                                   "'");
  }
  return value;
}

Result<uint64_t> ParseUint64(std::string_view s) {
  s = Trim(s);
  uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::InvalidArgument("cannot parse uint64: '" + std::string(s) +
                                   "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("cannot parse double: ''");
  // std::from_chars for double is not universally available; use strtod on a
  // NUL-terminated copy.
  std::string buf(s);
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("cannot parse double: '" + buf + "'");
  }
  return value;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string FormatBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  size_t u = 0;
  while (v >= 1024.0 && u + 1 < sizeof(kUnits) / sizeof(kUnits[0])) {
    v /= 1024.0;
    ++u;
  }
  return StringPrintf("%.1f %s", v, kUnits[u]);
}

std::string FormatSeconds(double seconds) {
  if (seconds < 1e-3) return StringPrintf("%.1f us", seconds * 1e6);
  if (seconds < 1.0) return StringPrintf("%.1f ms", seconds * 1e3);
  if (seconds < 120.0) return StringPrintf("%.2f s", seconds);
  return StringPrintf("%.1f min", seconds / 60.0);
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace gly
