#include "common/trace.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <unordered_map>

#include "common/macros.h"
#include "common/string_util.h"

namespace gly::trace {

namespace internal {
std::atomic<Tracer*> g_active_tracer{nullptr};
thread_local Tracer* tls_tracer = nullptr;
}  // namespace internal

SteadyClock::SteadyClock() {
  epoch_micros_ = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t SteadyClock::NowMicros() {
  uint64_t now = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return now - epoch_micros_;
}

Tracer::Tracer(Clock* clock) : clock_(clock) {
  if (clock_ == nullptr) {
    owned_clock_ = std::make_unique<SteadyClock>();
    clock_ = owned_clock_.get();
  }
}

uint32_t Tracer::TidOfCurrentThread() {
  // Linear scan: a trace involves a handful of threads, and this runs
  // under mu_ once per event, not per lookup miss.
  std::thread::id self = std::this_thread::get_id();
  for (const auto& [id, tid] : tids_) {
    if (id == self) return tid;
  }
  uint32_t tid = next_tid_++;
  tids_.emplace_back(self, tid);
  return tid;
}

void Tracer::MergeEvents(std::vector<TraceEvent> events) {
  if (events.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  // Remap every distinct incoming tid to a fresh tid of this tracer: the
  // same OS thread may already have a tid here, and two cells merged back
  // to back may reuse child tids — fresh ids keep per-tid nesting valid.
  std::unordered_map<uint32_t, uint32_t> remap;
  events_.reserve(events_.size() + events.size());
  for (TraceEvent& e : events) {
    auto [it, inserted] = remap.emplace(e.tid, next_tid_);
    if (inserted) ++next_tid_;
    e.tid = it->second;
    events_.push_back(std::move(e));
  }
}

void Tracer::Begin(std::string_view name, std::string_view category) {
  uint64_t ts = clock_->NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent& e = events_.emplace_back();
  e.name = name;
  e.category = category;
  e.phase = 'B';
  e.ts_micros = ts;
  e.tid = TidOfCurrentThread();
}

void Tracer::End(std::string_view name, std::string_view category,
                 std::vector<TraceArg> args) {
  uint64_t ts = clock_->NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent& e = events_.emplace_back();
  e.name = name;
  e.category = category;
  e.phase = 'E';
  e.ts_micros = ts;
  e.tid = TidOfCurrentThread();
  e.args = std::move(args);
}

void Tracer::Instant(std::string_view name, std::string_view category,
                     std::vector<TraceArg> args) {
  uint64_t ts = clock_->NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent& e = events_.emplace_back();
  e.name = name;
  e.category = category;
  e.phase = 'i';
  e.ts_micros = ts;
  e.tid = TidOfCurrentThread();
  e.args = std::move(args);
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::vector<TraceEvent> Tracer::SnapshotSince(size_t first) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (first >= events_.size()) return {};
  return std::vector<TraceEvent>(events_.begin() +
                                     static_cast<ptrdiff_t>(first),
                                 events_.end());
}

std::string Tracer::ToChromeJson() const { return ChromeTraceJson(Snapshot()); }

Status Tracer::WriteTo(const std::string& path) const {
  std::string json = ToChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open trace file for writing: " + path);
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::IOError("short write to trace file: " + path);
  }
  return Status::OK();
}

std::string ChromeTraceJson(const std::vector<TraceEvent>& events) {
  std::string out;
  out.reserve(events.size() * 96 + 256);
  out +=
      "{\"displayTimeUnit\":\"ms\",\"metadata\":{\"schema_version\":1,"
      "\"kind\":\"gly.trace\"},\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\":\"";
    out += JsonEscape(e.name);
    out += "\",\"cat\":\"";
    out += JsonEscape(e.category);
    out += "\",\"ph\":\"";
    out += e.phase;
    out += "\",\"ts\":";
    out += std::to_string(e.ts_micros);
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    // Chrome requires instant events to declare a scope; 't' = thread.
    if (e.phase == 'i') out += ",\"s\":\"t\"";
    if (!e.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : e.args) {
        if (!first_arg) out += ',';
        first_arg = false;
        out += '"';
        out += JsonEscape(key);
        out += "\":\"";
        out += JsonEscape(value);
        out += '"';
      }
      out += '}';
    }
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

Result<TraceCheck> CheckWellFormed(const std::vector<TraceEvent>& events) {
  TraceCheck check;
  check.events = events.size();
  std::unordered_map<uint32_t, std::vector<std::string_view>> stacks;
  for (const TraceEvent& e : events) {
    auto& stack = stacks[e.tid];
    if (e.phase == 'B') {
      stack.push_back(e.name);
      check.max_depth = std::max(check.max_depth, stack.size());
    } else if (e.phase == 'E') {
      if (stack.empty()) {
        return Status::InvalidArgument(
            "trace ill-formed: 'E' event \"" + e.name +
            "\" on tid " + std::to_string(e.tid) + " with no open span");
      }
      if (stack.back() != e.name) {
        return Status::InvalidArgument(
            "trace ill-formed: 'E' event \"" + e.name + "\" on tid " +
            std::to_string(e.tid) + " closes span \"" +
            std::string(stack.back()) + "\"");
      }
      stack.pop_back();
      ++check.completed_spans;
    }
  }
  for (const auto& [tid, stack] : stacks) {
    check.unmatched_begins += stack.size();
  }
  return check;
}

std::vector<PhaseTotal> AggregateSpans(const std::vector<TraceEvent>& events) {
  struct OpenSpan {
    std::string_view name;
    uint64_t ts_micros;
  };
  std::unordered_map<uint32_t, std::vector<OpenSpan>> stacks;
  std::unordered_map<std::string, PhaseTotal> totals;
  for (const TraceEvent& e : events) {
    auto& stack = stacks[e.tid];
    if (e.phase == 'B') {
      stack.push_back({e.name, e.ts_micros});
    } else if (e.phase == 'E') {
      // Tolerate ill-formed input: skip E's that do not close the top of
      // this thread's stack (CheckWellFormed is the strict variant).
      if (stack.empty() || stack.back().name != e.name) continue;
      PhaseTotal& total = totals[e.name];
      total.name = e.name;
      total.seconds +=
          static_cast<double>(e.ts_micros - stack.back().ts_micros) * 1e-6;
      ++total.count;
      stack.pop_back();
    }
  }
  std::vector<PhaseTotal> out;
  out.reserve(totals.size());
  for (auto& [name, total] : totals) out.push_back(std::move(total));
  std::sort(out.begin(), out.end(), [](const PhaseTotal& a,
                                       const PhaseTotal& b) {
    if (a.seconds != b.seconds) return a.seconds > b.seconds;
    return a.name < b.name;
  });
  return out;
}

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON reader, just enough to validate a Chrome
// trace document structurally. Kept private to this translation unit; the
// repo's JSON artifacts are otherwise line-oriented and never need a full
// parser.

namespace {

class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  // Parses one JSON value starting at pos_; on success pos_ is past it.
  // Object/array callbacks receive keys/elements via Visit().
  Status ParseValue(TraceCheck* check,
                    std::vector<TraceEvent>* trace_events) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(check, trace_events, /*top_level=*/depth_ == 0);
      case '[':
        return ParseArray(check, trace_events, /*is_events=*/false);
      case '"':
        return ParseString(nullptr);
      case 't':
        return ParseLiteral("true");
      case 'f':
        return ParseLiteral("false");
      case 'n':
        return ParseLiteral("null");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(nullptr);
        return Err("unexpected character");
    }
  }

  Status Finish() {
    SkipWhitespace();
    if (pos_ != text_.size()) return Err("trailing garbage after document");
    return Status::OK();
  }

  bool saw_trace_events() const { return saw_trace_events_; }

 private:
  Status Err(const std::string& what) {
    return Status::InvalidArgument("invalid trace JSON at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  Status ParseLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return Err("bad literal");
    pos_ += lit.size();
    return Status::OK();
  }

  Status ParseNumber(double* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Err("bad number");
    if (out != nullptr) {
      auto parsed = ParseDouble(text_.substr(start, pos_ - start));
      if (!parsed.ok()) return Err("bad number");
      *out = *parsed;
    }
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (text_[pos_] != '"') return Err("expected string");
    ++pos_;
    std::string value;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_];
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Err("truncated escape");
        char esc = text_[pos_];
        switch (esc) {
          case '"': value += '"'; break;
          case '\\': value += '\\'; break;
          case '/': value += '/'; break;
          case 'n': value += '\n'; break;
          case 'r': value += '\r'; break;
          case 't': value += '\t'; break;
          case 'b': value += '\b'; break;
          case 'f': value += '\f'; break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return Err("truncated \\u escape");
            for (int i = 1; i <= 4; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
                return Err("bad \\u escape");
              }
            }
            // Validation only cares about structure; keep a placeholder.
            value += '?';
            pos_ += 4;
            break;
          }
          default:
            return Err("bad escape");
        }
        ++pos_;
      } else {
        value += c;
        ++pos_;
      }
    }
    if (pos_ >= text_.size()) return Err("unterminated string");
    ++pos_;  // closing quote
    if (out != nullptr) *out = std::move(value);
    return Status::OK();
  }

  Status ParseArray(TraceCheck* check, std::vector<TraceEvent>* trace_events,
                    bool is_events) {
    ++pos_;  // '['
    ++depth_;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      --depth_;
      return Status::OK();
    }
    while (true) {
      if (is_events) {
        SkipWhitespace();
        if (pos_ >= text_.size() || text_[pos_] != '{') {
          return Err("traceEvents element is not an object");
        }
        Status s = ParseEventObject(trace_events);
        if (!s.ok()) return s;
      } else {
        Status s = ParseValue(check, trace_events);
        if (!s.ok()) return s;
      }
      SkipWhitespace();
      if (pos_ >= text_.size()) return Err("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        --depth_;
        return Status::OK();
      }
      return Err("expected ',' or ']' in array");
    }
  }

  Status ParseObject(TraceCheck* check, std::vector<TraceEvent>* trace_events,
                     bool top_level) {
    ++pos_;  // '{'
    ++depth_;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      --depth_;
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      Status s = ParseString(&key);
      if (!s.ok()) return s;
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Err("expected ':' in object");
      }
      ++pos_;
      SkipWhitespace();
      if (top_level && key == "traceEvents") {
        if (pos_ >= text_.size() || text_[pos_] != '[') {
          return Err("traceEvents is not an array");
        }
        saw_trace_events_ = true;
        s = ParseArray(check, trace_events, /*is_events=*/true);
      } else {
        s = ParseValue(check, trace_events);
      }
      if (!s.ok()) return s;
      SkipWhitespace();
      if (pos_ >= text_.size()) return Err("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        --depth_;
        return Status::OK();
      }
      return Err("expected ',' or '}' in object");
    }
  }

  // One element of traceEvents: requires name/ph/ts/pid/tid and captures
  // enough of it to re-run the nesting check on the parsed form.
  Status ParseEventObject(std::vector<TraceEvent>* trace_events) {
    ++pos_;  // '{'
    ++depth_;
    TraceEvent event;
    bool saw_name = false, saw_ph = false, saw_ts = false, saw_pid = false,
         saw_tid = false;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      return Err("trace event missing required keys");
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      Status s = ParseString(&key);
      if (!s.ok()) return s;
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Err("expected ':' in trace event");
      }
      ++pos_;
      SkipWhitespace();
      if (key == "name") {
        s = ParseString(&event.name);
        saw_name = s.ok();
      } else if (key == "ph") {
        std::string ph;
        s = ParseString(&ph);
        if (s.ok() && ph.size() != 1) s = Err("ph is not a single character");
        if (s.ok()) {
          event.phase = ph[0];
          saw_ph = true;
        }
      } else if (key == "ts") {
        double ts = 0;
        s = ParseNumber(&ts);
        if (s.ok()) {
          event.ts_micros = static_cast<uint64_t>(ts);
          saw_ts = true;
        }
      } else if (key == "pid") {
        double v = 0;
        s = ParseNumber(&v);
        saw_pid = s.ok();
      } else if (key == "tid") {
        double v = 0;
        s = ParseNumber(&v);
        if (s.ok()) {
          event.tid = static_cast<uint32_t>(v);
          saw_tid = true;
        }
      } else if (key == "cat") {
        s = ParseString(&event.category);
      } else if (key == "args") {
        s = ParseArgsObject(&event.args);
      } else {
        s = ParseValue(nullptr, nullptr);
      }
      if (!s.ok()) return s;
      SkipWhitespace();
      if (pos_ >= text_.size()) return Err("unterminated trace event");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        --depth_;
        break;
      }
      return Err("expected ',' or '}' in trace event");
    }
    if (!saw_name || !saw_ph || !saw_ts || !saw_pid || !saw_tid) {
      return Err("trace event missing one of name/ph/ts/pid/tid");
    }
    trace_events->push_back(std::move(event));
    return Status::OK();
  }

  // The "args" member of a trace event: an object whose string-valued
  // members are recovered verbatim; non-string values (legal in the Chrome
  // format, never produced by ChromeTraceJson) are skipped structurally.
  Status ParseArgsObject(std::vector<TraceArg>* args) {
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != '{') {
      return Err("args is not an object");
    }
    ++pos_;
    ++depth_;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      --depth_;
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      Status s = ParseString(&key);
      if (!s.ok()) return s;
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Err("expected ':' in args");
      }
      ++pos_;
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == '"') {
        std::string value;
        s = ParseString(&value);
        if (s.ok()) args->emplace_back(std::move(key), std::move(value));
      } else {
        s = ParseValue(nullptr, nullptr);
      }
      if (!s.ok()) return s;
      SkipWhitespace();
      if (pos_ >= text_.size()) return Err("unterminated args object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        --depth_;
        return Status::OK();
      }
      return Err("expected ',' or '}' in args");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
  bool saw_trace_events_ = false;
};

}  // namespace

Result<TraceCheck> ValidateChromeTraceJson(std::string_view json) {
  JsonReader reader(json);
  TraceCheck check;
  std::vector<TraceEvent> events;
  GLY_RETURN_NOT_OK(reader.ParseValue(&check, &events));
  GLY_RETURN_NOT_OK(reader.Finish());
  if (!reader.saw_trace_events()) {
    return Status::InvalidArgument(
        "invalid trace JSON: no top-level \"traceEvents\" array");
  }
  return CheckWellFormed(events);
}

Result<std::vector<TraceEvent>> ParseChromeTraceJson(std::string_view json) {
  JsonReader reader(json);
  TraceCheck check;
  std::vector<TraceEvent> events;
  GLY_RETURN_NOT_OK(reader.ParseValue(&check, &events));
  GLY_RETURN_NOT_OK(reader.Finish());
  if (!reader.saw_trace_events()) {
    return Status::InvalidArgument(
        "invalid trace JSON: no top-level \"traceEvents\" array");
  }
  return events;
}

void TraceSpan::SetAttribute(std::string_view key, double value) {
  SetAttribute(key, StringPrintf("%.6f", value));
}

}  // namespace gly::trace
