// Small string helpers shared across modules.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace gly {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits `s` on any run of whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Removes leading and trailing whitespace.
std::string_view Trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses a signed 64-bit integer; fails on trailing garbage.
Result<int64_t> ParseInt64(std::string_view s);

/// Parses an unsigned 64-bit integer; fails on trailing garbage.
Result<uint64_t> ParseUint64(std::string_view s);

/// Parses a double; fails on trailing garbage.
Result<double> ParseDouble(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Lowercases ASCII.
std::string ToLower(std::string_view s);

/// Formats bytes with binary units ("1.5 GiB").
std::string FormatBytes(uint64_t bytes);

/// Formats a duration in seconds with an adaptive unit ("3.2 ms", "12.4 s").
std::string FormatSeconds(double seconds);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters; no surrounding quotes).
std::string JsonEscape(std::string_view s);

}  // namespace gly
