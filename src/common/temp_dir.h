// TempDir: RAII scratch directory (MapReduce spills, graphdb stores, tests).

#pragma once

#include <string>

#include "common/result.h"

namespace gly {

/// Creates a unique directory under the system temp root and removes it
/// (recursively) on destruction.
///
/// Directory names embed the owning process id (`<prefix>.p<pid>.<seq>`),
/// so directories orphaned by a crashed process are recognizable: Create()
/// reaps stale same-prefix directories whose owner is gone (once per
/// prefix per process), and CleanupStale() does it on demand. Checkpoint
/// and spill directories from killed robustness runs therefore don't
/// accumulate across repeated test invocations.
class TempDir {
 public:
  /// Creates a directory named `<tmp>/<prefix>.p<pid>.<seq>`, after a
  /// best-effort sweep of stale directories with the same prefix.
  static Result<TempDir> Create(const std::string& prefix);

  /// Best-effort removal of `<tmp>/<prefix>.p<pid>.*` directories whose
  /// owning process no longer exists. Returns the number removed.
  static size_t CleanupStale(const std::string& prefix);

  TempDir(TempDir&& other) noexcept;
  TempDir& operator=(TempDir&& other) noexcept;
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
  ~TempDir();

  /// Absolute path of the directory (no trailing slash).
  const std::string& path() const { return path_; }

  /// Returns `path()/name`.
  std::string File(const std::string& name) const { return path_ + "/" + name; }

  /// Detaches: the directory will not be removed on destruction.
  void Keep() { owned_ = false; }

 private:
  explicit TempDir(std::string path) : path_(std::move(path)), owned_(true) {}
  std::string path_;
  bool owned_ = false;
};

}  // namespace gly
