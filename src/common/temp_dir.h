// TempDir: RAII scratch directory (MapReduce spills, graphdb stores, tests).

#pragma once

#include <string>

#include "common/result.h"

namespace gly {

/// Creates a unique directory under the system temp root and removes it
/// (recursively) on destruction.
class TempDir {
 public:
  /// Creates a directory named `<tmp>/<prefix>.<unique>`.
  static Result<TempDir> Create(const std::string& prefix);

  TempDir(TempDir&& other) noexcept;
  TempDir& operator=(TempDir&& other) noexcept;
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
  ~TempDir();

  /// Absolute path of the directory (no trailing slash).
  const std::string& path() const { return path_; }

  /// Returns `path()/name`.
  std::string File(const std::string& name) const { return path_ + "/" + name; }

  /// Detaches: the directory will not be removed on destruction.
  void Keep() { owned_ = false; }

 private:
  explicit TempDir(std::string path) : path_(std::move(path)), owned_(true) {}
  std::string path_;
  bool owned_ = false;
};

}  // namespace gly
