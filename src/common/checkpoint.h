// Checkpoint serialization: atomic, checksummed snapshot files.
//
// A checkpoint is a set of named binary sections written as one file:
//
//   header:   [magic "GLYCKPT1"][section_count: u32][payload_len: u64]
//             [crc32c(payload): u32]
//   payload:  repeat { [name_len: u32][name][data_len: u64][data] }
//
// Writes are atomic with respect to crashes: the file is staged at
// `<path>.tmp`, fsynced, then renamed over `<path>`. A crash mid-write
// leaves the previous checkpoint untouched; a torn or corrupted file is
// rejected at load time by the CRC, so recovery either sees a complete
// valid snapshot or none at all.
//
// Used by the Pregel engine (superstep snapshots) and the MapReduce job
// (map-stage spill manifests). See DESIGN.md "Recovery model".

#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/result.h"

namespace gly {

/// Builds and atomically writes one checkpoint file.
class CheckpointWriter {
 public:
  /// Adds a named section and returns its buffer for the caller to fill.
  /// The pointer stays valid until the writer is destroyed. Section names
  /// must be unique per checkpoint.
  std::string* AddSection(const std::string& name);

  /// Serializes all sections to `<path>.tmp`, fsyncs, and renames over
  /// `path`. Carries the "checkpoint.write" fault site: an injected crash
  /// fails the write *after* staging but *before* the rename, so the
  /// previous checkpoint at `path` stays valid.
  Status WriteTo(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::string>> sections_;
};

/// Loads and validates one checkpoint file.
class CheckpointReader {
 public:
  /// Reads `path`, validating magic, length, and CRC. Any truncation or
  /// corruption fails with IOError; the caller treats that as "no usable
  /// checkpoint".
  static Result<CheckpointReader> Load(const std::string& path);

  bool Has(const std::string& name) const {
    return sections_.count(name) != 0;
  }

  /// View of a section's bytes (valid while the reader is alive).
  Result<std::string_view> Section(const std::string& name) const;

 private:
  std::string payload_;
  std::map<std::string, std::pair<size_t, size_t>> sections_;  // offset, len
};

/// Best-effort removal of a checkpoint and any stale `.tmp` sibling left
/// by an interrupted write.
void RemoveCheckpoint(const std::string& path);

/// Fixed-width little-endian encoder over a byte buffer (section payloads).
class CheckpointEncoder {
 public:
  explicit CheckpointEncoder(std::string* out) : out_(out) {}

  void PutU32(uint32_t v) { PutRaw(v); }
  void PutU64(uint64_t v) { PutRaw(v); }
  void PutI64(int64_t v) { PutRaw(v); }
  void PutDouble(double v) { PutRaw(v); }
  void PutString(std::string_view s) {
    PutU64(s.size());
    out_->append(s.data(), s.size());
  }
  void PutBytes(const void* data, size_t len) {
    out_->append(static_cast<const char*>(data), len);
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void PutRaw(const T& v) {
    out_->append(reinterpret_cast<const char*>(&v), sizeof(v));
  }

 private:
  std::string* out_;
};

/// Matching decoder; every Get returns false on underflow instead of
/// reading past the end, so torn sections fail closed.
class CheckpointDecoder {
 public:
  explicit CheckpointDecoder(std::string_view in) : in_(in) {}

  bool GetU32(uint32_t* v) { return GetRaw(v); }
  bool GetU64(uint64_t* v) { return GetRaw(v); }
  bool GetI64(int64_t* v) { return GetRaw(v); }
  bool GetDouble(double* v) { return GetRaw(v); }
  bool GetString(std::string* s) {
    uint64_t len = 0;
    if (!GetU64(&len) || len > in_.size()) return false;
    s->assign(in_.data(), len);
    in_.remove_prefix(len);
    return true;
  }
  bool GetBytes(void* out, size_t len) {
    if (len > in_.size()) return false;
    std::memcpy(out, in_.data(), len);
    in_.remove_prefix(len);
    return true;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  bool GetRaw(T* v) {
    if (sizeof(T) > in_.size()) return false;
    std::memcpy(v, in_.data(), sizeof(T));
    in_.remove_prefix(sizeof(T));
    return true;
  }

  bool Done() const { return in_.empty(); }
  size_t remaining() const { return in_.size(); }

 private:
  std::string_view in_;
};

}  // namespace gly
